// Package decoupling is the public API of this reproduction of
// "The Decoupling Principle: A Practical Privacy Framework" (Schmitt,
// Iyengar, Wood, Raghavan — HotNets '22).
//
// The paper's principle: to ensure privacy, divide information
// architecturally and institutionally so that each entity holds only
// what it needs — always separate who you are (▲/△) from what you do
// (●/⊙). A system is decoupled iff only the user holds (▲, ●).
//
// This package re-exports the analysis framework (knowledge tuples,
// verdicts, collusion analysis) and the registry of the paper's eight
// analyzed systems. The working implementations of those systems —
// digital cash, mix-nets, Privacy Pass, ODNS/ODoH, PGPP, Multi-Party
// Relays, PPM/Prio, plus the VPN and ECH cautionary tales — live under
// internal/ and are exercised by the experiment suite
// (internal/experiments, cmd/experiments), which measures each entity's
// knowledge empirically and checks it against the published tables.
//
// Quickstart:
//
//	sys := decoupling.NewSystem("My Service", "",
//		decoupling.User("Client"),
//		decoupling.Party("Frontend", decoupling.SensID(), decoupling.NonSensData()),
//		decoupling.Party("Backend", decoupling.NonSensID(), decoupling.SensData()),
//	)
//	verdict, err := decoupling.Analyze(sys)
package decoupling

import (
	"decoupling/internal/core"
)

// Re-exported analysis types. See internal/core for full documentation.
type (
	// System is a decoupling-analysis target: a set of entities, one of
	// which is the user.
	System = core.System
	// Entity is one party and its knowledge tuple.
	Entity = core.Entity
	// Tuple is an entity's knowledge: identity and data components.
	Tuple = core.Tuple
	// Component is one tuple entry (kind, label, sensitivity level).
	Component = core.Component
	// Verdict is the result of Analyze.
	Verdict = core.Verdict
	// SharedSecret models threshold structures (e.g. PPM shares).
	SharedSecret = core.SharedSecret
)

// Component constructors in the paper's notation.
var (
	// SensID returns ▲ (optionally labeled: SensID("H") is ▲_H).
	SensID = core.SensID
	// NonSensID returns △.
	NonSensID = core.NonSensID
	// SensData returns ●.
	SensData = core.SensData
	// NonSensData returns ⊙.
	NonSensData = core.NonSensData
	// PartialData returns ⊙/● (partially sensitive data).
	PartialData = core.PartialData
)

// Analyze applies the Decoupling Principle to a system: the §2.4
// verdict plus the minimal colluding coalition able to re-couple
// identity with data.
func Analyze(s *System) (Verdict, error) { return core.Analyze(s) }

// RenderTable renders a system's analysis in the paper's table layout.
func RenderTable(s *System) string { return core.RenderTable(s) }

// RenderComparison renders expected-vs-measured tuples side by side.
func RenderComparison(expected, measured *System) string {
	return core.RenderComparison(expected, measured)
}

// CompareTuples diffs two systems' tuples; empty means exact agreement.
func CompareTuples(expected, measured *System) []string {
	return core.CompareTuples(expected, measured)
}

// User constructs the user entity (who trivially holds (▲, ●)).
func User(name string) Entity {
	return Entity{Name: name, User: true, Knows: Tuple{SensID(), SensData()}}
}

// Party constructs a non-user entity with the given knowledge.
func Party(name string, knows ...Component) Entity {
	return Entity{Name: name, Knows: Tuple(knows)}
}

// NewSystem assembles a system for analysis. section may reference a
// paper section or be empty.
func NewSystem(name, section string, entities ...Entity) *System {
	return &System{Name: name, Section: section, Entities: entities}
}

// Paper-system constructors: the eight Section 3 analyses as published.
var (
	// DigitalCash is the §3.1.1 blind-signature e-cash table.
	DigitalCash = core.DigitalCash
	// Mixnet is the §3.1.2 table with n mixes (Figure 1).
	Mixnet = core.Mixnet
	// PrivacyPass is the §3.2.1 table (Figure 2).
	PrivacyPass = core.PrivacyPass
	// ObliviousDNS is the §3.2.2 table (covers ODNS and ODoH).
	ObliviousDNS = core.ObliviousDNS
	// PGPP is the §3.2.3 table with the ▲_H/▲_N decomposition.
	PGPP = core.PGPP
	// MPR is the §3.2.4 Multi-Party Relay table.
	MPR = core.MPR
	// PPM is the §3.2.5 private aggregate statistics table with n
	// aggregators.
	PPM = core.PPM
	// VPN is the §3.3 centralized-VPN cautionary tale.
	VPN = core.VPN
	// ECH is the §3.3 Encrypted ClientHello cautionary tale.
	ECH = core.ECH
)

// Registry returns all paper systems keyed by short id.
func Registry() map[string]*System { return core.Registry() }
