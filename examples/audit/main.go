// Audit demo: run the Oblivious DoH reproduction in-process and explain
// WHY each entity's knowledge tuple holds — every component cites the
// ledger observations that establish it, every subject gets the handle
// chain a full coalition would need to re-couple their identity with
// their DNS queries, and the coalition's handle graph is written out as
// Graphviz DOT (linkage.dot) for rendering.
//
//	go run ./examples/audit
//	dot -Tsvg linkage.dot -o linkage.svg   # if graphviz is installed
package main

import (
	"fmt"
	"log"
	"os"

	"decoupling/internal/experiments"
	"decoupling/internal/provenance"
	"decoupling/internal/telemetry"
)

func main() {
	sc, ok := experiments.FindAuditScenario("odoh")
	if !ok {
		log.Fatal("odoh scenario not registered")
	}

	// Tracing on so every observation records its protocol phase.
	lg, err := sc.Run(experiments.Ctx{Tel: telemetry.New("audit", true, nil)}, 4)
	if err != nil {
		log.Fatal(err)
	}
	audit, err := provenance.Derive(lg, sc.Expected())
	if err != nil {
		log.Fatal(err)
	}

	// The human report: tuple components with supporting evidence,
	// per-subject linkage chains, coalition handle partitions. These
	// bytes are identical on every run — fresh HPKE keys and goroutine
	// interleavings are canonicalized away.
	if err := provenance.WriteReport(os.Stdout, audit); err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("linkage.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := provenance.WriteDOT(f, audit); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote linkage.dot — render with: dot -Tsvg linkage.dot -o linkage.svg")
}
