// Anonymous mail demo — Chaum's original 1981 application, which the
// paper presents as the root of the Decoupling Principle (§3.1.2): a
// whistleblower writes to a journalist through a mix cascade and
// includes an untraceable return address, so the journalist can answer
// without anyone — including the journalist — learning who they are
// talking to.
//
//	go run ./examples/anonmail
package main

import (
	"fmt"
	"log"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/simnet"
)

func main() {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	net := simnet.New(2026)

	// Three mixes run by different organizations, batch threshold 1 for
	// the demo (see E12 for why production wants batching).
	var route []mixnet.NodeInfo
	for i := 1; i <= 3; i++ {
		m, err := mixnet.NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(fmt.Sprintf("mix%d", i)), 1, 0, lg)
		if err != nil {
			log.Fatal(err)
		}
		route = append(route, m.Info())
	}
	journalist, err := mixnet.NewReceiver(net, "Journalist", "journalist", false, lg)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth for the measurement.
	cls.RegisterIdentity("whistleblower-home", "whistleblower", "", core.Sensitive)
	tip := "the tip: documents are in locker 47"
	cls.RegisterData(tip, "whistleblower", "", core.Sensitive)

	// 1. The source sends the tip and pre-builds a return address.
	sender := &mixnet.Sender{Addr: "whistleblower-home"}
	if err := sender.Send(net, route, journalist.Info(), []byte(tip)); err != nil {
		log.Fatal(err)
	}
	replyAddr, replyKeys, err := mixnet.BuildReplyBlock(route, "whistleblower-home")
	if err != nil {
		log.Fatal(err)
	}
	collector := mixnet.NewReplyCollector(net, "whistleblower-home")
	net.Run()

	got := journalist.Inbox()
	fmt.Printf("journalist received: %q (from %s — the last mix, not the source)\n", got[0].Body, got[0].From)

	// 2. The journalist replies via the return address, blind to the
	// source's identity.
	if err := mixnet.SendReply(net, journalist.Addr, replyAddr, []byte("received. stay safe — will verify")); err != nil {
		log.Fatal(err)
	}
	net.Run()

	replies := collector.Inbox()
	fmt.Printf("source received reply:  %q\n", replyKeys.Decrypt(replies[0].Body))

	// 3. What did each mix actually learn?
	fmt.Println("\nper-mix knowledge (derived from observations):")
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("Mix %d", i)
		tuple := lg.DeriveTuple(name, core.Tuple{core.NonSensID(), core.NonSensData()})
		fmt.Printf("  %-6s %s\n", name, tuple.Symbol())
	}
	fmt.Println("\nonly Mix 1 ever saw the source's address; only the journalist saw the tip;")
	fmt.Println("the journalist never learned — and cannot learn — who the source is.")
}
