// Chaos demo: crash the Oblivious DoH proxy mid-run and watch the
// fail-closed resilience layer at work. Clients that catch the outage
// window retry, fail over, and finally ERROR — they never fall back to
// a direct (re-coupling) resolver — so the ledger-derived knowledge
// tuples still match the paper's §3.2.2 table and the provenance audit
// stays DECOUPLED. The whole run rides the fault plan's logical clock,
// so the output is byte-identical on every invocation.
//
//	go run ./examples/chaos
package main

import (
	"log"
	"os"

	"decoupling/internal/experiments"
	"decoupling/internal/provenance"
	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
)

func main() {
	sc, ok := experiments.FindAuditScenario("odoh")
	if !ok {
		log.Fatal("odoh scenario not registered")
	}

	// The proxy dies at t=30ms and never restarts. Equivalent CLI:
	//
	//	decouple audit -faults "crash:proxy@30ms-" odoh
	plan, err := simnet.ParseFaultPlan("crash:proxy@30ms-")
	if err != nil {
		log.Fatal(err)
	}

	lg, err := sc.RunFaults(experiments.Ctx{Tel: telemetry.New("chaos", true, nil)}, 1, plan)
	if err != nil {
		log.Fatal(err)
	}

	// Clients before the crash got answers; clients inside the outage
	// exhausted every decoupled path and failed CLOSED. Either way the
	// audit shows the paper's tuples — no observer learned anything
	// extra because the system was failing.
	audit, err := provenance.Derive(lg, sc.Expected())
	if err != nil {
		log.Fatal(err)
	}
	if err := provenance.WriteReport(os.Stdout, audit); err != nil {
		log.Fatal(err)
	}
}
