// ODoH demo: a complete Oblivious DNS over HTTPS deployment on
// loopback — proxy and target as real HTTP servers — with the ledger
// showing who saw what.
//
//	go run ./examples/odoh
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/odoh"
)

func main() {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)

	// Authoritative data the target resolves against.
	zone := dns.NewZone("example.com")
	for i, host := range []string{"www", "mail", "sensitive-clinic"} {
		if err := zone.Add(dnswire.A(host+".example.com", 300, [4]byte{192, 0, 2, byte(i)})); err != nil {
			log.Fatal(err)
		}
	}
	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{zone}, Ledger: lg}

	target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
	if err != nil {
		log.Fatal(err)
	}
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)

	// Real HTTP servers on loopback.
	targetSrv := httptest.NewServer(odoh.TargetHandler(target))
	defer targetSrv.Close()
	proxySrv := httptest.NewServer(odoh.ProxyHandler(proxy, targetSrv.Client(), targetSrv.URL))
	defer proxySrv.Close()
	fmt.Printf("oblivious proxy:  %s\noblivious target: %s\n\n", proxySrv.URL, targetSrv.URL)

	// Ground truth for the analysis: who the clients are, which query
	// names are sensitive.
	queries := []struct{ who, name string }{
		{"alice", "www.example.com"},
		{"bob", "sensitive-clinic.example.com"},
		{"carol", "mail.example.com"},
	}
	keyID, pub := target.KeyConfig()
	for i, q := range queries {
		cls.RegisterIdentity(q.who, q.who, "", core.Sensitive)
		cls.RegisterData(dnswire.CanonicalName(q.name), q.who, "", core.Sensitive)
		client := odoh.NewClient(q.who, keyID, pub)
		// First query travels over the real HTTP servers to show the
		// stack working; the rest use the instrumented direct path so
		// the ledger attributes client identities (loopback HTTP hides
		// them behind ephemeral ports, which is great for privacy but
		// bad for ground truth).
		forward := proxy.Forward
		if i == 0 {
			forward = odoh.HTTPForward(http.DefaultClient, proxySrv.URL)
		}
		resp, err := client.Query(q.name, dnswire.TypeA, forward)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s resolved %-32s -> %d.%d.%d.%d\n", q.who, q.name,
			resp.Answers[0].Data[0], resp.Answers[0].Data[1], resp.Answers[0].Data[2], resp.Answers[0].Data[3])
	}

	// What did each party actually see?
	fmt.Println("\nmeasured knowledge (vs the paper's §3.2.2 table):")
	expected := core.ObliviousDNS()
	measured := lg.DeriveSystem(expected)
	fmt.Print(core.RenderComparison(expected, measured))
	if diffs := core.CompareTuples(expected, measured); len(diffs) == 0 {
		fmt.Println("\nexact match with the published table")
	} else {
		fmt.Println("\nDIVERGENCES:", diffs)
	}
}
