// Quickstart: model your own service with the Decoupling Principle and
// get a verdict — is any single entity (or small coalition) able to
// re-couple who your users are with what they do?
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"decoupling"
)

func main() {
	// A telemetry pipeline as many companies build it: one ingestion
	// service sees everything.
	naive := decoupling.NewSystem("Naive telemetry", "",
		decoupling.User("App user"),
		decoupling.Party("Ingestion service", decoupling.SensID(), decoupling.SensData()),
		decoupling.Party("Analytics team", decoupling.NonSensID(), decoupling.NonSensData()),
	)

	// The same pipeline redesigned with the principle: a relay strips
	// network identity, the processor sees content but not identity.
	decoupled := decoupling.NewSystem("Decoupled telemetry", "",
		decoupling.User("App user"),
		decoupling.Party("Relay", decoupling.SensID(), decoupling.NonSensData()),
		decoupling.Party("Processor", decoupling.NonSensID(), decoupling.SensData()),
		decoupling.Party("Analytics team", decoupling.NonSensID(), decoupling.NonSensData()),
	)

	for _, sys := range []*decoupling.System{naive, decoupled} {
		v, err := decoupling.Analyze(sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n%s%s\n\n", sys.Name, decoupling.RenderTable(sys), v)
	}

	// The paper's own systems are built in; compare yours against them.
	fmt.Println("Paper reference analyses:")
	for id, sys := range decoupling.Registry() {
		v, err := decoupling.Analyze(sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %s\n", id, v)
	}
}
