// MPR demo: a two-hop Multi-Party Relay (the Private Relay
// architecture) on loopback TCP with nested TLS tunnels. Fetches a page
// through both hops and prints what each relay's logs would contain.
//
//	go run ./examples/mpr
package main

import (
	"fmt"
	"log"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/mpr"
)

func main() {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)

	stack, err := mpr.NewStack(lg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	fmt.Printf("relay 1: %s (sees you, not your destination)\n", stack.Relay1Addr)
	fmt.Printf("relay 2: %s (sees your destination, not you)\n", stack.Relay2Addr)
	fmt.Printf("origin:  %s\n\n", stack.OriginAddr)
	cls.RegisterData("connect:"+stack.OriginAddr, "", "", core.Partial)

	for i, who := range []string{"alice", "bob"} {
		path := fmt.Sprintf("/private-document-%d", i)
		cls.RegisterData(path, who, "", core.Sensitive)
		body, err := stack.Fetch(path, "", func(localAddr string) {
			cls.RegisterIdentity(localAddr, who, "", core.Sensitive)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s fetched %-22s -> %q\n", who, path, body)
	}

	fmt.Println("\nwhat each party observed:")
	for _, name := range []string{mpr.Relay1Name, mpr.Relay2Name, mpr.OriginName} {
		fmt.Printf("  %s:\n", name)
		for _, o := range lg.ByObserver(name) {
			fmt.Printf("    [%s %-13s] %s\n", o.Kind, o.Level, o.Value)
		}
	}

	expected := core.MPR()
	measured := lg.DeriveSystem(expected)
	fmt.Println("\nmeasured knowledge (vs the paper's §3.2.4 table):")
	fmt.Print(core.RenderComparison(expected, measured))
	v, err := core.Analyze(measured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", v)
}
