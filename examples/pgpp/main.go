// PGPP demo: the same mobility trace through a baseline cellular core
// and through PGPP with three identifier policies — showing how much of
// each user's trajectory the core's own location log reconstructs.
//
//	go run ./examples/pgpp
package main

import (
	"fmt"
	"log"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/pgpp"
)

func main() {
	cfg := pgpp.DefaultSimConfig()
	fmt.Printf("simulating %d users, %d cells, %d steps, re-attach every %d steps\n\n",
		cfg.Users, cfg.Cells, cfg.Steps, cfg.SessionLen)

	runs := []struct {
		label  string
		pgppOn bool
		policy pgpp.ShufflePolicy
	}{
		{"baseline cellular (permanent IMSI)", false, pgpp.ShuffleNever},
		{"PGPP, static pseudonym", true, pgpp.ShuffleNever},
		{"PGPP, daily shuffle", true, pgpp.ShuffleDaily},
		{"PGPP, per-attach shuffle", true, pgpp.ShufflePerAttach},
	}
	for _, r := range runs {
		c := cfg
		c.PGPP = r.pgppOn
		c.Policy = r.policy
		res, err := pgpp.RunSim(c, nil)
		if err != nil {
			log.Fatal(err)
		}
		acc := pgpp.TrackingAccuracy(res.Core.Log(), res.NetIDOwner)
		fmt.Printf("%-38s core-log tracking accuracy: %.3f\n", r.label, acc)
	}

	// The decoupling table for the per-attach configuration.
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	if _, err := pgpp.RunSim(cfg, lg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasured knowledge (vs the paper's §3.2.3 table):")
	expected := core.PGPP()
	measured := lg.DeriveSystem(expected)
	fmt.Print(core.RenderComparison(expected, measured))
	v, err := core.Analyze(measured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", v)
	fmt.Println("(billing still works: the gateway knows who pays; the core knows where devices are; nobody knows both)")
}
