// Keyless CDN demo (the paper's §4.3 Phoenix discussion): a publisher
// provisions its content key into an attested enclave hosted by a CDN
// operator; readers fetch through the CDN, which serves bytes it cannot
// read. TEEs move the locus of trust to the hardware vendor and make
// the CDN operator a decoupled (▲, ⊙) entity.
//
//	go run ./examples/keylesscdn
package main

import (
	"fmt"
	"log"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/tee"
)

func main() {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)

	vendor, err := tee.NewVendor("AcmeSilicon")
	if err != nil {
		log.Fatal(err)
	}
	enclave := vendor.Manufacture(tee.PhoenixProgram())
	publisher, err := tee.NewPhoenixOrigin("publisher.example")
	if err != nil {
		log.Fatal(err)
	}

	// The publisher attests the enclave before handing over its key —
	// it is trusting AcmeSilicon's signature, not the CDN operator.
	if err := publisher.Provision(vendor.PublicKey(), enclave, []byte("the subscriber-only longread")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("publisher attested the enclave and provisioned key + content")

	cdn := tee.NewPhoenixCDN("CDN Operator", enclave, lg)
	for _, reader := range []string{"alice", "bob"} {
		cls.RegisterIdentity(reader, reader, "", core.Sensitive)
		cls.RegisterData("/longread", reader, "", core.Sensitive)
		body, err := tee.PhoenixRequest(publisher.PublicKey(), cdn, reader, "/longread")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s fetched %d bytes through the CDN\n", reader, len(body))
	}

	fmt.Println("\nwhat the CDN operator's logs contain:")
	for _, o := range lg.ByObserver("CDN Operator") {
		fmt.Printf("  [%s %-13s] %s\n", o.Kind, o.Level, o.Value)
	}
	tuple := lg.DeriveTuple("CDN Operator", core.Tuple{core.NonSensID(), core.NonSensData()})
	fmt.Printf("\nCDN operator knowledge: %s — identity yes, content never\n", tuple.Symbol())
	fmt.Printf("a traditional CDN terminating TLS itself would be %s: not decoupled\n",
		core.Tuple{core.SensID(), core.SensData()}.Symbol())
}
