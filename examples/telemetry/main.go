// Telemetry demo: privately aggregate app telemetry with PPM/Prio —
// 200 simulated clients report a crash count (sum task) and a
// preferred-feature bucket (histogram task); two non-colluding
// aggregators and a collector learn only the aggregates.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"math/rand"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/ppm"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)

	crashTask := ppm.Task{ID: "crashes", Type: ppm.TaskSum, Bits: 4}
	crashes := ppm.NewSystem(crashTask, 2, lg)
	featureTask := ppm.Task{ID: "favorite-feature", Type: ppm.TaskHistogram, Buckets: 5}
	features := ppm.NewSystem(featureTask, 2, lg)

	var wantCrashes uint64
	wantFeatures := make([]uint64, 5)
	for i := 0; i < 200; i++ {
		who := fmt.Sprintf("device-%03d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		c := uint64(rng.Intn(4))
		f := uint64(rng.Intn(5))
		wantCrashes += c
		wantFeatures[f]++
		if _, err := crashes.Upload(who, c); err != nil {
			log.Fatal(err)
		}
		if _, err := features.Upload(who, f); err != nil {
			log.Fatal(err)
		}
	}

	for _, sys := range []*ppm.System{crashes, features} {
		acc, rej := sys.VerifyAll()
		fmt.Printf("task %-17s: %d reports verified, %d rejected\n", sys.Task.ID, acc, rej)
	}
	crashTotal, err := crashes.Aggregate()
	if err != nil {
		log.Fatal(err)
	}
	featureCounts, err := features.Aggregate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal crashes: %d (ground truth %d)\n", crashTotal[0], wantCrashes)
	fmt.Printf("feature histogram: %v (ground truth %v)\n", featureCounts, wantFeatures)

	// The decoupling: nobody but the user ever held an individual value.
	fmt.Println("\nmeasured knowledge (vs the paper's §3.2.5 table):")
	expected := core.PPM(2)
	measured := lg.DeriveSystem(expected)
	fmt.Print(core.RenderComparison(expected, measured))
	v, err := core.Analyze(measured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", v)
	fmt.Println("(reconstructing any individual report requires ALL aggregators to collude)")
}
