package decoupling_test

import (
	"fmt"
	"testing"
	"time"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/ppm"
	"decoupling/internal/simnet"
)

// Scale tests: the systems at one order of magnitude beyond the
// experiment defaults, verifying correctness holds (not just doesn't
// crash). Skipped under -short.

func TestScaleMixnet(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	net := simnet.New(31)
	var route []mixnet.NodeInfo
	for i := 1; i <= 3; i++ {
		m, err := mixnet.NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(fmt.Sprintf("mix%d", i)), 64, time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		route = append(route, m.Info())
	}
	rcv, err := mixnet.NewReceiver(net, "Receiver", "receiver", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 1000
	want := map[string]bool{}
	for i := 0; i < msgs; i++ {
		body := fmt.Sprintf("message-%04d", i)
		want[body] = true
		s := &mixnet.Sender{Addr: simnet.Addr(fmt.Sprintf("sender%04d", i))}
		if err := s.Send(net, route, rcv.Info(), []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	inbox := rcv.Inbox()
	if len(inbox) != msgs {
		t.Fatalf("delivered %d of %d", len(inbox), msgs)
	}
	for _, m := range inbox {
		if !want[string(m.Body)] {
			t.Fatalf("unexpected or corrupted message %q", m.Body)
		}
		delete(want, string(m.Body))
	}
	if len(want) != 0 {
		t.Errorf("%d messages missing", len(want))
	}
}

func TestScalePPM(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	task := ppm.Task{ID: "scale-hist", Type: ppm.TaskHistogram, Buckets: 16}
	sys := ppm.NewSystem(task, 3, nil)
	const clients = 2000
	want := make([]uint64, 16)
	for i := 0; i < clients; i++ {
		b := uint64((i * 7) % 16)
		want[b]++
		if _, err := sys.Upload(fmt.Sprintf("c%04d", i), b); err != nil {
			t.Fatal(err)
		}
	}
	acc, rej := sys.VerifyAll()
	if acc != clients || rej != 0 {
		t.Fatalf("verify: accepted=%d rejected=%d", acc, rej)
	}
	got, err := sys.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScaleLinkageEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	const subjects = 5000
	for i := 0; i < subjects; i++ {
		who := fmt.Sprintf("user%05d", i)
		addr := fmt.Sprintf("10.%d.%d.%d", i>>16, (i>>8)&0xFF, i&0xFF)
		site := fmt.Sprintf("site%05d.test", i)
		cls.RegisterIdentity(addr, who, "", core.Sensitive)
		cls.RegisterData(site, who, "", core.Sensitive)
		h := fmt.Sprintf("conn-%05d", i)
		lg.SawIdentity("R1", addr, h)
		lg.SawData("R2", site, h)
	}
	res := adversary.LinkSubjects(lg.Observations(), []string{"R1", "R2"})
	if len(res) != subjects {
		t.Fatalf("results = %d", len(res))
	}
	if rate := adversary.LinkageRate(res); rate != 1 {
		t.Errorf("rate = %v, want 1", rate)
	}
}
