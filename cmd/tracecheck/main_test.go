package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidArtifacts(t *testing.T) {
	t.Parallel()
	tr := telemetry.NewTracer("E2")
	root := tr.Start("experiment")
	tr.Start("phase:forward").End()
	root.End()
	var trace bytes.Buffer
	if err := tr.WriteJSONL(&trace); err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewMetrics()
	m.Counter("x_total", "X.", telemetry.A("experiment", "E2")).Add(3)
	m.Histogram("y_seconds", "Y.", telemetry.LatencyBuckets).Observe(0.01)
	var prom bytes.Buffer
	if err := m.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}

	tp := write(t, "t.jsonl", trace.String())
	mp := write(t, "m.prom", prom.String())
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-trace", tp, "-metrics", mp}); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "2 spans (1 roots)") {
		t.Errorf("trace summary missing: %s", out.String())
	}
	if !strings.Contains(out.String(), "canonical") {
		t.Errorf("metrics summary missing: %s", out.String())
	}
}

func TestInvalidTrace(t *testing.T) {
	t.Parallel()
	tp := write(t, "bad.jsonl", `{"trace":"T","span":1,"parent":5,"name":"x","start_ns":0,"end_ns":0}`+"\n")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-trace", tp}); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "parent") {
		t.Errorf("error did not name the violation: %s", errw.String())
	}
}

func TestNonCanonicalMetrics(t *testing.T) {
	t.Parallel()
	// Parses fine but has a trailing blank line the canonical writer
	// never emits — so the byte-compare must fail.
	mp := write(t, "m.prom", "# HELP x_total X.\n# TYPE x_total counter\nx_total 1\n\n")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-metrics", mp}); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(errw.String(), "not canonical") {
		t.Errorf("unexpected error: %s", errw.String())
	}
}

func TestSamplesValidation(t *testing.T) {
	t.Parallel()
	// A real sampler stream validates and reports its span.
	var buf bytes.Buffer
	s := telemetry.NewSampler(&buf, 0)
	if err := s.Sample(); err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	sp := write(t, "s.jsonl", buf.String())
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-samples", sp}); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "2 samples") {
		t.Errorf("samples summary missing: %s", out.String())
	}

	for name, content := range map[string]string{
		"empty":          "",
		"missing fields": `{"t_unix_ms":1}` + "\n",
		"time regressed": `{"t_unix_ms":2,"uptime_s":0,"goroutines":1,"heap_alloc_bytes":1}` + "\n" +
			`{"t_unix_ms":1,"uptime_s":1,"goroutines":1,"heap_alloc_bytes":1}` + "\n",
	} {
		bp := write(t, "bad.jsonl", content)
		out.Reset()
		errw.Reset()
		if code := run(&out, &errw, []string{"-samples", bp}); code != 1 {
			t.Errorf("%s: exit %d, want 1", name, code)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	t.Parallel()
	var out, errw bytes.Buffer
	if code := run(&out, &errw, nil); code != 2 {
		t.Errorf("no flags: exit %d, want 2", code)
	}
	if code := run(&out, &errw, []string{"-trace", "does-not-exist.jsonl"}); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

// TestSpansValidation exercises the wire-span artifact checks: a real
// plane's export passes and reports its shape; empty artifacts fail
// unless -allow-empty; broken invariants name the violation.
func TestSpansValidation(t *testing.T) {
	t.Parallel()
	p := wiretrace.New(wiretrace.ModeRotate, 1)
	root := p.Root("client", "send", "c", "m")
	hop := p.Hop("Mix 1", "hop", root.Context(), "c", "r")
	p.Hop("Receiver", "deliver", hop.Forward(), "m", "").End()
	hop.End()
	root.End()
	var buf bytes.Buffer
	if err := wiretrace.WriteJSONL(&buf, p); err != nil {
		t.Fatal(err)
	}

	sp := write(t, "w.jsonl", buf.String())
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-spans", sp}); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "3 spans (1 roots, 1 rotations)") {
		t.Errorf("span summary missing: %s", out.String())
	}

	// Empty artifact: error by default, fine with -allow-empty.
	ep := write(t, "empty.jsonl", "")
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-spans", ep}); code != 1 {
		t.Fatalf("empty artifact: exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "no spans") {
		t.Errorf("empty-artifact error did not explain itself: %s", errw.String())
	}
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-spans", ep, "-allow-empty"}); code != 0 {
		t.Fatalf("-allow-empty: exit %d, stderr: %s", code, errw.String())
	}

	// Renaming the root span id orphans its child's parent reference,
	// which must fail the structural check.
	bad := strings.Replace(buf.String(), root.Context().Span.String(), "ffffffffffffffff", 1)
	bp := write(t, "bad.jsonl", bad)
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-spans", bp}); code != 1 {
		t.Fatalf("broken parent: exit %d, want 1", code)
	}
}
