package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decoupling/internal/telemetry"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidArtifacts(t *testing.T) {
	t.Parallel()
	tr := telemetry.NewTracer("E2")
	root := tr.Start("experiment")
	tr.Start("phase:forward").End()
	root.End()
	var trace bytes.Buffer
	if err := tr.WriteJSONL(&trace); err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewMetrics()
	m.Counter("x_total", "X.", telemetry.A("experiment", "E2")).Add(3)
	m.Histogram("y_seconds", "Y.", telemetry.LatencyBuckets).Observe(0.01)
	var prom bytes.Buffer
	if err := m.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}

	tp := write(t, "t.jsonl", trace.String())
	mp := write(t, "m.prom", prom.String())
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-trace", tp, "-metrics", mp}); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "2 spans (1 roots)") {
		t.Errorf("trace summary missing: %s", out.String())
	}
	if !strings.Contains(out.String(), "canonical") {
		t.Errorf("metrics summary missing: %s", out.String())
	}
}

func TestInvalidTrace(t *testing.T) {
	t.Parallel()
	tp := write(t, "bad.jsonl", `{"trace":"T","span":1,"parent":5,"name":"x","start_ns":0,"end_ns":0}`+"\n")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-trace", tp}); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "parent") {
		t.Errorf("error did not name the violation: %s", errw.String())
	}
}

func TestNonCanonicalMetrics(t *testing.T) {
	t.Parallel()
	// Parses fine but has a trailing blank line the canonical writer
	// never emits — so the byte-compare must fail.
	mp := write(t, "m.prom", "# HELP x_total X.\n# TYPE x_total counter\nx_total 1\n\n")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-metrics", mp}); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(errw.String(), "not canonical") {
		t.Errorf("unexpected error: %s", errw.String())
	}
}

func TestSamplesValidation(t *testing.T) {
	t.Parallel()
	// A real sampler stream validates and reports its span.
	var buf bytes.Buffer
	s := telemetry.NewSampler(&buf, 0)
	if err := s.Sample(); err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	sp := write(t, "s.jsonl", buf.String())
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-samples", sp}); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "2 samples") {
		t.Errorf("samples summary missing: %s", out.String())
	}

	for name, content := range map[string]string{
		"empty":          "",
		"missing fields": `{"t_unix_ms":1}` + "\n",
		"time regressed": `{"t_unix_ms":2,"uptime_s":0,"goroutines":1,"heap_alloc_bytes":1}` + "\n" +
			`{"t_unix_ms":1,"uptime_s":1,"goroutines":1,"heap_alloc_bytes":1}` + "\n",
	} {
		bp := write(t, "bad.jsonl", content)
		out.Reset()
		errw.Reset()
		if code := run(&out, &errw, []string{"-samples", bp}); code != 1 {
			t.Errorf("%s: exit %d, want 1", name, code)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	t.Parallel()
	var out, errw bytes.Buffer
	if code := run(&out, &errw, nil); code != 2 {
		t.Errorf("no flags: exit %d, want 2", code)
	}
	if code := run(&out, &errw, []string{"-trace", "does-not-exist.jsonl"}); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
