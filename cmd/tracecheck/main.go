// Command tracecheck validates telemetry artifacts produced by
// `experiments -trace ... -metrics ...`:
//
//	tracecheck -trace t.jsonl              # strict JSONL span validation
//	tracecheck -metrics m.prom             # exposition parse + round-trip
//	tracecheck -samples s.jsonl            # run-sampler JSONL validation
//	tracecheck -trace t.jsonl -metrics m.prom
//
// A trace file passes when every line decodes as a span record, span
// ids are unique per trace, parents precede children, and no span ends
// before it starts. A metrics file passes when it parses under the
// strict exposition grammar AND re-renders byte-identically — the
// writer and parser keep each other honest. A samples file (from
// `loadgen -sample`) passes when every line is a flat numeric JSON
// object carrying the run-health fields with non-decreasing
// timestamps. CI runs this against the artifacts of real runs,
// including a /metrics scrape taken mid-run.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"decoupling/internal/telemetry"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(errw)
	traceFile := fs.String("trace", "", "JSONL trace `file` to validate")
	metricsFile := fs.String("metrics", "", "Prometheus exposition `file` to validate")
	samplesFile := fs.String("samples", "", "run-sampler JSONL `file` to validate")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *traceFile == "" && *metricsFile == "" && *samplesFile == "" || fs.NArg() > 0 {
		fmt.Fprintln(errw, "usage: tracecheck [-trace f.jsonl] [-metrics f.prom] [-samples f.jsonl]")
		return 2
	}
	if *traceFile != "" {
		if err := checkTrace(out, *traceFile); err != nil {
			fmt.Fprintf(errw, "tracecheck: %v\n", err)
			return 1
		}
	}
	if *metricsFile != "" {
		if err := checkMetrics(out, *metricsFile); err != nil {
			fmt.Fprintf(errw, "tracecheck: %v\n", err)
			return 1
		}
	}
	if *samplesFile != "" {
		if err := checkSamples(out, *samplesFile); err != nil {
			fmt.Fprintf(errw, "tracecheck: %v\n", err)
			return 1
		}
	}
	return 0
}

func checkSamples(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := telemetry.ParseSamples(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no samples", path)
	}
	span := (recs[len(recs)-1]["t_unix_ms"] - recs[0]["t_unix_ms"]) / 1e3
	fmt.Fprintf(out, "%s: %d samples spanning %.1fs\n", path, len(recs), span)
	return nil
}

func checkTrace(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := telemetry.ParseJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	traces := map[string]int{}
	roots := 0
	for _, r := range recs {
		traces[r.Trace]++
		if r.Parent == 0 {
			roots++
		}
	}
	fmt.Fprintf(out, "%s: %d spans (%d roots) across %d traces\n",
		path, len(recs), roots, len(traces))
	return nil
}

func checkMetrics(out io.Writer, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fams, err := telemetry.ParseExposition(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var rendered bytes.Buffer
	if err := telemetry.WriteExpFamilies(&rendered, fams); err != nil {
		return err
	}
	if !bytes.Equal(raw, rendered.Bytes()) {
		return fmt.Errorf("%s: exposition is not canonical (re-render differs)", path)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Fprintf(out, "%s: %d families, %d samples, canonical\n",
		path, len(fams), samples)
	return nil
}
