// Command tracecheck validates telemetry artifacts produced by
// `experiments -trace ... -metrics ...`:
//
//	tracecheck -trace t.jsonl              # strict JSONL span validation
//	tracecheck -metrics m.prom             # exposition parse + round-trip
//	tracecheck -samples s.jsonl            # run-sampler JSONL validation
//	tracecheck -spans w.jsonl              # wall-clock wire-span validation
//	tracecheck -trace t.jsonl -metrics m.prom
//
// A trace file passes when every line decodes as a span record, span
// ids are unique per trace, parents precede children, and no span ends
// before it starts. A metrics file passes when it parses under the
// strict exposition grammar AND re-renders byte-identically — the
// writer and parser keep each other honest. A samples file (from
// `loadgen -sample`) passes when every line is a flat numeric JSON
// object carrying the run-health fields with non-decreasing
// timestamps. A spans file (wire spans from `loadgen -wirespans` or
// `experiments -wirespans`) passes when every line satisfies the
// decoupling-wirespan/v1 schema and the artifact's structural
// invariants hold: unique span ids, parent references that resolve,
// children nesting inside same-vantage parents, and the mode's
// rotation discipline — rotate artifacts must rotate at boundaries
// and never let a trace id span more than two vantages; naive
// artifacts must never record a rotation. An empty spans artifact is
// an error unless -allow-empty is given, because "no spans" usually
// means a silently broken pipeline, not a healthy one. CI runs this
// against the artifacts of real runs, including a /metrics scrape
// taken mid-run.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(errw)
	traceFile := fs.String("trace", "", "JSONL trace `file` to validate")
	metricsFile := fs.String("metrics", "", "Prometheus exposition `file` to validate")
	samplesFile := fs.String("samples", "", "run-sampler JSONL `file` to validate")
	spansFile := fs.String("spans", "", "wire-span JSONL `file` to validate")
	allowEmpty := fs.Bool("allow-empty", false, "accept an empty -spans artifact (a run with tracing off or nothing sampled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *traceFile == "" && *metricsFile == "" && *samplesFile == "" && *spansFile == "" || fs.NArg() > 0 {
		fmt.Fprintln(errw, "usage: tracecheck [-trace f.jsonl] [-metrics f.prom] [-samples f.jsonl] [-spans f.jsonl [-allow-empty]]")
		return 2
	}
	if *traceFile != "" {
		if err := checkTrace(out, *traceFile); err != nil {
			fmt.Fprintf(errw, "tracecheck: %v\n", err)
			return 1
		}
	}
	if *metricsFile != "" {
		if err := checkMetrics(out, *metricsFile); err != nil {
			fmt.Fprintf(errw, "tracecheck: %v\n", err)
			return 1
		}
	}
	if *samplesFile != "" {
		if err := checkSamples(out, *samplesFile); err != nil {
			fmt.Fprintf(errw, "tracecheck: %v\n", err)
			return 1
		}
	}
	if *spansFile != "" {
		if err := checkSpans(out, *spansFile, *allowEmpty); err != nil {
			fmt.Fprintf(errw, "tracecheck: %v\n", err)
			return 1
		}
	}
	return 0
}

// checkSpans validates a wire-span artifact: strict per-line schema,
// then the cross-span structural invariants (unique ids, resolving
// parents, nesting, the mode's rotation discipline).
func checkSpans(out io.Writer, path string, allowEmpty bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := wiretrace.ParseJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(recs) == 0 {
		if allowEmpty {
			fmt.Fprintf(out, "%s: empty wire-span artifact (allowed)\n", path)
			return nil
		}
		return fmt.Errorf("%s: no spans — tracing off or the exporter never ran (use -allow-empty if intended)", path)
	}
	if err := wiretrace.Check(recs); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	st := wiretrace.Summarize(recs)
	fmt.Fprintf(out, "%s: %d spans (%d roots, %d rotations) across %d traces at %d vantages, mode %s, wall span %s\n",
		path, st.Spans, st.Roots, st.Rotations, st.Traces, st.Vantages, st.Mode, st.WallSpan)
	return nil
}

func checkSamples(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := telemetry.ParseSamples(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no samples", path)
	}
	span := (recs[len(recs)-1]["t_unix_ms"] - recs[0]["t_unix_ms"]) / 1e3
	fmt.Fprintf(out, "%s: %d samples spanning %.1fs\n", path, len(recs), span)
	return nil
}

func checkTrace(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := telemetry.ParseJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	traces := map[string]int{}
	roots := 0
	for _, r := range recs {
		traces[r.Trace]++
		if r.Parent == 0 {
			roots++
		}
	}
	fmt.Fprintf(out, "%s: %d spans (%d roots) across %d traces\n",
		path, len(recs), roots, len(traces))
	return nil
}

func checkMetrics(out io.Writer, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fams, err := telemetry.ParseExposition(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var rendered bytes.Buffer
	if err := telemetry.WriteExpFamilies(&rendered, fams); err != nil {
		return err
	}
	if !bytes.Equal(raw, rendered.Bytes()) {
		return fmt.Errorf("%s: exposition is not canonical (re-render differs)", path)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Fprintf(out, "%s: %d families, %d samples, canonical\n",
		path, len(fams), samples)
	return nil
}
