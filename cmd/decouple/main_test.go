package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runOut(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf, errBuf bytes.Buffer
	code := run(&buf, &errBuf, args)
	return buf.String(), code
}

func TestList(t *testing.T) {
	out, code := runOut(t, "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"digitalcash", "mixnet", "privacypass", "odns", "pgpp", "mpr", "ppm", "vpn", "ech"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestShow(t *testing.T) {
	out, code := runOut(t, "show", "vpn")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "(▲, ●)") || !strings.Contains(out, "NOT DECOUPLED") {
		t.Errorf("show vpn output:\n%s", out)
	}
}

func TestShowUnknown(t *testing.T) {
	if _, code := runOut(t, "show", "nonsense"); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}

func TestAnalyze(t *testing.T) {
	out, code := runOut(t, "analyze")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Count(out, "DECOUPLED") != 9 {
		t.Errorf("analyze lines:\n%s", out)
	}
}

func TestTables(t *testing.T) {
	out, code := runOut(t, "tables")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Count(out, "paper §") != 9 {
		t.Errorf("tables output missing systems:\n%s", out)
	}
}

func TestCollude(t *testing.T) {
	out, code := runOut(t, "collude", "mixnet", "Mix 1", "Receiver")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.HasPrefix(out, "NO") {
		t.Errorf("mix1+receiver should not re-couple:\n%s", out)
	}
	out, code = runOut(t, "collude", "mpr", "Relay 1", "Relay 2")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.HasPrefix(out, "YES") {
		t.Errorf("relay1+relay2 should re-couple:\n%s", out)
	}
}

func TestColludeErrors(t *testing.T) {
	if _, code := runOut(t, "collude", "mpr", "Nobody"); code != 1 {
		t.Errorf("unknown entity exit = %d", code)
	}
	if _, code := runOut(t, "collude", "mpr", "User"); code != 1 {
		t.Errorf("user-in-coalition exit = %d", code)
	}
}

func TestNoArgsUsage(t *testing.T) {
	if _, code := runOut(t); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if _, code := runOut(t, "bogus-command"); code != 2 {
		t.Errorf("bad-command exit = %d, want 2", code)
	}
}

// TestAuditGolden pins the audit report bytes for the ODoH scenario and
// proves they are identical across -parallel settings: fresh HPKE keys,
// fresh connection handles, and different goroutine interleavings per
// invocation must not change a single byte. Refresh with: go test
// ./cmd/decouple -run TestAuditGolden -update
func TestAuditGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "audit_odoh.golden")
	base, code := runOut(t, "audit", "-parallel", "1", "odoh")
	if code != 0 {
		t.Fatalf("audit exit = %d", code)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(base), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if base != string(golden) {
		t.Errorf("audit odoh output differs from golden:\n%s", firstDiffLine(string(golden), base))
	}
	for _, parallel := range []string{"4", "8"} {
		out, code := runOut(t, "audit", "-parallel", parallel, "odoh")
		if code != 0 {
			t.Fatalf("audit -parallel %s exit = %d", parallel, code)
		}
		if out != base {
			t.Errorf("audit odoh -parallel %s differs from -parallel 1:\n%s",
				parallel, firstDiffLine(base, out))
		}
	}
}

// TestReplayGolden pins `decouple replay` output for one committed
// minimized counterexample (the planted odoh fail-open leak, shrunk by
// the schedule explorer) and asserts the bytes are identical across
// -parallel 1/4/8.
func TestReplayGolden(t *testing.T) {
	tracePath := filepath.Join("testdata", "replay_failopen.trace.json")
	goldenPath := filepath.Join("testdata", "replay_failopen.golden")
	base, code := runOut(t, "replay", "-parallel", "1", tracePath)
	if code != 0 {
		t.Fatalf("replay exit = %d", code)
	}
	if !strings.Contains(base, "recorded oracle no-leak: REPRODUCED") {
		t.Fatalf("replay did not reproduce the recorded violation:\n%s", base)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(base), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if base != string(golden) {
		t.Errorf("replay output differs from golden:\n%s", firstDiffLine(string(golden), base))
	}
	for _, parallel := range []string{"4", "8"} {
		out, code := runOut(t, "replay", "-parallel", parallel, tracePath)
		if code != 0 {
			t.Fatalf("replay -parallel %s exit = %d", parallel, code)
		}
		if out != base {
			t.Errorf("replay -parallel %s differs from -parallel 1:\n%s",
				parallel, firstDiffLine(base, out))
		}
	}
}

func TestReplayBadInput(t *testing.T) {
	if _, code := runOut(t, "replay"); code != 1 {
		t.Errorf("replay with no file: exit = %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"format":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := runOut(t, "replay", bad); code != 1 {
		t.Errorf("replay with bad trace: exit = %d, want 1", code)
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, al[i], bl[i])
		}
	}
	return "line counts differ"
}

// TestAuditExports exercises -stats (per-observer handle counts on
// stderr) and the three export formats.
func TestAuditExports(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "audit.jsonl")
	dot := filepath.Join(dir, "linkage.dot")
	graph := filepath.Join(dir, "linkage.json")
	var out, errBuf bytes.Buffer
	code := run(&out, &errBuf,
		[]string{"audit", "-stats", "-jsonl", jsonl, "-dot", dot, "-graphjson", graph, "odoh"})
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "Audit: Oblivious DNS") {
		t.Errorf("report missing header:\n%s", out.String())
	}
	stderr := errBuf.String()
	if !strings.Contains(stderr, "ledger stats:") || !strings.Contains(stderr, "handles") {
		t.Errorf("-stats output missing ledger summary:\n%s", stderr)
	}
	for _, o := range []string{"Resolver", "Oblivious Resolver", "Origin"} {
		if !strings.Contains(stderr, o) {
			t.Errorf("-stats missing observer %q:\n%s", o, stderr)
		}
	}
	for path, want := range map[string]string{
		jsonl: `"type":"audit"`,
		dot:   "graph linkage {",
		graph: `"system"`,
	} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("export %s: %v", path, err)
		}
		if !strings.Contains(string(b), want) {
			t.Errorf("export %s missing %q:\n%s", path, want, b)
		}
	}
}

func TestAuditErrors(t *testing.T) {
	if _, code := runOut(t, "audit", "nonsense"); code != 1 {
		t.Errorf("unknown scenario exit = %d, want 1", code)
	}
	if _, code := runOut(t, "audit"); code != 1 {
		t.Errorf("missing scenario exit = %d, want 1", code)
	}
}
