package main

import (
	"bytes"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code := run(&buf, args)
	return buf.String(), code
}

func TestList(t *testing.T) {
	out, code := runOut(t, "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"digitalcash", "mixnet", "privacypass", "odns", "pgpp", "mpr", "ppm", "vpn", "ech"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestShow(t *testing.T) {
	out, code := runOut(t, "show", "vpn")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "(▲, ●)") || !strings.Contains(out, "NOT DECOUPLED") {
		t.Errorf("show vpn output:\n%s", out)
	}
}

func TestShowUnknown(t *testing.T) {
	if _, code := runOut(t, "show", "nonsense"); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}

func TestAnalyze(t *testing.T) {
	out, code := runOut(t, "analyze")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Count(out, "DECOUPLED") != 9 {
		t.Errorf("analyze lines:\n%s", out)
	}
}

func TestTables(t *testing.T) {
	out, code := runOut(t, "tables")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Count(out, "paper §") != 9 {
		t.Errorf("tables output missing systems:\n%s", out)
	}
}

func TestCollude(t *testing.T) {
	out, code := runOut(t, "collude", "mixnet", "Mix 1", "Receiver")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.HasPrefix(out, "NO") {
		t.Errorf("mix1+receiver should not re-couple:\n%s", out)
	}
	out, code = runOut(t, "collude", "mpr", "Relay 1", "Relay 2")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.HasPrefix(out, "YES") {
		t.Errorf("relay1+relay2 should re-couple:\n%s", out)
	}
}

func TestColludeErrors(t *testing.T) {
	if _, code := runOut(t, "collude", "mpr", "Nobody"); code != 1 {
		t.Errorf("unknown entity exit = %d", code)
	}
	if _, code := runOut(t, "collude", "mpr", "User"); code != 1 {
		t.Errorf("user-in-coalition exit = %d", code)
	}
}

func TestNoArgsUsage(t *testing.T) {
	if _, code := runOut(t); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if _, code := runOut(t, "bogus-command"); code != 2 {
		t.Errorf("bad-command exit = %d, want 2", code)
	}
}
