package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decoupling/internal/schema/catalog"
)

// TestAuditStaticGolden pins the static audit bytes for the ODoH
// scenario. There is no run behind the report — it is derived from
// declarations alone — so beyond byte-stability across -parallel
// settings (asserted here), any diff at all is an intentional schema
// change. Refresh with: go test ./cmd/decouple -run TestAuditStaticGolden -update
func TestAuditStaticGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "audit_static_odoh.golden")
	base, code := runOut(t, "audit", "-static", "-parallel", "1", "odoh")
	if code != 0 {
		t.Fatalf("audit -static exit = %d", code)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(base), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if base != string(golden) {
		t.Errorf("audit -static odoh differs from golden:\n%s", firstDiffLine(string(golden), base))
	}
	for _, parallel := range []string{"4", "8"} {
		out, code := runOut(t, "audit", "-static", "-parallel", parallel, "odoh")
		if code != 0 {
			t.Fatalf("audit -static -parallel %s exit = %d", parallel, code)
		}
		if out != base {
			t.Errorf("audit -static -parallel %s differs from -parallel 1:\n%s",
				parallel, firstDiffLine(base, out))
		}
	}
}

// TestAuditStaticProbeConvicted pins the planted negative control at
// the CLI surface: auditing the snooping-proxy scenario must exit
// nonzero with the handler, message, and field named on stderr.
func TestAuditStaticProbeConvicted(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{"audit", "-static", "odoh-snoop"})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errw.String())
	}
	for _, want := range []string{`role "Resolver"`, "odoh_query.sealed_query", "declared opaque"} {
		if !strings.Contains(errw.String(), want) {
			t.Errorf("conviction missing %q:\n%s", want, errw.String())
		}
	}
}

// TestAuditStaticAll sweeps every declared scenario: probes are skipped
// loudly (they convict by design), everything else renders.
func TestAuditStaticAll(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{"audit", "-static", "all"})
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errw.String())
	}
	for _, id := range catalog.IDs() {
		header := "Static audit: " + id + " —"
		if catalog.IsProbe(id) {
			if strings.Contains(out.String(), header) {
				t.Errorf("probe %s rendered in -static all", id)
			}
			if !strings.Contains(errw.String(), "skipping planted probe") {
				t.Errorf("probe %s skipped silently:\n%s", id, errw.String())
			}
			continue
		}
		if !strings.Contains(out.String(), header) {
			t.Errorf("scenario %s missing from -static all", id)
		}
	}
}

func TestAuditStaticExports(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "static.jsonl")
	dot := filepath.Join(dir, "static.dot")
	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{"audit", "-static", "-jsonl", jsonl, "-dot", dot, "mixnet"})
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errw.String())
	}
	for path, wants := range map[string][]string{
		jsonl: {`"type":"static"`, `"type":"static_entity"`, `"type":"static_partition"`},
		dot:   {"digraph static {", `"Mix 1" -> "Mix 2"`},
	} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("export %s: %v", path, err)
		}
		for _, want := range wants {
			if !strings.Contains(string(b), want) {
				t.Errorf("export %s missing %q:\n%s", path, want, b)
			}
		}
	}
}

func TestAuditStaticErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"audit", "-static", "nonsense"}); code != 1 {
		t.Errorf("unknown scenario exit = %d, want 1", code)
	}
	if code := run(&out, &errw, []string{"audit", "-static"}); code != 1 {
		t.Errorf("missing scenario exit = %d, want 1", code)
	}
	if code := run(&out, &errw, []string{"audit", "-static", "-faults", "flaky", "odoh"}); code != 1 {
		t.Errorf("-static -faults exit = %d, want 1", code)
	}
	if code := run(&out, &errw, []string{"audit", "-static", "-stats", "odoh"}); code != 1 {
		t.Errorf("-static -stats exit = %d, want 1", code)
	}
}
