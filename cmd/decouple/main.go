// Command decouple is the analysis CLI: it lists the paper's systems,
// prints any published decoupling table, runs the verdict and coalition
// analysis, and answers collusion what-ifs.
//
// Usage:
//
//	decouple list
//	decouple tables                 # every published table
//	decouple show <system-id>       # table + verdict
//	decouple analyze                # all systems, one verdict per line
//	decouple collude <system-id> <entity> [<entity>...]
//
// System ids: digitalcash, mixnet, privacypass, odns, pgpp, mpr, ppm,
// vpn, ech.
//
// Profiling flags (shared with cmd/experiments):
//
//	-cpuprofile f    pprof CPU profile of the whole invocation
//	-memprofile f    pprof heap profile written at exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"decoupling/internal/core"
)

func main() {
	flag.Usage = usage
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to `file`")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to `file`")
	flag.Parse()
	code := 0
	defer func() { os.Exit(code) }()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decouple:", err)
			code = 2
			return
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "decouple:", err)
			code = 2
			return
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "decouple:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "decouple:", err)
			}
		}()
	}
	code = run(os.Stdout, flag.Args())
}

// run dispatches a command, writing output to w. It returns the exit
// code; errors are printed to stderr.
func run(w io.Writer, args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = list(w)
	case "tables":
		err = tables(w)
	case "show":
		if len(args) != 2 {
			err = fmt.Errorf("usage: decouple show <system-id>")
		} else {
			err = show(w, args[1])
		}
	case "analyze":
		err = analyzeAll(w)
	case "collude":
		if len(args) < 3 {
			err = fmt.Errorf("usage: decouple collude <system-id> <entity> [<entity>...]")
		} else {
			err = collude(w, args[1], args[2:])
		}
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "decouple:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `decouple — analyze systems with the Decoupling Principle

  decouple list                                list the paper's systems
  decouple tables                              print every published table
  decouple show <system-id>                    print a system's table and verdict
  decouple analyze                             verdicts for every system
  decouple collude <system-id> <entity>...     can this coalition re-couple?
`)
}

func sortedIDs() []string {
	reg := core.Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func list(w io.Writer) error {
	reg := core.Registry()
	for _, id := range sortedIDs() {
		s := reg[id]
		fmt.Fprintf(w, "%-12s §%-6s %s\n", id, s.Section, s.Name)
	}
	return nil
}

func tables(w io.Writer) error {
	for _, id := range sortedIDs() {
		if err := show(w, id); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func lookup(id string) (*core.System, error) {
	s, ok := core.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("unknown system %q (try: %s)", id, strings.Join(sortedIDs(), ", "))
	}
	return s, nil
}

func show(w io.Writer, id string) error {
	s, err := lookup(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s (paper §%s)\n\n", s.Name, s.Section)
	fmt.Fprint(w, core.RenderTable(s))
	v, err := core.Analyze(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s\n", v)
	if s.Notes != "" {
		fmt.Fprintf(w, "\n%s\n", s.Notes)
	}
	return nil
}

func analyzeAll(w io.Writer) error {
	reg := core.Registry()
	for _, id := range sortedIDs() {
		v, err := core.Analyze(reg[id])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %s\n", id, v)
	}
	return nil
}

func collude(w io.Writer, id string, members []string) error {
	s, err := lookup(id)
	if err != nil {
		return err
	}
	// Reduce the system to the given coalition by marking everyone else
	// (except the user) as absent, then re-analyze with only those
	// entities as potential colluders.
	var coalition []core.Entity
	for _, name := range members {
		e := s.Entity(name)
		if e == nil {
			return fmt.Errorf("system %q has no entity %q", id, name)
		}
		if e.User {
			return fmt.Errorf("%q is the user; collusion is among service entities", name)
		}
		coalition = append(coalition, *e)
	}
	reduced := &core.System{
		Name:          s.Name + " (coalition)",
		Section:       s.Section,
		SharedSecrets: s.SharedSecrets,
	}
	reduced.Entities = append(reduced.Entities, *s.User())
	reduced.Entities = append(reduced.Entities, coalition...)
	v, err := core.Analyze(reduced)
	if err != nil {
		return err
	}
	if v.Degree > 0 && v.Degree <= len(coalition) {
		fmt.Fprintf(w, "YES — {%s} can re-couple identity with data (min sub-coalition: %s)\n",
			strings.Join(members, ", "), strings.Join(v.MinCoalition, "+"))
	} else {
		fmt.Fprintf(w, "NO — {%s} cannot re-couple identity with data\n", strings.Join(members, ", "))
	}
	return nil
}
