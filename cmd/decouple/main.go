// Command decouple is the analysis CLI: it lists the paper's systems,
// prints any published decoupling table, runs the verdict and coalition
// analysis, answers collusion what-ifs, and runs provenance audits that
// explain WHY each measured tuple holds.
//
// Usage:
//
//	decouple list
//	decouple tables                 # every published table
//	decouple show <system-id>       # table + verdict
//	decouple analyze                # all systems, one verdict per line
//	decouple collude <system-id> <entity> [<entity>...]
//	decouple audit <scenario-id>    # run a scenario, explain every tuple
//	decouple audit -static <id|all> # derive static tuples from declared schemas
//	decouple -explain <scenario-id> # shorthand for audit
//	decouple replay <trace-file>    # re-execute an explorer counterexample
//
// Replay re-executes a minimized counterexample serialized by
// `experiments -explore -traces DIR`: the recorded case (probe or
// experiment, schedules, faults, clients) runs once, the invariant
// oracles are re-asserted, and the output states whether the recorded
// violation reproduced. Output is byte-identical across -parallel
// values.
//
// System ids: digitalcash, mixnet, privacypass, odns, pgpp, mpr, ppm,
// vpn, ech. Audit scenario ids: mixnet, odns, odoh.
//
// `audit -static` needs no run at all: it derives each role's
// knowledge tuple and the coalition closure purely from the declared
// message schemas in internal/schema/catalog, rendering the evidence
// (message.field and the flow it arrived by) behind every component.
// A scenario whose declarations read a field declared opaque to them
// (the planted odoh-snoop probe) is convicted with the role, message,
// and field named, and the command exits nonzero. `-static all`
// renders every non-probe scenario; -jsonl and -dot emit the static
// report and declared topology.
//
// Audit flags (after the subcommand):
//
//	-parallel N      client goroutines (output is byte-identical
//	                 across values; that is the point)
//	-faults p        run the scenario under an injected fault plan: a
//	                 named plan (flaky, split, tail) or a spec string
//	                 (see simnet.ParseFaultPlan); clients run through
//	                 the fail-closed resilience layer and the audit is
//	                 byte-identical for a fixed plan
//	-stats           ledger stats on stderr, with per-observer
//	                 distinct-handle counts
//	-jsonl f         machine-readable audit (JSON Lines)
//	-dot f           linkage graph in Graphviz DOT
//	-graphjson f     linkage graph as one JSON document
//
// Profiling flags (shared with cmd/experiments):
//
//	-cpuprofile f    pprof CPU profile of the whole invocation
//	-memprofile f    pprof heap profile written at exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"decoupling/internal/core"
	"decoupling/internal/experiments"
	"decoupling/internal/explore"
	"decoupling/internal/ledger"
	"decoupling/internal/provenance"
	"decoupling/internal/schema"
	"decoupling/internal/schema/catalog"
	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
)

func main() {
	flag.Usage = usage
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to `file`")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to `file`")
	explain := flag.String("explain", "", "run a provenance audit of `scenario` (shorthand for the audit subcommand)")
	flag.Parse()
	code := 0
	defer func() { os.Exit(code) }()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decouple:", err)
			code = 2
			return
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "decouple:", err)
			code = 2
			return
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "decouple:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "decouple:", err)
			}
		}()
	}
	args := flag.Args()
	if *explain != "" {
		args = append([]string{"audit", *explain}, args...)
	}
	code = run(os.Stdout, os.Stderr, args)
}

// run dispatches a command, writing output to out and diagnostics to
// errw. It returns the exit code.
func run(out, errw io.Writer, args []string) int {
	if len(args) == 0 {
		fprintUsage(errw)
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = list(out)
	case "tables":
		err = tables(out)
	case "show":
		if len(args) != 2 {
			err = fmt.Errorf("usage: decouple show <system-id>")
		} else {
			err = show(out, args[1])
		}
	case "analyze":
		err = analyzeAll(out)
	case "collude":
		if len(args) < 3 {
			err = fmt.Errorf("usage: decouple collude <system-id> <entity> [<entity>...]")
		} else {
			err = collude(out, args[1], args[2:])
		}
	case "audit":
		err = audit(out, errw, args[1:])
	case "replay":
		err = replay(out, errw, args[1:])
	default:
		fprintUsage(errw)
		return 2
	}
	if err != nil {
		fmt.Fprintln(errw, "decouple:", err)
		return 1
	}
	return 0
}

func usage() { fprintUsage(os.Stderr) }

func fprintUsage(w io.Writer) {
	fmt.Fprint(w, `decouple — analyze systems with the Decoupling Principle

  decouple list                                list the paper's systems
  decouple tables                              print every published table
  decouple show <system-id>                    print a system's table and verdict
  decouple analyze                             verdicts for every system
  decouple collude <system-id> <entity>...     can this coalition re-couple?
  decouple audit [flags] <scenario-id>         run a scenario, explain every tuple
  decouple audit -static <scenario-id|all>     derive static tuples from declared schemas
  decouple -explain <scenario-id>              shorthand for audit
  decouple replay [flags] <trace-file>         re-execute an explorer counterexample
`)
}

// replay re-executes a serialized explorer counterexample and
// re-asserts the invariant oracles against it.
func replay(out, errw io.Writer, args []string) error {
	fs := flag.NewFlagSet("decouple replay", flag.ContinueOnError)
	fs.SetOutput(errw)
	parallel := fs.Int("parallel", 1, "client goroutines; replay output is byte-identical across values")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: decouple replay [flags] <trace-file>")
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	t, err := explore.DecodeTrace(b)
	if err != nil {
		return err
	}
	res, err := explore.Replay(t, *parallel)
	if err != nil {
		return fmt.Errorf("replaying %s: %w", t.Probe, err)
	}
	_, err = io.WriteString(out, res.Render())
	return err
}

// audit runs a scenario and renders its provenance audit: the
// evidence chain behind every derived tuple component, the per-subject
// linkage chains, and the coalition handle-partition graph.
func audit(out, errw io.Writer, args []string) error {
	fs := flag.NewFlagSet("decouple audit", flag.ContinueOnError)
	fs.SetOutput(errw)
	static := fs.Bool("static", false, "audit declared schemas instead of a run: derive static knowledge tuples and the static coalition closure for `scenario` (or \"all\"); a schema conviction is a nonzero exit")
	parallel := fs.Int("parallel", 1, "client goroutines; audit output is byte-identical across values")
	faults := fs.String("faults", "", "inject a fault `plan`: a named plan ("+strings.Join(simnet.NamedFaultPlans(), ", ")+") or a spec string like \"crash:proxy@0-;loss:*>*:0.2@10ms-\"")
	stats := fs.Bool("stats", false, "print ledger stats (per-observer observation and distinct-handle counts) to stderr")
	jsonlFile := fs.String("jsonl", "", "write the machine-readable audit (JSON Lines) to `file`")
	dotFile := fs.String("dot", "", "write the linkage graph in Graphviz DOT to `file`")
	graphFile := fs.String("graphjson", "", "write the linkage graph as one JSON document to `file`")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *static {
		if *faults != "" || *graphFile != "" || *stats {
			return fmt.Errorf("-faults, -stats, and -graphjson need a run; they do not apply to -static")
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: decouple audit -static [flags] <scenario-id|all> (one of: %s)", strings.Join(catalog.IDs(), ", "))
		}
		return staticAudit(out, errw, fs.Arg(0), *jsonlFile, *dotFile)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: decouple audit [flags] <scenario-id> (one of: %s)", scenarioIDs())
	}
	sc, ok := experiments.FindAuditScenario(fs.Arg(0))
	if !ok {
		return fmt.Errorf("unknown audit scenario %q (try: %s)", fs.Arg(0), scenarioIDs())
	}

	plan, err := simnet.FaultPlanFromSpec(*faults)
	if err != nil {
		return err
	}

	// Tracing is on so ledger observations join their protocol phase;
	// the spans themselves are discarded.
	tel := telemetry.New("audit", true, nil)
	var lg *ledger.Ledger
	if plan != nil {
		if sc.RunFaults == nil {
			return fmt.Errorf("scenario %s does not support fault injection", sc.ID)
		}
		lg, err = sc.RunFaults(experiments.Ctx{Tel: tel}, *parallel, plan)
	} else {
		lg, err = sc.Run(experiments.Ctx{Tel: tel}, *parallel)
	}
	if err != nil {
		return fmt.Errorf("scenario %s: %w", sc.ID, err)
	}
	a, err := provenance.Derive(lg, sc.Expected())
	if err != nil {
		return err
	}
	if err := provenance.WriteReport(out, a); err != nil {
		return err
	}
	if *stats {
		st := lg.Stats()
		fmt.Fprintf(errw, "ledger stats: %d observations\n", st.Total)
		for _, o := range st.Observers {
			fmt.Fprintf(errw, "  %-24s %6d obs %6d handles\n", o.Observer, o.Observations, o.Handles)
		}
	}
	for _, f := range []struct {
		path  string
		write func(io.Writer, *provenance.Audit) error
	}{
		{*jsonlFile, provenance.WriteJSONL},
		{*dotFile, provenance.WriteDOT},
		{*graphFile, provenance.WriteGraphJSON},
	} {
		if f.path == "" {
			continue
		}
		if err := writeFile(f.path, a, f.write); err != nil {
			return err
		}
	}
	return nil
}

// staticAudit derives the static knowledge tuples and coalition
// closure for one declared scenario (or "all" non-probe scenarios)
// and renders the deterministic report. A schema conviction — a role
// declaring a read of a field declared opaque to it — surfaces as the
// returned error, naming the role, message, and field, so planted
// probes exit nonzero by construction. No network, ledger, or run is
// involved; the output is byte-identical across invocations and any
// -parallel setting.
func staticAudit(out, errw io.Writer, id, jsonlFile, dotFile string) error {
	ids := []string{id}
	if id == "all" {
		ids = ids[:0]
		for _, sid := range catalog.IDs() {
			if catalog.IsProbe(sid) {
				fmt.Fprintf(errw, "decouple: skipping planted probe %q (convicts by design; audit it directly)\n", sid)
				continue
			}
			ids = append(ids, sid)
		}
	}
	var derived []*schema.Static
	for _, sid := range ids {
		sc, err := catalog.Get(sid)
		if err != nil {
			return err
		}
		st, err := schema.Derive(sc)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sid, err)
		}
		derived = append(derived, st)
	}
	for i, st := range derived {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := schema.WriteReport(out, st); err != nil {
			return err
		}
	}
	for _, f := range []struct {
		path  string
		write func(io.Writer, *schema.Static) error
	}{
		{jsonlFile, schema.WriteJSONL},
		{dotFile, schema.WriteDOT},
	} {
		if f.path == "" {
			continue
		}
		fh, err := os.Create(f.path)
		if err != nil {
			return err
		}
		for _, st := range derived {
			if err := f.write(fh, st); err != nil {
				fh.Close()
				return err
			}
		}
		if err := fh.Close(); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, a *provenance.Audit, write func(io.Writer, *provenance.Audit) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func scenarioIDs() string {
	var ids []string
	for _, sc := range experiments.AuditScenarios() {
		ids = append(ids, sc.ID)
	}
	return strings.Join(ids, ", ")
}

func sortedIDs() []string {
	reg := core.Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func list(w io.Writer) error {
	reg := core.Registry()
	for _, id := range sortedIDs() {
		s := reg[id]
		fmt.Fprintf(w, "%-12s §%-6s %s\n", id, s.Section, s.Name)
	}
	return nil
}

func tables(w io.Writer) error {
	for _, id := range sortedIDs() {
		if err := show(w, id); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func lookup(id string) (*core.System, error) {
	s, ok := core.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("unknown system %q (try: %s)", id, strings.Join(sortedIDs(), ", "))
	}
	return s, nil
}

func show(w io.Writer, id string) error {
	s, err := lookup(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s (paper §%s)\n\n", s.Name, s.Section)
	fmt.Fprint(w, core.RenderTable(s))
	v, err := core.Analyze(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s\n", v)
	if s.Notes != "" {
		fmt.Fprintf(w, "\n%s\n", s.Notes)
	}
	return nil
}

func analyzeAll(w io.Writer) error {
	reg := core.Registry()
	for _, id := range sortedIDs() {
		v, err := core.Analyze(reg[id])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %s\n", id, v)
	}
	return nil
}

func collude(w io.Writer, id string, members []string) error {
	s, err := lookup(id)
	if err != nil {
		return err
	}
	// Reduce the system to the given coalition by marking everyone else
	// (except the user) as absent, then re-analyze with only those
	// entities as potential colluders.
	var coalition []core.Entity
	for _, name := range members {
		e := s.Entity(name)
		if e == nil {
			return fmt.Errorf("system %q has no entity %q", id, name)
		}
		if e.User {
			return fmt.Errorf("%q is the user; collusion is among service entities", name)
		}
		coalition = append(coalition, *e)
	}
	reduced := &core.System{
		Name:          s.Name + " (coalition)",
		Section:       s.Section,
		SharedSecrets: s.SharedSecrets,
	}
	reduced.Entities = append(reduced.Entities, *s.User())
	reduced.Entities = append(reduced.Entities, coalition...)
	v, err := core.Analyze(reduced)
	if err != nil {
		return err
	}
	if v.Degree > 0 && v.Degree <= len(coalition) {
		fmt.Fprintf(w, "YES — {%s} can re-couple identity with data (min sub-coalition: %s)\n",
			strings.Join(members, ", "), strings.Join(v.MinCoalition, "+"))
	} else {
		fmt.Fprintf(w, "NO — {%s} cannot re-couple identity with data\n", strings.Join(members, ", "))
	}
	return nil
}
