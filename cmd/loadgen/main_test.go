package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"decoupling/internal/bench"
	"decoupling/internal/core"
	"decoupling/internal/faults"
	"decoupling/internal/ledger"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
)

// TestODoHLegSmallScale runs the sharded-proxy leg at test scale and
// holds the acceptance properties the big runs are graded on: zero
// errors, every session request accounted, and — with the ledger on —
// the same knowledge tuple and verdict the table experiments derive.
func TestODoHLegSmallScale(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	res, err := runODoH(200, 2, 16, 1, cls, lg, newLiveObs(nil), nil, 1, nil)
	if err != nil {
		t.Fatalf("odoh leg: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("odoh leg errored %d of %d requests", res.Errors, res.Requests)
	}
	if res.Requests < 200 {
		t.Fatalf("odoh leg issued %d requests for 200 clients; sessions are >= 1 request each", res.Requests)
	}
	if res.Latency.P50 <= 0 || res.Latency.Max < res.Latency.P99 {
		t.Fatalf("implausible latency stats: %+v", res.Latency)
	}

	expected := core.ObliviousDNS()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("knowledge tuples diverge under HTTP load: %v", diffs)
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !v.Decoupled {
		t.Error("measured system not decoupled under load")
	}
}

func TestMixnetLegSmallScale(t *testing.T) {
	res, err := runMixnetLeg(1000, 3, 16, 1, newLiveObs(nil), nil, 1, nil)
	if err != nil {
		t.Fatalf("mixnet leg: %v", err)
	}
	if res.Errors != 0 || res.Lost != 0 {
		t.Fatalf("mixnet leg errors=%d lost=%d", res.Errors, res.Lost)
	}
	// 1000 clients -> 100 senders, floored to the 64 minimum -> 100.
	if res.Requests != 100 {
		t.Fatalf("mixnet senders = %d, want 100", res.Requests)
	}
	// Every message crosses each relay once plus the receiver hop.
	if res.Delivered != res.Requests*4 {
		t.Fatalf("delivered %d transport hops, want %d", res.Delivered, res.Requests*4)
	}
	// The satellite fix this PR lands: delivery latency is measured from
	// send to innermost-layer open, so quantiles must be nonzero and
	// ordered. Batching alone (threshold 8, 100ms flush) puts a floor
	// well above zero.
	if res.Latency.P50 <= 0 || res.Latency.P90 < res.Latency.P50 ||
		res.Latency.P99 < res.Latency.P90 || res.Latency.Max < res.Latency.P99 {
		t.Fatalf("mixnet latency quantiles not measured or unordered: %+v", res.Latency)
	}
}

// TestLiveScrapeDuringRun exercises the observability plane against a
// real (small) run: while both legs execute, a scraper hits /metrics
// and /statusz and every response must satisfy the strict parsers.
// Run under -race this also proves the hot-loop instrumentation and
// the HTTP handlers share state safely.
func TestLiveScrapeDuringRun(t *testing.T) {
	obs := newLiveObs(telemetry.NewMetrics())
	srv := httptest.NewServer(telemetry.ObsMux(obs.metrics, obs.status))
	defer srv.Close()

	done := make(chan struct{})
	var scrapeErr error
	var scrapes int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				scrapeErr = err
				return
			}
			blob, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				scrapeErr = err
				return
			}
			if _, err := telemetry.ParseExposition(bytes.NewReader(blob)); err != nil {
				scrapeErr = err
				return
			}
			resp, err = http.Get(srv.URL + "/statusz")
			if err != nil {
				scrapeErr = err
				return
			}
			blob, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				scrapeErr = err
				return
			}
			var status bench.Status
			if err := json.Unmarshal(blob, &status); err != nil {
				scrapeErr = err
				return
			}
			scrapes++
		}
	}()

	obs.setPhase("odoh")
	if _, err := runODoH(100, 2, 8, 1, nil, nil, obs, nil, 1, nil); err != nil {
		t.Fatalf("odoh leg: %v", err)
	}
	obs.setPhase("mixnet")
	if _, err := runMixnetLeg(640, 2, 8, 1, obs, nil, 1, nil); err != nil {
		t.Fatalf("mixnet leg: %v", err)
	}
	close(done)
	wg.Wait()
	if scrapeErr != nil {
		t.Fatalf("mid-run scrape failed strict validation: %v", scrapeErr)
	}
	if scrapes == 0 {
		t.Fatal("scraper never completed a scrape during the run")
	}

	// After the run the counters must reconcile with the leg results.
	if got := obs.odoh.requests.Value(); got < 100 {
		t.Errorf("live odoh request counter = %d, want >= 100", got)
	}
	if got := obs.odoh.inflight.Value(); got != 0 {
		t.Errorf("inflight gauge after run = %v, want 0", got)
	}
	if got := obs.mixnet.latency.Count(); got == 0 {
		t.Error("mixnet latency summary saw no observations")
	}
}

func TestBenchDocShape(t *testing.T) {
	doc := bench.Doc{Clients: 10, ODoH: bench.Leg{Requests: 5}}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"clients", "odoh", "mixnet"} {
		if _, ok := back[key]; !ok {
			t.Errorf("benchmark JSON missing %q", key)
		}
	}
	if _, ok := back["ledger"]; ok {
		t.Error("ledger block should be omitted when nil (-full runs)")
	}
}

func TestQuantiles(t *testing.T) {
	ns := make([]int64, 100)
	for i := range ns {
		ns[i] = int64(i+1) * 1e6 // 1..100 ms
	}
	q := quantiles(ns)
	if q.P50 != 50 || q.P99 != 99 || q.Max != 100 {
		t.Fatalf("quantiles of 1..100ms: %+v", q)
	}
	if z := quantiles(nil); z != (bench.Latency{}) {
		t.Fatalf("quantiles(nil) = %+v, want zero", z)
	}
}

// TestMixnetLegChaosRecovers drives the relay cascade through a fault
// plan at test scale: burst loss on the first hop, a latency spike on
// the exit link with a tiny writer queue and a shed deadline so
// overload shedding actually engages. The leg must degrade loudly
// (counted injected drops/sheds, counted retries) and recover fully —
// every message delivered exactly once after the retry rounds, zero
// client-visible errors.
func TestMixnetLegChaosRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos leg waits out wall-clock fault windows; skipped in -short")
	}
	plan, err := faults.PlanFromSpec("loss:*>relay1:0.3@0-500ms;spike:relay2>receiver:2ms@0-1s")
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	ch := &chaos{plan: plan, inboxDepth: 96, outDepth: 8, shedAfter: time.Millisecond,
		maxErrRate: 0.05, minDelivered: 0.9}
	res, err := runMixnetLeg(640, 2, 16, 1, newLiveObs(nil), nil, 1, ch)
	if err != nil {
		t.Fatalf("mixnet chaos leg: %v", err)
	}
	if res.Errors != 0 {
		t.Errorf("chaos leg left %d messages undelivered after retries", res.Errors)
	}
	if got := ch.deliveredFrac.Load(); got != 1_000_000 {
		t.Errorf("delivered fraction = %d/1e6, want full recovery", got)
	}
	if ch.injectedWire.Load() == 0 {
		t.Error("30%% burst loss on the first hop injected no drops")
	}
	if ch.retries.Load() == 0 {
		t.Error("messages were lost but nothing was retried")
	}
	// Counters must surface in the faults block the benchmark document
	// and /statusz expose.
	fs := ch.summary(bench.Doc{Mixnet: res})
	if fs.Spec == "" || fs.Injected == 0 || fs.Retries == 0 {
		t.Errorf("faults summary dropped counters: %+v", fs)
	}
}

// TestChaosFailOpenConvicted plants the degradation mistake the paper
// warns about: under a permanent proxy outage, -fail-open clients fall
// back to a direct resolver run by the proxy operator. Availability is
// preserved — and the knowledge ledger must convict the run, because
// the operator now sees identity and query together.
func TestChaosFailOpenConvicted(t *testing.T) {
	if testing.Short() {
		t.Skip("fail-open conviction drives retry backoff on a wall clock; skipped in -short")
	}
	plan, err := faults.PlanFromSpec("crash:proxy@0-")
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	ch := &chaos{plan: plan, failOpen: true, inboxDepth: 16_384,
		maxErrRate: 0.05, minDelivered: 0.9}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	res, err := runODoH(100, 2, 16, 1, cls, lg, newLiveObs(nil), nil, 1, ch)
	if err != nil {
		t.Fatalf("odoh chaos leg: %v", err)
	}
	if res.Errors != 0 {
		t.Errorf("fail-open fallback should preserve availability, got %d errors", res.Errors)
	}
	if ch.fallbacks.Load() == 0 {
		t.Fatal("permanent proxy outage never triggered the fail-open fallback")
	}
	if ch.injectedODoH.Load() == 0 {
		t.Error("proxy crash window injected no faults")
	}
	expected := core.ObliviousDNS()
	measured := lg.DeriveSystem(expected)
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if v.Decoupled {
		t.Fatal("fail-open run still analyzes as DECOUPLED; the planted re-coupling escaped the ledger")
	}
	if diffs := core.CompareTuples(expected, measured); len(diffs) == 0 {
		t.Error("fail-open run shows no tuple diffs; expected the resolver entity to gain identity knowledge")
	}
}

// runTracedLegs drives both legs at test scale with every client
// traced, returning the plane and the ledger.
func runTracedLegs(t *testing.T, mode wiretrace.Mode) (*wiretrace.Plane, *ledger.Ledger) {
	t.Helper()
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	obs := newLiveObs(telemetry.NewMetrics())
	plane := wiretrace.New(mode, 1)
	plane.SetHopSampling(true)
	plane.SetClock(func() time.Duration { return time.Since(obs.start) })
	obs.wire, obs.traceMode = plane, mode.String()
	if _, err := runODoH(120, 2, 8, 1, cls, lg, obs, plane, 1, nil); err != nil {
		t.Fatalf("odoh leg: %v", err)
	}
	if _, err := runMixnetLeg(640, 2, 8, 1, obs, plane, 1, nil); err != nil {
		t.Fatalf("mixnet leg: %v", err)
	}
	return plane, lg
}

// TestTracedRunRotateAuditsDecoupled is the wall-clock half of the
// trace-plane contract: with rotation on, a real loopback run (HTTP
// header propagation on the ODoH leg, frame-codec v2 extensions on the
// mixnet TCP leg) must produce a valid span artifact whose audit finds
// the trace plane knowing exactly what the protocol plane knows.
func TestTracedRunRotateAuditsDecoupled(t *testing.T) {
	plane, lg := runTracedLegs(t, wiretrace.ModeRotate)
	if plane.SpanCount() == 0 {
		t.Fatal("traced run produced no spans")
	}

	var buf bytes.Buffer
	if err := wiretrace.WriteJSONL(&buf, plane); err != nil {
		t.Fatalf("export: %v", err)
	}
	recs, err := wiretrace.ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("strict parse of exported spans: %v", err)
	}
	if err := wiretrace.Check(recs); err != nil {
		t.Fatalf("span invariants under load: %v", err)
	}
	st := wiretrace.Summarize(recs)
	if st.Rotations == 0 {
		t.Fatal("rotate-mode run recorded no trace-id rotations")
	}

	rep, err := wiretrace.Audit(plane, lg, core.ObliviousDNS())
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !rep.Decoupled {
		var out bytes.Buffer
		rep.WriteReport(&out)
		t.Fatalf("rotating trace plane audited COUPLED under load:\n%s", out.String())
	}

	if cs := wiretrace.SummarizeCritical(plane, 3); cs == nil || cs.Requests == 0 {
		t.Fatal("critical-path analyzer stitched no requests")
	}
}

// TestTracedRunNaiveIsConvicted plants the vulnerable configuration:
// one global trace id per request must let a split coalition re-link a
// client to its query, and the audit must convict it.
func TestTracedRunNaiveIsConvicted(t *testing.T) {
	plane, lg := runTracedLegs(t, wiretrace.ModeNaive)
	rep, err := wiretrace.Audit(plane, lg, core.ObliviousDNS())
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if rep.Decoupled {
		t.Fatal("naive global-trace-id run audited DECOUPLED; the planted coupling escaped")
	}
	if len(rep.Leaks) == 0 {
		t.Fatal("naive conviction carries no coalition leak evidence")
	}
}
