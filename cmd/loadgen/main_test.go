package main

import (
	"encoding/json"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// TestODoHLegSmallScale runs the sharded-proxy leg at test scale and
// holds the acceptance properties the big runs are graded on: zero
// errors, every session request accounted, and — with the ledger on —
// the same knowledge tuple and verdict the table experiments derive.
func TestODoHLegSmallScale(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	res, err := runODoH(200, 2, 16, 1, cls, lg)
	if err != nil {
		t.Fatalf("odoh leg: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("odoh leg errored %d of %d requests", res.Errors, res.Requests)
	}
	if res.Requests < 200 {
		t.Fatalf("odoh leg issued %d requests for 200 clients; sessions are >= 1 request each", res.Requests)
	}
	if res.Latency.P50 <= 0 || res.Latency.Max < res.Latency.P99 {
		t.Fatalf("implausible latency stats: %+v", res.Latency)
	}

	expected := core.ObliviousDNS()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("knowledge tuples diverge under HTTP load: %v", diffs)
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !v.Decoupled {
		t.Error("measured system not decoupled under load")
	}
}

func TestMixnetLegSmallScale(t *testing.T) {
	res, err := runMixnetLeg(1000, 3, 16, 1)
	if err != nil {
		t.Fatalf("mixnet leg: %v", err)
	}
	if res.Errors != 0 || res.Lost != 0 {
		t.Fatalf("mixnet leg errors=%d lost=%d", res.Errors, res.Lost)
	}
	// 1000 clients -> 100 senders, floored to the 64 minimum -> 100.
	if res.Requests != 100 {
		t.Fatalf("mixnet senders = %d, want 100", res.Requests)
	}
	// Every message crosses each relay once plus the receiver hop.
	if res.Delivered != res.Requests*4 {
		t.Fatalf("delivered %d transport hops, want %d", res.Delivered, res.Requests*4)
	}
}

func TestBenchDocShape(t *testing.T) {
	doc := benchDoc{Clients: 10, ODoH: legResult{Requests: 5}}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"clients", "odoh", "mixnet"} {
		if _, ok := back[key]; !ok {
			t.Errorf("benchmark JSON missing %q", key)
		}
	}
	if _, ok := back["ledger"]; ok {
		t.Error("ledger block should be omitted when nil (-full runs)")
	}
}

func TestQuantiles(t *testing.T) {
	ns := make([]int64, 100)
	for i := range ns {
		ns[i] = int64(i+1) * 1e6 // 1..100 ms
	}
	q := quantiles(ns)
	if q.P50 != 50 || q.P99 != 99 || q.Max != 100 {
		t.Fatalf("quantiles of 1..100ms: %+v", q)
	}
	if z := quantiles(nil); z != (latencyStats{}) {
		t.Fatalf("quantiles(nil) = %+v, want zero", z)
	}
}
