// Command loadgen drives the real-socket transport stack at scale:
// 10^5–10^6 simulated clients against sharded ODoH proxies over real
// loopback HTTP, and a mixnet relay cascade over the real TCP
// transport. It measures what the simulator cannot — wall throughput,
// delivery latency quantiles, allocations per operation — while keeping
// what the simulator guarantees: with the ledger enabled, the same
// knowledge tuples and coalition verdict the table experiments derive.
//
// Output is a JSON benchmark document (BENCH_transport.json by
// convention) and a human summary on stderr. The process exits nonzero
// if any request errored, so CI can gate on a clean run.
//
// Quickstart:
//
//	go run ./cmd/loadgen -clients 100000 -out BENCH_transport.json
//
// A live run is observable while it executes: -listen mounts /metrics
// (Prometheus text exposition), /statusz (JSON run summary including
// the benchmark document so far), and /debug/pprof; -sample appends a
// per-second JSONL time series of run health:
//
//	go run ./cmd/loadgen -clients 100000 -listen :9090 -sample samples.jsonl
//	curl -s http://127.0.0.1:9090/metrics
//
// The million-client sweep (documented in EXPERIMENTS.md) disables the
// ledger and packet capture to measure the bare transport:
//
//	go run ./cmd/loadgen -full -out BENCH_transport.json
//
// Chaos under load: -faults injects a fault plan (the same grammar the
// simulator's -faults flags speak) on the run's wall clock — proxy
// crash windows become 503s on the ODoH leg, link faults land on the
// mixnet leg's real TCP transport, and small -inbox-depth/-shed-after
// values make overload shedding reachable. The run then grades itself
// against a fail-closed SLO (bounded error rate, delivered fraction,
// ledger verdict still DECOUPLED) recorded as the "faults" block of the
// benchmark document; a blown SLO is a nonzero exit:
//
//	go run ./cmd/loadgen -clients 10000 -faults "loss:*>relay1:0.25@0-800ms" -out bench.chaos.json
//
// -fail-open is the PLANTED negative control: clients that exhaust
// their retry budget under -faults fall back to a direct resolver —
// the re-coupling the paper warns about. The ledger audit must convict
// the run (verdict not DECOUPLED) and the exit must be nonzero.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decoupling/internal/bench"
	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/faults"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/nettransport"
	"decoupling/internal/odoh"
	"decoupling/internal/resilience"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
	"decoupling/internal/workload"
)

// clientHeader carries the logical client identity on the loadgen's
// proxy endpoints. Ground truth must name stable client identities;
// r.RemoteAddr is useless for that at this scale because the kernel
// recycles ephemeral ports across logical clients mid-run.
const clientHeader = "X-Loadgen-Client"

// chaosProxyNode is the fault-plan address of the ODoH proxy operator:
// a crash window on this node turns every proxy shard into a hung 503.
// The shards are one logical operator, so they fail as one node — same
// reason they share one ledger observer name.
const chaosProxyNode transport.Addr = "proxy"

// chaos is a run's fault configuration, nil when -faults is off. Each
// leg evaluates plan windows against its own wall clock (legStart is
// re-zeroed when the leg begins): the ODoH leg window-queries the plan
// directly — its proxies are plain net/http servers with no transport
// underneath — while the mixnet leg hands the plan to nettransport's
// fault layer, which enforces it at the frame codec boundary.
type chaos struct {
	plan     *faults.Plan
	failOpen bool // PLANTED: direct fallback on retry exhaustion

	// Transport tuning for the mixnet leg: small inbox/out depths plus
	// a shed deadline make overload shedding reachable at test scale.
	inboxDepth int
	outDepth   int
	shedAfter  time.Duration

	// Fail-closed SLO bounds.
	maxErrRate   float64
	minDelivered float64

	legMu    sync.Mutex
	legStart time.Time

	// Chaos accounting, aggregated across legs into bench.FaultSummary.
	injectedODoH atomic.Uint64 // proxy 503s from crash windows
	retries      atomic.Uint64 // client-level retried attempts
	fallbacks    atomic.Uint64 // planted fail-open direct queries

	// Transport counters, captured from the mixnet leg's Net before it
	// closes; deliveredFrac is distinct-messages-delivered / senders.
	injectedWire  atomic.Uint64
	shed          atomic.Uint64
	reconnects    atomic.Uint64
	deliveredFrac atomic.Uint64 // *1e6, fixed-point
}

// startLeg re-zeroes the plan clock: fault windows are leg-relative,
// so one -faults string stresses both legs without knowing how long
// the other takes.
func (ch *chaos) startLeg() {
	if ch == nil {
		return
	}
	ch.legMu.Lock()
	ch.legStart = time.Now()
	ch.legMu.Unlock()
}

// elapsed is the plan clock for the current leg.
func (ch *chaos) elapsed() time.Duration {
	ch.legMu.Lock()
	defer ch.legMu.Unlock()
	return time.Since(ch.legStart)
}

// proxyDown reports whether the ODoH proxy operator is inside a crash
// window right now.
func (ch *chaos) proxyDown() bool {
	return ch != nil && ch.plan.CrashedAt(chaosProxyNode, ch.elapsed())
}

// captureTransport records the mixnet transport's chaos counters
// before the Net closes.
func (ch *chaos) captureTransport(nt *nettransport.Net) {
	ch.injectedWire.Add(nt.FaultDrops())
	ch.shed.Add(nt.Shed())
	ch.reconnects.Add(nt.Reconnects())
}

// summary assembles the benchmark document's faults block; SLOOK is
// filled in by the caller once the ledger verdict is known.
func (ch *chaos) summary(doc bench.Doc) *bench.FaultSummary {
	fs := &bench.FaultSummary{
		Spec:       ch.plan.Spec(),
		Injected:   ch.injectedWire.Load() + ch.injectedODoH.Load(),
		Shed:       ch.shed.Load(),
		Retries:    ch.retries.Load(),
		Reconnects: ch.reconnects.Load(),
	}
	if total := doc.ODoH.Requests + doc.Mixnet.Requests; total > 0 {
		fs.ErrorRate = float64(doc.ODoH.Errors+doc.Mixnet.Errors) / float64(total)
	}
	fs.DeliveredFraction = float64(ch.deliveredFrac.Load()) / 1e6
	return fs
}

// legObs is the live instrumentation for one benchmark leg: cached
// nil-safe handles, so a run without -listen pays one pointer check
// per operation.
type legObs struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	inflight *telemetry.Gauge
	latency  *telemetry.Summary
}

// liveObs is the observability plane of a run: the registry behind
// /metrics, per-leg handles the hot loops feed, and the state /statusz
// snapshots. Constructed with a nil registry it is fully inert.
type liveObs struct {
	metrics *telemetry.Metrics
	odoh    legObs
	mixnet  legObs

	// wire is the run's trace plane (nil when tracing is off); sampled
	// counts the clients instrumented with it. /statusz snapshots both.
	wire      *wiretrace.Plane
	traceMode string
	sampled   atomic.Int64

	mu    sync.Mutex
	phase string
	doc   bench.Doc

	start time.Time
}

func newLiveObs(m *telemetry.Metrics) *liveObs {
	leg := func(name string) legObs {
		l := telemetry.A("leg", name)
		return legObs{
			requests: m.Counter(telemetry.MetricLoadgenRequests, "requests issued by the load generator", l),
			errors:   m.Counter(telemetry.MetricLoadgenErrors, "load generator request errors", l),
			inflight: m.Gauge(telemetry.MetricLoadgenInflight, "load generator requests currently in flight", l),
			latency:  m.Summary(telemetry.MetricLoadgenLatency, "request wall latency in seconds", l),
		}
	}
	return &liveObs{metrics: m, odoh: leg("odoh"), mixnet: leg("mixnet"),
		phase: "init", start: time.Now()}
}

func (o *liveObs) setPhase(p string) {
	o.mu.Lock()
	o.phase = p
	o.mu.Unlock()
}

// update mutates the /statusz benchmark document under the lock.
func (o *liveObs) update(f func(*bench.Doc)) {
	o.mu.Lock()
	f(&o.doc)
	o.mu.Unlock()
}

// status is the /statusz hook: process health plus the benchmark
// document as far as the run has gotten.
func (o *liveObs) status() (any, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	o.mu.Lock()
	st := bench.Status{
		Phase:      o.phase,
		ElapsedSec: time.Since(o.start).Seconds(),
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
		Bench:      o.doc,
	}
	o.mu.Unlock()
	// The trace block is recomputed per scrape so the critical-path
	// histogram is live mid-run, not just in the final document.
	if st.Bench.Trace == nil {
		st.Bench.Trace = traceSummary(o.wire, o.traceMode, int(o.sampled.Load()), nil)
	}
	return st, nil
}

// traceSummary builds the benchmark document's trace block from the
// plane's current state; audit carries the trace-plane verdict once
// one has run. Nil when tracing is off.
func traceSummary(p *wiretrace.Plane, mode string, sampled int, audit *bool) *bench.TraceSummary {
	if !p.Enabled() {
		return nil
	}
	ts := &bench.TraceSummary{Mode: mode, Sampled: sampled, AuditDecoupled: audit}
	for _, st := range p.Stores() {
		for _, sp := range st.Spans() {
			ts.Spans++
			if !sp.RotatedTo.IsZero() {
				ts.Rotations++
			}
		}
	}
	if cs := wiretrace.SummarizeCritical(p, 3); cs != nil {
		ts.Dominant = cs.DominantCounts
		for _, ex := range cs.Slowest {
			ts.Exemplars = append(ts.Exemplars, bench.TraceExemplar{
				Trace: ex.Trace, TotalMs: ex.TotalMs,
				Dominant: ex.Dominant, DominantMs: ex.DominantMs,
			})
		}
	}
	return ts
}

// flushTraceArtifacts writes the span JSONL and Perfetto documents.
// It runs deferred from realMain, so a run that aborts on an error
// path still leaves whatever spans it recorded behind for diagnosis.
func flushTraceArtifacts(p *wiretrace.Plane, spansPath, perfettoPath string) {
	if !p.Enabled() {
		return
	}
	write := func(path string, render func(io.Writer, *wiretrace.Plane) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: trace artifact: %v\n", err)
			return
		}
		if err := render(f, p); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: trace artifact %s: %v\n", path, err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: trace artifact %s: %v\n", path, err)
		}
	}
	write(spansPath, wiretrace.WriteJSONL)
	write(perfettoPath, wiretrace.WritePerfetto)
}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		clients = flag.Int("clients", 100_000, "logical ODoH clients to simulate")
		proxies = flag.Int("proxies", 4, "ODoH proxy shards (HTTP endpoints of one logical operator)")
		relays  = flag.Int("relays", 3, "mixes in the relay cascade")
		workers = flag.Int("workers", 256, "concurrent client goroutines")
		seed    = flag.Int64("seed", 1, "workload seed")
		out     = flag.String("out", "BENCH_transport.json", "benchmark JSON output path")
		full    = flag.Bool("full", false, "million-client sweep: 1e6 clients, ledger and capture off")
		useLg   = flag.Bool("ledger", true, "admit observations into the knowledge ledger and derive the verdict")
		listen  = flag.String("listen", "", "serve /metrics, /statusz, and /debug/pprof on this address (e.g. :9090)")
		sample  = flag.String("sample", "", "append per-second JSONL run-health samples to this file")

		traceMode = flag.String("trace-mode", "off",
			"wall-clock wire tracing: off, rotate (re-key the trace id at every decoupling boundary), or naive (one global id end-to-end — the planted mode the trace-plane audit must convict)")
		traceSample = flag.Int("trace-sample", 1000, "trace one client in N (with -trace-mode)")
		wirespans   = flag.String("wirespans", "", "write wire spans as strict JSONL to this file")
		perfetto    = flag.String("perfetto", "", "write spans as a Chrome trace_event/Perfetto JSON document to this file")

		faultsSpec = flag.String("faults", "",
			"chaos: a named fault plan ("+strings.Join(faults.NamedPlans(), ", ")+") or a spec string (see internal/faults); windows are per leg on that leg's wall clock")
		failOpen = flag.Bool("fail-open", false,
			"PLANTED negative control (needs -faults): clients that exhaust retries fall back to a direct resolver; the ledger must convict the run and the exit must be nonzero")
		shedAfter    = flag.Duration("shed-after", 2*time.Millisecond, "with -faults: bound a blocked send/delivery to this wait, then shed (typed error, counted — never silent)")
		inboxDepth   = flag.Int("inbox-depth", 16_384, "with -faults: transport per-node inbox depth (small values make overload shedding reachable)")
		outDepth     = flag.Int("out-depth", 0, "with -faults: transport writer-queue depth (0 = transport default)")
		maxErrRate   = flag.Float64("max-error-rate", 0.05, "with -faults: fail-closed SLO bound on the client-visible error rate")
		minDelivered = flag.Float64("min-delivered", 0.9, "with -faults: fail-closed SLO floor for the mixnet leg's delivered fraction after retries")
	)
	flag.Parse()
	if *full {
		*clients = 1_000_000
		*useLg = false
	}
	if *clients < 1 || *proxies < 1 || *relays < 1 || *workers < 1 || *traceSample < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: all sizes must be >= 1")
		return 2
	}
	wireMode, err := wiretrace.ParseMode(*traceMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}
	if (*wirespans != "" || *perfetto != "") && wireMode == wiretrace.ModeOff {
		fmt.Fprintln(os.Stderr, "loadgen: -wirespans/-perfetto need -trace-mode rotate or naive")
		return 2
	}

	plan, err := faults.PlanFromSpec(*faultsSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -faults: %v\n", err)
		return 2
	}
	var ch *chaos
	if plan != nil {
		ch = &chaos{
			plan: plan, failOpen: *failOpen,
			inboxDepth: *inboxDepth, outDepth: *outDepth, shedAfter: *shedAfter,
			maxErrRate: *maxErrRate, minDelivered: *minDelivered,
		}
	}
	if *failOpen && ch == nil {
		fmt.Fprintln(os.Stderr, "loadgen: -fail-open is a chaos degradation policy; it needs -faults")
		return 2
	}
	if ch != nil && ch.failOpen && !*useLg {
		fmt.Fprintln(os.Stderr, "loadgen: -fail-open needs -ledger: without it nobody can convict the fallback")
		return 2
	}

	obs := newLiveObs(telemetry.NewMetrics())
	obs.update(func(d *bench.Doc) {
		*d = bench.Doc{Clients: *clients, Proxies: *proxies, Relays: *relays,
			Workers: *workers, Seed: *seed, Full: *full}
		if ch != nil {
			// The spec is visible on /statusz from the first scrape; the
			// counters fill in as the legs finish.
			d.Faults = &bench.FaultSummary{Spec: ch.plan.Spec()}
		}
	})

	// The trace plane: hop sampling keeps the unsampled majority span-
	// free (they still carry zero-cost empty contexts), and the flush
	// is deferred so an error exit still writes the artifacts.
	plane := wiretrace.New(wireMode, *seed)
	plane.SetHopSampling(true)
	plane.SetClock(func() time.Duration { return time.Since(obs.start) })
	obs.wire, obs.traceMode = plane, wireMode.String()
	defer flushTraceArtifacts(plane, *wirespans, *perfetto)

	if *listen != "" {
		srv, addr, err := telemetry.ServeObs(*listen, obs.metrics, obs.status)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: listen %s: %v\n", *listen, err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "loadgen: observability on http://%s/metrics /statusz /debug/pprof\n", addr)
	}

	if *sample != "" {
		f, err := os.Create(*sample)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: sample file: %v\n", err)
			return 2
		}
		defer f.Close()
		sampler := telemetry.NewSampler(f, time.Second,
			telemetry.CounterVar("odoh_requests", obs.odoh.requests),
			telemetry.CounterVar("odoh_errors", obs.odoh.errors),
			telemetry.GaugeVar("odoh_inflight", obs.odoh.inflight),
			telemetry.CounterVar("mixnet_requests", obs.mixnet.requests),
		)
		sampler.Start()
		defer func() {
			if err := sampler.Stop(); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: sampler: %v\n", err)
			}
		}()
	}

	var lg *ledger.Ledger
	var cls *ledger.Classifier
	if *useLg {
		cls = ledger.NewClassifier()
		lg = ledger.New(cls, nil)
	}

	obs.setPhase("odoh")
	odohRes, err := runODoH(*clients, *proxies, *workers, *seed, cls, lg, obs, plane, *traceSample, ch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: odoh leg: %v\n", err)
		return 1
	}
	obs.update(func(d *bench.Doc) { d.ODoH = odohRes })

	obs.setPhase("mixnet")
	mixRes, err := runMixnetLeg(*clients, *relays, *workers, *seed, obs, plane, *traceSample, ch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: mixnet leg: %v\n", err)
		return 1
	}
	obs.update(func(d *bench.Doc) { d.Mixnet = mixRes })

	if lg != nil {
		expected := core.ObliviousDNS()
		measured := lg.DeriveSystem(expected)
		diffs := core.CompareTuples(expected, measured)
		verdict, err := core.Analyze(measured)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: analyze: %v\n", err)
			return 1
		}
		st := lg.Stats()
		obs.update(func(d *bench.Doc) {
			d.Ledger = &bench.LedgerSummary{
				Observations:  st.Total,
				TupleDiffs:    len(diffs),
				Decoupled:     verdict.Decoupled,
				AuditObserver: len(st.Observers),
			}
		})
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "loadgen: tuple diff under load: %s\n", d)
		}
	}
	traceCoupled := false
	if plane.Enabled() {
		var auditVerdict *bool
		if lg != nil {
			rep, err := wiretrace.Audit(plane, lg, core.ObliviousDNS())
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: trace audit: %v\n", err)
				return 1
			}
			auditVerdict = &rep.Decoupled
			if !rep.Decoupled {
				traceCoupled = true
				rep.WriteReport(os.Stderr)
			}
		}
		ts := traceSummary(plane, wireMode.String(), int(obs.sampled.Load()), auditVerdict)
		obs.update(func(d *bench.Doc) { d.Trace = ts })
		if cs := wiretrace.SummarizeCritical(plane, 3); cs != nil {
			fmt.Fprint(os.Stderr, "loadgen: "+cs.String())
		}
	}
	obs.setPhase("done")

	var doc bench.Doc
	obs.update(func(d *bench.Doc) { doc = *d })
	if ch != nil {
		fs := ch.summary(doc)
		// The fail-closed SLO: errors bounded, the lossy leg recovered
		// its messages, and — the decoupling invariant — degraded
		// availability never bought linkability: the ledger verdict is
		// still DECOUPLED with zero tuple diffs.
		fs.SLOOK = fs.ErrorRate <= ch.maxErrRate && fs.DeliveredFraction >= ch.minDelivered
		if doc.Ledger != nil && (!doc.Ledger.Decoupled || doc.Ledger.TupleDiffs > 0) {
			fs.SLOOK = false
		}
		doc.Faults = fs
		obs.update(func(d *bench.Doc) { d.Faults = fs })
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: marshal: %v\n", err)
		return 1
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
		return 1
	}

	fmt.Fprintf(os.Stderr, "loadgen: odoh  %d req %.0f req/s p50=%.2fms p99=%.2fms errors=%d\n",
		doc.ODoH.Requests, doc.ODoH.Throughput, doc.ODoH.Latency.P50, doc.ODoH.Latency.P99, doc.ODoH.Errors)
	fmt.Fprintf(os.Stderr, "loadgen: mixnet %d msgs %.0f msg/s p50=%.2fms p99=%.2fms delivered=%d lost=%d errors=%d\n",
		doc.Mixnet.Requests, doc.Mixnet.Throughput, doc.Mixnet.Latency.P50, doc.Mixnet.Latency.P99,
		doc.Mixnet.Delivered, doc.Mixnet.Lost, doc.Mixnet.Errors)
	if doc.Ledger != nil {
		fmt.Fprintf(os.Stderr, "loadgen: ledger %d observations, %d tuple diffs, decoupled=%v\n",
			doc.Ledger.Observations, doc.Ledger.TupleDiffs, doc.Ledger.Decoupled)
	}
	if doc.Trace != nil {
		verdict := "unaudited"
		if doc.Trace.AuditDecoupled != nil {
			verdict = "COUPLED"
			if *doc.Trace.AuditDecoupled {
				verdict = "decoupled"
			}
		}
		fmt.Fprintf(os.Stderr, "loadgen: trace mode=%s sampled=%d spans=%d rotations=%d audit=%s\n",
			doc.Trace.Mode, doc.Trace.Sampled, doc.Trace.Spans, doc.Trace.Rotations, verdict)
	}
	if doc.Faults != nil {
		fmt.Fprintf(os.Stderr, "loadgen: faults spec=%q injected=%d shed=%d retries=%d reconnects=%d fallbacks=%d error_rate=%.4f delivered=%.4f slo_ok=%v\n",
			doc.Faults.Spec, doc.Faults.Injected, doc.Faults.Shed, doc.Faults.Retries,
			doc.Faults.Reconnects, ch.fallbacks.Load(), doc.Faults.ErrorRate, doc.Faults.DeliveredFraction, doc.Faults.SLOOK)
	}
	if doc.Faults != nil {
		// Chaos runs are graded on the fail-closed SLO, not on a zero
		// error count — bounded errors under injected faults are the
		// point. A coupled trace plane still fails outright.
		if !doc.Faults.SLOOK || traceCoupled {
			return 1
		}
		return 0
	}
	if doc.ODoH.Errors > 0 || doc.Mixnet.Errors > 0 || traceCoupled ||
		(doc.Ledger != nil && (doc.Ledger.TupleDiffs > 0 || !doc.Ledger.Decoupled)) {
		return 1
	}
	return 0
}

// runODoH drives the sharded-proxy leg: every proxy shard is a real
// net/http server belonging to the same logical operator (one ledger
// observer), clients round-robin across shards, and each client issues
// a churn-model session of oblivious queries over loopback HTTP.
func runODoH(clients, shards, workers int, seed int64, cls *ledger.Classifier, lg *ledger.Ledger, obs *liveObs, plane *wiretrace.Plane, traceSample int, ch *chaos) (bench.Leg, error) {
	var res bench.Leg
	ch.startLeg()

	browsing, err := workload.NewBrowsing(seed, 100, 1.2)
	if err != nil {
		return res, err
	}
	sessions, err := workload.NewSessions(seed+1, 3, 0.8)
	if err != nil {
		return res, err
	}

	zone := dns.NewZone("test")
	for i, name := range browsing.Names {
		zone.Add(dnswire.A(name, 300, [4]byte{198, 51, 100, byte(i)}))
	}
	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{zone}, Ledger: lg}
	origin.Wire = plane
	target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
	if err != nil {
		return res, err
	}
	target.InstrumentWire(plane)
	keyID, pub := target.KeyConfig()

	// All shards share the proxy name: sharding is a deployment detail
	// of one operator, and the derived knowledge tuple must say so.
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
	proxy.InstrumentWire(plane)

	// Chaos retry policy, plus the planted fail-open fallback: a plain
	// recursive resolver registered under the proxy operator's name —
	// the operator who ran the oblivious proxy now sees plaintext
	// identity+name, exactly the re-coupling E16 convicts.
	var chaosPolicy resilience.Policy
	var direct *dns.Resolver
	if ch != nil {
		chaosPolicy = resilience.Default("odoh")
		if ch.failOpen {
			chaosPolicy.Mode = resilience.FailOpen
			direct = dns.NewResolver(odoh.ProxyName, []dns.Authority{origin}, lg, nil)
		}
	}
	if cls != nil {
		cls.RegisterIdentity(odoh.ProxyName, "", "", core.NonSensitive)
		cls.RegisterIdentity(odoh.TargetName, "", "", core.NonSensitive)
		cls.RegisterIdentity("Origin", "", "", core.NonSensitive)
		for i, name := range browsing.Names {
			cls.RegisterData(dnswire.CanonicalName(name), fmt.Sprintf("client%06d", i%clients), "", core.Sensitive)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /proxy", func(w http.ResponseWriter, r *http.Request) {
		if ch.proxyDown() {
			// Injected fault, HTTP flavor: the proxy operator is inside
			// a crash window, so every shard hangs briefly and fails —
			// the wall-clock analogue of simnet dropping inbound to a
			// crashed node. Counted apart from organic errors.
			ch.injectedODoH.Add(1)
			time.Sleep(2 * time.Millisecond)
			http.Error(w, "injected fault: proxy crash window", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		who := r.Header.Get(clientHeader)
		if who == "" {
			who = r.RemoteAddr
		}
		if h := r.Header.Get(odoh.TraceHeader); h != "" && plane.Enabled() {
			// Re-deposit the header-borne context keyed by the query
			// bytes, exactly as ProxyHandler would.
			if ctx, err := wiretrace.ParseHeader(h); err == nil {
				plane.Handoff(body, ctx)
			}
		}
		resp, err := proxy.Forward(who, body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Write(resp)
	})

	servers := make([]*http.Server, shards)
	urls := make([]string, shards)
	for i := range servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, fmt.Errorf("proxy shard %d: %w", i, err)
		}
		urls[i] = "http://" + ln.Addr().String() + "/proxy"
		servers[i] = &http.Server{Handler: mux}
		go servers[i].Serve(ln)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	httpClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers,
	}}

	// Per-client session lengths, drawn up front so workers stay
	// lock-free; registration of client ground truth rides along.
	lengths := make([]int, clients)
	total := 0
	for i := range lengths {
		lengths[i] = sessions.Next()
		total += lengths[i]
		if cls != nil {
			who := fmt.Sprintf("client%06d", i)
			cls.RegisterIdentity(who, who, "", core.Sensitive)
		}
	}

	latencies := make([]int64, total)
	var next, errs, done atomic.Uint64

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker workload stream: Browsing's Zipf rng is not safe
			// for concurrent draws, and a shared lock on it would serialize
			// the very hot path this benchmark measures. Same name universe,
			// worker-decorrelated seed.
			wb, err := workload.NewBrowsing(seed+int64(w)*7919, 100, 1.2)
			if err != nil {
				errs.Add(1)
				obs.odoh.errors.Add(1)
				return
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= clients {
					return
				}
				who := fmt.Sprintf("client%06d", i)
				c := odoh.NewClient(who, keyID, pub)
				traced := plane.Enabled() && i%traceSample == 0
				if traced {
					c.InstrumentWire(plane)
					obs.sampled.Add(1)
				}
				url := urls[i%len(urls)]
				forward := func(clientAddr string, raw []byte) ([]byte, error) {
					return postQuery(httpClient, url, clientAddr, raw, plane)
				}
				query := func(name string) (*dnswire.Message, error) {
					return c.Query(name, dnswire.TypeA, forward)
				}
				if ch != nil {
					// Under chaos every query runs behind the shared
					// resilience layer: wall-clock backoff, retries
					// counted, and — only in the planted -fail-open
					// mode — the direct fallback on exhaustion.
					attempts := 0
					fw := func(clientAddr string, raw []byte) ([]byte, error) {
						attempts++
						return forward(clientAddr, raw)
					}
					rc := &odoh.ResilientClient{Client: c, Policy: chaosPolicy,
						Sleep: time.Sleep, Forwards: []odoh.ForwardFunc{fw}}
					if ch.failOpen {
						rc.Fallback = func(name string, qtype dnswire.Type) (*dnswire.Message, error) {
							ch.fallbacks.Add(1)
							resp := direct.Resolve(who, dnswire.NewQuery(1, name, qtype))
							if resp.RCode != dnswire.RCodeNoError {
								return nil, fmt.Errorf("direct fallback failed: rcode=%v", resp.RCode)
							}
							return resp, nil
						}
					}
					query = func(name string) (*dnswire.Message, error) {
						attempts = 0
						resp, err := rc.Query(name, dnswire.TypeA)
						if attempts > 1 {
							ch.retries.Add(uint64(attempts - 1))
						}
						return resp, err
					}
				}
				for j := 0; j < lengths[i]; j++ {
					slot := done.Add(1) - 1
					obs.odoh.inflight.Add(1)
					name := wb.Next(i)
					if traced && j == 0 {
						// A sampled client's first query targets its own
						// registered name, pinning at least one query whose
						// ground-truth subject is the querier. The rotating
						// plane must keep even that request unlinkable at
						// every split vantage pair; the naive global id
						// deterministically re-links it and is convicted.
						name = browsing.Names[i%len(browsing.Names)]
					}
					t0 := time.Now()
					_, err := query(name)
					d := time.Since(t0)
					obs.odoh.inflight.Add(-1)
					latencies[slot] = d.Nanoseconds()
					obs.odoh.requests.Add(1)
					obs.odoh.latency.Observe(d.Seconds())
					if err != nil {
						errs.Add(1)
						obs.odoh.errors.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	res.Requests = done.Load()
	res.Errors = errs.Load()
	res.Seconds = elapsed.Seconds()
	res.Throughput = float64(res.Requests) / elapsed.Seconds()
	res.Latency = quantiles(latencies[:res.Requests])
	if res.Requests > 0 {
		res.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / res.Requests
		res.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / res.Requests
	}
	return res, nil
}

// postQuery is the client half of the loadgen proxy protocol: an
// oblivious query POSTed to a shard with the logical identity in a
// header, because ground truth needs stable client names and ephemeral
// ports are recycled across logical clients at this scale.
func postQuery(client *http.Client, url, clientAddr string, raw []byte, plane *wiretrace.Plane) ([]byte, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/oblivious-dns-message")
	req.Header.Set(clientHeader, clientAddr)
	if ctx := plane.TakeHandoff(raw); !ctx.IsZero() {
		req.Header.Set(odoh.TraceHeader, ctx.MarshalHeader())
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxy returned %s: %s", resp.Status, out)
	}
	return out, nil
}

// runMixnetLeg drives the relay cascade over the real TCP transport:
// one sender per ten ODoH clients (capped to keep per-message onion
// crypto from dominating the wall clock), batch threshold 8 with a
// timeout flush so stragglers drain. Delivery latency is send-to-open:
// the transport clock is read just before the sender queues the onion
// and again (by the receiver) when the innermost layer is opened, so
// the quantiles include batching delay — the anonymity/latency price
// the paper's mixnet discussion is about.
func runMixnetLeg(clients, relays, workers int, seed int64, obs *liveObs, plane *wiretrace.Plane, traceSample int, ch *chaos) (bench.Leg, error) {
	var res bench.Leg
	ch.startLeg()

	senders := clients / 10
	if senders < 64 {
		senders = 64
	}
	if senders > 50_000 {
		senders = 50_000
	}

	opts := nettransport.Options{
		Mode:           nettransport.ModeTCP,
		Seed:           seed,
		DisableCapture: true,
		InboxDepth:     16_384,
	}
	if ch != nil {
		// Chaos tuning: bounded queues plus a shed deadline turn a slow
		// node into typed, counted sheds instead of a stalled writer
		// pool.
		opts.InboxDepth = ch.inboxDepth
		opts.OutDepth = ch.outDepth
		opts.ShedAfter = ch.shedAfter
	}
	nt := nettransport.New(opts)
	defer nt.Close()
	nt.Instrument(telemetry.New("loadgen", false, obs.metrics))

	var route []mixnet.NodeInfo
	for i := 1; i <= relays; i++ {
		m, err := mixnet.NewMix(nt, fmt.Sprintf("Relay %d", i),
			transport.Addr(fmt.Sprintf("relay%d", i)), 8, 100*time.Millisecond, nil)
		if err != nil {
			return res, err
		}
		m.InstrumentWire(plane)
		route = append(route, m.Info())
	}
	rcv, err := mixnet.NewReceiver(nt, "Receiver", "receiver", false, nil)
	if err != nil {
		return res, err
	}
	rcv.InstrumentWire(plane)
	if ch != nil {
		// Link faults engage at the frame codec, crash windows arm their
		// wall-clock timers now — the leg's t=0.
		nt.ApplyFaults(ch.plan)
	}

	// sendAt[i] is the transport-clock instant sender i queued its
	// onion; slot i is owned by exactly one worker, and the main
	// goroutine reads only after wg.Wait.
	sendAt := make([]time.Duration, senders)

	var next, errs atomic.Uint64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= senders {
					return
				}
				s := &mixnet.Sender{Addr: transport.Addr(fmt.Sprintf("sender%06d", i))}
				if plane.Enabled() && i%traceSample == 0 {
					s.Wire = plane
					obs.sampled.Add(1)
				}
				sendAt[i] = nt.Now()
				obs.mixnet.requests.Add(1)
				if err := s.Send(nt, route, rcv.Info(), []byte(fmt.Sprintf("message %06d", i))); err != nil {
					if ch == nil {
						errs.Add(1)
						obs.mixnet.errors.Add(1)
					}
					// Under chaos a failed send (shed, crashed relay) is
					// retryable, not terminal: the retry rounds below pick
					// it up, and only messages still missing at the end
					// count as errors.
				}
			}
		}()
	}
	wg.Wait()
	nt.Run()

	// delivered returns the set of distinct sender indices whose message
	// reached the receiver; duplicates (a mix flushing a stale batch after
	// a crash window plus our retry of the same index) collapse here.
	delivered := func() map[int]bool {
		got := make(map[int]bool, senders)
		for _, r := range rcv.Inbox() {
			var idx int
			if _, err := fmt.Sscanf(string(r.Body), "message %06d", &idx); err == nil && idx >= 0 && idx < senders {
				got[idx] = true
			}
		}
		return got
	}

	if ch != nil {
		// Retry rounds: resend only the missing indices, pausing between
		// rounds so crash/spike/loss windows expire and restarted nodes
		// finish rebinding. Each resend is a counted retry; send errors
		// (typed sheds, ErrNodeDown) just roll into the next round.
		const maxRounds = 20
		for round := 0; round < maxRounds; round++ {
			got := delivered()
			if len(got) == senders {
				break
			}
			time.Sleep(150 * time.Millisecond)
			for i := 0; i < senders; i++ {
				if got[i] {
					continue
				}
				ch.retries.Add(1)
				s := &mixnet.Sender{Addr: transport.Addr(fmt.Sprintf("sender%06d", i))}
				_ = s.Send(nt, route, rcv.Info(), []byte(fmt.Sprintf("message %06d", i)))
			}
			nt.Run()
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	inbox := rcv.Inbox()
	if ch == nil {
		if got := len(inbox); got != senders {
			return res, fmt.Errorf("receiver got %d of %d messages (lost %d)", got, senders, nt.Lost())
		}
	}

	// Reconstruct per-message delivery latency from the receiver's
	// timestamps: bodies carry the sender index, Received.Time is the
	// transport clock at the moment the innermost layer was opened. Under
	// chaos only the first copy of each index counts.
	latencies := make([]int64, 0, senders)
	seen := make(map[int]bool, senders)
	for _, r := range inbox {
		var idx int
		if _, err := fmt.Sscanf(string(r.Body), "message %06d", &idx); err != nil || idx < 0 || idx >= senders {
			continue
		}
		if seen[idx] {
			continue
		}
		seen[idx] = true
		if d := r.Time - sendAt[idx]; d > 0 {
			latencies = append(latencies, d.Nanoseconds())
			obs.mixnet.latency.Observe(d.Seconds())
		}
	}

	res.Requests = uint64(senders)
	res.Errors = errs.Load()
	if ch != nil {
		undelivered := uint64(senders - len(seen))
		res.Errors += undelivered
		obs.mixnet.errors.Add(undelivered)
		ch.deliveredFrac.Store(uint64(float64(len(seen)) / float64(senders) * 1e6))
		ch.captureTransport(nt)
	}
	res.Seconds = elapsed.Seconds()
	res.Throughput = float64(senders) / elapsed.Seconds()
	res.Latency = quantiles(latencies)
	res.Delivered = nt.Delivered()
	res.Lost = nt.Lost()
	if res.Requests > 0 {
		res.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / res.Requests
		res.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / res.Requests
	}
	return res, nil
}

func quantiles(ns []int64) bench.Latency {
	if len(ns) == 0 {
		return bench.Latency{}
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / 1e6
	}
	return bench.Latency{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: at(1)}
}
