// Command loadgen drives the real-socket transport stack at scale:
// 10^5–10^6 simulated clients against sharded ODoH proxies over real
// loopback HTTP, and a mixnet relay cascade over the real TCP
// transport. It measures what the simulator cannot — wall throughput,
// delivery latency quantiles, allocations per operation — while keeping
// what the simulator guarantees: with the ledger enabled, the same
// knowledge tuples and coalition verdict the table experiments derive.
//
// Output is a JSON benchmark document (BENCH_transport.json by
// convention) and a human summary on stderr. The process exits nonzero
// if any request errored, so CI can gate on a clean run.
//
// Quickstart:
//
//	go run ./cmd/loadgen -clients 100000 -out BENCH_transport.json
//
// The million-client sweep (documented in EXPERIMENTS.md) disables the
// ledger and packet capture to measure the bare transport:
//
//	go run ./cmd/loadgen -full -out BENCH_transport.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/nettransport"
	"decoupling/internal/odoh"
	"decoupling/internal/transport"
	"decoupling/internal/workload"
)

// clientHeader carries the logical client identity on the loadgen's
// proxy endpoints. Ground truth must name stable client identities;
// r.RemoteAddr is useless for that at this scale because the kernel
// recycles ephemeral ports across logical clients mid-run.
const clientHeader = "X-Loadgen-Client"

type latencyStats struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

type legResult struct {
	Requests    uint64       `json:"requests"`
	Errors      uint64       `json:"errors"`
	Seconds     float64      `json:"seconds"`
	Throughput  float64      `json:"requests_per_sec"`
	Latency     latencyStats `json:"latency"`
	AllocsPerOp uint64       `json:"allocs_per_op"`
	BytesPerOp  uint64       `json:"bytes_per_op"`
	Delivered   uint64       `json:"delivered,omitempty"`
	Lost        uint64       `json:"lost,omitempty"`
}

type ledgerResult struct {
	Observations  int  `json:"observations"`
	TupleDiffs    int  `json:"tuple_diffs"`
	Decoupled     bool `json:"verdict_decoupled"`
	AuditObserver int  `json:"observers"`
}

type benchDoc struct {
	Clients int           `json:"clients"`
	Proxies int           `json:"proxies"`
	Relays  int           `json:"relays"`
	Workers int           `json:"workers"`
	Seed    int64         `json:"seed"`
	Full    bool          `json:"full"`
	ODoH    legResult     `json:"odoh"`
	Mixnet  legResult     `json:"mixnet"`
	Ledger  *ledgerResult `json:"ledger,omitempty"`
}

func main() {
	var (
		clients = flag.Int("clients", 100_000, "logical ODoH clients to simulate")
		proxies = flag.Int("proxies", 4, "ODoH proxy shards (HTTP endpoints of one logical operator)")
		relays  = flag.Int("relays", 3, "mixes in the relay cascade")
		workers = flag.Int("workers", 256, "concurrent client goroutines")
		seed    = flag.Int64("seed", 1, "workload seed")
		out     = flag.String("out", "BENCH_transport.json", "benchmark JSON output path")
		full    = flag.Bool("full", false, "million-client sweep: 1e6 clients, ledger and capture off")
		useLg   = flag.Bool("ledger", true, "admit observations into the knowledge ledger and derive the verdict")
	)
	flag.Parse()
	if *full {
		*clients = 1_000_000
		*useLg = false
	}
	if *clients < 1 || *proxies < 1 || *relays < 1 || *workers < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: all sizes must be >= 1")
		os.Exit(2)
	}

	doc := benchDoc{Clients: *clients, Proxies: *proxies, Relays: *relays,
		Workers: *workers, Seed: *seed, Full: *full}

	var lg *ledger.Ledger
	var cls *ledger.Classifier
	if *useLg {
		cls = ledger.NewClassifier()
		lg = ledger.New(cls, nil)
	}

	odohRes, err := runODoH(*clients, *proxies, *workers, *seed, cls, lg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: odoh leg: %v\n", err)
		os.Exit(1)
	}
	doc.ODoH = odohRes

	mixRes, err := runMixnetLeg(*clients, *relays, *workers, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: mixnet leg: %v\n", err)
		os.Exit(1)
	}
	doc.Mixnet = mixRes

	if lg != nil {
		expected := core.ObliviousDNS()
		measured := lg.DeriveSystem(expected)
		diffs := core.CompareTuples(expected, measured)
		verdict, err := core.Analyze(measured)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: analyze: %v\n", err)
			os.Exit(1)
		}
		st := lg.Stats()
		doc.Ledger = &ledgerResult{
			Observations:  st.Total,
			TupleDiffs:    len(diffs),
			Decoupled:     verdict.Decoupled,
			AuditObserver: len(st.Observers),
		}
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "loadgen: tuple diff under load: %s\n", d)
		}
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: marshal: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "loadgen: odoh  %d req %.0f req/s p50=%.2fms p99=%.2fms errors=%d\n",
		doc.ODoH.Requests, doc.ODoH.Throughput, doc.ODoH.Latency.P50, doc.ODoH.Latency.P99, doc.ODoH.Errors)
	fmt.Fprintf(os.Stderr, "loadgen: mixnet %d msgs %.0f msg/s delivered=%d lost=%d errors=%d\n",
		doc.Mixnet.Requests, doc.Mixnet.Throughput, doc.Mixnet.Delivered, doc.Mixnet.Lost, doc.Mixnet.Errors)
	if doc.Ledger != nil {
		fmt.Fprintf(os.Stderr, "loadgen: ledger %d observations, %d tuple diffs, decoupled=%v\n",
			doc.Ledger.Observations, doc.Ledger.TupleDiffs, doc.Ledger.Decoupled)
	}
	if doc.ODoH.Errors > 0 || doc.Mixnet.Errors > 0 ||
		(doc.Ledger != nil && (doc.Ledger.TupleDiffs > 0 || !doc.Ledger.Decoupled)) {
		os.Exit(1)
	}
}

// runODoH drives the sharded-proxy leg: every proxy shard is a real
// net/http server belonging to the same logical operator (one ledger
// observer), clients round-robin across shards, and each client issues
// a churn-model session of oblivious queries over loopback HTTP.
func runODoH(clients, shards, workers int, seed int64, cls *ledger.Classifier, lg *ledger.Ledger) (legResult, error) {
	var res legResult

	browsing, err := workload.NewBrowsing(seed, 100, 1.2)
	if err != nil {
		return res, err
	}
	sessions, err := workload.NewSessions(seed+1, 3, 0.8)
	if err != nil {
		return res, err
	}

	zone := dns.NewZone("test")
	for i, name := range browsing.Names {
		zone.Add(dnswire.A(name, 300, [4]byte{198, 51, 100, byte(i)}))
	}
	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{zone}, Ledger: lg}
	target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
	if err != nil {
		return res, err
	}
	keyID, pub := target.KeyConfig()

	// All shards share the proxy name: sharding is a deployment detail
	// of one operator, and the derived knowledge tuple must say so.
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
	if cls != nil {
		cls.RegisterIdentity(odoh.ProxyName, "", "", core.NonSensitive)
		cls.RegisterIdentity(odoh.TargetName, "", "", core.NonSensitive)
		cls.RegisterIdentity("Origin", "", "", core.NonSensitive)
		for i, name := range browsing.Names {
			cls.RegisterData(dnswire.CanonicalName(name), fmt.Sprintf("client%06d", i%clients), "", core.Sensitive)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /proxy", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		who := r.Header.Get(clientHeader)
		if who == "" {
			who = r.RemoteAddr
		}
		resp, err := proxy.Forward(who, body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Write(resp)
	})

	servers := make([]*http.Server, shards)
	urls := make([]string, shards)
	for i := range servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, fmt.Errorf("proxy shard %d: %w", i, err)
		}
		urls[i] = "http://" + ln.Addr().String() + "/proxy"
		servers[i] = &http.Server{Handler: mux}
		go servers[i].Serve(ln)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	httpClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers,
	}}

	// Per-client session lengths, drawn up front so workers stay
	// lock-free; registration of client ground truth rides along.
	lengths := make([]int, clients)
	total := 0
	for i := range lengths {
		lengths[i] = sessions.Next()
		total += lengths[i]
		if cls != nil {
			who := fmt.Sprintf("client%06d", i)
			cls.RegisterIdentity(who, who, "", core.Sensitive)
		}
	}

	latencies := make([]int64, total)
	var next, errs, done atomic.Uint64

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker workload stream: Browsing's Zipf rng is not safe
			// for concurrent draws, and a shared lock on it would serialize
			// the very hot path this benchmark measures. Same name universe,
			// worker-decorrelated seed.
			wb, err := workload.NewBrowsing(seed+int64(w)*7919, 100, 1.2)
			if err != nil {
				errs.Add(1)
				return
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= clients {
					return
				}
				who := fmt.Sprintf("client%06d", i)
				c := odoh.NewClient(who, keyID, pub)
				url := urls[i%len(urls)]
				forward := func(clientAddr string, raw []byte) ([]byte, error) {
					return postQuery(httpClient, url, clientAddr, raw)
				}
				for j := 0; j < lengths[i]; j++ {
					slot := done.Add(1) - 1
					t0 := time.Now()
					_, err := c.Query(wb.Next(i), dnswire.TypeA, forward)
					latencies[slot] = time.Since(t0).Nanoseconds()
					if err != nil {
						errs.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	res.Requests = done.Load()
	res.Errors = errs.Load()
	res.Seconds = elapsed.Seconds()
	res.Throughput = float64(res.Requests) / elapsed.Seconds()
	res.Latency = quantiles(latencies[:res.Requests])
	if res.Requests > 0 {
		res.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / res.Requests
		res.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / res.Requests
	}
	return res, nil
}

// postQuery is the client half of the loadgen proxy protocol: an
// oblivious query POSTed to a shard with the logical identity in a
// header, because ground truth needs stable client names and ephemeral
// ports are recycled across logical clients at this scale.
func postQuery(client *http.Client, url, clientAddr string, raw []byte) ([]byte, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/oblivious-dns-message")
	req.Header.Set(clientHeader, clientAddr)
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxy returned %s: %s", resp.Status, out)
	}
	return out, nil
}

// runMixnetLeg drives the relay cascade over the real TCP transport:
// one sender per ten ODoH clients (capped to keep per-message onion
// crypto from dominating the wall clock), batch threshold 8 with a
// timeout flush so stragglers drain.
func runMixnetLeg(clients, relays, workers int, seed int64) (legResult, error) {
	var res legResult

	senders := clients / 10
	if senders < 64 {
		senders = 64
	}
	if senders > 50_000 {
		senders = 50_000
	}

	nt := nettransport.New(nettransport.Options{
		Mode:           nettransport.ModeTCP,
		Seed:           seed,
		DisableCapture: true,
		InboxDepth:     16_384,
	})
	defer nt.Close()

	var route []mixnet.NodeInfo
	for i := 1; i <= relays; i++ {
		m, err := mixnet.NewMix(nt, fmt.Sprintf("Relay %d", i),
			transport.Addr(fmt.Sprintf("relay%d", i)), 8, 100*time.Millisecond, nil)
		if err != nil {
			return res, err
		}
		route = append(route, m.Info())
	}
	rcv, err := mixnet.NewReceiver(nt, "Receiver", "receiver", false, nil)
	if err != nil {
		return res, err
	}

	var next, errs atomic.Uint64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= senders {
					return
				}
				s := &mixnet.Sender{Addr: transport.Addr(fmt.Sprintf("sender%06d", i))}
				if err := s.Send(nt, route, rcv.Info(), []byte(fmt.Sprintf("message %06d", i))); err != nil {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	nt.Run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	got := len(rcv.Inbox())
	if got != senders {
		return res, fmt.Errorf("receiver got %d of %d messages (lost %d)", got, senders, nt.Lost())
	}

	res.Requests = uint64(senders)
	res.Errors = errs.Load()
	res.Seconds = elapsed.Seconds()
	res.Throughput = float64(senders) / elapsed.Seconds()
	res.Delivered = nt.Delivered()
	res.Lost = nt.Lost()
	if res.Requests > 0 {
		res.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / res.Requests
		res.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / res.Requests
	}
	return res, nil
}

func quantiles(ns []int64) latencyStats {
	if len(ns) == 0 {
		return latencyStats{}
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / 1e6
	}
	return latencyStats{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: at(1)}
}
