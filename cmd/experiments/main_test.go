package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSelectedExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"E8"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "E8") || !strings.Contains(s, "[PASS]") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "all 1 experiments reproduce the paper") {
		t.Errorf("missing summary line:\n%s", s)
	}
}

func TestRunUnknownID(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"E99"}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestParallelOutputByteIdentical is the CLI-level determinism check:
// -parallel N must not change a single byte of the report.
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(args ...string) string {
		var out, errw bytes.Buffer
		if code := run(&out, &errw, args); code != 0 {
			t.Fatalf("exit = %d, stderr = %s", code, errw.String())
		}
		return out.String()
	}
	seq := render("-parallel", "1", "E8", "E9", "E13")
	par := render("-parallel", "4", "E8", "E9", "E13")
	if seq != par {
		t.Errorf("parallel report diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-nope"}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestRunMultipleIDs(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"E9", "E13"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "E9") || !strings.Contains(s, "E13") {
		t.Errorf("output missing experiments:\n%s", s)
	}
}
