package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decoupling/internal/explore"
	"decoupling/internal/telemetry"
)

func TestRunSelectedExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"E8"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "E8") || !strings.Contains(s, "[PASS]") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "all 1 experiments reproduce the paper") {
		t.Errorf("missing summary line:\n%s", s)
	}
}

func TestRunUnknownID(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"E99"}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestParallelOutputByteIdentical is the CLI-level determinism check:
// -parallel N must not change a single byte of the report.
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(args ...string) string {
		var out, errw bytes.Buffer
		if code := run(&out, &errw, args); code != 0 {
			t.Fatalf("exit = %d, stderr = %s", code, errw.String())
		}
		return out.String()
	}
	seq := render("-parallel", "1", "E8", "E9", "E13")
	par := render("-parallel", "4", "E8", "E9", "E13")
	if seq != par {
		t.Errorf("parallel report diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-nope"}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestTraceDeterminism is the observability-era determinism contract:
// the exported JSONL trace must be byte-identical across -parallel
// settings and across repeated runs, and the report on stdout must not
// change a byte when telemetry is on. E2 and E10 cover a mixnet cascade
// and multi-hop onion chains — the interesting nesting cases.
func TestTraceDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(name, parallel string) (trace []byte, stdout string) {
		t.Helper()
		path := filepath.Join(dir, name)
		var out, errw bytes.Buffer
		args := []string{"-parallel", parallel, "-trace", path, "E2", "E10"}
		if code := run(&out, &errw, args); code != 0 {
			t.Fatalf("exit = %d, stderr = %s", code, errw.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw, out.String()
	}
	t1, s1 := runOnce("t1.jsonl", "4")
	t2, s2 := runOnce("t2.jsonl", "1")
	t3, _ := runOnce("t3.jsonl", "4")
	if !bytes.Equal(t1, t2) {
		t.Errorf("trace bytes differ between -parallel 4 and -parallel 1")
	}
	if !bytes.Equal(t1, t3) {
		t.Errorf("trace bytes differ between two -parallel 4 runs")
	}
	if s1 != s2 {
		t.Errorf("report changed with parallelism while tracing")
	}

	recs, err := telemetry.ParseJSONL(bytes.NewReader(t1))
	if err != nil {
		t.Fatalf("exported trace fails strict parse: %v", err)
	}
	// Depth check: E10's onion chains must produce spans nested at least
	// 4 deep (experiment → phase → deliver → relay handler).
	depth := map[uint64]int{}
	maxDepth := 0
	for _, r := range recs {
		if r.Trace != "E10" {
			continue
		}
		d := 1
		if r.Parent != 0 {
			d = depth[r.Parent] + 1
		}
		depth[r.Span] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 4 {
		t.Errorf("E10 max span depth = %d, want >= 4 (multi-hop chains must nest)", maxDepth)
	}
}

// TestMetricsAndStatsFlags checks that -metrics writes a canonical
// exposition file and -stats prints ledger observation counts.
func TestMetricsAndStatsFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.prom")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-metrics", path, "-stats", "E2"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParseExposition(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("metrics file fails strict parse: %v", err)
	}
	var rendered bytes.Buffer
	if err := telemetry.WriteExpFamilies(&rendered, fams); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, rendered.Bytes()) {
		t.Errorf("metrics file is not canonical (round-trip differs)")
	}
	if !strings.Contains(string(raw), telemetry.MetricSimnetMessages) {
		t.Errorf("metrics missing simnet counters:\n%s", raw)
	}
	if !strings.Contains(errw.String(), "ledger stats:") {
		t.Errorf("-stats output missing:\n%s", errw.String())
	}
	if !strings.Contains(errw.String(), "slowest experiments") {
		t.Errorf("telemetry summary missing:\n%s", errw.String())
	}
}

// TestListenFlag: -listen binds the observability server for the run
// (scrape-during-run coverage lives with loadgen and the telemetry
// httptest suite; here the wiring and the failure mode are the
// contract).
func TestListenFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-listen", "127.0.0.1:0", "E8"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "observability on http://") {
		t.Errorf("stderr does not announce the bound address:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "all 1 experiments reproduce the paper") {
		t.Errorf("report changed under -listen:\n%s", out.String())
	}

	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-listen", "256.0.0.1:0", "E8"}); code != 2 {
		t.Fatalf("unbindable -listen: exit = %d, want 2", code)
	}
}

// TestAuditDeterminism checks that -audit writes per-experiment
// provenance audits that are byte-identical across -parallel settings
// and across repeated runs (fresh keys, fresh ciphertexts), and that
// the report bytes are unchanged by auditing. E2 and E4 cover the
// simulated mixnet (virtual timestamps) and the two in-process DNS
// reproductions.
func TestAuditDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(name, parallel string) (audit []byte, stdout string) {
		t.Helper()
		path := filepath.Join(dir, name)
		var out, errw bytes.Buffer
		args := []string{"-parallel", parallel, "-audit", path, "E2", "E4"}
		if code := run(&out, &errw, args); code != 0 {
			t.Fatalf("exit = %d, stderr = %s", code, errw.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw, out.String()
	}
	a1, s1 := runOnce("a1.jsonl", "4")
	a2, s2 := runOnce("a2.jsonl", "1")
	a3, _ := runOnce("a3.jsonl", "4")
	if !bytes.Equal(a1, a2) {
		t.Errorf("audit bytes differ between -parallel 4 and -parallel 1")
	}
	if !bytes.Equal(a1, a3) {
		t.Errorf("audit bytes differ between two -parallel 4 runs")
	}
	if s1 != s2 {
		t.Errorf("report changed with parallelism while auditing")
	}
	for _, id := range []string{"E2", "E4"} {
		if !strings.Contains(string(a1), `"experiment":"`+id+`"`) {
			t.Errorf("audit file missing experiment %s header", id)
		}
	}
	if !strings.Contains(string(a1), `"type":"obs"`) {
		t.Errorf("audit file has no observation lines:\n%.400s", a1)
	}
}

// TestProfileFlags checks -cpuprofile/-memprofile produce non-empty
// pprof files.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-cpuprofile", cpu, "-memprofile", mem, "E8"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile missing: %v", err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestRunMultipleIDs(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"E9", "E13"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "E9") || !strings.Contains(s, "E13") {
		t.Errorf("output missing experiments:\n%s", s)
	}
}

// TestExploreFindsPlantedViolation runs a small sweep over the planted
// fail-open probe and one fail-closed probe: the planted violation must
// be found, shrunk to a small replayable trace on disk, and the exit
// code must stay 0 (the planted probe is the negative control, not a
// failure).
func TestExploreFindsPlantedViolation(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{"-explore", "-seeds", "2", "-traces", dir,
		"odoh", "odoh-failopen"})
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "planted fail-open violation found and shrunk") {
		t.Errorf("planted violation not reported:\n%s", s)
	}
	if !strings.Contains(s, "zero invariant violations on fail-closed cases") {
		t.Errorf("fail-closed cases not clean:\n%s", s)
	}
	b, err := os.ReadFile(filepath.Join(dir, "probe-odoh-failopen.trace.json"))
	if err != nil {
		t.Fatalf("minimized trace not written: %v", err)
	}
	tr, err := explore.DecodeTrace(b)
	if err != nil {
		t.Fatalf("trace artifact does not decode: %v", err)
	}
	if e := tr.Events(); e > 5 {
		t.Errorf("minimized trace has %d events, want <= 5", e)
	}
}

// TestExploreSelectionErrors pins the flag-validation and id-selection
// error paths.
func TestExploreSelectionErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-explore", "-seeds", "0"}); code != 2 {
		t.Errorf("-seeds 0: exit = %d, want 2", code)
	}
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-explore", "bogus-id"}); code != 2 {
		t.Errorf("unknown id: exit = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "bogus-id") {
		t.Errorf("diagnostic should name the id: %s", errw.String())
	}
}

// TestExploreReportByteIdenticalAcrossWorkers: the sweep report must
// not depend on the worker-pool width.
func TestExploreReportByteIdenticalAcrossWorkers(t *testing.T) {
	runWith := func(parallel string) string {
		var out, errw bytes.Buffer
		if code := run(&out, &errw, []string{"-explore", "-seeds", "2", "-parallel", parallel,
			"odns", "odoh-failopen"}); code != 0 {
			t.Fatalf("-parallel %s: exit = %d, stderr = %s", parallel, code, errw.String())
		}
		return out.String()
	}
	base := runWith("1")
	if got := runWith("8"); got != base {
		t.Errorf("report differs between -parallel 1 and 8:\n%s\n---\n%s", base, got)
	}
}
