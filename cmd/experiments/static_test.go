package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestStaticConformanceSection runs a knowledge-measuring subset with
// -static and checks the conformance rows render and the run passes.
func TestStaticConformanceSection(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-static", "E8", "E9", "E13"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "Static conformance (static ⊇ measured, from declared schemas):") {
		t.Fatalf("missing static section:\n%s", s)
	}
	for _, row := range []string{
		"E8   vpn            static ⊇ measured (exact)",
		"E9   ech            static ⊇ measured (exact)",
		"E13  tee            static ⊇ measured (exact)",
	} {
		if !strings.Contains(s, row) {
			t.Errorf("missing row %q:\n%s", row, s)
		}
	}
}

// TestStaticSectionByteIdenticalAcrossParallel extends the CLI
// determinism contract to the -static section.
func TestStaticSectionByteIdenticalAcrossParallel(t *testing.T) {
	render := func(parallel string) string {
		var out, errw bytes.Buffer
		args := []string{"-static", "-parallel", parallel, "E1", "E8", "E13"}
		if code := run(&out, &errw, args); code != 0 {
			t.Fatalf("exit = %d, stderr = %s", code, errw.String())
		}
		return out.String()
	}
	base := render("1")
	for _, parallel := range []string{"4", "8"} {
		if got := render(parallel); got != base {
			t.Errorf("-static -parallel %s diverged:\n--- 1 ---\n%s\n--- %s ---\n%s", parallel, base, parallel, got)
		}
	}
}

// TestTransportTCPStatic runs a socket-capable experiment over real
// loopback TCP with the static check on: the schema bound must hold on
// the real transport too.
func TestTransportTCPStatic(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-static", "-transport", "tcp", "E8"}); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "E8   vpn            static ⊇ measured (exact)") {
		t.Errorf("missing conformance row over tcp:\n%s", out.String())
	}
}

func TestTransportUnknown(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-transport", "carrier-pigeon", "E8"}); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown -transport") {
		t.Errorf("stderr:\n%s", errw.String())
	}
}
