// Command experiments runs the complete E1-E12 reproduction suite and
// prints a paper-vs-measured report (the content of EXPERIMENTS.md).
//
// Usage:
//
//	experiments            # run everything
//	experiments E4 E7      # run selected experiment ids
//
// Exit status is nonzero if any experiment fails to reproduce.
package main

import (
	"fmt"
	"io"
	"os"

	"decoupling/internal/experiments"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run executes the selected experiments (all when args is empty),
// writing the report to out and diagnostics to errw, and returns the
// process exit code.
func run(out, errw io.Writer, args []string) int {
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	failures := 0
	ran := 0
	for _, exp := range experiments.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		r, err := exp.Run()
		if err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 1
		}
		ran++
		fmt.Fprintln(out, r.Render())
		if !r.Pass {
			failures++
		}
	}
	if ran == 0 {
		fmt.Fprintln(errw, "experiments: no matching experiment ids")
		return 2
	}
	if failures > 0 {
		fmt.Fprintf(errw, "experiments: %d experiment(s) failed to reproduce\n", failures)
		return 1
	}
	fmt.Fprintf(out, "all %d experiments reproduce the paper\n", ran)
	return 0
}
