// Command experiments runs the complete E1-E13 reproduction suite and
// prints a paper-vs-measured report (the content of EXPERIMENTS.md).
//
// Usage:
//
//	experiments                # run everything, GOMAXPROCS-wide
//	experiments E4 E7          # run selected experiment ids
//	experiments -parallel 1    # sequential (byte-identical output)
//
// Experiments execute on a worker pool (-parallel N, default
// GOMAXPROCS); results are always reported in id order, so the report
// bytes do not depend on the parallelism. Exit status is nonzero if any
// experiment fails to reproduce.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"decoupling/internal/experiments"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run executes the selected experiments (all when no ids are given),
// writing the report to out and diagnostics to errw, and returns the
// process exit code.
func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(errw)
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"number of experiments to run concurrently (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	want := map[string]bool{}
	for _, a := range fs.Args() {
		want[a] = true
	}
	var selected []experiments.Experiment
	for _, exp := range experiments.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		selected = append(selected, exp)
	}
	if len(selected) == 0 {
		fmt.Fprintln(errw, "experiments: no matching experiment ids")
		return 2
	}

	runner := experiments.Runner{Workers: *parallel}
	failures := 0
	for _, rr := range runner.Run(selected) {
		if rr.Err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", rr.Err)
			return 1
		}
		fmt.Fprintln(out, rr.Result.Render())
		if !rr.Result.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(errw, "experiments: %d experiment(s) failed to reproduce\n", failures)
		return 1
	}
	fmt.Fprintf(out, "all %d experiments reproduce the paper\n", len(selected))
	return 0
}
