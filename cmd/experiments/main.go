// Command experiments runs the complete E1-E16 reproduction suite and
// prints a paper-vs-measured report (the content of EXPERIMENTS.md).
//
// Usage:
//
//	experiments                # run everything, GOMAXPROCS-wide
//	experiments E4 E7          # run selected experiment ids
//	experiments -parallel 1    # sequential (byte-identical output)
//	experiments -trace t.jsonl -metrics m.prom E2 E10
//	experiments -faults flaky E14   # extra chaos overlay on E14-E16
//	experiments -static             # append static ⊇ measured conformance
//	experiments -transport tcp      # socket experiments over real loopback TCP
//
// -static appends a per-experiment conformance section: each
// experiment's measured knowledge tuples (derived from the run's
// ledger) are checked against the static tuples derived from the
// protocol's declared message schemas (internal/schema/catalog). Any
// measured component the declarations never licensed is rendered with
// the offending handler and field plus the run's provenance evidence
// chain, and the exit status is nonzero. Static-minus-measured gaps
// are flagged as declared-but-unexercised. The section is derived from
// declarations and deterministic runs only, so its bytes are identical
// across -parallel settings and transports.
//
// Experiments execute on a worker pool (-parallel N, default
// GOMAXPROCS); results are always reported in id order, so the report
// bytes do not depend on the parallelism. Exit status is nonzero if any
// experiment fails to reproduce.
//
// Observability flags (all off by default; the report on stdout is
// byte-identical with or without them):
//
//	-trace f.jsonl    span traces, one JSON object per line, stamped
//	                  against each experiment's virtual clock — the
//	                  bytes are identical across runs and -parallel
//	                  settings
//	-metrics f.prom   counters and histograms in Prometheus text
//	                  exposition format
//	-audit f.jsonl    per-experiment provenance audits (canonical
//	                  observation ids, handle aliases, linkage
//	                  partitions) as JSONL — byte-identical across
//	                  runs and -parallel settings for the
//	                  deterministic experiments
//	-stats            per-experiment ledger observation counts on
//	                  stderr
//	-cpuprofile f     pprof CPU profile of the whole run
//	-memprofile f     pprof heap profile written at exit
//	-listen addr      serve /metrics (Prometheus text exposition),
//	                  /statusz, and /debug/pprof over HTTP while the
//	                  run executes — live counters for a long -explore
//	                  sweep or a profiled reproduction run
//
// Schedule exploration (-explore) switches the command into seed-sweep
// model-checking mode: every fault-tolerant probe scenario is run under
// -seeds synthesized (fault plan, schedule) cases, every registered
// experiment under -seeds permuted schedules, and the invariant oracles
// are asserted after each case quiesces. Violating cases are shrunk to
// minimal counterexamples; -traces DIR serializes them as replayable
// trace files for `decouple replay`. The report is byte-reproducible
// for a fixed seed list. Exit status is nonzero if any fail-closed case
// violates an oracle, or if the planted fail-open probe escapes
// detection.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"decoupling/internal/experiments"
	"decoupling/internal/explore"
	"decoupling/internal/nettransport"
	"decoupling/internal/provenance"
	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run executes the selected experiments (all when no ids are given),
// writing the report to out and diagnostics to errw, and returns the
// process exit code.
func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(errw)
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"number of experiments to run concurrently (1 = sequential)")
	faults := fs.String("faults", "",
		"overlay a fault `plan` on the chaos experiments' simulators (E14-E16): a named plan or a spec string; see simnet.ParseFaultPlan")
	doStatic := fs.Bool("static", false,
		"append the static-conformance section: check static ⊇ measured for every experiment against its declared schemas; any violation is a nonzero exit")
	transportName := fs.String("transport", "simnet",
		"transport for socket-capable experiments: simnet (in-process virtual network) or tcp (real loopback sockets)")
	traceFile := fs.String("trace", "", "write span traces as JSONL to `file`")
	traceMode := fs.String("trace-mode", "off",
		"wire-trace propagation policy: off, rotate (re-key the trace id at decoupling boundaries), or naive (one global id — must fail the audit)")
	wirespansFile := fs.String("wirespans", "", "write wall-clock wire spans as JSONL to `file` (needs -trace-mode)")
	metricsFile := fs.String("metrics", "", "write metrics in Prometheus text format to `file`")
	auditFile := fs.String("audit", "", "write per-experiment provenance audits as JSONL to `file`")
	stats := fs.Bool("stats", false, "print per-experiment ledger stats to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to `file`")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to `file`")
	doExplore := fs.Bool("explore", false,
		"seed-sweep schedule exploration: model-check the decoupling invariants instead of printing the report")
	seeds := fs.Int("seeds", 64, "number of exploration seeds (with -explore)")
	seedBase := fs.Uint64("seedbase", 1, "first exploration seed (with -explore)")
	tracesDir := fs.String("traces", "",
		"write minimized counterexample traces to `dir` (with -explore)")
	listenAddr := fs.String("listen", "",
		"serve /metrics, /statusz, and /debug/pprof on this `address` while the run executes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *doExplore {
		return runExplore(out, errw, fs.Args(), *seeds, *seedBase, *parallel, *tracesDir, *metricsFile, *listenAddr)
	}
	plan, err := simnet.FaultPlanFromSpec(*faults)
	if err != nil {
		fmt.Fprintf(errw, "experiments: %v\n", err)
		return 2
	}
	experiments.SetChaosFaults(plan)

	wireMode, err := wiretrace.ParseMode(*traceMode)
	if err != nil {
		fmt.Fprintf(errw, "experiments: %v\n", err)
		return 2
	}
	if *wirespansFile != "" && wireMode == wiretrace.ModeOff {
		fmt.Fprintln(errw, "experiments: -wirespans needs -trace-mode rotate or naive")
		return 2
	}
	var transportFactory func(seed int64) transport.Runner
	switch *transportName {
	case "simnet", "":
		// nil factory: socket-capable experiments build their default
		// in-process simnet transport.
	case "tcp":
		transportFactory = func(seed int64) transport.Runner {
			return nettransport.New(nettransport.Options{Mode: nettransport.ModeTCP, Seed: seed})
		}
	default:
		fmt.Fprintf(errw, "experiments: unknown -transport %q (want simnet or tcp)\n", *transportName)
		return 2
	}

	want := map[string]bool{}
	for _, a := range fs.Args() {
		want[a] = true
	}
	var selected []experiments.Experiment
	for _, exp := range experiments.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		selected = append(selected, exp)
	}
	if len(selected) == 0 {
		fmt.Fprintln(errw, "experiments: no matching experiment ids")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(errw, "experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(errw, "experiments: %v\n", err)
			}
		}()
	}

	telemetryOn := *traceFile != "" || *metricsFile != "" || *listenAddr != ""
	// -audit also enables tracing so ledger observations join their
	// protocol phase; the spans are only written out under -trace.
	runner := experiments.Runner{Workers: *parallel, Trace: *traceFile != "" || *auditFile != "", WireMode: wireMode, Transport: transportFactory}
	if telemetryOn {
		runner.Metrics = telemetry.NewMetrics()
	}
	if *listenAddr != "" {
		srv, addr, err := telemetry.ServeObs(*listenAddr, runner.Metrics, nil)
		if err != nil {
			fmt.Fprintf(errw, "experiments: listen %s: %v\n", *listenAddr, err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(errw, "experiments: observability on http://%s/metrics /statusz /debug/pprof\n", addr)
	}
	results := runner.Run(selected)

	// Export telemetry artifacts before pass/fail accounting so a
	// failing reproduction still leaves its trace behind for diagnosis.
	if *traceFile != "" {
		if err := writeTraces(*traceFile, results); err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
	}
	if *metricsFile != "" {
		if err := writeMetrics(*metricsFile, runner.Metrics); err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
	}
	if *auditFile != "" {
		if err := writeAudits(*auditFile, results); err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
	}
	if *wirespansFile != "" {
		if err := writeWireSpans(*wirespansFile, results); err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
	}

	failures := 0
	for _, rr := range results {
		if rr.Err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", rr.Err)
			return 1
		}
		fmt.Fprintln(out, rr.Result.Render())
		if !rr.Result.Pass {
			failures++
		}
	}
	if *stats {
		printStats(errw, results)
	}
	if telemetryOn {
		printSummary(errw, results, runner.Metrics)
	}
	if wireMode != wiretrace.ModeOff {
		coupled := auditWirePlanes(errw, results)
		if coupled > 0 {
			fmt.Fprintf(errw, "experiments: trace plane COUPLED in %d experiment(s) — the tracing layer leaks linkage the protocol withholds\n", coupled)
			return 1
		}
	}
	if *doStatic {
		sviol, err := experiments.RenderStatic(out, results)
		if err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
		if sviol > 0 {
			fmt.Fprintf(errw, "experiments: %d static-conformance violation(s) — a run learned knowledge its declared schemas never licensed\n", sviol)
			return 1
		}
	}
	if failures > 0 {
		fmt.Fprintf(errw, "experiments: %d experiment(s) failed to reproduce\n", failures)
		return 1
	}
	fmt.Fprintf(out, "all %d experiments reproduce the paper\n", len(selected))
	return 0
}

// auditWirePlanes runs the trace-plane audit for every experiment that
// retained a ledger and expected model: the span stores are replayed
// as knowledge ledgers and held to exactly the protocol's tuples and
// linkage. Returns how many experiments audited COUPLED.
func auditWirePlanes(errw io.Writer, results []experiments.RunnerResult) int {
	coupled := 0
	for _, rr := range results {
		if rr.Wire == nil || rr.Result == nil || rr.Result.Ledger == nil || rr.Result.Expected == nil {
			continue
		}
		if rr.ID == "E4" {
			// E4 runs two protocol halves against two ledgers but one
			// plane; its halves are audited by the library tests.
			continue
		}
		rep, err := wiretrace.Audit(rr.Wire, rr.Result.Ledger, rr.Result.Expected)
		if err != nil {
			fmt.Fprintf(errw, "experiments: trace audit %s: %v\n", rr.ID, err)
			coupled++
			continue
		}
		verdict := "DECOUPLED"
		if !rep.Decoupled {
			verdict = "COUPLED"
			coupled++
		}
		fmt.Fprintf(errw, "experiments: trace audit %s: %s (%d spans, mode %s)\n", rr.ID, verdict, rep.Spans, rep.Mode)
		if !rep.Decoupled {
			rep.WriteReport(errw)
		}
	}
	return coupled
}

// writeWireSpans concatenates every experiment's wire spans as strict
// JSONL in input (id) order. Per-experiment planes are seeded by slot
// and simulator-backed scenarios stamp spans with the virtual clock,
// so the bytes are independent of -parallel.
func writeWireSpans(path string, results []experiments.RunnerResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, rr := range results {
		if err := wiretrace.WriteJSONL(f, rr.Wire); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// runExplore executes the seed-sweep schedule explorer. ids filters
// both the probes and the experiments (empty = everything); parallel
// sizes the case worker pool (the report bytes do not depend on it).
func runExplore(out, errw io.Writer, ids []string, seeds int, seedBase uint64, parallel int, tracesDir, metricsFile, listenAddr string) int {
	if seeds < 1 {
		fmt.Fprintln(errw, "experiments: -seeds must be at least 1")
		return 2
	}
	want := map[string]bool{}
	for _, a := range ids {
		want[a] = true
	}
	opts := explore.Options{
		Seeds:   explore.SeedList(seedBase, seeds),
		Workers: parallel,
	}
	var metrics *telemetry.Metrics
	if metricsFile != "" || listenAddr != "" {
		metrics = telemetry.NewMetrics()
		opts.Tel = telemetry.New("explore", false, metrics)
	}
	if listenAddr != "" {
		srv, addr, err := telemetry.ServeObs(listenAddr, metrics, nil)
		if err != nil {
			fmt.Fprintf(errw, "experiments: listen %s: %v\n", listenAddr, err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(errw, "experiments: observability on http://%s/metrics /statusz /debug/pprof\n", addr)
	}
	matched := map[string]bool{}
	for _, p := range experiments.ExploreProbes() {
		if len(want) > 0 && !want[p.ID] {
			continue
		}
		matched[p.ID] = true
		opts.Probes = append(opts.Probes, p)
	}
	for _, c := range explore.DefaultExperimentCases() {
		if len(want) > 0 && !want[c.Exp.ID] {
			continue
		}
		matched[c.Exp.ID] = true
		opts.Experiments = append(opts.Experiments, c)
	}
	for id := range want {
		if !matched[id] {
			fmt.Fprintf(errw, "experiments: no probe or experiment %q\n", id)
			return 2
		}
	}
	if len(opts.Probes)+len(opts.Experiments) == 0 {
		fmt.Fprintln(errw, "experiments: nothing to explore")
		return 2
	}

	report := explore.Sweep(opts)
	fmt.Fprint(out, report.Render())

	if metricsFile != "" {
		if err := writeMetrics(metricsFile, metrics); err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
	}
	if tracesDir != "" {
		if err := writeCounterexamples(tracesDir, report); err != nil {
			fmt.Fprintf(errw, "experiments: %v\n", err)
			return 2
		}
	}
	if report.FailClosedViolations() > 0 {
		return 1
	}
	if report.PlantedSwept() && !report.PlantedFound() {
		return 1
	}
	return 0
}

// writeCounterexamples serializes every minimized finding as a replay
// trace file under dir, named <kind>-<id>.trace.json.
func writeCounterexamples(dir string, report *explore.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range report.Findings {
		b, err := explore.EncodeTrace(f.Trace)
		if err != nil {
			return fmt.Errorf("encoding %s %s trace: %w", f.Kind, f.ID, err)
		}
		path := filepath.Join(dir, f.Kind+"-"+f.ID+".trace.json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeTraces concatenates every experiment's spans in input (id) order.
// Each tracer's span ids and virtual timestamps are per-experiment
// state, so the file's bytes are independent of -parallel.
func writeTraces(path string, results []experiments.RunnerResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, rr := range results {
		if err := rr.Trace.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// writeAudits derives a provenance audit for every experiment that
// retained its ledger and expected model, concatenated as JSONL in id
// order. Each audit's header line carries the experiment id.
func writeAudits(path string, results []experiments.RunnerResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, rr := range results {
		if rr.Result == nil || rr.Result.Ledger == nil || rr.Result.Expected == nil {
			continue
		}
		a, err := provenance.Derive(rr.Result.Ledger, rr.Result.Expected)
		if err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", rr.ID, err)
		}
		a.ID = rr.ID
		if err := provenance.WriteJSONL(f, a); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func writeMetrics(path string, m *telemetry.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printStats renders the -stats ledger summary: per experiment, how
// many observations each observer admitted and how many linkage handles
// it holds.
func printStats(w io.Writer, results []experiments.RunnerResult) {
	fmt.Fprintln(w, "ledger stats:")
	for _, rr := range results {
		if rr.Result == nil || rr.Result.LedgerStats == nil {
			continue
		}
		st := rr.Result.LedgerStats
		fmt.Fprintf(w, "  %s: %d observations\n", rr.ID, st.Total)
		for _, o := range st.Observers {
			fmt.Fprintf(w, "    %-24s %6d obs %6d handles\n", o.Observer, o.Observations, o.Handles)
		}
	}
}

// printSummary renders the post-run telemetry digest: the slowest
// experiments by wall time (with their virtual elapsed time alongside)
// and the hottest simulated links by bytes delivered.
func printSummary(w io.Writer, results []experiments.RunnerResult, m *telemetry.Metrics) {
	byWall := make([]experiments.RunnerResult, 0, len(results))
	for _, rr := range results {
		if rr.Result != nil {
			byWall = append(byWall, rr)
		}
	}
	sort.SliceStable(byWall, func(i, j int) bool {
		return byWall[i].Result.WallElapsed > byWall[j].Result.WallElapsed
	})
	if len(byWall) > 5 {
		byWall = byWall[:5]
	}
	fmt.Fprintln(w, "slowest experiments (wall | virtual):")
	for _, rr := range byWall {
		fmt.Fprintf(w, "  %-4s %12v | %v\n", rr.ID, rr.Result.WallElapsed.Round(10_000), rr.Result.VirtualElapsed)
	}
	links := m.CounterSeries(telemetry.MetricSimnetBytes)
	if len(links) > 5 {
		links = links[:5]
	}
	if len(links) > 0 {
		fmt.Fprintln(w, "hottest links (bytes delivered):")
		for _, sv := range links {
			fmt.Fprintf(w, "  %-4s %s -> %s: %.0f\n",
				sv.Label("experiment"), sv.Label("src"), sv.Label("dst"), sv.Value)
		}
	}
}
