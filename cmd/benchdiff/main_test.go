package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decoupling/internal/bench"
)

func writeDoc(t *testing.T, name string, doc bench.Doc) string {
	t.Helper()
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func healthyDoc() bench.Doc {
	return bench.Doc{
		Clients: 1000, Proxies: 4, Relays: 3, Workers: 64, Seed: 1,
		ODoH: bench.Leg{
			Requests: 4100, Seconds: 4, Throughput: 1000,
			Latency:     bench.Latency{P50: 90, P90: 140, P99: 500, Max: 1200},
			AllocsPerOp: 360, BytesPerOp: 34000,
		},
		Mixnet: bench.Leg{
			Requests: 1000, Seconds: 5, Throughput: 200,
			Latency: bench.Latency{P50: 30, P90: 60, P99: 120, Max: 300},
		},
		Ledger: &bench.LedgerSummary{Observations: 24600, Decoupled: true, AuditObserver: 3},
	}
}

func TestRunCleanPair(t *testing.T) {
	t.Parallel()
	doc := healthyDoc()
	base := writeDoc(t, "base.json", doc)
	cand := writeDoc(t, "cand.json", doc)
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{base, cand}); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("output lacks verdict: %s", out.String())
	}
}

func TestRunInjectedRegression(t *testing.T) {
	t.Parallel()
	base := writeDoc(t, "base.json", healthyDoc())
	bad := healthyDoc()
	bad.ODoH.Throughput = 100 // far below the 50% floor
	cand := writeDoc(t, "cand.json", bad)
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{base, cand}); code != 1 {
		t.Fatalf("exit %d, want 1; out: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "odoh.requests_per_sec") {
		t.Fatalf("regression report lacks metric name: %s", out.String())
	}
}

// TestRunFaultBlockZeroBaseline: a chaos candidate graded against the
// committed pre-chaos baseline (no "faults" block) passes when its SLO
// held and fails on slo_ok when it did not — the exact pairing the CI
// chaos-transport job runs.
func TestRunFaultBlockZeroBaseline(t *testing.T) {
	t.Parallel()
	base := writeDoc(t, "base.json", healthyDoc())
	withFaults := healthyDoc()
	withFaults.Faults = &bench.FaultSummary{
		Spec: "loss:*>mix1:0.2@0-", Injected: 120, Shed: 40, Retries: 90,
		Reconnects: 8, ErrorRate: 0.01, DeliveredFraction: 0.95, SLOOK: true,
	}
	cand := writeDoc(t, "cand.json", withFaults)
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{base, cand}); code != 0 {
		t.Fatalf("chaos candidate vs pre-chaos baseline: exit %d, want 0; out: %s", code, out.String())
	}

	blown := withFaults
	fs := *withFaults.Faults
	fs.SLOOK = false
	blown.Faults = &fs
	cand = writeDoc(t, "blown.json", blown)
	out.Reset()
	if code := run(&out, &errw, []string{base, cand}); code != 1 {
		t.Fatalf("blown SLO: exit %d, want 1; out: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "faults.slo_ok") {
		t.Fatalf("regression report lacks faults.slo_ok: %s", out.String())
	}
}

func TestRunThresholdFlags(t *testing.T) {
	t.Parallel()
	base := writeDoc(t, "base.json", healthyDoc())
	slower := healthyDoc()
	slower.ODoH.Throughput = 600 // 40% drop: passes defaults, fails -throughput-drop 0.2
	cand := writeDoc(t, "cand.json", slower)
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{base, cand}); code != 0 {
		t.Fatalf("default thresholds: exit %d, want 0; out: %s", code, out.String())
	}
	out.Reset()
	if code := run(&out, &errw, []string{"-throughput-drop", "0.2", base, cand}); code != 1 {
		t.Fatalf("tight thresholds: exit %d, want 1; out: %s", code, out.String())
	}
}

func TestRunStatuszURL(t *testing.T) {
	t.Parallel()
	base := writeDoc(t, "base.json", healthyDoc())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(bench.Status{Phase: "done", Bench: healthyDoc()})
	}))
	defer srv.Close()
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{base, srv.URL + "/statusz"}); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errw.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	t.Parallel()
	base := writeDoc(t, "base.json", healthyDoc())
	for name, args := range map[string][]string{
		"no args":          {},
		"one arg":          {base},
		"missing file":     {base, filepath.Join(t.TempDir(), "absent.json")},
		"bad flag":         {"-nope", base, base},
		"bad drop":         {"-throughput-drop", "1.5", base, base},
		"bad grow":         {"-latency-grow", "0.5", base, base},
		"unreachable url":  {base, "http://127.0.0.1:1/statusz"},
		"invalid baseline": {writeDoc(t, "empty.json", bench.Doc{}), base},
	} {
		var out, errw bytes.Buffer
		if code := run(&out, &errw, args); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
}
