// Command benchdiff is the performance regression gate: it compares a
// candidate benchmark document against a committed baseline under
// per-metric tolerance thresholds and exits nonzero on any regression.
// CI runs it after the loadgen smoke job, so a change that halves
// throughput, triples a latency quantile, bloats allocations, or
// breaks the decoupling verdict fails the build — the check the
// ROADMAP's zero-alloc hot-path work needs before any optimization can
// claim a win.
//
// Usage:
//
//	benchdiff [flags] BASELINE CANDIDATE
//
// BASELINE and CANDIDATE are BENCH_*.json files from cmd/loadgen;
// CANDIDATE may also be an http(s) URL to a live loadgen /statusz
// endpoint, so a running sweep can be graded mid-flight:
//
//	benchdiff BENCH_transport.json bench.new.json
//	benchdiff -throughput-drop 0.9 BENCH_transport.json http://127.0.0.1:9090/statusz
//
// Thresholds are one-sided: improvements always pass. Metrics the
// baseline does not carry (e.g. all-zero latency blocks from before
// instrumentation existed) are skipped rather than vacuously gated.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"decoupling/internal/bench"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	def := bench.DefaultThresholds()
	drop := fs.Float64("throughput-drop", def.ThroughputDrop,
		"maximum tolerated fractional throughput drop (0.5 = candidate may be half as fast)")
	grow := fs.Float64("latency-grow", def.LatencyGrow,
		"maximum tolerated latency multiplier per quantile")
	alloc := fs.Float64("alloc-grow", def.AllocGrow,
		"maximum tolerated allocs/op and bytes/op multiplier")
	maxErrs := fs.Uint64("max-errors", def.MaxErrors, "absolute per-leg error budget")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errw, "usage: benchdiff [flags] BASELINE CANDIDATE (files, or an http(s) /statusz URL for CANDIDATE)")
		return 2
	}
	if *drop < 0 || *drop > 1 {
		fmt.Fprintln(errw, "benchdiff: -throughput-drop must be in [0,1]")
		return 2
	}
	if *grow < 1 || *alloc < 1 {
		fmt.Fprintln(errw, "benchdiff: -latency-grow and -alloc-grow must be >= 1")
		return 2
	}

	baseline, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(errw, "benchdiff: baseline: %v\n", err)
		return 2
	}
	candidate, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(errw, "benchdiff: candidate: %v\n", err)
		return 2
	}

	th := bench.Thresholds{ThroughputDrop: *drop, LatencyGrow: *grow, AllocGrow: *alloc, MaxErrors: *maxErrs}
	regs := bench.Compare(baseline, candidate, th)
	fmt.Fprintf(out, "benchdiff: baseline %s (%d clients) vs candidate %s (%d clients)\n",
		fs.Arg(0), baseline.Clients, fs.Arg(1), candidate.Clients)
	if len(regs) == 0 {
		fmt.Fprintln(out, "benchdiff: no regressions")
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(out, "benchdiff: REGRESSION %s\n", r)
	}
	fmt.Fprintf(errw, "benchdiff: %d metric(s) regressed past thresholds\n", len(regs))
	return 1
}

// load reads a benchmark document from a file, or — for http(s) URLs —
// from a live /statusz (or any endpoint serving a Doc or Status body).
func load(src string) (bench.Doc, error) {
	var blob []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(src)
		if err != nil {
			return bench.Doc{}, err
		}
		defer resp.Body.Close()
		blob, err = io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return bench.Doc{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return bench.Doc{}, fmt.Errorf("%s: %s: %s", src, resp.Status, blob)
		}
	} else {
		var err error
		blob, err = os.ReadFile(src)
		if err != nil {
			return bench.Doc{}, err
		}
	}
	doc, err := bench.Decode(blob)
	if err != nil {
		return bench.Doc{}, fmt.Errorf("%s: %w", src, err)
	}
	return doc, nil
}
