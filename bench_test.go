// Root benchmark harness: one benchmark per paper artifact (E1-E16,
// see DESIGN.md §3). Each benchmark runs the corresponding experiment
// end to end, so `go test -bench=. -benchmem` regenerates every table
// and figure of the reproduction and reports its cost.
//
// Sub-benchmarks expose the interesting parameter sweeps (hops,
// aggregators, batch sizes) individually.
package decoupling_test

import (
	"fmt"
	"testing"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/experiments"
	"decoupling/internal/mixnet"
	"decoupling/internal/onion"
	"decoupling/internal/pgpp"
	"decoupling/internal/ppm"
	"decoupling/internal/simnet"
)

func benchExperiment(b *testing.B, f experiments.ExperimentFunc) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := f(experiments.Ctx{})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Pass {
			b.Fatalf("%s failed to reproduce:\n%s", r.ID, r.Render())
		}
	}
}

// BenchmarkE1DigitalCash regenerates the §3.1.1 table.
func BenchmarkE1DigitalCash(b *testing.B) { benchExperiment(b, experiments.E1DigitalCash) }

// BenchmarkE2Mixnet regenerates the §3.1.2 table / Figure 1.
func BenchmarkE2Mixnet(b *testing.B) { benchExperiment(b, experiments.E2Mixnet) }

// BenchmarkE3PrivacyPass regenerates the §3.2.1 table / Figure 2.
func BenchmarkE3PrivacyPass(b *testing.B) { benchExperiment(b, experiments.E3PrivacyPass) }

// BenchmarkE4ObliviousDNS regenerates the §3.2.2 table (ODNS + ODoH).
func BenchmarkE4ObliviousDNS(b *testing.B) { benchExperiment(b, experiments.E4ObliviousDNS) }

// BenchmarkE5PGPP regenerates the §3.2.3 table + shuffle ablation.
func BenchmarkE5PGPP(b *testing.B) { benchExperiment(b, experiments.E5PGPP) }

// BenchmarkE6MPR regenerates the §3.2.4 table over real loopback TCP.
func BenchmarkE6MPR(b *testing.B) { benchExperiment(b, experiments.E6MPR) }

// BenchmarkE7PPM regenerates the §3.2.5 table.
func BenchmarkE7PPM(b *testing.B) { benchExperiment(b, experiments.E7PPM) }

// BenchmarkE8VPN regenerates the §3.3 VPN cautionary-tale table.
func BenchmarkE8VPN(b *testing.B) { benchExperiment(b, experiments.E8VPN) }

// BenchmarkE9ECH regenerates the §3.3 ECH analysis.
func BenchmarkE9ECH(b *testing.B) { benchExperiment(b, experiments.E9ECH) }

// BenchmarkE10Degrees regenerates the §4.2 cost-vs-benefit series.
func BenchmarkE10Degrees(b *testing.B) { benchExperiment(b, experiments.E10Degrees) }

// BenchmarkE11Striping regenerates the §5.1 resolver-striping series.
func BenchmarkE11Striping(b *testing.B) { benchExperiment(b, experiments.E11Striping) }

// BenchmarkE12TrafficAnalysis regenerates the §4.3 attack/defense
// series.
func BenchmarkE12TrafficAnalysis(b *testing.B) { benchExperiment(b, experiments.E12TrafficAnalysis) }

// BenchmarkE13TEE regenerates the §4.3 TEE extension experiment.
func BenchmarkE13TEE(b *testing.B) { benchExperiment(b, experiments.E13TEE) }

// BenchmarkE14ChaosAvailability regenerates the §4.3 fault sweep.
func BenchmarkE14ChaosAvailability(b *testing.B) {
	benchExperiment(b, experiments.E14ChaosAvailability)
}

// BenchmarkE15ChaosFailover regenerates the §4.2 failover experiment.
func BenchmarkE15ChaosFailover(b *testing.B) { benchExperiment(b, experiments.E15ChaosFailover) }

// BenchmarkE16ChaosFailOpen regenerates the fail-open counterexample.
func BenchmarkE16ChaosFailOpen(b *testing.B) { benchExperiment(b, experiments.E16ChaosFailOpen) }

// BenchmarkAllExperimentsSequential runs the full E1-E16 suite on a
// single worker — the pre-runner baseline cost of regenerating every
// artifact.
func BenchmarkAllExperimentsSequential(b *testing.B) {
	benchRunner(b, 1)
}

// BenchmarkAllExperimentsParallel runs the full E1-E16 suite on a
// GOMAXPROCS-wide worker pool. Compare against Sequential: on ≥2 cores
// wall-clock time per run must drop.
func BenchmarkAllExperimentsParallel(b *testing.B) {
	benchRunner(b, 0) // 0 = GOMAXPROCS
}

func benchRunner(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, rr := range experiments.RunAll(workers) {
			if rr.Err != nil {
				b.Fatal(rr.Err)
			}
			if !rr.Result.Pass {
				b.Fatalf("%s failed to reproduce:\n%s", rr.ID, rr.Result.Render())
			}
		}
	}
}

// --- Parameter sweeps (the individual figure points) ---------------

// BenchmarkOnionHops measures the per-request cost of each additional
// relay hop — the §4.2 "cost" axis in isolation.
func BenchmarkOnionHops(b *testing.B) {
	for _, hops := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			net := simnet.New(1)
			net.SetDefaultLink(simnet.Link{}) // zero latency: measure compute
			var infos []onion.RelayInfo
			for i := 1; i <= hops; i++ {
				r, err := onion.NewRelay(net, fmt.Sprintf("r%d", i), simnet.Addr(fmt.Sprintf("relay%d", i)), nil)
				if err != nil {
					b.Fatal(err)
				}
				infos = append(infos, r.Info())
			}
			onion.NewOrigin(net, "o", "origin", 128, nil)
			client := onion.NewClient(net, "c")
			circ, err := client.BuildCircuit(infos)
			if err != nil {
				b.Fatal(err)
			}
			net.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := circ.Request("origin", []byte("GET /bench")); err != nil {
					b.Fatal(err)
				}
				net.Run()
			}
		})
	}
}

// BenchmarkPPMAggregators measures report generation + verification +
// aggregation cost per aggregator count — the other §4.2 cost axis.
func BenchmarkPPMAggregators(b *testing.B) {
	task := ppm.Task{ID: "bench", Type: ppm.TaskHistogram, Buckets: 8}
	for _, n := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("aggregators=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := ppm.NewSystem(task, n, nil)
				for j := 0; j < 32; j++ {
					if _, err := sys.Upload(fmt.Sprintf("c%d", j), uint64(j%8)); err != nil {
						b.Fatal(err)
					}
				}
				if acc, rej := sys.VerifyAll(); acc != 32 || rej != 0 {
					b.Fatalf("verify: %d/%d", acc, rej)
				}
				if _, err := sys.Aggregate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMixBatch measures mix throughput per batch threshold — the
// §4.3 latency/anonymity tradeoff's cost side.
func BenchmarkMixBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			net := simnet.New(1)
			net.SetDefaultLink(simnet.Link{})
			m, err := mixnet.NewMix(net, "m", "mix1", batch, time.Second, nil)
			if err != nil {
				b.Fatal(err)
			}
			rcv, err := mixnet.NewReceiver(net, "r", "receiver", false, nil)
			if err != nil {
				b.Fatal(err)
			}
			route := []mixnet.NodeInfo{m.Info()}
			s := &mixnet.Sender{Addr: "s"}
			msg := make([]byte, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Send(net, route, rcv.Info(), msg); err != nil {
					b.Fatal(err)
				}
				net.Run()
			}
		})
	}
}

// BenchmarkPGPPPolicies measures simulation cost per shuffle policy.
func BenchmarkPGPPPolicies(b *testing.B) {
	for _, p := range []pgpp.ShufflePolicy{pgpp.ShuffleNever, pgpp.ShuffleDaily, pgpp.ShufflePerAttach} {
		b.Run("policy="+p.String(), func(b *testing.B) {
			cfg := pgpp.SimConfig{
				Users: 10, Cells: 9, Steps: 60, SessionLen: 10, EpochLen: 30,
				Policy: p, PGPP: true, Seed: 7, KeyBits: 1024, Prepaid: 8,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pgpp.RunSim(cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyze measures the core verdict engine itself.
func BenchmarkAnalyze(b *testing.B) {
	reg := core.Registry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range reg {
			if _, err := core.Analyze(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
