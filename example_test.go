package decoupling_test

import (
	"fmt"

	"decoupling"
)

// ExampleAnalyze models a small service and applies the principle.
func ExampleAnalyze() {
	sys := decoupling.NewSystem("Push notifications", "",
		decoupling.User("Phone owner"),
		decoupling.Party("Push gateway", decoupling.SensID(), decoupling.NonSensData()),
		decoupling.Party("App backend", decoupling.NonSensID(), decoupling.SensData()),
	)
	v, err := decoupling.Analyze(sys)
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: Push notifications: DECOUPLED (degree 2, min coalition App backend+Push gateway)
}

// ExampleRenderTable prints a published analysis in the paper's layout.
func ExampleRenderTable() {
	fmt.Print(decoupling.RenderTable(decoupling.PrivacyPass()))
	// Output:
	// | Client | Issuer | Origin |
	// |--------|--------|--------|
	// | (▲, ●) | (▲, ⊙) | (△, ●) |
}

// ExampleAnalyze_cautionaryTale shows the VPN failure mode.
func ExampleAnalyze_cautionaryTale() {
	v, err := decoupling.Analyze(decoupling.VPN())
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: Centralized VPN: NOT DECOUPLED (degree 1, min coalition VPN Server)
}

// ExampleMixnet shows the degree of decoupling growing with hops.
func ExampleMixnet() {
	for _, n := range []int{1, 3} {
		v, err := decoupling.Analyze(decoupling.Mixnet(n))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d mixes: collusion threshold %d\n", n, v.Degree)
	}
	// Output:
	// 1 mixes: collusion threshold 2
	// 3 mixes: collusion threshold 4
}
