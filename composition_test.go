package decoupling_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/mpr"
	"decoupling/internal/odoh"
)

// TestODoHThroughMPR composes two of the paper's systems over real
// sockets: the client reaches the ODoH proxy through the two-hop
// Multi-Party Relay, so even the ODoH proxy — the party that normally
// learns the client's network identity — sees only the relay exit.
// This is §5.1's "dynamically stitch services across multiple
// providers" made concrete: each layer removes one more piece of
// knowledge, and the measured observations confirm nobody holds both
// who and what.
func TestODoHThroughMPR(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)

	// ODoH deployment (proxy as a plain-HTTP origin behind the relays).
	zone := dns.NewZone("example.com")
	if err := zone.Add(dnswire.A("secret.example.com", 300, [4]byte{203, 0, 113, 9})); err != nil {
		t.Fatal(err)
	}
	auth := &dns.AuthServer{Name: "Auth", Zones: []*dns.Zone{zone}, Ledger: lg}
	target, err := odoh.NewTarget(odoh.TargetName, auth, lg)
	if err != nil {
		t.Fatal(err)
	}
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
	proxySrv := httptest.NewServer(odoh.ProxyHandler(proxy, nil, ""))
	defer proxySrv.Close()
	proxyAddr := strings.TrimPrefix(proxySrv.URL, "http://")

	// MPR stack in front of it.
	stack, err := mpr.NewStack(lg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()

	// The client registers its identity and the sensitive query.
	cls.RegisterData("secret.example.com.", "alice", "", core.Sensitive)

	keyID, pub := target.KeyConfig()
	client := odoh.NewClient("alice", keyID, pub)

	// Forward function: POST the oblivious query over a fresh MPR
	// tunnel whose final hop is the ODoH proxy (plain HTTP, since the
	// oblivious message is already encrypted end to end).
	forward := func(clientAddr string, raw []byte) ([]byte, error) {
		cfg := stack.ClientConfig("", func(localAddr string) {
			cls.RegisterIdentity(localAddr, "alice", "", core.Sensitive)
		})
		cfg.OriginTLS = nil // the proxy is plain HTTP; payload is HPKE-sealed
		conn, err := mpr.Dial(stack.Relay1Addr, stack.Relay2Addr, proxyAddr, cfg)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		req, err := http.NewRequest(http.MethodPost, "http://"+proxyAddr+"/proxy", bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/oblivious-dns-message")
		if err := req.Write(conn); err != nil {
			return nil, err
		}
		resp, err := http.ReadResponse(bufio.NewReader(conn), req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("proxy returned %s: %s", resp.Status, body)
		}
		return body, nil
	}

	answer, err := client.Query("secret.example.com", dnswire.TypeA, forward)
	if err != nil {
		t.Fatal(err)
	}
	if answer.RCode != dnswire.RCodeNoError || len(answer.Answers) != 1 {
		t.Fatalf("answer = %+v", answer)
	}
	if answer.Answers[0].Data[3] != 9 {
		t.Errorf("A rdata = %v", answer.Answers[0].Data)
	}

	// The layered knowledge structure, measured:
	//  - Relay 1 saw alice's address, nothing else.
	//  - Relay 2 and the ODoH proxy saw neither her address nor the query.
	//  - The target saw the query but only the proxy as peer.
	for _, o := range lg.ByObserver(mpr.Relay1Name) {
		if o.Kind == core.Data && o.Level > core.NonSensitive {
			t.Errorf("relay 1 observed sensitive data: %+v", o)
		}
	}
	for _, name := range []string{mpr.Relay2Name, odoh.ProxyName} {
		for _, o := range lg.ByObserver(name) {
			if o.Level > core.NonSensitive && o.Kind == core.Identity {
				t.Errorf("%s observed a sensitive identity: %+v", name, o)
			}
			if strings.Contains(o.Value, "secret.example.com") {
				t.Errorf("%s saw the query name: %q", name, o.Value)
			}
		}
	}
	targetTuple := lg.DeriveTuple(odoh.TargetName, core.Tuple{core.NonSensID(), core.NonSensData()})
	if !targetTuple.Equal(core.Tuple{core.NonSensID(), core.SensData()}) {
		t.Errorf("target tuple = %s, want (△, ●)", targetTuple.Symbol())
	}

	// Even the proxy+target coalition — which breaks plain ODoH — now
	// fails, because the proxy never saw alice's identity: the MPR layer
	// pushed the identity boundary one organization further out.
	obs := lg.Observations()
	if rate := adversary.LinkageRate(adversary.LinkSubjects(obs, []string{odoh.ProxyName, odoh.TargetName})); rate != 0 {
		t.Errorf("proxy+target linked %.0f%% despite the MPR layer", rate*100)
	}
	// The full four-party coalition (both relays + both resolvers) can
	// still chain everything — the §5.2 limit: decoupling forces
	// violations to require system-wide collusion.
	full := []string{mpr.Relay1Name, mpr.Relay2Name, odoh.ProxyName, odoh.TargetName}
	if rate := adversary.LinkageRate(adversary.LinkSubjects(obs, full)); rate != 1 {
		t.Errorf("full coalition linked %.0f%%, want 100%%", rate*100)
	}
}
