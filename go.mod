module decoupling

go 1.22
