package decoupling_test

import (
	"strings"
	"testing"

	"decoupling"
)

func TestQuickstartAPI(t *testing.T) {
	sys := decoupling.NewSystem("My Service", "",
		decoupling.User("Client"),
		decoupling.Party("Frontend", decoupling.SensID(), decoupling.NonSensData()),
		decoupling.Party("Backend", decoupling.NonSensID(), decoupling.SensData()),
	)
	v, err := decoupling.Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("two-party split should be decoupled: %s", v)
	}
	if v.Degree != 2 {
		t.Errorf("degree = %d, want 2", v.Degree)
	}
}

func TestCoupledServiceDetected(t *testing.T) {
	sys := decoupling.NewSystem("Monolith", "",
		decoupling.User("Client"),
		decoupling.Party("Server", decoupling.SensID(), decoupling.SensData()),
	)
	v, err := decoupling.Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decoupled {
		t.Error("monolith reported decoupled")
	}
}

func TestRegistryAndRendering(t *testing.T) {
	reg := decoupling.Registry()
	if len(reg) != 9 {
		t.Errorf("registry has %d systems, want 9", len(reg))
	}
	for id, sys := range reg {
		out := decoupling.RenderTable(sys)
		if !strings.Contains(out, "|") {
			t.Errorf("%s: table did not render:\n%s", id, out)
		}
		if _, err := decoupling.Analyze(sys); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestPaperConstructorsMatchRegistry(t *testing.T) {
	if decoupling.PrivacyPass().Name != decoupling.Registry()["privacypass"].Name {
		t.Error("constructor and registry disagree")
	}
	if got := decoupling.Mixnet(4); len(got.Entities) != 6 {
		t.Errorf("Mixnet(4) has %d entities, want sender+4 mixes+receiver", len(got.Entities))
	}
}

func TestCompareTuplesExposed(t *testing.T) {
	a, b := decoupling.VPN(), decoupling.VPN()
	if diffs := decoupling.CompareTuples(a, b); len(diffs) != 0 {
		t.Errorf("identical systems diff: %v", diffs)
	}
}
