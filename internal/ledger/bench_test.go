package ledger

import (
	"fmt"
	"testing"

	"decoupling/internal/core"
)

// benchLedger populates a ledger shaped like a mid-size experiment:
// `observers` entities, `per` observations each, two handles per
// observation.
func benchLedger(observers, per int) (*Ledger, *core.System) {
	cls := NewClassifier()
	lg := New(cls, nil)
	sys := &core.System{Name: "bench"}
	sys.Entities = append(sys.Entities, core.Entity{
		Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()},
	})
	for o := 0; o < observers; o++ {
		name := fmt.Sprintf("ent-%d", o)
		sys.Entities = append(sys.Entities, core.Entity{
			Name: name, Knows: core.Tuple{core.SensID(), core.NonSensData()},
		})
		for i := 0; i < per; i++ {
			who := fmt.Sprintf("subject-%d", i%16)
			cls.RegisterIdentity(who, who, "", core.Sensitive)
			lg.SawIdentity(name, who, fmt.Sprintf("conn-%d-%d", o, i), fmt.Sprintf("sess-%d", i%8))
		}
	}
	return lg, sys
}

// BenchmarkSawUninstrumented pins the provenance-off hot path: with no
// telemetry attached, Saw must pay exactly one nil pointer check for
// the phase join (plus the pre-existing classify + shard append).
func BenchmarkSawUninstrumented(b *testing.B) {
	cls := NewClassifier()
	cls.RegisterIdentity("alice", "alice", "", core.Sensitive)
	lg := New(cls, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.SawIdentity("ent", "alice", "h1")
	}
}

// BenchmarkDeriveSystem is the provenance-disabled derivation path the
// audit layer must not slow down: regressions here mean DeriveTuple
// picked up provenance bookkeeping it should only do in the Evidence
// variants.
func BenchmarkDeriveSystem(b *testing.B) {
	lg, sys := benchLedger(4, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := lg.DeriveSystem(sys); len(m.Entities) != len(sys.Entities) {
			b.Fatal("bad derivation")
		}
	}
}

// BenchmarkDeriveSystemEvidence measures the provenance-carrying
// variant for comparison; it is allowed to cost more — it is run once
// per audit, never on the reproduction hot path.
func BenchmarkDeriveSystemEvidence(b *testing.B) {
	lg, sys := benchLedger(4, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev := lg.DeriveSystemEvidence(sys); len(ev.Entities) != len(sys.Entities) {
			b.Fatal("bad derivation")
		}
	}
}
