package ledger

import (
	"fmt"
	"math/rand"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/telemetry"
)

// TestDeriveTupleEvidenceMatchesDeriveTuple is the consistency
// contract: the provenance-carrying variant must report exactly the
// tuple DeriveTuple derives, component for component, in the same
// order — across random observation mixes including off-template
// extras.
func TestDeriveTupleEvidenceMatchesDeriveTuple(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	labels := []string{"", "H", "N", "X"}
	kinds := []core.Kind{core.Identity, core.Data}
	levels := []core.Level{core.NonSensitive, core.Partial, core.Sensitive}
	for trial := 0; trial < 50; trial++ {
		cls := NewClassifier()
		lg := New(cls, nil)
		for i := 0; i < 30; i++ {
			k := kinds[rng.Intn(len(kinds))]
			lvl := levels[rng.Intn(len(levels))]
			lab := labels[rng.Intn(len(labels))]
			v := fmt.Sprintf("v-%d-%d", trial, i)
			if k == core.Identity {
				cls.RegisterIdentity(v, "s", lab, lvl)
			} else {
				cls.RegisterData(v, "s", lab, lvl)
			}
			lg.Saw("ent", k, v, fmt.Sprintf("h%d", i%5))
		}
		template := core.Tuple{core.NonSensID(), core.NonSensData()}
		want := lg.DeriveTuple("ent", template)
		got := lg.DeriveTupleEvidence("ent", template)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d components with evidence, %d without", trial, len(got), len(want))
		}
		for i, ce := range got {
			if ce.Component != want[i] {
				t.Fatalf("trial %d component %d: evidence says %+v, DeriveTuple says %+v", trial, i, ce.Component, want[i])
			}
			if ce.Extra != (i >= len(template)) {
				t.Errorf("trial %d component %d: Extra = %v at index %d (template len %d)", trial, i, ce.Extra, i, len(template))
			}
			for _, o := range ce.Evidence {
				if o.Kind != ce.Component.Kind || o.Label != ce.Component.Label || o.Level != ce.Component.Level {
					t.Errorf("trial %d: evidence obs %+v does not match component %+v", trial, o, ce.Component)
				}
			}
			if ce.Component.Level > core.NonSensitive && len(ce.Evidence) == 0 {
				t.Errorf("trial %d component %d: level %v with no supporting evidence", trial, i, ce.Component.Level)
			}
		}
	}
}

// TestExtrasOrderingDeterministic is the regression test for the
// extras tie-break: off-template components must appear sorted by
// (kind, label, descending level) so repeated derivations render
// byte-identically even when labels share prefixes across kinds.
func TestExtrasOrderingDeterministic(t *testing.T) {
	t.Parallel()
	build := func(order []int) core.Tuple {
		cls := NewClassifier()
		lg := New(cls, nil)
		// Four extra axes sharing label prefixes across the two kinds.
		type reg struct {
			kind  core.Kind
			label string
			level core.Level
			value string
		}
		regs := []reg{
			{core.Identity, "A", core.Sensitive, "ia"},
			{core.Identity, "AB", core.Sensitive, "iab"},
			{core.Data, "A", core.Partial, "da"},
			{core.Data, "AB", core.Sensitive, "dab"},
		}
		for _, i := range order {
			r := regs[i]
			if r.kind == core.Identity {
				cls.RegisterIdentity(r.value, "s", r.label, r.level)
			} else {
				cls.RegisterData(r.value, "s", r.label, r.level)
			}
			lg.Saw("ent", r.kind, r.value)
		}
		return lg.DeriveTuple("ent", nil)
	}
	want := build([]int{0, 1, 2, 3})
	if len(want) != 4 {
		t.Fatalf("derived %d extras, want 4: %v", len(want), want.Symbol())
	}
	expect := core.Tuple{
		{Kind: core.Identity, Label: "A", Level: core.Sensitive},
		{Kind: core.Identity, Label: "AB", Level: core.Sensitive},
		{Kind: core.Data, Label: "A", Level: core.Partial},
		{Kind: core.Data, Label: "AB", Level: core.Sensitive},
	}
	for i, c := range want {
		if c != expect[i] {
			t.Fatalf("extras order: got %v want %v", want.Symbol(), expect.Symbol())
		}
	}
	// Admission order must not leak into the rendering.
	for _, order := range [][]int{{3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}} {
		if got := build(order); got.Symbol() != want.Symbol() {
			t.Errorf("admission order %v changed extras: %v vs %v", order, got.Symbol(), want.Symbol())
		}
	}
}

// TestSortExtrasLevelTieBreak exercises the comparator directly: if
// two extras ever share (kind, label), the higher level sorts first.
func TestSortExtrasLevelTieBreak(t *testing.T) {
	t.Parallel()
	a1 := axis{core.Data, "X"}
	// Duplicate (kind, label) axes cannot occur via DeriveTuple's map
	// today; the comparator still must order them by descending level.
	extras := []axis{a1, {core.Data, "X"}}
	levels := map[axis]core.Level{a1: core.Sensitive}
	sortExtras(extras, levels)
	if levels[extras[0]] != core.Sensitive {
		t.Errorf("level tie-break: got %v first", levels[extras[0]])
	}
}

// TestObservationRecognizedAndPhase pins the new provenance fields:
// classifier hits set Recognized, and an instrumented ledger joins each
// observation to the protocol phase open at Saw time.
func TestObservationRecognizedAndPhase(t *testing.T) {
	t.Parallel()
	cls := NewClassifier()
	cls.RegisterIdentity("alice", "alice", "", core.Sensitive)
	cls.RegisterIdentity("relay", "", "", core.NonSensitive)
	lg := New(cls, nil)
	tel := telemetry.New("phase-test", true, nil)
	lg.Instrument(tel)

	lg.SawIdentity("ent", "alice")
	phase := tel.Start("phase:handshake")
	lg.SawIdentity("ent", "relay")
	inner := tel.Start("work") // non-phase child must not mask the phase
	lg.SawData("ent", "ciphertext:abc")
	inner.End()
	phase.End()
	lg.SawData("ent", "late")

	obs := lg.ByObserver("ent")
	if len(obs) != 4 {
		t.Fatalf("got %d observations", len(obs))
	}
	checks := []struct {
		recognized bool
		phase      string
	}{
		{true, ""},          // alice: registered, before any phase
		{true, "handshake"}, // relay: registered non-sensitive
		{false, "handshake"},
		{false, ""},
	}
	for i, c := range checks {
		if obs[i].Recognized != c.recognized || obs[i].Phase != c.phase {
			t.Errorf("obs %d: Recognized=%v Phase=%q, want %v %q", i, obs[i].Recognized, obs[i].Phase, c.recognized, c.phase)
		}
	}
	for i, o := range obs {
		if o.Seq() == 0 {
			t.Errorf("obs %d: zero seq", i)
		}
		if i > 0 && o.Seq() <= obs[i-1].Seq() {
			t.Errorf("obs %d: seq %d not increasing", i, o.Seq())
		}
	}
}

// TestDeriveSystemEvidenceConsistent checks the system-level variant
// agrees with DeriveSystem and carries link evidence for every handle.
func TestDeriveSystemEvidenceConsistent(t *testing.T) {
	t.Parallel()
	cls := NewClassifier()
	cls.RegisterIdentity("alice", "alice", "", core.Sensitive)
	cls.RegisterData("query", "alice", "", core.Sensitive)
	lg := New(cls, nil)
	lg.SawIdentity("Proxy", "alice", "h1")
	lg.SawData("Proxy", "blob", "h1", "h2")
	lg.SawData("Server", "query", "h2")

	expected := &core.System{
		Name: "toy",
		Entities: []core.Entity{
			{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: "Proxy", Knows: core.Tuple{core.SensID(), core.NonSensData()}},
			{Name: "Server", Knows: core.Tuple{core.NonSensID(), core.SensData()}},
		},
	}
	sysEv := lg.DeriveSystemEvidence(expected)
	plain := lg.DeriveSystem(expected)
	for i, e := range plain.Entities {
		ee := sysEv.Entities[i]
		if ee.Name != e.Name || !ee.Tuple.Equal(e.Knows) {
			t.Errorf("entity %s: evidence tuple %s != derived %s", e.Name, ee.Tuple.Symbol(), e.Knows.Symbol())
		}
	}
	proxy := sysEv.Entities[1]
	if len(proxy.Links) != 2 {
		t.Fatalf("proxy link evidence: %d handles, want 2", len(proxy.Links))
	}
	if proxy.Links[0].Handle != "h1" || len(proxy.Links[0].Evidence) != 2 {
		t.Errorf("h1 evidence: %+v", proxy.Links[0])
	}
	if proxy.Links[1].Handle != "h2" || len(proxy.Links[1].Evidence) != 1 {
		t.Errorf("h2 evidence: %+v", proxy.Links[1])
	}
	if user := sysEv.Entities[0]; len(user.Components) != 0 || !user.User {
		t.Errorf("user entity must carry modeled tuple, no measured components: %+v", user)
	}
}
