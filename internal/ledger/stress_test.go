package ledger

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"decoupling/internal/core"
)

// TestConcurrentObserveMatchesSequential is the lock-striping
// correctness check: N goroutines per observer interleaving Observe,
// RegisterIdentity/RegisterData, and mid-flight DeriveTuple reads must
// leave the ledger with exactly the tuples a sequential run derives.
// Run it under -race.
func TestConcurrentObserveMatchesSequential(t *testing.T) {
	t.Parallel()
	const (
		observers = 8
		writers   = 4  // goroutines per observer
		events    = 50 // observations per goroutine
	)
	template := core.Tuple{core.SensID(), core.SensData()}

	// Sequential ground truth: same event set, one goroutine.
	seq := New(NewClassifier(), nil)
	registerAll(seq.Classifier(), observers)
	for o := 0; o < observers; o++ {
		for w := 0; w < writers; w++ {
			for e := 0; e < events; e++ {
				emit(seq, o, w, e)
			}
		}
	}

	conc := New(NewClassifier(), nil)
	registerAll(conc.Classifier(), observers)
	var wg sync.WaitGroup
	for o := 0; o < observers; o++ {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(o, w int) {
				defer wg.Done()
				for e := 0; e < events; e++ {
					emit(conc, o, w, e)
					if e%16 == 0 {
						// Mid-flight reads must not wedge or corrupt.
						_ = conc.DeriveTuple(obsName(o), template)
						_ = conc.Len()
					}
				}
			}(o, w)
		}
	}
	// Concurrent re-registration exercises the classifier's write lock
	// against the hot classify read path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			conc.Classifier().RegisterIdentity(
				fmt.Sprintf("id-%d", i%observers), obsName(i%observers), "", core.Sensitive)
		}
	}()
	wg.Wait()

	if got, want := conc.Len(), seq.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for o := 0; o < observers; o++ {
		name := obsName(o)
		gotTuple := conc.DeriveTuple(name, template)
		wantTuple := seq.DeriveTuple(name, template)
		if !reflect.DeepEqual(gotTuple, wantTuple) {
			t.Errorf("%s: tuple = %v, want %v", name, gotTuple, wantTuple)
		}
		if got, want := conc.Handles(name), seq.Handles(name); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: handles = %v, want %v", name, got, want)
		}
		// Per-observer logs must hold the same multiset of values; the
		// interleaving across writer goroutines is free to differ.
		if got, want := countValues(conc.ByObserver(name)), countValues(seq.ByObserver(name)); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: observation multiset diverged", name)
		}
	}

	// The merged view must be a permutation in strictly increasing
	// admission order.
	all := conc.Observations()
	if len(all) != seq.Len() {
		t.Fatalf("Observations = %d, want %d", len(all), seq.Len())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].seq >= all[i].seq {
			t.Fatalf("admission order violated at %d: %d >= %d", i, all[i-1].seq, all[i].seq)
		}
	}
}

func registerAll(c *Classifier, observers int) {
	for o := 0; o < observers; o++ {
		c.RegisterIdentity(fmt.Sprintf("id-%d", o), obsName(o), "", core.Sensitive)
		c.RegisterData(fmt.Sprintf("data-%d", o), obsName(o), "", core.Sensitive)
	}
}

func obsName(o int) string { return fmt.Sprintf("entity-%d", o) }

// emit records one deterministic observation for (observer, writer,
// event) — the same call whether issued sequentially or concurrently.
func emit(l *Ledger, o, w, e int) {
	name := obsName(o)
	switch e % 3 {
	case 0:
		l.SawIdentity(name, fmt.Sprintf("id-%d", o), ConnHandle(name, fmt.Sprintf("w%d", w)))
	case 1:
		l.SawData(name, fmt.Sprintf("data-%d", o), ConnHandle(name, "shared"))
	default:
		l.SawData(name, fmt.Sprintf("ciphertext-%d-%d", w, e))
	}
}

func countValues(obs []Observation) map[string]int {
	m := map[string]int{}
	for _, o := range obs {
		m[fmt.Sprintf("%d|%s|%d", o.Kind, o.Value, o.Level)]++
	}
	return m
}
