package ledger

import (
	"reflect"
	"testing"

	"decoupling/internal/telemetry"
)

// TestStats checks the -stats introspection surface: per-observer
// observation counts, distinct handle counts, name ordering, and the
// cross-shard total.
func TestStats(t *testing.T) {
	l := newTestLedger()
	l.SawIdentity("Proxy", "10.0.0.7", "conn-1")
	l.SawData("Proxy", "blob-a", "conn-1", "conn-2")
	l.SawData("Proxy", "blob-b", "conn-2") // conn-2 repeats: 3 handles -> 2 distinct
	l.SawData("Target", "secret-query.example.com")

	st := l.Stats()
	want := Stats{
		Observers: []ObserverStats{
			{Observer: "Proxy", Observations: 3, Handles: 2},
			{Observer: "Target", Observations: 1, Handles: 0},
		},
		Total: 4,
	}
	if !reflect.DeepEqual(st, want) {
		t.Errorf("Stats() = %+v, want %+v", st, want)
	}
}

func TestStatsEmpty(t *testing.T) {
	l := newTestLedger()
	st := l.Stats()
	if st.Total != 0 || len(st.Observers) != 0 {
		t.Errorf("empty ledger Stats() = %+v", st)
	}
}

// TestInstrumentCountsObservations checks the per-observer telemetry
// counter, including backfill onto shards that existed before
// Instrument was called.
func TestInstrumentCountsObservations(t *testing.T) {
	l := newTestLedger()
	l.SawIdentity("Early", "10.0.0.7") // shard exists pre-instrumentation

	m := telemetry.NewMetrics()
	l.Instrument(telemetry.New("E2", false, m, telemetry.A("experiment", "E2")))
	l.SawIdentity("Early", "10.0.0.7")
	l.SawData("Late", "blob-a")
	l.SawData("Late", "blob-b")

	counts := map[string]float64{}
	for _, sv := range m.CounterSeries(telemetry.MetricLedgerObservations) {
		counts[sv.Label("observer")] = sv.Value
		if sv.Label("experiment") != "E2" {
			t.Errorf("series %v missing base label", sv.Labels)
		}
	}
	// The pre-instrumentation observation is not retro-counted; the
	// counter reflects admissions while instrumented.
	want := map[string]float64{"Early": 1, "Late": 2}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("observation counts = %v, want %v", counts, want)
	}
	// The ledger itself still holds everything.
	if st := l.Stats(); st.Total != 4 {
		t.Errorf("Stats total = %d, want 4", st.Total)
	}
}
