package ledger

import (
	"sort"

	"decoupling/internal/core"
)

// ComponentEvidence ties one derived tuple component to the
// observations that establish it: the component's level is the maximum
// seen on its (kind, label) axis, and Evidence lists exactly the
// observations at that level, in admission order. AxisTotal counts
// every observation on the axis at any level, so renderers can report
// "20 of 23 observations establish the level" without silent caps.
type ComponentEvidence struct {
	Component core.Component
	// Extra marks a component absent from the template — an unexpected
	// leak surfaced by derivation rather than predicted by the model.
	Extra     bool
	Evidence  []Observation
	AxisTotal int
}

// LinkEvidence ties one linkage handle an entity holds to the
// observations that carry it, in admission order.
type LinkEvidence struct {
	Handle   string
	Evidence []Observation
}

// EntityEvidence is the provenance-carrying form of one derived entity:
// the tuple DeriveTuple would return, with per-component and per-handle
// supporting observations.
type EntityEvidence struct {
	Name  string
	User  bool
	Tuple core.Tuple
	// Components is empty for the user entity: the user's tuple is
	// modeled (they trivially know themself), not measured.
	Components []ComponentEvidence
	Links      []LinkEvidence
}

// SystemEvidence pairs a measured system (identical to DeriveSystem's
// output) with the evidence chain behind every tuple component and
// entity link. It is the input the provenance package renders.
type SystemEvidence struct {
	System   *core.System
	Entities []EntityEvidence
}

// DeriveTupleEvidence computes the same tuple as DeriveTuple but
// returns, per component, the observations establishing it. The
// component sequence (template axes first, then extras sorted by kind,
// label, descending level) is guaranteed to match DeriveTuple.
func (l *Ledger) DeriveTupleEvidence(observer string, template core.Tuple) []ComponentEvidence {
	obs := l.ByObserver(observer)
	maxLevel := map[axis]core.Level{}
	byAxis := map[axis][]Observation{}
	for _, o := range obs {
		a := axis{o.Kind, o.Label}
		if o.Level > maxLevel[a] {
			maxLevel[a] = o.Level
		}
		byAxis[a] = append(byAxis[a], o)
	}
	supporting := func(a axis) []Observation {
		var ev []Observation
		for _, o := range byAxis[a] {
			if o.Level == maxLevel[a] {
				ev = append(ev, o)
			}
		}
		return ev
	}
	covered := map[axis]bool{}
	out := make([]ComponentEvidence, 0, len(template))
	for _, c := range template {
		a := axis{c.Kind, c.Label}
		covered[a] = true
		out = append(out, ComponentEvidence{
			Component: core.Component{Kind: c.Kind, Label: c.Label, Level: maxLevel[a]},
			Evidence:  supporting(a),
			AxisTotal: len(byAxis[a]),
		})
	}
	extras := make([]axis, 0)
	for a, lvl := range maxLevel {
		if !covered[a] && lvl > core.NonSensitive {
			extras = append(extras, a)
		}
	}
	sortExtras(extras, maxLevel)
	for _, a := range extras {
		out = append(out, ComponentEvidence{
			Component: core.Component{Kind: a.kind, Label: a.label, Level: maxLevel[a]},
			Extra:     true,
			Evidence:  supporting(a),
			AxisTotal: len(byAxis[a]),
		})
	}
	return out
}

// LinkEvidenceFor returns, per distinct handle the entity holds (sorted
// like Handles), the observations carrying it.
func (l *Ledger) LinkEvidenceFor(observer string) []LinkEvidence {
	byHandle := map[string][]Observation{}
	for _, o := range l.ByObserver(observer) {
		seen := map[string]bool{}
		for _, h := range o.Handles {
			if seen[h] { // an observation lists each handle once
				continue
			}
			seen[h] = true
			byHandle[h] = append(byHandle[h], o)
		}
	}
	handles := make([]string, 0, len(byHandle))
	for h := range byHandle {
		handles = append(handles, h)
	}
	sort.Strings(handles)
	out := make([]LinkEvidence, 0, len(handles))
	for _, h := range handles {
		out = append(out, LinkEvidence{Handle: h, Evidence: byHandle[h]})
	}
	return out
}

// DeriveSystemEvidence builds the provenance-carrying equivalent of
// DeriveSystem: the same measured system, plus per-entity component and
// link evidence. Like DeriveSystem it reads per-observer snapshots;
// call it after the run quiesces for a globally consistent audit.
func (l *Ledger) DeriveSystemEvidence(expected *core.System) *SystemEvidence {
	out := &SystemEvidence{System: l.DeriveSystem(expected)}
	for _, e := range expected.Entities {
		ee := EntityEvidence{Name: e.Name, User: e.User}
		if e.User {
			ee.Tuple = e.Knows
		} else {
			comps := l.DeriveTupleEvidence(e.Name, e.Knows)
			ee.Components = comps
			ee.Tuple = make(core.Tuple, 0, len(comps))
			for _, c := range comps {
				ee.Tuple = append(ee.Tuple, c.Component)
			}
			ee.Links = l.LinkEvidenceFor(e.Name)
		}
		out.Entities = append(out.Entities, ee)
	}
	return out
}
