package ledger

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"decoupling/internal/core"
)

func newTestLedger() *Ledger {
	c := NewClassifier()
	c.RegisterIdentity("10.0.0.7", "alice", "", core.Sensitive)
	c.RegisterIdentity("proxy.example", "", "", core.NonSensitive)
	c.RegisterData("secret-query.example.com", "alice", "", core.Sensitive)
	c.RegisterData("example.com", "alice", "", core.Partial)
	return New(c, nil)
}

func TestClassifierDrivesLevels(t *testing.T) {
	l := newTestLedger()
	l.SawIdentity("Proxy", "10.0.0.7")
	l.SawData("Proxy", "3fa9c1-ciphertext") // unregistered -> non-sensitive
	l.SawData("Target", "secret-query.example.com")

	obs := l.Observations()
	if len(obs) != 3 {
		t.Fatalf("got %d observations", len(obs))
	}
	if obs[0].Level != core.Sensitive || obs[0].Subject != "alice" {
		t.Errorf("client address observation misclassified: %+v", obs[0])
	}
	if obs[1].Level != core.NonSensitive {
		t.Errorf("ciphertext observation misclassified: %+v", obs[1])
	}
	if obs[2].Level != core.Sensitive {
		t.Errorf("plaintext query misclassified: %+v", obs[2])
	}
}

func TestDeriveTupleMatchesODoHShape(t *testing.T) {
	l := newTestLedger()
	// Proxy sees client address + ciphertext; target sees proxy address +
	// plaintext query.
	l.SawIdentity("Proxy", "10.0.0.7")
	l.SawData("Proxy", "ciphertext-blob")
	l.SawIdentity("Target", "proxy.example")
	l.SawData("Target", "secret-query.example.com")

	template := core.Tuple{core.NonSensID(), core.NonSensData()}
	proxy := l.DeriveTuple("Proxy", template)
	if !proxy.Equal(core.Tuple{core.SensID(), core.NonSensData()}) {
		t.Errorf("proxy tuple = %s, want (▲, ⊙)", proxy.Symbol())
	}
	target := l.DeriveTuple("Target", template)
	if !target.Equal(core.Tuple{core.NonSensID(), core.SensData()}) {
		t.Errorf("target tuple = %s, want (△, ●)", target.Symbol())
	}
}

func TestDeriveTupleTakesMaxLevel(t *testing.T) {
	l := newTestLedger()
	l.SawData("Relay", "ciphertext")
	l.SawData("Relay", "example.com") // partial
	got := l.DeriveTuple("Relay", core.Tuple{core.NonSensData()})
	if !got.Equal(core.Tuple{core.PartialData()}) {
		t.Errorf("tuple = %s, want (⊙/●)", got.Symbol())
	}
	l.SawData("Relay", "secret-query.example.com")
	got = l.DeriveTuple("Relay", core.Tuple{core.NonSensData()})
	if !got.Equal(core.Tuple{core.SensData()}) {
		t.Errorf("tuple = %s, want (●)", got.Symbol())
	}
}

// TestDeriveTupleSurfacesUnexpectedLeaks: a sensitive observation on an
// axis the template does not contain must appear as an extra component,
// so a leaky implementation cannot silently pass comparison.
func TestDeriveTupleSurfacesUnexpectedLeaks(t *testing.T) {
	c := NewClassifier()
	c.RegisterIdentity("imsi-001", "bob", "N", core.Sensitive)
	l := New(c, nil)
	l.SawIdentity("Gateway", "imsi-001")

	template := core.Tuple{core.SensID("H"), core.NonSensData()}
	got := l.DeriveTuple("Gateway", template)
	if len(got) != 3 {
		t.Fatalf("tuple = %s, want extra ▲_N component", got.Symbol())
	}
	found := false
	for _, comp := range got {
		if comp.Label == "N" && comp.Level == core.Sensitive {
			found = true
		}
	}
	if !found {
		t.Errorf("leak not surfaced: %s", got.Symbol())
	}
}

func TestDeriveTupleEmptyObserver(t *testing.T) {
	l := newTestLedger()
	template := core.Tuple{core.SensID(), core.SensData()}
	got := l.DeriveTuple("Nobody", template)
	want := core.Tuple{core.NonSensID(), core.NonSensData()}
	if !got.Equal(want) {
		t.Errorf("tuple = %s, want %s", got.Symbol(), want.Symbol())
	}
}

func TestDeriveSystem(t *testing.T) {
	l := newTestLedger()
	l.SawIdentity("Resolver", "10.0.0.7", "leg-a")
	l.SawData("Resolver", "ciphertext", "leg-a", "leg-b")
	l.SawIdentity("Oblivious Resolver", "proxy.example", "leg-b")
	l.SawData("Oblivious Resolver", "secret-query.example.com", "leg-b")
	l.SawIdentity("Origin", "resolver.addr")
	l.SawData("Origin", "secret-query.example.com")

	expected := core.ObliviousDNS()
	measured := l.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured system diverges from paper table: %v", diffs)
	}
	// The user entity keeps its modeled tuple.
	if !measured.User().Knows.Equal(expected.User().Knows) {
		t.Error("user tuple not preserved")
	}
	// Links come from observed handles.
	res := measured.Entity("Resolver")
	if !reflect.DeepEqual(res.Links, []string{"leg-a", "leg-b"}) {
		t.Errorf("resolver links = %v", res.Links)
	}
	// The measured system should itself analyze as decoupled, with the
	// resolver+oblivious-resolver coalition re-coupling via leg-b.
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled || v.Degree != 2 {
		t.Errorf("measured verdict = %+v", v)
	}
}

func TestHandles(t *testing.T) {
	l := newTestLedger()
	l.SawData("A", "x", "h2", "h1")
	l.SawData("A", "y", "h1", "h3")
	got := l.Handles("A")
	if !reflect.DeepEqual(got, []string{"h1", "h2", "h3"}) {
		t.Errorf("Handles = %v", got)
	}
	if h := l.Handles("B"); len(h) != 0 {
		t.Errorf("Handles for unknown observer = %v", h)
	}
}

func TestClockStampsObservations(t *testing.T) {
	now := 5 * time.Second
	l := New(NewClassifier(), func() time.Duration { return now })
	l.SawData("A", "x")
	now = 7 * time.Second
	l.SawData("A", "y")
	obs := l.Observations()
	if obs[0].Time != 5*time.Second || obs[1].Time != 7*time.Second {
		t.Errorf("times = %v, %v", obs[0].Time, obs[1].Time)
	}
}

func TestConcurrentSaw(t *testing.T) {
	l := newTestLedger()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.SawData("W", fmt.Sprintf("v-%d-%d", i, j))
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 1600 {
		t.Errorf("Len = %d, want 1600", l.Len())
	}
}

func TestHashStability(t *testing.T) {
	a := Hash([]byte("payload"))
	b := Hash([]byte("payload"))
	c := Hash([]byte("payload!"))
	if a != b {
		t.Error("Hash not deterministic")
	}
	if a == c {
		t.Error("distinct inputs collided")
	}
	if len(a) != 24 {
		t.Errorf("handle length = %d", len(a))
	}
}

func TestConnHandleOrderMatters(t *testing.T) {
	if ConnHandle("a", "b") == ConnHandle("b", "a") {
		t.Error("ConnHandle should be order-sensitive (directional legs differ)")
	}
	if ConnHandle("a", "b") != ConnHandle("a", "b") {
		t.Error("ConnHandle not deterministic")
	}
	// The separator must prevent concatenation ambiguity.
	if ConnHandle("ab", "c") == ConnHandle("a", "bc") {
		t.Error("ConnHandle ambiguous under concatenation")
	}
}

func TestNewNilClassifier(t *testing.T) {
	l := New(nil, nil)
	l.SawData("A", "anything")
	if l.Observations()[0].Level != core.NonSensitive {
		t.Error("default classification should be non-sensitive")
	}
}
