// Package ledger records what information each entity in a running
// system actually observes, and derives empirical knowledge tuples from
// those observations.
//
// This is how the reproduction makes the paper's tables falsifiable:
// protocol implementations call Saw only from code paths where an entity
// genuinely has a value in hand (an address on an accepted connection, a
// name parsed out of a decrypted query), and the experiment — not the
// protocol code — decides which values count as sensitive by registering
// ground truth in a Classifier. An ODoH proxy that could read query
// names would inevitably report them, the classifier would mark them
// sensitive, and the derived tuple would diverge from the paper's table.
//
// Observations also carry linkage handles (connection ids, digests of
// wire bytes). Entities that saw the same handle can join their records;
// entities that only saw re-encrypted bytes cannot. The adversary
// package builds its collusion analysis on exactly this.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/telemetry"
)

// Observation is a single "entity X saw value V" event.
type Observation struct {
	Observer string
	Kind     core.Kind
	Label    string     // tuple axis label, e.g. "" or "H"/"N" for PGPP
	Level    core.Level // classification of the observed value
	Subject  string     // ground-truth subject, if the value is registered
	Value    string     // the value as observed
	Handles  []string   // linkage handles attached by the observer
	Time     time.Duration

	// Recognized reports whether the classifier had ground truth
	// registered for the value. Unrecognized values are opaque blobs
	// (ciphertexts, padding) whose concrete bytes are usually
	// run-dependent; audit renderers redact them.
	Recognized bool
	// Phase is the protocol phase open when the observation was
	// admitted (joined from the telemetry span stack); "" when the
	// ledger is uninstrumented or no phase span is open.
	Phase string

	// seq is the ledger-global admission order, used to reconstruct a
	// total order across per-observer shards.
	seq uint64
}

// Seq returns the ledger-global admission sequence number (1-based).
// Provenance tooling uses it to cross-reference evidence; it is only
// comparable between observations of the same ledger.
func (o Observation) Seq() uint64 { return o.seq }

// classEntry is the registered classification of one concrete value.
type classEntry struct {
	level   core.Level
	subject string
	label   string
}

// Classifier holds the experiment's ground truth: which concrete values
// constitute sensitive identities or sensitive data, which subject each
// belongs to, and which tuple axis (label) it falls on. Values never
// registered are treated as non-sensitive with an empty label — an
// opaque ciphertext carries no recognised information.
type Classifier struct {
	mu         sync.RWMutex
	identities map[string]classEntry
	data       map[string]classEntry
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{
		identities: map[string]classEntry{},
		data:       map[string]classEntry{},
	}
}

// RegisterIdentity records that the concrete value (e.g. an address
// string) is an identity of subject at the given level on axis label.
func (c *Classifier) RegisterIdentity(value, subject, label string, level core.Level) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.identities[value] = classEntry{level: level, subject: subject, label: label}
}

// RegisterData records that the concrete value (e.g. a query name or
// URL) is data of subject at the given level on axis label.
func (c *Classifier) RegisterData(value, subject, label string, level core.Level) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[value] = classEntry{level: level, subject: subject, label: label}
}

func (c *Classifier) classify(kind core.Kind, value string) (classEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.data
	if kind == core.Identity {
		m = c.identities
	}
	if e, ok := m[value]; ok {
		return e, true
	}
	return classEntry{level: core.NonSensitive}, false
}

// shard holds one observer's append-only observation log. Each observer
// gets its own lock, so concurrent observers never contend with each
// other on the hot Saw path.
type shard struct {
	mu  sync.Mutex
	obs []Observation
	// obsCounter is the cached telemetry counter for this observer,
	// nil when the ledger is uninstrumented (Counter.Add is nil-safe).
	obsCounter *telemetry.Counter
}

// Ledger accumulates observations for one experiment run. The zero
// value is not usable; construct with New. Ledger is safe for
// concurrent use — real-loopback systems observe from handler
// goroutines — and lock-striped per observer, so observers do not
// contend with each other when appending.
type Ledger struct {
	classifier *Classifier
	clock      func() time.Duration

	seq atomic.Uint64 // global admission counter, total order across shards

	// tel counts observations per observer when instrumented; nil by
	// default so Saw pays one pointer check.
	tel *telemetry.Telemetry

	mu     sync.RWMutex // guards the shards map, not the logs
	shards map[string]*shard
}

// New creates a ledger bound to a classifier. clock may be nil, in which
// case observations are timestamped zero; simulations pass their virtual
// clock so timing attacks can be evaluated.
func New(c *Classifier, clock func() time.Duration) *Ledger {
	if c == nil {
		c = NewClassifier()
	}
	return &Ledger{classifier: c, clock: clock, shards: map[string]*shard{}}
}

// Classifier returns the bound classifier.
func (l *Ledger) Classifier() *Classifier { return l.classifier }

// Instrument attaches a telemetry sink: every admitted observation
// increments a per-observer counter. Call before concurrent use; a nil
// tel is a no-op.
func (l *Ledger) Instrument(tel *telemetry.Telemetry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tel = tel
	if tel == nil {
		return
	}
	for name, s := range l.shards {
		s.obsCounter = observationCounter(tel, name)
	}
}

func observationCounter(tel *telemetry.Telemetry, observer string) *telemetry.Counter {
	m := tel.Metrics()
	if m == nil {
		return nil
	}
	return m.Counter(telemetry.MetricLedgerObservations,
		"Observations admitted per ledger shard (observer).",
		append(tel.BaseLabels(), telemetry.A("observer", observer))...)
}

// shardFor returns the observer's shard, creating it on first use. The
// fast path is a read-locked map lookup.
func (l *Ledger) shardFor(observer string) *shard {
	l.mu.RLock()
	s := l.shards[observer]
	l.mu.RUnlock()
	if s != nil {
		return s
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if s = l.shards[observer]; s == nil {
		s = &shard{}
		if l.tel != nil {
			s.obsCounter = observationCounter(l.tel, observer)
		}
		l.shards[observer] = s
	}
	return s
}

// lockAll acquires every shard lock in a stable order and returns the
// locked shards keyed by observer, giving cross-observer snapshot APIs a
// consistent point-in-time view. Callers must call the returned unlock.
func (l *Ledger) lockAll() (map[string]*shard, func()) {
	l.mu.RLock()
	names := make([]string, 0, len(l.shards))
	for name := range l.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	shards := make(map[string]*shard, len(names))
	for _, name := range names {
		s := l.shards[name]
		s.mu.Lock()
		shards[name] = s
	}
	l.mu.RUnlock()
	return shards, func() {
		for _, name := range names {
			shards[name].mu.Unlock()
		}
	}
}

// Saw records that observer saw value of the given kind, with optional
// linkage handles. Classification (level, subject, axis label) comes
// from the classifier, never from the protocol code.
func (l *Ledger) Saw(observer string, kind core.Kind, value string, handles ...string) {
	e, recognized := l.classifier.classify(kind, value)
	o := Observation{
		Observer:   observer,
		Kind:       kind,
		Label:      e.label,
		Level:      e.level,
		Subject:    e.subject,
		Value:      value,
		Handles:    append([]string(nil), handles...),
		Recognized: recognized,
	}
	if l.clock != nil {
		o.Time = l.clock()
	}
	if l.tel != nil { // one pointer check when uninstrumented
		o.Phase = l.tel.CurrentPhase()
	}
	s := l.shardFor(observer)
	s.mu.Lock()
	o.seq = l.seq.Add(1)
	s.obs = append(s.obs, o)
	s.mu.Unlock()
	s.obsCounter.Add(1) // nil-safe; nil unless instrumented
}

// Entry is one observation in a SawBatch: what a single protocol step
// put in front of an observer.
type Entry struct {
	Kind    core.Kind
	Value   string
	Handles []string
}

// SawBatch admits a group of observations for one observer atomically:
// one shard-lock acquisition and one contiguous block of the global
// admission counter, instead of per-observation locking. Protocol steps
// that observe several values at once (a proxy seeing a client identity
// and a ciphertext on the same request) use this, which is what keeps
// shard contention flat when thousands of handler goroutines admit
// concurrently on the real transport.
//
// In a sequential run SawBatch assigns exactly the seq numbers the
// equivalent consecutive Saw calls would, so audit goldens are
// unaffected by converting call sites.
func (l *Ledger) SawBatch(observer string, entries []Entry) {
	if len(entries) == 0 {
		return
	}
	obs := make([]Observation, len(entries))
	for i, in := range entries {
		e, recognized := l.classifier.classify(in.Kind, in.Value)
		obs[i] = Observation{
			Observer:   observer,
			Kind:       in.Kind,
			Label:      e.label,
			Level:      e.level,
			Subject:    e.subject,
			Value:      in.Value,
			Handles:    append([]string(nil), in.Handles...),
			Recognized: recognized,
		}
	}
	if l.clock != nil {
		// One clock read for the batch: the entries describe a single
		// protocol step, observed at a single instant.
		t := l.clock()
		for i := range obs {
			obs[i].Time = t
		}
	}
	if l.tel != nil {
		phase := l.tel.CurrentPhase()
		for i := range obs {
			obs[i].Phase = phase
		}
	}
	s := l.shardFor(observer)
	s.mu.Lock()
	base := l.seq.Add(uint64(len(obs))) - uint64(len(obs))
	for i := range obs {
		obs[i].seq = base + uint64(i) + 1
	}
	s.obs = append(s.obs, obs...)
	s.mu.Unlock()
	s.obsCounter.Add(uint64(len(obs))) // nil-safe; nil unless instrumented
}

// SawIdentity is shorthand for Saw with core.Identity.
func (l *Ledger) SawIdentity(observer, value string, handles ...string) {
	l.Saw(observer, core.Identity, value, handles...)
}

// SawData is shorthand for Saw with core.Data.
func (l *Ledger) SawData(observer, value string, handles ...string) {
	l.Saw(observer, core.Data, value, handles...)
}

// Observations returns a copy of all recorded observations in global
// admission order, merged consistently across observer shards.
func (l *Ledger) Observations() []Observation {
	shards, unlock := l.lockAll()
	var out []Observation
	for _, s := range shards {
		out = append(out, s.obs...)
	}
	unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// ByObserver returns the observations recorded by one entity, in the
// order the entity recorded them.
func (l *Ledger) ByObserver(name string) []Observation {
	l.mu.RLock()
	s := l.shards[name]
	l.mu.RUnlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Observation(nil), s.obs...)
}

// Len reports the number of recorded observations.
func (l *Ledger) Len() int {
	shards, unlock := l.lockAll()
	defer unlock()
	n := 0
	for _, s := range shards {
		n += len(s.obs)
	}
	return n
}

// ObserverStats summarizes one observer's shard: how many observations
// it admitted and how many distinct linkage handles it holds.
type ObserverStats struct {
	Observer     string
	Observations int
	Handles      int
}

// Stats summarizes the ledger's shard occupancy: per-observer counts
// (sorted by observer name) plus the total across shards. It is the
// cheap introspection surface behind cmd/experiments -stats.
type Stats struct {
	Observers []ObserverStats
	Total     int
}

// Stats computes a consistent point-in-time summary across all shards.
func (l *Ledger) Stats() Stats {
	shards, unlock := l.lockAll()
	defer unlock()
	var st Stats
	names := make([]string, 0, len(shards))
	for name := range shards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := shards[name]
		handles := map[string]bool{}
		for _, o := range s.obs {
			for _, h := range o.Handles {
				handles[h] = true
			}
		}
		st.Observers = append(st.Observers, ObserverStats{
			Observer:     name,
			Observations: len(s.obs),
			Handles:      len(handles),
		})
		st.Total += len(s.obs)
	}
	return st
}

// Handles returns the sorted distinct linkage handles an entity holds.
func (l *Ledger) Handles(observer string) []string {
	set := map[string]bool{}
	for _, o := range l.ByObserver(observer) {
		for _, h := range o.Handles {
			set[h] = true
		}
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// DeriveTuple computes an entity's empirical knowledge tuple using the
// template's axes: for each (kind, label) component in template, the
// level is the maximum observed on that axis (NonSensitive if the entity
// saw nothing there). Observations of Sensitive or Partial level on axes
// absent from the template are appended, so unexpected leaks surface as
// extra components rather than vanishing.
func (l *Ledger) DeriveTuple(observer string, template core.Tuple) core.Tuple {
	obs := l.ByObserver(observer)
	maxLevel := map[axis]core.Level{}
	for _, o := range obs {
		a := axis{o.Kind, o.Label}
		if o.Level > maxLevel[a] {
			maxLevel[a] = o.Level
		}
	}
	covered := map[axis]bool{}
	out := make(core.Tuple, 0, len(template))
	for _, c := range template {
		a := axis{c.Kind, c.Label}
		covered[a] = true
		out = append(out, core.Component{Kind: c.Kind, Label: c.Label, Level: maxLevel[a]})
	}
	// Surface unexpected sensitive/partial knowledge.
	extras := make([]axis, 0)
	for a, lvl := range maxLevel {
		if !covered[a] && lvl > core.NonSensitive {
			extras = append(extras, a)
		}
	}
	sortExtras(extras, maxLevel)
	for _, a := range extras {
		out = append(out, core.Component{Kind: a.kind, Label: a.label, Level: maxLevel[a]})
	}
	return out
}

// axis is one knowledge-tuple axis: a (kind, label) pair.
type axis struct {
	kind  core.Kind
	label string
}

// sortExtras orders the extra (off-template) axes deterministically:
// by kind, then label, then descending level. Axes are unique per
// (kind, label), so the level tie-break only matters as a defensive
// guarantee that reports stay byte-stable should two extras ever share
// a kind+label prefix after future axis refactors.
func sortExtras(extras []axis, maxLevel map[axis]core.Level) {
	sort.Slice(extras, func(i, j int) bool {
		if extras[i].kind != extras[j].kind {
			return extras[i].kind < extras[j].kind
		}
		if extras[i].label != extras[j].label {
			return extras[i].label < extras[j].label
		}
		return maxLevel[extras[i]] > maxLevel[extras[j]]
	})
}

// DeriveSystem builds a measured core.System shaped like expected: same
// entities, tuples derived from observations, links set to each entity's
// observed handles. The user entity keeps its modeled tuple (the user
// trivially knows their own identity and data; implementations do not
// instrument the user observing themself). Shared-secret structures are
// copied from the expected model — they describe the protocol's algebra,
// not an observation.
func (l *Ledger) DeriveSystem(expected *core.System) *core.System {
	out := &core.System{
		Name:          expected.Name + " (measured)",
		Section:       expected.Section,
		SharedSecrets: expected.SharedSecrets,
		Notes:         "derived from runtime observations",
	}
	for _, e := range expected.Entities {
		ne := core.Entity{Name: e.Name, User: e.User}
		if e.User {
			ne.Knows = e.Knows
		} else {
			ne.Knows = l.DeriveTuple(e.Name, e.Knows)
			ne.Links = l.Handles(e.Name)
		}
		out.Entities = append(out.Entities, ne)
	}
	return out
}

// Hash produces a stable linkage handle from wire bytes: two entities
// that saw the same bytes (and only they) share the handle. Truncated
// SHA-256, hex-encoded.
func Hash(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:12])
}

// ConnHandle produces a linkage handle for a shared connection or
// session named by both endpoints, e.g. ConnHandle("client7", "relay1").
func ConnHandle(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}
