package ledger_test

import (
	"fmt"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// Example shows the measurement discipline end to end: the experiment
// registers ground truth, protocol code records what each entity
// actually parses, and the derived tuples answer "who knew what".
func Example() {
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("198.51.100.7", "alice", "", core.Sensitive)
	cls.RegisterData("private-query.example", "alice", "", core.Sensitive)
	lg := ledger.New(cls, nil)

	// A proxy terminates alice's connection (sees her address) and
	// forwards ciphertext; the backend decrypts the query but sees only
	// the proxy as its peer.
	session := ledger.ConnHandle("198.51.100.7", "proxy")
	backendLeg := ledger.ConnHandle("proxy", "backend")
	lg.SawIdentity("Proxy", "198.51.100.7", session)
	lg.SawData("Proxy", "ciphertext:3fa9", session, backendLeg)
	lg.SawIdentity("Backend", "proxy.internal", backendLeg)
	lg.SawData("Backend", "private-query.example", backendLeg)

	template := core.Tuple{core.NonSensID(), core.NonSensData()}
	fmt.Println("Proxy:  ", lg.DeriveTuple("Proxy", template).Symbol())
	fmt.Println("Backend:", lg.DeriveTuple("Backend", template).Symbol())
	// Output:
	// Proxy:   (▲, ⊙)
	// Backend: (△, ●)
}
