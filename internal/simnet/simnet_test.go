package simnet

import (
	"fmt"
	"testing"
	"time"
)

func TestDeliveryAndLatency(t *testing.T) {
	n := New(1)
	var got []string
	var at time.Duration
	n.Register("b", func(n Transport, m Message) {
		got = append(got, string(m.Payload))
		at = n.Now()
	})
	if err := n.Send("a", "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if delivered := n.Run(); delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	if at != 10*time.Millisecond {
		t.Errorf("delivery time = %v, want default 10ms", at)
	}
}

func TestSendToUnregisteredFails(t *testing.T) {
	n := New(1)
	if err := n.Send("a", "ghost", nil); err == nil {
		t.Fatal("send to unregistered node succeeded")
	}
}

func TestPerLinkLatency(t *testing.T) {
	n := New(1)
	var times []time.Duration
	n.Register("b", func(n Transport, m Message) { times = append(times, n.Now()) })
	n.SetLink("slow", "b", Link{Latency: 100 * time.Millisecond})
	n.SetLink("fast", "b", Link{Latency: 1 * time.Millisecond})
	n.Send("slow", "b", []byte("s"))
	n.Send("fast", "b", []byte("f"))
	n.Run()
	if len(times) != 2 || times[0] != 1*time.Millisecond || times[1] != 100*time.Millisecond {
		t.Errorf("delivery times = %v", times)
	}
}

func TestFIFOForEqualTimestamps(t *testing.T) {
	n := New(1)
	var order []string
	n.Register("b", func(n Transport, m Message) { order = append(order, string(m.Payload)) })
	for i := 0; i < 10; i++ {
		n.Send("a", "b", []byte(fmt.Sprintf("%d", i)))
	}
	n.Run()
	for i, s := range order {
		if s != fmt.Sprintf("%d", i) {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestHandlersCanSend(t *testing.T) {
	n := New(1)
	var final string
	n.Register("relay", func(n Transport, m Message) {
		n.Send("relay", "sink", append([]byte("via-relay:"), m.Payload...))
	})
	n.Register("sink", func(n Transport, m Message) { final = string(m.Payload) })
	n.Send("src", "relay", []byte("x"))
	n.Run()
	if final != "via-relay:x" {
		t.Errorf("final = %q", final)
	}
}

func TestAfterTimer(t *testing.T) {
	n := New(1)
	var firedAt time.Duration
	n.After(250*time.Millisecond, func() { firedAt = n.Now() })
	n.Run()
	if firedAt != 250*time.Millisecond {
		t.Errorf("timer fired at %v", firedAt)
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	n := New(1)
	n.Register("b", func(n Transport, m Message) {})
	n.SetLink("a", "b", Link{Latency: time.Second})
	n.Send("a", "b", nil)
	if d := n.RunUntil(500 * time.Millisecond); d != 0 {
		t.Errorf("delivered %d before deadline", d)
	}
	if n.Now() != 500*time.Millisecond {
		t.Errorf("clock = %v", n.Now())
	}
	if n.Pending() != 1 {
		t.Errorf("pending = %d", n.Pending())
	}
	if d := n.RunUntil(2 * time.Second); d != 1 {
		t.Errorf("delivered %d after deadline extension", d)
	}
}

func TestCaptureRecordsMetadataOnly(t *testing.T) {
	n := New(1)
	n.Register("b", func(n Transport, m Message) {})
	n.Send("a", "b", []byte("0123456789"))
	n.Run()
	cap := n.Capture()
	if len(cap) != 1 {
		t.Fatalf("capture length %d", len(cap))
	}
	r := cap[0]
	if r.Src != "a" || r.Dst != "b" || r.Size != 10 || r.Time != 10*time.Millisecond {
		t.Errorf("record = %+v", r)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []PacketRecord {
		n := New(42)
		n.SetDefaultLink(Link{Latency: 5 * time.Millisecond, Jitter: 20 * time.Millisecond})
		n.Register("sink", func(n Transport, m Message) {})
		for i := 0; i < 50; i++ {
			n.Send(Addr(fmt.Sprintf("n%d", i%7)), "sink", make([]byte, i))
		}
		n.Run()
		return n.Capture()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different capture lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDifferentJitter(t *testing.T) {
	run := func(seed int64) time.Duration {
		n := New(seed)
		n.SetDefaultLink(Link{Latency: time.Millisecond, Jitter: time.Second})
		var at time.Duration
		n.Register("b", func(n Transport, m Message) { at = n.Now() })
		n.Send("a", "b", nil)
		n.Run()
		return at
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
}

func TestPayloadIsolation(t *testing.T) {
	n := New(1)
	buf := []byte("original")
	var got string
	n.Register("b", func(n Transport, m Message) { got = string(m.Payload) })
	n.Send("a", "b", buf)
	buf[0] = 'X' // mutate after send; delivery must see the original
	n.Run()
	if got != "original" {
		t.Errorf("payload not isolated: %q", got)
	}
}

func TestDeliveredCounter(t *testing.T) {
	n := New(1)
	n.Register("b", func(n Transport, m Message) {})
	for i := 0; i < 5; i++ {
		n.Send("a", "b", nil)
	}
	n.After(time.Millisecond, func() {}) // timers don't count
	n.Run()
	if n.Delivered() != 5 {
		t.Errorf("Delivered = %d", n.Delivered())
	}
}

func BenchmarkSendRun(b *testing.B) {
	n := New(1)
	n.Register("sink", func(n Transport, m Message) {})
	payload := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Send("src", "sink", payload)
		if i%1024 == 1023 {
			n.Run()
		}
	}
	n.Run()
}

func TestLinkLossDropsStatistically(t *testing.T) {
	n := New(11)
	n.SetDefaultLink(Link{Latency: time.Millisecond, Loss: 0.5})
	n.Register("b", func(n Transport, m Message) {})
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send("a", "b", nil)
	}
	n.Run()
	got := n.Delivered()
	if got < total/2-150 || got > total/2+150 {
		t.Errorf("delivered %d of %d at 50%% loss", got, total)
	}
	if n.Lost()+got != total {
		t.Errorf("lost %d + delivered %d != %d", n.Lost(), got, total)
	}
}

func TestZeroLossDeliversAll(t *testing.T) {
	n := New(1)
	n.SetDefaultLink(Link{Latency: time.Millisecond})
	n.Register("b", func(n Transport, m Message) {})
	for i := 0; i < 100; i++ {
		n.Send("a", "b", nil)
	}
	n.Run()
	if n.Delivered() != 100 || n.Lost() != 0 {
		t.Errorf("delivered=%d lost=%d", n.Delivered(), n.Lost())
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func() uint64 {
		n := New(99)
		n.SetDefaultLink(Link{Latency: time.Millisecond, Loss: 0.3})
		n.Register("b", func(n Transport, m Message) {})
		for i := 0; i < 500; i++ {
			n.Send("a", "b", nil)
		}
		n.Run()
		return n.Delivered()
	}
	if run() != run() {
		t.Error("loss pattern not deterministic for fixed seed")
	}
}
