package simnet

import (
	"bytes"
	"testing"
	"time"

	"decoupling/internal/telemetry"
)

// TestInstrumentedDelivery checks the simulator's telemetry contract:
// each delivery becomes a span stamped with virtual send/receive times,
// a relayed message nests under the hop that triggered it, and the
// link counters/histogram fill in.
func TestInstrumentedDelivery(t *testing.T) {
	n := New(1)
	m := telemetry.NewMetrics()
	tel := telemetry.New("T", true, m)
	n.Instrument(tel)

	// b relays everything it receives to c: a → b → c is a 2-hop chain.
	n.Register("b", func(n Transport, msg Message) {
		if err := n.Send("b", "c", msg.Payload); err != nil {
			t.Error(err)
		}
	})
	n.Register("c", func(Transport, Message) {})
	if err := n.Send("a", "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if delivered := n.Run(); delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}

	var buf bytes.Buffer
	if err := tel.Tracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("trace fails strict parse: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2 deliveries", len(recs))
	}
	first, second := recs[0], recs[1]
	if first.Name != "simnet.deliver" || first.Attrs["src"] != "a" || first.Attrs["dst"] != "b" {
		t.Errorf("first hop span wrong: %+v", first)
	}
	if first.Parent != 0 {
		t.Errorf("first hop parent = %d, want root", first.Parent)
	}
	if second.Parent != first.Span {
		t.Errorf("relayed hop parent = %d, want %d (must nest under the inbound hop)",
			second.Parent, first.Span)
	}
	// Default link: 10ms per hop. First hop sent at 0, delivered at
	// 10ms; second sent at 10ms, delivered at 20ms.
	if first.StartNS != 0 || first.EndNS != int64(10*time.Millisecond) {
		t.Errorf("first hop times = %d..%d", first.StartNS, first.EndNS)
	}
	if second.StartNS != int64(10*time.Millisecond) || second.EndNS != int64(20*time.Millisecond) {
		t.Errorf("second hop times = %d..%d", second.StartNS, second.EndNS)
	}

	total := 0.0
	for _, sv := range m.CounterSeries(telemetry.MetricSimnetMessages) {
		total += sv.Value
	}
	if total != 2 {
		t.Errorf("message counter total = %v, want 2", total)
	}
	for _, sv := range m.CounterSeries(telemetry.MetricSimnetBytes) {
		if sv.Value != float64(len("hello")) {
			t.Errorf("bytes counter %v = %v, want %d", sv.Labels, sv.Value, len("hello"))
		}
	}
}

// TestInstrumentedLoss checks dropped datagrams feed the lost counter
// and produce no delivery span.
func TestInstrumentedLoss(t *testing.T) {
	n := New(1)
	m := telemetry.NewMetrics()
	tel := telemetry.New("T", true, m)
	n.Instrument(tel)
	n.Register("b", func(Transport, Message) {})
	n.SetLink("a", "b", Link{Loss: 1})
	for i := 0; i < 5; i++ {
		if err := n.Send("a", "b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if delivered := n.Run(); delivered != 0 {
		t.Fatalf("delivered = %d, want 0 at loss 1.0", delivered)
	}
	lost := m.CounterSeries(telemetry.MetricSimnetLost)
	if len(lost) != 1 || lost[0].Value != 5 {
		t.Errorf("lost counter = %+v, want one series at 5", lost)
	}
	if n := tel.Tracer().Len(); n != 0 {
		t.Errorf("dropped datagrams produced %d spans", n)
	}
}

// TestUninstrumentedRunUnchanged: a network without telemetry must
// behave exactly as before — this pins the nil-check-only contract.
func TestUninstrumentedRunUnchanged(t *testing.T) {
	n := New(1)
	got := 0
	n.Register("b", func(Transport, Message) { got++ })
	for i := 0; i < 3; i++ {
		n.Send("a", "b", []byte("x"))
	}
	if delivered := n.Run(); delivered != 3 || got != 3 {
		t.Fatalf("delivered=%d handled=%d, want 3/3", delivered, got)
	}
}

// BenchmarkDeliveryUninstrumented vs BenchmarkDeliveryInstrumented:
// the disabled-telemetry delivery loop must stay within noise of the
// pre-telemetry baseline (one nil check per event); the instrumented
// variant quantifies the opt-in cost.
func BenchmarkDeliveryUninstrumented(b *testing.B) {
	benchDelivery(b, nil)
}

func BenchmarkDeliveryInstrumented(b *testing.B) {
	benchDelivery(b, telemetry.New("bench", true, telemetry.NewMetrics()))
}

func benchDelivery(b *testing.B, tel *telemetry.Telemetry) {
	n := New(1)
	n.SetDefaultLink(Link{})
	n.Instrument(tel)
	n.Register("b", func(Transport, Message) {})
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send("a", "b", payload); err != nil {
			b.Fatal(err)
		}
		n.Run()
	}
}
