// Fault injection for the deterministic simulator.
//
// A FaultPlan is a declarative schedule of failures — node crash/restart
// windows, link partitions, burst loss, and latency spikes — evaluated
// against the virtual clock. Every fault draws randomness (when it needs
// any) from the network's single seeded RNG, so a chaos run is exactly
// as reproducible as a healthy one: same seed + same plan = same bytes.
//
// Determinism rules for fault plans:
//
//   - Windows are half-open [From, Until) in virtual time; Until <= 0
//     means the fault never clears.
//   - Crash and restart transitions are scheduled as ordinary queue
//     events when ApplyFaults is called, so their ordering against
//     same-timestamp deliveries follows the queue's FIFO seq tiebreak:
//     apply the plan before sending and the crash wins; the reverse
//     order lets the in-flight delivery land first.
//   - Link faults (partition, loss, spike) are evaluated at Send time
//     from the sender's virtual clock; loss consumes one RNG draw
//     exactly when the effective loss probability is positive.
//
// Crashed nodes drop inbound datagrams (counted as fault drops), refuse
// new sends with ErrNodeDown, and have their pending After timers
// cancelled — a mix's batch-timeout flush does not survive its crash.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrNodeDown is wrapped into Send errors when the source or destination
// node is inside a crash window. Unlike silent link loss, a send to a
// crashed node fails fast — the caller's retry logic gets an immediate,
// typed signal (the moral equivalent of a connection refused).
var ErrNodeDown = errors.New("simnet: node down")

// ErrOverlappingCrash is wrapped into ParseFaultPlan errors when two
// crash windows can cover the same node at the same instant. Overlap is
// rejected rather than merged because the transitions are scheduled
// independently: the first window's restart would bring the node up in
// the middle of the second window, silently contradicting the spec.
var ErrOverlappingCrash = errors.New("simnet: overlapping crash windows for the same node")

// Wildcard matches any node in a fault's Node/Src/Dst position.
const Wildcard Addr = "*"

// FaultKind enumerates the injectable failure modes.
type FaultKind int

const (
	// FaultCrash takes a node down for a window: inbound datagrams are
	// dropped, sends from/to it fail with ErrNodeDown, and its pending
	// timers are cancelled.
	FaultCrash FaultKind = iota
	// FaultPartition silently drops every datagram on a directed link
	// for a window (the wire gives no error — only timeouts notice).
	FaultPartition
	// FaultLoss raises a directed link's drop probability for a window
	// (burst loss).
	FaultLoss
	// FaultSpike adds fixed extra latency on a directed link for a
	// window.
	FaultSpike
)

// Fault is one scheduled failure. Src/Dst/Node may be Wildcard.
type Fault struct {
	Kind FaultKind
	Node Addr // FaultCrash target
	Src  Addr // link faults: directed source
	Dst  Addr // link faults: directed destination
	// Window [From, Until) in virtual time; Until <= 0 = never clears.
	From, Until time.Duration
	Loss        float64       // FaultLoss probability in [0, 1]
	Extra       time.Duration // FaultSpike added latency
}

func (f Fault) active(t time.Duration) bool {
	return t >= f.From && (f.Until <= 0 || t < f.Until)
}

func matchAddr(pat, a Addr) bool { return pat == Wildcard || pat == a }

// FaultPlan is an immutable-once-applied schedule of faults. The
// builder methods return the plan for chaining.
type FaultPlan struct {
	faults []Fault
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Crash schedules node down during [from, until); until <= 0 means no
// restart.
func (p *FaultPlan) Crash(node Addr, from, until time.Duration) *FaultPlan {
	p.faults = append(p.faults, Fault{Kind: FaultCrash, Node: node, From: from, Until: until})
	return p
}

// Partition severs the link between a and b in both directions during
// [from, until).
func (p *FaultPlan) Partition(a, b Addr, from, until time.Duration) *FaultPlan {
	return p.PartitionOneWay(a, b, from, until).PartitionOneWay(b, a, from, until)
}

// PartitionOneWay severs only the directed link src->dst.
func (p *FaultPlan) PartitionOneWay(src, dst Addr, from, until time.Duration) *FaultPlan {
	p.faults = append(p.faults, Fault{Kind: FaultPartition, Src: src, Dst: dst, From: from, Until: until})
	return p
}

// Loss raises the directed link's drop probability to at least prob
// during [from, until).
func (p *FaultPlan) Loss(src, dst Addr, prob float64, from, until time.Duration) *FaultPlan {
	p.faults = append(p.faults, Fault{Kind: FaultLoss, Src: src, Dst: dst, Loss: prob, From: from, Until: until})
	return p
}

// LatencySpike adds extra delay on the directed link during [from,
// until). Overlapping spikes sum.
func (p *FaultPlan) LatencySpike(src, dst Addr, extra, from, until time.Duration) *FaultPlan {
	p.faults = append(p.faults, Fault{Kind: FaultSpike, Src: src, Dst: dst, Extra: extra, From: from, Until: until})
	return p
}

// Merge appends every fault of o (overlay semantics).
func (p *FaultPlan) Merge(o *FaultPlan) *FaultPlan {
	if o != nil {
		p.faults = append(p.faults, o.faults...)
	}
	return p
}

// Faults returns a copy of the schedule.
func (p *FaultPlan) Faults() []Fault {
	if p == nil {
		return nil
	}
	return append([]Fault(nil), p.faults...)
}

// Empty reports whether the plan schedules nothing.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.faults) == 0 }

// CrashedAt reports whether node is inside any crash window at t. It is
// a pure window query: protocols that run outside the simulator (the
// HTTP-based stacks) can evaluate the same plan against their own
// logical clocks.
func (p *FaultPlan) CrashedAt(node Addr, t time.Duration) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults {
		if f.Kind == FaultCrash && matchAddr(f.Node, node) && f.active(t) {
			return true
		}
	}
	return false
}

// PartitionedAt reports whether the directed link src->dst is severed
// at t.
func (p *FaultPlan) PartitionedAt(src, dst Addr, t time.Duration) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults {
		if f.Kind == FaultPartition && matchAddr(f.Src, src) && matchAddr(f.Dst, dst) && f.active(t) {
			return true
		}
	}
	return false
}

// LossAt returns the highest injected loss probability on src->dst at t
// (0 when no loss fault is active).
func (p *FaultPlan) LossAt(src, dst Addr, t time.Duration) float64 {
	if p == nil {
		return 0
	}
	var loss float64
	for _, f := range p.faults {
		if f.Kind == FaultLoss && matchAddr(f.Src, src) && matchAddr(f.Dst, dst) && f.active(t) && f.Loss > loss {
			loss = f.Loss
		}
	}
	return loss
}

// SpikeAt returns the summed extra latency on src->dst at t.
func (p *FaultPlan) SpikeAt(src, dst Addr, t time.Duration) time.Duration {
	if p == nil {
		return 0
	}
	var extra time.Duration
	for _, f := range p.faults {
		if f.Kind == FaultSpike && matchAddr(f.Src, src) && matchAddr(f.Dst, dst) && f.active(t) {
			extra += f.Extra
		}
	}
	return extra
}

// Spec renders the plan in the ParseFaultPlan grammar, one clause per
// fault in schedule order. The output is canonical — parsing it yields
// an equal plan whose Spec is byte-identical — which is what lets
// fault plans ride inside replay traces and shrink by clause removal.
// Both-direction partitions built with Partition serialize as their two
// one-way clauses.
func (p *FaultPlan) Spec() string {
	if p.Empty() {
		return ""
	}
	clauses := make([]string, 0, len(p.faults))
	for _, f := range p.faults {
		w := f.From.String() + "-"
		if f.Until > 0 {
			w += f.Until.String()
		}
		switch f.Kind {
		case FaultCrash:
			clauses = append(clauses, fmt.Sprintf("crash:%s@%s", f.Node, w))
		case FaultPartition:
			clauses = append(clauses, fmt.Sprintf("partition:%s>%s@%s", f.Src, f.Dst, w))
		case FaultLoss:
			clauses = append(clauses, fmt.Sprintf("loss:%s>%s:%s@%s",
				f.Src, f.Dst, strconv.FormatFloat(f.Loss, 'g', -1, 64), w))
		case FaultSpike:
			clauses = append(clauses, fmt.Sprintf("spike:%s>%s:%s@%s", f.Src, f.Dst, f.Extra, w))
		}
	}
	return strings.Join(clauses, ";")
}

// validateCrashWindows rejects plans where two crash windows can cover
// the same node at the same instant (Wildcard overlaps everything).
func validateCrashWindows(faults []Fault) error {
	var crashes []Fault
	for _, f := range faults {
		if f.Kind == FaultCrash {
			crashes = append(crashes, f)
		}
	}
	for i, f := range crashes {
		for _, g := range crashes[i+1:] {
			if f.Node != g.Node && f.Node != Wildcard && g.Node != Wildcard {
				continue
			}
			// Half-open windows [From, Until) with Until <= 0 = forever.
			disjoint := (f.Until > 0 && f.Until <= g.From) || (g.Until > 0 && g.Until <= f.From)
			if !disjoint {
				return fmt.Errorf("%w: %s@%s- and %s@%s-", ErrOverlappingCrash, f.Node, f.From, g.Node, g.From)
			}
		}
	}
	return nil
}

// ParseFaultPlan parses a compact spec string:
//
//	crash:NODE@FROM-[UNTIL]
//	partition:A<>B@FROM-[UNTIL]     (both directions)
//	partition:A>B@FROM-[UNTIL]      (one direction)
//	loss:SRC>DST:PROB@FROM-[UNTIL]
//	spike:SRC>DST:EXTRA@FROM-[UNTIL]
//
// Faults are ';'-separated; addresses may be "*"; FROM/UNTIL are Go
// durations ("25ms"); an empty UNTIL means the fault never clears.
//
//	crash:mix2@25ms-120ms;loss:*>mix1:0.3@0-;spike:exit>origin:40ms@50ms-90ms
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	p := NewFaultPlan()
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("simnet: fault %q: missing kind", part)
		}
		body, window, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("simnet: fault %q: missing @window", part)
		}
		from, until, err := parseWindow(window)
		if err != nil {
			return nil, fmt.Errorf("simnet: fault %q: %w", part, err)
		}
		switch kind {
		case "crash":
			if body == "" {
				return nil, fmt.Errorf("simnet: fault %q: missing node", part)
			}
			p.Crash(Addr(body), from, until)
		case "partition":
			if a, b, ok := strings.Cut(body, "<>"); ok {
				p.Partition(Addr(a), Addr(b), from, until)
			} else if a, b, ok := strings.Cut(body, ">"); ok {
				p.PartitionOneWay(Addr(a), Addr(b), from, until)
			} else {
				return nil, fmt.Errorf("simnet: fault %q: want A<>B or A>B", part)
			}
		case "loss":
			link, probStr, ok := strings.Cut(body, ":")
			src, dst, ok2 := strings.Cut(link, ">")
			if !ok || !ok2 {
				return nil, fmt.Errorf("simnet: fault %q: want SRC>DST:PROB", part)
			}
			prob, err := strconv.ParseFloat(probStr, 64)
			if err != nil || !(prob >= 0 && prob <= 1) {
				return nil, fmt.Errorf("simnet: fault %q: loss probability must be in [0,1]", part)
			}
			p.Loss(Addr(src), Addr(dst), prob, from, until)
		case "spike":
			link, extraStr, ok := strings.Cut(body, ":")
			src, dst, ok2 := strings.Cut(link, ">")
			if !ok || !ok2 {
				return nil, fmt.Errorf("simnet: fault %q: want SRC>DST:EXTRA", part)
			}
			extra, err := time.ParseDuration(extraStr)
			if err != nil || extra < 0 {
				return nil, fmt.Errorf("simnet: fault %q: bad spike duration %q", part, extraStr)
			}
			p.LatencySpike(Addr(src), Addr(dst), extra, from, until)
		default:
			return nil, fmt.Errorf("simnet: fault %q: unknown kind %q (crash, partition, loss, spike)", part, kind)
		}
	}
	if err := validateCrashWindows(p.faults); err != nil {
		return nil, err
	}
	return p, nil
}

func parseWindow(w string) (from, until time.Duration, err error) {
	fromStr, untilStr, ok := strings.Cut(w, "-")
	if !ok {
		return 0, 0, fmt.Errorf("window %q: want FROM-[UNTIL]", w)
	}
	if fromStr != "" {
		if from, err = time.ParseDuration(fromStr); err != nil || from < 0 {
			return 0, 0, fmt.Errorf("window %q: bad FROM", w)
		}
	}
	if untilStr != "" {
		if until, err = time.ParseDuration(untilStr); err != nil || until <= from {
			return 0, 0, fmt.Errorf("window %q: UNTIL must be a duration after FROM", w)
		}
	}
	return from, until, nil
}

// namedFaultPlans are the canonical chaos schedules selectable by name
// via the -faults flag (spec strings remain accepted for ad-hoc plans).
var namedFaultPlans = map[string]string{
	// flaky: 20% burst loss on every link from t=0, forever.
	"flaky": "loss:*>*:0.2@0-",
	// split: every link severed for a mid-run window.
	"split": "partition:*>*@30ms-80ms",
	// tail: a latency spike on every link mid-run.
	"tail": "spike:*>*:40ms@30ms-120ms",
}

// NamedFaultPlans returns the selectable plan names, sorted.
func NamedFaultPlans() []string {
	names := make([]string, 0, len(namedFaultPlans))
	for n := range namedFaultPlans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FaultPlanFromSpec resolves a -faults argument: a registered plan name
// or a ParseFaultPlan spec string. Empty means no plan (nil).
func FaultPlanFromSpec(spec string) (*FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	if named, ok := namedFaultPlans[spec]; ok {
		spec = named
	}
	return ParseFaultPlan(spec)
}

// ApplyFaults overlays a plan on the network. Link faults take effect
// immediately (window queries at Send time); crash/restart transitions
// are pushed onto the event queue NOW, which fixes their FIFO order
// relative to any same-timestamp delivery: transitions applied before a
// send precede it. Wildcard crashes expand over the currently
// registered nodes in sorted order. May be called repeatedly; plans
// merge.
func (n *Network) ApplyFaults(p *FaultPlan) {
	if p.Empty() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.plan == nil {
		n.plan = NewFaultPlan()
	}
	n.plan.Merge(p)
	for _, f := range p.faults {
		if f.Kind != FaultCrash {
			continue
		}
		for _, node := range n.expandLocked(f.Node) {
			node := node
			// Clamp to the present: applying a plan mid-run must never
			// rewind the virtual clock.
			down, up := max(f.From, n.now), max(f.Until, n.now)
			n.seq++
			heap.Push(&n.queue, &event{at: down, seq: n.seq, fire: func() { n.setCrashed(node, true) }})
			if f.Until > 0 {
				n.seq++
				heap.Push(&n.queue, &event{at: up, seq: n.seq, fire: func() { n.setCrashed(node, false) }})
			}
		}
	}
}

// expandLocked resolves a node pattern against registered nodes.
func (n *Network) expandLocked(pat Addr) []Addr {
	if pat != Wildcard {
		return []Addr{pat}
	}
	nodes := make([]Addr, 0, len(n.nodes))
	for a := range n.nodes {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// setCrashed flips a node's crash state. Crashing cancels the node's
// pending timers: a timer armed by a node that later dies must not fire
// after its owner is gone (a crashed mix does not flush its batch).
func (n *Network) setCrashed(node Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed == nil {
		n.crashed = map[Addr]bool{}
	}
	n.crashed[node] = down
	if down {
		for _, e := range n.queue {
			if e.fire != nil && e.owner == node {
				e.cancelled = true
			}
		}
	}
}

// CrashedNow reports whether node is currently down (for tests and
// example programs; protocols should just observe Send errors).
func (n *Network) CrashedNow(node Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[node]
}

// FaultDrops returns the all-time count of datagrams dropped by
// injected faults (crashes and partitions; burst loss counts under
// Lost alongside ordinary link loss).
func (n *Network) FaultDrops() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faultDrops
}
