// Fault injection for the deterministic simulator.
//
// The fault-plan grammar (kinds, windows, the Spec round-trip, named
// plans) lives in the transport-neutral internal/faults package; this
// file keeps aliases so existing callers and specs are untouched, plus
// the simulator-side enforcement that is genuinely simnet's: scheduling
// crash transitions as queue events on the virtual clock, cancelling a
// crashed node's timers, and dropping faulted datagrams with counted
// reasons.
//
// Determinism rules for fault plans on simnet:
//
//   - Windows are half-open [From, Until) in VIRTUAL time; Until <= 0
//     means the fault never clears.
//   - Crash and restart transitions are scheduled as ordinary queue
//     events when ApplyFaults is called, so their ordering against
//     same-timestamp deliveries follows the queue's FIFO seq tiebreak:
//     apply the plan before sending and the crash wins; the reverse
//     order lets the in-flight delivery land first.
//   - Link faults (partition, loss, spike) are evaluated at Send time
//     from the sender's virtual clock. INJECTED loss draws from the
//     deterministic faults.LossDraw stream keyed per directed link —
//     not from the network RNG — so the same plan drops the same
//     datagrams on the real transport; organic Link.Loss keeps its RNG
//     draw and its separate accounting.
//
// Crashed nodes drop inbound datagrams (counted as fault drops), refuse
// new sends with ErrNodeDown, and have their pending After timers
// cancelled — a mix's batch-timeout flush does not survive its crash.
package simnet

import (
	"container/heap"
	"sort"

	"decoupling/internal/faults"
)

// ErrNodeDown is wrapped into Send errors when the source or destination
// node is inside a crash window (see faults.ErrNodeDown).
var ErrNodeDown = faults.ErrNodeDown

// ErrOverlappingCrash is wrapped into ParseFaultPlan errors when two
// crash windows can cover the same node at the same instant (see
// faults.ErrOverlappingCrash).
var ErrOverlappingCrash = faults.ErrOverlappingCrash

// Wildcard matches any node in a fault's Node/Src/Dst position.
const Wildcard = faults.Wildcard

// FaultKind enumerates the injectable failure modes.
type FaultKind = faults.Kind

const (
	FaultCrash     = faults.FaultCrash
	FaultPartition = faults.FaultPartition
	FaultLoss      = faults.FaultLoss
	FaultSpike     = faults.FaultSpike
)

// Fault is one scheduled failure. Src/Dst/Node may be Wildcard.
type Fault = faults.Fault

// FaultPlan is an immutable-once-applied schedule of faults.
type FaultPlan = faults.Plan

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan { return faults.NewPlan() }

// ParseFaultPlan parses a compact spec string (see faults.ParsePlan for
// the grammar).
func ParseFaultPlan(spec string) (*FaultPlan, error) { return faults.ParsePlan(spec) }

// namedFaultPlans mirrors the shared named-plan table (fuzz seeds range
// over it).
var namedFaultPlans = faults.NamedPlanSpecs()

// NamedFaultPlans returns the selectable plan names, sorted.
func NamedFaultPlans() []string { return faults.NamedPlans() }

// FaultPlanFromSpec resolves a -faults argument: a registered plan name
// or a ParseFaultPlan spec string. Empty means no plan (nil).
func FaultPlanFromSpec(spec string) (*FaultPlan, error) { return faults.PlanFromSpec(spec) }

// ApplyFaults overlays a plan on the network. Link faults take effect
// immediately (window queries at Send time); crash/restart transitions
// are pushed onto the event queue NOW, which fixes their FIFO order
// relative to any same-timestamp delivery: transitions applied before a
// send precede it. Wildcard crashes expand over the currently
// registered nodes in sorted order. May be called repeatedly; plans
// merge.
func (n *Network) ApplyFaults(p *FaultPlan) {
	if p.Empty() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.plan == nil {
		n.plan = NewFaultPlan()
	}
	n.plan.Merge(p)
	for _, f := range p.Faults() {
		if f.Kind != FaultCrash {
			continue
		}
		for _, node := range n.expandLocked(f.Node) {
			node := node
			// Clamp to the present: applying a plan mid-run must never
			// rewind the virtual clock.
			down, up := max(f.From, n.now), max(f.Until, n.now)
			n.seq++
			heap.Push(&n.queue, &event{at: down, seq: n.seq, fire: func() { n.setCrashed(node, true) }})
			if f.Until > 0 {
				n.seq++
				heap.Push(&n.queue, &event{at: up, seq: n.seq, fire: func() { n.setCrashed(node, false) }})
			}
		}
	}
}

// expandLocked resolves a node pattern against registered nodes.
func (n *Network) expandLocked(pat Addr) []Addr {
	if pat != Wildcard {
		return []Addr{pat}
	}
	nodes := make([]Addr, 0, len(n.nodes))
	for a := range n.nodes {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// setCrashed flips a node's crash state. Crashing cancels the node's
// pending timers: a timer armed by a node that later dies must not fire
// after its owner is gone (a crashed mix does not flush its batch).
func (n *Network) setCrashed(node Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed == nil {
		n.crashed = map[Addr]bool{}
	}
	n.crashed[node] = down
	if down {
		for _, e := range n.queue {
			if e.fire != nil && e.owner == node {
				e.cancelled = true
			}
		}
	}
}

// CrashedNow reports whether node is currently down (for tests and
// example programs; protocols should just observe Send errors).
func (n *Network) CrashedNow(node Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[node]
}

// FaultDrops returns the all-time count of datagrams dropped by
// injected faults (crashes and partitions; burst loss counts under
// Lost alongside ordinary link loss).
func (n *Network) FaultDrops() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faultDrops
}
