// Schedule exploration for the deterministic simulator.
//
// The event loop's canonical order — virtual time, then FIFO seq — is
// ONE admissible schedule out of many: events that share a timestamp
// could be delivered in any order the real network might exhibit, as
// long as causality survives. A Scheduler picks among those admissible
// orders; a seeded scheduler turns the simulator into a schedule
// explorer (FoundationDB-style simulation testing), and a recorded
// ScheduleTrace makes any explored schedule replayable bit-for-bit.
//
// Admissibility rules, enforced by the Network (never delegated to the
// scheduler):
//
//   - Virtual time is monotone: only events at the earliest queued
//     timestamp are ready.
//   - FIFO per link: two deliveries on the same directed (src, dst)
//     link keep their send order.
//   - FIFO per timer owner: two timers armed by the same node (or both
//     armed from outside the loop, owner "") keep their arming order.
//     This covers crash/restart transitions, which are owner-"" timers:
//     a crash may be reordered against a same-time delivery — exactly
//     the race worth exploring — but never against its own restart.
//
// Every decision point with more than one admissible event is recorded
// as the index chosen (in canonical seq order of the admissible set),
// so a ScheduleTrace is a compact, position-addressed replay script: an
// empty trace (or any exhausted/out-of-range entry) falls back to the
// canonical choice 0, which is what makes traces shrinkable by
// truncation and zeroing.
package simnet

import (
	"math/rand"
)

// EventMeta describes one ready event to a Scheduler. Payload bytes are
// deliberately absent: schedulers see exactly what a network-level
// adversary could reorder on (endpoints, sizes, arming order).
type EventMeta struct {
	// Seq is the event's global FIFO sequence number.
	Seq uint64
	// Timer is true for After-armed callbacks (including fault
	// transitions), false for datagram deliveries.
	Timer bool
	// Owner is the timer's owning node ("" for timers armed outside the
	// event loop); empty for deliveries.
	Owner Addr
	// Src and Dst are the delivery endpoints; empty for timers.
	Src, Dst Addr
	// Size is the delivery's payload length in bytes (0 for timers).
	Size int
}

// Scheduler picks which admissible ready event the loop runs next.
// ready is the admissible subset of the earliest-timestamp events, in
// canonical (seq) order and always non-empty; Pick returns an index
// into it. Out-of-range picks are clamped to 0 (the canonical choice).
// Schedulers run on the event-loop goroutine and must be deterministic
// for reproducibility.
type Scheduler interface {
	Pick(ready []EventMeta) int
}

// ScheduleTrace is a recorded sequence of scheduling decisions: one
// entry per decision point that had more than one admissible event,
// holding the index picked. It is both the artifact a recorded run
// yields and the script a replayed run consumes.
type ScheduleTrace []int

// seededScheduler permutes admissible events uniformly with its own
// RNG, kept separate from the network's RNG so schedule choices never
// perturb loss or jitter draws.
type seededScheduler struct{ rng *rand.Rand }

func (s *seededScheduler) Pick(ready []EventMeta) int { return s.rng.Intn(len(ready)) }

// NewSeededScheduler returns a scheduler that picks uniformly among
// admissible events using its own deterministic stream. Same seed, same
// schedule.
func NewSeededScheduler(seed uint64) Scheduler {
	return &seededScheduler{rng: rand.New(rand.NewSource(int64(seed)))}
}

// SetScheduler installs a scheduler for subsequent Run/RunUntil calls
// (nil restores the canonical FIFO order). Decision points with more
// than one admissible event are recorded; fetch the recording with
// RecordedSchedule.
func (n *Network) SetScheduler(s Scheduler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sched = s
}

// ReplaySchedule forces the loop to repeat a recorded trace: decision
// point i picks trace[i] (clamped to the admissible set; canonical 0
// once the trace is exhausted). Replay takes precedence over any
// installed Scheduler and is itself re-recorded, so the recording of a
// replayed run is the normalized trace. An empty (or nil) trace is a
// valid script — every decision goes canonical — and still records, so
// replaying a replay is always a fixpoint.
func (n *Network) ReplaySchedule(t ScheduleTrace) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.replay = append(make(ScheduleTrace, 0, len(t)), t...)
	n.replayPos = 0
}

// RecordedSchedule returns the decisions recorded so far (one entry per
// multi-choice decision point since construction).
func (n *Network) RecordedSchedule() ScheduleTrace {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append(ScheduleTrace(nil), n.schedTrace...)
}

// meta renders an event for a scheduling decision.
func (e *event) meta() EventMeta {
	m := EventMeta{Seq: e.seq}
	if e.deliver != nil {
		m.Src, m.Dst, m.Size = e.deliver.Src, e.deliver.Dst, len(e.deliver.Payload)
	} else {
		m.Timer = true
		m.Owner = e.owner
	}
	return m
}

// fifoKey is the FIFO class an event must stay ordered within.
type fifoKey struct {
	timer bool
	a, b  Addr
}

func (e *event) fifoClass() fifoKey {
	if e.deliver != nil {
		return fifoKey{a: e.deliver.Src, b: e.deliver.Dst}
	}
	return fifoKey{timer: true, a: e.owner}
}

// popNextLocked removes and returns the next event to run, honoring the
// installed scheduler or replay trace. With neither installed (the
// default), it is exactly the canonical heap pop. Called with n.mu
// held.
func (n *Network) popNextLocked() *event {
	if (n.sched == nil && n.replay == nil) || len(n.queue) < 2 {
		return n.popCanonicalLocked()
	}
	// Gather every event at the earliest timestamp, in canonical order
	// (repeated heap pops yield ascending (at, seq)).
	t := n.queue[0].at
	var ready []*event
	for len(n.queue) > 0 && n.queue[0].at == t {
		ready = append(ready, n.popCanonicalLocked())
	}
	choice := 0
	if len(ready) > 1 {
		// Admissible events: no earlier event in the same FIFO class.
		seen := map[fifoKey]bool{}
		var adm []int
		metas := make([]EventMeta, 0, len(ready))
		for i, e := range ready {
			k := e.fifoClass()
			if !seen[k] {
				seen[k] = true
				adm = append(adm, i)
				metas = append(metas, e.meta())
			}
		}
		pick := 0
		if len(adm) > 1 {
			switch {
			case n.replay != nil:
				if n.replayPos < len(n.replay) {
					pick = n.replay[n.replayPos]
				}
				n.replayPos++
			default:
				pick = n.sched.Pick(metas)
			}
			if pick < 0 || pick >= len(adm) {
				pick = 0
			}
			n.schedTrace = append(n.schedTrace, pick)
		}
		choice = adm[pick]
	}
	e := ready[choice]
	// Everything not chosen goes back on the queue untouched; their seq
	// numbers keep the canonical order stable for the next decision.
	for i, o := range ready {
		if i != choice {
			n.pushLocked(o)
		}
	}
	return e
}

// popCanonicalLocked pops the canonical (earliest, lowest-seq) event.
func (n *Network) popCanonicalLocked() *event { return heapPop(&n.queue) }
