// Package simnet provides a deterministic in-process message network:
// named nodes exchange datagrams over links with configurable latency
// and seeded jitter, driven by a virtual clock and a single event loop.
//
// Two properties make it the right substrate for this reproduction:
//
//   - Determinism: same seed, same schedule, bit-for-bit — experiments
//     and property tests are reproducible.
//   - A global passive observer: every delivery is captured as
//     (time, src, dst, size) metadata, exactly the vantage point of the
//     paper's §4.3 traffic-analysis adversary and the source of truth
//     for which network identities each entity exposes.
//
// simnet models an unreliable-order, reliable-delivery datagram service;
// protocols needing streams (the HTTP-based systems) use real loopback
// TCP instead and are exercised in their own packages.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"decoupling/internal/faults"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

// The wire-level vocabulary is shared with every other transport
// implementation through internal/transport; the aliases keep simnet's
// historical names working while making Network just one implementation
// of the Transport contract.

// Addr names a node on the simulated network.
type Addr = transport.Addr

// Message is a datagram in flight.
type Message = transport.Message

// Handler processes a delivered message on behalf of a node. Handlers
// run on the event loop goroutine; they may call Send/After freely but
// must not block.
type Handler = transport.Handler

// Transport is the node-facing interface Network implements; protocol
// packages take this so the same handlers run over real sockets.
type Transport = transport.Transport

// Network implements the full experiment-facing transport contract.
var _ transport.Runner = (*Network)(nil)
var _ transport.ContextSender = (*Network)(nil)

// Link describes delivery characteristics between a pair of nodes.
type Link struct {
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0, 1] that a datagram is silently
	// dropped (failure injection for robustness tests).
	Loss float64
}

// PacketRecord is one captured delivery, as seen by a passive global
// observer: metadata only, no payload bytes (encrypted payloads leak
// size and timing, which is precisely what traffic analysis exploits).
type PacketRecord = transport.PacketRecord

type event struct {
	at      time.Duration
	seq     uint64 // FIFO tiebreak for equal timestamps
	deliver *Message
	fire    func()

	// owner is the node whose handler armed this timer ("" for timers
	// set from outside the event loop); cancelled marks timers whose
	// owner crashed before they fired.
	owner     Addr
	cancelled bool

	// Telemetry context, populated only when the network is
	// instrumented: the virtual send time and the span that was current
	// when Send was called (so relay-hop chains nest: a handler that
	// forwards a message parents the next hop's delivery span).
	sentAt time.Duration
	parent *telemetry.Span
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Network is a deterministic simulated network. Construct with New;
// methods are safe to call from handlers (which run on the event loop)
// and from the test goroutine between Run calls.
type Network struct {
	mu          sync.Mutex
	now         time.Duration
	seq         uint64
	seed        int64
	rng         *rand.Rand
	nodes       map[Addr]Handler
	links       map[[2]Addr]Link
	defaultLink Link
	queue       eventQueue
	capture     []PacketRecord
	delivered   uint64
	lost        uint64

	// Fault-injection state (see faults.go): the merged plan, the set of
	// currently crashed nodes, drops attributable to faults, and the
	// node whose handler is executing (so After can attribute timers).
	plan       *FaultPlan
	crashed    map[Addr]bool
	faultDrops uint64
	lossSeq    map[[2]Addr]uint64
	running    Addr

	// tel is the optional telemetry sink. When nil (the default) the
	// hot paths pay exactly one pointer check.
	tel *telemetry.Telemetry

	// Schedule-exploration state (see sched.go): the installed
	// scheduler, the replay script and its cursor, and the decisions
	// recorded so far. All nil/zero in the canonical FIFO mode.
	sched      Scheduler
	replay     ScheduleTrace
	replayPos  int
	schedTrace ScheduleTrace
}

// heapPop pops the earliest (at, seq) event.
func heapPop(q *eventQueue) *event { return heap.Pop(q).(*event) }

// pushLocked re-queues an event without consuming a new seq.
func (n *Network) pushLocked(e *event) { heap.Push(&n.queue, e) }

// New creates a network with the given RNG seed and a default link
// latency of 10ms with no jitter.
func New(seed int64) *Network {
	return &Network{
		seed:        seed,
		rng:         rand.New(rand.NewSource(seed)),
		nodes:       map[Addr]Handler{},
		links:       map[[2]Addr]Link{},
		defaultLink: Link{Latency: 10 * time.Millisecond},
	}
}

// Instrument attaches a telemetry sink: every delivery becomes a trace
// span (parented on the span current at send time, so multi-hop chains
// nest) and feeds the per-link message/byte counters and the latency
// histogram. The tracer's clock is bound to this network's virtual
// clock. Call before Run; a nil tel is a no-op.
func (n *Network) Instrument(tel *telemetry.Telemetry) {
	n.mu.Lock()
	n.tel = tel
	n.mu.Unlock()
	tel.SetClock(n.Now)
}

// SetDefaultLink sets the link profile used for pairs without an
// explicit SetLink.
func (n *Network) SetDefaultLink(l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultLink = l
}

// SetLink sets the link profile for the directed pair (src, dst).
func (n *Network) SetLink(src, dst Addr, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]Addr{src, dst}] = l
}

// Register attaches a handler to addr, creating the node. Registering
// an existing address replaces its handler.
func (n *Network) Register(addr Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = h
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Rand returns a deterministic pseudo-random int in [0, max). It is the
// only sanctioned randomness source for protocol simulations that need
// reproducibility (shuffles, chaff schedules).
func (n *Network) Rand(max int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Intn(max)
}

// Send enqueues a datagram from src to dst, to be delivered after the
// link's latency (+ jitter, + any active latency spike). Sends to or
// from a crashed node fail fast with an error wrapping ErrNodeDown;
// partitions and loss drop silently, as the wire would.
func (n *Network) Send(src, dst Addr, payload []byte) error {
	return n.SendTraced(src, dst, payload, wiretrace.Context{})
}

// SendTraced is Send with a wire-trace context riding on the simulated
// datagram — the simulator's equivalent of the real transport's frame
// trace extension. The context is out-of-band: payload bytes, link
// faults, and scheduling are identical whether or not it is present.
func (n *Network) SendTraced(src, dst Addr, payload []byte, ctx wiretrace.Context) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[dst]; !ok {
		return fmt.Errorf("simnet: send to unregistered node %q", dst)
	}
	if n.crashed[dst] {
		n.dropLocked("crash", src, dst)
		return fmt.Errorf("simnet: send %s->%s: %w", src, dst, ErrNodeDown)
	}
	if n.crashed[src] {
		return fmt.Errorf("simnet: send %s->%s: source %w", src, dst, ErrNodeDown)
	}
	if n.plan.PartitionedAt(src, dst, n.now) {
		n.dropLocked("partition", src, dst)
		return nil // partitions are silent: only timeouts notice
	}
	l, ok := n.links[[2]Addr{src, dst}]
	if !ok {
		l = n.defaultLink
	}
	// Injected burst loss draws from the deterministic per-link
	// faults.LossDraw stream — shared with nettransport, so the same
	// plan + seed drop the same datagrams on either transport. Organic
	// link loss stays on the network RNG; a link under both can lose a
	// datagram to either cause, and each draw happens exactly when its
	// probability is positive.
	if burst := n.plan.LossAt(src, dst, n.now); burst > 0 {
		if n.lossSeq == nil {
			n.lossSeq = map[[2]Addr]uint64{}
		}
		seq := n.lossSeq[[2]Addr{src, dst}]
		n.lossSeq[[2]Addr{src, dst}] = seq + 1
		if faults.LossDraw(n.seed, src, dst, seq) < burst {
			n.lost++
			if n.tel != nil {
				n.tel.Count(telemetry.MetricSimnetLost, "Datagrams dropped by link loss.", 1,
					telemetry.A("src", string(src)), telemetry.A("dst", string(dst)))
			}
			return nil // silently dropped, as the wire would
		}
	}
	if l.Loss > 0 && n.rng.Float64() < l.Loss {
		n.lost++
		if n.tel != nil {
			n.tel.Count(telemetry.MetricSimnetLost, "Datagrams dropped by link loss.", 1,
				telemetry.A("src", string(src)), telemetry.A("dst", string(dst)))
		}
		return nil // silently dropped, as the wire would
	}
	delay := l.Latency + n.plan.SpikeAt(src, dst, n.now)
	if l.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(l.Jitter)))
	}
	msg := &Message{Src: src, Dst: dst, Payload: append([]byte(nil), payload...), Trace: ctx}
	n.seq++
	e := &event{at: n.now + delay, seq: n.seq, deliver: msg}
	if n.tel != nil {
		// Capture the span context at send time; the delivery span will
		// nest under whatever the sender was doing (a protocol phase, or
		// the previous hop's handler span).
		e.sentAt = n.now
		e.parent = n.tel.Current()
	}
	heap.Push(&n.queue, e)
	return nil
}

// dropLocked accounts one fault-caused drop. Fault drops also count
// under lost so the simnet_lost counter and retry logic agree on what
// the network ate.
func (n *Network) dropLocked(reason string, src, dst Addr) {
	n.lost++
	n.faultDrops++
	if n.tel != nil {
		n.tel.Count(telemetry.MetricSimnetFaultDrops, "Datagrams dropped by injected faults.", 1,
			telemetry.A("reason", reason), telemetry.A("src", string(src)), telemetry.A("dst", string(dst)))
		n.tel.Count(telemetry.MetricSimnetLost, "Datagrams dropped by link loss.", 1,
			telemetry.A("src", string(src)), telemetry.A("dst", string(dst)))
	}
}

// After schedules fn to run on the event loop after delay. It models
// node-local timers (mix batch timeouts, chaff generators). A timer
// armed from inside a node's handler belongs to that node and dies with
// it if the node crashes before the timer fires.
func (n *Network) After(delay time.Duration, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	heap.Push(&n.queue, &event{at: n.now + delay, seq: n.seq, fire: fn, owner: n.running})
}

// Run processes events until the queue drains, returning the number of
// messages delivered. Timer-only events do not count as deliveries.
func (n *Network) Run() uint64 {
	return n.RunUntil(-1)
}

// RunUntil processes events with timestamps <= deadline (all events if
// deadline < 0), returning messages delivered during this call.
func (n *Network) RunUntil(deadline time.Duration) uint64 {
	var delivered uint64
	for {
		n.mu.Lock()
		if len(n.queue) == 0 || (deadline >= 0 && n.queue[0].at > deadline) {
			if deadline >= 0 && deadline > n.now {
				n.now = deadline
			}
			n.running = ""
			n.mu.Unlock()
			return delivered
		}
		e := n.popNextLocked()
		n.now = e.at
		var h Handler
		var msg Message
		tel := n.tel
		fire := e.fire
		if fire != nil && e.cancelled {
			fire = nil // owner crashed before the timer fired
		}
		if e.deliver != nil {
			msg = *e.deliver
			if n.crashed[msg.Dst] {
				// Crashed nodes drop inbound datagrams on arrival: the
				// packet made it across the wire but nobody is listening.
				n.dropLocked("crash", msg.Src, msg.Dst)
				n.mu.Unlock()
				continue
			}
			h = n.nodes[msg.Dst]
			n.capture = append(n.capture, PacketRecord{
				Time: e.at, Src: msg.Src, Dst: msg.Dst, Size: len(msg.Payload),
			})
			n.delivered++
			delivered++
			n.running = msg.Dst
		} else {
			n.running = e.owner
		}
		n.mu.Unlock()

		// Run callbacks outside the lock so they can call Send/After.
		if fire != nil {
			fire()
		}
		if h != nil {
			var sp *telemetry.Span
			if tel != nil {
				src, dst := telemetry.A("src", string(msg.Src)), telemetry.A("dst", string(msg.Dst))
				sp = tel.StartAt(e.parent, "simnet.deliver", e.sentAt,
					src, dst, telemetry.A("bytes", strconv.Itoa(len(msg.Payload))))
				tel.Count(telemetry.MetricSimnetMessages, "Datagrams delivered per link.", 1, src, dst)
				tel.Count(telemetry.MetricSimnetBytes, "Payload bytes delivered per link.", uint64(len(msg.Payload)), src, dst)
				tel.Observe(telemetry.MetricSimnetLatency, "Virtual per-hop delivery latency.",
					telemetry.LatencyBuckets, (e.at - e.sentAt).Seconds(), src, dst)
			}
			h(n, msg)
			// The handler runs at the delivery instant; any spans it
			// opened are children stamped at the same virtual time.
			sp.EndAt(e.at)
		}
	}
}

// Capture returns a copy of the global observer's packet records.
func (n *Network) Capture() []PacketRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]PacketRecord(nil), n.capture...)
}

// Delivered returns the all-time count of delivered messages.
func (n *Network) Delivered() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// Lost returns the all-time count of messages dropped by link loss or
// injected faults (FaultDrops breaks out the fault-attributable share).
func (n *Network) Lost() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lost
}

// Pending reports the number of queued events (messages and timers).
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Close satisfies transport.Runner. The simulator holds no sockets or
// goroutines, so Close is a no-op: queued events stay queued and a
// later Run still drains them (tests rely on re-running a net).
func (n *Network) Close() error { return nil }
