package simnet

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// sendBurst enqueues n same-timestamp deliveries from distinct sources,
// so every one of them is admissible at the decision point.
func sendBurst(n *Network, dst Addr, count int) {
	for i := 0; i < count; i++ {
		n.Send(Addr(fmt.Sprintf("s%02d", i)), dst, []byte(fmt.Sprintf("%d", i)))
	}
}

func deliveryOrder(n *Network, dst Addr) *[]string {
	order := &[]string{}
	n.Register(dst, func(n Transport, m Message) { *order = append(*order, string(m.Payload)) })
	return order
}

func TestSeededSchedulerPermutesSameTimestampDeliveries(t *testing.T) {
	canonical := New(1)
	co := deliveryOrder(canonical, "b")
	sendBurst(canonical, "b", 10)
	canonical.Run()

	permuted := New(1)
	po := deliveryOrder(permuted, "b")
	permuted.SetScheduler(NewSeededScheduler(42))
	sendBurst(permuted, "b", 10)
	permuted.Run()

	if len(*po) != 10 {
		t.Fatalf("permuted run delivered %d of 10", len(*po))
	}
	if reflect.DeepEqual(*co, *po) {
		t.Fatalf("seeded scheduler left the canonical order %v intact", *co)
	}
	seen := map[string]bool{}
	for _, s := range *po {
		seen[s] = true
	}
	if len(seen) != 10 {
		t.Fatalf("permutation lost or duplicated deliveries: %v", *po)
	}
}

func TestSeededSchedulerIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) ([]string, ScheduleTrace) {
		n := New(1)
		o := deliveryOrder(n, "b")
		n.SetScheduler(NewSeededScheduler(seed))
		sendBurst(n, "b", 8)
		n.Run()
		return *o, n.RecordedSchedule()
	}
	o1, t1 := run(7)
	o2, t2 := run(7)
	if !reflect.DeepEqual(o1, o2) || !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same seed diverged: %v vs %v (traces %v vs %v)", o1, o2, t1, t2)
	}
	o3, _ := run(8)
	if reflect.DeepEqual(o1, o3) {
		t.Errorf("seeds 7 and 8 produced the same order %v", o1)
	}
}

func TestSchedulerPreservesPerLinkFIFO(t *testing.T) {
	n := New(1)
	var fromA, fromB []string
	n.Register("dst", func(n Transport, m Message) {
		if m.Src == "a" {
			fromA = append(fromA, string(m.Payload))
		} else {
			fromB = append(fromB, string(m.Payload))
		}
	})
	n.SetScheduler(NewSeededScheduler(3))
	for i := 0; i < 6; i++ {
		n.Send("a", "dst", []byte(fmt.Sprintf("a%d", i)))
		n.Send("b", "dst", []byte(fmt.Sprintf("b%d", i)))
	}
	n.Run()
	for i := range fromA {
		if fromA[i] != fmt.Sprintf("a%d", i) || fromB[i] != fmt.Sprintf("b%d", i) {
			t.Fatalf("per-link FIFO violated: a=%v b=%v", fromA, fromB)
		}
	}
}

func TestSchedulerPreservesPerOwnerTimerOrder(t *testing.T) {
	n := New(1)
	var fired []string
	n.Register("node", func(n Transport, m Message) {
		// Two timers armed by the same node at the same deadline must
		// keep arming order under any scheduler.
		n.After(5*time.Millisecond, func() { fired = append(fired, "first") })
		n.After(5*time.Millisecond, func() { fired = append(fired, "second") })
	})
	n.SetScheduler(NewSeededScheduler(11))
	n.Send("src", "node", []byte("go"))
	n.Run()
	if !reflect.DeepEqual(fired, []string{"first", "second"}) {
		t.Fatalf("same-owner timers fired out of order: %v", fired)
	}
}

func TestReplayScheduleReproducesPermutedRun(t *testing.T) {
	recorded := New(1)
	ro := deliveryOrder(recorded, "b")
	recorded.SetScheduler(NewSeededScheduler(99))
	sendBurst(recorded, "b", 10)
	recorded.Run()
	trace := recorded.RecordedSchedule()
	if len(trace) == 0 {
		t.Fatal("no decisions recorded for a 10-way burst")
	}

	replayed := New(1)
	po := deliveryOrder(replayed, "b")
	replayed.ReplaySchedule(trace)
	sendBurst(replayed, "b", 10)
	replayed.Run()
	if !reflect.DeepEqual(*ro, *po) {
		t.Fatalf("replay diverged: recorded %v, replayed %v", *ro, *po)
	}
	if got := replayed.RecordedSchedule(); !reflect.DeepEqual(got, trace) {
		t.Errorf("replayed recording is not the normalized trace: %v vs %v", got, trace)
	}
}

func TestReplayExhaustedFallsBackToCanonical(t *testing.T) {
	canonical := New(1)
	co := deliveryOrder(canonical, "b")
	sendBurst(canonical, "b", 6)
	canonical.Run()

	n := New(1)
	o := deliveryOrder(n, "b")
	n.ReplaySchedule(ScheduleTrace{}) // empty: every decision canonical
	sendBurst(n, "b", 6)
	n.Run()
	if !reflect.DeepEqual(*co, *o) {
		t.Fatalf("empty replay differs from canonical: %v vs %v", *co, *o)
	}
}

func TestReplayClampsOutOfRangeChoices(t *testing.T) {
	n := New(1)
	o := deliveryOrder(n, "b")
	n.ReplaySchedule(ScheduleTrace{99, -3, 99, 99, 99})
	sendBurst(n, "b", 4)
	n.Run()
	if len(*o) != 4 {
		t.Fatalf("clamped replay delivered %d of 4", len(*o))
	}
	if got := (*o)[0]; got != "0" {
		t.Errorf("out-of-range picks should clamp to canonical 0, first delivery = %q", got)
	}
}

func TestSchedulerSeesCrashDeliveryRace(t *testing.T) {
	// A crash transition and a delivery at the same instant are in
	// different FIFO classes, so a scheduler can order them either way:
	// delivery-first lands the message, crash-first drops it.
	run := func(tr ScheduleTrace) (delivered uint64) {
		n := New(1)
		n.Register("b", func(n Transport, m Message) {})
		n.ApplyFaults(NewFaultPlan().Crash("b", 10*time.Millisecond, 0))
		n.Send("a", "b", []byte("race")) // arrives at exactly 10ms
		n.ReplaySchedule(tr)
		return n.Run()
	}
	if got := run(ScheduleTrace{0}); got != 0 {
		t.Errorf("crash-first schedule delivered %d, want 0", got)
	}
	if got := run(ScheduleTrace{1}); got != 1 {
		t.Errorf("delivery-first schedule delivered %d, want 1", got)
	}
}

func TestSchedulerKeepsVirtualTimeMonotone(t *testing.T) {
	n := New(1)
	var times []time.Duration
	n.Register("b", func(n Transport, m Message) { times = append(times, n.Now()) })
	n.SetLink("fast", "b", Link{Latency: 1 * time.Millisecond})
	n.SetScheduler(NewSeededScheduler(5))
	sendBurst(n, "b", 8)
	n.Send("fast", "b", []byte("early"))
	n.Run()
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("virtual clock went backwards: %v", times)
		}
	}
	if times[0] != 1*time.Millisecond {
		t.Errorf("earliest event not delivered first: %v", times)
	}
}
