package simnet

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// FuzzParseFaultPlan checks that the fault-plan grammar never panics
// and that Spec() is a canonical serializer: whatever parses must
// re-serialize to a spec that parses to the same canonical form (the
// round-trip that lets plans ride inside replay traces).
func FuzzParseFaultPlan(f *testing.F) {
	// Seeds: every production, the named plans, and known-tricky shapes.
	f.Add("crash:mix2@25ms-120ms")
	f.Add("crash:node@0s-")
	f.Add("partition:a<>b@30ms-80ms")
	f.Add("partition:exit>origin@0s-1s")
	f.Add("loss:*>mix1:0.3@0-")
	f.Add("loss:a>b:1@1ms-2ms")
	f.Add("spike:exit>origin:40ms@50ms-90ms")
	f.Add("crash:mix2@25ms-120ms;loss:*>mix1:0.3@0-;spike:exit>origin:40ms@50ms-90ms")
	for _, spec := range namedFaultPlans {
		f.Add(spec)
	}
	f.Add(";;;")
	f.Add("crash:@1ms-")
	f.Add("loss:a>b:NaN@0-")
	f.Add("crash:a@1ms-;crash:a@0-5ms") // overlapping windows
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseFaultPlan(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("ParseFaultPlan(%q) returned plan AND error %v", spec, err)
			}
			return
		}
		canon := p.Spec()
		p2, err := ParseFaultPlan(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if got := p2.Spec(); got != canon {
			t.Fatalf("Spec not canonical: %q -> %q -> %q", spec, canon, got)
		}
		if len(p2.Faults()) != len(p.Faults()) {
			t.Fatalf("round-trip changed fault count: %q %d -> %d", spec, len(p.Faults()), len(p2.Faults()))
		}
	})
}

// FuzzFaultWindowQueries checks the window predicates stay panic-free
// and agree with the half-open [From, Until) contract for any parsed
// plan and probe time.
func FuzzFaultWindowQueries(f *testing.F) {
	f.Add("crash:n@10ms-20ms", int64(15_000_000))
	f.Add("loss:*>*:0.5@0-", int64(0))
	f.Add("spike:a>b:5ms@1ms-", int64(1_000_000))
	f.Fuzz(func(t *testing.T, spec string, at int64) {
		p, err := ParseFaultPlan(spec)
		if err != nil {
			return
		}
		tm := time.Duration(at)
		faults := p.Faults()
		for _, fl := range faults {
			if fl.Kind != FaultCrash {
				continue
			}
			// CrashedAt(node) must be the union of every crash window that
			// matches node (wildcard either side).
			want := false
			for _, g := range faults {
				match := g.Kind == FaultCrash && (g.Node == Wildcard || g.Node == fl.Node)
				if match && tm >= g.From && (g.Until <= 0 || tm < g.Until) {
					want = true
				}
			}
			if got := p.CrashedAt(fl.Node, tm); got != want {
				t.Fatalf("CrashedAt(%s, %v) = %v, want %v (plan %q)", fl.Node, tm, got, want, spec)
			}
		}
		p.PartitionedAt("a", "b", tm)
		p.LossAt("a", "b", tm)
		p.SpikeAt("a", "b", tm)
	})
}

func TestParseFaultPlanRejectsOverlappingCrashWindows(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want bool // want rejection
	}{
		{"same node overlapping", "crash:a@10ms-30ms;crash:a@20ms-40ms", true},
		{"same node nested", "crash:a@10ms-100ms;crash:a@20ms-30ms", true},
		{"same node identical", "crash:a@10ms-20ms;crash:a@10ms-20ms", true},
		{"open window overlaps later", "crash:a@10ms-;crash:a@50ms-60ms", true},
		{"later open window overlaps", "crash:a@50ms-60ms;crash:a@55ms-", true},
		{"wildcard overlaps named", "crash:*@10ms-30ms;crash:a@20ms-40ms", true},
		{"named overlaps wildcard", "crash:a@10ms-30ms;crash:*@20ms-40ms", true},
		{"same node back-to-back", "crash:a@10ms-20ms;crash:a@20ms-30ms", false},
		{"same node disjoint", "crash:a@10ms-20ms;crash:a@30ms-40ms", false},
		{"different nodes overlapping", "crash:a@10ms-30ms;crash:b@20ms-40ms", false},
		{"crash plus link faults", "crash:a@10ms-20ms;loss:a>b:0.5@0-;partition:a<>b@0s-1s", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParseFaultPlan(tc.spec)
			if tc.want {
				if !errors.Is(err, ErrOverlappingCrash) {
					t.Fatalf("ParseFaultPlan(%q) err = %v, want ErrOverlappingCrash", tc.spec, err)
				}
				if p != nil {
					t.Fatalf("rejected plan should be nil, got %v", p.Faults())
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseFaultPlan(%q) unexpected error: %v", tc.spec, err)
			}
		})
	}
}

// TestParseFaultPlanErrorPaths walks every production of the spec
// grammar through its failure modes.
func TestParseFaultPlanErrorPaths(t *testing.T) {
	cases := []struct {
		name, spec, wantSub string
	}{
		{"missing kind separator", "crash", "missing kind"},
		{"unknown kind", "meteor:node@0-", "unknown kind"},
		{"missing window", "crash:node", "missing @window"},
		{"window missing dash", "crash:node@25ms", "want FROM-[UNTIL]"},
		{"window bad from", "crash:node@xyz-", "bad FROM"},
		{"window leading dash", "crash:node@-5ms-10ms", "UNTIL must be a duration after FROM"},
		{"window until before from", "crash:node@20ms-10ms", "UNTIL must be a duration after FROM"},
		{"window until equals from", "crash:node@20ms-20ms", "UNTIL must be a duration after FROM"},
		{"window bad until", "crash:node@0s-later", "UNTIL must be a duration after FROM"},
		{"crash missing node", "crash:@0-", "missing node"},
		{"partition missing arrow", "partition:ab@0-", "want A<>B or A>B"},
		{"loss missing prob", "loss:a>b@0-", "want SRC>DST:PROB"},
		{"loss missing arrow", "loss:ab:0.5@0-", "want SRC>DST:PROB"},
		{"loss prob not a number", "loss:a>b:heavy@0-", "probability must be in [0,1]"},
		{"loss prob NaN", "loss:a>b:NaN@0-", "probability must be in [0,1]"},
		{"loss prob negative", "loss:a>b:-0.1@0-", "probability must be in [0,1]"},
		{"loss prob above one", "loss:a>b:1.5@0-", "probability must be in [0,1]"},
		{"spike missing extra", "spike:a>b@0-", "want SRC>DST:EXTRA"},
		{"spike bad duration", "spike:a>b:fast@0-", "bad spike duration"},
		{"spike negative duration", "spike:a>b:-4ms@0-", "bad spike duration"},
		{"error in later clause", "crash:ok@0-;loss:a>b:2@0-", "probability must be in [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParseFaultPlan(tc.spec)
			if err == nil {
				t.Fatalf("ParseFaultPlan(%q) accepted, plan %v", tc.spec, p.Faults())
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("ParseFaultPlan(%q) err %q, want substring %q", tc.spec, err, tc.wantSub)
			}
		})
	}
}

func TestFaultPlanSpecCanonicalRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"crash:mix2@25ms-120ms",
		"loss:*>mix1:0.3@0s-",
		"spike:exit>origin:40ms@50ms-90ms",
		"partition:a>b@30ms-80ms;partition:b>a@30ms-80ms",
		"crash:mix2@25ms-120ms;loss:*>mix1:0.3@0s-;spike:exit>origin:40ms@50ms-90ms",
	} {
		p, err := ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("ParseFaultPlan(%q): %v", spec, err)
		}
		if got := p.Spec(); got != spec {
			t.Errorf("Spec() = %q, want canonical %q", got, spec)
		}
	}
	// The builder's both-way Partition flattens to two one-way clauses.
	p := NewFaultPlan().Partition("a", "b", 0, 1*time.Millisecond)
	if got, want := p.Spec(), "partition:a>b@0s-1ms;partition:b>a@0s-1ms"; got != want {
		t.Errorf("both-way Partition Spec() = %q, want %q", got, want)
	}
	if _, err := ParseFaultPlan(p.Spec()); err != nil {
		t.Errorf("builder Spec does not re-parse: %v", err)
	}
}
