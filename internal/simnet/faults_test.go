package simnet

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// --- FaultPlan window queries ---------------------------------------

func TestCrashWindowIsHalfOpen(t *testing.T) {
	p := NewFaultPlan().Crash("m", 10*time.Millisecond, 20*time.Millisecond)
	cases := []struct {
		at   time.Duration
		want bool
	}{
		{9 * time.Millisecond, false},
		{10 * time.Millisecond, true}, // From is inclusive
		{19 * time.Millisecond, true},
		{20 * time.Millisecond, false}, // Until is exclusive
	}
	for _, c := range cases {
		if got := p.CrashedAt("m", c.at); got != c.want {
			t.Errorf("CrashedAt(m, %v) = %v, want %v", c.at, got, c.want)
		}
	}
	if p.CrashedAt("other", 15*time.Millisecond) {
		t.Error("crash window matched an unrelated node")
	}
}

func TestCrashWithoutRestartNeverClears(t *testing.T) {
	p := NewFaultPlan().Crash("m", 5*time.Millisecond, 0)
	if !p.CrashedAt("m", time.Hour) {
		t.Error("until<=0 crash cleared")
	}
	if p.CrashedAt("m", 4*time.Millisecond) {
		t.Error("crash active before From")
	}
}

func TestWildcardMatchesEveryNode(t *testing.T) {
	p := NewFaultPlan().
		Crash(Wildcard, 0, 0).
		Loss(Wildcard, Wildcard, 0.5, 0, 0)
	if !p.CrashedAt("anything", time.Second) {
		t.Error("wildcard crash did not match")
	}
	if got := p.LossAt("a", "b", 0); got != 0.5 {
		t.Errorf("wildcard loss = %v", got)
	}
}

func TestLossAtTakesMaximum(t *testing.T) {
	p := NewFaultPlan().
		Loss("a", "b", 0.2, 0, 0).
		Loss(Wildcard, "b", 0.7, 0, 0).
		Loss("a", "b", 0.4, 0, 0)
	if got := p.LossAt("a", "b", 0); got != 0.7 {
		t.Errorf("LossAt = %v, want max 0.7", got)
	}
}

func TestSpikeAtSumsOverlaps(t *testing.T) {
	p := NewFaultPlan().
		LatencySpike("a", "b", 10*time.Millisecond, 0, 0).
		LatencySpike("a", "b", 5*time.Millisecond, 0, 0)
	if got := p.SpikeAt("a", "b", 0); got != 15*time.Millisecond {
		t.Errorf("SpikeAt = %v, want 15ms", got)
	}
}

func TestNilPlanQueriesAreSafe(t *testing.T) {
	var p *FaultPlan
	if p.CrashedAt("a", 0) || p.PartitionedAt("a", "b", 0) ||
		p.LossAt("a", "b", 0) != 0 || p.SpikeAt("a", "b", 0) != 0 {
		t.Error("nil plan reported an active fault")
	}
	if !p.Empty() {
		t.Error("nil plan not Empty")
	}
	if p.Faults() != nil {
		t.Error("nil plan has faults")
	}
}

// --- ParseFaultPlan --------------------------------------------------

func TestParseFaultPlanRoundTrip(t *testing.T) {
	p, err := ParseFaultPlan("crash:mix2@25ms-120ms;loss:*>mix1:0.3@0-;spike:exit>origin:40ms@50ms-90ms;partition:a<>b@10ms-20ms")
	if err != nil {
		t.Fatal(err)
	}
	fs := p.Faults()
	// partition:a<>b expands to two one-way faults.
	if len(fs) != 5 {
		t.Fatalf("faults = %d, want 5", len(fs))
	}
	if !p.CrashedAt("mix2", 30*time.Millisecond) || p.CrashedAt("mix2", 120*time.Millisecond) {
		t.Error("parsed crash window wrong")
	}
	if p.LossAt("anyone", "mix1", time.Hour) != 0.3 {
		t.Error("parsed loss wrong")
	}
	if p.SpikeAt("exit", "origin", 60*time.Millisecond) != 40*time.Millisecond {
		t.Error("parsed spike wrong")
	}
	if !p.PartitionedAt("b", "a", 15*time.Millisecond) {
		t.Error("bidirectional partition missing reverse direction")
	}
}

func TestParseFaultPlanOneWayPartition(t *testing.T) {
	p, err := ParseFaultPlan("partition:a>b@0-")
	if err != nil {
		t.Fatal(err)
	}
	if !p.PartitionedAt("a", "b", 0) {
		t.Error("forward direction not severed")
	}
	if p.PartitionedAt("b", "a", 0) {
		t.Error("one-way partition severed the reverse direction")
	}
}

func TestParseFaultPlanRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"nonsense",                 // missing kind separator usage
		"crash:mix2",               // missing @window
		"crash:@0-",                // missing node
		"crash:m@banana-",          // bad FROM
		"crash:m@10ms-5ms",         // UNTIL before FROM
		"crash:m@10ms-10ms",        // UNTIL == FROM (empty window)
		"loss:a>b:1.5@0-",          // probability out of range
		"loss:a>b:-0.1@0-",         // negative probability
		"loss:ab:0.5@0-",           // missing > link
		"spike:a>b:-5ms@0-",        // negative spike
		"spike:a>b:soon@0-",        // unparsable duration
		"partition:ab@0-",          // no direction marker
		"explode:a@0-",             // unknown kind
		"crash:m@0-;;loss:a>:x@0-", // second fault malformed
	}
	for _, spec := range bad {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseFaultPlanSkipsEmptySegments(t *testing.T) {
	p, err := ParseFaultPlan(" ; crash:m@0- ; ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults()) != 1 {
		t.Errorf("faults = %d, want 1", len(p.Faults()))
	}
}

func TestFaultPlanFromSpec(t *testing.T) {
	if p, err := FaultPlanFromSpec(""); err != nil || p != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", p, err)
	}
	for _, name := range NamedFaultPlans() {
		p, err := FaultPlanFromSpec(name)
		if err != nil || p.Empty() {
			t.Errorf("named plan %q = (%v, %v)", name, p, err)
		}
	}
	if _, err := FaultPlanFromSpec("no-such-plan"); err == nil {
		t.Error("unknown name accepted")
	}
}

// --- Crash behavior on the network -----------------------------------

func TestSendToCrashedNodeFailsFast(t *testing.T) {
	n := New(1)
	n.Register("b", func(n Transport, m Message) {})
	n.ApplyFaults(NewFaultPlan().Crash("b", 0, 0))
	n.Run() // let the crash transition fire
	err := n.Send("a", "b", []byte("x"))
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("send to crashed node: %v, want ErrNodeDown", err)
	}
	if n.FaultDrops() != 1 {
		t.Errorf("FaultDrops = %d, want 1", n.FaultDrops())
	}
}

func TestSendFromCrashedNodeFailsFast(t *testing.T) {
	n := New(1)
	n.Register("b", func(n Transport, m Message) {})
	n.Register("down", func(n Transport, m Message) {})
	n.ApplyFaults(NewFaultPlan().Crash("down", 0, 0))
	n.Run()
	if err := n.Send("down", "b", nil); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("send from crashed node: %v, want ErrNodeDown", err)
	}
}

func TestInFlightDatagramDroppedOnArrivalAtCrashedNode(t *testing.T) {
	n := New(1)
	delivered := 0
	n.Register("b", func(n Transport, m Message) { delivered++ })
	// Send at t=0 (arrives t=10ms); the node crashes at t=5ms, mid-flight.
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.ApplyFaults(NewFaultPlan().Crash("b", 5*time.Millisecond, 0))
	n.Run()
	if delivered != 0 {
		t.Error("datagram delivered to a crashed node")
	}
	if n.FaultDrops() != 1 || n.Lost() != 1 {
		t.Errorf("FaultDrops=%d Lost=%d, want 1/1", n.FaultDrops(), n.Lost())
	}
}

func TestRestartRestoresDelivery(t *testing.T) {
	n := New(1)
	var deliveredAt []time.Duration
	n.Register("b", func(n Transport, m Message) { deliveredAt = append(deliveredAt, n.Now()) })
	n.ApplyFaults(NewFaultPlan().Crash("b", 0, 50*time.Millisecond))
	// Process the crash transition, then advance past the restart.
	n.RunUntil(60 * time.Millisecond)
	if n.CrashedNow("b") {
		t.Fatal("node still crashed after restart")
	}
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if len(deliveredAt) != 1 || deliveredAt[0] != 70*time.Millisecond {
		t.Errorf("deliveries = %v, want one at 70ms", deliveredAt)
	}
}

func TestCrashCancelsOwnedTimers(t *testing.T) {
	n := New(1)
	fired := false
	// A node arms a timer from inside its handler (the mix batch-flush
	// pattern); crashing the node before the timer fires must cancel it.
	n.Register("mix", func(n Transport, m Message) {
		n.After(100*time.Millisecond, func() { fired = true })
	})
	n.Send("a", "mix", []byte("x")) // handler runs at 10ms, timer due 110ms
	n.RunUntil(20 * time.Millisecond)
	n.ApplyFaults(NewFaultPlan().Crash("mix", 30*time.Millisecond, 0))
	n.Run()
	if fired {
		t.Error("timer owned by a crashed node fired")
	}
}

func TestExternalTimersSurviveCrashes(t *testing.T) {
	n := New(1)
	fired := false
	n.Register("mix", func(n Transport, m Message) {})
	// Armed from outside any handler: no owner, survives every crash.
	n.After(100*time.Millisecond, func() { fired = true })
	n.ApplyFaults(NewFaultPlan().Crash("mix", 0, 0))
	n.Run()
	if !fired {
		t.Error("ownerless timer was cancelled by an unrelated crash")
	}
}

// TestCrashEventFIFOAgainstSameTimestampDelivery pins the documented
// tiebreak: crash/restart transitions are queue events, so at equal
// timestamps whichever was enqueued first wins.
func TestCrashEventFIFOAgainstSameTimestampDelivery(t *testing.T) {
	const at = 10 * time.Millisecond // default link latency

	// Plan applied BEFORE the send: the crash transition at t=10ms
	// precedes the delivery at t=10ms, so the datagram is dropped.
	n := New(1)
	got := 0
	n.Register("b", func(n Transport, m Message) { got++ })
	n.ApplyFaults(NewFaultPlan().Crash("b", at, 0))
	if err := n.Send("a", "b", nil); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if got != 0 {
		t.Error("plan-before-send: delivery beat the same-timestamp crash")
	}

	// Send BEFORE the plan: the in-flight delivery was enqueued first
	// and lands before the crash transition.
	n = New(1)
	n.Register("b", func(n Transport, m Message) { got++ })
	if err := n.Send("a", "b", nil); err != nil {
		t.Fatal(err)
	}
	n.ApplyFaults(NewFaultPlan().Crash("b", at, 0))
	n.Run()
	if got != 1 {
		t.Error("send-before-plan: same-timestamp crash beat the in-flight delivery")
	}
}

// TestApplyFaultsClampsPastWindows: applying a plan whose window starts
// before the current virtual time must not rewind the clock — the
// transition fires now.
func TestApplyFaultsClampsPastWindows(t *testing.T) {
	n := New(1)
	n.Register("b", func(n Transport, m Message) {})
	n.After(50*time.Millisecond, func() {})
	n.Run() // clock now at 50ms
	n.ApplyFaults(NewFaultPlan().Crash("b", 10*time.Millisecond, 0))
	n.Run()
	if n.Now() != 50*time.Millisecond {
		t.Errorf("clock rewound to %v", n.Now())
	}
	if !n.CrashedNow("b") {
		t.Error("past-window crash never took effect")
	}
}

func TestWildcardCrashExpandsOverRegisteredNodes(t *testing.T) {
	n := New(1)
	n.Register("x", func(n Transport, m Message) {})
	n.Register("y", func(n Transport, m Message) {})
	n.ApplyFaults(NewFaultPlan().Crash(Wildcard, 0, 0))
	n.Run()
	if !n.CrashedNow("x") || !n.CrashedNow("y") {
		t.Error("wildcard crash missed a registered node")
	}
}

// --- Partition, burst loss, spike on the wire -------------------------

func TestPartitionDropsSilently(t *testing.T) {
	n := New(1)
	got := 0
	n.Register("b", func(n Transport, m Message) { got++ })
	n.ApplyFaults(NewFaultPlan().PartitionOneWay("a", "b", 0, 0))
	// The wire gives no error — only timeouts notice.
	if err := n.Send("a", "b", nil); err != nil {
		t.Fatalf("partitioned send returned error: %v", err)
	}
	if err := n.Send("c", "b", nil); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if got != 1 {
		t.Errorf("deliveries = %d, want only the unpartitioned sender's", got)
	}
	if n.FaultDrops() != 1 {
		t.Errorf("FaultDrops = %d", n.FaultDrops())
	}
}

func TestBurstLossRaisesDropProbability(t *testing.T) {
	n := New(7)
	n.SetDefaultLink(Link{Latency: time.Millisecond}) // no baseline loss
	n.Register("b", func(n Transport, m Message) {})
	n.ApplyFaults(NewFaultPlan().Loss("a", "b", 1.0, 0, 0))
	for i := 0; i < 20; i++ {
		n.Send("a", "b", nil)
	}
	n.Run()
	if n.Delivered() != 0 {
		t.Errorf("delivered %d through a 100%% burst-loss window", n.Delivered())
	}
	if n.Lost() != 20 {
		t.Errorf("Lost = %d", n.Lost())
	}
}

func TestBaselineLossWinsWhenHigher(t *testing.T) {
	n := New(7)
	n.SetDefaultLink(Link{Latency: time.Millisecond, Loss: 1.0})
	n.Register("b", func(n Transport, m Message) {})
	// Injected burst loss is LOWER than the link's own loss; the link
	// loss still applies (LossAt only raises, never lowers).
	n.ApplyFaults(NewFaultPlan().Loss("a", "b", 0.1, 0, 0))
	n.Send("a", "b", nil)
	n.Run()
	if n.Delivered() != 0 {
		t.Error("burst-loss fault lowered the link's own loss")
	}
}

func TestLatencySpikeDelaysDelivery(t *testing.T) {
	n := New(1)
	var at time.Duration
	n.Register("b", func(n Transport, m Message) { at = n.Now() })
	n.ApplyFaults(NewFaultPlan().LatencySpike("a", "b", 40*time.Millisecond, 0, time.Second))
	n.Send("a", "b", nil)
	n.Run()
	if at != 50*time.Millisecond { // 10ms default + 40ms spike
		t.Errorf("delivery at %v, want 50ms", at)
	}
}

func TestSpikeOutsideWindowIsFree(t *testing.T) {
	n := New(1)
	var at time.Duration
	n.Register("b", func(n Transport, m Message) { at = n.Now() })
	n.ApplyFaults(NewFaultPlan().LatencySpike("a", "b", 40*time.Millisecond, time.Second, 2*time.Second))
	n.Send("a", "b", nil) // sent at t=0, before the spike window
	n.Run()
	if at != 10*time.Millisecond {
		t.Errorf("delivery at %v, want plain 10ms", at)
	}
}

// --- Determinism under faults -----------------------------------------

func TestChaosRunIsDeterministic(t *testing.T) {
	run := func() ([]PacketRecord, uint64) {
		n := New(42)
		n.SetDefaultLink(Link{Latency: 5 * time.Millisecond, Jitter: 3 * time.Millisecond})
		n.Register("sink", func(n Transport, m Message) {})
		n.ApplyFaults(NewFaultPlan().
			Loss(Wildcard, "sink", 0.4, 0, 0).
			Crash("sink", 200*time.Millisecond, 300*time.Millisecond))
		for i := 0; i < 100; i++ {
			at := time.Duration(i) * 4 * time.Millisecond
			n.After(at, func() { n.Send(Addr(fmt.Sprintf("n%d", i%5)), "sink", make([]byte, 16)) })
		}
		n.Run()
		return n.Capture(), n.FaultDrops()
	}
	capA, dropsA := run()
	capB, dropsB := run()
	if dropsA != dropsB {
		t.Fatalf("fault drops differ: %d vs %d", dropsA, dropsB)
	}
	if len(capA) != len(capB) {
		t.Fatalf("capture lengths differ: %d vs %d", len(capA), len(capB))
	}
	for i := range capA {
		if capA[i] != capB[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, capA[i], capB[i])
		}
	}
}

// --- Satellite edge cases ---------------------------------------------

// TestRunUntilLeavesTimersPastDeadline: RunUntil must not fire timers
// scheduled beyond the deadline, and a later Run picks them up.
func TestRunUntilLeavesTimersPastDeadline(t *testing.T) {
	n := New(1)
	var fired []time.Duration
	n.After(30*time.Millisecond, func() { fired = append(fired, n.Now()) })
	n.After(90*time.Millisecond, func() { fired = append(fired, n.Now()) })
	n.RunUntil(50 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 30*time.Millisecond {
		t.Fatalf("fired within deadline = %v, want [30ms]", fired)
	}
	if n.Now() != 50*time.Millisecond {
		t.Errorf("clock = %v, want 50ms", n.Now())
	}
	if n.Pending() != 1 {
		t.Errorf("pending = %d, want the 90ms timer", n.Pending())
	}
	n.Run()
	if len(fired) != 2 || fired[1] != 90*time.Millisecond {
		t.Errorf("fired after resume = %v", fired)
	}
}

// TestZeroJitterBoundary: Link.Jitter == 0 must not consume randomness
// (and must not panic on Int63n(0)); delivery is exactly the latency.
func TestZeroJitterBoundary(t *testing.T) {
	n := New(1)
	var at time.Duration
	n.Register("b", func(n Transport, m Message) { at = n.Now() })
	n.SetLink("a", "b", Link{Latency: 7 * time.Millisecond, Jitter: 0})
	if err := n.Send("a", "b", nil); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if at != 7*time.Millisecond {
		t.Errorf("delivery at %v, want exactly 7ms", at)
	}
	// And the RNG stream is untouched: a fresh same-seed network that
	// never sent anything draws the same first value.
	fresh := New(1)
	if n.Rand(1<<30) != fresh.Rand(1<<30) {
		t.Error("zero-jitter send consumed an RNG draw")
	}
}
