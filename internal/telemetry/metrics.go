package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names shared between the instrumented layers and the
// CLI summary, so consumers never re-type (and typo) them.
const (
	MetricSimnetMessages     = "decoupling_simnet_messages_total"
	MetricSimnetBytes        = "decoupling_simnet_bytes_total"
	MetricSimnetLost         = "decoupling_simnet_lost_total"
	MetricSimnetFaultDrops   = "decoupling_simnet_fault_drops_total"
	MetricSimnetLatency      = "decoupling_simnet_link_latency_seconds"
	MetricRetries            = "decoupling_resilience_retries_total"
	MetricTimeouts           = "decoupling_resilience_timeouts_total"
	MetricFailovers          = "decoupling_resilience_failovers_total"
	MetricExhausted          = "decoupling_resilience_exhausted_total"
	MetricLedgerObservations = "decoupling_ledger_observations_total"
	MetricRunnerQueueWait    = "decoupling_runner_queue_wait_seconds"
	MetricOdohForwarded      = "decoupling_odoh_forwarded_total"
	MetricOdohHandled        = "decoupling_odoh_handled_total"
	MetricOnionCells         = "decoupling_onion_cells_total"
	MetricMixBatchSize       = "decoupling_mixnet_batch_size"
	// Real-transport counters (internal/nettransport), mirroring the
	// simnet family so dashboards compare virtual and real runs.
	MetricTransportMessages = "decoupling_transport_messages_total"
	MetricTransportBytes    = "decoupling_transport_bytes_total"
	MetricTransportLost     = "decoupling_transport_lost_total"
	MetricTransportLatency  = "decoupling_transport_delivery_latency_seconds"
	// Schedule-explorer counters (internal/explore), labeled per seed.
	MetricExploreCases      = "decoupling_explore_cases_total"
	MetricExploreDecisions  = "decoupling_explore_schedule_decisions_total"
	MetricExploreViolations = "decoupling_explore_violations_total"
	MetricExploreShrinkRuns = "decoupling_explore_shrink_runs_total"
	// Live observability plane (wall-clock registry): real-transport
	// internals surfaced by the /metrics scrape endpoint.
	MetricTransportFramesSent  = "decoupling_transport_frames_sent_total"
	MetricTransportBytesSent   = "decoupling_transport_frame_bytes_sent_total"
	MetricTransportWriterStall = "decoupling_transport_writer_stalls_total"
	MetricTransportTimerFires  = "decoupling_transport_timer_fires_total"
	MetricTransportPending     = "decoupling_transport_pending"
	MetricTransportInboxDepth  = "decoupling_transport_inbox_depth"
	// Real-transport fault layer: drops attributable to an injected
	// fault plan (labeled by reason, distinct from organic wire loss),
	// overload sheds, and writer reconnects after a broken stream.
	MetricTransportFaultDrops = "decoupling_transport_fault_drops_total"
	MetricTransportShed       = "decoupling_transport_shed_total"
	MetricTransportReconnects = "decoupling_transport_reconnects_total"
	// Loadgen live run metrics (wall-clock registry).
	MetricLoadgenRequests = "decoupling_loadgen_requests_total"
	MetricLoadgenErrors   = "decoupling_loadgen_errors_total"
	MetricLoadgenInflight = "decoupling_loadgen_inflight"
	MetricLoadgenLatency  = "decoupling_loadgen_request_latency_seconds"
)

// Fixed bucket layouts. Keeping them package-level constants (rather
// than per-call-site ad hoc slices) is what makes histogram exposition
// deterministic and mergeable across experiments.
var (
	// LatencyBuckets covers virtual link latencies (seconds).
	LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
	// SizeBuckets covers message sizes (bytes).
	SizeBuckets = []float64{64, 128, 256, 512, 1024, 4096, 16384, 65536}
	// WaitBuckets covers scheduler/queue waits (wall seconds).
	WaitBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 1}
	// BatchBuckets covers mix batch sizes (messages per flush).
	BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
)

// Metrics is a registry of counters and fixed-bucket histograms. It is
// safe for concurrent use: registration takes a lock, but updates on
// returned handles are plain atomics, so parallel experiments sharing a
// registry never contend beyond the first lookup of each series. A nil
// *Metrics is valid and disabled.
type Metrics struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name    string
	help    string
	typ     string // "counter" or "histogram"
	buckets []float64
	series  map[string]*series
}

type series struct {
	labels  []Attr // sorted by key
	count   atomic.Uint64
	sumBits atomic.Uint64 // histogram/summary sum or gauge level, float64 bits
	buckets []atomic.Uint64
	sk      *sketch // summaries only
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return &Metrics{families: map[string]*family{}} }

// Counter returns the counter series for (name, labels), registering it
// on first use. Returns nil (inert) on a nil registry.
func (m *Metrics) Counter(name, help string, labels ...Attr) *Counter {
	if m == nil {
		return nil
	}
	return &Counter{m.seriesFor(name, help, "counter", nil, labels)}
}

// Histogram returns the histogram series for (name, labels) with the
// given fixed upper bounds, registering it on first use. Returns nil
// (inert) on a nil registry.
func (m *Metrics) Histogram(name, help string, buckets []float64, labels ...Attr) *Histogram {
	if m == nil {
		return nil
	}
	s := m.seriesFor(name, help, "histogram", buckets, labels)
	return &Histogram{s: s, bounds: buckets}
}

func (m *Metrics) seriesFor(name, help, typ string, buckets []float64, labels []Attr) *series {
	sorted := append([]Attr(nil), labels...)
	SortAttrs(sorted)
	key := labelKey(sorted)
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]*series{}}
		m.families[name] = f
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: sorted, buckets: make([]atomic.Uint64, len(f.buckets))}
		if typ == "summary" {
			s.sk = newSketch()
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing series handle. Nil-safe.
type Counter struct{ s *series }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil || c.s == nil {
		return
	}
	c.s.count.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil || c.s == nil {
		return 0
	}
	return c.s.count.Load()
}

// Histogram is a fixed-bucket series handle. Nil-safe.
type Histogram struct {
	s      *series
	bounds []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	for i, ub := range h.bounds {
		if v <= ub {
			h.s.buckets[i].Add(1)
			break
		}
	}
	h.s.count.Add(1)
	for {
		old := h.s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SeriesValue is one series' labels and scalar value, as returned by
// CounterSeries for report summaries.
type SeriesValue struct {
	Labels []Attr
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (sv SeriesValue) Label(key string) string {
	for _, a := range sv.Labels {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// CounterSeries returns every series of the named counter family,
// sorted by descending value then label key (deterministic given
// deterministic counts).
func (m *Metrics) CounterSeries(name string) []SeriesValue {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	f := m.families[name]
	var out []SeriesValue
	if f != nil && f.typ == "counter" {
		for _, s := range f.series {
			out = append(out, SeriesValue{Labels: s.labels, Value: float64(s.count.Load())})
		}
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

// labelKey renders sorted labels into the exposition form used both as
// a map key and in output: {k1="v1",k2="v2"} ("" for no labels).
func labelKey(labels []Attr) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(a.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
