package telemetry

// The HTTP scrape surface of the live observability plane:
//
//	/metrics        canonical Prometheus text exposition (the same
//	                bytes WriteProm emits, so the strict parser —
//	                and therefore any Prometheus scraper — accepts
//	                a mid-run scrape)
//	/statusz        a JSON run summary from a caller-provided hook
//	/debug/pprof/*  the standard net/http/pprof handlers
//
// cmd/loadgen and cmd/experiments mount this behind their -listen
// flags. No wall-clock calls live here; the handlers only read state
// others maintain.

import (
	"encoding/json"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
)

// StatusFunc produces the /statusz document. It is called per request;
// the value is marshaled as indented JSON.
type StatusFunc func() (any, error)

// ObsMux builds the observability handler over a registry and an
// optional status hook. A nil registry serves an empty (valid)
// exposition; a nil status hook serves basic runtime health.
func ObsMux(m *Metrics, status StatusFunc) *http.ServeMux {
	if status == nil {
		status = defaultStatus
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WriteProm(w)
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		doc, err := status()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(blob, '\n'))
	})
	mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
	return mux
}

func defaultStatus() (any, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"goroutines":       runtime.NumGoroutine(),
		"heap_alloc_bytes": ms.HeapAlloc,
		"num_gc":           ms.NumGC,
	}, nil
}

// ServeObs binds listen (host:port; :0 picks a free port) and serves
// the observability mux in the background. It returns the server and
// the bound address; callers Close the server on shutdown.
func ServeObs(listen string, m *Metrics, status StatusFunc) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: ObsMux(m, status)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
