// Package telemetry is the reproduction's zero-dependency tracing and
// metrics layer: hierarchical trace spans recorded against the simnet
// virtual clock (exported as JSONL), plus counters and fixed-bucket
// histograms with a Prometheus text exposition writer.
//
// Two design rules keep it honest:
//
//   - Determinism: span times come from a virtual clock (or are zero
//     when no simulation is attached), never from the wall. A seeded
//     experiment therefore produces byte-identical traces across runs
//     and across -parallel settings. Wall-clock readings are confined
//     to metrics (queue wait) and to Result fields that the default
//     report never renders.
//   - A disabled layer is free: every entry point is nil-receiver
//     safe, so instrumented hot paths (simnet delivery, ledger Saw)
//     pay exactly one nil pointer check when telemetry is off.
//
// The span hierarchy mirrors the system's layers: experiment →
// protocol phase → message hop. Hop spans are parented on the span
// that was current when the message was *sent*, so a relay chain
// (client → mix 1 → mix 2 → receiver) appears as nested spans even
// though each hop is a separate event-loop turn.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or metric series.
type Attr struct {
	Key   string
	Value string
}

// A returns an Attr; it keeps instrumentation call sites short.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one timed operation. Times are virtual-clock durations since
// the owning simulation's epoch. A nil *Span is valid and inert.
type Span struct {
	tr      *Tracer
	ID      uint64
	Parent  uint64 // 0 = root
	Name    string
	Start   time.Duration
	EndTime time.Duration
	Attrs   []Attr
	ended   bool
}

// Tracer records spans for one trace (one experiment). A nil *Tracer is
// valid and disabled. Construct with NewTracer.
type Tracer struct {
	mu     sync.Mutex
	name   string
	clock  func() time.Duration
	nextID uint64
	stack  []*Span // active synchronous span chain; top is Current
	spans  []*Span // every span in creation order
}

// NewTracer creates a tracer for the named trace. The clock defaults to
// zero until SetClock binds a virtual clock.
func NewTracer(name string) *Tracer { return &Tracer{name: name} }

// Name returns the trace name ("" for a nil tracer).
func (t *Tracer) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// SetClock binds the virtual clock used to stamp span start/end times.
// Simulations bind their Network.Now; anything else leaves the default
// zero clock so exported times stay deterministic.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// now reads the clock without holding the tracer lock across the call
// (the clock may itself take a simulation lock).
func (t *Tracer) now() time.Duration {
	t.mu.Lock()
	clock := t.clock
	t.mu.Unlock()
	if clock == nil {
		return 0
	}
	return clock()
}

// Start opens a span as a child of the current span and makes it
// current. Returns nil (safely inert) on a nil tracer.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var parent uint64
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1].ID
	}
	return t.push(parent, name, now, attrs)
}

// StartAt opens a span with an explicit parent and start time and makes
// it current. A nil parent makes a root span. The simulator uses this
// for delivery spans: parent captured at send time, start = send time.
func (t *Tracer) StartAt(parent *Span, name string, start time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var pid uint64
	if parent != nil {
		pid = parent.ID
	}
	return t.push(pid, name, start, attrs)
}

// push allocates and registers a span. Caller holds t.mu.
func (t *Tracer) push(parent uint64, name string, start time.Duration, attrs []Attr) *Span {
	t.nextID++
	s := &Span{tr: t, ID: t.nextID, Parent: parent, Name: name, Start: start, Attrs: attrs}
	t.spans = append(t.spans, s)
	t.stack = append(t.stack, s)
	return s
}

// PhasePrefix is the span-name prefix experiments use to mark protocol
// phases ("phase:forward", "phase:odoh", …). CurrentPhase strips it.
const PhasePrefix = "phase:"

// CurrentPhase returns the name (sans PhasePrefix) of the innermost
// open span marking a protocol phase, or "" when no phase span is open.
// The ledger joins observations to phases through this at Saw time, so
// audit evidence can say *when in the protocol* an entity learned a
// value. Safe on a nil tracer.
func (t *Tracer) CurrentPhase() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if name := t.stack[i].Name; strings.HasPrefix(name, PhasePrefix) {
			return name[len(PhasePrefix):]
		}
	}
	return ""
}

// Current returns the innermost open span, or nil.
func (t *Tracer) Current() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.stack); n > 0 {
		return t.stack[n-1]
	}
	return nil
}

// End closes the span at the current clock reading.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.now())
}

// EndAt closes the span at an explicit virtual time.
func (s *Span) EndAt(end time.Duration) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	if end < s.Start {
		end = s.Start
	}
	s.EndTime = end
	// Pop from the active stack (normally the top; search for safety).
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
}

// Annotate appends attributes to an open span (e.g. a value only known
// after decryption).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, attrs...)
	s.tr.mu.Unlock()
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteJSONL writes every recorded span as one JSON object per line, in
// creation order. Unended spans are emitted with end_ns = start_ns.
// Field order and formatting are fixed, so equal span sequences produce
// byte-identical output.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bw := bufio.NewWriter(w)
	var b strings.Builder
	for _, s := range t.spans {
		end := s.EndTime
		if !s.ended {
			end = s.Start
		}
		b.Reset()
		b.WriteString(`{"trace":`)
		b.Write(jsonString(t.name))
		fmt.Fprintf(&b, `,"span":%d,"parent":%d,"name":`, s.ID, s.Parent)
		b.Write(jsonString(s.Name))
		fmt.Fprintf(&b, `,"start_ns":%d,"end_ns":%d`, s.Start.Nanoseconds(), end.Nanoseconds())
		if len(s.Attrs) > 0 {
			b.WriteString(`,"attrs":{`)
			for i, a := range s.Attrs {
				if i > 0 {
					b.WriteByte(',')
				}
				b.Write(jsonString(a.Key))
				b.WriteByte(':')
				b.Write(jsonString(a.Value))
			}
			b.WriteByte('}')
		}
		b.WriteString("}\n")
		if _, err := bw.WriteString(b.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func jsonString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // strings always marshal
		panic(err)
	}
	return b
}

// SpanRecord is the decoded form of one JSONL trace line.
type SpanRecord struct {
	Trace   string            `json:"trace"`
	Span    uint64            `json:"span"`
	Parent  uint64            `json:"parent"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"`
	EndNS   int64             `json:"end_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// ParseJSONL decodes and validates a JSONL trace: every line must be a
// well-formed span object, ids must be unique per trace, parents must
// precede children, and end must not precede start.
func ParseJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	seen := map[string]map[uint64]bool{} // trace -> span ids
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec SpanRecord
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		if rec.Trace == "" || rec.Name == "" || rec.Span == 0 {
			return nil, fmt.Errorf("telemetry: trace line %d: missing trace/name/span", line)
		}
		if rec.EndNS < rec.StartNS {
			return nil, fmt.Errorf("telemetry: trace line %d: end precedes start", line)
		}
		ids := seen[rec.Trace]
		if ids == nil {
			ids = map[uint64]bool{}
			seen[rec.Trace] = ids
		}
		if ids[rec.Span] {
			return nil, fmt.Errorf("telemetry: trace line %d: duplicate span id %d", line, rec.Span)
		}
		if rec.Parent != 0 && !ids[rec.Parent] {
			return nil, fmt.Errorf("telemetry: trace line %d: parent %d not yet seen", line, rec.Parent)
		}
		ids[rec.Span] = true
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Telemetry bundles one trace's tracer with a (possibly shared) metrics
// registry and a set of base labels stamped on every metric series. A
// nil *Telemetry disables everything; all methods are nil-safe, so
// instrumented code needs no conditionals beyond one pointer check.
type Telemetry struct {
	tr   *Tracer
	m    *Metrics
	base []Attr
}

// New builds a telemetry handle named name (the trace name, typically
// an experiment id). trace enables span recording; metrics may be nil.
// base labels (e.g. experiment="E2") are added to every metric series.
// Returns nil — everything disabled — when both sinks are off.
func New(name string, trace bool, metrics *Metrics, base ...Attr) *Telemetry {
	if !trace && metrics == nil {
		return nil
	}
	t := &Telemetry{m: metrics, base: base}
	if trace {
		t.tr = NewTracer(name)
	}
	return t
}

// Tracer returns the underlying tracer (nil when tracing is off).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// Metrics returns the underlying registry (nil when metrics are off).
func (t *Telemetry) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.m
}

// SetClock binds the virtual clock for span timestamps.
func (t *Telemetry) SetClock(clock func() time.Duration) { t.Tracer().SetClock(clock) }

// Start opens a child span of the current span.
func (t *Telemetry) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.tr.Start(name, attrs...)
}

// StartAt opens a span with explicit parent and start time.
func (t *Telemetry) StartAt(parent *Span, name string, start time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.tr.StartAt(parent, name, start, attrs...)
}

// Current returns the innermost open span.
func (t *Telemetry) Current() *Span {
	if t == nil {
		return nil
	}
	return t.tr.Current()
}

// CurrentPhase returns the innermost open protocol-phase name, or "".
func (t *Telemetry) CurrentPhase() string {
	if t == nil {
		return ""
	}
	return t.tr.CurrentPhase()
}

// Count adds n to the named counter, with the handle's base labels
// merged in.
func (t *Telemetry) Count(name, help string, n uint64, labels ...Attr) {
	if t == nil || t.m == nil {
		return
	}
	t.m.Counter(name, help, t.merge(labels)...).Add(n)
}

// Observe records v into the named fixed-bucket histogram, with the
// handle's base labels merged in.
func (t *Telemetry) Observe(name, help string, buckets []float64, v float64, labels ...Attr) {
	if t == nil || t.m == nil {
		return
	}
	t.m.Histogram(name, help, buckets, t.merge(labels)...).Observe(v)
}

// BaseLabels returns a copy of the handle's base labels, for callers
// that cache raw Counter/Histogram handles instead of going through
// Count/Observe.
func (t *Telemetry) BaseLabels() []Attr {
	if t == nil {
		return nil
	}
	return append([]Attr(nil), t.base...)
}

func (t *Telemetry) merge(labels []Attr) []Attr {
	if len(t.base) == 0 {
		return labels
	}
	out := make([]Attr, 0, len(t.base)+len(labels))
	out = append(out, t.base...)
	return append(out, labels...)
}

// Itoa is strconv.Itoa re-exported so instrumentation sites do not need
// an extra import for size attributes.
func Itoa(n int) string { return strconv.Itoa(n) }

// SortAttrs sorts attributes by key (stable for equal keys).
func SortAttrs(attrs []Attr) {
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
}
