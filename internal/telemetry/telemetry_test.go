package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilEverything exercises every entry point on nil receivers: the
// disabled path must be completely inert, never panic, and return zero
// values.
func TestNilEverything(t *testing.T) {
	t.Parallel()
	var tr *Tracer
	tr.SetClock(func() time.Duration { return time.Second })
	if sp := tr.Start("x"); sp != nil {
		t.Errorf("nil tracer Start = %v, want nil", sp)
	}
	if sp := tr.StartAt(nil, "x", 0); sp != nil {
		t.Errorf("nil tracer StartAt = %v, want nil", sp)
	}
	if cur := tr.Current(); cur != nil {
		t.Errorf("nil tracer Current = %v, want nil", cur)
	}
	if n := tr.Len(); n != 0 {
		t.Errorf("nil tracer Len = %d, want 0", n)
	}
	if name := tr.Name(); name != "" {
		t.Errorf("nil tracer Name = %q, want empty", name)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil tracer WriteJSONL: err=%v len=%d", err, buf.Len())
	}

	var sp *Span
	sp.End()
	sp.EndAt(time.Second)
	sp.Annotate(A("k", "v"))

	var m *Metrics
	m.Counter("c", "h").Add(1)
	m.Histogram("h", "h", LatencyBuckets).Observe(0.5)
	if got := m.Counter("c", "h").Value(); got != 0 {
		t.Errorf("nil metrics counter value = %d, want 0", got)
	}
	if s := m.CounterSeries("c"); s != nil {
		t.Errorf("nil metrics CounterSeries = %v, want nil", s)
	}
	if s := m.Snapshot(); s != nil {
		t.Errorf("nil metrics Snapshot = %v, want nil", s)
	}

	var tel *Telemetry
	tel.SetClock(func() time.Duration { return 0 })
	if sp := tel.Start("x"); sp != nil {
		t.Errorf("nil telemetry Start = %v, want nil", sp)
	}
	if sp := tel.StartAt(nil, "x", 0); sp != nil {
		t.Errorf("nil telemetry StartAt = %v, want nil", sp)
	}
	if cur := tel.Current(); cur != nil {
		t.Errorf("nil telemetry Current = %v, want nil", cur)
	}
	tel.Count("c", "h", 1)
	tel.Observe("h", "h", LatencyBuckets, 0.5)
	if tr := tel.Tracer(); tr != nil {
		t.Errorf("nil telemetry Tracer = %v, want nil", tr)
	}
	if m := tel.Metrics(); m != nil {
		t.Errorf("nil telemetry Metrics = %v, want nil", m)
	}
	if b := tel.BaseLabels(); b != nil {
		t.Errorf("nil telemetry BaseLabels = %v, want nil", b)
	}
}

// TestNewDisabledReturnsNil: both sinks off means the whole handle is
// nil, so instrumented code pays only a pointer check.
func TestNewDisabledReturnsNil(t *testing.T) {
	t.Parallel()
	if tel := New("E0", false, nil); tel != nil {
		t.Fatalf("New with both sinks off = %v, want nil", tel)
	}
	if tel := New("E0", true, nil); tel == nil || tel.Tracer() == nil || tel.Metrics() != nil {
		t.Fatalf("trace-only handle wrong: %+v", tel)
	}
	if tel := New("E0", false, NewMetrics()); tel == nil || tel.Tracer() != nil || tel.Metrics() == nil {
		t.Fatalf("metrics-only handle wrong: %+v", tel)
	}
}

// TestSpanNesting checks the synchronous stack model: Start parents on
// the innermost open span and End pops it.
func TestSpanNesting(t *testing.T) {
	t.Parallel()
	tr := NewTracer("T")
	root := tr.Start("root")
	child := tr.Start("child")
	if child.Parent != root.ID {
		t.Errorf("child parent = %d, want %d", child.Parent, root.ID)
	}
	if cur := tr.Current(); cur != child {
		t.Errorf("Current = %v, want child", cur)
	}
	grand := tr.Start("grand")
	if grand.Parent != child.ID {
		t.Errorf("grand parent = %d, want %d", grand.Parent, child.ID)
	}
	grand.End()
	child.End()
	if cur := tr.Current(); cur != root {
		t.Errorf("Current after pops = %v, want root", cur)
	}
	sibling := tr.Start("sibling")
	if sibling.Parent != root.ID {
		t.Errorf("sibling parent = %d, want %d", sibling.Parent, root.ID)
	}
	sibling.End()
	root.End()
	if cur := tr.Current(); cur != nil {
		t.Errorf("Current after all ended = %v, want nil", cur)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
}

// TestStartAtExplicitParent checks the simulator's usage: a span opened
// with a parent captured earlier (possibly already ended) still nests
// under it, and a nil parent yields a root span.
func TestStartAtExplicitParent(t *testing.T) {
	t.Parallel()
	tr := NewTracer("T")
	send := tr.Start("send")
	send.End()
	hop := tr.StartAt(send, "hop", 5*time.Millisecond)
	if hop.Parent != send.ID {
		t.Errorf("hop parent = %d, want %d", hop.Parent, send.ID)
	}
	if hop.Start != 5*time.Millisecond {
		t.Errorf("hop start = %v, want 5ms", hop.Start)
	}
	hop.EndAt(7 * time.Millisecond)
	root := tr.StartAt(nil, "root", 0)
	if root.Parent != 0 {
		t.Errorf("nil-parent span parent = %d, want 0", root.Parent)
	}
	root.End()
}

// TestEndSemantics: EndAt clamps end >= start, and a second End is a
// no-op.
func TestEndSemantics(t *testing.T) {
	t.Parallel()
	tr := NewTracer("T")
	sp := tr.StartAt(nil, "x", 10*time.Millisecond)
	sp.EndAt(3 * time.Millisecond) // before start: clamp
	if sp.EndTime != 10*time.Millisecond {
		t.Errorf("clamped end = %v, want 10ms", sp.EndTime)
	}
	sp.EndAt(20 * time.Millisecond) // already ended: ignored
	if sp.EndTime != 10*time.Millisecond {
		t.Errorf("double End changed end to %v", sp.EndTime)
	}
}

// TestClock: spans are stamped from the bound clock, zero before any
// clock is set.
func TestClock(t *testing.T) {
	t.Parallel()
	tr := NewTracer("T")
	early := tr.Start("early")
	early.End()
	if early.Start != 0 || early.EndTime != 0 {
		t.Errorf("pre-clock span times = %v..%v, want 0..0", early.Start, early.EndTime)
	}
	now := 5 * time.Millisecond
	tr.SetClock(func() time.Duration { return now })
	sp := tr.Start("timed")
	now = 9 * time.Millisecond
	sp.End()
	if sp.Start != 5*time.Millisecond || sp.EndTime != 9*time.Millisecond {
		t.Errorf("span times = %v..%v, want 5ms..9ms", sp.Start, sp.EndTime)
	}
}

func buildTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer("E2")
	now := time.Duration(0)
	tr.SetClock(func() time.Duration { return now })
	root := tr.Start("experiment", A("id", "E2"))
	phase := tr.Start("phase:forward")
	now = 2 * time.Millisecond
	hop := tr.StartAt(phase, "simnet.deliver", time.Millisecond,
		A("src", "alice"), A("dst", `mix"1`), A("bytes", Itoa(146)))
	hop.Annotate(A("late", "value\nwith newline"))
	hop.End()
	phase.End()
	open := tr.Start("never-ended")
	_ = open
	root.EndAt(4 * time.Millisecond)
	return tr
}

// TestWriteJSONLDeterministic: the same span sequence renders to the
// same bytes, and the output survives a strict parse that agrees with
// the recorded spans (including an unended span emitted with end ==
// start).
func TestWriteJSONLDeterministic(t *testing.T) {
	t.Parallel()
	var a, b bytes.Buffer
	if err := buildTrace(t).WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace(t).WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical traces rendered differently:\n%s\n---\n%s", a.String(), b.String())
	}
	recs, err := ParseJSONL(&a)
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("parsed %d spans, want 4", len(recs))
	}
	if recs[0].Name != "experiment" || recs[0].Parent != 0 || recs[0].EndNS != int64(4*time.Millisecond) {
		t.Errorf("root record wrong: %+v", recs[0])
	}
	if recs[2].Name != "simnet.deliver" || recs[2].Parent != recs[1].Span {
		t.Errorf("hop record wrong: %+v", recs[2])
	}
	if recs[2].Attrs["dst"] != `mix"1` || recs[2].Attrs["late"] != "value\nwith newline" {
		t.Errorf("attrs did not survive JSON round-trip: %v", recs[2].Attrs)
	}
	if recs[3].Name != "never-ended" || recs[3].EndNS != recs[3].StartNS {
		t.Errorf("unended span not emitted with end == start: %+v", recs[3])
	}
}

// TestParseJSONLRejects enumerates the validation rules.
func TestParseJSONLRejects(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"unknown field":    `{"trace":"T","span":1,"parent":0,"name":"x","start_ns":0,"end_ns":0,"bogus":1}`,
		"missing name":     `{"trace":"T","span":1,"parent":0,"name":"","start_ns":0,"end_ns":0}`,
		"missing trace":    `{"trace":"","span":1,"parent":0,"name":"x","start_ns":0,"end_ns":0}`,
		"span id zero":     `{"trace":"T","span":0,"parent":0,"name":"x","start_ns":0,"end_ns":0}`,
		"end before start": `{"trace":"T","span":1,"parent":0,"name":"x","start_ns":5,"end_ns":4}`,
		"orphan parent":    `{"trace":"T","span":1,"parent":9,"name":"x","start_ns":0,"end_ns":0}`,
		"duplicate id": `{"trace":"T","span":1,"parent":0,"name":"x","start_ns":0,"end_ns":0}
{"trace":"T","span":1,"parent":0,"name":"y","start_ns":0,"end_ns":0}`,
		"not json": `garbage`,
	}
	for name, input := range cases {
		if _, err := ParseJSONL(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ParseJSONL accepted invalid input", name)
		}
	}
	// Span ids are per trace: the same id in two traces is fine.
	ok := `{"trace":"A","span":1,"parent":0,"name":"x","start_ns":0,"end_ns":0}
{"trace":"B","span":1,"parent":0,"name":"x","start_ns":0,"end_ns":0}`
	if _, err := ParseJSONL(strings.NewReader(ok)); err != nil {
		t.Errorf("per-trace ids rejected: %v", err)
	}
}

// TestCounter checks counter registration, accumulation, and series
// identity across lookups.
func TestCounter(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	c := m.Counter("requests_total", "Requests.", A("src", "a"))
	c.Add(2)
	// Same (name, labels) in any order resolves to the same series.
	m.Counter("requests_total", "Requests.", A("src", "a")).Add(3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	other := m.Counter("requests_total", "Requests.", A("src", "b"))
	other.Add(1)
	series := m.CounterSeries("requests_total")
	if len(series) != 2 {
		t.Fatalf("series count = %d, want 2", len(series))
	}
	if series[0].Value != 5 || series[0].Label("src") != "a" {
		t.Errorf("series sorted wrong: %+v", series)
	}
	if series[1].Label("missing") != "" {
		t.Errorf("absent label lookup = %q, want empty", series[1].Label("missing"))
	}
}

// TestHistogram checks bucket assignment, count, and sum.
func TestHistogram(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	h := m.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} { // one per bucket + overflow
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		`latency_seconds_sum 5.555`,
		`latency_seconds_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionRoundTrip is the CI validation contract:
// parse(write(m)) re-renders to exactly the bytes written.
func TestExpositionRoundTrip(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	m.Counter(MetricSimnetMessages, "Messages delivered.", A("experiment", "E2"), A("src", "alice"), A("dst", "mix1")).Add(12)
	m.Counter(MetricSimnetMessages, "Messages delivered.", A("experiment", "E2"), A("src", "mix1"), A("dst", "mix2")).Add(7)
	m.Counter(MetricSimnetLost, "Messages lost.").Add(1)
	h := m.Histogram(MetricSimnetLatency, "Link latency.", LatencyBuckets, A("experiment", "E10"))
	h.Observe(0.004)
	h.Observe(0.03)
	m.Histogram(MetricMixBatchSize, "Batch sizes.", BatchBuckets).Observe(8)

	var first bytes.Buffer
	if err := m.WriteProm(&first); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ParseExposition rejected our own output: %v\n%s", err, first.String())
	}
	var second bytes.Buffer
	if err := WriteExpFamilies(&second, fams); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip not byte-identical:\n--- written ---\n%s\n--- reparsed ---\n%s",
			first.String(), second.String())
	}
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values
// must survive write → parse.
func TestLabelEscaping(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	m.Counter("c_total", "C.", A("v", "a\"b\\c\nd")).Add(1)
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `c_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want+"\n") {
		t.Fatalf("escaped label missing, want %q in:\n%s", want, buf.String())
	}
	if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("parser rejected escaped labels: %v", err)
	}
}

// TestParseExpositionRejects enumerates the strict-parser rules.
func TestParseExpositionRejects(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"sample before headers": "x_total 1\n",
		"type without help":     "# TYPE x_total counter\nx_total 1\n",
		"unknown type":          "# HELP x_total X.\n# TYPE x_total untyped\n",
		"stray comment":         "# HELP x_total X.\n# TYPE x_total counter\n# a comment\n",
		"foreign sample":        "# HELP x_total X.\n# TYPE x_total counter\ny_total 1\n",
		"bad value":             "# HELP x_total X.\n# TYPE x_total counter\nx_total one\n",
		"missing value":         "# HELP x_total X.\n# TYPE x_total counter\nx_total\n",
		"bad label name":        "# HELP x_total X.\n# TYPE x_total counter\nx_total{a-b=\"v\"} 1\n",
		"unquoted label":        "# HELP x_total X.\n# TYPE x_total counter\nx_total{a=v} 1\n",
		"bad escape":            "# HELP x_total X.\n# TYPE x_total counter\nx_total{a=\"\\x\"} 1\n",
		"unterminated labels":   "# HELP x_total X.\n# TYPE x_total counter\nx_total{a=\"v\" 1\n",
	}
	for name, input := range cases {
		if _, err := ParseExposition(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parser accepted invalid exposition", name)
		}
	}
}

// TestTelemetryBaseLabels: Count/Observe stamp the handle's base labels
// onto every series.
func TestTelemetryBaseLabels(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	tel := New("E2", false, m, A("experiment", "E2"))
	tel.Count("c_total", "C.", 3, A("src", "alice"))
	series := m.CounterSeries("c_total")
	if len(series) != 1 || series[0].Label("experiment") != "E2" || series[0].Label("src") != "alice" {
		t.Fatalf("base labels not merged: %+v", series)
	}
	base := tel.BaseLabels()
	if len(base) != 1 || base[0].Key != "experiment" {
		t.Fatalf("BaseLabels = %v", base)
	}
	base[0].Value = "mutated" // must be a copy
	tel.Count("c_total", "C.", 1, A("src", "alice"))
	if got := m.CounterSeries("c_total"); len(got) != 1 {
		t.Fatalf("BaseLabels returned the internal slice; mutation forked the series: %+v", got)
	}
}

// TestConcurrentUpdates hammers a shared registry and a tracer from
// many goroutines; meaningful under -race.
func TestConcurrentUpdates(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := NewTracer(Itoa(g)) // tracers are per-goroutine, like per-experiment
			for i := 0; i < 200; i++ {
				sp := tr.Start("op", A("i", Itoa(i)))
				m.Counter("ops_total", "Ops.", A("g", Itoa(g))).Add(1)
				m.Histogram("op_size", "Sizes.", SizeBuckets).Observe(float64(i))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	total := uint64(0)
	for _, sv := range m.CounterSeries("ops_total") {
		total += uint64(sv.Value)
	}
	if total != 8*200 {
		t.Errorf("ops_total = %d, want %d", total, 8*200)
	}
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("concurrent registry exposition invalid: %v", err)
	}
}

// --- No-op overhead benchmarks ------------------------------------
//
// The ISSUE contract: disabled telemetry must cost within noise of no
// instrumentation at all. BenchmarkBaseline is the empty loop;
// BenchmarkDisabled* run the exact instrumented call shapes on a nil
// handle. Compare ns/op — they should all be ~1ns (a pointer check)
// and allocate nothing.

var sinkSpan *Span

func BenchmarkBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tel *Telemetry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tel.Start("simnet.deliver")
		sp.End()
		sinkSpan = sp
	}
}

func BenchmarkDisabledStartAt(b *testing.B) {
	var tel *Telemetry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tel.StartAt(nil, "simnet.deliver", 0)
		sp.EndAt(0)
		sinkSpan = sp
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	var tel *Telemetry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Count(MetricSimnetMessages, "Messages.", 1)
	}
}

func BenchmarkDisabledObserve(b *testing.B) {
	var tel *Telemetry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Observe(MetricSimnetLatency, "Latency.", LatencyBuckets, 0.001)
	}
}

func BenchmarkDisabledCachedCounter(b *testing.B) {
	var m *Metrics
	c := m.Counter(MetricLedgerObservations, "Observations.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tel := New("bench", true, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tel.Start("simnet.deliver")
		sp.End()
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	m := NewMetrics()
	c := m.Counter(MetricSimnetMessages, "Messages.", A("src", "a"), A("dst", "b"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
