package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4): a canonical writer for the registry and a strict parser whose
// output re-renders byte-identically, so `parse(write(m)) == write(m)`
// is checkable in CI without any external tooling.

// ExpFamily is one parsed metric family: the # HELP / # TYPE header and
// its sample lines, values kept as their original strings so that
// re-rendering is exact.
type ExpFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ExpSample
}

// ExpSample is one sample line: a metric name (family name plus any
// _bucket/_sum/_count suffix), its rendered label block, and the value.
type ExpSample struct {
	Name   string
	Labels string // "{k=\"v\",...}" or ""
	Value  string
}

// WriteProm writes the registry in canonical exposition order: families
// sorted by name, series sorted by label block. Histograms expose
// cumulative _bucket lines (including le="+Inf"), _sum, and _count.
func (m *Metrics) WriteProm(w io.Writer) error {
	fams := m.Snapshot()
	return WriteExpFamilies(w, fams)
}

// Snapshot renders the registry's current state into parsed-form
// families (the same structure ParseExposition yields).
func (m *Metrics) Snapshot() []ExpFamily {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.families))
	for name := range m.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var fams []ExpFamily
	for _, name := range names {
		f := m.families[name]
		ef := ExpFamily{Name: f.name, Help: f.help, Type: f.typ}
		keys := make([]string, 0, len(f.series))
		byKey := map[string]*series{}
		for k, s := range f.series {
			keys = append(keys, k)
			byKey[k] = s
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := byKey[k]
			switch f.typ {
			case "counter":
				ef.Samples = append(ef.Samples, ExpSample{
					Name: f.name, Labels: k, Value: strconv.FormatUint(s.count.Load(), 10),
				})
			case "gauge":
				ef.Samples = append(ef.Samples, ExpSample{
					Name: f.name, Labels: k, Value: formatValue(floatOf(s)),
				})
			case "summary":
				total := s.count.Load()
				for _, q := range SummaryQuantiles {
					ef.Samples = append(ef.Samples, ExpSample{
						Name:   f.name,
						Labels: withLabel(s.labels, "quantile", formatValue(q)),
						Value:  formatValue(s.sk.quantile(q, total)),
					})
				}
				ef.Samples = append(ef.Samples, ExpSample{
					Name: f.name + "_sum", Labels: k, Value: formatValue(floatOf(s)),
				})
				ef.Samples = append(ef.Samples, ExpSample{
					Name: f.name + "_count", Labels: k, Value: strconv.FormatUint(total, 10),
				})
			case "histogram":
				cum := uint64(0)
				for i, ub := range f.buckets {
					cum += s.buckets[i].Load()
					ef.Samples = append(ef.Samples, ExpSample{
						Name:   f.name + "_bucket",
						Labels: withLE(s.labels, formatValue(ub)),
						Value:  strconv.FormatUint(cum, 10),
					})
				}
				ef.Samples = append(ef.Samples, ExpSample{
					Name:   f.name + "_bucket",
					Labels: withLE(s.labels, "+Inf"),
					Value:  strconv.FormatUint(s.count.Load(), 10),
				})
				ef.Samples = append(ef.Samples, ExpSample{
					Name: f.name + "_sum", Labels: k, Value: formatValue(floatOf(s)),
				})
				ef.Samples = append(ef.Samples, ExpSample{
					Name: f.name + "_count", Labels: k, Value: strconv.FormatUint(s.count.Load(), 10),
				})
			}
		}
		fams = append(fams, ef)
	}
	m.mu.Unlock()
	return fams
}

func floatOf(s *series) float64 {
	return math.Float64frombits(s.sumBits.Load())
}

// withLE appends the le label to a sorted label set, keeping sort order
// (le sorts into place like any other key).
func withLE(labels []Attr, le string) string {
	return withLabel(labels, "le", le)
}

// withLabel appends one synthetic label (le for histogram buckets,
// quantile for summaries) to a sorted label set, keeping sort order.
func withLabel(labels []Attr, key, value string) string {
	all := append(append([]Attr(nil), labels...), Attr{Key: key, Value: value})
	SortAttrs(all)
	return labelKey(all)
}

// WriteExpFamilies renders families exactly as the parser expects them.
func WriteExpFamilies(w io.Writer, fams []ExpFamily) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, f.Help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			fmt.Fprintf(bw, "%s%s %s\n", s.Name, s.Labels, s.Value)
		}
	}
	return bw.Flush()
}

// ParseExposition parses exposition text strictly: every family must
// carry HELP and TYPE headers, every sample must belong to the current
// family, labels must be well-formed, and values must parse as floats.
// The returned families re-render byte-identically via
// WriteExpFamilies.
func ParseExposition(r io.Reader) ([]ExpFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var fams []ExpFamily
	var cur *ExpFamily
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "# HELP "):
			rest := strings.TrimPrefix(text, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("telemetry: exposition line %d: malformed HELP", line)
			}
			fams = append(fams, ExpFamily{Name: name, Help: help})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(text, "# TYPE "):
			rest := strings.TrimPrefix(text, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || cur == nil || cur.Name != name || cur.Type != "" {
				return nil, fmt.Errorf("telemetry: exposition line %d: TYPE without matching HELP", line)
			}
			if typ != "counter" && typ != "histogram" && typ != "gauge" && typ != "summary" {
				return nil, fmt.Errorf("telemetry: exposition line %d: unsupported type %q", line, typ)
			}
			cur.Type = typ
		case strings.HasPrefix(text, "#"):
			return nil, fmt.Errorf("telemetry: exposition line %d: unexpected comment", line)
		default:
			if cur == nil || cur.Type == "" {
				return nil, fmt.Errorf("telemetry: exposition line %d: sample before HELP/TYPE", line)
			}
			s, err := parseSample(text)
			if err != nil {
				return nil, fmt.Errorf("telemetry: exposition line %d: %w", line, err)
			}
			if s.Name != cur.Name && !strings.HasPrefix(s.Name, cur.Name+"_") {
				return nil, fmt.Errorf("telemetry: exposition line %d: sample %q outside family %q", line, s.Name, cur.Name)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parseSample(text string) (ExpSample, error) {
	var s ExpSample
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unterminated label block")
		}
		s.Labels = rest[i : j+1]
		if err := validateLabels(s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		name, val, ok := strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("missing value")
		}
		s.Name, rest = name, val
	}
	if s.Name == "" {
		return s, fmt.Errorf("missing metric name")
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("missing value")
	}
	if rest != "+Inf" && rest != "-Inf" && rest != "NaN" {
		if _, err := strconv.ParseFloat(rest, 64); err != nil {
			return s, fmt.Errorf("bad value %q: %w", rest, err)
		}
	}
	s.Value = rest
	return s, nil
}

// validateLabels checks a {k="v",...} block: names are identifiers and
// values are properly quoted with supported escapes.
func validateLabels(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return fmt.Errorf("empty label block")
	}
	i := 0
	for i < len(inner) {
		j := strings.IndexByte(inner[i:], '=')
		if j <= 0 {
			return fmt.Errorf("malformed label pair at %q", inner[i:])
		}
		name := inner[i : i+j]
		for _, r := range name {
			if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
				return fmt.Errorf("bad label name %q", name)
			}
		}
		i += j + 1
		if i >= len(inner) || inner[i] != '"' {
			return fmt.Errorf("label %q: unquoted value", name)
		}
		i++ // consume opening quote
		for {
			if i >= len(inner) {
				return fmt.Errorf("label %q: unterminated value", name)
			}
			switch inner[i] {
			case '\\':
				if i+1 >= len(inner) || !strings.ContainsRune(`\"n`, rune(inner[i+1])) {
					return fmt.Errorf("label %q: bad escape", name)
				}
				i += 2
			case '"':
				i++
				goto closed
			default:
				i++
			}
		}
	closed:
		if i < len(inner) {
			if inner[i] != ',' {
				return fmt.Errorf("label %q: expected comma", name)
			}
			i++
		}
	}
	return nil
}
