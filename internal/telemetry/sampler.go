package telemetry

// Sampler is the time-series half of the live observability plane: a
// periodic wall-clock snapshot of run health (tracked variables plus
// goroutine count, heap, and GC pauses) appended as one JSON object
// per line. Where the tracer answers "what happened, in what order"
// after a deterministic run, the sampler answers "what is happening
// right now" during a live one — a 10^6-client loadgen run stops being
// a black box between start and exit.
//
// Wall-clock use is deliberate and confined here (see the clock-guard
// allowlist): observability is measurement of the real world, not
// protocol behavior, so virtual clocks would be a lie.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"
)

// SampleVar is one tracked variable: a name, a reader, and whether the
// sampler should also emit its per-second rate (for monotonic
// counters: requests, errors, bytes).
type SampleVar struct {
	Name string
	Read func() float64
	Rate bool
}

// CounterVar tracks a registry counter with a derived per-second rate.
func CounterVar(name string, c *Counter) SampleVar {
	return SampleVar{Name: name, Read: func() float64 { return float64(c.Value()) }, Rate: true}
}

// GaugeVar tracks a registry gauge as a raw level.
func GaugeVar(name string, g *Gauge) SampleVar {
	return SampleVar{Name: name, Read: g.Value}
}

// Sampler appends periodic snapshots to a writer. Construct with
// NewSampler, call Start, and Stop before reading the output. A nil
// *Sampler is valid and disabled.
type Sampler struct {
	interval time.Duration
	vars     []SampleVar

	mu     sync.Mutex
	w      *bufio.Writer
	start  time.Time
	lastAt time.Time
	last   []float64 // previous raw value per var, for rates

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewSampler creates a sampler writing one JSON line per interval to
// w. It does not start sampling until Start. A zero or negative
// interval defaults to one second.
func NewSampler(w io.Writer, interval time.Duration, vars ...SampleVar) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	now := time.Now()
	return &Sampler{
		interval: interval,
		vars:     vars,
		w:        bufio.NewWriter(w),
		start:    now,
		lastAt:   now,
		last:     make([]float64, len(vars)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling goroutine. Safe on nil.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				_ = s.Sample()
			}
		}
	}()
}

// Stop halts sampling, takes one final snapshot, and flushes. Safe on
// nil; safe to call once after Start (or without Start, in which case
// it just flushes the final snapshot).
func (s *Sampler) Stop() error {
	if s == nil {
		return nil
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done // wait for the ticker goroutine to quit
	}
	if err := s.Sample(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Sample takes one snapshot immediately. Exported so tests (and final
// flushes) can sample deterministically without waiting on the ticker.
func (s *Sampler) Sample() error {
	if s == nil {
		return nil
	}
	now := time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := now.Sub(s.lastAt).Seconds()
	var b strings.Builder
	fmt.Fprintf(&b, `{"t_unix_ms":%d,"uptime_s":%s,"goroutines":%d`,
		now.UnixMilli(), formatValue(now.Sub(s.start).Seconds()), runtime.NumGoroutine())
	fmt.Fprintf(&b, `,"heap_alloc_bytes":%d,"heap_objects":%d,"num_gc":%d,"gc_pause_total_ns":%d`,
		ms.HeapAlloc, ms.HeapObjects, ms.NumGC, ms.PauseTotalNs)
	for i, v := range s.vars {
		cur := v.Read()
		fmt.Fprintf(&b, `,%s:%s`, jsonString(v.Name), formatValue(cur))
		if v.Rate {
			rate := 0.0
			if elapsed > 0 && cur >= s.last[i] {
				rate = (cur - s.last[i]) / elapsed
			}
			fmt.Fprintf(&b, `,%s:%s`, jsonString(v.Name+"_per_s"), formatValue(rate))
		}
		s.last[i] = cur
	}
	b.WriteString("}\n")
	s.lastAt = now
	_, err := s.w.WriteString(b.String())
	return err
}

// SampleRecord is one decoded sampler line: every field is numeric.
type SampleRecord map[string]float64

// ParseSamples decodes and validates sampler JSONL: every line must be
// a flat JSON object of numbers carrying at least the built-in run
// health fields, with time monotonically non-decreasing.
func ParseSamples(r io.Reader) ([]SampleRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []SampleRecord
	line := 0
	lastT := 0.0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec SampleRecord
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: sample line %d: %w", line, err)
		}
		for _, key := range []string{"t_unix_ms", "uptime_s", "goroutines", "heap_alloc_bytes"} {
			if _, ok := rec[key]; !ok {
				return nil, fmt.Errorf("telemetry: sample line %d: missing %q", line, key)
			}
		}
		t := rec["t_unix_ms"]
		if t < lastT {
			return nil, fmt.Errorf("telemetry: sample line %d: time went backwards", line)
		}
		lastT = t
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
