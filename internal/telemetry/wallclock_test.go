package telemetry

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestNilWallClock extends the nil-receiver audit to the wall-clock
// types: gauges, summaries, and samplers must be completely inert on
// nil, matching the "disabled hot path is one pointer check" contract.
func TestNilWallClock(t *testing.T) {
	t.Parallel()
	var m *Metrics
	if g := m.Gauge("g", "h"); g != nil {
		t.Errorf("nil metrics Gauge = %v, want nil", g)
	}
	if s := m.Summary("s", "h"); s != nil {
		t.Errorf("nil metrics Summary = %v, want nil", s)
	}

	var g *Gauge
	g.Set(1)
	g.Add(-1)
	if v := g.Value(); v != 0 {
		t.Errorf("nil gauge Value = %v, want 0", v)
	}

	var s *Summary
	s.Observe(1)
	if v := s.Quantile(0.5); v != 0 {
		t.Errorf("nil summary Quantile = %v, want 0", v)
	}
	if v := s.Count(); v != 0 {
		t.Errorf("nil summary Count = %v, want 0", v)
	}
	if v := s.Sum(); v != 0 {
		t.Errorf("nil summary Sum = %v, want 0", v)
	}
	if v := s.Max(); v != 0 {
		t.Errorf("nil summary Max = %v, want 0", v)
	}

	var sp *Sampler
	sp.Start()
	if err := sp.Sample(); err != nil {
		t.Errorf("nil sampler Sample: %v", err)
	}
	if err := sp.Stop(); err != nil {
		t.Errorf("nil sampler Stop: %v", err)
	}
}

func TestGauge(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	g := m.Gauge("decoupling_test_inflight", "In-flight ops.", A("leg", "odoh"))
	g.Set(4)
	g.Add(3)
	g.Add(-2)
	if v := g.Value(); v != 5 {
		t.Fatalf("gauge value = %v, want 5", v)
	}
	// Same (name, labels) resolves to the same series.
	if v := m.Gauge("decoupling_test_inflight", "In-flight ops.", A("leg", "odoh")).Value(); v != 5 {
		t.Fatalf("re-looked-up gauge value = %v, want 5", v)
	}
}

// TestGaugeSummaryRoundTrip: the new family types must survive the
// strict write -> parse -> re-render cycle byte-identically, the same
// contract counters and histograms already hold.
func TestGaugeSummaryRoundTrip(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	m.Gauge("decoupling_test_pending", "Pending work.").Set(17.5)
	m.Gauge("decoupling_test_inflight", "In-flight ops.", A("leg", "odoh")).Set(3)
	s := m.Summary("decoupling_test_latency_seconds", "Request latency.", A("leg", "odoh"))
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i) / 1000)
	}
	m.Counter("decoupling_test_requests_total", "Requests.").Add(42)
	m.Histogram("decoupling_test_wait_seconds", "Waits.", WaitBuckets).Observe(0.01)

	var out bytes.Buffer
	if err := m.WriteProm(&out); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("strict parse of written exposition: %v\n%s", err, out.String())
	}
	var back bytes.Buffer
	if err := WriteExpFamilies(&back, fams); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), back.Bytes()) {
		t.Fatalf("re-render differs:\n--- wrote\n%s--- re-rendered\n%s", out.String(), back.String())
	}

	// The summary family exposes quantile samples plus _sum/_count.
	var sum *ExpFamily
	for i := range fams {
		if fams[i].Name == "decoupling_test_latency_seconds" {
			sum = &fams[i]
		}
	}
	if sum == nil || sum.Type != "summary" {
		t.Fatalf("summary family missing or mistyped: %+v", sum)
	}
	wantSamples := len(SummaryQuantiles) + 2
	if len(sum.Samples) != wantSamples {
		t.Fatalf("summary samples = %d, want %d: %+v", len(sum.Samples), wantSamples, sum.Samples)
	}
	if !strings.Contains(sum.Samples[0].Labels, `quantile="0.5"`) {
		t.Fatalf("first summary sample lacks quantile label: %+v", sum.Samples[0])
	}
}

// TestSummaryAccuracy pins the sketch's error bound: estimates must be
// within a factor of sqrt(summaryGrowth) (~9%) of the exact order
// statistic, on distributions shaped like the data we feed it
// (uniform, log-normal latencies, heavy constant runs).
func TestSummaryAccuracy(t *testing.T) {
	t.Parallel()
	bound := math.Sqrt(summaryGrowth) - 1 + 1e-9
	distributions := map[string]func(r *rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*1.5 - 4) },
		"constant":  func(r *rand.Rand) float64 { return 0.125 },
		"bimodal": func(r *rand.Rand) float64 {
			if r.Intn(10) == 0 {
				return 2 + r.Float64()
			}
			return 0.001 * (1 + r.Float64())
		},
	}
	for name, gen := range distributions {
		r := rand.New(rand.NewSource(7))
		m := NewMetrics()
		s := m.Summary("decoupling_test_acc", "Accuracy probe.")
		exact := make([]float64, 20000)
		for i := range exact {
			exact[i] = gen(r)
			s.Observe(exact[i])
		}
		sort.Float64s(exact)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			rank := int(math.Ceil(q*float64(len(exact)))) - 1
			want := exact[rank]
			got := s.Quantile(q)
			rel := math.Abs(got-want) / want
			if rel > bound {
				t.Errorf("%s p%g: sketch=%.6g exact=%.6g relative error %.3f > %.3f",
					name, q*100, got, want, rel, bound)
			}
		}
		if got, want := s.Quantile(1), exact[len(exact)-1]; got != want {
			t.Errorf("%s max: sketch=%v exact=%v (max must be exact)", name, got, want)
		}
		if got, want := s.Quantile(0), exact[0]; got != want {
			t.Errorf("%s min: sketch=%v exact=%v (min must be exact)", name, got, want)
		}
		if s.Count() != uint64(len(exact)) {
			t.Errorf("%s count = %d, want %d", name, s.Count(), len(exact))
		}
	}
}

func TestSummaryEmptyAndExtremes(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	s := m.Summary("decoupling_test_edge", "Edges.")
	for _, q := range []float64{0, 0.5, 1} {
		if v := s.Quantile(q); v != 0 {
			t.Errorf("empty summary Quantile(%g) = %v, want 0", q, v)
		}
	}
	// Below-range and above-range observations clamp to exact extremes.
	s.Observe(1e-12)
	s.Observe(1e9)
	if got := s.Quantile(0); got != 1e-12 {
		t.Errorf("min = %v, want 1e-12", got)
	}
	if got := s.Quantile(1); got != 1e9 {
		t.Errorf("max = %v, want 1e9", got)
	}
	if got := s.Quantile(0.25); got != 1e-12 {
		t.Errorf("p25 of {1e-12, 1e9} = %v, want clamp to 1e-12", got)
	}
}

// TestSampler drives the sampler synchronously: two snapshots around a
// counter increment must parse strictly and carry a positive rate.
func TestSampler(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	c := m.Counter("decoupling_test_reqs", "Requests.")
	g := m.Gauge("decoupling_test_inflight", "In-flight.")
	var buf bytes.Buffer
	sp := NewSampler(&buf, time.Hour, CounterVar("requests", c), GaugeVar("inflight", g))
	c.Add(100)
	g.Set(7)
	time.Sleep(5 * time.Millisecond) // a nonzero rate window
	if err := sp.Sample(); err != nil {
		t.Fatal(err)
	}
	c.Add(50)
	time.Sleep(5 * time.Millisecond)
	if err := sp.Stop(); err != nil { // Stop without Start: final sample + flush
		t.Fatal(err)
	}
	recs, err := ParseSamples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseSamples: %v\n%s", err, buf.String())
	}
	if len(recs) != 2 {
		t.Fatalf("got %d samples, want 2:\n%s", len(recs), buf.String())
	}
	if recs[0]["requests"] != 100 || recs[1]["requests"] != 150 {
		t.Errorf("requests = %v, %v; want 100, 150", recs[0]["requests"], recs[1]["requests"])
	}
	if recs[1]["requests_per_s"] <= 0 {
		t.Errorf("requests_per_s = %v, want > 0", recs[1]["requests_per_s"])
	}
	if recs[0]["inflight"] != 7 {
		t.Errorf("inflight = %v, want 7", recs[0]["inflight"])
	}
	if recs[0]["goroutines"] <= 0 {
		t.Errorf("goroutines = %v, want > 0", recs[0]["goroutines"])
	}
}

func TestSamplerStartStop(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	m := NewMetrics()
	sp := NewSampler(&buf, time.Millisecond, CounterVar("reqs", m.Counter("r", "R.")))
	sp.Start()
	sp.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	if err := sp.Stop(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseSamples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseSamples: %v\n%s", err, buf.String())
	}
	if len(recs) < 2 {
		t.Fatalf("ticker produced %d samples in 20ms at 1ms interval, want >= 2", len(recs))
	}
}

func TestParseSamplesRejects(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"not json":        "nope\n",
		"missing fields":  `{"t_unix_ms":1}` + "\n",
		"non-numeric":     `{"t_unix_ms":1,"uptime_s":0,"goroutines":"x","heap_alloc_bytes":0}` + "\n",
		"time regression": `{"t_unix_ms":5,"uptime_s":0,"goroutines":1,"heap_alloc_bytes":0}` + "\n" + `{"t_unix_ms":4,"uptime_s":0,"goroutines":1,"heap_alloc_bytes":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ParseSamples(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parser accepted invalid samples", name)
		}
	}
}

// TestObsMux scrapes the in-process observability handler: /metrics
// must satisfy the strict exposition parser mid-flight, /statusz must
// serve the hook's JSON, and pprof must answer.
func TestObsMux(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	m.Counter("decoupling_test_total", "T.").Add(3)
	m.Summary("decoupling_test_lat", "L.").Observe(0.25)
	mux := ObsMux(m, func() (any, error) {
		return map[string]any{"phase": "odoh", "requests": 3}, nil
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp := mustGet(t, srv.URL+"/metrics")
	fams, err := ParseExposition(bytes.NewReader(resp))
	if err != nil {
		t.Fatalf("strict parse of /metrics: %v\n%s", err, resp)
	}
	if len(fams) != 2 {
		t.Fatalf("scraped %d families, want 2", len(fams))
	}

	status := mustGet(t, srv.URL+"/statusz")
	if !bytes.Contains(status, []byte(`"phase": "odoh"`)) {
		t.Fatalf("/statusz missing hook data: %s", status)
	}
	if pp := mustGet(t, srv.URL+"/debug/pprof/cmdline"); len(pp) == 0 {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}

	// A nil registry still serves a valid, empty exposition.
	nilSrv := httptest.NewServer(ObsMux(nil, nil))
	defer nilSrv.Close()
	if out := mustGet(t, nilSrv.URL+"/metrics"); len(out) != 0 {
		t.Fatalf("nil-registry /metrics = %q, want empty", out)
	}
	if out := mustGet(t, nilSrv.URL+"/statusz"); !bytes.Contains(out, []byte("goroutines")) {
		t.Fatalf("default /statusz missing runtime health: %s", out)
	}
}

func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}

// No-op overhead: the disabled wall-clock hot path must stay a pointer
// check, like the virtual-clock handles.
func BenchmarkDisabledGauge(b *testing.B) {
	var g *Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(1)
	}
}

func BenchmarkDisabledSummary(b *testing.B) {
	var s *Summary
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(0.5)
	}
}

func BenchmarkEnabledSummary(b *testing.B) {
	s := NewMetrics().Summary("b", "B.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i%1000) / 1000)
	}
}
