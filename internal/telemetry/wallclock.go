package telemetry

// This file is the wall-clock side of the metrics registry: gauges
// (levels that go up and down) and summaries (streaming quantile
// sketches). The counter/histogram side serves the deterministic
// virtual-clock experiments; gauges and summaries serve the live
// observability plane — loadgen runs, the real transport, the
// /metrics scrape endpoint — where values are wall-clock measurements
// and exact reproducibility is neither possible nor wanted.
//
// The quantile sketch is a fixed geometric-bucket design rather than a
// sampling reservoir: observations are atomically binned into buckets
// whose bounds grow by summaryGrowth per step, and a quantile estimate
// is the geometric midpoint of the bucket holding the target rank.
// That makes Observe lock-free (two atomic adds and two CAS loops),
// makes sketches mergeable, needs no randomness, and gives a provable
// relative-error bound: an estimate is within a factor of
// sqrt(summaryGrowth) of the true order statistic (about 9%), with
// exact min/max tracked separately so the tails never exceed reality.

import (
	"math"
	"sync/atomic"
)

// Summary sketch layout. Bounds cover [summaryMin, summaryMin *
// summaryGrowth^(summaryBuckets-1)]: with 1e-9 and 2^(1/4) that spans
// nanoseconds to ~1e5 (seconds, bytes, queue depths alike); anything
// below clamps to the first bucket, anything above to the overflow
// bucket, both bounded by the exact min/max.
const (
	summaryMin     = 1e-9
	summaryBuckets = 190
)

// summaryGrowth is 2^(1/4): four buckets per doubling.
var summaryGrowth = math.Pow(2, 0.25)

// summaryBounds[i] is the inclusive upper bound of bucket i.
var summaryBounds = func() []float64 {
	b := make([]float64, summaryBuckets)
	v := summaryMin
	for i := range b {
		b[i] = v
		v *= summaryGrowth
	}
	return b
}()

// SummaryQuantiles are the quantiles every summary exposes, in
// exposition order. 1 is the exact maximum.
var SummaryQuantiles = []float64{0.5, 0.9, 0.99, 1}

// sketch is the per-series state behind a Summary. count and sum live
// in the owning series; the sketch adds the bucket grid and the exact
// extremes.
type sketch struct {
	counts  [summaryBuckets + 1]atomic.Uint64 // +1 = overflow bucket
	minBits atomic.Uint64                     // float64 bits; valid once count > 0
	maxBits atomic.Uint64
}

func newSketch() *sketch {
	sk := &sketch{}
	sk.minBits.Store(math.Float64bits(math.Inf(1)))
	sk.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return sk
}

// bucketOf returns the index of the bucket whose bound first reaches v.
func bucketOf(v float64) int {
	if v <= summaryMin {
		return 0
	}
	i := int(math.Ceil(math.Log(v/summaryMin) / math.Log(summaryGrowth)))
	if i >= summaryBuckets {
		return summaryBuckets // overflow
	}
	return i
}

func (sk *sketch) observe(v float64) {
	sk.counts[bucketOf(v)].Add(1)
	for {
		old := sk.minBits.Load()
		if v >= math.Float64frombits(old) || sk.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := sk.maxBits.Load()
		if v <= math.Float64frombits(old) || sk.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// quantile estimates the q-th order statistic of everything observed so
// far. q <= 0 returns the exact minimum, q >= 1 the exact maximum.
// Concurrent observers make the rank a snapshot, not a serialized
// truth — which is exactly the contract of a live scrape.
func (sk *sketch) quantile(q float64, total uint64) float64 {
	if total == 0 {
		return 0
	}
	min := math.Float64frombits(sk.minBits.Load())
	max := math.Float64frombits(sk.maxBits.Load())
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i <= summaryBuckets; i++ {
		cum += sk.counts[i].Load()
		if cum < rank {
			continue
		}
		var est float64
		switch i {
		case 0:
			// Everything in bucket 0 sits at or below the grid floor;
			// the exact minimum is the only honest point estimate.
			est = min
		case summaryBuckets:
			est = max
		default:
			est = math.Sqrt(summaryBounds[i-1] * summaryBounds[i]) // geometric midpoint
		}
		if est < min {
			est = min
		}
		if est > max {
			est = max
		}
		return est
	}
	return max
}

// Gauge is a settable level (inflight requests, queue depth, pending
// work). Nil-safe like every other handle.
type Gauge struct{ s *series }

// Gauge returns the gauge series for (name, labels), registering it on
// first use. Returns nil (inert) on a nil registry.
func (m *Metrics) Gauge(name, help string, labels ...Attr) *Gauge {
	if m == nil {
		return nil
	}
	return &Gauge{m.seriesFor(name, help, "gauge", nil, labels)}
}

// Set stores the current level.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.sumBits.Store(math.Float64bits(v))
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil || g.s == nil {
		return
	}
	for {
		old := g.s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.sumBits.Load())
}

// Summary is a streaming quantile series handle. Nil-safe.
type Summary struct{ s *series }

// Summary returns the summary series for (name, labels), registering
// it on first use. Returns nil (inert) on a nil registry.
func (m *Metrics) Summary(name, help string, labels ...Attr) *Summary {
	if m == nil {
		return nil
	}
	return &Summary{m.seriesFor(name, help, "summary", nil, labels)}
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	if s == nil || s.s == nil {
		return
	}
	s.s.sk.observe(v)
	s.s.count.Add(1)
	for {
		old := s.s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Quantile estimates the q-th quantile of everything observed so far
// (0 = exact min, 1 = exact max). Zero with no observations.
func (s *Summary) Quantile(q float64) float64 {
	if s == nil || s.s == nil {
		return 0
	}
	return s.s.sk.quantile(q, s.s.count.Load())
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 {
	if s == nil || s.s == nil {
		return 0
	}
	return s.s.count.Load()
}

// Sum returns the running total of observed values.
func (s *Summary) Sum() float64 {
	if s == nil || s.s == nil {
		return 0
	}
	return math.Float64frombits(s.s.sumBits.Load())
}

// Max returns the exact maximum observed value (0 when empty).
func (s *Summary) Max() float64 {
	if s == nil || s.s == nil || s.s.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(s.s.sk.maxBits.Load())
}
