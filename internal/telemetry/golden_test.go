package telemetry_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/odoh"
	"decoupling/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// odohTrace runs the canonical 2-hop ODoH exchange (client → proxy →
// target, two clients) under a fresh tracer and returns the recorded
// trace. Everything that reaches span attributes is deterministic:
// names, entity labels, and message sizes (HPKE keys are random per run
// but key ids are excluded from attrs and ciphertext length depends
// only on the plaintext length). No clock is bound, so all timestamps
// are zero — the whole JSONL file is reproducible byte for byte.
func odohTrace(t *testing.T) *telemetry.Tracer {
	t.Helper()
	tel := telemetry.New("odoh-golden", true, nil)

	zone := dns.NewZone("example.com")
	if err := zone.Add(dnswire.A("www.example.com", 300, [4]byte{192, 0, 2, 1})); err != nil {
		t.Fatal(err)
	}
	if err := zone.Add(dnswire.A("mail.example.com", 300, [4]byte{192, 0, 2, 2})); err != nil {
		t.Fatal(err)
	}
	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{zone}}

	lg := ledger.New(ledger.NewClassifier(), nil)
	target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
	if err != nil {
		t.Fatal(err)
	}
	target.Instrument(tel)
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
	proxy.Instrument(tel)
	keyID, pub := target.KeyConfig()

	for i, q := range []struct{ who, name string }{
		{"client-0", "www.example.com"},
		{"client-1", "mail.example.com"},
	} {
		c := odoh.NewClient(q.who, keyID, pub)
		c.Instrument(tel)
		resp, err := c.Query(q.name, dnswire.TypeA, proxy.Forward)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("query %d: %d answers, want 1", i, len(resp.Answers))
		}
	}
	return tel.Tracer()
}

// TestODoHTraceGolden pins the JSONL trace schema: the exact bytes a
// 2-hop ODoH run exports. Run with -update after an intentional schema
// change.
func TestODoHTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := odohTrace(t).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "odoh_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -run ODoHTraceGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace diverged from golden file:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestODoHTraceShape validates the same trace structurally via the
// strict parser: each query is a 3-deep chain client.query →
// proxy.forward → target.handle with the expected attributes.
func TestODoHTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := odohTrace(t).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("exported trace fails strict parse: %v", err)
	}
	if len(recs) != 6 {
		t.Fatalf("got %d spans, want 6 (3 per query)", len(recs))
	}
	byID := map[uint64]telemetry.SpanRecord{}
	for _, r := range recs {
		if r.Trace != "odoh-golden" {
			t.Errorf("span %d trace = %q", r.Span, r.Trace)
		}
		if r.StartNS != 0 || r.EndNS != 0 {
			t.Errorf("span %d has nonzero time %d..%d; no clock was bound", r.Span, r.StartNS, r.EndNS)
		}
		byID[r.Span] = r
	}
	for q := 0; q < 2; q++ {
		query, forward, handle := recs[3*q], recs[3*q+1], recs[3*q+2]
		if query.Name != "odoh.client.query" || query.Parent != 0 {
			t.Errorf("query %d root span wrong: %+v", q, query)
		}
		if forward.Name != "odoh.proxy.forward" || forward.Parent != query.Span {
			t.Errorf("query %d: proxy span not nested under client: %+v", q, forward)
		}
		if handle.Name != "odoh.target.handle" || handle.Parent != forward.Span {
			t.Errorf("query %d: target span not nested under proxy: %+v", q, handle)
		}
		if forward.Attrs["proxy"] != odoh.ProxyName || forward.Attrs["bytes"] == "" {
			t.Errorf("query %d: forward attrs = %v", q, forward.Attrs)
		}
		if handle.Attrs["target"] != odoh.TargetName ||
			handle.Attrs["name"] != dnswire.CanonicalName(query.Attrs["name"]) {
			t.Errorf("query %d: handle attrs = %v (query attrs %v)", q, handle.Attrs, query.Attrs)
		}
	}
}
