// Package wiretrace is wall-clock distributed tracing with the
// decoupling principle applied to the tracing system itself.
//
// A conventional tracer assigns each request one global trace ID and
// propagates it end-to-end. That ID is a join key: any two vantage
// points that log it can link their observations, which makes the
// observability plane exactly the "single point of trust" the paper
// warns about — a telemetry backend (or any coalition of span stores)
// could re-couple identities to usage that the protocol itself keeps
// decoupled. This package therefore rotates the trace ID at every
// decoupling boundary (ModeRotate): a proxy that re-keys queries also
// re-keys the trace, keeping the old→new linkage only in its local
// span store, exactly as it alone holds the mapping between the
// ciphertexts on its two legs. The deliberately vulnerable ModeNaive
// (one trace ID per request, end-to-end) exists as a planted
// counterexample the trace-plane audit must flag as COUPLED.
//
// Spans carry the observed values their vantage admits to the
// knowledge ledger, so each span store can be replayed as a ledger and
// compared against the protocol's: the trace plane must know exactly
// what the protocol plane knows, no more (see audit.go).
package wiretrace

import (
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// TraceID names one traced request *segment*. Under ModeRotate a
// request accumulates a chain of trace IDs, one per decoupling
// boundary crossed; under ModeNaive a single ID spans the whole path.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits ("" when unset).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// SpanID names one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits ("" when unset).
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// Context is the propagated trace context: what crosses a hop, either
// in the frame codec's trace extension (real transport), the simulated
// message (simnet), or an out-of-band handoff keyed by the message
// bytes (direct-call stacks). 24 bytes on the wire.
type Context struct {
	Trace TraceID
	Span  SpanID // the upstream (parent) span
}

// IsZero reports whether the context carries no trace.
func (c Context) IsZero() bool { return c.Trace.IsZero() && c.Span.IsZero() }

// EncodedLen is the wire size of an encoded Context.
const EncodedLen = 24

// Encode appends the 24-byte wire form.
func (c Context) Encode(dst []byte) []byte {
	dst = append(dst, c.Trace[:]...)
	return append(dst, c.Span[:]...)
}

// MarshalHeader renders the context for text transports (an HTTP
// header): 48 lowercase hex digits.
func (c Context) MarshalHeader() string {
	return hex.EncodeToString(c.Encode(nil))
}

// ParseHeader parses a MarshalHeader rendering.
func ParseHeader(s string) (Context, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return Context{}, fmt.Errorf("wiretrace: bad context header: %w", err)
	}
	if len(b) != EncodedLen {
		return Context{}, fmt.Errorf("wiretrace: context header needs %d bytes, have %d", EncodedLen, len(b))
	}
	return DecodeContext(b)
}

// DecodeContext parses a wire-encoded context prefix of b.
func DecodeContext(b []byte) (Context, error) {
	var c Context
	if len(b) < EncodedLen {
		return c, fmt.Errorf("wiretrace: context needs %d bytes, have %d", EncodedLen, len(b))
	}
	copy(c.Trace[:], b[:16])
	copy(c.Span[:], b[16:24])
	return c, nil
}

// ClientVantage is the shared span-store vantage for traced clients:
// client root spans carry no observed values (a user's knowledge of
// their own query is not an adversarial vantage), and a shared store
// keeps a million-client run from minting a million stores.
const ClientVantage = "client"

// Mode selects the propagation policy.
type Mode uint8

const (
	// ModeOff disables the plane entirely.
	ModeOff Mode = iota
	// ModeRotate re-keys the trace ID at every decoupling boundary;
	// the old→new linkage lives only in the rotating vantage's store.
	ModeRotate
	// ModeNaive propagates one trace ID end-to-end per request — the
	// planted vulnerable configuration the audit must convict.
	ModeNaive
)

// String renders the mode as its flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeRotate:
		return "rotate"
	case ModeNaive:
		return "naive"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -trace-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return ModeOff, nil
	case "rotate":
		return ModeRotate, nil
	case "naive":
		return ModeNaive, nil
	default:
		return ModeOff, fmt.Errorf("wiretrace: unknown mode %q (want off, rotate, or naive)", s)
	}
}

// Value is one observed value mirrored into a span: the same
// (kind, value) pair the vantage admits to the knowledge ledger at the
// same moment. Spans carry values so the span store can be audited as
// a knowledge ledger in its own right.
type Value struct {
	Kind  core.Kind
	Value string
}

// Span is one vantage point's record of handling one message. All
// fields are immutable once End has been called; the Store's lock
// guards mutation before that.
type Span struct {
	Vantage string // observer/entity name, e.g. "Mix 1"
	Name    string // operation, e.g. "mixnet.hop"
	Trace   TraceID
	ID      SpanID
	Parent  SpanID // upstream span (possibly in another vantage's store)
	// RotatedTo is the fresh trace ID this vantage forwarded under
	// (ModeRotate only). The pair (Trace, RotatedTo) is the linkage
	// that exists nowhere but this local store.
	RotatedTo TraceID
	Src, Dst  string
	Start     time.Duration
	End       time.Duration
	Values    []Value
}

// Store is one vantage point's span store. Each vantage accumulates
// its own spans; nothing global holds the cross-vantage linkage.
type Store struct {
	Vantage string

	mu    sync.Mutex
	spans []*Span
}

// Spans returns a snapshot of the store's spans in admission order.
func (s *Store) Spans() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.spans...)
}

// Len reports the number of spans admitted so far.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// Plane is one run's trace plane: the mode, the per-vantage stores,
// and the ID generator. A nil *Plane (or ModeOff) is inert and every
// method is safe to call on it, so instrumented protocol code pays one
// pointer check when tracing is disabled.
type Plane struct {
	mode Mode

	ctr uint64 // atomic splitmix64 state for ID generation

	// sampled, when set, restricts Hop to propagated requests: a zero
	// inbound context means "this request was not sampled at its root"
	// and no span is opened. Root spans are unaffected.
	sampled uint32

	mu     sync.Mutex
	stores map[string]*Store
	clock  func() time.Duration
	// handoff carries contexts across direct-call hops, keyed by the
	// hash of the message bytes both sides hold — an out-of-band stand-
	// in for a wire header. FIFO per key: identical concurrent payloads
	// queue rather than overwrite.
	handoff map[string][]Context
}

// New creates a trace plane. The seed makes ID generation reproducible
// for a given admission order; IDs are opaque either way.
func New(mode Mode, seed int64) *Plane {
	if mode == ModeOff {
		return nil
	}
	return &Plane{
		mode:    mode,
		ctr:     uint64(seed),
		stores:  map[string]*Store{},
		handoff: map[string][]Context{},
	}
}

// Enabled reports whether the plane records anything.
func (p *Plane) Enabled() bool { return p != nil && p.mode != ModeOff }

// Mode returns the propagation policy (ModeOff for a nil plane).
func (p *Plane) Mode() Mode {
	if p == nil {
		return ModeOff
	}
	return p.mode
}

// SetHopSampling restricts span creation to sampled requests: with
// sampling on, a Hop whose inbound context is zero opens no span
// (returns nil), because a zero context at a non-root vantage means
// the request's root was not sampled. Root keeps minting traces. This
// is how a sampled load run keeps the per-request cost off the
// unsampled majority while the sampled slice is traced end to end.
func (p *Plane) SetHopSampling(on bool) {
	if p == nil {
		return
	}
	v := uint32(0)
	if on {
		v = 1
	}
	atomic.StoreUint32(&p.sampled, v)
}

// SetClock installs the timestamp source (a transport's Now, or a
// wall-clock closure in the benchmark harness). Nil-safe; without a
// clock all spans sit at t=0, which the audit ignores.
func (p *Plane) SetClock(clock func() time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.clock = clock
	p.mu.Unlock()
}

func (p *Plane) now() time.Duration {
	p.mu.Lock()
	c := p.clock
	p.mu.Unlock()
	if c == nil {
		return 0
	}
	return c()
}

// next64 draws one splitmix64 output; unique per call within a plane.
func (p *Plane) next64() uint64 {
	x := atomic.AddUint64(&p.ctr, 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (p *Plane) newTrace() TraceID {
	var t TraceID
	a, b := p.next64(), p.next64()
	for i := 0; i < 8; i++ {
		t[i] = byte(a >> (8 * i))
		t[8+i] = byte(b >> (8 * i))
	}
	if t.IsZero() {
		t[0] = 1
	}
	return t
}

func (p *Plane) newSpan() SpanID {
	var s SpanID
	a := p.next64()
	for i := 0; i < 8; i++ {
		s[i] = byte(a >> (8 * i))
	}
	if s.IsZero() {
		s[0] = 1
	}
	return s
}

// store returns (creating if needed) the vantage's span store.
func (p *Plane) store(vantage string) *Store {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.stores[vantage]
	if !ok {
		st = &Store{Vantage: vantage}
		p.stores[vantage] = st
	}
	return st
}

// Stores returns every vantage's store, sorted by vantage name.
func (p *Plane) Stores() []*Store {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]*Store, 0, len(p.stores))
	for _, st := range p.stores {
		out = append(out, st)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Vantage < out[j].Vantage })
	return out
}

// SpanCount reports the total number of spans across all stores.
func (p *Plane) SpanCount() int {
	n := 0
	for _, st := range p.Stores() {
		n += st.Len()
	}
	return n
}

// ActiveSpan is a span still being handled by its vantage. All methods
// are nil-safe so call sites stay unconditional.
type ActiveSpan struct {
	p  *Plane
	st *Store
	s  *Span
}

// Root opens a fresh root span (a client originating a request).
// Returns nil when the plane is disabled.
func (p *Plane) Root(vantage, name, src, dst string) *ActiveSpan {
	if !p.Enabled() {
		return nil
	}
	return p.open(vantage, name, Context{}, src, dst)
}

// Hop opens a span at vantage continuing the inbound context (a fresh
// trace when the context is zero). Returns nil when disabled, or when
// hop sampling is on and the request arrived without a context.
func (p *Plane) Hop(vantage, name string, inbound Context, src, dst string) *ActiveSpan {
	if !p.Enabled() {
		return nil
	}
	if inbound.IsZero() && atomic.LoadUint32(&p.sampled) != 0 {
		return nil
	}
	return p.open(vantage, name, inbound, src, dst)
}

func (p *Plane) open(vantage, name string, inbound Context, src, dst string) *ActiveSpan {
	sp := &Span{
		Vantage: vantage,
		Name:    name,
		Trace:   inbound.Trace,
		ID:      p.newSpan(),
		Parent:  inbound.Span,
		Src:     src,
		Dst:     dst,
		Start:   p.now(),
	}
	if sp.Trace.IsZero() {
		sp.Trace = p.newTrace()
	}
	st := p.store(vantage)
	st.mu.Lock()
	st.spans = append(st.spans, sp)
	st.mu.Unlock()
	return &ActiveSpan{p: p, st: st, s: sp}
}

// Observe mirrors a ledger observation into the span: the vantage's
// trace-plane knowledge must admit exactly what its protocol-plane
// knowledge admits, so the audit can hold the two to equality.
func (a *ActiveSpan) Observe(kind core.Kind, value string) {
	if a == nil {
		return
	}
	a.st.mu.Lock()
	a.s.Values = append(a.s.Values, Value{Kind: kind, Value: value})
	a.st.mu.Unlock()
}

// Context returns the same-trace continuation context (trace
// unchanged, this span as parent) — what a non-boundary hop, or the
// originating client, propagates outbound.
func (a *ActiveSpan) Context() Context {
	if a == nil {
		return Context{}
	}
	return Context{Trace: a.s.Trace, Span: a.s.ID}
}

// Forward returns the outbound context for a decoupling boundary.
// Under ModeRotate the trace ID is re-keyed — the fresh ID is recorded
// as RotatedTo in this span, and nowhere else — so downstream vantages
// share no trace handle with upstream ones. Under ModeNaive it is
// Context(): the global-ID configuration the audit must convict.
// Idempotent: repeated calls return the same context.
func (a *ActiveSpan) Forward() Context {
	if a == nil {
		return Context{}
	}
	if a.p.mode == ModeNaive {
		return a.Context()
	}
	a.st.mu.Lock()
	if a.s.RotatedTo.IsZero() {
		a.s.RotatedTo = a.p.newTrace()
	}
	out := Context{Trace: a.s.RotatedTo, Span: a.s.ID}
	a.st.mu.Unlock()
	return out
}

// End stamps the span's end time. Idempotent.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	t := a.p.now()
	a.st.mu.Lock()
	if a.s.End == 0 {
		a.s.End = t
	}
	if a.s.End < a.s.Start {
		a.s.End = a.s.Start
	}
	a.st.mu.Unlock()
}

// Handoff deposits an outbound context for a direct-call hop, keyed by
// the message bytes both caller and callee hold. This models a wire
// header for in-process protocol legs (the ODoH proxy's function-call
// interface, the DNS resolver chain) without changing their
// signatures: the context travels with the bytes, and only the party
// holding those bytes can claim it.
func (p *Plane) Handoff(payload []byte, ctx Context) {
	if !p.Enabled() || ctx.IsZero() {
		return
	}
	k := ledger.Hash(payload)
	p.mu.Lock()
	p.handoff[k] = append(p.handoff[k], ctx)
	p.mu.Unlock()
}

// TakeHandoff claims (FIFO) a context deposited for these bytes,
// returning the zero Context when none is pending.
func (p *Plane) TakeHandoff(payload []byte) Context {
	if !p.Enabled() {
		return Context{}
	}
	k := ledger.Hash(payload)
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.handoff[k]
	if len(q) == 0 {
		return Context{}
	}
	ctx := q[0]
	if len(q) == 1 {
		delete(p.handoff, k)
	} else {
		p.handoff[k] = q[1:]
	}
	return ctx
}
