package wiretrace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// audit.go holds the trace plane to the decoupling principle: the
// observability layer is itself a set of vantage points, so it gets
// the same adversarial analysis as the protocol. Each vantage's span
// store is replayed as a knowledge ledger — observed values with the
// span's trace IDs as linkage handles — and compared to the protocol
// ledger on two axes:
//
//  1. Knowledge tuples. For every non-user entity, the tuple derived
//     from its span store must not exceed the tuple derived from its
//     protocol observations. For instrumented vantages the audit
//     demands exact equality: the trace plane knows what the protocol
//     knows, no more and no less.
//
//  2. Coalition linkage. For every coalition of non-user entities, the
//     subjects linkable through shared trace handles must be a subset
//     of those linkable through shared protocol handles. A subject the
//     trace plane links that the protocol keeps unlinked is a widening
//     — the tracing system has re-coupled what the architecture
//     decoupled — and the verdict is COUPLED.
//
// Under ModeRotate both axes hold by construction: a trace ID names
// one link, so the handle graph of the trace ledger is isomorphic to
// the protocol's hop-local wire-byte hashes. Under ModeNaive one trace
// ID spans the path, handing (for example) a mixnet's entry mix and
// its receiver — or an ODoH proxy and the origin — a join key the
// protocol never gives them. The audit exists to convict exactly that.

// EntityAudit compares one entity's two knowledge tuples.
type EntityAudit struct {
	Name         string
	Instrumented bool // has at least one span
	Proto        core.Tuple
	Trace        core.Tuple
	// Widened: the trace tuple holds a component above the protocol
	// tuple — the trace plane leaked knowledge. Always a violation.
	Widened bool
	// Narrowed: the trace tuple is strictly below the protocol tuple.
	// Legal (sampling, uninstrumented vantages) but reported.
	Narrowed bool
}

// CoalitionLeak is one subject a coalition links via trace handles but
// not via protocol handles.
type CoalitionLeak struct {
	Coalition []string
	Subject   string
}

// Report is the trace-plane audit outcome.
type Report struct {
	Mode      Mode
	Spans     int
	Entities  []EntityAudit
	Leaks     []CoalitionLeak
	Decoupled bool
}

// maxCoalitionEntities bounds the power-set sweep; every E1–E9 system
// has at most a handful of non-user entities.
const maxCoalitionEntities = 16

// Audit replays the plane's span stores as a knowledge ledger and
// holds it to the protocol ledger's knowledge, entity by entity and
// coalition by coalition. expected supplies the entity set and the
// per-entity tuple templates (the same ones the protocol's measured
// tuples derive against).
func Audit(p *Plane, lg *ledger.Ledger, expected *core.System) (*Report, error) {
	if !p.Enabled() {
		return nil, fmt.Errorf("wiretrace: audit needs an enabled trace plane")
	}
	if lg == nil || expected == nil {
		return nil, fmt.Errorf("wiretrace: audit needs a protocol ledger and an expected system")
	}
	traceLG := TraceLedger(p, lg.Classifier())

	rep := &Report{Mode: p.Mode(), Spans: p.SpanCount(), Decoupled: true}

	var names []string
	for _, e := range expected.Entities {
		if e.User {
			continue
		}
		names = append(names, e.Name)
		ent := EntityAudit{
			Name:         e.Name,
			Instrumented: storeHasSpans(p, e.Name),
			Proto:        lg.DeriveTuple(e.Name, e.Knows),
			Trace:        traceLG.DeriveTuple(e.Name, e.Knows),
		}
		ent.Widened, ent.Narrowed = compareTuples(ent.Proto, ent.Trace)
		if ent.Widened {
			rep.Decoupled = false
		}
		rep.Entities = append(rep.Entities, ent)
	}

	if len(names) > maxCoalitionEntities {
		return nil, fmt.Errorf("wiretrace: %d entities exceeds the %d-entity coalition sweep bound",
			len(names), maxCoalitionEntities)
	}
	sort.Strings(names)
	protoObs := lg.Observations()
	traceObs := traceLG.Observations()
	for mask := 1; mask < 1<<len(names); mask++ {
		var coalition []string
		for i, n := range names {
			if mask&(1<<i) != 0 {
				coalition = append(coalition, n)
			}
		}
		protoLinked := linkedSet(protoObs, coalition)
		for _, r := range adversary.LinkSubjects(traceObs, coalition) {
			if r.Linked && !protoLinked[r.Subject] {
				rep.Leaks = append(rep.Leaks, CoalitionLeak{Coalition: coalition, Subject: r.Subject})
				rep.Decoupled = false
			}
		}
	}
	sort.Slice(rep.Leaks, func(i, j int) bool {
		a, b := rep.Leaks[i], rep.Leaks[j]
		if len(a.Coalition) != len(b.Coalition) {
			return len(a.Coalition) < len(b.Coalition)
		}
		ac, bc := strings.Join(a.Coalition, ","), strings.Join(b.Coalition, ",")
		if ac != bc {
			return ac < bc
		}
		return a.Subject < b.Subject
	})
	return rep, nil
}

// TraceLedger converts the plane's span stores into a knowledge
// ledger: every observed value becomes an observation by its vantage,
// with the span's trace IDs as the linkage handles. The classifier is
// shared with the protocol ledger so sensitivity and subjects match.
func TraceLedger(p *Plane, cls *ledger.Classifier) *ledger.Ledger {
	traceLG := ledger.New(cls, nil)
	if !p.Enabled() {
		return traceLG
	}
	for _, st := range p.Stores() {
		var entries []ledger.Entry
		for _, sp := range st.Spans() {
			if len(sp.Values) == 0 {
				continue
			}
			handles := []string{sp.Trace.String()}
			if !sp.RotatedTo.IsZero() {
				handles = append(handles, sp.RotatedTo.String())
			}
			for _, v := range sp.Values {
				entries = append(entries, ledger.Entry{Kind: v.Kind, Value: v.Value, Handles: handles})
			}
		}
		if len(entries) > 0 {
			traceLG.SawBatch(st.Vantage, entries)
		}
	}
	return traceLG
}

func storeHasSpans(p *Plane, vantage string) bool {
	for _, st := range p.Stores() {
		if st.Vantage == vantage {
			return st.Len() > 0
		}
	}
	return false
}

func linkedSet(obs []ledger.Observation, coalition []string) map[string]bool {
	out := map[string]bool{}
	for _, r := range adversary.LinkSubjects(obs, coalition) {
		if r.Linked {
			out[r.Subject] = true
		}
	}
	return out
}

// compareTuples reports whether trace exceeds proto on any component
// (widened) and whether it falls below on any (narrowed). The tuples
// derive from the same template, so components align positionally;
// defensively, a length mismatch counts as both.
func compareTuples(proto, trace core.Tuple) (widened, narrowed bool) {
	n := len(proto)
	if len(trace) != len(proto) {
		widened, narrowed = true, true
		if len(trace) < n {
			n = len(trace)
		}
	}
	for i := 0; i < n; i++ {
		if trace[i].Level > proto[i].Level {
			widened = true
		}
		if trace[i].Level < proto[i].Level {
			narrowed = true
		}
	}
	return widened, narrowed
}

// WriteReport renders the audit deterministically.
func (r *Report) WriteReport(w io.Writer) {
	verdict := "DECOUPLED"
	if !r.Decoupled {
		verdict = "COUPLED"
	}
	fmt.Fprintf(w, "trace-plane audit: mode=%s spans=%d verdict=%s\n", r.Mode, r.Spans, verdict)
	for _, e := range r.Entities {
		status := "equal"
		switch {
		case e.Widened:
			status = "WIDENED"
		case !e.Instrumented:
			status = "uninstrumented"
		case e.Narrowed:
			status = "narrowed"
		}
		fmt.Fprintf(w, "  %-22s proto=%s trace=%s %s\n", e.Name, e.Proto.Symbol(), e.Trace.Symbol(), status)
	}
	for _, l := range r.Leaks {
		fmt.Fprintf(w, "  LEAK coalition {%s} links subject %s via trace handles only\n",
			strings.Join(l.Coalition, ", "), l.Subject)
	}
}
