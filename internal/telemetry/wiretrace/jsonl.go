package wiretrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"decoupling/internal/core"
)

// SchemaV1 is the version tag every span line carries.
const SchemaV1 = "decoupling-wirespan/v1"

// ValueRecord is the JSONL form of an observed value.
type ValueRecord struct {
	Kind  string `json:"kind"`
	Value string `json:"value"`
}

// Record is the JSONL form of one span. Field order is fixed by the
// struct, so rendering is deterministic for a given span sequence.
type Record struct {
	V         string        `json:"v"`
	Mode      string        `json:"mode"`
	Vantage   string        `json:"vantage"`
	Name      string        `json:"name"`
	Trace     string        `json:"trace"`
	Span      string        `json:"span"`
	Parent    string        `json:"parent,omitempty"`
	RotatedTo string        `json:"rotated_to,omitempty"`
	Src       string        `json:"src,omitempty"`
	Dst       string        `json:"dst,omitempty"`
	StartNS   int64         `json:"start_ns"`
	EndNS     int64         `json:"end_ns"`
	Values    []ValueRecord `json:"values,omitempty"`
}

func record(mode Mode, sp *Span) Record {
	r := Record{
		V:         SchemaV1,
		Mode:      mode.String(),
		Vantage:   sp.Vantage,
		Name:      sp.Name,
		Trace:     sp.Trace.String(),
		Span:      sp.ID.String(),
		Parent:    sp.Parent.String(),
		RotatedTo: sp.RotatedTo.String(),
		Src:       sp.Src,
		Dst:       sp.Dst,
		StartNS:   int64(sp.Start),
		EndNS:     int64(sp.End),
	}
	if r.EndNS < r.StartNS {
		// A span cut off mid-handling (error-exit flush) still renders
		// as a valid zero-length interval.
		r.EndNS = r.StartNS
	}
	for _, v := range sp.Values {
		r.Values = append(r.Values, ValueRecord{Kind: v.Kind.String(), Value: v.Value})
	}
	return r
}

// WriteJSONL renders every store's spans as strict JSONL: stores in
// vantage order, spans in admission order, one object per line.
func WriteJSONL(w io.Writer, p *Plane) error {
	if !p.Enabled() {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, st := range p.Stores() {
		for _, sp := range st.Spans() {
			if err := enc.Encode(record(p.Mode(), sp)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseJSONL strictly decodes a span JSONL stream: every line must be
// a well-formed record with the v1 schema tag, valid hex IDs, a
// consistent mode, and end >= start. Structural cross-span invariants
// are Check's job.
func ParseJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var recs []Record
	mode := ""
	for n := 1; sc.Scan(); n++ {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			return nil, fmt.Errorf("wiretrace: line %d: empty line", n)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("wiretrace: line %d: %w", n, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("wiretrace: line %d: trailing data after span object", n)
		}
		if rec.V != SchemaV1 {
			return nil, fmt.Errorf("wiretrace: line %d: schema %q, want %q", n, rec.V, SchemaV1)
		}
		if _, err := ParseMode(rec.Mode); err != nil || rec.Mode == "off" || rec.Mode == "" {
			return nil, fmt.Errorf("wiretrace: line %d: bad mode %q", n, rec.Mode)
		}
		if mode == "" {
			mode = rec.Mode
		} else if rec.Mode != mode {
			return nil, fmt.Errorf("wiretrace: line %d: mode %q conflicts with earlier %q", n, rec.Mode, mode)
		}
		if rec.Vantage == "" || rec.Name == "" {
			return nil, fmt.Errorf("wiretrace: line %d: missing vantage or name", n)
		}
		if len(rec.Trace) != 32 || !isHex(rec.Trace) {
			return nil, fmt.Errorf("wiretrace: line %d: bad trace id %q", n, rec.Trace)
		}
		if len(rec.Span) != 16 || !isHex(rec.Span) {
			return nil, fmt.Errorf("wiretrace: line %d: bad span id %q", n, rec.Span)
		}
		if rec.Parent != "" && (len(rec.Parent) != 16 || !isHex(rec.Parent)) {
			return nil, fmt.Errorf("wiretrace: line %d: bad parent id %q", n, rec.Parent)
		}
		if rec.RotatedTo != "" && (len(rec.RotatedTo) != 32 || !isHex(rec.RotatedTo)) {
			return nil, fmt.Errorf("wiretrace: line %d: bad rotated_to id %q", n, rec.RotatedTo)
		}
		if rec.EndNS < rec.StartNS {
			return nil, fmt.Errorf("wiretrace: line %d: span ends (%d) before it starts (%d)", n, rec.EndNS, rec.StartNS)
		}
		for _, v := range rec.Values {
			if v.Kind != core.Identity.String() && v.Kind != core.Data.String() {
				return nil, fmt.Errorf("wiretrace: line %d: bad value kind %q", n, v.Kind)
			}
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Check validates the cross-span invariants of a parsed artifact:
//
//   - span IDs are unique;
//   - every parent reference resolves within the artifact, and a child
//     never starts before its parent (causality);
//   - a child whose parent lives at the same vantage nests inside the
//     parent's interval (cross-vantage children only start later — the
//     gap is queueing plus the wire);
//   - in rotate mode, every cross-vantage edge either keeps the parent's
//     trace (a non-boundary hop) or continues the parent's recorded
//     rotation, no trace ID is shared by more than two vantages, and at
//     least one rotation exists whenever a request crosses two or more
//     boundaries — the "rotation boundaries present" guarantee;
//   - in naive mode, no span records a rotation.
func Check(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	byID := make(map[string]*Record, len(recs))
	for i := range recs {
		r := &recs[i]
		if prev, dup := byID[r.Span]; dup {
			return fmt.Errorf("wiretrace: duplicate span id %s (vantages %s and %s)", r.Span, prev.Vantage, r.Vantage)
		}
		byID[r.Span] = r
	}
	rotate := recs[0].Mode == ModeRotate.String()
	traceVantages := map[string]map[string]bool{}
	note := func(trace, vantage string) {
		vs, ok := traceVantages[trace]
		if !ok {
			vs = map[string]bool{}
			traceVantages[trace] = vs
		}
		vs[vantage] = true
	}
	rotations, chains := 0, 0
	for i := range recs {
		r := &recs[i]
		note(r.Trace, r.Vantage)
		if r.RotatedTo != "" {
			if !rotate {
				return fmt.Errorf("wiretrace: span %s at %s rotates in %s mode", r.Span, r.Vantage, r.Mode)
			}
			rotations++
			note(r.RotatedTo, r.Vantage)
		}
		if r.Parent == "" {
			continue
		}
		par, ok := byID[r.Parent]
		if !ok {
			return fmt.Errorf("wiretrace: span %s at %s has unresolved parent %s", r.Span, r.Vantage, r.Parent)
		}
		if r.StartNS < par.StartNS {
			return fmt.Errorf("wiretrace: span %s starts before its parent %s", r.Span, r.Parent)
		}
		if r.Vantage == par.Vantage {
			if r.StartNS < par.StartNS || r.EndNS > par.EndNS {
				return fmt.Errorf("wiretrace: span %s does not nest inside same-vantage parent %s", r.Span, r.Parent)
			}
		}
		if par.Vantage != r.Vantage {
			if par.Parent != "" {
				if gp, ok := byID[par.Parent]; ok && gp.Vantage != par.Vantage {
					chains++
				}
			}
			if rotate {
				switch r.Trace {
				case par.Trace, par.RotatedTo:
					// pass-through or the parent's recorded rotation
				default:
					return fmt.Errorf("wiretrace: span %s trace %s matches neither parent %s's trace nor its rotation",
						r.Span, r.Trace, r.Parent)
				}
			}
		}
	}
	if rotate {
		for trace, vs := range traceVantages {
			if len(vs) > 2 {
				names := make([]string, 0, len(vs))
				for v := range vs {
					names = append(names, v)
				}
				return fmt.Errorf("wiretrace: rotate mode but trace %s spans %d vantages (%s) — a trace ID must name one link",
					trace, len(vs), strings.Join(names, ", "))
			}
		}
		if chains > 0 && rotations == 0 {
			return fmt.Errorf("wiretrace: rotate mode with %d multi-boundary chains but no rotation recorded", chains)
		}
	}
	return nil
}

// Stats summarizes an artifact for human output.
type Stats struct {
	Spans     int
	Vantages  int
	Traces    int
	Roots     int
	Rotations int
	Mode      string
	WallSpan  time.Duration // max end - min start
}

// Summarize computes artifact statistics.
func Summarize(recs []Record) Stats {
	st := Stats{Spans: len(recs)}
	if len(recs) == 0 {
		return st
	}
	st.Mode = recs[0].Mode
	vantages := map[string]bool{}
	traces := map[string]bool{}
	minStart, maxEnd := recs[0].StartNS, recs[0].EndNS
	for _, r := range recs {
		vantages[r.Vantage] = true
		traces[r.Trace] = true
		if r.Parent == "" {
			st.Roots++
		}
		if r.RotatedTo != "" {
			st.Rotations++
			traces[r.RotatedTo] = true
		}
		if r.StartNS < minStart {
			minStart = r.StartNS
		}
		if r.EndNS > maxEnd {
			maxEnd = r.EndNS
		}
	}
	st.Vantages = len(vantages)
	st.Traces = len(traces)
	st.WallSpan = time.Duration(maxEnd - minStart)
	return st
}
