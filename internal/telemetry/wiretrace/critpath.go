package wiretrace

import (
	"fmt"
	"sort"
	"time"
)

// critpath.go: the per-request critical-path analyzer. A traced
// request is a chain of spans linked by Parent references (which cross
// trace-ID rotations: the span IDs stitch, the trace IDs deliberately
// don't). Stitching is an *operator* capability — it requires every
// vantage's store at once, which is exactly the full-coalition view —
// so it lives here in analysis code, never in any single vantage.
//
// For each root-to-leaf chain the request's wall time decomposes into
// alternating segments: time inside a span (a vantage handling the
// message) and the gap between a parent ending and a child starting
// (queueing — e.g. a mix batching — plus the wire). The dominant
// segment is the critical hop: where this request actually spent its
// latency.

// Segment is one leg of a request's critical path.
type Segment struct {
	// Label names the leg: "Mix 1/mixnet.hop" for time inside a span,
	// "Mix 1 → Mix 2" for the gap between them.
	Label string
	Dur   time.Duration
}

// Path is one stitched request chain.
type Path struct {
	Trace    string // root trace ID (request identifier for exemplars)
	Total    time.Duration
	Hops     int
	Dominant Segment
}

// Paths stitches all stores and returns one Path per root span that
// leads at least one child, sorted by total duration descending.
func Paths(stores []*Store) []Path {
	byID := map[SpanID]*Span{}
	children := map[SpanID][]*Span{}
	roots := []*Span{}
	for _, st := range stores {
		for _, sp := range st.Spans() {
			byID[sp.ID] = sp
		}
	}
	for _, sp := range byID {
		if !sp.Parent.IsZero() && byID[sp.Parent] != nil {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool { return cs[i].ID.String() < cs[j].ID.String() })
	}
	var out []Path
	for _, root := range roots {
		if len(children[root.ID]) == 0 {
			continue
		}
		chain := longestChain(root, children)
		p := Path{Trace: root.Trace.String(), Hops: len(chain)}
		last := chain[len(chain)-1]
		end := last.End
		if end < last.Start {
			end = last.Start
		}
		p.Total = end - root.Start
		for i, sp := range chain {
			spanEnd := sp.End
			if spanEnd < sp.Start {
				spanEnd = sp.Start
			}
			seg := Segment{Label: sp.Vantage + "/" + sp.Name, Dur: spanEnd - sp.Start}
			if seg.Dur > p.Dominant.Dur {
				p.Dominant = seg
			}
			if i+1 < len(chain) {
				next := chain[i+1]
				if gap := next.Start - spanEnd; gap > p.Dominant.Dur {
					p.Dominant = Segment{Label: sp.Vantage + " → " + next.Vantage, Dur: gap}
				}
			}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// longestChain walks from root to the leaf with the latest end time.
func longestChain(root *Span, children map[SpanID][]*Span) []*Span {
	chain := []*Span{root}
	cur := root
	for {
		next := children[cur.ID]
		if len(next) == 0 {
			return chain
		}
		best := next[0]
		for _, c := range next[1:] {
			if c.End > best.End {
				best = c
			}
		}
		chain = append(chain, best)
		cur = best
	}
}

// Exemplar ties a latency to a concrete trace so slow percentiles in a
// summary link to an inspectable request.
type Exemplar struct {
	Trace      string  `json:"trace"`
	TotalMs    float64 `json:"total_ms"`
	Dominant   string  `json:"dominant"`
	DominantMs float64 `json:"dominant_ms"`
}

// CritSummary aggregates the critical-path analysis over a run.
type CritSummary struct {
	Requests int `json:"requests"`
	// DominantCounts histograms which leg dominated each request.
	DominantCounts map[string]int `json:"dominant_counts"`
	// Slowest holds exemplars for the slowest requests, descending.
	Slowest []Exemplar `json:"slowest,omitempty"`
}

// SummarizeCritical runs the analyzer over the plane and keeps topK
// slowest exemplars. Returns nil when nothing was stitched.
func SummarizeCritical(p *Plane, topK int) *CritSummary {
	if !p.Enabled() {
		return nil
	}
	paths := Paths(p.Stores())
	if len(paths) == 0 {
		return nil
	}
	s := &CritSummary{Requests: len(paths), DominantCounts: map[string]int{}}
	for _, pt := range paths {
		s.DominantCounts[pt.Dominant.Label]++
	}
	for i := 0; i < len(paths) && i < topK; i++ {
		pt := paths[i]
		s.Slowest = append(s.Slowest, Exemplar{
			Trace:      pt.Trace,
			TotalMs:    float64(pt.Total.Nanoseconds()) / 1e6,
			Dominant:   pt.Dominant.Label,
			DominantMs: float64(pt.Dominant.Dur.Nanoseconds()) / 1e6,
		})
	}
	return s
}

// String renders the summary as a short human block for loadgen output.
func (s *CritSummary) String() string {
	if s == nil {
		return ""
	}
	type kv struct {
		label string
		n     int
	}
	var ks []kv
	for l, n := range s.DominantCounts {
		ks = append(ks, kv{l, n})
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].n != ks[j].n {
			return ks[i].n > ks[j].n
		}
		return ks[i].label < ks[j].label
	})
	out := fmt.Sprintf("critical path over %d stitched requests:\n", s.Requests)
	for i, k := range ks {
		if i == 5 {
			out += fmt.Sprintf("  … %d more legs\n", len(ks)-5)
			break
		}
		out += fmt.Sprintf("  dominant %-28s %6d requests (%.1f%%)\n",
			k.label, k.n, 100*float64(k.n)/float64(s.Requests))
	}
	for i, ex := range s.Slowest {
		if i == 3 {
			break
		}
		out += fmt.Sprintf("  slowest #%d: trace %s total %.2fms dominated by %s (%.2fms)\n",
			i+1, ex.Trace, ex.TotalMs, ex.Dominant, ex.DominantMs)
	}
	return out
}
