package wiretrace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// perfetto.go renders span stores in the Chrome trace_event JSON
// format (the "JSON Array Format" both chrome://tracing and Perfetto
// ingest): one complete "X" event per span, one synthetic process, and
// one named thread per vantage so each vantage's spans land on their
// own track.

type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type perfettoDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	DisplayUnit string       `json:"displayTimeUnit"`
}

// WritePerfetto renders the plane's spans as a trace_event document.
// Vantages map to threads in sorted order; timestamps are the plane's
// clock in microseconds.
func WritePerfetto(w io.Writer, p *Plane) error {
	doc := perfettoDoc{DisplayUnit: "ms", TraceEvents: []traceEvent{}}
	if p.Enabled() {
		stores := p.Stores()
		sort.Slice(stores, func(i, j int) bool { return stores[i].Vantage < stores[j].Vantage })
		for tid, st := range stores {
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid + 1,
				Args: map[string]string{"name": st.Vantage},
			})
			for _, sp := range st.Spans() {
				end := sp.End
				if end < sp.Start {
					end = sp.Start
				}
				ev := traceEvent{
					Name: sp.Name,
					Cat:  "wiretrace",
					Ph:   "X",
					TS:   float64(sp.Start.Nanoseconds()) / 1e3,
					Dur:  float64((end - sp.Start).Nanoseconds()) / 1e3,
					PID:  1,
					TID:  tid + 1,
					Args: map[string]string{
						"trace": sp.Trace.String(),
						"span":  sp.ID.String(),
					},
				}
				if !sp.Parent.IsZero() {
					ev.Args["parent"] = sp.Parent.String()
				}
				if !sp.RotatedTo.IsZero() {
					ev.Args["rotated_to"] = sp.RotatedTo.String()
				}
				doc.TraceEvents = append(doc.TraceEvents, ev)
			}
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}
