package wiretrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"decoupling/internal/core"
)

// fakeClock returns a monotonically increasing clock stepping 1ms per
// call, so spans get distinct, ordered timestamps.
func fakeClock() func() time.Duration {
	var t time.Duration
	return func() time.Duration {
		t += time.Millisecond
		return t
	}
}

func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	if p.Enabled() {
		t.Fatal("nil plane reports enabled")
	}
	if p.Mode() != ModeOff {
		t.Fatalf("nil plane mode = %v", p.Mode())
	}
	p.SetClock(func() time.Duration { return 1 })
	p.Handoff([]byte("x"), Context{Trace: TraceID{1}})
	if !p.TakeHandoff([]byte("x")).IsZero() {
		t.Fatal("nil plane returned a handoff context")
	}
	sp := p.Hop("v", "op", Context{}, "", "")
	if sp != nil {
		t.Fatal("nil plane opened a span")
	}
	sp.Observe(core.Identity, "x")
	if !sp.Context().IsZero() || !sp.Forward().IsZero() {
		t.Fatal("nil span produced a context")
	}
	sp.End()
	if New(ModeOff, 1) != nil {
		t.Fatal("New(ModeOff) is not nil")
	}
}

func TestRotateForwardMintsFreshTrace(t *testing.T) {
	p := New(ModeRotate, 1)
	root := p.Root("client", "send", "c", "m")
	in := root.Context()
	hop := p.Hop("Mix 1", "hop", in, "c", "m2")
	out := hop.Forward()
	if out.Trace == in.Trace {
		t.Fatal("rotate-mode Forward kept the inbound trace ID")
	}
	if out.Trace.IsZero() {
		t.Fatal("rotate-mode Forward minted a zero trace")
	}
	if out.Span != hop.s.ID {
		t.Fatal("Forward parent is not the rotating span")
	}
	// Idempotent: the rotation is minted once.
	if again := hop.Forward(); again != out {
		t.Fatalf("Forward not idempotent: %+v then %+v", out, again)
	}
	// The linkage lives only in the local span.
	if hop.s.RotatedTo != out.Trace {
		t.Fatal("rotation not recorded in the local span")
	}
	if root.s.RotatedTo != (TraceID{}) {
		t.Fatal("rotation leaked into the upstream span")
	}
}

func TestNaiveForwardKeepsGlobalTrace(t *testing.T) {
	p := New(ModeNaive, 1)
	root := p.Root("client", "send", "c", "m")
	hop := p.Hop("Mix 1", "hop", root.Context(), "c", "m2")
	if hop.Forward() != hop.Context() {
		t.Fatal("naive-mode Forward differs from Context")
	}
	if hop.Forward().Trace != root.Context().Trace {
		t.Fatal("naive-mode trace ID changed across the hop")
	}
	if hop.s.RotatedTo != (TraceID{}) {
		t.Fatal("naive mode recorded a rotation")
	}
}

func TestHopSampling(t *testing.T) {
	p := New(ModeRotate, 2)
	p.SetHopSampling(true)
	if p.Hop("Mix 1", "hop", Context{}, "", "") != nil {
		t.Fatal("sampled plane opened a span for an uncontexted hop")
	}
	root := p.Root("client", "send", "", "")
	if root == nil {
		t.Fatal("sampled plane refused a root span")
	}
	if p.Hop("Mix 1", "hop", root.Context(), "", "") == nil {
		t.Fatal("sampled plane refused a propagated hop")
	}
	p.SetHopSampling(false)
	if p.Hop("Mix 1", "hop", Context{}, "", "") == nil {
		t.Fatal("unsampled plane refused an uncontexted hop")
	}
}

func TestHandoffFIFO(t *testing.T) {
	p := New(ModeRotate, 3)
	payload := []byte("same bytes")
	a := Context{Trace: TraceID{1}, Span: SpanID{1}}
	b := Context{Trace: TraceID{2}, Span: SpanID{2}}
	p.Handoff(payload, a)
	p.Handoff(payload, b)
	if got := p.TakeHandoff(payload); got != a {
		t.Fatalf("first take = %+v, want %+v", got, a)
	}
	if got := p.TakeHandoff(payload); got != b {
		t.Fatalf("second take = %+v, want %+v", got, b)
	}
	if !p.TakeHandoff(payload).IsZero() {
		t.Fatal("drained queue returned a context")
	}
	// Zero contexts are never deposited.
	p.Handoff(payload, Context{})
	if !p.TakeHandoff(payload).IsZero() {
		t.Fatal("zero context was deposited")
	}
}

func TestContextHeaderRoundTrip(t *testing.T) {
	c := Context{Trace: TraceID{0xAB, 1, 2}, Span: SpanID{0xCD, 3}}
	got, err := ParseHeader(c.MarshalHeader())
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if got != c {
		t.Fatalf("round trip mismatch: %+v != %+v", got, c)
	}
	for _, bad := range []string{"", "zz", strings.Repeat("ab", EncodedLen-1), strings.Repeat("ab", EncodedLen+1), "not hex at all"} {
		if _, err := ParseHeader(bad); err == nil {
			t.Errorf("ParseHeader(%q) accepted", bad)
		}
	}
}

// tracedChain drives a three-vantage request through the plane:
// client root → Mix 1 (rotates) → Receiver.
func tracedChain(p *Plane) {
	root := p.Root(ClientVantage, "send", "client", "Mix 1")
	defer root.End()
	hop := p.Hop("Mix 1", "hop", root.Context(), "client", "Receiver")
	hop.Observe(core.Identity, "client")
	out := hop.Forward()
	hop.End()
	leaf := p.Hop("Receiver", "deliver", out, "Mix 1", "")
	leaf.Observe(core.Data, "payload")
	leaf.End()
}

func TestJSONLRoundTripAndCheck(t *testing.T) {
	p := New(ModeRotate, 5)
	p.SetClock(fakeClock())
	tracedChain(p)
	tracedChain(p)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, p); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	recs, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if len(recs) != 6 {
		t.Fatalf("parsed %d spans, want 6", len(recs))
	}
	if err := Check(recs); err != nil {
		t.Fatalf("Check: %v", err)
	}
	st := Summarize(recs)
	if st.Spans != 6 || st.Roots != 2 || st.Rotations != 2 || st.Mode != "rotate" {
		t.Fatalf("summary %+v", st)
	}
	// 2 requests × (client trace + rotated trace) = 4 distinct traces.
	if st.Traces != 4 {
		t.Fatalf("summary counted %d traces, want 4", st.Traces)
	}
}

func TestParseJSONLStrictness(t *testing.T) {
	p := New(ModeRotate, 5)
	tracedChain(p)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := strings.TrimRight(buf.String(), "\n")
	lines := strings.Split(good, "\n")

	mutate := func(find, replace string) string {
		return strings.Replace(good, find, replace, 1)
	}
	cases := map[string]string{
		"empty line":     lines[0] + "\n\n" + lines[1],
		"unknown field":  mutate(`"v":`, `"extra":1,"v":`),
		"bad schema":     mutate(SchemaV1, "wirespan/v0"),
		"bad mode":       mutate(`"mode":"rotate"`, `"mode":"loud"`),
		"mixed modes":    lines[0] + "\n" + strings.Replace(lines[1], `"mode":"rotate"`, `"mode":"naive"`, 1),
		"bad trace hex":  mutate(`"trace":"`, `"trace":"ZZ`),
		"trailing junk":  lines[0] + " {}\n" + lines[1],
		"not json":       "span data\n",
		"missing fields": `{"v":"` + SchemaV1 + `","mode":"rotate","trace":"` + strings.Repeat("a", 32) + `","span":"` + strings.Repeat("b", 16) + `","start_ns":0,"end_ns":0}`,
	}
	for name, in := range cases {
		if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseJSONL(strings.NewReader(good + "\n")); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
}

func TestCheckInvariants(t *testing.T) {
	base := func() []Record {
		p := New(ModeRotate, 5)
		p.SetClock(fakeClock())
		tracedChain(p)
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, p); err != nil {
			t.Fatal(err)
		}
		recs, err := ParseJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	recs := base()
	if err := Check(recs); err != nil {
		t.Fatalf("valid artifact failed Check: %v", err)
	}

	// Duplicate span ID.
	dup := base()
	dup[1].Span = dup[0].Span
	if err := Check(dup); err == nil || !strings.Contains(err.Error(), "duplicate span") {
		t.Errorf("duplicate span id: %v", err)
	}

	// Unresolved parent.
	orphan := base()
	for i := range orphan {
		if orphan[i].Parent != "" {
			orphan[i].Parent = strings.Repeat("f", 16)
			break
		}
	}
	if err := Check(orphan); err == nil || !strings.Contains(err.Error(), "unresolved parent") {
		t.Errorf("unresolved parent: %v", err)
	}

	// A trace ID shared by three vantages violates rotate mode.
	wide := base()
	shared := wide[0].Trace
	for i := range wide {
		wide[i].Trace = shared
		wide[i].RotatedTo = ""
	}
	if err := Check(wide); err == nil || !strings.Contains(err.Error(), "vantages") {
		t.Errorf("three-vantage trace: %v", err)
	}

	// Naive artifacts must not record rotations.
	p := New(ModeNaive, 5)
	tracedChain(p)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, p); err != nil {
		t.Fatal(err)
	}
	naive, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(naive); err != nil {
		t.Fatalf("naive artifact failed Check: %v", err)
	}
	naive[0].RotatedTo = strings.Repeat("a", 32)
	if err := Check(naive); err == nil || !strings.Contains(err.Error(), "rotates in") {
		t.Errorf("rotation in naive mode: %v", err)
	}
}

func TestCriticalPath(t *testing.T) {
	p := New(ModeRotate, 9)
	// Hand-placed timestamps: client 0–1ms, hop 2–3ms, deliver 9–10ms.
	// The dominant leg is the 6ms Mix 1 → Receiver gap (mix batching).
	times := []time.Duration{0, 2 * time.Millisecond, 9 * time.Millisecond,
		10 * time.Millisecond, 3 * time.Millisecond, 1 * time.Millisecond}
	i := 0
	p.SetClock(func() time.Duration { t := times[i%len(times)]; i++; return t })

	root := p.Hop(ClientVantage, "send", Context{}, "client", "Mix 1")
	hop := p.Hop("Mix 1", "hop", root.Context(), "client", "Receiver")
	leaf := p.Hop("Receiver", "deliver", hop.Forward(), "Mix 1", "")
	leaf.End()
	hop.End()
	root.End()

	paths := Paths(p.Stores())
	if len(paths) != 1 {
		t.Fatalf("stitched %d paths, want 1", len(paths))
	}
	pt := paths[0]
	if pt.Hops != 3 {
		t.Errorf("chain has %d hops, want 3", pt.Hops)
	}
	if pt.Total != 10*time.Millisecond {
		t.Errorf("total = %v, want 10ms", pt.Total)
	}
	if pt.Dominant.Label != "Mix 1 → Receiver" || pt.Dominant.Dur != 6*time.Millisecond {
		t.Errorf("dominant = %+v, want Mix 1 → Receiver 6ms", pt.Dominant)
	}
	if pt.Trace != root.s.Trace.String() {
		t.Errorf("path trace %s is not the root's trace", pt.Trace)
	}

	sum := SummarizeCritical(p, 3)
	if sum == nil || sum.Requests != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.DominantCounts["Mix 1 → Receiver"] != 1 {
		t.Errorf("dominant counts %+v", sum.DominantCounts)
	}
	if len(sum.Slowest) != 1 || sum.Slowest[0].Trace != pt.Trace {
		t.Errorf("exemplars %+v", sum.Slowest)
	}
	if !strings.Contains(sum.String(), "Mix 1 → Receiver") {
		t.Errorf("rendered summary misses the dominant leg:\n%s", sum.String())
	}
}

func TestPerfettoShape(t *testing.T) {
	p := New(ModeRotate, 13)
	p.SetClock(fakeClock())
	tracedChain(p)

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, p); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayUnit)
	}
	threads, complete, rotated := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			threads++
		case "X":
			complete++
			if ev.Args["trace"] == "" || ev.Args["span"] == "" {
				t.Errorf("X event %q missing trace/span args", ev.Name)
			}
			if ev.Args["rotated_to"] != "" {
				rotated++
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	// 3 vantages (client, Mix 1, Receiver) and 3 spans, one rotation.
	if threads != 3 || complete != 3 || rotated != 1 {
		t.Errorf("threads=%d complete=%d rotated=%d, want 3/3/1", threads, complete, rotated)
	}
}
