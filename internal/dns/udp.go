package dns

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"decoupling/internal/dnswire"
)

// This file puts the resolver on a real UDP socket, RFC 1035 transport
// style: wire-format queries in, wire-format responses out, one
// datagram each. It is the "baseline DNS" deployment surface — the one
// whose operator logs couple who with what — and exists so the
// oblivious systems' improvements are measured against a resolver that
// actually serves packets, not a function call.

// maxUDPMessage is the classic DNS UDP payload ceiling.
const maxUDPMessage = 4096

// ErrTimeout is returned when a UDP query receives no answer in time.
var ErrTimeout = errors.New("dns: query timed out")

// UDPServer serves a Resolver over a UDP socket.
type UDPServer struct {
	Resolver *Resolver

	pc     net.PacketConn
	wg     sync.WaitGroup
	mu     sync.Mutex
	served int
}

// NewUDPServer wraps a resolver for UDP service.
func NewUDPServer(r *Resolver) *UDPServer { return &UDPServer{Resolver: r} }

// Start binds a fresh loopback UDP port and serves until Close.
func (s *UDPServer) Start() (addr string, err error) {
	s.pc, err = net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("dns: udp listen: %w", err)
	}
	s.wg.Add(1)
	go s.loop()
	return s.pc.LocalAddr().String(), nil
}

// Close stops the server.
func (s *UDPServer) Close() error {
	err := s.pc.Close()
	s.wg.Wait()
	return err
}

// Served reports answered datagram count.
func (s *UDPServer) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

func (s *UDPServer) loop() {
	defer s.wg.Done()
	buf := make([]byte, maxUDPMessage)
	for {
		n, peer, err := s.pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		query, err := dnswire.Decode(buf[:n])
		if err != nil {
			continue // RFC behaviour for garbage: drop
		}
		// The resolver observes the peer address — the identity a real
		// resolver operator logs.
		resp := s.Resolver.Resolve(peer.String(), query)
		wire, err := resp.Encode()
		if err != nil {
			continue
		}
		if len(wire) > maxUDPMessage {
			// Truncate: signal TCP retry the classic way.
			trunc := query.Reply()
			trunc.Truncated = true
			if wire, err = trunc.Encode(); err != nil {
				continue
			}
		}
		if _, err := s.pc.WriteTo(wire, peer); err != nil {
			continue
		}
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
	}
}

// QueryUDP sends one query to a UDP resolver and waits for the answer.
// onDial, if set, receives the client's local address before the query
// is sent (the classification ground-truth hook, as elsewhere).
func QueryUDP(serverAddr string, q *dnswire.Message, timeout time.Duration, onDial func(localAddr string)) (*dnswire.Message, error) {
	conn, err := net.Dial("udp", serverAddr)
	if err != nil {
		return nil, fmt.Errorf("dns: udp dial: %w", err)
	}
	defer conn.Close()
	if onDial != nil {
		onDial(conn.LocalAddr().String())
	}
	wire, err := q.Encode()
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, maxUDPMessage)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, ErrTimeout
			}
			return nil, err
		}
		resp, err := dnswire.Decode(buf[:n])
		if err != nil {
			continue // stray datagram
		}
		if resp.ID != q.ID {
			continue // not ours
		}
		return resp, nil
	}
}
