package dns

import (
	"decoupling/internal/core"
	"decoupling/internal/dnswire"
	"decoupling/internal/schema"
)

// StaticSchema declares the plain-DNS baseline: a recursive resolver
// that sees both who asks and what they ask — the coupled architecture
// every oblivious variant in this module exists to decompose. The
// static derivation convicts it without running anything: the Resolver
// role reads an identity field and a query field of the same message.
func StaticSchema() *schema.Scenario {
	msgs := dnswire.SchemaMessages()
	return &schema.Scenario{
		Name:    "dns",
		System:  "Plain DNS (baseline)",
		Section: "3.2.2",
		Doc:     "The undisturbed baseline: one resolver terminates the client connection and parses the plaintext QNAME.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: append(msgs, schema.Message{
			Name: "auth_response",
			Doc:  "authoritative answer returned to the resolver",
			Fields: []schema.Field{
				{Name: "answer", Label: schema.Content},
			},
		}),
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: dnswire.SchemaQuery, Fields: []string{"src_addr", "qname", "qtype"}}},
				Receives: []schema.Use{
					{Message: dnswire.SchemaResponse, Fields: []string{"answer"}},
				},
			},
			{
				Name: "Resolver",
				Receives: []schema.Use{
					{Message: dnswire.SchemaQuery, Fields: []string{"src_addr", "qname", "qtype"}},
					{Message: "auth_response", Fields: []string{"answer"}},
				},
				Sends: []schema.Use{
					{Message: dnswire.SchemaRecursiveQuery, Fields: []string{"src_addr", "qname", "qtype"}},
					{Message: dnswire.SchemaResponse},
				},
			},
			{
				Name: "Origin",
				Receives: []schema.Use{
					{Message: dnswire.SchemaRecursiveQuery, Fields: []string{"src_addr", "qname", "qtype"}},
				},
				Sends: []schema.Use{{Message: "auth_response", Fields: []string{"answer"}}},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: "Resolver", Message: dnswire.SchemaQuery, Handle: "client-conn"},
			{From: "Resolver", To: "Origin", Message: dnswire.SchemaRecursiveQuery, Handle: "recursion"},
			{From: "Origin", To: "Resolver", Message: "auth_response", Handle: "recursion"},
			{From: "Resolver", To: "Client", Message: dnswire.SchemaResponse, Handle: "client-conn"},
		},
	}
}
