package dns

import (
	"fmt"
	"testing"

	"decoupling/internal/dnswire"
)

func stripingEcosystem(t testing.TB, k int) ([]*Resolver, []string) {
	t.Helper()
	z := NewZone("test")
	var names []string
	for i := 0; i < 24; i++ {
		n := fmt.Sprintf("site%02d.test", i)
		names = append(names, n)
		if err := z.Add(dnswire.A(n, 300, [4]byte{10, 0, 0, byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	auth := &AuthServer{Name: "auth", Zones: []*Zone{z}}
	resolvers := make([]*Resolver, k)
	for i := range resolvers {
		resolvers[i] = NewResolver(fmt.Sprintf("resolver-%d", i), []Authority{auth}, nil, nil)
	}
	return resolvers, names
}

func TestStripedResolutionWorks(t *testing.T) {
	for _, strat := range []Strategy{StripeRandom, StripeRoundRobin, StripeByName} {
		resolvers, names := stripingEcosystem(t, 4)
		c, err := NewStripedClient("alice", resolvers, strat, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range names {
			resp := c.Resolve(dnswire.NewQuery(uint16(i), n, dnswire.TypeA))
			if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
				t.Fatalf("%v: resolve %s failed: %+v", strat, n, resp)
			}
		}
	}
}

func TestRoundRobinIsEven(t *testing.T) {
	resolvers, names := stripingEcosystem(t, 4)
	c, _ := NewStripedClient("alice", resolvers, StripeRoundRobin, 1)
	for i := 0; i < 2; i++ {
		for j, n := range names {
			c.Resolve(dnswire.NewQuery(uint16(j), n, dnswire.TypeA))
		}
	}
	for i, n := range c.Distribution() {
		if n != 12 {
			t.Errorf("resolver %d got %d queries, want 12", i, n)
		}
	}
}

func TestByNameIsSticky(t *testing.T) {
	resolvers, _ := stripingEcosystem(t, 4)
	c, _ := NewStripedClient("alice", resolvers, StripeByName, 1)
	// The same name always hits the same resolver.
	for i := 0; i < 10; i++ {
		c.Resolve(dnswire.NewQuery(uint16(i), "site01.test", dnswire.TypeA))
	}
	nonZero := 0
	for _, n := range c.Distribution() {
		if n > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Errorf("sticky name spread over %d resolvers", nonZero)
	}
	// And caching pays off: 1 miss, 9 hits at that resolver.
	var hits, misses uint64
	for _, r := range resolvers {
		h, m := r.CacheStats()
		hits += h
		misses += m
	}
	if hits != 9 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestProfileCompletenessFallsWithK(t *testing.T) {
	prev := 2.0
	for _, k := range []int{1, 2, 4, 8} {
		resolvers, names := stripingEcosystem(t, k)
		c, _ := NewStripedClient("alice", resolvers, StripeRandom, 42)
		for pass := 0; pass < 2; pass++ {
			for j, n := range names {
				c.Resolve(dnswire.NewQuery(uint16(j), n, dnswire.TypeA))
			}
		}
		fracs := ProfileCompleteness("alice", resolvers, names)
		avg := 0.0
		for _, f := range fracs {
			avg += f
		}
		avg /= float64(k)
		if k == 1 && avg != 1.0 {
			t.Errorf("k=1 completeness = %.3f, want 1.0", avg)
		}
		if avg >= prev {
			t.Errorf("k=%d completeness %.3f did not fall below %.3f", k, avg, prev)
		}
		prev = avg
	}
}

func TestByNamePartitionsNamespace(t *testing.T) {
	// With by-name striping, each resolver sees a disjoint set of
	// names: completeness fractions sum to exactly 1.
	resolvers, names := stripingEcosystem(t, 4)
	c, _ := NewStripedClient("alice", resolvers, StripeByName, 1)
	for j, n := range names {
		c.Resolve(dnswire.NewQuery(uint16(j), n, dnswire.TypeA))
	}
	fracs := ProfileCompleteness("alice", resolvers, names)
	sum := 0.0
	for _, f := range fracs {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("by-name completeness fractions sum to %.3f, want 1.0", sum)
	}
}

func TestStripedClientErrors(t *testing.T) {
	if _, err := NewStripedClient("x", nil, StripeRandom, 1); err != ErrNoResolvers {
		t.Errorf("err = %v", err)
	}
}

func TestProfileCompletenessEmptyTruth(t *testing.T) {
	resolvers, _ := stripingEcosystem(t, 2)
	fracs := ProfileCompleteness("alice", resolvers, nil)
	for _, f := range fracs {
		if f != 0 {
			t.Errorf("empty truth produced nonzero completeness %v", f)
		}
	}
}

func BenchmarkStripedResolve(b *testing.B) {
	resolvers, names := stripingEcosystem(b, 4)
	c, _ := NewStripedClient("bench", resolvers, StripeByName, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Resolve(dnswire.NewQuery(uint16(i), names[i%len(names)], dnswire.TypeA))
	}
}
