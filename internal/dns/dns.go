// Package dns implements a small but functional DNS ecosystem —
// authoritative zones, authoritative servers, and a caching recursive
// resolver — used as the substrate for the oblivious DNS systems
// (internal/odns, internal/odoh) and the §5.1 resolver-striping
// experiment.
//
// The privacy-relevant behaviour is instrumented: a resolver operator
// learns (client identity, query name) for every query it resolves, and
// an authoritative operator learns (resolver identity, query name).
// These observations feed the ledger from which empirical decoupling
// tuples are derived.
package dns

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/telemetry/wiretrace"
)

// Zone holds authoritative records under one origin.
type Zone struct {
	Origin string // canonical, e.g. "example.com."
	mu     sync.RWMutex
	rrs    map[string]map[dnswire.Type][]dnswire.RR
}

// NewZone creates an empty zone for origin.
func NewZone(origin string) *Zone {
	return &Zone{
		Origin: dnswire.CanonicalName(origin),
		rrs:    map[string]map[dnswire.Type][]dnswire.RR{},
	}
}

// Add inserts a record; the record name must fall under the origin.
func (z *Zone) Add(rr dnswire.RR) error {
	name := dnswire.CanonicalName(rr.Name)
	if !InZone(name, z.Origin) {
		return fmt.Errorf("dns: record %q outside zone %q", name, z.Origin)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.rrs[name] == nil {
		z.rrs[name] = map[dnswire.Type][]dnswire.RR{}
	}
	rr.Name = name
	z.rrs[name][rr.Type] = append(z.rrs[name][rr.Type], rr)
	return nil
}

// Lookup returns records of the given type at name, following one level
// of CNAME indirection within the zone.
func (z *Zone) Lookup(name string, t dnswire.Type) ([]dnswire.RR, dnswire.RCode) {
	name = dnswire.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	types, ok := z.rrs[name]
	if !ok {
		return nil, dnswire.RCodeNXDomain
	}
	if rrs := types[t]; len(rrs) > 0 {
		return append([]dnswire.RR(nil), rrs...), dnswire.RCodeNoError
	}
	if cn := types[dnswire.TypeCNAME]; len(cn) > 0 {
		target, err := dnswire.CNAMETarget(cn[0])
		if err != nil {
			return nil, dnswire.RCodeServFail
		}
		out := append([]dnswire.RR(nil), cn[0])
		if tt, ok := z.rrs[target]; ok {
			out = append(out, tt[t]...)
		}
		return out, dnswire.RCodeNoError
	}
	// Name exists but not this type.
	return nil, dnswire.RCodeNoError
}

// InZone reports whether name falls under origin (both canonical).
func InZone(name, origin string) bool {
	if origin == "." {
		return true
	}
	return name == origin || strings.HasSuffix(name, "."+origin)
}

// Authority is anything that can answer queries authoritatively: a
// static AuthServer, or a protocol endpoint like the ODNS oblivious
// resolver that synthesizes answers.
type Authority interface {
	// Serves reports whether this authority answers for name.
	Serves(name string) bool
	// Handle answers a single-question query from the named party.
	Handle(from string, q *dnswire.Message) *dnswire.Message
}

// AuthServer is an authoritative server for one or more zones.
type AuthServer struct {
	Name  string // entity name for the ledger, e.g. "Origin"
	Zones []*Zone
	// Ledger, if set, records what this operator observes.
	Ledger *ledger.Ledger
	// Wire, if set, opens a wall-clock span per handled query,
	// continuing the context handed off with the query name and
	// mirroring the ledger observations. The origin is a terminal hop:
	// it forwards nowhere, so it never rotates.
	Wire *wiretrace.Plane
}

// zoneFor returns the most specific zone containing name, or nil.
func (s *AuthServer) zoneFor(name string) *Zone {
	var best *Zone
	for _, z := range s.Zones {
		if InZone(name, z.Origin) {
			if best == nil || len(z.Origin) > len(best.Origin) {
				best = z
			}
		}
	}
	return best
}

// Serves reports whether the server is authoritative for name.
func (s *AuthServer) Serves(name string) bool {
	return s.zoneFor(dnswire.CanonicalName(name)) != nil
}

// Handle answers a query. from identifies the querying party (a
// resolver address) for observation purposes.
func (s *AuthServer) Handle(from string, q *dnswire.Message) *dnswire.Message {
	r := q.Reply()
	r.Authoritative = true
	if len(q.Questions) != 1 {
		r.RCode = dnswire.RCodeFormErr
		return r
	}
	question := q.Questions[0]
	name := dnswire.CanonicalName(question.Name)
	hop := s.Wire.Hop(s.Name, "dns.auth.handle", s.Wire.TakeHandoff([]byte(name)), from, "")
	defer hop.End()
	if s.Ledger != nil {
		// The connection to the querying party and the query name bytes
		// are both join keys: anyone else who saw the same name string
		// on a wire (the forwarding resolver) can correlate records.
		h := ledger.ConnHandle(from, s.Name)
		nameH := ledger.Hash([]byte(name))
		s.Ledger.SawIdentity(s.Name, from, h, nameH)
		s.Ledger.SawData(s.Name, name, h, nameH)
		hop.Observe(core.Identity, from)
		hop.Observe(core.Data, name)
	}
	z := s.zoneFor(name)
	if z == nil {
		r.RCode = dnswire.RCodeRefused
		return r
	}
	rrs, rcode := z.Lookup(name, question.Type)
	r.RCode = rcode
	r.Answers = rrs
	return r
}

type cacheKey struct {
	name string
	typ  dnswire.Type
}

type cacheEntry struct {
	rrs     []dnswire.RR
	rcode   dnswire.RCode
	expires time.Duration
}

// QueryLogEntry is what a resolver operator's logs contain: exactly the
// coupling of who (client) with what (name) that the oblivious systems
// remove.
type QueryLogEntry struct {
	Client string
	Name   string
	Time   time.Duration
}

// Resolver is a caching recursive resolver. It reaches authoritative
// servers through direct references — the iterative walk from the root
// is elided since referral mechanics are irrelevant to the decoupling
// analysis.
type Resolver struct {
	Name  string
	Auths []Authority
	// Ledger, if set, records what this operator observes.
	Ledger *ledger.Ledger
	// Wire, if set, opens a wall-clock span per resolved query and
	// rotates the trace ID before the authoritative leg: a forwarding
	// resolver is a vantage boundary like any other.
	Wire *wiretrace.Plane
	// Clock supplies virtual time for TTL handling; nil means time
	// stands still (cache entries never expire).
	Clock func() time.Duration

	mu    sync.Mutex
	cache map[cacheKey]cacheEntry
	log   []QueryLogEntry

	hits, misses uint64
}

// NewResolver creates a resolver named name that delegates to auths.
func NewResolver(name string, auths []Authority, lg *ledger.Ledger, clock func() time.Duration) *Resolver {
	return &Resolver{
		Name: name, Auths: auths, Ledger: lg, Clock: clock,
		cache: map[cacheKey]cacheEntry{},
	}
}

func (r *Resolver) now() time.Duration {
	if r.Clock == nil {
		return 0
	}
	return r.Clock()
}

// Resolve answers q on behalf of client (a client address/identity).
// The resolver observes the client identity and the plaintext query
// name — the baseline-DNS coupling the paper's §3.2.2 systems remove.
func (r *Resolver) Resolve(client string, q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	if len(q.Questions) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp
	}
	question := q.Questions[0]
	name := dnswire.CanonicalName(question.Name)
	hop := r.Wire.Hop(r.Name, "dns.resolve", r.Wire.TakeHandoff([]byte(name)), client, "")
	defer hop.End()

	r.mu.Lock()
	r.log = append(r.log, QueryLogEntry{Client: client, Name: name, Time: r.now()})
	r.mu.Unlock()
	if r.Ledger != nil {
		h := ledger.ConnHandle(client, r.Name)
		nameH := ledger.Hash([]byte(name))
		r.Ledger.SawIdentity(r.Name, client, h, nameH)
		r.Ledger.SawData(r.Name, name, h, nameH)
		hop.Observe(core.Identity, client)
		hop.Observe(core.Data, name)
	}

	key := cacheKey{name, question.Type}
	r.mu.Lock()
	if e, ok := r.cache[key]; ok && (r.Clock == nil || e.expires > r.now()) {
		r.hits++
		r.mu.Unlock()
		resp.RCode = e.rcode
		resp.Answers = append([]dnswire.RR(nil), e.rrs...)
		return resp
	}
	r.misses++
	r.mu.Unlock()

	var auth Authority
	for _, a := range r.Auths {
		if a.Serves(name) {
			auth = a
			break
		}
	}
	if auth == nil {
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	r.Wire.Handoff([]byte(name), hop.Forward())
	upstream := auth.Handle(r.Name, q)
	resp.RCode = upstream.RCode
	resp.Answers = upstream.Answers

	ttl := time.Duration(300) * time.Second
	for _, rr := range upstream.Answers {
		if t := time.Duration(rr.TTL) * time.Second; t < ttl {
			ttl = t
		}
	}
	r.mu.Lock()
	r.cache[key] = cacheEntry{
		rrs:     append([]dnswire.RR(nil), upstream.Answers...),
		rcode:   upstream.RCode,
		expires: r.now() + ttl,
	}
	r.mu.Unlock()
	return resp
}

// Log returns a copy of the resolver operator's query log.
func (r *Resolver) Log() []QueryLogEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]QueryLogEntry(nil), r.log...)
}

// CacheStats returns cumulative cache hits and misses.
func (r *Resolver) CacheStats() (hits, misses uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}
