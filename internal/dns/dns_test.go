package dns

import (
	"fmt"
	"testing"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
)

func testEcosystem(t *testing.T, lg *ledger.Ledger, clock func() time.Duration) (*Resolver, *AuthServer) {
	t.Helper()
	z := NewZone("example.com")
	for i, host := range []string{"www", "mail", "api"} {
		if err := z.Add(dnswire.A(host+".example.com", 300, [4]byte{192, 0, 2, byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := z.Add(dnswire.CNAME("alias.example.com", 300, "www.example.com")); err != nil {
		t.Fatal(err)
	}
	auth := &AuthServer{Name: "Origin", Zones: []*Zone{z}, Ledger: lg}
	return NewResolver("Resolver", []Authority{auth}, lg, clock), auth
}

func TestResolveA(t *testing.T) {
	r, _ := testEcosystem(t, nil, nil)
	resp := r.Resolve("client-1", dnswire.NewQuery(1, "www.example.com", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Answers[0].Data[3] != 0 {
		t.Errorf("A rdata = %v", resp.Answers[0].Data)
	}
}

func TestResolveCNAMEChase(t *testing.T) {
	r, _ := testEcosystem(t, nil, nil)
	resp := r.Resolve("client-1", dnswire.NewQuery(2, "alias.example.com", dnswire.TypeA))
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %d, want CNAME + A", len(resp.Answers))
	}
	if resp.Answers[0].Type != dnswire.TypeCNAME || resp.Answers[1].Type != dnswire.TypeA {
		t.Errorf("answer types = %v, %v", resp.Answers[0].Type, resp.Answers[1].Type)
	}
}

func TestResolveNXDomain(t *testing.T) {
	r, _ := testEcosystem(t, nil, nil)
	resp := r.Resolve("client-1", dnswire.NewQuery(3, "missing.example.com", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestResolveOutsideDelegationServFail(t *testing.T) {
	r, _ := testEcosystem(t, nil, nil)
	resp := r.Resolve("client-1", dnswire.NewQuery(4, "other.test", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestCacheHitAvoidsAuthority(t *testing.T) {
	r, _ := testEcosystem(t, nil, nil)
	q := dnswire.NewQuery(5, "www.example.com", dnswire.TypeA)
	r.Resolve("c", q)
	r.Resolve("c", q)
	r.Resolve("c", q)
	hits, misses := r.CacheStats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestCacheExpiryHonorsTTL(t *testing.T) {
	now := time.Duration(0)
	r, _ := testEcosystem(t, nil, func() time.Duration { return now })
	q := dnswire.NewQuery(6, "www.example.com", dnswire.TypeA)
	r.Resolve("c", q)
	now = 299 * time.Second
	r.Resolve("c", q)
	now = 301 * time.Second // past the 300s TTL
	r.Resolve("c", q)
	hits, misses := r.CacheStats()
	if hits != 1 || misses != 2 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestZoneRejectsForeignRecords(t *testing.T) {
	z := NewZone("example.com")
	if err := z.Add(dnswire.A("www.other.org", 300, [4]byte{1, 2, 3, 4})); err == nil {
		t.Error("foreign record accepted")
	}
}

func TestInZone(t *testing.T) {
	cases := []struct {
		name, origin string
		want         bool
	}{
		{"www.example.com.", "example.com.", true},
		{"example.com.", "example.com.", true},
		{"badexample.com.", "example.com.", false},
		{"anything.test.", ".", true},
	}
	for _, c := range cases {
		if got := InZone(c.name, c.origin); got != c.want {
			t.Errorf("InZone(%q, %q) = %v", c.name, c.origin, got)
		}
	}
}

func TestMostSpecificZoneWins(t *testing.T) {
	parent := NewZone("example.com")
	child := NewZone("sub.example.com")
	if err := parent.Add(dnswire.A("www.sub.example.com", 300, [4]byte{1, 1, 1, 1})); err != nil {
		t.Fatal(err)
	}
	if err := child.Add(dnswire.A("www.sub.example.com", 300, [4]byte{2, 2, 2, 2})); err != nil {
		t.Fatal(err)
	}
	s := &AuthServer{Name: "auth", Zones: []*Zone{parent, child}}
	resp := s.Handle("r", dnswire.NewQuery(1, "www.sub.example.com", dnswire.TypeA))
	if resp.Answers[0].Data[0] != 2 {
		t.Errorf("answer came from parent zone: %v", resp.Answers[0].Data)
	}
}

// TestBaselineDNSCouplesIdentityAndData verifies the premise of §3.2.2:
// a plain recursive resolver observes both who asked and what they
// asked, i.e. it is a (▲, ●) entity.
func TestBaselineDNSCouplesIdentityAndData(t *testing.T) {
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("client-1", "alice", "", core.Sensitive)
	cls.RegisterData("www.example.com.", "alice", "", core.Sensitive)
	lg := ledger.New(cls, nil)
	r, _ := testEcosystem(t, lg, nil)
	r.Resolve("client-1", dnswire.NewQuery(7, "www.example.com", dnswire.TypeA))

	tuple := lg.DeriveTuple("Resolver", core.Tuple{core.NonSensID(), core.NonSensData()})
	want := core.Tuple{core.SensID(), core.SensData()}
	if !tuple.Equal(want) {
		t.Errorf("resolver tuple = %s, want %s (coupled)", tuple.Symbol(), want.Symbol())
	}
	if !tuple.Coupled() {
		t.Error("baseline resolver should be coupled")
	}
}

func TestQueryLogRecordsCoupling(t *testing.T) {
	r, _ := testEcosystem(t, nil, nil)
	for i := 0; i < 3; i++ {
		r.Resolve(fmt.Sprintf("client-%d", i), dnswire.NewQuery(uint16(i), "www.example.com", dnswire.TypeA))
	}
	log := r.Log()
	if len(log) != 3 {
		t.Fatalf("log entries = %d", len(log))
	}
	if log[2].Client != "client-2" || log[2].Name != "www.example.com." {
		t.Errorf("log[2] = %+v", log[2])
	}
}

func TestMultiQuestionRejected(t *testing.T) {
	r, _ := testEcosystem(t, nil, nil)
	q := dnswire.NewQuery(1, "www.example.com", dnswire.TypeA)
	q.Questions = append(q.Questions, q.Questions[0])
	resp := r.Resolve("c", q)
	if resp.RCode != dnswire.RCodeFormErr {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func BenchmarkResolveCached(b *testing.B) {
	z := NewZone("example.com")
	z.Add(dnswire.A("www.example.com", 300, [4]byte{1, 2, 3, 4}))
	auth := &AuthServer{Name: "auth", Zones: []*Zone{z}}
	r := NewResolver("res", []Authority{auth}, nil, nil)
	q := dnswire.NewQuery(1, "www.example.com", dnswire.TypeA)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Resolve("c", q)
	}
}
