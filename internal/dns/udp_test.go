package dns

import (
	"fmt"
	"net"
	"testing"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
)

func udpEcosystem(t *testing.T, lg *ledger.Ledger) (*UDPServer, string) {
	t.Helper()
	z := NewZone("udp.test")
	for i := 0; i < 4; i++ {
		if err := z.Add(dnswire.A(fmt.Sprintf("h%d.udp.test", i), 300, [4]byte{10, 9, 8, byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	auth := &AuthServer{Name: "auth", Zones: []*Zone{z}}
	r := NewResolver("Resolver", []Authority{auth}, lg, nil)
	srv := NewUDPServer(r)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestUDPQueryRoundTrip(t *testing.T) {
	srv, addr := udpEcosystem(t, nil)
	resp, err := QueryUDP(addr, dnswire.NewQuery(42, "h2.udp.test", dnswire.TypeA), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 || resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Answers[0].Data[3] != 2 {
		t.Errorf("A rdata = %v", resp.Answers[0].Data)
	}
	if srv.Served() != 1 {
		t.Errorf("served = %d", srv.Served())
	}
}

func TestUDPNXDomainAndGarbage(t *testing.T) {
	srv, addr := udpEcosystem(t, nil)
	resp, err := QueryUDP(addr, dnswire.NewQuery(7, "missing.udp.test", dnswire.TypeA), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.RCode)
	}
	// Garbage datagrams are dropped silently, not answered.
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("not dns"))
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		t.Error("garbage datagram got an answer")
	}
	if srv.Served() != 1 {
		t.Errorf("served = %d after garbage", srv.Served())
	}
}

func TestUDPTimeout(t *testing.T) {
	// A UDP socket with nothing behind it: the query must time out.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	_, err = QueryUDP(pc.LocalAddr().String(), dnswire.NewQuery(1, "x.test", dnswire.TypeA), 150*time.Millisecond, nil)
	if err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestUDPMismatchedIDIgnored(t *testing.T) {
	// A fake server answering with the wrong transaction id first: the
	// client must skip it and accept the matching one.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, maxUDPMessage)
		n, peer, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Decode(buf[:n])
		if err != nil {
			return
		}
		// Wrong id (spoof attempt), then the real answer.
		spoof := q.Reply()
		spoof.ID = q.ID + 1
		w, _ := spoof.Encode()
		pc.WriteTo(w, peer)
		real := q.Reply()
		real.Answers = append(real.Answers, dnswire.A(q.Questions[0].Name, 60, [4]byte{1, 2, 3, 4}))
		w, _ = real.Encode()
		pc.WriteTo(w, peer)
	}()
	resp, err := QueryUDP(pc.LocalAddr().String(), dnswire.NewQuery(9, "spoof.test", dnswire.TypeA), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 9 || len(resp.Answers) != 1 {
		t.Errorf("accepted wrong response: %+v", resp)
	}
}

// TestUDPBaselineCoupling: over a real socket, the resolver operator's
// log couples the client's actual UDP endpoint with the plaintext query
// — the §3.2.2 baseline, on the wire.
func TestUDPBaselineCoupling(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	_, addr := udpEcosystem(t, lg)
	cls.RegisterData("h1.udp.test.", "alice", "", core.Sensitive)
	_, err := QueryUDP(addr, dnswire.NewQuery(3, "h1.udp.test", dnswire.TypeA), time.Second, func(localAddr string) {
		cls.RegisterIdentity(localAddr, "alice", "", core.Sensitive)
	})
	if err != nil {
		t.Fatal(err)
	}
	tuple := lg.DeriveTuple("Resolver", core.Tuple{core.NonSensID(), core.NonSensData()})
	if !tuple.Coupled() {
		t.Errorf("UDP resolver tuple = %s, expected coupled (▲, ●)", tuple.Symbol())
	}
}

func TestUDPConcurrentClients(t *testing.T) {
	_, addr := udpEcosystem(t, nil)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			resp, err := QueryUDP(addr, dnswire.NewQuery(uint16(100+i), fmt.Sprintf("h%d.udp.test", i%4), dnswire.TypeA), time.Second, nil)
			if err == nil && resp.RCode != dnswire.RCodeNoError {
				err = fmt.Errorf("rcode %v", resp.RCode)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent query: %v", err)
		}
	}
}

func BenchmarkUDPQuery(b *testing.B) {
	z := NewZone("udp.test")
	z.Add(dnswire.A("h0.udp.test", 300, [4]byte{10, 9, 8, 0}))
	auth := &AuthServer{Name: "auth", Zones: []*Zone{z}}
	srv := NewUDPServer(NewResolver("res", []Authority{auth}, nil, nil))
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QueryUDP(addr, dnswire.NewQuery(uint16(i), "h0.udp.test", dnswire.TypeA), time.Second, nil); err != nil {
			b.Fatal(err)
		}
	}
}
