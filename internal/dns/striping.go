package dns

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"

	"decoupling/internal/dnswire"
)

// This file implements §5.1's "dynamic stitching": a client that
// distributes its queries across multiple recursive resolvers, limiting
// the information available about it at each (the paper's [18],
// Hounsel et al., "Encryption without Centralization").

// Strategy selects how a striped client spreads queries.
type Strategy int

// Striping strategies.
const (
	// StripeRandom picks a uniformly random resolver per query:
	// strongest per-resolver profile reduction, worst cache locality.
	StripeRandom Strategy = iota
	// StripeRoundRobin rotates deterministically: even load, a resolver
	// sees every 1/k-th query (including repeats of hot names).
	StripeRoundRobin
	// StripeByName hashes the query name to a resolver: each resolver
	// sees a disjoint slice of the namespace (best cache behaviour; a
	// resolver sees ALL queries for its slice of names).
	StripeByName
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StripeRandom:
		return "random"
	case StripeRoundRobin:
		return "round-robin"
	case StripeByName:
		return "by-name"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrNoResolvers is returned when a striped client has no upstreams.
var ErrNoResolvers = errors.New("dns: striped client needs at least one resolver")

// StripedClient distributes a client's queries over several resolvers.
type StripedClient struct {
	ID        string
	Resolvers []*Resolver
	Strategy  Strategy

	mu   sync.Mutex
	rng  *mrand.Rand
	next int
	sent []int // per-resolver query counts
}

// NewStripedClient creates a striping client. seed drives the random
// strategy deterministically in tests.
func NewStripedClient(id string, resolvers []*Resolver, strategy Strategy, seed int64) (*StripedClient, error) {
	if len(resolvers) == 0 {
		return nil, ErrNoResolvers
	}
	return &StripedClient{
		ID: id, Resolvers: resolvers, Strategy: strategy,
		rng:  mrand.New(mrand.NewSource(seed)),
		sent: make([]int, len(resolvers)),
	}, nil
}

// pick chooses the resolver index for a query name.
func (c *StripedClient) pick(name string) int {
	switch c.Strategy {
	case StripeRoundRobin:
		i := c.next
		c.next = (c.next + 1) % len(c.Resolvers)
		return i
	case StripeByName:
		sum := sha256.Sum256([]byte(dnswire.CanonicalName(name)))
		return int(binary.BigEndian.Uint32(sum[:4]) % uint32(len(c.Resolvers)))
	default:
		return c.rng.Intn(len(c.Resolvers))
	}
}

// Resolve sends one query via the strategy-selected resolver.
func (c *StripedClient) Resolve(q *dnswire.Message) *dnswire.Message {
	name := ""
	if len(q.Questions) == 1 {
		name = q.Questions[0].Name
	}
	c.mu.Lock()
	i := c.pick(name)
	c.sent[i]++
	c.mu.Unlock()
	return c.Resolvers[i].Resolve(c.ID, q)
}

// Distribution returns the per-resolver query counts so far.
func (c *StripedClient) Distribution() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.sent...)
}

// ProfileCompleteness computes, for each resolver, the fraction of the
// client's distinct query names visible in that resolver's log — the
// §5.1 metric. allNames is the client's full distinct-name ground truth.
func ProfileCompleteness(client string, resolvers []*Resolver, allNames []string) []float64 {
	truth := map[string]bool{}
	for _, n := range allNames {
		truth[dnswire.CanonicalName(n)] = true
	}
	out := make([]float64, len(resolvers))
	if len(truth) == 0 {
		return out
	}
	for i, r := range resolvers {
		seen := map[string]bool{}
		for _, e := range r.Log() {
			if e.Client == client && truth[e.Name] {
				seen[e.Name] = true
			}
		}
		out[i] = float64(len(seen)) / float64(len(truth))
	}
	return out
}
