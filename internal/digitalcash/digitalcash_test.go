package digitalcash

import (
	"fmt"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

const testKeyBits = 1024

func TestWithdrawSpendDeposit(t *testing.T) {
	bank, err := NewBank(testKeyBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	bank.OpenAccount("alice", 10)
	bank.OpenAccount("bookshop", 0)

	buyer := NewBuyer("alice", bank)
	seller := NewSeller("bookshop", "retail-books", bank, nil)

	coin, err := buyer.WithdrawCoin()
	if err != nil {
		t.Fatal(err)
	}
	if bank.Balance("alice") != 9 {
		t.Errorf("alice balance = %d, want 9", bank.Balance("alice"))
	}
	if err := seller.Sell(coin, "a subversive novel", "anon-session-1"); err != nil {
		t.Fatal(err)
	}
	if bank.Balance("bookshop") != 1 {
		t.Errorf("bookshop balance = %d, want 1", bank.Balance("bookshop"))
	}
	if got := seller.Sales(); len(got) != 1 || got[0] != "a subversive novel" {
		t.Errorf("sales = %v", got)
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	bank, _ := NewBank(testKeyBits, nil)
	bank.OpenAccount("alice", 10)
	buyer := NewBuyer("alice", bank)
	coin, err := buyer.WithdrawCoin()
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Deposit("shop1", coin, "retail"); err != nil {
		t.Fatal(err)
	}
	if err := bank.Deposit("shop2", coin, "retail"); err != ErrDoubleSpend {
		t.Errorf("second deposit error = %v, want ErrDoubleSpend", err)
	}
}

func TestForgedCoinRejected(t *testing.T) {
	bank, _ := NewBank(testKeyBits, nil)
	forged := Coin{Serial: []byte("forged serial, no signature"), Sig: make([]byte, 128)}
	if err := bank.Deposit("shop", forged, "retail"); err != ErrBadCoin {
		t.Errorf("deposit of forged coin error = %v", err)
	}
	seller := NewSeller("shop", "retail", bank, nil)
	if err := seller.Sell(forged, "item", "anon"); err != ErrBadCoin {
		t.Errorf("sale with forged coin error = %v", err)
	}
}

func TestWithdrawErrors(t *testing.T) {
	bank, _ := NewBank(testKeyBits, nil)
	buyer := NewBuyer("nobody", bank)
	if _, err := buyer.WithdrawCoin(); err != ErrUnknownAccount {
		t.Errorf("unknown account error = %v", err)
	}
	bank.OpenAccount("poor", 0)
	buyer = NewBuyer("poor", bank)
	if _, err := buyer.WithdrawCoin(); err != ErrInsufficientFunds {
		t.Errorf("broke account error = %v", err)
	}
}

// TestDecouplingTable reproduces the paper's §3.1.1 analysis from an
// instrumented run: 5 buyers each withdraw and spend a coin; the
// measured knowledge tuples must match the published table exactly.
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	bank, err := NewBank(testKeyBits, lg)
	if err != nil {
		t.Fatal(err)
	}
	bank.OpenAccount("bookshop", 0)
	seller := NewSeller("bookshop", "retail-books", bank, lg)
	cls.RegisterIdentity("bookshop", "", "", core.NonSensitive)

	for i := 0; i < 5; i++ {
		who := fmt.Sprintf("buyer%d", i)
		item := fmt.Sprintf("book about forbidden topic %d", i)
		anon := fmt.Sprintf("anon-session-%d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterIdentity(anon, who, "", core.NonSensitive)
		cls.RegisterData(item, who, "", core.Sensitive)
		cls.RegisterData("retail-books", who, "", core.Partial)

		bank.OpenAccount(who, 3)
		coin, err := NewBuyer(who, bank).WithdrawCoin()
		if err != nil {
			t.Fatal(err)
		}
		if err := seller.Sell(coin, item, anon); err != nil {
			t.Fatal(err)
		}
	}

	expected := core.DigitalCash()
	// Rename the model's user to match: buyers are the users; derive for
	// the three service entities.
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("measured system not decoupled: %s", v)
	}
}

// TestUnlinkabilityUnderFullCollusion: even Signer+Verifier+Seller
// pooling all records cannot link a buyer's identity to their purchase —
// the blinding leaves no shared handle between withdrawal and deposit.
func TestUnlinkabilityUnderFullCollusion(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	bank, err := NewBank(testKeyBits, lg)
	if err != nil {
		t.Fatal(err)
	}
	bank.OpenAccount("shop", 0)
	seller := NewSeller("shop", "retail", bank, lg)
	for i := 0; i < 8; i++ {
		who := fmt.Sprintf("buyer%d", i)
		item := fmt.Sprintf("item-%d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(item, who, "", core.Sensitive)
		bank.OpenAccount(who, 1)
		coin, err := NewBuyer(who, bank).WithdrawCoin()
		if err != nil {
			t.Fatal(err)
		}
		if err := seller.Sell(coin, item, fmt.Sprintf("anon-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	res := adversary.LinkSubjects(lg.Observations(), []string{SignerName, VerifierName, SellerName})
	if rate := adversary.LinkageRate(res); rate != 0 {
		t.Errorf("full collusion linked %.0f%% of buyers; blind signatures should prevent all linkage", rate*100)
	}
}

func TestStats(t *testing.T) {
	bank, _ := NewBank(testKeyBits, nil)
	bank.OpenAccount("a", 5)
	buyer := NewBuyer("a", bank)
	for i := 0; i < 3; i++ {
		coin, err := buyer.WithdrawCoin()
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			if err := bank.Deposit("s", coin, "x"); err != nil {
				t.Fatal(err)
			}
		}
	}
	w, d := bank.Stats()
	if w != 3 || d != 2 {
		t.Errorf("stats = %d withdrawn, %d deposited", w, d)
	}
}

func BenchmarkWithdrawSpendDeposit(b *testing.B) {
	bank, err := NewBank(testKeyBits, nil)
	if err != nil {
		b.Fatal(err)
	}
	bank.OpenAccount("alice", int64(b.N)+1)
	bank.OpenAccount("shop", 0)
	buyer := NewBuyer("alice", bank)
	seller := NewSeller("shop", "retail", bank, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coin, err := buyer.WithdrawCoin()
		if err != nil {
			b.Fatal(err)
		}
		if err := seller.Sell(coin, "item", "anon"); err != nil {
			b.Fatal(err)
		}
	}
}
