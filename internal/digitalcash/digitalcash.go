// Package digitalcash implements Chaum's blind-signature digital
// currency, the paper's §3.1.1 example of the Decoupling Principle in
// access and authentication.
//
// Flow:
//
//	Withdraw:  the buyer blinds a fresh coin serial and presents it with
//	           their account; the bank's Signer role debits the account
//	           and blind-signs without seeing the serial.
//	Spend:     the buyer pays a seller with the unblinded coin; the
//	           seller verifies the bank's signature offline and learns
//	           what was bought but not who bought it.
//	Deposit:   the seller deposits the coin; the bank's Verifier role
//	           checks the signature and the double-spend set and credits
//	           the seller.
//
// The Signer and Verifier are the same organization, yet the blinding
// makes withdrawal and deposit cryptographically unlinkable — the
// paper's point that decoupling can be enforced within a single entity
// by protocol structure alone.
package digitalcash

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"decoupling/internal/dcrypto/blindrsa"
	"decoupling/internal/ledger"
)

// Entity names used for ledger observations, matching the paper table.
const (
	SignerName   = "Signer (Bank)"
	VerifierName = "Verifier (Bank)"
	SellerName   = "Seller"
)

// Errors returned by the bank.
var (
	ErrUnknownAccount    = errors.New("digitalcash: unknown account")
	ErrInsufficientFunds = errors.New("digitalcash: insufficient funds")
	ErrDoubleSpend       = errors.New("digitalcash: coin already deposited")
	ErrBadCoin           = errors.New("digitalcash: invalid coin signature")
)

// Coin is a bearer instrument: a random serial and the bank's blind
// signature over it. Whoever holds a valid coin can deposit it once.
type Coin struct {
	Serial []byte
	Sig    []byte
}

// SerialHex returns the serial as a hex string (ledger value form).
func (c Coin) SerialHex() string { return hex.EncodeToString(c.Serial) }

// Bank plays both the Signer and Verifier roles of the paper's table.
type Bank struct {
	key *rsa.PrivateKey
	lg  *ledger.Ledger

	mu        sync.Mutex
	accounts  map[string]int64
	spent     map[string]bool
	withdrawn int
	deposited int
}

// NewBank creates a bank with a fresh blind-signing key of the given
// modulus size. lg may be nil (no instrumentation).
func NewBank(bits int, lg *ledger.Ledger) (*Bank, error) {
	key, err := blindrsa.GenerateKey(bits)
	if err != nil {
		return nil, err
	}
	return &Bank{
		key:      key,
		lg:       lg,
		accounts: map[string]int64{},
		spent:    map[string]bool{},
	}, nil
}

// PublicKey returns the bank's coin-verification key.
func (b *Bank) PublicKey() *rsa.PublicKey { return &b.key.PublicKey }

// OpenAccount creates (or tops up) an account.
func (b *Bank) OpenAccount(account string, balance int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.accounts[account] += balance
}

// Balance returns an account's balance.
func (b *Bank) Balance(account string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.accounts[account]
}

// Withdraw performs the Signer role: it authenticates the account,
// debits one unit, and blind-signs the blinded serial. The signer sees
// the customer's identity but only an information-free blinded value.
func (b *Bank) Withdraw(account string, blinded []byte) ([]byte, error) {
	b.mu.Lock()
	bal, ok := b.accounts[account]
	if !ok {
		b.mu.Unlock()
		return nil, ErrUnknownAccount
	}
	if bal < 1 {
		b.mu.Unlock()
		return nil, ErrInsufficientFunds
	}
	b.accounts[account]--
	b.withdrawn++
	n := b.withdrawn
	b.mu.Unlock()

	if b.lg != nil {
		h := fmt.Sprintf("withdrawal-%d", n)
		b.lg.SawIdentity(SignerName, account, h)
		b.lg.SawData(SignerName, "blinded:"+hex.EncodeToString(blinded[:8]), h)
	}
	return blindrsa.BlindSign(b.key, blinded)
}

// Deposit performs the Verifier role: it verifies the coin, rejects
// double spends, and credits the depositing seller. category is the
// merchant-supplied purchase category — the partially sensitive datum
// (⊙/●) the paper's table attributes to the verifier.
func (b *Bank) Deposit(sellerAccount string, coin Coin, category string) error {
	if err := blindrsa.Verify(&b.key.PublicKey, coin.Serial, coin.Sig); err != nil {
		return ErrBadCoin
	}
	serial := coin.SerialHex()
	b.mu.Lock()
	if b.spent[serial] {
		b.mu.Unlock()
		return ErrDoubleSpend
	}
	b.spent[serial] = true
	b.accounts[sellerAccount]++
	b.deposited++
	b.mu.Unlock()

	if b.lg != nil {
		h := "deposit-" + serial[:16]
		b.lg.SawIdentity(VerifierName, sellerAccount, h)
		b.lg.SawData(VerifierName, category, h)
		b.lg.SawData(VerifierName, "serial:"+serial[:16], h)
	}
	return nil
}

// Stats reports lifetime withdrawal and deposit counts.
func (b *Bank) Stats() (withdrawn, deposited int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.withdrawn, b.deposited
}

// Buyer is a customer wallet.
type Buyer struct {
	Account string
	bank    *Bank
}

// NewBuyer binds a wallet to a bank account.
func NewBuyer(account string, bank *Bank) *Buyer {
	return &Buyer{Account: account, bank: bank}
}

// WithdrawCoin runs the full blind-issuance round trip and returns a
// spendable coin.
func (u *Buyer) WithdrawCoin() (Coin, error) {
	serial := make([]byte, 32)
	if _, err := rand.Read(serial); err != nil {
		return Coin{}, fmt.Errorf("digitalcash: serial: %w", err)
	}
	blinded, st, err := blindrsa.Blind(u.bank.PublicKey(), serial)
	if err != nil {
		return Coin{}, err
	}
	blindSig, err := u.bank.Withdraw(u.Account, blinded)
	if err != nil {
		return Coin{}, err
	}
	sig, err := blindrsa.Finalize(u.bank.PublicKey(), st, blindSig)
	if err != nil {
		return Coin{}, err
	}
	return Coin{Serial: serial, Sig: sig}, nil
}

// Seller accepts coins for goods and deposits them.
type Seller struct {
	Account  string
	Category string // merchant category reported at deposit
	bank     *Bank
	lg       *ledger.Ledger

	mu    sync.Mutex
	sales []string
}

// NewSeller creates a seller depositing into sellerAccount.
func NewSeller(account, category string, bank *Bank, lg *ledger.Ledger) *Seller {
	return &Seller{Account: account, Category: category, bank: bank, lg: lg}
}

// Sell verifies the coin offline, records the sale of item to an
// anonymous customer session, and deposits the coin. The seller
// observes what was bought (●) but only an anonymous session identity
// (△).
func (s *Seller) Sell(coin Coin, item, anonSession string) error {
	if err := blindrsa.Verify(s.bank.PublicKey(), coin.Serial, coin.Sig); err != nil {
		return ErrBadCoin
	}
	if s.lg != nil {
		h := "purchase-" + coin.SerialHex()[:16]
		s.lg.SawIdentity(SellerName, anonSession, h)
		s.lg.SawData(SellerName, item, h, "deposit-"+coin.SerialHex()[:16])
	}
	s.mu.Lock()
	s.sales = append(s.sales, item)
	s.mu.Unlock()
	return s.bank.Deposit(s.Account, coin, s.Category)
}

// Sales returns the items sold so far.
func (s *Seller) Sales() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.sales...)
}
