package digitalcash

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §3.1.1 blind-signature cash protocol. The
// signer authenticates the withdrawing account but signs only a blinded
// serial (opaque); the verifier sees the seller and a coarse purchase
// category at deposit (partial); the serial itself circulates as a
// bearer pseudonym (routing). Withdrawal and deposit flows share no
// handle, which is the whole point of the blinding.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "digitalcash",
		System:  "Digital Cash (blind signatures)",
		Section: "3.1.1",
		Doc:     "Chaumian digital cash: the bank's signing and verifying desks see disjoint halves of every coin's life.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "dc_withdrawal",
				Doc:  "authenticated withdrawal of one blinded coin",
				Fields: []schema.Field{
					{Name: "account", Label: schema.Identity},
					{Name: "blinded_serial", Label: schema.Opaque},
				},
			},
			{
				Name: "dc_blind_signature",
				Fields: []schema.Field{
					{Name: "blind_sig", Label: schema.Opaque},
				},
			},
			{
				Name: "dc_purchase",
				Doc:  "anonymous spend of one unblinded coin",
				Fields: []schema.Field{
					// The unblinded serial is a bearer pseudonym: valid once,
					// linkable to no withdrawal.
					{Name: "coin_serial", Label: schema.Routing},
					{Name: "order", Label: schema.Content},
				},
			},
			{
				Name: "dc_deposit",
				Doc:  "the seller's deposit of a received coin",
				Fields: []schema.Field{
					{Name: "seller_account", Label: schema.Routing},
					{Name: "coin_serial", Label: schema.Routing},
					// Deposit metadata leaks coarse purchase context (the
					// paper's ⊙/● for the verifier).
					{Name: "category", Label: schema.Query, Partial: true},
				},
			},
			{
				Name: "dc_receipt",
				Fields: []schema.Field{
					{Name: "goods", Label: schema.Opaque},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Buyer", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{
					{Message: "dc_withdrawal", Fields: []string{"account"}},
					{Message: "dc_purchase", Fields: []string{"coin_serial", "order"}},
				},
				Receives: []schema.Use{
					{Message: "dc_blind_signature"},
					{Message: "dc_receipt"},
				},
			},
			{
				Name: SignerName,
				Receives: []schema.Use{
					// The blinded serial is signed, never read.
					{Message: "dc_withdrawal", Fields: []string{"account"}},
				},
				Sends: []schema.Use{{Message: "dc_blind_signature"}},
			},
			{
				Name: VerifierName,
				Receives: []schema.Use{
					{Message: "dc_deposit", Fields: []string{"seller_account", "coin_serial", "category"}},
				},
			},
			{
				Name: SellerName,
				Receives: []schema.Use{
					{Message: "dc_purchase", Fields: []string{"coin_serial", "order"}},
				},
				Sends: []schema.Use{
					{Message: "dc_deposit", Fields: []string{"seller_account", "coin_serial", "category"}},
					{Message: "dc_receipt"},
				},
			},
		},
		Flows: []schema.Flow{
			{From: "Buyer", To: SignerName, Message: "dc_withdrawal", Handle: "withdrawal"},
			{From: SignerName, To: "Buyer", Message: "dc_blind_signature", Handle: "withdrawal"},
			{From: "Buyer", To: SellerName, Message: "dc_purchase", Handle: "purchase"},
			{From: SellerName, To: VerifierName, Message: "dc_deposit", Handle: "deposit"},
			{From: SellerName, To: "Buyer", Message: "dc_receipt", Handle: "purchase"},
		},
	}
}
