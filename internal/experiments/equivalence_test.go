package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"regexp"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/nettransport"
	"decoupling/internal/provenance"
	"decoupling/internal/simnet"
	"decoupling/internal/transport"
)

// The differential transport-equivalence suite: every table experiment
// runs twice, once over the deterministic simulator and once over real
// loopback TCP sockets, and everything the privacy analysis concludes —
// derived knowledge tuples, coalition verdicts, expected-vs-measured
// diffs — must be semantically identical. Delivery order, wall
// latencies, and Rand interleavings legitimately differ between the two
// stacks; what an observer *knows* must not. A divergence here means
// either the real transport leaks observations the simulator doesn't
// model, or the analysis was quietly depending on simulator scheduling.

// realTransport is the factory the suite injects: TCP mode, because the
// equivalence contract requires reliable delivery (UDP's kernel-level
// drops are a property of the wire, not of the protocols under test).
func realTransport(seed int64) transport.Runner {
	return nettransport.New(nettransport.Options{Mode: nettransport.ModeTCP, Seed: seed})
}

// tuplesEqual compares two measured systems symmetrically: each is
// diffed against the other as the expectation, so extra knowledge on
// either side surfaces.
func tuplesEqual(t *testing.T, id string, sim, real *core.System) {
	t.Helper()
	if sim == nil || real == nil {
		if sim != real {
			t.Fatalf("%s: measured system nil on one transport only (sim=%v real=%v)", id, sim != nil, real != nil)
		}
		return
	}
	if diffs := core.CompareTuples(sim, real); len(diffs) != 0 {
		t.Errorf("%s: real transport measured different knowledge than simulator:\n  %v", id, diffs)
	}
	if diffs := core.CompareTuples(real, sim); len(diffs) != 0 {
		t.Errorf("%s: simulator measured different knowledge than real transport:\n  %v", id, diffs)
	}
}

func TestTransportEquivalence(t *testing.T) {
	for _, exp := range All() {
		if exp.ID > "E9" || len(exp.ID) > 2 { // E1..E9: the paper-table experiments
			continue
		}
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			simRes, err := exp.Run(Ctx{})
			if err != nil {
				t.Fatalf("%s on simnet: %v", exp.ID, err)
			}
			realRes, err := exp.Run(WithTransport(nil, realTransport))
			if err != nil {
				t.Fatalf("%s on real transport: %v", exp.ID, err)
			}

			if simRes.Pass != realRes.Pass {
				t.Errorf("%s: pass disagrees: sim=%v real=%v", exp.ID, simRes.Pass, realRes.Pass)
			}
			if !reflect.DeepEqual(simRes.Diffs, realRes.Diffs) {
				t.Errorf("%s: expected-vs-measured diffs disagree:\n  sim:  %v\n  real: %v", exp.ID, simRes.Diffs, realRes.Diffs)
			}
			tuplesEqual(t, exp.ID, simRes.Measured, realRes.Measured)
			if !reflect.DeepEqual(simRes.Verdict, realRes.Verdict) {
				t.Errorf("%s: coalition verdict disagrees:\n  sim:  %+v\n  real: %+v", exp.ID, simRes.Verdict, realRes.Verdict)
			}
			if simRes.LedgerStats != nil && realRes.LedgerStats != nil {
				if simRes.LedgerStats.Total != realRes.LedgerStats.Total {
					t.Errorf("%s: ledger admitted %d observations on sim, %d on real",
						exp.ID, simRes.LedgerStats.Total, realRes.LedgerStats.Total)
				}
			}
		})
	}
}

// equivalenceScenario drives the audit-shaped mixnet cascade (3 mixes,
// threshold 4, 8 senders) over an arbitrary transport with a nil-clock
// ledger. The nil clock matters: provenance ordering uses observation
// time as a tie-break, and virtual-vs-wall timestamps are exactly the
// kind of nonsemantic difference this suite must ignore.
func equivalenceScenario(t *testing.T, net transport.Runner) *ledger.Ledger {
	t.Helper()
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	var route []mixnet.NodeInfo
	for i := 1; i <= 3; i++ {
		addr := fmt.Sprintf("mix%d", i)
		cls.RegisterIdentity(addr, "", "", core.NonSensitive)
		m, err := mixnet.NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(addr), 4, 0, lg)
		if err != nil {
			t.Fatalf("mix %d: %v", i, err)
		}
		route = append(route, m.Info())
	}
	rcv, err := mixnet.NewReceiver(net, "Receiver", "receiver", false, lg)
	if err != nil {
		t.Fatalf("receiver: %v", err)
	}
	for i := 0; i < 8; i++ {
		sender := fmt.Sprintf("sender%02d", i)
		msg := fmt.Sprintf("private message %02d", i)
		cls.RegisterIdentity(sender, sender, "", core.Sensitive)
		cls.RegisterData(msg, sender, "", core.Sensitive)
		s := &mixnet.Sender{Addr: simnet.Addr(sender)}
		if err := s.Send(net, route, rcv.Info(), []byte(msg)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	net.Run()
	if got := len(rcv.Inbox()); got != 8 {
		t.Fatalf("delivered %d of 8 messages", got)
	}
	return lg
}

// timestampRe strips the only legitimately transport-dependent field in
// a provenance report: evidence timestamps.
var timestampRe = regexp.MustCompile(`t=\S+`)

// TestAuditReportEquivalence is the strongest form of the differential
// check: the full canonical provenance report — derived tuples,
// evidence chains, handle aliases, linkage partitions — rendered from a
// run on each transport must match byte-for-byte after timestamp
// normalization. The canonicalization layer (1-WL handle refinement,
// content ordering) exists precisely so nondeterministic delivery
// order cannot change what an audit says; this test holds it to that.
func TestAuditReportEquivalence(t *testing.T) {
	report := func(net transport.Runner) string {
		defer net.Close()
		lg := equivalenceScenario(t, net)
		audit, err := provenance.Derive(lg, core.Mixnet(3))
		if err != nil {
			t.Fatalf("derive: %v", err)
		}
		var buf bytes.Buffer
		if err := provenance.WriteReport(&buf, audit); err != nil {
			t.Fatalf("report: %v", err)
		}
		return timestampRe.ReplaceAllString(buf.String(), "t=·")
	}

	simReport := report(simnet.New(7))
	realReport := report(realTransport(7))
	if simReport != realReport {
		t.Errorf("audit reports diverge between transports:\n--- simnet ---\n%s\n--- real ---\n%s", simReport, realReport)
	}
}
