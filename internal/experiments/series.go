package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/onion"
	"decoupling/internal/ppm"
	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
	"decoupling/internal/workload"
)

// E10Degrees quantifies §4.2 "Degrees of Decoupling": the privacy gain
// (minimum colluding-coalition size) and the cost (latency, bytes) as
// hops/aggregators are added. The paper's claim is qualitative — cost
// grows with degree and eventually "offers limited return in privacy at
// great cost" — so the reproduction asserts the monotone shape.
func E10Degrees(ctx Ctx) (*Result, error) {
	r := &Result{ID: "E10", Title: "Degrees of decoupling (cost vs. benefit)", Section: "4.2"}

	// --- Relay path length: onion circuits with 1..5 hops ---
	relayTable := Table{
		Title:   "Relay hops vs. round-trip time and collusion threshold",
		Columns: []string{"hops", "RTT (virtual)", "min coalition to re-couple"},
	}
	var prevRTT time.Duration
	var prevDegree int
	for hops := 1; hops <= 5; hops++ {
		rtt, degree, elapsed, err := onionRun(ctx, hops)
		if err != nil {
			return nil, err
		}
		r.VirtualElapsed += elapsed
		relayTable.Rows = append(relayTable.Rows, []string{
			fmt.Sprint(hops), rtt.String(), fmt.Sprint(degree),
		})
		if rtt <= prevRTT {
			r.Diffs = append(r.Diffs, fmt.Sprintf("RTT not increasing at %d hops", hops))
		}
		if degree < prevDegree {
			r.Diffs = append(r.Diffs, fmt.Sprintf("collusion threshold decreased at %d hops", hops))
		}
		prevRTT, prevDegree = rtt, degree
	}
	r.Tables = append(r.Tables, relayTable)

	// --- Aggregator count: PPM with 1..5 aggregators ---
	aggTable := Table{
		Title:   "PPM aggregators vs. upload bytes and collusion threshold",
		Columns: []string{"aggregators", "bytes/report", "min coalition to reconstruct"},
	}
	task := ppm.Task{ID: "e10", Type: ppm.TaskHistogram, Buckets: 8}
	prevBytes := 0
	for n := 1; n <= 5; n++ {
		shares, err := ppm.BuildReport(task, 3, n)
		if err != nil {
			return nil, err
		}
		bytes := 0
		for _, s := range shares {
			bytes += len(s.Marshal())
		}
		v, err := core.Analyze(core.PPM(n))
		if err != nil {
			return nil, err
		}
		aggTable.Rows = append(aggTable.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(bytes), fmt.Sprint(v.Degree),
		})
		if bytes <= prevBytes {
			r.Diffs = append(r.Diffs, fmt.Sprintf("upload bytes not increasing at %d aggregators", n))
		}
		if v.Degree != n {
			r.Diffs = append(r.Diffs, fmt.Sprintf("PPM(%d) degree = %d, want %d", n, v.Degree, n))
		}
		prevBytes = bytes
	}
	r.Tables = append(r.Tables, aggTable)
	r.Notes = append(r.Notes,
		"privacy gain (coalition size) and cost (RTT, bytes) both grow ~linearly with degree — the paper's cost/benefit tradeoff",
		"1 hop / 1 aggregator is the degenerate VPN-like case: a single party re-couples")
	r.Pass = len(r.Diffs) == 0
	return r, nil
}

// onionRun measures the request RTT through an n-hop circuit and the
// minimum coalition of relays able to re-couple (from the measured
// ledger structure). It also reports the virtual time the run consumed.
func onionRun(ctx Ctx, hops int) (time.Duration, int, time.Duration, error) {
	tel := ctx.Tel
	phase := tel.Start("phase:hops", telemetry.A("hops", telemetry.Itoa(hops)))
	defer phase.End()
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	net := ctx.NewNet(int64(hops))
	net.Instrument(tel)

	var infos []onion.RelayInfo
	for i := 1; i <= hops; i++ {
		rl, err := onion.NewRelay(net, fmt.Sprintf("Relay %d", i), simnet.Addr(fmt.Sprintf("relay%d", i)), lg)
		if err != nil {
			return 0, 0, 0, err
		}
		rl.Instrument(tel)
		infos = append(infos, rl.Info())
	}
	onion.NewOrigin(net, "Origin", "origin", 128, lg)
	cls.RegisterIdentity("alice", "alice", "", core.Sensitive)
	cls.RegisterData("GET /secret", "alice", "", core.Sensitive)

	client := onion.NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		return 0, 0, 0, err
	}
	net.Run()
	start := net.Now()
	if err := circ.Request("origin", []byte("GET /secret")); err != nil {
		return 0, 0, 0, err
	}
	net.Run()
	resps := client.Responses()
	if len(resps) != 1 {
		return 0, 0, 0, fmt.Errorf("onionRun(%d): %d responses", hops, len(resps))
	}
	rtt := resps[0].Time - start

	// Build a measured system: user + relays (+ origin) with tuples and
	// links derived from the ledger, and analyze the coalition degree.
	template := &core.System{Name: fmt.Sprintf("onion %d hops", hops), Section: "3.1.2"}
	template.Entities = append(template.Entities, core.Entity{
		Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()},
	})
	for i := 1; i <= hops; i++ {
		template.Entities = append(template.Entities, core.Entity{
			Name: fmt.Sprintf("Relay %d", i), Knows: core.Tuple{core.NonSensID(), core.NonSensData()},
		})
	}
	template.Entities = append(template.Entities, core.Entity{
		Name: "Origin", Knows: core.Tuple{core.NonSensID(), core.NonSensData()},
	})
	measured := lg.DeriveSystem(template)
	v, err := core.Analyze(measured)
	if err != nil {
		return 0, 0, 0, err
	}
	return rtt, v.Degree, net.Now(), nil
}

// E11Striping reproduces the §5.1 argument: distributing DNS queries
// across k resolvers limits the profile any single resolver can build.
func E11Striping(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E11", Title: "Resolver striping (§5.1)", Section: "5.1"}

	const users, queriesPerUser, nameCount = 20, 50, 40
	table := Table{
		Title:   "Queries striped across k resolvers",
		Columns: []string{"k", "avg profile completeness", "max profile completeness", "avg normalized entropy of per-resolver view"},
	}
	prevAvg := 2.0
	for _, k := range []int{1, 2, 4, 8} {
		phase := tel.Start("phase:stripe", telemetry.A("k", telemetry.Itoa(k)))
		zone := dns.NewZone("test")
		var allNames []string
		for i := 0; i < nameCount; i++ {
			n := fmt.Sprintf("site%02d.test", i)
			allNames = append(allNames, n)
			zone.Add(dnswire.A(n, 300, [4]byte{10, 0, 0, byte(i)}))
		}
		auth := &dns.AuthServer{Name: "auth", Zones: []*dns.Zone{zone}}
		resolvers := make([]*dns.Resolver, k)
		for i := range resolvers {
			resolvers[i] = dns.NewResolver(fmt.Sprintf("resolver-%d", i), []dns.Authority{auth}, nil, nil)
		}
		browsing, err := workload.NewBrowsing(int64(k), nameCount, 1.3)
		if err != nil {
			return nil, err
		}
		browsing.Names = allNames // query the zone's names

		// Ground truth: each user's distinct name set. Queries go
		// through the library's striping client (§5.1's mechanism) over
		// the shared Zipf browsing workload.
		userNames := map[string]map[string]bool{}
		for u := 0; u < users; u++ {
			who := fmt.Sprintf("user-%02d", u)
			userNames[who] = map[string]bool{}
			sc, err := dns.NewStripedClient(who, resolvers, dns.StripeRandom, int64(k*1000+u))
			if err != nil {
				return nil, err
			}
			for q, name := range browsing.Stream(u, queriesPerUser) {
				userNames[who][dnswire.CanonicalName(name)] = true
				sc.Resolve(dnswire.NewQuery(uint16(q), name, dnswire.TypeA))
			}
		}

		// Per-resolver profile completeness: fraction of a user's
		// distinct names visible in one resolver's log.
		var sum, max float64
		var count int
		var entropySum float64
		for _, res := range resolvers {
			seen := map[string]map[string]bool{}
			nameCounts := map[string]int{}
			for _, e := range res.Log() {
				if seen[e.Client] == nil {
					seen[e.Client] = map[string]bool{}
				}
				seen[e.Client][e.Name] = true
				nameCounts[e.Name]++
			}
			entropySum += adversary.NormalizedEntropy(nameCounts)
			for who, names := range userNames {
				frac := float64(len(seen[who])) / float64(len(names))
				sum += frac
				count++
				if frac > max {
					max = frac
				}
			}
		}
		avg := sum / float64(count)
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(k), fmt.Sprintf("%.3f", avg), fmt.Sprintf("%.3f", max),
			fmt.Sprintf("%.3f", entropySum/float64(k)),
		})
		if avg >= prevAvg {
			r.Diffs = append(r.Diffs, fmt.Sprintf("profile completeness did not fall at k=%d (%.3f >= %.3f)", k, avg, prevAvg))
		}
		prevAvg = avg
		phase.End()
	}
	r.Tables = append(r.Tables, table)
	r.Notes = append(r.Notes, "k=1 is the single-resolver baseline: the operator sees the complete profile")
	r.Pass = len(r.Diffs) == 0
	return r, nil
}

// E12TrafficAnalysis reproduces §4.3: the timing/size traffic-analysis
// attacks and the cost of the defenses (batching latency, padding
// bytes, chaff bandwidth) — the anonymity-trilemma shape.
func E12TrafficAnalysis(ctx Ctx) (*Result, error) {
	r := &Result{ID: "E12", Title: "Traffic analysis and defenses (§4.3)", Section: "4.3"}

	// --- Timing attack vs. batch size ---
	const senders = 64
	timing := Table{
		Title:   "Mix batching: rank-order timing attack vs. latency cost",
		Columns: []string{"batch threshold", "linkage accuracy", "mean delivery latency"},
	}
	var accs []float64
	for _, batch := range []int{1, 4, 16, 64} {
		acc, lat, elapsed, err := mixTimingRun(ctx, batch, senders, false)
		if err != nil {
			return nil, err
		}
		r.VirtualElapsed += elapsed
		accs = append(accs, acc)
		timing.Rows = append(timing.Rows, []string{
			fmt.Sprint(batch), fmt.Sprintf("%.3f", acc), lat.String(),
		})
	}
	if accs[0] != 1.0 {
		r.Diffs = append(r.Diffs, fmt.Sprintf("no-batching timing accuracy = %.3f, want 1.0", accs[0]))
	}
	if accs[len(accs)-1] > 0.2 {
		r.Diffs = append(r.Diffs, fmt.Sprintf("full-batch timing accuracy = %.3f, want <= 0.2", accs[len(accs)-1]))
	}
	r.Tables = append(r.Tables, timing)

	// --- Size attack vs. padding ---
	size := Table{
		Title:   "Message padding: rank-order size attack vs. bandwidth cost",
		Columns: []string{"padding", "linkage accuracy", "bytes on first hop"},
	}
	for _, padded := range []bool{false, true} {
		acc, bytes, err := mixSizeRun(ctx, 32, padded)
		if err != nil {
			return nil, err
		}
		label := "none"
		if padded {
			label = "fixed 512 B"
		}
		size.Rows = append(size.Rows, []string{label, fmt.Sprintf("%.3f", acc), fmt.Sprint(bytes)})
		if !padded && acc < 0.9 {
			r.Diffs = append(r.Diffs, fmt.Sprintf("unpadded size attack accuracy = %.3f, want >= 0.9", acc))
		}
		if padded && acc > 0.2 {
			r.Diffs = append(r.Diffs, fmt.Sprintf("padded size attack accuracy = %.3f, want <= 0.2", acc))
		}
	}
	r.Tables = append(r.Tables, size)

	// --- Chaff bandwidth overhead ---
	chaff := Table{
		Title:   "Onion chaff: bandwidth overhead per data request",
		Columns: []string{"chaff cells per request", "total cells on wire", "overhead factor"},
	}
	base := 0
	for _, rate := range []int{0, 1, 2, 4} {
		cells, err := onionChaffRun(ctx, rate)
		if err != nil {
			return nil, err
		}
		if rate == 0 {
			base = cells
		}
		chaff.Rows = append(chaff.Rows, []string{
			fmt.Sprint(rate), fmt.Sprint(cells), fmt.Sprintf("%.2fx", float64(cells)/float64(base)),
		})
	}
	r.Tables = append(r.Tables, chaff)

	// --- Long-term intersection attack vs. cover traffic ---
	disclosure := Table{
		Title:   "Statistical disclosure over 400 batch rounds: cover traffic as defense",
		Columns: []string{"target behaviour", "partner identified", "top score"},
	}
	for _, cover := range []bool{false, true} {
		top, score := disclosureRun(cover)
		label := "sends intermittently"
		if cover {
			label = "constant-rate cover traffic"
		}
		identified := "no"
		if top == "bob" && score > 0.3 {
			identified = "yes"
		}
		disclosure.Rows = append(disclosure.Rows, []string{label, identified, fmt.Sprintf("%.3f", score)})
		if !cover && identified != "yes" {
			r.Diffs = append(r.Diffs, fmt.Sprintf("intermittent sender not disclosed (top %s at %.3f)", top, score))
		}
		if cover && score > 0.1 {
			r.Diffs = append(r.Diffs, fmt.Sprintf("cover traffic failed: top score %.3f", score))
		}
	}
	r.Tables = append(r.Tables, disclosure)
	r.Notes = append(r.Notes,
		"strong anonymity (low linkage) costs latency (batching) or bandwidth (padding, chaff) — 'choose two' (Das et al., the paper's [10])",
		"batching hides per-message correspondence but not long-term participation; constant-rate cover traffic defeats the intersection attack at full-time bandwidth cost")
	r.Pass = len(r.Diffs) == 0
	return r, nil
}

// disclosureRun synthesizes 400 observed batch rounds and mounts the
// statistical disclosure attack on "alice", whose partner is "bob".
// With cover, alice participates every round and her real message is a
// small fraction; without, she participates only when messaging bob.
func disclosureRun(cover bool) (topReceiver string, topScore float64) {
	rng := rand.New(rand.NewSource(77))
	var rounds []adversary.Round
	for i := 0; i < 400; i++ {
		var r adversary.Round
		switch {
		case cover:
			r.Senders = append(r.Senders, "alice")
			if i%8 == 0 {
				r.Receivers = append(r.Receivers, "bob")
			} else {
				r.Receivers = append(r.Receivers, fmt.Sprintf("recv%d", rng.Intn(8)))
			}
		case i%2 == 0:
			r.Senders = append(r.Senders, "alice")
			r.Receivers = append(r.Receivers, "bob")
		}
		for j := 0; j < 3; j++ {
			r.Senders = append(r.Senders, fmt.Sprintf("noise%d", rng.Intn(20)))
			r.Receivers = append(r.Receivers, fmt.Sprintf("recv%d", rng.Intn(8)))
		}
		rounds = append(rounds, r)
	}
	scored := adversary.StatisticalDisclosure(rounds, "alice")
	if len(scored) == 0 {
		return "", 0
	}
	return scored[0].Receiver, scored[0].Score
}

// mixTimingRun stages senders 1ms apart through a 1-mix net with the
// given batch threshold and runs the rank-order timing attack.
func mixTimingRun(ctx Ctx, batch, senders int, padded bool) (accuracy float64, meanLatency time.Duration, elapsed time.Duration, err error) {
	tel := ctx.Tel
	phase := tel.Start("phase:batch", telemetry.A("threshold", telemetry.Itoa(batch)))
	defer phase.End()
	net := ctx.NewNet(int64(batch) + 100)
	net.Instrument(tel)
	m, err := mixnet.NewMix(net, "Mix 1", "mix1", batch, 0, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	m.Instrument(tel)
	rcv, err := mixnet.NewReceiver(net, "Receiver", "receiver", padded, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	rcv.Instrument(tel)
	route := []mixnet.NodeInfo{m.Info()}
	var entries []adversary.Event
	var sendTimes []time.Duration
	var sendErrs []error
	for i := 0; i < senders; i++ {
		who := fmt.Sprintf("s%02d", i)
		at := time.Duration(i) * time.Millisecond
		s := &mixnet.Sender{Addr: simnet.Addr(who)}
		if padded {
			s.PadTo = 512
		}
		msg := []byte(who)
		net.After(at, func() {
			if serr := s.Send(net, route, rcv.Info(), msg); serr != nil {
				sendErrs = append(sendErrs, fmt.Errorf("mixTimingRun: send %s: %w", who, serr))
			}
		})
		entries = append(entries, adversary.Event{Time: at, Subject: who})
		sendTimes = append(sendTimes, at)
	}
	net.Run()
	if len(sendErrs) > 0 {
		return 0, 0, 0, sendErrs[0]
	}
	inbox := rcv.Inbox()
	if len(inbox) != senders {
		return 0, 0, 0, fmt.Errorf("mixTimingRun: delivered %d of %d", len(inbox), senders)
	}
	var exits []adversary.Event
	var totalLatency time.Duration
	for i, got := range inbox {
		exits = append(exits, adversary.Event{Time: got.Time, Subject: string(got.Body)})
		totalLatency += got.Time - sendTimes[i%len(sendTimes)]
	}
	correct, total := adversary.TimingCorrelate(entries, exits)
	return float64(correct) / float64(total), totalLatency / time.Duration(senders), net.Now(), nil
}

// mixSizeRun sends distinct-length messages through a fully batched mix
// and mounts the rank-order size attack on the global capture.
func mixSizeRun(ctx Ctx, senders int, padded bool) (accuracy float64, firstHopBytes int, err error) {
	tel := ctx.Tel
	phase := tel.Start("phase:padding", telemetry.A("padded", fmt.Sprint(padded)))
	defer phase.End()
	net := ctx.NewNet(7)
	net.Instrument(tel)
	m, err := mixnet.NewMix(net, "Mix 1", "mix1", senders, 0, nil)
	if err != nil {
		return 0, 0, err
	}
	m.Instrument(tel)
	rcv, err := mixnet.NewReceiver(net, "Receiver", "receiver", padded, nil)
	if err != nil {
		return 0, 0, err
	}
	rcv.Instrument(tel)
	route := []mixnet.NodeInfo{m.Info()}
	for i := 0; i < senders; i++ {
		who := fmt.Sprintf("s%02d", i)
		s := &mixnet.Sender{Addr: simnet.Addr(who)}
		if padded {
			s.PadTo = 512
		}
		// Distinct sizes: message length 10 + 7i, under the pad budget.
		msg := make([]byte, 10+7*i)
		copy(msg, who)
		if err := s.Send(net, route, rcv.Info(), msg); err != nil {
			return 0, 0, err
		}
	}
	net.Run()

	// The observer's view: entry events keyed by sender with size; exit
	// events attributed via the receiver inbox order aligned with the
	// exit capture records.
	var entries, exits []adversary.Event
	var exitRecords []simnet.PacketRecord
	for _, rec := range net.Capture() {
		switch {
		case rec.Dst == "mix1":
			entries = append(entries, adversary.Event{Time: time.Duration(rec.Size), Subject: string(rec.Src)})
			firstHopBytes += rec.Size
		case rec.Src == "mix1" && rec.Dst == "receiver":
			exitRecords = append(exitRecords, rec)
		}
	}
	inbox := rcv.Inbox()
	if len(inbox) != len(exitRecords) {
		return 0, 0, fmt.Errorf("mixSizeRun: %d inbox vs %d exit records", len(inbox), len(exitRecords))
	}
	for i, rec := range exitRecords {
		subject := string(inbox[i].Body[:3])
		exits = append(exits, adversary.Event{Time: time.Duration(rec.Size), Subject: subject})
	}
	correct, total := adversary.TimingCorrelate(entries, exits) // rank order on size
	return float64(correct) / float64(total), firstHopBytes, nil
}

// onionChaffRun counts cells on the wire for one data request plus rate
// chaff cells through a 3-hop circuit.
func onionChaffRun(ctx Ctx, rate int) (cells int, err error) {
	tel := ctx.Tel
	phase := tel.Start("phase:chaff", telemetry.A("rate", telemetry.Itoa(rate)))
	defer phase.End()
	net := ctx.NewNet(int64(rate) + 5)
	net.Instrument(tel)
	var infos []onion.RelayInfo
	for i := 1; i <= 3; i++ {
		rl, err := onion.NewRelay(net, fmt.Sprintf("Relay %d", i), simnet.Addr(fmt.Sprintf("relay%d", i)), nil)
		if err != nil {
			return 0, err
		}
		rl.Instrument(tel)
		infos = append(infos, rl.Info())
	}
	onion.NewOrigin(net, "Origin", "origin", 64, nil)
	client := onion.NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		return 0, err
	}
	net.Run()
	pre := len(net.Capture())
	if err := circ.Request("origin", []byte("GET /x")); err != nil {
		return 0, err
	}
	for i := 0; i < rate; i++ {
		if err := circ.SendChaff(); err != nil {
			return 0, err
		}
	}
	net.Run()
	for _, rec := range net.Capture()[pre:] {
		if rec.Size == 1+onion.CellSize {
			cells++
		}
	}
	return cells, nil
}
