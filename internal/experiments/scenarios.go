package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/odns"
	"decoupling/internal/odoh"
	"decoupling/internal/resilience"
	"decoupling/internal/simnet"
)

// AuditScenario is a runnable system reproduction packaged for the
// provenance audit CLI: an expected model plus a runner that returns
// the quiesced ledger to audit. The table experiments reuse the same
// runners, so `decouple audit` explains exactly the runs the tables
// measure.
type AuditScenario struct {
	ID    string
	Title string
	// Expected returns the paper's model for the scenario.
	Expected func() *core.System
	// Run executes the scenario and returns its ledger. parallel splits
	// client load across that many goroutines where the protocol is
	// concurrency-safe; scenarios driven by the deterministic simulator
	// ignore it. Audit output is byte-identical across parallel values.
	Run func(ctx Ctx, parallel int) (*ledger.Ledger, error)
	// RunFaults runs the scenario under an injected fault plan, with the
	// protocol clients wrapped in the resilience layer (fail-closed).
	// The simulator-driven scenario applies the plan to its network; the
	// HTTP-shaped scenarios evaluate crash/partition/loss windows on a
	// deterministic logical clock (fault node names: odoh "proxy", odns
	// "oblivious"; latency spikes are simulator-only). Audit output is
	// byte-identical for a fixed plan.
	RunFaults func(ctx Ctx, parallel int, plan *simnet.FaultPlan) (*ledger.Ledger, error)
}

// AuditScenarios lists every scenario the audit CLI can run, in id
// order. All three are in-process and cross-run deterministic under
// audit rendering (canonical ordering + handle aliasing + redaction).
func AuditScenarios() []AuditScenario {
	return []AuditScenario{
		{
			ID:        "mixnet",
			Title:     "Chaum mix cascade (3 mixes, batch 4)",
			Expected:  func() *core.System { return core.Mixnet(3) },
			Run:       runMixnetScenario,
			RunFaults: runMixnetScenarioFaults,
		},
		{
			ID:        "odns",
			Title:     "Oblivious DNS (encrypted-name variant)",
			Expected:  core.ObliviousDNS,
			Run:       runODNSScenario,
			RunFaults: runODNSScenarioFaults,
		},
		{
			ID:        "odoh",
			Title:     "Oblivious DoH (RFC 9230 shape)",
			Expected:  core.ObliviousDNS,
			Run:       runODoHScenario,
			RunFaults: runODoHScenarioFaults,
		},
	}
}

// FindAuditScenario returns the scenario with the given id.
func FindAuditScenario(id string) (AuditScenario, bool) {
	for _, s := range AuditScenarios() {
		if s.ID == id {
			return s, true
		}
	}
	return AuditScenario{}, false
}

// auditDNSNames is the query workload shared by the DNS scenarios.
var auditDNSNames = []string{"www.example.com", "mail.example.com", "secret.example.com", "api.example.com"}

const auditDNSClients = 20

func auditZone() *dns.Zone {
	z := dns.NewZone("example.com")
	for i, n := range auditDNSNames {
		z.Add(dnswire.A(n, 300, [4]byte{192, 0, 2, byte(i)}))
	}
	return z
}

// registerDNSGroundTruth registers the client identities and query
// names (sensitive) plus the infrastructure names (non-sensitive, so
// audit reports render them unredacted) for a DNS scenario driving
// the given number of clients.
func registerDNSGroundTruth(cls *ledger.Classifier, clients int, infra ...string) {
	for i := 0; i < clients; i++ {
		who := fmt.Sprintf("client-%d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(dnswire.CanonicalName(auditDNSNames[i%len(auditDNSNames)]), who, "", core.Sensitive)
	}
	for _, name := range infra {
		cls.RegisterIdentity(name, "", "", core.NonSensitive)
	}
}

// forEachClient fans a loop over `clients` client indices out over
// `parallel` goroutines (at least 1) and returns the first error.
func forEachClient(parallel, clients int, fn func(i int) error) error {
	if parallel < 1 {
		parallel = 1
	}
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < clients; i += parallel {
				if err := fn(i); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// runODoHScenario drives the §3.2.2 ODoH reproduction: clients
// HPKE-encrypt queries through the proxy to the target, which resolves
// via the origin. This is the same run E4's ODoH half measures.
func runODoHScenario(ctx Ctx, parallel int) (*ledger.Ledger, error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	registerDNSGroundTruth(cls, auditDNSClients, odoh.ProxyName, odoh.TargetName, "Origin")

	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
	target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
	if err != nil {
		return nil, err
	}
	target.Instrument(tel)
	target.InstrumentWire(ctx.Wire)
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
	proxy.Instrument(tel)
	proxy.InstrumentWire(ctx.Wire)
	origin.Wire = ctx.Wire
	keyID, pub := target.KeyConfig()

	phase := tel.Start("phase:odoh")
	defer phase.End()
	err = forEachClient(parallel, auditDNSClients, func(i int) error {
		who := fmt.Sprintf("client-%d", i)
		c := odoh.NewClient(who, keyID, pub)
		c.Instrument(tel)
		c.InstrumentWire(ctx.Wire)
		_, err := c.Query(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA, proxy.Forward)
		return err
	})
	return lg, err
}

// runODNSScenario drives the §3.2.2 ODNS reproduction: clients send
// encrypted-name queries through a recursive resolver to the oblivious
// resolver, which decrypts and resolves via the origin. Same run as
// E4's ODNS half.
func runODNSScenario(ctx Ctx, parallel int) (*ledger.Ledger, error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	registerDNSGroundTruth(cls, auditDNSClients, "Resolver", odns.ObliviousResolverName, "Origin")

	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
	oblivious, err := odns.NewObliviousResolver(origin, lg)
	if err != nil {
		return nil, err
	}
	recursive := dns.NewResolver("Resolver", []dns.Authority{oblivious, origin}, lg, nil)
	origin.Wire = ctx.Wire
	oblivious.InstrumentWire(ctx.Wire)
	recursive.Wire = ctx.Wire

	phase := tel.Start("phase:odns")
	defer phase.End()
	err = forEachClient(parallel, auditDNSClients, func(i int) error {
		who := fmt.Sprintf("client-%d", i)
		c := odns.NewClient(who, oblivious.PublicKey(), recursive)
		c.InstrumentWire(ctx.Wire)
		_, err := c.Query(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA)
		return err
	})
	return lg, err
}

// runMixnetScenario drives a 3-mix cascade with batch threshold 4 and
// 8 senders over the seeded simulator. The ledger runs on the virtual
// clock, so audit evidence carries real virtual timestamps. parallel
// is ignored: the simulator is single-threaded and already
// deterministic.
func runMixnetScenario(ctx Ctx, _ int) (*ledger.Ledger, error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	net := ctx.NewRunner(2)
	defer net.Close()
	net.Instrument(tel)
	ctx.Wire.SetClock(net.Now)
	lg := ledger.New(cls, net.Now)
	lg.Instrument(tel)

	var route []mixnet.NodeInfo
	for i := 1; i <= 3; i++ {
		addr := fmt.Sprintf("mix%d", i)
		cls.RegisterIdentity(addr, "", "", core.NonSensitive)
		m, err := mixnet.NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(addr), 4, 0, lg)
		if err != nil {
			return nil, err
		}
		m.Instrument(tel)
		m.InstrumentWire(ctx.Wire)
		route = append(route, m.Info())
	}
	rcv, err := mixnet.NewReceiver(net, "Receiver", "receiver", false, lg)
	if err != nil {
		return nil, err
	}
	rcv.Instrument(tel)
	rcv.InstrumentWire(ctx.Wire)

	phase := tel.Start("phase:forward")
	defer phase.End()
	for i := 0; i < 8; i++ {
		sender := fmt.Sprintf("sender%02d", i)
		msg := fmt.Sprintf("private message %02d", i)
		cls.RegisterIdentity(sender, sender, "", core.Sensitive)
		cls.RegisterData(msg, sender, "", core.Sensitive)
		s := &mixnet.Sender{Addr: simnet.Addr(sender), Wire: ctx.Wire}
		if err := s.Send(net, route, rcv.Info(), []byte(msg)); err != nil {
			return nil, err
		}
	}
	net.Run()
	if got := len(rcv.Inbox()); got != 8 {
		return nil, fmt.Errorf("mixnet scenario: delivered %d of 8 messages", got)
	}
	return lg, nil
}

// scenarioHopDelay is the logical per-hop clock step the HTTP-shaped
// fault runners use to place query i / attempt j inside a fault
// plan's windows: the event happens at (i+j) * scenarioHopDelay.
const scenarioHopDelay = 10 * time.Millisecond

// faultGate evaluates one HTTP-shaped hop attempt against a fault
// plan: a crash of node or a partition of src->node fails the attempt
// fast; active loss fails it with a deterministic splitmix64 draw
// keyed by (i, j) — never a shared RNG, so parallel clients cannot
// perturb each other. Latency spikes have no HTTP equivalent here and
// are ignored (simulator-only).
func faultGate(plan *simnet.FaultPlan, src, node simnet.Addr, i, j int) error {
	t := time.Duration(i+j) * scenarioHopDelay
	if plan.CrashedAt(node, t) {
		return fmt.Errorf("scenario fault: %s at t=%s: %w", node, t, simnet.ErrNodeDown)
	}
	if plan.PartitionedAt(src, node, t) {
		return fmt.Errorf("scenario fault: link %s->%s partitioned at t=%s", src, node, t)
	}
	if l := plan.LossAt(src, node, t); l > 0 && chaosFrac(0xFA017, uint64(i)<<16|uint64(j)) < l {
		return fmt.Errorf("scenario fault: link %s->%s dropped attempt %d at t=%s", src, node, j, t)
	}
	return nil
}

// runODoHScenarioFaults is runODoHScenario with the client→proxy hop
// gated by the plan (fault node "proxy") and the clients wrapped in
// the fail-closed resilience layer. Each client's logical clock is a
// pure function of (client index, attempt), so the run stays
// parallel-safe and byte-identical for a fixed plan.
func runODoHScenarioFaults(ctx Ctx, parallel int, plan *simnet.FaultPlan) (*ledger.Ledger, error) {
	return odohFaultsRun(ctx, parallel, auditDNSClients, plan, false)
}

// odohFaultsRun is the parameterized core behind runODoHScenarioFaults
// and the schedule explorer's ODoH probes: a configurable client count
// (so counterexamples shrink) and, when failOpen is set, the E16
// misconfiguration — a direct-resolver fallback that re-couples the
// proxy operator's knowledge whenever the plan exhausts the oblivious
// path. failOpen is the explorer's planted violation; every other
// caller stays fail-closed.
func odohFaultsRun(ctx Ctx, parallel, clients int, plan *simnet.FaultPlan, failOpen bool) (*ledger.Ledger, error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	registerDNSGroundTruth(cls, clients, odoh.ProxyName, odoh.TargetName, "Origin")

	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
	target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
	if err != nil {
		return nil, err
	}
	target.Instrument(tel)
	target.InstrumentWire(ctx.Wire)
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
	proxy.Instrument(tel)
	proxy.InstrumentWire(ctx.Wire)
	origin.Wire = ctx.Wire
	keyID, pub := target.KeyConfig()

	// The fail-open escape hatch mirrors e16Run: a plain recursive
	// resolver registered under the proxy's own role, so falling back
	// hands the proxy operator plaintext names.
	var direct *dns.Resolver
	if failOpen {
		direct = dns.NewResolver(odoh.ProxyName, []dns.Authority{origin}, lg, nil)
	}

	phase := tel.Start("phase:odoh-faults")
	defer phase.End()
	err = forEachClient(parallel, clients, func(i int) error {
		who := fmt.Sprintf("client-%d", i)
		c := odoh.NewClient(who, keyID, pub)
		c.Instrument(tel)
		attempt := 0 // per-client, so parallel clients share nothing
		rc := &odoh.ResilientClient{
			Client: c, Policy: resilience.Default("odoh"),
			Forwards: []odoh.ForwardFunc{func(clientAddr string, raw []byte) ([]byte, error) {
				j := attempt
				attempt++
				if gerr := faultGate(plan, "client", "proxy", i, j); gerr != nil {
					return nil, gerr
				}
				return proxy.Forward(clientAddr, raw)
			}},
		}
		rc.Instrument(tel)
		if failOpen {
			// The ResilientClient only consults Fallback under an
			// explicit FailOpen policy — the misconfiguration takes
			// both the mode AND the hook, exactly like e16Run.
			rc.Policy.Mode = resilience.FailOpen
			rc.Fallback = func(name string, qtype dnswire.Type) (*dnswire.Message, error) {
				resp := direct.Resolve(who, dnswire.NewQuery(1, name, qtype))
				if resp.RCode != dnswire.RCodeNoError {
					return nil, fmt.Errorf("direct fallback failed: rcode=%v", resp.RCode)
				}
				return resp, nil
			}
		}
		// Fail-closed: a client inside a permanent fault window errors
		// out (wrapping resilience.ErrExhausted) rather than bypassing
		// the proxy; the audit then explains the healthy clients.
		_, qerr := rc.Query(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA)
		if qerr != nil && !errors.Is(qerr, resilience.ErrExhausted) {
			return qerr
		}
		return nil
	})
	return lg, err
}

// runODNSScenarioFaults is runODNSScenario with the recursive→oblivious
// hop gated by the plan (fault node "oblivious"). The gate's logical
// clock is the shared upstream call counter, so this runner is
// internally sequential regardless of parallel — the cost of keeping
// audits byte-identical.
func runODNSScenarioFaults(ctx Ctx, _ int, plan *simnet.FaultPlan) (*ledger.Ledger, error) {
	return odnsFaultsRun(ctx, auditDNSClients, plan)
}

// odnsFaultsRun is the parameterized core behind runODNSScenarioFaults
// and the explorer's ODNS probe.
func odnsFaultsRun(ctx Ctx, clients int, plan *simnet.FaultPlan) (*ledger.Ledger, error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	registerDNSGroundTruth(cls, clients, "Resolver", odns.ObliviousResolverName, "Origin")

	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
	oblivious, err := odns.NewObliviousResolver(origin, lg)
	if err != nil {
		return nil, err
	}
	gated := &gatedAuthority{inner: oblivious, plan: plan}
	recursive := dns.NewResolver("Resolver", []dns.Authority{gated, origin}, lg, nil)

	phase := tel.Start("phase:odns-faults")
	defer phase.End()
	for i := 0; i < clients; i++ {
		who := fmt.Sprintf("client-%d", i)
		c := odns.NewClient(who, oblivious.PublicKey(), recursive)
		_, qerr := c.QueryResilient(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA, resilience.Default("odns"), tel, nil)
		if qerr != nil && !errors.Is(qerr, resilience.ErrExhausted) {
			return nil, qerr
		}
	}
	return lg, nil
}

// gatedAuthority fails upstream queries whose position on the logical
// clock falls inside the plan's fault windows for node "oblivious".
type gatedAuthority struct {
	inner dns.Authority
	plan  *simnet.FaultPlan
	calls int
}

func (g *gatedAuthority) Serves(name string) bool { return g.inner.Serves(name) }

func (g *gatedAuthority) Handle(from string, q *dnswire.Message) *dnswire.Message {
	n := g.calls
	g.calls++
	if err := faultGate(g.plan, "resolver", "oblivious", n, 0); err != nil {
		r := q.Reply()
		r.RCode = dnswire.RCodeServFail
		return r
	}
	return g.inner.Handle(from, q)
}

// runMixnetScenarioFaults is runMixnetScenario with the plan applied
// to the simulator and the senders driven through RetryAsync on the
// virtual clock (fail-closed; staggered sends so retries interleave
// deterministically). Unlike the healthy runner it tolerates losses —
// the audit's job under faults is to explain what WAS observed.
func runMixnetScenarioFaults(ctx Ctx, _ int, plan *simnet.FaultPlan) (*ledger.Ledger, error) {
	return mixnetFaultsRun(ctx, 8, plan, true)
}

// mixnetFaultsRun is the parameterized core behind
// runMixnetScenarioFaults and the explorer's mixnet probe. strict
// keeps the audit CLI's guard that a plan severe enough to silence
// every sender is an error; the explorer passes false because fault
// synthesis is allowed to find such plans (silence leaks nothing).
func mixnetFaultsRun(ctx Ctx, senders int, plan *simnet.FaultPlan, strict bool) (*ledger.Ledger, error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	net := ctx.NewNet(2)
	net.Instrument(tel)
	lg := ledger.New(cls, net.Now)
	lg.Instrument(tel)

	var route []mixnet.NodeInfo
	for i := 1; i <= 3; i++ {
		addr := fmt.Sprintf("mix%d", i)
		cls.RegisterIdentity(addr, "", "", core.NonSensitive)
		m, err := mixnet.NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(addr), 4, 0, lg)
		if err != nil {
			return nil, err
		}
		m.Instrument(tel)
		route = append(route, m.Info())
	}
	rcv, err := mixnet.NewReceiver(net, "Receiver", "receiver", false, lg)
	if err != nil {
		return nil, err
	}
	rcv.Instrument(tel)
	net.ApplyFaults(plan)

	phase := tel.Start("phase:forward-faults")
	defer phase.End()
	p := resilience.Default("mixnet")
	p.Timeout = 80 * time.Millisecond
	for i := 0; i < senders; i++ {
		i := i
		sender := fmt.Sprintf("sender%02d", i)
		msg := fmt.Sprintf("private message %02d", i)
		cls.RegisterIdentity(sender, sender, "", core.Sensitive)
		cls.RegisterData(msg, sender, "", core.Sensitive)
		s := &mixnet.Sender{Addr: simnet.Addr(sender)}
		net.After(time.Duration(i)*time.Millisecond, func() {
			resilience.RetryAsync(net, tel, p, uint64(0xA0D17<<8)|uint64(i),
				func(int) error { return s.Send(net, route, rcv.Info(), []byte(msg)) },
				func() bool {
					for _, got := range rcv.Inbox() {
						if string(got.Body) == msg {
							return true
						}
					}
					return false
				},
				nil)
		})
	}
	net.Run()
	if strict && len(rcv.Inbox()) == 0 && !plan.Empty() {
		return nil, fmt.Errorf("mixnet fault scenario: nothing delivered (plan too severe to audit)")
	}
	return lg, nil
}
