package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"decoupling/internal/core"
	"decoupling/internal/provenance"
	"decoupling/internal/schema"
	"decoupling/internal/schema/catalog"
)

// staticBindings maps each experiment to the catalog scenarios whose
// static derivations its measured system is checked against. An
// experiment absent here has no measured decoupling table (E10–E12
// measure costs, not knowledge) and reports n/a.
//
// E4 runs both §3.2.2 instantiations against the same published table,
// so both declared protocols must bound its measurement. E14/E15
// exercise ODoH under faults — knowledge must stay inside the same
// schema no matter how the run degrades. E16 measures the fail-open
// architecture, whose own (deliberately coupled) declaration licenses
// it; the point is that the base odoh schema would NOT.
var staticBindings = map[string][]string{
	"E1":  {"digitalcash"},
	"E2":  {"mixnet"},
	"E3":  {"privacypass"},
	"E4":  {"odns", "odoh"},
	"E5":  {"pgpp"},
	"E6":  {"mpr"},
	"E7":  {"ppm"},
	"E8":  {"vpn"},
	"E9":  {"ech"},
	"E13": {"tee"},
	"E14": {"odoh"},
	"E15": {"odoh"},
	"E16": {"odoh-failopen"},
}

// StaticBindings returns the scenario ids whose schemas must bound the
// experiment's measured knowledge (nil when the experiment measures no
// decoupling table).
func StaticBindings(experimentID string) []string {
	return append([]string(nil), staticBindings[experimentID]...)
}

// BoundExperiments returns the experiment ids with static bindings, sorted.
func BoundExperiments() []string {
	out := make([]string, 0, len(staticBindings))
	for id := range staticBindings {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// numeric id order: E1 < E2 < ... < E16
		return len(out[i]) < len(out[j]) || (len(out[i]) == len(out[j]) && out[i] < out[j])
	})
	return out
}

// StaticConformance is one scenario's static ⊇ measured check for one
// experiment.
type StaticConformance struct {
	ExperimentID string
	Scenario     string
	Conf         *schema.Conformance
}

// StaticCheck derives every scenario bound to the experiment and checks
// static ⊇ measured against the experiment's measured system. When the
// result retains its ledger, each violation is annotated with the
// measured component's provenance evidence chain.
func StaticCheck(r *Result) ([]StaticConformance, error) {
	ids := staticBindings[r.ID]
	if len(ids) == 0 {
		return nil, nil
	}
	measured, expected := r.Measured, r.Expected
	if r.ID == "E13" {
		// E13 publishes no system table; its measured claim is the single
		// CDN-operator tuple derived from the run's ledger.
		measured, expected = teeMeasuredSystem(r)
	}
	var out []StaticConformance
	for _, id := range ids {
		sc, err := catalog.Get(id)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.ID, err)
		}
		st, err := schema.Derive(sc)
		if err != nil {
			return nil, fmt.Errorf("%s: derive scenario %q: %w", r.ID, id, err)
		}
		conf, err := st.Check(measured)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.ID, err)
		}
		if len(conf.Violations) > 0 && r.Ledger != nil && expected != nil {
			if audit, aerr := provenance.Derive(r.Ledger, expected); aerr == nil {
				for i := range conf.Violations {
					v := &conf.Violations[i]
					v.Evidence = audit.ExplainComponent(v.Entity, v.Component.Kind, v.Component.Label)
				}
			}
		}
		out = append(out, StaticConformance{ExperimentID: r.ID, Scenario: id, Conf: conf})
	}
	return out, nil
}

// teeMeasuredSystem builds E13's one-entity measured system: the CDN
// operator's tuple derived from the retained ledger against the
// schema-predicted template.
func teeMeasuredSystem(r *Result) (measured, expected *core.System) {
	sys := &core.System{Name: "TEE keyless CDN (Phoenix)", Section: "4.3"}
	if r.Ledger == nil {
		return nil, nil
	}
	tuple := r.Ledger.DeriveTuple("CDN Operator", core.Tuple{core.NonSensID(), core.NonSensData()})
	sys.Entities = []core.Entity{{Name: "CDN Operator", Knows: tuple, Links: []string{"cdn-conn"}}}
	return sys, sys
}

// RenderStatic writes the per-experiment static-conformance section for
// a completed run and returns the total violation count. Results render
// in input order; all content is derived from declarations and the
// deterministic measured systems, so the section is byte-identical
// across -parallel settings.
func RenderStatic(w io.Writer, results []RunnerResult) (violations int, err error) {
	fmt.Fprintf(w, "Static conformance (static ⊇ measured, from declared schemas):\n")
	for _, rr := range results {
		if rr.Err != nil || rr.Result == nil {
			fmt.Fprintf(w, "  %-4s (run failed — not checked)\n", rr.ID)
			continue
		}
		confs, cerr := StaticCheck(rr.Result)
		if cerr != nil {
			return violations, cerr
		}
		if confs == nil {
			fmt.Fprintf(w, "  %-4s n/a (no measured decoupling table)\n", rr.ID)
			continue
		}
		for _, sc := range confs {
			fmt.Fprintf(w, "  %-4s %-14s %s\n", rr.ID, sc.Scenario, sc.Conf.Summary())
			violations += len(sc.Conf.Violations)
			for _, v := range sc.Conf.Violations {
				for _, line := range strings.Split(strings.TrimRight(schema.RenderViolation(v), "\n"), "\n") {
					fmt.Fprintf(w, "       %s\n", line)
				}
			}
			for _, g := range sc.Conf.Gaps {
				fmt.Fprintf(w, "       gap: %s\n", g)
			}
		}
	}
	return violations, nil
}
