package experiments

import (
	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/simnet"
)

// ExploreProbe is a fault-tolerant scenario packaged for the schedule
// explorer (internal/explore): a paper model plus a runner
// parameterized by client count and fault plan, so a failing (clients,
// plan, schedule) triple can be delta-debugged down to a minimal
// counterexample. Probes are the subset of scenarios built to survive
// faults — the table experiments E1-E15 run under exploration too, but
// only with schedule permutation, never synthesized faults, because
// their pass criteria assume a healthy network.
type ExploreProbe struct {
	ID    string
	Title string
	// Expected returns the paper's model; oracles compare ledger-derived
	// knowledge against it.
	Expected func() *core.System
	// FailClosed declares the probe's contract: under ANY fault plan and
	// ANY admissible schedule, observed knowledge must stay within the
	// paper's tuples (faults may erase knowledge, never add it). The
	// explorer treats a violation as a bug. The one non-fail-closed
	// probe is the planted E16 misconfiguration the explorer exists to
	// find.
	FailClosed bool
	// FaultNodes are the node names fault synthesis may target with
	// crash/partition/loss clauses (the names the runner's fault gates
	// evaluate).
	FaultNodes []simnet.Addr
	// MaxClients bounds the client count synthesis may request;
	// shrinking lowers it toward 1.
	MaxClients int
	// Run drives `clients` clients under plan and returns the quiesced
	// ledger. parallel is the client goroutine fan-out (runs are
	// byte-identical across values; simulator-driven probes ignore it).
	// It must build any simulated network through ctx.NewNet so the
	// explorer's scheduler hook sees every decision point.
	Run func(ctx Ctx, parallel, clients int, plan *simnet.FaultPlan) (*ledger.Ledger, error)
}

// ExploreProbes returns the registered probes in id order. The
// "odoh-failopen" probe is deliberately misconfigured (FailClosed:
// false): any plan that exhausts a client's oblivious path triggers a
// direct-resolver fallback, handing the proxy operator plaintext names
// — the explorer must find that leak and shrink it.
func ExploreProbes() []ExploreProbe {
	return []ExploreProbe{
		{
			ID:         "mixnet",
			Title:      "Chaum mix cascade under faults (fail-closed)",
			Expected:   func() *core.System { return core.Mixnet(3) },
			FailClosed: true,
			FaultNodes: []simnet.Addr{"mix1", "mix2", "mix3"},
			MaxClients: 8,
			Run: func(ctx Ctx, _, clients int, plan *simnet.FaultPlan) (*ledger.Ledger, error) {
				return mixnetFaultsRun(ctx, clients, plan, false)
			},
		},
		{
			ID:         "odns",
			Title:      "Oblivious DNS under faults (fail-closed)",
			Expected:   core.ObliviousDNS,
			FailClosed: true,
			FaultNodes: []simnet.Addr{"oblivious"},
			MaxClients: auditDNSClients,
			Run: func(ctx Ctx, _, clients int, plan *simnet.FaultPlan) (*ledger.Ledger, error) {
				return odnsFaultsRun(ctx, clients, plan)
			},
		},
		{
			ID:         "odoh",
			Title:      "Oblivious DoH under faults (fail-closed)",
			Expected:   core.ObliviousDNS,
			FailClosed: true,
			FaultNodes: []simnet.Addr{"proxy"},
			MaxClients: auditDNSClients,
			Run: func(ctx Ctx, parallel, clients int, plan *simnet.FaultPlan) (*ledger.Ledger, error) {
				return odohFaultsRun(ctx, parallel, clients, plan, false)
			},
		},
		{
			ID:         "odoh-failopen",
			Title:      "Oblivious DoH, fail-open misconfiguration (planted E16 violation)",
			Expected:   core.ObliviousDNS,
			FailClosed: false,
			FaultNodes: []simnet.Addr{"proxy"},
			MaxClients: auditDNSClients,
			Run: func(ctx Ctx, parallel, clients int, plan *simnet.FaultPlan) (*ledger.Ledger, error) {
				return odohFaultsRun(ctx, parallel, clients, plan, true)
			},
		},
	}
}

// FindExploreProbe returns the probe with the given id.
func FindExploreProbe(id string) (ExploreProbe, bool) {
	for _, p := range ExploreProbes() {
		if p.ID == id {
			return p, true
		}
	}
	return ExploreProbe{}, false
}
