package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs the full E1-E12 suite: every paper table
// must reproduce exactly and every figure-equivalent must have the
// paper's shape. This is the repository's headline integration test.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	for _, exp := range All() {
		r, err := exp.Run(Ctx{})
		if err != nil {
			t.Fatalf("experiment runner error: %v", err)
		}
		if r.ID != exp.ID {
			t.Errorf("declared id %s, result id %s", exp.ID, r.ID)
		}
		if r.Section == "" || r.Title == "" {
			t.Errorf("%s missing metadata", r.ID)
		}
		t.Run(r.ID, func(t *testing.T) {
			if !r.Pass {
				t.Errorf("%s (%s) failed:\n%s", r.ID, r.Title, r.Render())
			}
		})
	}
}

func TestResultRender(t *testing.T) {
	r, err := E8VPN(Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"E8", "3.3", "paper", "measured", "NOT DECOUPLED"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTableAlignment(t *testing.T) {
	tab := Table{
		Title:   "t",
		Columns: []string{"a", "long column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
	}
	out := renderTable(tab)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

func TestExperimentIDsAreOrdered(t *testing.T) {
	wantIDs := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
	all := All()
	if len(all) != len(wantIDs) {
		t.Fatalf("experiments = %d, want %d", len(all), len(wantIDs))
	}
	for i, exp := range all {
		if exp.ID != wantIDs[i] {
			t.Errorf("experiment %d id = %s, want %s", i, exp.ID, wantIDs[i])
		}
	}
}
