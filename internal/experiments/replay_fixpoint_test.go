package experiments

import (
	"reflect"
	"testing"

	"decoupling/internal/simnet"
)

// TestReplayFixpointAfterClockAudit is the regression companion to the
// wall-clock guard in internal/transport: the schedule explorer's
// counterexample replay is only trustworthy if recording a run, replaying
// its trace, and re-recording yields the same trace — a fixpoint. A
// time.Now or time.Sleep leaking into a shared handler path is exactly
// the kind of bug that breaks this silently (schedules stop being the
// only source of nondeterminism), so the oracle is pinned here against
// the full audit-shaped mixnet scenario.
func TestReplayFixpointAfterClockAudit(t *testing.T) {
	record := func(install func(n *simnet.Network)) simnet.ScheduleTrace {
		var nets []*simnet.Network
		ctx := WithNetHook(nil, func(_ int, n *simnet.Network) {
			nets = append(nets, n)
			install(n)
		})
		if _, err := runMixnetScenario(ctx, 1); err != nil {
			t.Fatalf("scenario: %v", err)
		}
		if len(nets) != 1 {
			t.Fatalf("scenario built %d nets, want 1", len(nets))
		}
		return nets[0].RecordedSchedule()
	}

	seeded := record(func(n *simnet.Network) { n.SetScheduler(simnet.NewSeededScheduler(42)) })
	if len(seeded) == 0 {
		t.Fatal("seeded run recorded no scheduling decisions; the scenario no longer exercises the scheduler")
	}

	replayed := record(func(n *simnet.Network) { n.ReplaySchedule(seeded) })
	again := record(func(n *simnet.Network) { n.ReplaySchedule(replayed) })
	if !reflect.DeepEqual(replayed, again) {
		t.Fatalf("replay is not a fixpoint:\n first:  %v\n second: %v", replayed, again)
	}
}
