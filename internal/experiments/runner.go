package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

// Runner executes a set of experiments on a bounded worker pool and
// collects results deterministically ordered by the input slice (id
// order for All()).
//
// Experiments are mutually independent by construction: each builds its
// own simnet (virtual clock + seeded RNG), classifier, and ledger, and
// real-loopback systems bind ephemeral 127.0.0.1:0 ports. The runner
// therefore only has to order the collection, not the execution — the
// report produced from its results is byte-identical whether Workers is
// 1 or GOMAXPROCS.
//
// Telemetry preserves that property: each experiment gets its own
// Tracer (span ids and virtual timestamps are per-experiment state), so
// exporting traces in input order yields byte-identical JSONL at any
// parallelism. The Metrics registry is shared, but counter and
// histogram updates commute and exposition output is sorted.
type Runner struct {
	// Workers bounds concurrent experiment executions. Values < 1 mean
	// runtime.GOMAXPROCS(0).
	Workers int
	// Trace enables span recording: each experiment runs with its own
	// tracer, returned in its RunnerResult.
	Trace bool
	// Metrics, when non-nil, is the shared registry every experiment
	// reports counters and histograms into.
	Metrics *telemetry.Metrics
	// WireMode, when not ModeOff, gives each experiment its own
	// wire-trace plane (returned in its RunnerResult for export and
	// for the trace-plane audit). Per-experiment planes keep span and
	// trace ids independent of -parallel, like the tracers.
	WireMode wiretrace.Mode
	// Transport, when non-nil, overrides each experiment's transport
	// construction (the Ctx.NewRunner lever): cmd/experiments
	// -transport tcp runs the whole sweep over real loopback sockets.
	Transport func(seed int64) transport.Runner
}

// RunnerResult pairs one experiment's outcome with any execution error.
type RunnerResult struct {
	ID     string
	Result *Result
	Err    error
	// Trace is the experiment's span recording (nil unless the runner
	// ran with Trace enabled).
	Trace *telemetry.Tracer
	// Wire is the experiment's wire-trace plane (nil unless the runner
	// ran with a WireMode).
	Wire *wiretrace.Plane
}

// Run executes every experiment in exps and returns one RunnerResult
// per input, in input order regardless of completion order. It never
// returns early: an experiment error is recorded in its slot while the
// remaining experiments still run.
func (r *Runner) Run(exps []Experiment) []RunnerResult {
	workers := r.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	out := make([]RunnerResult, len(exps))
	if len(exps) == 0 {
		return out
	}

	type job struct {
		idx      int
		enqueued time.Time
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				exp := exps[j.idx]
				tel := telemetry.New(exp.ID, r.Trace, r.Metrics, telemetry.A("experiment", exp.ID))
				tel.Observe(telemetry.MetricRunnerQueueWait,
					"Wall-clock wait between experiment enqueue and worker pickup.",
					telemetry.WaitBuckets, time.Since(j.enqueued).Seconds())
				start := time.Now()
				// The root span: children are protocol phases and, under
				// those, per-hop deliveries. Its end is stamped with the
				// experiment's virtual elapsed time so the exported trace
				// stays wall-clock free.
				root := tel.Start("experiment", telemetry.A("id", exp.ID))
				// Seeded by slot so a plane's ids depend on the input
				// order, never on which worker picked the job up.
				wire := wiretrace.New(r.WireMode, int64(1000+j.idx))
				res, err := runOne(exp, tel, wire, r.Transport)
				if res != nil {
					res.WallElapsed = time.Since(start)
					root.EndAt(res.VirtualElapsed)
				} else {
					root.EndAt(0)
				}
				out[j.idx] = RunnerResult{ID: exp.ID, Result: res, Err: err, Trace: tel.Tracer(), Wire: wire}
			}
		}()
	}
	for i := range exps {
		jobs <- job{idx: i, enqueued: time.Now()}
	}
	close(jobs)
	wg.Wait()
	return out
}

// runOne executes a single experiment, converting panics into errors so
// one faulty experiment cannot take down a parallel run.
func runOne(exp Experiment, tel *telemetry.Telemetry, wire *wiretrace.Plane, tr func(seed int64) transport.Runner) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%s: panic: %v", exp.ID, p)
		}
	}()
	return exp.Run(Ctx{Tel: tel, Wire: wire, transport: tr})
}

// RunAll is shorthand for running every registered experiment with the
// given parallelism.
func RunAll(workers int) []RunnerResult {
	r := Runner{Workers: workers}
	return r.Run(All())
}
