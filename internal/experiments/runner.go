package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// Runner executes a set of experiments on a bounded worker pool and
// collects results deterministically ordered by the input slice (id
// order for All()).
//
// Experiments are mutually independent by construction: each builds its
// own simnet (virtual clock + seeded RNG), classifier, and ledger, and
// real-loopback systems bind ephemeral 127.0.0.1:0 ports. The runner
// therefore only has to order the collection, not the execution — the
// report produced from its results is byte-identical whether Workers is
// 1 or GOMAXPROCS.
type Runner struct {
	// Workers bounds concurrent experiment executions. Values < 1 mean
	// runtime.GOMAXPROCS(0).
	Workers int
}

// RunnerResult pairs one experiment's outcome with any execution error.
type RunnerResult struct {
	ID     string
	Result *Result
	Err    error
}

// Run executes every experiment in exps and returns one RunnerResult
// per input, in input order regardless of completion order. It never
// returns early: an experiment error is recorded in its slot while the
// remaining experiments still run.
func (r *Runner) Run(exps []Experiment) []RunnerResult {
	workers := r.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	out := make([]RunnerResult, len(exps))
	if len(exps) == 0 {
		return out
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				exp := exps[i]
				res, err := runOne(exp)
				out[i] = RunnerResult{ID: exp.ID, Result: res, Err: err}
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// runOne executes a single experiment, converting panics into errors so
// one faulty experiment cannot take down a parallel run.
func runOne(exp Experiment) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%s: panic: %v", exp.ID, p)
		}
	}()
	return exp.Run()
}

// RunAll is shorthand for running every registered experiment with the
// given parallelism.
func RunAll(workers int) []RunnerResult {
	r := Runner{Workers: workers}
	return r.Run(All())
}
