package experiments

import (
	"fmt"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/tee"
)

// E13TEE is the §4.3 extension experiment: Trusted Execution
// Environments as a decoupling mechanism. The paper argues TEEs move
// the locus of trust to the hardware vendor and names two systems,
// CACTI (client-side private rate-limiting state instead of CAPTCHAs)
// and Phoenix (keyless CDNs). Both run here, and the measured CDN
// operator tuple is compared against the traditional-CDN baseline.
func E13TEE(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E13", Title: "TEEs as a decoupling mechanism (CACTI + Phoenix)", Section: "4.3"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)

	vendor, err := tee.NewVendor("AcmeSilicon")
	if err != nil {
		return nil, err
	}

	// --- CACTI: rate proofs instead of CAPTCHAs ---
	enclave := vendor.Manufacture(tee.CACTIProgram())
	origin := tee.NewCACTIOrigin("site.example", vendor.PublicKey(), 5, lg)
	admitted, denied := 0, 0
	for i := 0; i < 8; i++ {
		if err := origin.Admit("anon-conn", enclave, fmt.Sprintf("/page/%d", i)); err != nil {
			denied++
		} else {
			admitted++
		}
	}
	if admitted != 5 || denied != 3 {
		r.Diffs = append(r.Diffs, fmt.Sprintf("CACTI admitted %d / denied %d, want 5/3 at threshold 5", admitted, denied))
	}
	r.Notes = append(r.Notes, fmt.Sprintf("CACTI: %d admitted, %d rate-limited; origin never saw the counter", admitted, denied))

	// --- Phoenix: keyless CDN ---
	cdnEnclave := vendor.Manufacture(tee.PhoenixProgram())
	publisher, err := tee.NewPhoenixOrigin("publisher.example")
	if err != nil {
		return nil, err
	}
	if err := publisher.Provision(vendor.PublicKey(), cdnEnclave, []byte("subscriber-only article")); err != nil {
		return nil, err
	}
	cdn := tee.NewPhoenixCDN("CDN Operator", cdnEnclave, lg)
	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("reader-%d", i)
		path := fmt.Sprintf("/articles/%d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(path, who, "", core.Sensitive)
		if _, err := tee.PhoenixRequest(publisher.PublicKey(), cdn, who, path); err != nil {
			return nil, err
		}
	}

	// Measured: the keyless CDN operator is (▲, ⊙); the traditional CDN
	// baseline is (▲, ●).
	operator := lg.DeriveTuple("CDN Operator", core.Tuple{core.NonSensID(), core.NonSensData()})
	want := core.Tuple{core.SensID(), core.NonSensData()}
	if !operator.Equal(want) {
		r.Diffs = append(r.Diffs, fmt.Sprintf("keyless CDN operator tuple = %s, want %s", operator.Symbol(), want.Symbol()))
	}
	r.Tables = append(r.Tables, Table{
		Title:   "CDN operator knowledge: keyless (measured) vs traditional (model)",
		Columns: []string{"architecture", "CDN operator tuple", "decoupled"},
		Rows: [][]string{
			{"Phoenix keyless CDN", operator.Symbol(), "yes (trust shifts to the hardware vendor)"},
			{"traditional CDN", core.Tuple{core.SensID(), core.SensData()}.Symbol(), "no (operator terminates TLS)"},
		},
	})
	r.Notes = append(r.Notes, "the enclave host observed only ciphertext; attestation bound the running code to the vendor's signature")
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	r.Pass = len(r.Diffs) == 0
	return r, nil
}
