package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"decoupling/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenResult builds a fully populated Result by hand: comparison
// table, verdict, divergences, a quantitative table, and notes — every
// branch Render has.
func goldenResult(t *testing.T) *Result {
	t.Helper()
	expected := core.PrivacyPass()
	measured := &core.System{
		Name: expected.Name + " (measured)",
		Entities: []core.Entity{
			{Name: "Client", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: "Issuer", Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: "Origin", Knows: core.Tuple{core.NonSensID(), core.SensData()}},
		},
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	return &Result{
		ID:       "EX",
		Title:    "golden fixture",
		Section:  "9.9",
		Expected: expected,
		Measured: measured,
		Diffs:    []string{"Issuer: data ⊙ (paper) vs ● (measured)"},
		Verdict:  &v,
		Tables: []Table{{
			Title:   "sweep",
			Columns: []string{"param", "linkage"},
			Rows:    [][]string{{"1", "1.00"}, {"32", "0.03"}},
		}},
		Notes: []string{"fixture note"},
		Pass:  false,
	}
}

// TestResultRenderGolden pins Result.Render's exact bytes for a result
// exercising every section: header, comparison, verdict, divergences,
// tables, and notes.
func TestResultRenderGolden(t *testing.T) {
	t.Parallel()
	checkGolden(t, "result_render_full", goldenResult(t).Render())
}

// TestResultRenderPassGolden pins the minimal passing shape (series
// experiments with tables only).
func TestResultRenderPassGolden(t *testing.T) {
	t.Parallel()
	r := &Result{
		ID:      "EX2",
		Title:   "series fixture",
		Section: "4.2",
		Tables: []Table{{
			Title:   "degrees",
			Columns: []string{"hops", "latency"},
			Rows:    [][]string{{"1", "20ms"}, {"3", "60ms"}},
		}},
		Pass: true,
	}
	checkGolden(t, "result_render_pass", r.Render())
}

// TestE8RenderGolden pins a real experiment's full report: E8 (VPN) is
// virtual-clock deterministic end to end, so its rendered bytes are a
// regression fence for the whole table pipeline.
func TestE8RenderGolden(t *testing.T) {
	t.Parallel()
	r, err := E8VPN(Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e8_render", r.Render())
}
