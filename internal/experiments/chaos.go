// Chaos experiments: the paper's §4 cost-of-decoupling story under
// PARTIAL FAILURE. Every added hop is an added failure mode; these
// experiments measure what the resilience layer buys (availability)
// and what it must never spend (privacy):
//
//   - E14: availability and latency vs. injected fault rate, per
//     protocol, with and without retries. Retries may leak counts
//     (more ciphertexts on the wire), never names.
//   - E15: failover across N interchangeable proxies — the
//     availability side of the §4.2 degrees-of-decoupling cost. The
//     coalition degree does not move.
//   - E16: the fail-open counterexample. A deliberately misconfigured
//     client degrades to a direct resolver under total proxy outage;
//     the ledger-derived tuple flips and the provenance audit flags
//     the partition COUPLED. Fail-closed, run on the same outage,
//     errors instead — and keeps the paper's table intact.
//
// Determinism: all chaos randomness is either the simulator's single
// seeded RNG or a splitmix64 hash of fixed seeds, and every client
// loop is internally sequential, so reports, metrics, and audits are
// byte-identical across runs and -parallel settings.
package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/faults"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/odns"
	"decoupling/internal/odoh"
	"decoupling/internal/onion"
	"decoupling/internal/provenance"
	"decoupling/internal/resilience"
	"decoupling/internal/simnet"
	"decoupling/internal/transport"
)

// chaosOverlay is an extra fault plan merged into every network the
// chaos experiments build, set from cmd/experiments -faults. Reports
// stay deterministic for any FIXED overlay; the experiments' own pass
// criteria assume the default (nil) overlay.
var (
	chaosMu      sync.Mutex
	chaosOverlay *faults.Plan
)

// SetChaosFaults installs an overlay fault plan for the chaos
// experiments (nil clears it). Safe to call before Runner.Run.
func SetChaosFaults(p *faults.Plan) {
	chaosMu.Lock()
	defer chaosMu.Unlock()
	chaosOverlay = p
}

func chaosFaults() *faults.Plan {
	chaosMu.Lock()
	defer chaosMu.Unlock()
	return chaosOverlay
}

// applyChaos overlays a run's own plan plus the -faults overlay. The
// network is addressed through the transport-neutral faults.Injector
// surface, so the same plan lands on the simulator's virtual clock or
// the real transport's wall clock — whichever the Ctx built.
func applyChaos(net transport.Runner, own *faults.Plan) {
	inj, ok := net.(faults.Injector)
	if !ok {
		return
	}
	if !own.Empty() {
		inj.ApplyFaults(own)
	}
	if o := chaosFaults(); !o.Empty() {
		inj.ApplyFaults(o)
	}
}

// chaosMix64 is the splitmix64 finalizer (same construction the
// resilience package uses for jitter): a cheap bijection hashing a
// fixed seed and a call index into a deterministic "random" stream.
func chaosMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chaosFrac maps (seed, n) to a uniform float in [0, 1).
func chaosFrac(seed, n uint64) float64 {
	return float64(chaosMix64(seed^n)%(1<<20)) / (1 << 20)
}

// flakyLink injects deterministic failures into an HTTP-shaped hop: the
// n-th call fails iff chaosFrac(seed, n) < rate. Mutex-guarded so the
// race detector stays clean even though chaos runs are sequential.
type flakyLink struct {
	rate float64
	seed uint64

	mu       sync.Mutex
	calls    uint64
	injected int
}

func (f *flakyLink) fail() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.calls
	f.calls++
	if chaosFrac(f.seed, n) < f.rate {
		f.injected++
		return true
	}
	return false
}

func (f *flakyLink) stats() (calls uint64, injected int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.injected
}

// flakyAuthority wraps a dns.Authority so a deterministic fraction of
// queries fail with SERVFAIL before reaching the inner authority — a
// transiently unreachable upstream. Failed attempts are still observed
// by the resolver in front of it (the retry leaks a COUNT), but the
// inner authority never sees them.
type flakyAuthority struct {
	inner dns.Authority
	link  *flakyLink
}

func (f *flakyAuthority) Serves(name string) bool { return f.inner.Serves(name) }

func (f *flakyAuthority) Handle(from string, q *dnswire.Message) *dnswire.Message {
	if f.link.fail() {
		r := q.Reply()
		r.RCode = dnswire.RCodeServFail
		return r
	}
	return f.inner.Handle(from, q)
}

// chaosRates are the injected fault rates E14 sweeps.
var chaosRates = []float64{0, 0.1, 0.3}

// mixnetChaosRun sends 16 staggered messages through a 3-mix cascade
// with burst loss injected on the entry link, driven by RetryAsync on
// the transport's clock. retry=false caps the policy at a single
// attempt. It builds through ctx.NewRunner, so the same run drives the
// simulator or real sockets; injected loss draws from the shared
// per-link LossDraw stream, making the availability table identical on
// both. The retry counter is atomic because real-transport attempts
// fire from concurrent timer goroutines.
func mixnetChaosRun(ctx Ctx, rate float64, retry bool) (delivered, retries int, elapsed time.Duration, err error) {
	tel := ctx.Tel
	net := ctx.NewRunner(14)
	defer net.Close()
	net.Instrument(tel)
	var route []mixnet.NodeInfo
	for i := 1; i <= 3; i++ {
		m, merr := mixnet.NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(fmt.Sprintf("mix%d", i)), 1, 0, nil)
		if merr != nil {
			return 0, 0, 0, merr
		}
		route = append(route, m.Info())
	}
	rcv, err := mixnet.NewReceiver(net, "Receiver", "receiver", false, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	plan := faults.NewPlan()
	if rate > 0 {
		plan.Loss(faults.Wildcard, "mix1", rate, 0, 0)
	}
	applyChaos(net, plan)

	p := resilience.Default("mixnet")
	// Generous against the wall clock: deliveries take microseconds on
	// loopback and milliseconds virtually; the timeout only has to beat
	// scheduler noise, and a fatter margin keeps the retry counts (and
	// so the table) identical across transports on a loaded machine.
	p.Timeout = 150 * time.Millisecond
	if !retry {
		p.MaxAttempts = 1
	}
	var retryCount atomic.Int64
	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		i := i
		s := &mixnet.Sender{Addr: simnet.Addr(fmt.Sprintf("sender%02d", i))}
		msg := []byte(fmt.Sprintf("chaos message %02d", i))
		net.After(time.Duration(i)*2*time.Millisecond, func() {
			resilience.RetryAsync(net, tel, p, uint64(0xE14<<8)|uint64(i),
				func(attempt int) error {
					if attempt > 0 {
						retryCount.Add(1)
					}
					return s.Send(net, route, rcv.Info(), msg)
				},
				func() bool {
					for _, got := range rcv.Inbox() {
						if string(got.Body) == string(msg) {
							return true
						}
					}
					return false
				},
				nil)
		})
	}
	net.Run()
	for _, got := range rcv.Inbox() {
		seen[string(got.Body)] = true
	}
	return len(seen), int(retryCount.Load()), net.Now(), nil
}

// onionChaosRun crashes the entry relay of an established circuit and
// issues one request after the crash. Without retries the request dies
// at the dead entry; with retries the client rebuilds through a
// surviving entry (BuildCircuitResilient) and the response arrives.
func onionChaosRun(ctx Ctx, retry bool) (delivered int, err error) {
	tel := ctx.Tel
	net := ctx.NewRunner(15)
	defer net.Close()
	net.Instrument(tel)
	var pool []onion.RelayInfo
	for i := 1; i <= 4; i++ {
		r, rerr := onion.NewRelay(net, fmt.Sprintf("Relay %d", i), simnet.Addr(fmt.Sprintf("relay%d", i)), nil)
		if rerr != nil {
			return 0, rerr
		}
		pool = append(pool, r.Info())
	}
	onion.NewOrigin(net, "Origin", "origin", 0, nil)
	client := onion.NewClient(net, "alice")

	// Circuit setup completes by 30ms virtually (3 hops) and within a
	// few ms of wall time; the entry dies at 35ms and restarts at
	// 200ms, and the request fires at 100ms — every gap is tens of
	// milliseconds wide so wall-clock timer skew cannot reorder the
	// crash, the request, and the restart. Rebuilt circuits may still
	// route through the dead relay as a middle hop (the client cannot
	// see mid-route crashes), so recovery needs the timeout-driven
	// retry to outlast the crash window — exactly the §4.3 cost being
	// measured.
	circ, err := client.BuildCircuit(pool[:3])
	if err != nil {
		return 0, err
	}
	applyChaos(net, faults.NewPlan().Crash("relay1", 35*time.Millisecond, 200*time.Millisecond))

	p := resilience.Default("onion")
	p.Timeout = 150 * time.Millisecond
	if !retry {
		p.MaxAttempts = 1
	}
	net.After(100*time.Millisecond, func() {
		resilience.RetryAsync(net, tel, p, 0xE14A,
			func(attempt int) error {
				c := circ
				if attempt > 0 {
					rebuilt, berr := client.BuildCircuitResilient(pool, 3, tel)
					if berr != nil {
						return berr
					}
					c = rebuilt
				}
				return c.Request("origin", []byte("GET /chaos"))
			},
			func() bool { return len(client.Responses()) > 0 },
			nil)
	})
	net.Run()
	return len(client.Responses()), nil
}

// odohChaosRun drives the E4 ODoH stack with a deterministically flaky
// client→proxy hop. Failed attempts never reach the proxy: the injected
// fault models an unreachable proxy, so retries cost the client wire
// attempts but leak nothing new to any observer.
func odohChaosRun(ctx Ctx, rate float64, retry bool) (ok int, lg *ledger.Ledger, link *flakyLink, err error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	lg = ledger.New(cls, nil)
	lg.Instrument(tel)
	registerDNSGroundTruth(cls, auditDNSClients, odoh.ProxyName, odoh.TargetName, "Origin")

	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
	target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
	if err != nil {
		return 0, nil, nil, err
	}
	target.Instrument(tel)
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
	proxy.Instrument(tel)
	keyID, pub := target.KeyConfig()

	link = &flakyLink{rate: rate, seed: 0xE14D0}
	forward := func(clientAddr string, raw []byte) ([]byte, error) {
		if link.fail() {
			return nil, fmt.Errorf("odoh: proxy unreachable (injected fault)")
		}
		return proxy.Forward(clientAddr, raw)
	}

	p := resilience.Default("odoh")
	if !retry {
		p.MaxAttempts = 1
	}
	for i := 0; i < auditDNSClients; i++ {
		who := fmt.Sprintf("client-%d", i)
		c := odoh.NewClient(who, keyID, pub)
		c.Instrument(tel)
		rc := &odoh.ResilientClient{Client: c, Policy: p, Forwards: []odoh.ForwardFunc{forward}}
		rc.Instrument(tel)
		if _, qerr := rc.Query(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA); qerr == nil {
			ok++
		}
	}
	return ok, lg, link, nil
}

// odnsChaosRun drives the E4 ODNS stack with a deterministically flaky
// oblivious-resolver upstream. Unlike odohChaosRun, failures happen
// BEHIND the recursive resolver: every retried attempt is one more
// (opaque) query in the resolver's logs — the count leak E14 verifies
// is counts-only.
func odnsChaosRun(ctx Ctx, rate float64, retry bool) (ok int, lg *ledger.Ledger, link *flakyLink, err error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	lg = ledger.New(cls, nil)
	lg.Instrument(tel)
	registerDNSGroundTruth(cls, auditDNSClients, "Resolver", odns.ObliviousResolverName, "Origin")

	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
	oblivious, err := odns.NewObliviousResolver(origin, lg)
	if err != nil {
		return 0, nil, nil, err
	}
	link = &flakyLink{rate: rate, seed: 0xE14D1}
	recursive := dns.NewResolver("Resolver",
		[]dns.Authority{&flakyAuthority{inner: oblivious, link: link}, origin}, lg, nil)

	p := resilience.Default("odns")
	if !retry {
		p.MaxAttempts = 1
	}
	for i := 0; i < auditDNSClients; i++ {
		who := fmt.Sprintf("client-%d", i)
		c := odns.NewClient(who, oblivious.PublicKey(), recursive)
		if retry {
			if _, qerr := c.QueryResilient(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA, p, tel, nil); qerr == nil {
				ok++
			}
		} else {
			if _, qerr := c.Query(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA); qerr == nil {
				ok++
			}
		}
	}
	return ok, lg, link, nil
}

// E14ChaosAvailability measures availability vs. injected fault rate
// for each decoupled protocol, with and without the resilience layer,
// and verifies the knowledge tuples survive the faults: retries may
// leak counts, never names.
func E14ChaosAvailability(ctx Ctx) (*Result, error) {
	r := &Result{ID: "E14", Title: "Chaos: availability vs fault rate (retries leak counts, not names)", Section: "4.3"}

	// Mixnet: burst loss on the entry link.
	mixT := Table{
		Title:   "mixnet: 16 messages, 3-mix cascade, burst loss on the entry link",
		Columns: []string{"loss rate", "delivered (no retry)", "delivered (retry)", "retries", "elapsed (retry)"},
	}
	for _, rate := range chaosRates {
		d0, _, _, err := mixnetChaosRun(ctx, rate, false)
		if err != nil {
			return nil, err
		}
		d1, retries, elapsed, err := mixnetChaosRun(ctx, rate, true)
		if err != nil {
			return nil, err
		}
		r.VirtualElapsed += elapsed
		mixT.Rows = append(mixT.Rows, []string{
			fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%d/16", d0), fmt.Sprintf("%d/16", d1),
			fmt.Sprint(retries), fmt.Sprint(elapsed),
		})
		if rate == 0 && (d0 != 16 || d1 != 16) {
			r.Diffs = append(r.Diffs, fmt.Sprintf("mixnet: lossless run dropped messages (%d/%d of 16)", d0, d1))
		}
		if d1 < d0 {
			r.Diffs = append(r.Diffs, fmt.Sprintf("mixnet: retries reduced delivery at rate %.1f (%d < %d)", rate, d1, d0))
		}
	}
	r.Tables = append(r.Tables, mixT)

	// Onion: entry-relay crash mid-session.
	o0, err := onionChaosRun(ctx, false)
	if err != nil {
		return nil, err
	}
	o1, err := onionChaosRun(ctx, true)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, Table{
		Title:   "onion routing: entry relay crashes after circuit setup",
		Columns: []string{"policy", "responses"},
		Rows: [][]string{
			{"no retry", fmt.Sprintf("%d/1", o0)},
			{"retry + circuit rebuild", fmt.Sprintf("%d/1", o1)},
		},
	})
	if o0 != 0 || o1 != 1 {
		r.Diffs = append(r.Diffs, fmt.Sprintf("onion: want 0 without retry and 1 with rebuild, got %d/%d", o0, o1))
	}

	// ODoH and ODNS: flaky hops on either side of the decoupling point.
	dnsT := Table{
		Title:   "oblivious DNS: 20 queries, flaky hop (fault before proxy for ODoH, behind resolver for ODNS)",
		Columns: []string{"protocol", "fault rate", "answered (no retry)", "answered (retry)", "injected failures", "tuple diffs (retry run)"},
	}
	expected := core.ObliviousDNS()
	for _, rate := range chaosRates {
		ok0, _, _, err := odohChaosRun(ctx, rate, false)
		if err != nil {
			return nil, err
		}
		ok1, lg1, link1, err := odohChaosRun(ctx, rate, true)
		if err != nil {
			return nil, err
		}
		_, inj := link1.stats()
		diffs := core.CompareTuples(expected, lg1.DeriveSystem(expected))
		dnsT.Rows = append(dnsT.Rows, []string{"odoh", fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%d/20", ok0), fmt.Sprintf("%d/20", ok1), fmt.Sprint(inj), fmt.Sprint(len(diffs))})
		if len(diffs) > 0 {
			r.Diffs = append(r.Diffs, prefixed(fmt.Sprintf("odoh rate %.1f", rate), diffs)...)
		}
		if ok1 < ok0 || (rate == 0 && ok1 != 20) {
			r.Diffs = append(r.Diffs, fmt.Sprintf("odoh: availability regressed at rate %.1f (%d no-retry, %d retry)", rate, ok0, ok1))
		}
		// Keep the highest-stress retry ledger as the experiment's primary
		// artifact: its tuples must still be the paper's table.
		if rate == chaosRates[len(chaosRates)-1] {
			r.Expected = expected
			r.Measured = lg1.DeriveSystem(expected)
			r.Ledger = lg1
			r.LedgerStats = ledgerStats(lg1)
			st := lg1.Stats()
			r.Notes = append(r.Notes, fmt.Sprintf(
				"odoh rate %.1f retry run: %d total observations for 20 queries — retries inflate counts; names and tuples are unchanged",
				rate, st.Total))
		}
	}
	for _, rate := range chaosRates {
		ok0, _, _, err := odnsChaosRun(ctx, rate, false)
		if err != nil {
			return nil, err
		}
		ok1, lg1, link1, err := odnsChaosRun(ctx, rate, true)
		if err != nil {
			return nil, err
		}
		_, inj := link1.stats()
		diffs := core.CompareTuples(expected, lg1.DeriveSystem(expected))
		dnsT.Rows = append(dnsT.Rows, []string{"odns", fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%d/20", ok0), fmt.Sprintf("%d/20", ok1), fmt.Sprint(inj), fmt.Sprint(len(diffs))})
		if len(diffs) > 0 {
			r.Diffs = append(r.Diffs, prefixed(fmt.Sprintf("odns rate %.1f", rate), diffs)...)
		}
		if ok1 < ok0 || (rate == 0 && ok1 != 20) {
			r.Diffs = append(r.Diffs, fmt.Sprintf("odns: availability regressed at rate %.1f (%d no-retry, %d retry)", rate, ok0, ok1))
		}
	}
	r.Tables = append(r.Tables, dnsT)

	v, err := core.Analyze(r.Measured)
	if err != nil {
		return nil, err
	}
	r.Verdict = &v
	r.Notes = append(r.Notes,
		"ODNS faults land BEHIND the recursive resolver: each retry adds one opaque entry to its logs (a count), never a plaintext name")
	r.Pass = len(r.Diffs) == 0
	return r, nil
}

// E15ChaosFailover measures failover across N interchangeable proxies
// against total outage of all but one — the availability half of the
// §4.2 degrees-of-decoupling cost. Replicating the SAME role adds
// attempts and latency but leaves the knowledge tuples and the
// coalition degree untouched.
func E15ChaosFailover(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E15", Title: "Chaos: failover across N proxies vs the degrees-of-decoupling cost", Section: "4.2"}
	expected := core.ObliviousDNS()
	t := Table{
		Title:   "ODoH failover: N-1 of N proxies down, 20 queries",
		Columns: []string{"proxies", "down", "attempts/query", "failovers/query", "answered", "tuple diffs", "degree"},
	}
	for _, n := range []int{1, 2, 4} {
		cls := ledger.NewClassifier()
		lg := ledger.New(cls, nil)
		lg.Instrument(tel)
		registerDNSGroundTruth(cls, auditDNSClients, odoh.ProxyName, odoh.TargetName, "Origin")
		origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
		target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
		if err != nil {
			return nil, err
		}
		proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
		keyID, pub := target.KeyConfig()

		// Proxies 0..n-2 are down hard (they observe nothing); the last
		// replica is healthy. Every replica plays the same "Resolver" role.
		var attempts int
		forwards := make([]odoh.ForwardFunc, 0, n)
		for i := 0; i < n-1; i++ {
			i := i
			forwards = append(forwards, func(string, []byte) ([]byte, error) {
				attempts++
				return nil, fmt.Errorf("odoh: proxy replica %d unreachable (injected outage)", i)
			})
		}
		forwards = append(forwards, func(clientAddr string, raw []byte) ([]byte, error) {
			attempts++
			return proxy.Forward(clientAddr, raw)
		})

		p := resilience.Default("odoh")
		p.MaxAttempts = n + 1
		answered := 0
		for i := 0; i < auditDNSClients; i++ {
			who := fmt.Sprintf("client-%d", i)
			c := odoh.NewClient(who, keyID, pub)
			c.Instrument(tel)
			rc := &odoh.ResilientClient{Client: c, Policy: p, Forwards: forwards}
			rc.Instrument(tel)
			if _, qerr := rc.Query(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA); qerr == nil {
				answered++
			}
		}

		measured := lg.DeriveSystem(expected)
		diffs := core.CompareTuples(expected, measured)
		v, err := core.Analyze(measured)
		if err != nil {
			return nil, err
		}
		perQuery := float64(attempts) / float64(auditDNSClients)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(n - 1),
			fmt.Sprintf("%.1f", perQuery), fmt.Sprintf("%.1f", perQuery-1),
			fmt.Sprintf("%d/20", answered), fmt.Sprint(len(diffs)), fmt.Sprint(v.Degree),
		})
		if answered != auditDNSClients {
			r.Diffs = append(r.Diffs, fmt.Sprintf("n=%d: only %d/20 queries answered", n, answered))
		}
		if attempts != n*auditDNSClients {
			r.Diffs = append(r.Diffs, fmt.Sprintf("n=%d: %d attempts, want %d (one per replica per query)", n, attempts, n*auditDNSClients))
		}
		if len(diffs) > 0 {
			r.Diffs = append(r.Diffs, prefixed(fmt.Sprintf("n=%d", n), diffs)...)
		}
		if n == 4 {
			r.Expected = expected
			r.Measured = measured
			r.Verdict = &v
			r.Ledger = lg
			r.LedgerStats = ledgerStats(lg)
		}
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"failover replicas fill the SAME role: attempts (availability cost) grow linearly with dead replicas while tuples and the coalition degree stay fixed",
		"contrast with §4.2: raising the degree means adding DIFFERENT roles (more hops), not more replicas of one role")
	r.Pass = len(r.Diffs) == 0
	return r, nil
}

// e16Run drives the ODoH stack through a healthy phase (clients 0-9)
// and a total proxy outage (clients 10-19) under the given degradation
// mode. In FailOpen mode the client is deliberately misconfigured with
// a direct-resolver fallback — the re-coupling the paper warns about.
func e16Run(ctx Ctx, mode resilience.Mode) (lg *ledger.Ledger, okHealthy, fallbacks, exhaustions int, err error) {
	tel := ctx.Tel
	cls := ledger.NewClassifier()
	lg = ledger.New(cls, nil)
	lg.Instrument(tel)
	registerDNSGroundTruth(cls, auditDNSClients, odoh.ProxyName, odoh.TargetName, "Origin")

	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
	target, terr := odoh.NewTarget(odoh.TargetName, origin, lg)
	if terr != nil {
		return nil, 0, 0, 0, terr
	}
	target.Instrument(tel)
	proxy := odoh.NewProxy(odoh.ProxyName, target, lg)
	proxy.Instrument(tel)
	keyID, pub := target.KeyConfig()

	outage := false
	forward := func(clientAddr string, raw []byte) ([]byte, error) {
		if outage {
			return nil, fmt.Errorf("odoh: proxy unreachable (total outage)")
		}
		return proxy.Forward(clientAddr, raw)
	}
	// The fallback path: a plain recursive resolver. It records under the
	// same "Resolver" role the oblivious proxy plays — which is exactly
	// the point: the operator who ran the proxy now sees plaintext names.
	direct := dns.NewResolver(odoh.ProxyName, []dns.Authority{origin}, lg, nil)

	p := resilience.Default("odoh")
	p.Mode = mode
	for i := 0; i < auditDNSClients; i++ {
		if i == 10 {
			outage = true
		}
		who := fmt.Sprintf("client-%d", i)
		c := odoh.NewClient(who, keyID, pub)
		c.Instrument(tel)
		rc := &odoh.ResilientClient{Client: c, Policy: p, Forwards: []odoh.ForwardFunc{forward}}
		rc.Instrument(tel)
		if mode == resilience.FailOpen {
			rc.Fallback = func(name string, qtype dnswire.Type) (*dnswire.Message, error) {
				fallbacks++
				resp := direct.Resolve(who, dnswire.NewQuery(1, name, qtype))
				if resp.RCode != dnswire.RCodeNoError {
					return nil, fmt.Errorf("direct fallback failed: rcode=%v", resp.RCode)
				}
				return resp, nil
			}
		}
		_, qerr := rc.Query(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA)
		switch {
		case qerr == nil && !outage:
			okHealthy++
		case qerr != nil && errors.Is(qerr, resilience.ErrExhausted):
			exhaustions++
		case qerr != nil:
			return nil, 0, 0, 0, fmt.Errorf("e16 %s client %d: unexpected error: %w", mode, i, qerr)
		}
	}
	return lg, okHealthy, fallbacks, exhaustions, nil
}

// E16ChaosFailOpen is the fail-open counterexample. Two identical runs
// hit a total proxy outage; they differ only in degradation policy.
// Fail-closed errors and the paper's table survives byte-for-byte.
// Fail-open "survives" the outage — and the ledger-derived Resolver
// tuple flips to (▲,●), the verdict to NOT decoupled, and the
// provenance audit flags the partition COUPLED. The experiment PASSES
// when the audit catches the misconfiguration.
func E16ChaosFailOpen(ctx Ctx) (*Result, error) {
	r := &Result{ID: "E16", Title: "Chaos: fail-closed vs fail-open under total proxy outage", Section: "3.3"}
	expected := core.ObliviousDNS()

	lgClosed, okC, fbC, exC, err := e16Run(ctx, resilience.FailClosed)
	if err != nil {
		return nil, err
	}
	measuredClosed := lgClosed.DeriveSystem(expected)
	diffsClosed := core.CompareTuples(expected, measuredClosed)

	lgOpen, okO, fbO, exO, err := e16Run(ctx, resilience.FailOpen)
	if err != nil {
		return nil, err
	}
	measuredOpen := lgOpen.DeriveSystem(expected)
	diffsOpen := core.CompareTuples(expected, measuredOpen)
	vOpen, err := core.Analyze(measuredOpen)
	if err != nil {
		return nil, err
	}
	audit, err := provenance.Derive(lgOpen, expected)
	if err != nil {
		return nil, err
	}
	coupled := 0
	for _, part := range audit.Partitions {
		if part.Coupled {
			coupled++
		}
	}

	r.Tables = append(r.Tables, Table{
		Title:   "identical outage, two degradation policies (10 healthy + 10 outage queries each)",
		Columns: []string{"policy", "healthy answered", "outage outcome", "tuple diffs", "coupled partitions"},
		Rows: [][]string{
			{"fail-closed", fmt.Sprintf("%d/10", okC), fmt.Sprintf("%d errors (ErrExhausted)", exC), fmt.Sprint(len(diffsClosed)), "0"},
			{"fail-open", fmt.Sprintf("%d/10", okO), fmt.Sprintf("%d direct fallbacks", fbO), fmt.Sprint(len(diffsOpen)), fmt.Sprint(coupled)},
		},
	})

	// Pass criteria: fail-closed preserves the paper's table and errors
	// loudly; fail-open is caught by the ledger-derived audit.
	if okC != 10 || exC != 10 || fbC != 0 {
		r.Diffs = append(r.Diffs, fmt.Sprintf("fail-closed: want 10 healthy + 10 exhaustions + 0 fallbacks, got %d/%d/%d", okC, exC, fbC))
	}
	if len(diffsClosed) > 0 {
		r.Diffs = append(r.Diffs, prefixed("fail-closed", diffsClosed)...)
	}
	if okO != 10 || fbO != 10 || exO != 0 {
		r.Diffs = append(r.Diffs, fmt.Sprintf("fail-open: want 10 healthy + 10 fallbacks + 0 exhaustions, got %d/%d/%d", okO, fbO, exO))
	}
	if len(diffsOpen) == 0 {
		r.Diffs = append(r.Diffs, "fail-open: expected the Resolver tuple to diverge from the paper's table; it did not")
	}
	if vOpen.Decoupled {
		r.Diffs = append(r.Diffs, "fail-open: measured system still analyzes as decoupled; the fallback should have re-coupled it")
	}
	if coupled == 0 {
		r.Diffs = append(r.Diffs, "fail-open: provenance audit found no coupled partition; it must flag the fallback")
	}

	for _, d := range diffsOpen {
		r.Notes = append(r.Notes, "fail-open divergence (expected, this is the counterexample): "+d)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("fail-open verdict: %s", &vOpen),
		"the rendered comparison below shows the fail-open run: availability bought by re-coupling, and the audit catches it")

	// The retained artifacts are the MISCONFIGURED run, so -audit emits
	// the COUPLED provenance record the experiment exists to produce.
	r.Expected = expected
	r.Measured = measuredOpen
	r.Verdict = &vOpen
	r.Ledger = lgOpen
	r.LedgerStats = ledgerStats(lgOpen)
	r.Pass = len(r.Diffs) == 0
	return r, nil
}
