package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// The chaos half of the differential transport-equivalence suite:
// E14–E16 run twice, once on the deterministic simulator and once on
// real loopback sockets with the SAME fault plans enforced by
// nettransport's wall-clock fault layer. Injected loss draws from the
// shared per-link LossDraw stream and crash windows leave wide margins
// against timer skew, so everything semantic — availability tables,
// retry counts, knowledge tuples, coalition verdicts, the E16 fail-open
// conviction — must be identical. Only wall time may differ, and it
// shows up in exactly one table column.

// chaosIDs are the experiments the suite compares.
var chaosIDs = map[string]bool{"E14": true, "E15": true, "E16": true}

// normalizeElapsed blanks cells in columns whose header mentions
// elapsed time — the one legitimately transport-dependent field (wall
// time on sockets, virtual time on the simulator). Everything else in
// every table must match verbatim.
func normalizeElapsed(tables []Table) []Table {
	out := make([]Table, len(tables))
	for ti, tab := range tables {
		norm := Table{Title: tab.Title, Columns: tab.Columns}
		elapsed := map[int]bool{}
		for ci, col := range tab.Columns {
			if strings.Contains(col, "elapsed") {
				elapsed[ci] = true
			}
		}
		for _, row := range tab.Rows {
			r := append([]string(nil), row...)
			for ci := range r {
				if !elapsed[ci] {
					continue
				}
				if _, err := time.ParseDuration(r[ci]); err != nil {
					// An elapsed cell should at least parse; surface
					// garbage instead of silently blanking it.
					continue
				}
				r[ci] = "·"
			}
			norm.Rows = append(norm.Rows, r)
		}
		out[ti] = norm
	}
	return out
}

func TestChaosTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos equivalence drives real sockets through crash windows; skipped in -short")
	}
	for _, exp := range All() {
		if !chaosIDs[exp.ID] {
			continue
		}
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			simRes, err := exp.Run(Ctx{})
			if err != nil {
				t.Fatalf("%s on simnet: %v", exp.ID, err)
			}
			realRes, err := exp.Run(WithTransport(nil, realTransport))
			if err != nil {
				t.Fatalf("%s on real transport: %v", exp.ID, err)
			}

			if simRes.Pass != realRes.Pass {
				t.Errorf("%s: pass disagrees: sim=%v real=%v", exp.ID, simRes.Pass, realRes.Pass)
			}
			if !reflect.DeepEqual(simRes.Diffs, realRes.Diffs) {
				t.Errorf("%s: expected-vs-measured diffs disagree:\n  sim:  %v\n  real: %v", exp.ID, simRes.Diffs, realRes.Diffs)
			}
			simTab := normalizeElapsed(simRes.Tables)
			realTab := normalizeElapsed(realRes.Tables)
			if !reflect.DeepEqual(simTab, realTab) {
				t.Errorf("%s: availability tables disagree after elapsed normalization:\n  sim:  %+v\n  real: %+v",
					exp.ID, simTab, realTab)
			}
			tuplesEqual(t, exp.ID, simRes.Measured, realRes.Measured)
			if !reflect.DeepEqual(simRes.Verdict, realRes.Verdict) {
				t.Errorf("%s: coalition verdict disagrees:\n  sim:  %+v\n  real: %+v", exp.ID, simRes.Verdict, realRes.Verdict)
			}
			if simRes.LedgerStats != nil && realRes.LedgerStats != nil {
				if simRes.LedgerStats.Total != realRes.LedgerStats.Total {
					t.Errorf("%s: ledger admitted %d observations on sim, %d on real",
						exp.ID, simRes.LedgerStats.Total, realRes.LedgerStats.Total)
				}
			}

			// E16 on the real transport must still CONVICT the fail-open
			// misconfiguration: the retained artifacts are the fail-open
			// run, its verdict must not be decoupled, and the table's
			// fail-open row must show coupled partitions.
			if exp.ID == "E16" {
				if realRes.Verdict == nil || realRes.Verdict.Decoupled {
					t.Errorf("E16 on real transport: fail-open run still analyzes as decoupled (%+v)", realRes.Verdict)
				}
				convicted := false
				for _, tab := range realRes.Tables {
					for _, row := range tab.Rows {
						if len(row) > 0 && row[0] == "fail-open" && row[len(row)-1] != "0" {
							convicted = true
						}
					}
				}
				if !convicted {
					t.Errorf("E16 on real transport: no fail-open row with nonzero coupled partitions:\n  %+v", realRes.Tables)
				}
			}
		})
	}
}
