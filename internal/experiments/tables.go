package experiments

import (
	"encoding/base64"
	"fmt"
	"net"

	"decoupling/internal/core"
	"decoupling/internal/dcrypto/token"
	"decoupling/internal/ech"
	"decoupling/internal/ledger"
	"decoupling/internal/mixnet"
	"decoupling/internal/mpr"
	"decoupling/internal/pgpp"
	"decoupling/internal/ppm"
	"decoupling/internal/privacypass"
	"decoupling/internal/simnet"
	"decoupling/internal/vpn"
	"decoupling/internal/workload"

	"decoupling/internal/digitalcash"
)

// keyBits is the blind-RSA modulus used across experiments; modest so
// the full suite runs in seconds while still exercising real math.
const keyBits = 1024

// E1DigitalCash reproduces the §3.1.1 blind-signature digital-currency
// table: 20 buyers withdraw and spend coins; Signer, Verifier, and
// Seller tuples are measured.
func E1DigitalCash(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E1", Title: "Digital cash (blind signatures)", Section: "3.1.1"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	bank, err := digitalcash.NewBank(keyBits, lg)
	if err != nil {
		return nil, err
	}
	bank.OpenAccount("bookshop", 0)
	seller := digitalcash.NewSeller("bookshop", "retail-books", bank, lg)
	cls.RegisterIdentity("bookshop", "", "", core.NonSensitive)

	for i := 0; i < 20; i++ {
		who := fmt.Sprintf("buyer%02d", i)
		item := fmt.Sprintf("controversial book %02d", i)
		anon := fmt.Sprintf("anon-session-%02d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterIdentity(anon, who, "", core.NonSensitive)
		cls.RegisterData(item, who, "", core.Sensitive)
		cls.RegisterData("retail-books", who, "", core.Partial)
		bank.OpenAccount(who, 2)
		coin, err := digitalcash.NewBuyer(who, bank).WithdrawCoin()
		if err != nil {
			return nil, err
		}
		if err := seller.Sell(coin, item, anon); err != nil {
			return nil, err
		}
	}
	w, d := bank.Stats()
	r.Notes = append(r.Notes, fmt.Sprintf("%d coins withdrawn, %d deposited, 0 linkable", w, d))
	r.Expected = core.DigitalCash()
	r.Measured = lg.DeriveSystem(r.Expected)
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	return r, tableExperiment(r)
}

// E2Mixnet reproduces the §3.1.2 table and Figure 1 with a 3-mix
// cascade carrying 64 senders' messages, batch threshold 8.
func E2Mixnet(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E2", Title: "Mix-net (Figure 1)", Section: "3.1.2"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	net := ctx.NewRunner(2)
	defer net.Close()
	net.Instrument(tel)
	ctx.Wire.SetClock(net.Now)

	var route []mixnet.NodeInfo
	for i := 1; i <= 3; i++ {
		m, err := mixnet.NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(fmt.Sprintf("mix%d", i)), 8, 0, lg)
		if err != nil {
			return nil, err
		}
		m.Instrument(tel)
		m.InstrumentWire(ctx.Wire)
		route = append(route, m.Info())
	}
	rcv, err := mixnet.NewReceiver(net, "Receiver", "receiver", false, lg)
	if err != nil {
		return nil, err
	}
	rcv.Instrument(tel)
	rcv.InstrumentWire(ctx.Wire)
	phase := tel.Start("phase:forward")
	for i := 0; i < 64; i++ {
		sender := fmt.Sprintf("sender%02d", i)
		msg := fmt.Sprintf("private message %02d", i)
		cls.RegisterIdentity(sender, sender, "", core.Sensitive)
		cls.RegisterData(msg, sender, "", core.Sensitive)
		s := &mixnet.Sender{Addr: simnet.Addr(sender), Wire: ctx.Wire}
		if err := s.Send(net, route, rcv.Info(), []byte(msg)); err != nil {
			return nil, err
		}
	}
	net.Run()
	phase.End()
	if got := len(rcv.Inbox()); got != 64 {
		return nil, fmt.Errorf("E2: delivered %d of 64 messages", got)
	}

	// The other half of Chaum's 1981 design: untraceable return
	// addresses. A sender pre-builds a reply block; the receiver answers
	// through it without learning who they answered.
	phase = tel.Start("phase:reply")
	collector := mixnet.NewReplyCollector(net, "sender00")
	replyAddr, replyKeys, err := mixnet.BuildReplyBlock(route, collector.Addr)
	if err != nil {
		return nil, err
	}
	if err := mixnet.SendReply(net, rcv.Addr, replyAddr, []byte("reply via return address")); err != nil {
		return nil, err
	}
	// The reply joins a batch; push 7 forward messages to flush it.
	for i := 0; i < 7; i++ {
		s := &mixnet.Sender{Addr: simnet.Addr(fmt.Sprintf("filler%d", i))}
		if err := s.Send(net, route, rcv.Info(), []byte(fmt.Sprintf("filler %d", i))); err != nil {
			return nil, err
		}
	}
	net.Run()
	phase.End()
	r.VirtualElapsed = net.Now()
	replies := collector.Inbox()
	if len(replies) != 1 || string(replyKeys.Decrypt(replies[0].Body)) != "reply via return address" {
		r.Diffs = append(r.Diffs, fmt.Sprintf("return-address reply failed: %d replies", len(replies)))
	}

	r.Notes = append(r.Notes,
		"64 messages through 3 mixes, batch threshold 8, all delivered",
		"untraceable return address exercised: the receiver replied without learning the sender")
	r.Expected = core.Mixnet(3)
	r.Measured = lg.DeriveSystem(r.Expected)
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	return r, tableExperiment(r)
}

// E3PrivacyPass reproduces the §3.2.1 table and Figure 2: clients prove
// legitimacy to the issuer, redeem unlinkable tokens at the origin.
func E3PrivacyPass(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E3", Title: "Privacy Pass (Figure 2)", Section: "3.2.1"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	issuer, err := privacypass.NewIssuer("issuer.example", keyBits, lg)
	if err != nil {
		return nil, err
	}
	origin := privacypass.NewOrigin("origin.example", "issuer.example", issuer.PublicKey(), lg)

	const clients, tokensEach = 8, 3
	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("client-%d", i)
		exit := fmt.Sprintf("exit-%d", i%2)
		cls.RegisterIdentity(id, id, "", core.Sensitive)
		cls.RegisterIdentity(exit, "", "", core.NonSensitive)
		issuer.Enroll(id)
		c := privacypass.NewClient(id, issuer.PublicKey())
		for j := 0; j < tokensEach; j++ {
			resource := fmt.Sprintf("/private/%d/%d", i, j)
			cls.RegisterData(resource, id, "", core.Sensitive)
			ch, err := origin.Challenge()
			if err != nil {
				return nil, err
			}
			tok, err := c.ObtainTokenDirect(ch, issuer)
			if err != nil {
				return nil, err
			}
			if err := origin.Redeem(exit, tok, resource); err != nil {
				return nil, err
			}
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf("%d tokens issued and redeemed; issuance/redemption unlinkable", clients*tokensEach))
	r.Expected = core.PrivacyPass()
	r.Measured = lg.DeriveSystem(r.Expected)
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	return r, tableExperiment(r)
}

// E4ObliviousDNS reproduces the §3.2.2 table for both ODNS and ODoH (the
// two named instantiations); both must match the same published table.
func E4ObliviousDNS(ctx Ctx) (*Result, error) {
	r := &Result{ID: "E4", Title: "Oblivious DNS (ODNS + ODoH)", Section: "3.2.2"}
	expected := core.ObliviousDNS()

	// Both halves run through the shared audit scenario runners, so
	// `decouple audit odns|odoh` explains exactly the runs measured here.
	lgA, err := runODNSScenario(ctx, 1)
	if err != nil {
		return nil, err
	}
	measuredA := lgA.DeriveSystem(expected)
	diffsA := core.CompareTuples(expected, measuredA)

	lgB, err := runODoHScenario(ctx, 1)
	if err != nil {
		return nil, err
	}
	measuredB := lgB.DeriveSystem(expected)
	diffsB := core.CompareTuples(expected, measuredB)

	r.Expected = expected
	r.Measured = measuredA
	r.Diffs = append(append([]string{}, prefixed("odns", diffsA)...), prefixed("odoh", diffsB)...)
	v, err := core.Analyze(measuredA)
	if err != nil {
		return nil, err
	}
	r.Verdict = &v
	r.Tables = append(r.Tables, Table{
		Title:   "ODoH variant (measured)",
		Columns: []string{"entity", "tuple"},
		Rows:    tupleRows(measuredB),
	})
	r.Notes = append(r.Notes, "both ODNS and ODoH reproduce the same published table")
	r.Ledger = lgB
	r.LedgerStats = ledgerStats(lgB)
	r.Pass = len(r.Diffs) == 0
	return r, nil
}

func prefixed(p string, ds []string) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = p + ": " + d
	}
	return out
}

func tupleRows(s *core.System) [][]string {
	var rows [][]string
	for _, e := range s.Entities {
		rows = append(rows, []string{e.Name, e.Knows.Symbol()})
	}
	return rows
}

// E5PGPP reproduces the §3.2.3 table (with the ▲_H/▲_N decomposition)
// and adds the shuffle-policy ablation the PGPP design motivates.
func E5PGPP(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E5", Title: "Pretty Good Phone Privacy", Section: "3.2.3"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	cfg := pgpp.DefaultSimConfig()
	if _, err := pgpp.RunSim(cfg, lg); err != nil {
		return nil, err
	}
	r.Expected = core.PGPP()
	r.Measured = lg.DeriveSystem(r.Expected)
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	if err := tableExperiment(r); err != nil {
		return nil, err
	}

	// Tracking-accuracy ablation across policies.
	ablation := Table{
		Title:   "Core-log tracking accuracy by identifier policy",
		Columns: []string{"architecture", "shuffle policy", "tracking accuracy"},
	}
	runs := []struct {
		label  string
		pgppOn bool
		policy pgpp.ShufflePolicy
	}{
		{"baseline cellular", false, pgpp.ShuffleNever},
		{"PGPP", true, pgpp.ShuffleNever},
		{"PGPP", true, pgpp.ShuffleDaily},
		{"PGPP", true, pgpp.ShufflePerAttach},
	}
	var prev float64 = 2
	for _, run := range runs {
		c := cfg
		c.PGPP = run.pgppOn
		c.Policy = run.policy
		res, err := pgpp.RunSim(c, nil)
		if err != nil {
			return nil, err
		}
		acc := pgpp.TrackingAccuracy(res.Core.Log(), res.NetIDOwner)
		ablation.Rows = append(ablation.Rows, []string{run.label, run.policy.String(), fmt.Sprintf("%.3f", acc)})
		if acc > prev+1e-9 {
			r.Pass = false
			r.Diffs = append(r.Diffs, fmt.Sprintf("tracking accuracy not monotone: %s/%s = %.3f > previous %.3f",
				run.label, run.policy, acc, prev))
		}
		prev = acc
	}
	r.Tables = append(r.Tables, ablation)

	// Side-channel caveat: spatio-temporal continuity re-links shuffled
	// pseudonyms when the deployment is sparse; density (co-location)
	// is the defense. This is the paper's "up to the limits of what is
	// feasible to reconstruct or infer" qualifier, measured.
	continuity := Table{
		Title:   "Continuity attack on per-attach shuffling: density matters",
		Columns: []string{"deployment", "naive tracking", "continuity-chained tracking"},
	}
	for _, d := range []struct {
		label        string
		users, cells int
	}{
		{"sparse (4 users / 50 cells)", 4, 50},
		{"dense (30 users / 6 cells)", 30, 6},
	} {
		c := cfg
		c.Users, c.Cells = d.users, d.cells
		c.Policy = pgpp.ShufflePerAttach
		res, err := pgpp.RunSim(c, nil)
		if err != nil {
			return nil, err
		}
		naive := pgpp.TrackingAccuracy(res.Core.Log(), res.NetIDOwner)
		chained := pgpp.ContinuityAttack(res.Core.Log(), res.NetIDOwner, c.Cells, 1)
		continuity.Rows = append(continuity.Rows, []string{
			d.label, fmt.Sprintf("%.3f", naive), fmt.Sprintf("%.3f", chained),
		})
	}
	r.Tables = append(r.Tables, continuity)
	r.Notes = append(r.Notes, "identifier shuffling alone does not defeat trajectory side channels; co-location density is the actual defense")
	return r, nil
}

// E6MPR reproduces the §3.2.4 Multi-Party Relay table over real
// loopback TCP with nested TLS tunnels, with Privacy Pass tokens gating
// relay 1 (the composition deployed systems use).
func E6MPR(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E6", Title: "Multi-Party Relay", Section: "3.2.4"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)

	// Relay access is gated on real Privacy Pass tokens (the deployed
	// composition: the first hop authenticates subscribers without
	// learning what they browse). The issuer is not an entity of this
	// table — its own table is E3 — so it is not instrumented here.
	issuer, err := privacypass.NewIssuer("relay-access-issuer", keyBits, nil)
	if err != nil {
		return nil, err
	}
	accessGate := privacypass.NewOrigin("relay1.access", "relay-access-issuer", issuer.PublicKey(), nil)
	validate := func(tok string) error {
		raw, err := base64.StdEncoding.DecodeString(tok)
		if err != nil {
			return fmt.Errorf("bad token encoding: %w", err)
		}
		t, err := token.Unmarshal(raw)
		if err != nil {
			return err
		}
		return accessGate.Redeem("tunnel-client", t, "/tunnel")
	}

	stack, err := mpr.NewStack(lg, validate)
	if err != nil {
		return nil, err
	}
	defer stack.Close()
	cls.RegisterData("connect:"+stack.OriginAddr, "", "", core.Partial)

	// Client connections stay open for the whole measurement window so
	// their ephemeral ports cannot be recycled into relay-side dials
	// (which would corrupt address-classification ground truth).
	var held []net.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < 8; i++ {
		who := fmt.Sprintf("user-%d", i)
		path := fmt.Sprintf("/secret/%d", i)
		cls.RegisterData(path, who, "", core.Sensitive)

		// Obtain a fresh access token for this tunnel.
		issuer.Enroll(who)
		ch, err := accessGate.Challenge()
		if err != nil {
			return nil, err
		}
		tok, err := privacypass.NewClient(who, issuer.PublicKey()).ObtainTokenDirect(ch, issuer)
		if err != nil {
			return nil, err
		}
		_, conn, err := stack.FetchConn(path, base64.StdEncoding.EncodeToString(tok.Marshal()), "", func(localAddr string) {
			cls.RegisterIdentity(localAddr, who, "", core.Sensitive)
		})
		if conn != nil {
			held = append(held, conn)
		}
		if err != nil {
			return nil, err
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("8 fetches, relay1 tunnels=%d relay2 tunnels=%d, token-gated first hop", stack.Relay1.Tunnels(), stack.Relay2.Tunnels()))
	r.Expected = core.MPR()
	r.Measured = lg.DeriveSystem(r.Expected)
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	return r, tableExperiment(r)
}

// E7PPM reproduces the §3.2.5 private aggregate statistics table and
// records correctness of the aggregate.
func E7PPM(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E7", Title: "Private aggregate statistics (PPM/Prio)", Section: "3.2.5"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	task := ppm.Task{ID: "e7-sum", Type: ppm.TaskSum, Bits: 8}
	sys := ppm.NewSystem(task, 2, lg)

	const clients = 256
	meter := workload.NewTelemetry(7, 200)
	var want uint64
	for i := 0; i < clients; i++ {
		who := fmt.Sprintf("client-%03d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		v := meter.Next()
		want += v
		if _, err := sys.Upload(who, v); err != nil {
			return nil, err
		}
	}
	acc, rej := sys.VerifyAll()
	got, err := sys.Aggregate()
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, fmt.Sprintf("%d reports accepted, %d rejected; aggregate %d (want %d)", acc, rej, got[0], want))
	if got[0] != want || rej != 0 {
		r.Diffs = append(r.Diffs, fmt.Sprintf("aggregate incorrect: got %d want %d (rejected %d)", got[0], want, rej))
	}

	r.Expected = core.PPM(2)
	r.Measured = lg.DeriveSystem(r.Expected)
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	if err := tableExperiment(r); err != nil {
		return nil, err
	}
	r.Pass = r.Pass && got[0] == want
	return r, nil
}

// E8VPN reproduces the §3.3 cautionary-tale table: the VPN server
// measures coupled and the verdict is NOT decoupled.
func E8VPN(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E8", Title: "Centralized VPN (cautionary tale)", Section: "3.3"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	srv := vpn.NewServer(lg)
	vpnAddr, err := srv.Start()
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	origin := vpn.NewOrigin(lg)
	originAddr, err := origin.Start()
	if err != nil {
		return nil, err
	}
	defer origin.Close()

	// Hold client connections open across the measurement window (see
	// E6 for why: ephemeral-port reuse vs. classifier ground truth).
	var held []net.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < 8; i++ {
		who := fmt.Sprintf("user-%d", i)
		url := fmt.Sprintf("http://%s/secret/%d", originAddr, i)
		cls.RegisterData(url, who, "", core.Sensitive)
		_, conn, err := vpn.FetchConn(vpnAddr, url, func(localAddr string) {
			cls.RegisterIdentity(localAddr, who, "", core.Sensitive)
		})
		if conn != nil {
			held = append(held, conn)
		}
		if err != nil {
			return nil, err
		}
	}
	r.Expected = core.VPN()
	r.Measured = lg.DeriveSystem(r.Expected)
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	if err := tableExperiment(r); err != nil {
		return nil, err
	}
	// For the cautionary tale, success additionally requires the
	// verdict to be NOT decoupled at degree 1.
	if r.Verdict.Decoupled || r.Verdict.Degree != 1 {
		r.Pass = false
		r.Diffs = append(r.Diffs, fmt.Sprintf("expected NOT-decoupled degree-1 verdict, got %s", r.Verdict))
	}
	return r, nil
}

// E9ECH reproduces the §3.3 ECH discussion: the network's view improves
// but the system remains coupled at the server.
func E9ECH(ctx Ctx) (*Result, error) {
	tel := ctx.Tel
	r := &Result{ID: "E9", Title: "TLS Encrypted ClientHello (cautionary tale)", Section: "3.3"}
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	lg.Instrument(tel)
	srv, err := ech.NewServer(lg)
	if err != nil {
		return nil, err
	}
	network := ech.NewNetwork(lg)
	for i := 0; i < 8; i++ {
		who := fmt.Sprintf("client-%d", i)
		addr := fmt.Sprintf("10.0.0.%d", i)
		req := fmt.Sprintf("GET /records/%d", i)
		cls.RegisterIdentity(addr, who, "", core.Sensitive)
		cls.RegisterData("sni:private.example", who, "", core.Sensitive)
		cls.RegisterData(req, who, "", core.Sensitive)
		if _, err := ech.Connect(network, srv, addr, "private.example", req, true); err != nil {
			return nil, err
		}
	}
	r.Expected = core.ECH()
	r.Measured = lg.DeriveSystem(r.Expected)
	r.Ledger = lg
	r.LedgerStats = ledgerStats(lg)
	if err := tableExperiment(r); err != nil {
		return nil, err
	}
	if r.Verdict.Decoupled {
		r.Pass = false
		r.Diffs = append(r.Diffs, "ECH measured as decoupled; it must not be")
	}
	return r, nil
}
