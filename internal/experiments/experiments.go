// Package experiments regenerates every table and figure of the paper's
// evaluation from the running implementations. Each experiment (E1-E16,
// indexed in DESIGN.md) returns a structured Result holding the paper's
// expected analysis, the empirically measured one, any divergences, and
// the quantitative series for the figure-equivalent experiments.
//
// The table experiments (E1-E9) are reproductions in the strict sense:
// the measured knowledge tuples must equal the published tables. The
// series experiments (E10-E12) reproduce the qualitative shapes of
// §4.2/§4.3/§5.1 — costs growing with the degree of decoupling, linkage
// falling with batching and padding, per-resolver knowledge falling
// with striping. The chaos experiments (E14-E16) rerun the decoupled
// stacks under injected partial failure: availability vs. fault rate,
// failover across replicas, and the fail-open counterexample the
// ledger audit must catch.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// Table is a generic rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Result is one experiment's outcome.
type Result struct {
	ID      string
	Title   string
	Section string // paper section the artifact lives in
	// Expected/Measured are set for decoupling-table experiments.
	Expected *core.System
	Measured *core.System
	// Diffs lists tuple divergences (empty on success).
	Diffs []string
	// Verdict is the analysis of the measured system, when applicable.
	Verdict *core.Verdict
	// Tables carries quantitative series for figure-equivalents.
	Tables []Table
	// Notes carries free-form observations worth recording.
	Notes []string
	// Pass is the experiment's own success criterion.
	Pass bool

	// VirtualElapsed is the simulated time consumed (zero for
	// experiments that do not drive a simnet clock). Deterministic.
	VirtualElapsed time.Duration
	// WallElapsed is the real execution time, set by the runner. It is
	// machine-dependent and therefore never rendered by Render.
	WallElapsed time.Duration
	// LedgerStats summarizes the experiment's observation ledger
	// (per-observer counts), surfaced by cmd/experiments -stats. Like
	// WallElapsed it is diagnostic output, excluded from Render.
	LedgerStats *ledger.Stats
	// Ledger is the experiment's primary observation ledger, retained
	// for provenance audits (cmd/experiments -audit). Diagnostic like
	// LedgerStats: never rendered.
	Ledger *ledger.Ledger
}

// Render formats the result for terminal output / EXPERIMENTS.md.
func (r *Result) Render() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "## %s — %s (paper §%s) [%s]\n\n", r.ID, r.Title, r.Section, status)
	if r.Expected != nil && r.Measured != nil {
		b.WriteString(core.RenderComparison(r.Expected, r.Measured))
		b.WriteString("\n")
	}
	if r.Verdict != nil {
		fmt.Fprintf(&b, "verdict: %s\n\n", r.Verdict)
	}
	for _, d := range r.Diffs {
		fmt.Fprintf(&b, "DIVERGENCE: %s\n", d)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
		b.WriteString(renderTable(t))
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	return b.String()
}

func renderTable(t Table) string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// tableExperiment finishes a table-reproduction result: diff measured
// against expected and analyze.
func tableExperiment(r *Result) error {
	r.Diffs = core.CompareTuples(r.Expected, r.Measured)
	v, err := core.Analyze(r.Measured)
	if err != nil {
		return fmt.Errorf("%s: analyzing measured system: %w", r.ID, err)
	}
	r.Verdict = &v
	r.Pass = len(r.Diffs) == 0
	return nil
}

// ExperimentFunc runs one experiment. ctx carries the telemetry
// handle (nil when observability is off); implementations thread it to
// the layers they build and may ignore it entirely.
type ExperimentFunc func(ctx Ctx) (*Result, error)

// ledgerStats snapshots a ledger for Result.LedgerStats.
func ledgerStats(lg *ledger.Ledger) *ledger.Stats {
	st := lg.Stats()
	return &st
}

// Experiment pairs an experiment id with its runner so callers can
// select without executing.
type Experiment struct {
	ID  string
	Run ExperimentFunc
}

// All returns every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1DigitalCash},
		{"E2", E2Mixnet},
		{"E3", E3PrivacyPass},
		{"E4", E4ObliviousDNS},
		{"E5", E5PGPP},
		{"E6", E6MPR},
		{"E7", E7PPM},
		{"E8", E8VPN},
		{"E9", E9ECH},
		{"E10", E10Degrees},
		{"E11", E11Striping},
		{"E12", E12TrafficAnalysis},
		{"E13", E13TEE},
		{"E14", E14ChaosAvailability},
		{"E15", E15ChaosFailover},
		{"E16", E16ChaosFailOpen},
	}
}
