package experiments

import (
	"errors"
	"fmt"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/odoh"
	"decoupling/internal/provenance"
	"decoupling/internal/resilience"
	"decoupling/internal/simnet"
)

// TestFailClosedInvariantUnderTotalOutage is the acceptance test for
// the degradation policy: with every proxy dead, every ODoH query must
// error wrapping resilience.ErrExhausted, and the ledger must stay
// EMPTY — a fail-closed client leaks nothing to anyone while failing,
// so the measured system still analyzes as decoupled.
func TestFailClosedInvariantUnderTotalOutage(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	registerDNSGroundTruth(cls, auditDNSClients, odoh.ProxyName, odoh.TargetName, "Origin")
	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{auditZone()}, Ledger: lg}
	target, err := odoh.NewTarget(odoh.TargetName, origin, lg)
	if err != nil {
		t.Fatal(err)
	}
	keyID, pub := target.KeyConfig()

	dead := func(string, []byte) ([]byte, error) {
		return nil, errors.New("proxy unreachable")
	}
	for i := 0; i < auditDNSClients; i++ {
		who := fmt.Sprintf("client-%d", i)
		rc := &odoh.ResilientClient{
			Client:   odoh.NewClient(who, keyID, pub),
			Policy:   resilience.Default("odoh"),
			Forwards: []odoh.ForwardFunc{dead, dead},
		}
		_, qerr := rc.Query(auditDNSNames[i%len(auditDNSNames)], dnswire.TypeA)
		if !errors.Is(qerr, resilience.ErrExhausted) {
			t.Fatalf("client %d: err = %v, want ErrExhausted", i, qerr)
		}
	}

	if st := lg.Stats(); st.Total != 0 {
		t.Fatalf("fail-closed outage leaked %d observations", st.Total)
	}
	expected := core.ObliviousDNS()
	measured := lg.DeriveSystem(expected)
	for _, e := range measured.Entities {
		if e.User {
			continue
		}
		for _, c := range e.Knows {
			if c.Level > core.NonSensitive {
				t.Errorf("%s learned a %v component during a total outage", e.Name, c.Level)
			}
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("measured system after fail-closed outage: %s, want decoupled", &v)
	}
}

// TestFailOpenFallbackIsFlaggedCoupled pins the E16 detection invariant
// independently of the experiment's own pass accounting: a fail-open
// run's ledger must flip the Resolver tuple, break the verdict, and
// yield at least one COUPLED provenance partition.
func TestFailOpenFallbackIsFlaggedCoupled(t *testing.T) {
	lg, okHealthy, fallbacks, exhaustions, err := e16Run(Ctx{}, resilience.FailOpen)
	if err != nil {
		t.Fatal(err)
	}
	if okHealthy != 10 || fallbacks != 10 || exhaustions != 0 {
		t.Fatalf("healthy/fallbacks/exhaustions = %d/%d/%d, want 10/10/0", okHealthy, fallbacks, exhaustions)
	}
	expected := core.ObliviousDNS()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) == 0 {
		t.Error("fail-open run matches the paper's table; the fallback should have flipped the Resolver tuple")
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decoupled {
		t.Errorf("fail-open verdict = %s, want NOT decoupled", &v)
	}
	audit, err := provenance.Derive(lg, expected)
	if err != nil {
		t.Fatal(err)
	}
	coupled := 0
	for _, part := range audit.Partitions {
		if part.Coupled {
			coupled++
		}
	}
	if coupled == 0 {
		t.Error("provenance audit found no coupled partition in the fail-open ledger")
	}
}

// TestChaosFracDeterministicAndUniform: the injected-failure stream is
// a pure function of (seed, n) and roughly uniform on [0, 1).
func TestChaosFracDeterministicAndUniform(t *testing.T) {
	var sum float64
	const n = 4096
	for i := uint64(0); i < n; i++ {
		v := chaosFrac(0xABCD, i)
		if v != chaosFrac(0xABCD, i) {
			t.Fatal("chaosFrac not deterministic")
		}
		if v < 0 || v >= 1 {
			t.Fatalf("chaosFrac out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestFlakyLinkIsDeterministic(t *testing.T) {
	count := func() int {
		l := &flakyLink{rate: 0.3, seed: 0xBEEF}
		for i := 0; i < 500; i++ {
			l.fail()
		}
		_, injected := l.stats()
		return injected
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("injected counts differ: %d vs %d", a, b)
	}
	if a < 100 || a > 200 {
		t.Errorf("injected %d of 500 at rate 0.3", a)
	}
	zero := &flakyLink{rate: 0, seed: 1}
	for i := 0; i < 100; i++ {
		if zero.fail() {
			t.Fatal("rate-0 link injected a failure")
		}
	}
}

// TestChaosOverlayAffectsSimulatorRuns: a -faults overlay merges into
// the chaos experiments' simulators (crashing the middle mix kills the
// whole cascade), and clearing it restores the healthy baseline.
func TestChaosOverlayAffectsSimulatorRuns(t *testing.T) {
	SetChaosFaults(simnet.NewFaultPlan().Crash("mix2", 0, 0))
	defer SetChaosFaults(nil)
	delivered, _, _, err := mixnetChaosRun(Ctx{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Errorf("delivered %d through a crashed mix", delivered)
	}

	SetChaosFaults(nil)
	delivered, _, _, err = mixnetChaosRun(Ctx{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 16 {
		t.Errorf("healthy baseline delivered %d/16 after clearing the overlay", delivered)
	}
}

// TestChaosExperimentsAreDeterministic: the chaos reports must be
// byte-identical across runs — the property CI's cmp check relies on.
func TestChaosExperimentsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos determinism check skipped in -short mode")
	}
	for _, exp := range []struct {
		id string
		fn ExperimentFunc
	}{
		{"E14", E14ChaosAvailability},
		{"E15", E15ChaosFailover},
		{"E16", E16ChaosFailOpen},
	} {
		r1, err := exp.fn(Ctx{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := exp.fn(Ctx{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Render() != r2.Render() {
			t.Errorf("%s report differs between runs:\n--- first ---\n%s\n--- second ---\n%s", exp.id, r1.Render(), r2.Render())
		}
	}
}
