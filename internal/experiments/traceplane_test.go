package experiments

import (
	"bytes"
	"strings"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/telemetry/wiretrace"
)

// The trace-plane audit suite: the distributed-tracing layer is itself
// a set of vantage points, so it gets the same adversarial analysis as
// the protocols it observes. Every paper-table experiment runs with
// the plane in ModeRotate on both transports, and the audit must find
// the trace plane knowing exactly what the protocol plane knows —
// equal tuples at instrumented vantages, no coalition that links
// subjects through trace handles the protocol keeps unlinked. The
// planted ModeNaive (one global trace ID end-to-end) must be convicted
// as COUPLED on the same runs.

// tracePlaneTransports enumerates the two transport flavors the
// differential suite exercises. The direct-call stacks (ODNS, ODoH)
// don't move bytes through a transport.Runner, but their handoff
// propagation is transport-independent; the mixnet stacks cross real
// TCP frames under the "tcp" flavor.
func tracePlaneTransports() []struct {
	name string
	ctx  func() Ctx
} {
	return []struct {
		name string
		ctx  func() Ctx
	}{
		{"simnet", func() Ctx { return Ctx{} }},
		{"tcp", func() Ctx { return WithTransport(nil, realTransport) }},
	}
}

// auditRotate runs the audit in ModeRotate expectations: verdict
// DECOUPLED, no entity widened, and every instrumented entity's trace
// tuple exactly equal to its protocol tuple.
func auditRotate(t *testing.T, plane *wiretrace.Plane, lg *ledger.Ledger, expected *core.System, wantInstrumented []string) *wiretrace.Report {
	t.Helper()
	rep, err := wiretrace.Audit(plane, lg, expected)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !rep.Decoupled {
		var buf bytes.Buffer
		rep.WriteReport(&buf)
		t.Fatalf("rotate-mode trace plane audited COUPLED:\n%s", buf.String())
	}
	byName := map[string]wiretrace.EntityAudit{}
	for _, e := range rep.Entities {
		byName[e.Name] = e
		if e.Widened {
			t.Errorf("entity %s: trace tuple %s widens protocol tuple %s",
				e.Name, e.Trace.Symbol(), e.Proto.Symbol())
		}
	}
	for _, name := range wantInstrumented {
		e, ok := byName[name]
		if !ok {
			t.Errorf("entity %s missing from audit", name)
			continue
		}
		if !e.Instrumented {
			t.Errorf("entity %s: expected an instrumented vantage, found no spans", name)
			continue
		}
		if e.Widened || e.Narrowed {
			t.Errorf("entity %s: instrumented trace tuple %s != protocol tuple %s",
				name, e.Trace.Symbol(), e.Proto.Symbol())
		}
	}
	return rep
}

// auditNaive runs the audit in ModeNaive expectations: the global
// trace ID must be convicted as COUPLED with at least one coalition
// leak.
func auditNaive(t *testing.T, plane *wiretrace.Plane, lg *ledger.Ledger, expected *core.System) {
	t.Helper()
	rep, err := wiretrace.Audit(plane, lg, expected)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if rep.Decoupled {
		var buf bytes.Buffer
		rep.WriteReport(&buf)
		t.Fatalf("naive-mode trace plane audited DECOUPLED; the global trace ID must be convicted:\n%s", buf.String())
	}
	if len(rep.Leaks) == 0 {
		t.Errorf("naive-mode conviction carries no coalition leak evidence")
	}
}

// TestTracePlaneAuditTables runs every paper-table experiment under a
// rotating trace plane on both transports. Stacks without wire
// instrumentation contribute zero spans and must still audit clean
// (an empty trace plane knows nothing); the instrumented stacks (E2)
// must audit exactly equal.
func TestTracePlaneAuditTables(t *testing.T) {
	for _, tr := range tracePlaneTransports() {
		for _, exp := range All() {
			if exp.ID > "E9" || len(exp.ID) > 2 { // E1..E9: the paper-table experiments
				continue
			}
			if exp.ID == "E4" {
				// E4 runs two scenario halves against two ledgers; its
				// halves are audited individually in
				// TestTracePlaneAuditScenarios.
				continue
			}
			exp, tr := exp, tr
			t.Run(tr.name+"/"+exp.ID, func(t *testing.T) {
				plane := wiretrace.New(wiretrace.ModeRotate, 42)
				ctx := tr.ctx()
				ctx.Wire = plane
				res, err := exp.Run(ctx)
				if err != nil {
					t.Fatalf("%s: %v", exp.ID, err)
				}
				var instrumented []string
				if exp.ID == "E2" {
					instrumented = []string{"Mix 1", "Mix 2", "Mix 3", "Receiver"}
					if plane.SpanCount() == 0 {
						t.Fatalf("E2 produced no spans under an enabled plane")
					}
				}
				auditRotate(t, plane, res.Ledger, res.Expected, instrumented)
			})
		}
	}
}

// TestTracePlaneAuditScenarios audits the fully-instrumented audit
// scenarios — the mixnet cascade and both oblivious-DNS stacks — in
// both modes. Rotation must hold every instrumented vantage to exact
// tuple equality; the naive global ID must be convicted on every
// stack that decouples an entity pair the trace ID re-joins.
func TestTracePlaneAuditScenarios(t *testing.T) {
	scenarios := []struct {
		id           string
		expected     func() *core.System
		instrumented []string
	}{
		{"mixnet", func() *core.System { return core.Mixnet(3) },
			[]string{"Mix 1", "Mix 2", "Mix 3", "Receiver"}},
		{"odns", core.ObliviousDNS, []string{"Resolver", "Oblivious Resolver", "Origin"}},
		{"odoh", core.ObliviousDNS, []string{"Resolver", "Oblivious Resolver", "Origin"}},
	}
	for _, tr := range tracePlaneTransports() {
		for _, sc := range scenarios {
			sc, tr := sc, tr
			scenario, ok := FindAuditScenario(sc.id)
			if !ok {
				t.Fatalf("scenario %s not registered", sc.id)
			}
			t.Run(tr.name+"/"+sc.id+"/rotate", func(t *testing.T) {
				plane := wiretrace.New(wiretrace.ModeRotate, 7)
				ctx := tr.ctx()
				ctx.Wire = plane
				lg, err := scenario.Run(ctx, 2)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if plane.SpanCount() == 0 {
					t.Fatalf("scenario produced no spans under an enabled plane")
				}
				auditRotate(t, plane, lg, sc.expected(), sc.instrumented)
			})
			t.Run(tr.name+"/"+sc.id+"/naive", func(t *testing.T) {
				plane := wiretrace.New(wiretrace.ModeNaive, 7)
				ctx := tr.ctx()
				ctx.Wire = plane
				lg, err := scenario.Run(ctx, 2)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				auditNaive(t, plane, lg, sc.expected())
			})
		}
	}
}

// TestTracePlaneNaiveLeakShape pins the conviction evidence for the
// mixnet cascade: the smallest leaking coalition must be an entry
// vantage plus the receiver — exactly the pair the mix cascade exists
// to keep unlinked, re-joined by the global trace ID.
func TestTracePlaneNaiveLeakShape(t *testing.T) {
	plane := wiretrace.New(wiretrace.ModeNaive, 11)
	scenario, _ := FindAuditScenario("mixnet")
	lg, err := scenario.Run(Ctx{Wire: plane}, 1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := wiretrace.Audit(plane, lg, core.Mixnet(3))
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if rep.Decoupled || len(rep.Leaks) == 0 {
		t.Fatalf("expected a COUPLED verdict with leaks, got decoupled=%v leaks=%d", rep.Decoupled, len(rep.Leaks))
	}
	first := rep.Leaks[0]
	got := strings.Join(first.Coalition, "+")
	if len(first.Coalition) != 2 || got != "Mix 1+Receiver" {
		t.Errorf("smallest leaking coalition = {%s}, want {Mix 1+Receiver}", got)
	}
	if !strings.HasPrefix(first.Subject, "sender") {
		t.Errorf("leaked subject %q is not a sender", first.Subject)
	}
}
