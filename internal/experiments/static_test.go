package experiments

import (
	"bytes"
	"strings"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/dnswire"
	"decoupling/internal/nettransport"
	"decoupling/internal/odoh"
	"decoupling/internal/provenance"
	"decoupling/internal/schema"
	"decoupling/internal/transport"
)

func tcpFactory(seed int64) transport.Runner {
	return nettransport.New(nettransport.Options{Mode: nettransport.ModeTCP, Seed: seed})
}

// TestStaticCoversMeasured is the tentpole invariant sweep: for every
// experiment E1-E16, on both the in-process simnet transport and real
// loopback TCP, the knowledge tuples measured from the run's ledger
// must stay inside the tuples derived statically from the declared
// schemas (static ⊇ measured), with no unexplained gap in either
// direction. E10-E12 measure costs, not knowledge, and must report no
// bindings rather than a vacuous pass.
func TestStaticCoversMeasured(t *testing.T) {
	transports := []struct {
		name    string
		factory func(seed int64) transport.Runner
	}{
		{"simnet", nil},
		{"nettransport", tcpFactory},
	}
	for _, tr := range transports {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			r := Runner{Workers: 4, Transport: tr.factory}
			results := r.Run(All())
			checked := 0
			for _, rr := range results {
				if rr.Err != nil {
					t.Errorf("%s: %v", rr.ID, rr.Err)
					continue
				}
				confs, err := StaticCheck(rr.Result)
				if err != nil {
					t.Errorf("%s: %v", rr.ID, err)
					continue
				}
				if confs == nil {
					if len(StaticBindings(rr.ID)) != 0 {
						t.Errorf("%s: bound to %v but StaticCheck returned nothing", rr.ID, StaticBindings(rr.ID))
					}
					continue
				}
				for _, sc := range confs {
					checked++
					if !sc.Conf.OK() {
						for _, v := range sc.Conf.Violations {
							t.Errorf("%s/%s: static ⊇ measured VIOLATED: %s", rr.ID, sc.Scenario, v)
						}
					}
					for _, g := range sc.Conf.Gaps {
						if !g.Waived {
							t.Errorf("%s/%s: unexercised gap: %s", rr.ID, sc.Scenario, g)
						}
					}
				}
			}
			// Every bound experiment must have been checked: 13 bound ids,
			// E4 contributing two scenarios.
			if want := len(BoundExperiments()) + 1; checked != want {
				t.Errorf("checked %d (experiment, scenario) pairs, want %d", checked, want)
			}
		})
	}
}

// TestRenderStaticByteStable pins the determinism contract for the
// -static report section: its bytes may not depend on the worker count.
func TestRenderStaticByteStable(t *testing.T) {
	render := func(workers int) string {
		r := Runner{Workers: workers}
		var buf bytes.Buffer
		violations, err := RenderStatic(&buf, r.Run(All()))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if violations != 0 {
			t.Fatalf("workers=%d: %d violations:\n%s", workers, violations, buf.String())
		}
		return buf.String()
	}
	base := render(1)
	if !strings.Contains(base, "E16  odoh-failopen  static ⊇ measured (exact)") {
		t.Errorf("report missing E16 row:\n%s", base)
	}
	if !strings.Contains(base, "E10  n/a") {
		t.Errorf("report missing E10 n/a row:\n%s", base)
	}
	for _, workers := range []int{4, 8} {
		if got := render(workers); got != base {
			t.Errorf("static report differs between -parallel 1 and %d:\n--- 1 ---\n%s\n--- %d ---\n%s",
				workers, base, workers, got)
		}
	}
}

// TestStaticBindingsShape pins the binding table's invariants: sorted
// experiment-id order, defensive copies, and the E4 double binding.
func TestStaticBindingsShape(t *testing.T) {
	bound := BoundExperiments()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E13", "E14", "E15", "E16"}
	if strings.Join(bound, ",") != strings.Join(want, ",") {
		t.Errorf("BoundExperiments() = %v, want %v", bound, want)
	}
	b := StaticBindings("E4")
	if len(b) != 2 || b[0] != "odns" || b[1] != "odoh" {
		t.Errorf("StaticBindings(E4) = %v", b)
	}
	b[0] = "mutated"
	if StaticBindings("E4")[0] != "odns" {
		t.Error("StaticBindings returned a shared slice")
	}
	if StaticBindings("E10") != nil {
		t.Errorf("E10 should have no bindings")
	}
}

// TestUnderDeclaredSchemaConvictedWithProvenance is the second planted
// negative control: a deployment whose handler reads more than its
// declaration admits. The schema variant below omits the oblivious
// resolver's declared read of the decrypted query, so the real run's
// measured (△, ●) tuple is no longer licensed — the check must fail
// naming the handler and axis, and the rendered violation must carry
// the run's provenance evidence chain for the unlicensed component.
func TestUnderDeclaredSchemaConvictedWithProvenance(t *testing.T) {
	var res *Result
	for _, rr := range (&Runner{Workers: 1}).Run(All()) {
		if rr.ID == "E14" {
			if rr.Err != nil {
				t.Fatalf("E14: %v", rr.Err)
			}
			res = rr.Result
		}
	}
	if res == nil || res.Measured == nil || res.Ledger == nil {
		t.Fatal("E14 did not retain a measured system and ledger")
	}

	sc := odoh.StaticSchema()
	resolver := sc.Role(odoh.TargetName)
	var kept []schema.Use
	for _, u := range resolver.Receives {
		switch u.Message {
		case odoh.SchemaPlainQuery:
			// drop the declared read of the decrypted query entirely
		case dnswire.SchemaResponse:
			// keep the use (the recursion flow needs it) but read nothing
			kept = append(kept, schema.Use{Message: u.Message})
		default:
			kept = append(kept, u)
		}
	}
	resolver.Receives = kept
	for i, u := range resolver.Sends {
		if u.Message == dnswire.SchemaRecursiveQuery {
			// originate only the routing fields, never the query name
			resolver.Sends[i].Fields = []string{"src_addr", "qtype"}
		}
	}
	st, err := schema.Derive(sc)
	if err != nil {
		t.Fatalf("derive under-declared schema: %v", err)
	}
	conf, err := st.Check(res.Measured)
	if err != nil {
		t.Fatal(err)
	}
	if conf.OK() {
		t.Fatalf("under-declared schema passed: %s", conf.Summary())
	}
	var v *schema.Violation
	for i := range conf.Violations {
		if conf.Violations[i].Entity == odoh.TargetName {
			v = &conf.Violations[i]
		}
	}
	if v == nil {
		t.Fatalf("no violation names %q: %v", odoh.TargetName, conf.Violations)
	}
	if v.Component.Kind != core.Data || v.Component.Level != core.Sensitive {
		t.Errorf("violation component = %+v, want sensitive data", v.Component)
	}

	audit, err := provenance.Derive(res.Ledger, res.Expected)
	if err != nil {
		t.Fatal(err)
	}
	v.Evidence = audit.ExplainComponent(v.Entity, v.Component.Kind, v.Component.Label)
	if len(v.Evidence) == 0 {
		t.Fatal("no provenance evidence for the unlicensed measured component")
	}
	rendered := schema.RenderViolation(*v)
	for _, want := range []string{"static ⊇ measured VIOLATED", odoh.TargetName, "measured provenance chain:"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered violation missing %q:\n%s", want, rendered)
		}
	}
}

// TestStaticGapFlaggedAndWaivable is the regression harness for the
// static ⊋ measured direction. The declarations license the oblivious
// resolver's sensitive-data read, but a hypothetical reduced run that
// never exercises it must flag the axis as declared-but-unexercised —
// and a documented waiver must convert the same gap into a waived pass
// rather than silencing it.
func TestStaticGapFlaggedAndWaivable(t *testing.T) {
	reduced := &core.System{
		Name: "Oblivious DNS (reduced run)",
		Entities: []core.Entity{
			{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: odoh.ProxyName, Knows: core.Tuple{core.SensID(), core.NonSensData()}, Links: []string{"proxy-leg"}},
			{Name: odoh.TargetName, Knows: core.Tuple{core.NonSensID(), core.NonSensData()}, Links: []string{"target-leg"}},
		},
	}
	dataAxis := schema.Axis{Kind: core.Data}

	st, err := schema.Derive(odoh.StaticSchema())
	if err != nil {
		t.Fatal(err)
	}
	conf, err := st.Check(reduced)
	if err != nil {
		t.Fatal(err)
	}
	if !conf.OK() {
		t.Fatalf("reduced run should not violate: %v", conf.Violations)
	}
	var gap *schema.Gap
	for i := range conf.Gaps {
		if conf.Gaps[i].Entity == odoh.TargetName && conf.Gaps[i].Axis == dataAxis {
			gap = &conf.Gaps[i]
		}
	}
	if gap == nil {
		t.Fatalf("expected an unexercised gap for %s on %s, got %v", odoh.TargetName, dataAxis, conf.Gaps)
	}
	if gap.Waived {
		t.Errorf("gap should not be waived: %s", gap)
	}
	if !strings.Contains(conf.Summary(), "unexercised") {
		t.Errorf("summary hides the unexercised gap: %s", conf.Summary())
	}

	waived := odoh.StaticSchema()
	waived.Waivers = append(waived.Waivers, schema.Waiver{
		Role: odoh.TargetName, Axis: dataAxis,
		Reason: "reduced sweep never drives a query to the oblivious resolver",
	})
	st2, err := schema.Derive(waived)
	if err != nil {
		t.Fatal(err)
	}
	conf2, err := st2.Check(reduced)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range conf2.Gaps {
		if g.Entity == odoh.TargetName && g.Axis == dataAxis {
			found = true
			if !g.Waived || !strings.Contains(g.String(), "waived:") {
				t.Errorf("gap not rendered as waived: %s", g)
			}
		}
	}
	if !found {
		t.Error("waived gap disappeared from the report")
	}
	if !strings.Contains(conf2.Summary(), "waived gap") {
		t.Errorf("summary = %q, want a waived-gap note", conf2.Summary())
	}
}
