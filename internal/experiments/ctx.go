package experiments

import (
	"sync"

	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

// Ctx is the execution context threaded through every experiment: the
// telemetry handle plus an optional hook over simulated-network
// construction. The zero value is valid (no telemetry, no hook) and is
// what tests use; the runner passes Ctx{Tel: tel}; the schedule
// explorer passes WithNetHook to install schedulers on each net an
// experiment builds and harvest their recorded schedules afterwards.
type Ctx struct {
	// Tel is the experiment's telemetry handle (nil when observability
	// is off; all telemetry methods are nil-receiver safe).
	Tel *telemetry.Telemetry

	// Wire is the run's wire-trace plane (nil when tracing is off; all
	// plane methods are nil-receiver safe). Scenario runners attach it
	// to every protocol component they build, so traced runs produce
	// per-vantage span stores the trace-plane audit can replay.
	Wire *wiretrace.Plane

	hooks *netHooks

	// transport, when set, overrides what NewRunner builds — the lever
	// the differential transport-equivalence suite pulls to run the
	// same experiment over real loopback sockets instead of the
	// simulator.
	transport func(seed int64) transport.Runner
}

// netHooks is the shared hook state behind a Ctx. It lives behind a
// pointer so Ctx stays a copyable value while construction indices stay
// globally ordered, and it is mutex-guarded because scenario runners
// may construct nets from parallel client goroutines.
type netHooks struct {
	mu   sync.Mutex
	next int
	hook func(index int, n *simnet.Network)
}

// WithNetHook returns a Ctx that invokes hook on every simulated
// network the experiment constructs through NewNet, in construction
// order (index 0, 1, ...). The hook runs before the experiment touches
// the net, so it can install a Scheduler or ReplaySchedule; keeping the
// *simnet.Network lets the caller read RecordedSchedule after the run.
func WithNetHook(tel *telemetry.Telemetry, hook func(index int, n *simnet.Network)) Ctx {
	return Ctx{Tel: tel, hooks: &netHooks{hook: hook}}
}

// WithTransport returns a Ctx whose NewRunner builds transports with
// factory instead of the simulator. Experiments that only need the
// transport.Runner contract (E2's mixnet cascade, the audit scenarios)
// then run unchanged over real sockets; experiments that reach for
// simulator-only machinery (fault plans, schedule control) keep using
// NewNet and are out of a transport override's reach by construction.
func WithTransport(tel *telemetry.Telemetry, factory func(seed int64) transport.Runner) Ctx {
	return Ctx{Tel: tel, transport: factory}
}

// NewRunner constructs the experiment's next network as an abstract
// transport.Runner: the simulator by default (through NewNet, so
// schedule-explorer hooks still see it), or whatever a WithTransport
// factory builds. Callers own the result and should Close it.
func (c Ctx) NewRunner(seed int64) transport.Runner {
	if c.transport != nil {
		return c.transport(seed)
	}
	return c.NewNet(seed)
}

// NewNet constructs the experiment's next simulated network. All
// experiment code must build nets through this (never simnet.New
// directly) so a schedule-exploring Ctx sees every decision point.
func (c Ctx) NewNet(seed int64) *simnet.Network {
	n := simnet.New(seed)
	if c.hooks != nil {
		c.hooks.mu.Lock()
		idx := c.hooks.next
		c.hooks.next++
		hook := c.hooks.hook
		c.hooks.mu.Unlock()
		if hook != nil {
			hook(idx, n)
		}
	}
	return n
}
