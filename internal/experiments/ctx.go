package experiments

import (
	"sync"

	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
)

// Ctx is the execution context threaded through every experiment: the
// telemetry handle plus an optional hook over simulated-network
// construction. The zero value is valid (no telemetry, no hook) and is
// what tests use; the runner passes Ctx{Tel: tel}; the schedule
// explorer passes WithNetHook to install schedulers on each net an
// experiment builds and harvest their recorded schedules afterwards.
type Ctx struct {
	// Tel is the experiment's telemetry handle (nil when observability
	// is off; all telemetry methods are nil-receiver safe).
	Tel *telemetry.Telemetry

	hooks *netHooks
}

// netHooks is the shared hook state behind a Ctx. It lives behind a
// pointer so Ctx stays a copyable value while construction indices stay
// globally ordered, and it is mutex-guarded because scenario runners
// may construct nets from parallel client goroutines.
type netHooks struct {
	mu   sync.Mutex
	next int
	hook func(index int, n *simnet.Network)
}

// WithNetHook returns a Ctx that invokes hook on every simulated
// network the experiment constructs through NewNet, in construction
// order (index 0, 1, ...). The hook runs before the experiment touches
// the net, so it can install a Scheduler or ReplaySchedule; keeping the
// *simnet.Network lets the caller read RecordedSchedule after the run.
func WithNetHook(tel *telemetry.Telemetry, hook func(index int, n *simnet.Network)) Ctx {
	return Ctx{Tel: tel, hooks: &netHooks{hook: hook}}
}

// NewNet constructs the experiment's next simulated network. All
// experiment code must build nets through this (never simnet.New
// directly) so a schedule-exploring Ctx sees every decision point.
func (c Ctx) NewNet(seed int64) *simnet.Network {
	n := simnet.New(seed)
	if c.hooks != nil {
		c.hooks.mu.Lock()
		idx := c.hooks.next
		c.hooks.next++
		hook := c.hooks.hook
		c.hooks.mu.Unlock()
		if hook != nil {
			hook(idx, n)
		}
	}
	return n
}
