package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunnerOrdersResults checks that results come back in input order
// even when completion order is scrambled by a worker pool.
func TestRunnerOrdersResults(t *testing.T) {
	t.Parallel()
	const n = 20
	var exps []Experiment
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("X%d", i)
		exps = append(exps, Experiment{ID: id, Run: func(Ctx) (*Result, error) {
			return &Result{ID: id, Pass: true}, nil
		}})
	}
	r := Runner{Workers: 4}
	out := r.Run(exps)
	if len(out) != n {
		t.Fatalf("results = %d, want %d", len(out), n)
	}
	for i, rr := range out {
		want := fmt.Sprintf("X%d", i)
		if rr.ID != want || rr.Result == nil || rr.Result.ID != want {
			t.Errorf("slot %d: got id %s, want %s", i, rr.ID, want)
		}
	}
}

// TestRunnerBoundsWorkers checks the pool never runs more than Workers
// experiments at once.
func TestRunnerBoundsWorkers(t *testing.T) {
	t.Parallel()
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	var exps []Experiment
	for i := 0; i < 12; i++ {
		exps = append(exps, Experiment{ID: fmt.Sprintf("X%d", i), Run: func(Ctx) (*Result, error) {
			cur := inFlight.Add(1)
			mu.Lock()
			if cur > peak.Load() {
				peak.Store(cur)
			}
			mu.Unlock()
			runtime.Gosched()
			inFlight.Add(-1)
			return &Result{Pass: true}, nil
		}})
	}
	r := Runner{Workers: workers}
	r.Run(exps)
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency = %d, want <= %d", p, workers)
	}
}

// TestRunnerErrorsAndPanicsIsolated checks that one failing or
// panicking experiment fills only its own slot.
func TestRunnerErrorsAndPanicsIsolated(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	exps := []Experiment{
		{ID: "ok", Run: func(Ctx) (*Result, error) { return &Result{ID: "ok", Pass: true}, nil }},
		{ID: "err", Run: func(Ctx) (*Result, error) { return nil, boom }},
		{ID: "panic", Run: func(Ctx) (*Result, error) { panic("kaboom") }},
	}
	r := Runner{Workers: 2}
	out := r.Run(exps)
	if out[0].Err != nil || out[0].Result == nil || !out[0].Result.Pass {
		t.Errorf("ok slot corrupted: %+v", out[0])
	}
	if !errors.Is(out[1].Err, boom) {
		t.Errorf("err slot: got %v, want %v", out[1].Err, boom)
	}
	if out[2].Err == nil || out[2].Result != nil {
		t.Errorf("panic slot: got %+v", out[2])
	}
}

// TestRunnerParallelMatchesSequential is the determinism guarantee for
// the report pipeline: rendering parallel results must produce the same
// bytes as the sequential baseline. Uses the cheap model-only
// experiments to keep the double run fast.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	subset := []Experiment{
		{"E8", E8VPN},
		{"E9", E9ECH},
		{"E13", E13TEE},
	}
	render := func(workers int) string {
		r := Runner{Workers: workers}
		var s string
		for _, rr := range r.Run(subset) {
			if rr.Err != nil {
				t.Fatalf("workers=%d: %v", workers, rr.Err)
			}
			s += rr.Result.Render()
		}
		return s
	}
	seq := render(1)
	par := render(3)
	if seq != par {
		t.Errorf("parallel render diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestRunAllParallel runs the real suite wide open — every experiment
// must still reproduce when they all execute concurrently. This is the
// integration half of the race-hardening work; run it under -race.
func TestRunAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	for _, rr := range RunAll(0) {
		if rr.Err != nil {
			t.Fatalf("%s: %v", rr.ID, rr.Err)
		}
		if !rr.Result.Pass {
			t.Errorf("%s failed under parallel execution:\n%s", rr.ID, rr.Result.Render())
		}
	}
}
