package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"decoupling/internal/provenance"
)

// renderScenario runs a scenario and renders its full audit (report +
// JSONL + DOT + graph JSON) into one byte string.
func renderScenario(t *testing.T, id string, parallel int) string {
	t.Helper()
	sc, ok := FindAuditScenario(id)
	if !ok {
		t.Fatalf("scenario %q not found", id)
	}
	lg, err := sc.Run(Ctx{}, parallel)
	if err != nil {
		t.Fatalf("scenario %s: %v", id, err)
	}
	a, err := provenance.Derive(lg, sc.Expected())
	if err != nil {
		t.Fatalf("scenario %s: derive audit: %v", id, err)
	}
	var b bytes.Buffer
	for _, render := range []func(*bytes.Buffer) error{
		func(w *bytes.Buffer) error { return provenance.WriteReport(w, a) },
		func(w *bytes.Buffer) error { return provenance.WriteJSONL(w, a) },
		func(w *bytes.Buffer) error { return provenance.WriteDOT(w, a) },
		func(w *bytes.Buffer) error { return provenance.WriteGraphJSON(w, a) },
	} {
		if err := render(&b); err != nil {
			t.Fatalf("scenario %s: render: %v", id, err)
		}
	}
	return b.String()
}

// TestAuditScenariosDeterministic is the cross-run / cross-parallel
// determinism contract for every shipped scenario: fresh processes of
// the protocol (fresh HPKE keys, fresh ciphertexts, different
// goroutine interleavings) must render byte-identical audits.
func TestAuditScenariosDeterministic(t *testing.T) {
	t.Parallel()
	for _, sc := range AuditScenarios() {
		sc := sc
		t.Run(sc.ID, func(t *testing.T) {
			t.Parallel()
			base := renderScenario(t, sc.ID, 1)
			for _, parallel := range []int{1, 4, 8} {
				if got := renderScenario(t, sc.ID, parallel); got != base {
					t.Errorf("scenario %s: audit differs (parallel=%d vs first run):\n%s",
						sc.ID, parallel, diffLine(base, got))
				}
			}
		})
	}
}

func diffLine(a, b string) string {
	al, bl := bytes.Split([]byte(a), []byte("\n")), bytes.Split([]byte(b), []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestAuditScenariosMatchExperiments checks each scenario's derived
// verdict agrees with the paper's model analysis — the scenarios must
// reproduce the same tables the experiments do.
func TestAuditScenariosMatchExperiments(t *testing.T) {
	t.Parallel()
	for _, sc := range AuditScenarios() {
		sc := sc
		t.Run(sc.ID, func(t *testing.T) {
			t.Parallel()
			lg, err := sc.Run(Ctx{}, 2)
			if err != nil {
				t.Fatal(err)
			}
			a, err := provenance.Derive(lg, sc.Expected())
			if err != nil {
				t.Fatal(err)
			}
			if !a.Verdict.Decoupled {
				t.Errorf("scenario %s: measured system not decoupled: %s", sc.ID, a.Verdict)
			}
			if a.TotalObs == 0 {
				t.Errorf("scenario %s: empty ledger", sc.ID)
			}
			// Acceptance bar: every non-user component above
			// non-sensitive cites at least one observation.
			for _, e := range a.Entities {
				if e.User {
					continue
				}
				for _, c := range e.Components {
					if c.Level != "non-sensitive" && len(c.Evidence) == 0 {
						t.Errorf("scenario %s: %s %s has no evidence", sc.ID, e.Name, c.Symbol)
					}
				}
			}
		})
	}
}
