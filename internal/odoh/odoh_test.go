package odoh

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
)

func ecosystem(t testing.TB, lg *ledger.Ledger) (*Proxy, *Target) {
	t.Helper()
	z := dns.NewZone("example.com")
	for i, host := range []string{"www", "mail", "secret"} {
		if err := z.Add(dnswire.A(host+".example.com", 300, [4]byte{203, 0, 113, byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{z}, Ledger: lg}
	target, err := NewTarget(TargetName, origin, lg)
	if err != nil {
		t.Fatal(err)
	}
	return NewProxy(ProxyName, target, lg), target
}

func newClient(t testing.TB, target *Target, id string) *Client {
	t.Helper()
	keyID, pub := target.KeyConfig()
	return NewClient(id, keyID, pub)
}

func TestQueryThroughProxy(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	client := newClient(t, target, "client-1")
	resp, err := client.Query("www.example.com", dnswire.TypeA, proxy.Forward)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if proxy.Forwarded() != 1 || target.Handled() != 1 {
		t.Errorf("forwarded=%d handled=%d", proxy.Forwarded(), target.Handled())
	}
}

func TestNXDomainPropagates(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	client := newClient(t, target, "client-1")
	resp, err := client.Query("nope.example.com", dnswire.TypeA, proxy.Forward)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestWrongKeyIDRejected(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	_, pub := target.KeyConfig()
	client := NewClient("client-1", []byte("bogus-id"), pub)
	if _, err := client.Query("www.example.com", dnswire.TypeA, proxy.Forward); err == nil {
		t.Error("query with wrong key id succeeded")
	}
}

func TestWrongTargetKeyFails(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	keyID, _ := target.KeyConfig()
	other, err := NewTarget("other", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, otherPub := other.KeyConfig()
	client := NewClient("client-1", keyID, otherPub)
	if _, err := client.Query("www.example.com", dnswire.TypeA, proxy.Forward); err == nil {
		t.Error("query sealed to the wrong key succeeded")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{Type: MessageTypeQuery, KeyID: []byte("key-id"), Body: []byte("body bytes")}
	got, err := UnmarshalMessage(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || string(got.KeyID) != string(m.KeyID) || string(got.Body) != string(m.Body) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestMessageUnmarshalFuzzSafety(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = UnmarshalMessage(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGarbageQueryErrors(t *testing.T) {
	_, target := ecosystem(t, nil)
	if _, err := target.HandleQuery("proxy", []byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
	keyID, _ := target.KeyConfig()
	m := &Message{Type: MessageTypeQuery, KeyID: keyID, Body: make([]byte, 64)}
	if _, err := target.HandleQuery("proxy", m.Marshal()); err == nil {
		t.Error("undecryptable body accepted")
	}
}

// TestDecouplingTable reproduces the paper's §3.2.2 table for ODoH: the
// proxy plays the "Resolver" row, the target the "Oblivious Resolver".
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	proxy, target := ecosystem(t, lg)

	names := []string{"www.example.com", "mail.example.com", "secret.example.com"}
	for i := 0; i < 6; i++ {
		who := fmt.Sprintf("client-%d", i)
		name := names[i%len(names)]
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(dnswire.CanonicalName(name), who, "", core.Sensitive)
		client := newClient(t, target, who)
		if _, err := client.Query(name, dnswire.TypeA, proxy.Forward); err != nil {
			t.Fatal(err)
		}
	}

	expected := core.ObliviousDNS()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("measured system not decoupled: %s", v)
	}
}

// TestProxyTargetCollusionLinks: the non-collusion caveat is measurable —
// proxy and target share the forwarding leg.
func TestProxyTargetCollusionLinks(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	proxy, target := ecosystem(t, lg)
	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("client-%d", i)
		name := "www.example.com"
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(dnswire.CanonicalName(name), who, "", core.Sensitive)
		client := newClient(t, target, who)
		if _, err := client.Query(name, dnswire.TypeA, proxy.Forward); err != nil {
			t.Fatal(err)
		}
	}
	if rate := adversary.LinkageRate(adversary.LinkSubjects(lg.Observations(), []string{ProxyName})); rate != 0 {
		t.Errorf("proxy alone linked %.0f%%", rate*100)
	}
	if rate := adversary.LinkageRate(adversary.LinkSubjects(lg.Observations(), []string{ProxyName, TargetName})); rate == 0 {
		t.Error("proxy+target collusion failed to link any client")
	}
}

// TestHTTPStack runs client -> proxy server -> target server over real
// loopback HTTP.
func TestHTTPStack(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	targetSrv := httptest.NewServer(TargetHandler(target))
	defer targetSrv.Close()
	proxySrv := httptest.NewServer(ProxyHandler(proxy, targetSrv.Client(), targetSrv.URL))
	defer proxySrv.Close()

	client := newClient(t, target, "http-client")
	resp, err := client.Query("www.example.com", dnswire.TypeA, HTTPForward(proxySrv.Client(), proxySrv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if proxy.Forwarded() != 1 {
		t.Errorf("forwarded = %d", proxy.Forwarded())
	}
}

func BenchmarkQueryDirect(b *testing.B) {
	proxy, target := ecosystem(b, nil)
	client := newClient(b, target, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query("www.example.com", dnswire.TypeA, proxy.Forward); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryHTTP(b *testing.B) {
	proxy, target := ecosystem(b, nil)
	targetSrv := httptest.NewServer(TargetHandler(target))
	defer targetSrv.Close()
	proxySrv := httptest.NewServer(ProxyHandler(proxy, targetSrv.Client(), targetSrv.URL))
	defer proxySrv.Close()
	client := newClient(b, target, "bench")
	fwd := HTTPForward(proxySrv.Client(), proxySrv.URL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query("www.example.com", dnswire.TypeA, fwd); err != nil {
			b.Fatal(err)
		}
	}
}

// TestKeyRotationLifecycle: a client holding the old config keeps
// working through the grace period and fails after expiry; fresh
// configs work throughout.
func TestKeyRotationLifecycle(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	oldClient := newClient(t, target, "old")
	if _, err := oldClient.Query("www.example.com", dnswire.TypeA, proxy.Forward); err != nil {
		t.Fatal(err)
	}
	if _, _, err := target.RotateKey(); err != nil {
		t.Fatal(err)
	}
	// Grace period: old config still accepted.
	if _, err := oldClient.Query("mail.example.com", dnswire.TypeA, proxy.Forward); err != nil {
		t.Errorf("old config rejected during grace period: %v", err)
	}
	// New config works too.
	newClientC := newClient(t, target, "new")
	if _, err := newClientC.Query("www.example.com", dnswire.TypeA, proxy.Forward); err != nil {
		t.Fatal(err)
	}
	// Expiry ends the grace period.
	target.ExpireOldKeys()
	if _, err := oldClient.Query("secret.example.com", dnswire.TypeA, proxy.Forward); err == nil {
		t.Error("expired config still accepted")
	}
	if _, err := newClientC.Query("secret.example.com", dnswire.TypeA, proxy.Forward); err != nil {
		t.Errorf("current config rejected after expiry: %v", err)
	}
}
