// ResilientClient: the ODoH client wrapped in the shared resilience
// layer — failover across a set of oblivious proxies, stale-key
// refresh after a rotation race, and an explicit degradation policy.
//
// Degradation policy: FAIL-CLOSED by default. Every proxy in Forwards
// is a decoupled path (each sees identity but only ciphertext); when
// all of them are exhausted the query errors with
// resilience.ErrExhausted. The client never contacts a resolver
// directly — that path would re-couple who-is-asking with what-is-asked
// and silently demote the system from the paper's §3.2.2 verdict to a
// coupled one. The Fallback hook exists solely so experiment E16 can
// construct that misconfiguration and prove the ledger audit catches
// it.
package odoh

import (
	"hash/fnv"

	"decoupling/internal/dnswire"
	"decoupling/internal/resilience"
	"decoupling/internal/telemetry"
)

// KeyFetch re-fetches the target's current key config (what a real
// client does by re-querying the proxy-advertised HTTPS record).
type KeyFetch func() (keyID, pub []byte, err error)

// FallbackFunc resolves a query outside the oblivious path. Any use of
// it re-couples identity with data; see package comment.
type FallbackFunc func(name string, qtype dnswire.Type) (*dnswire.Message, error)

// ResilientClient drives an odoh.Client through the resilience layer.
type ResilientClient struct {
	Client *Client
	// Policy declares the retry/backoff/degradation behavior; zero
	// value is no retries, fail-closed. Use resilience.Default("odoh").
	Policy resilience.Policy
	// Forwards are the decoupled paths, tried in failover rotation.
	Forwards []ForwardFunc
	// Refetch, when set, refreshes the key config after ErrStaleKey so
	// the next attempt re-seals under the rotated key.
	Refetch KeyFetch
	// Fallback is the deliberate misconfiguration hook: only consulted
	// when Policy.Mode is resilience.FailOpen and every decoupled path
	// is exhausted. Leave nil.
	Fallback FallbackFunc
	// Sleep, when set, realizes backoff waits (nil: backoff is logical).
	Sleep resilience.Sleeper

	tel *telemetry.Telemetry
}

// Instrument attaches a telemetry sink for per-attempt spans and
// retry/failover counters.
func (rc *ResilientClient) Instrument(tel *telemetry.Telemetry) { rc.tel = tel }

// Query resolves (name, qtype) through the proxy set under the policy.
// A stale-key failure triggers a key-config refetch so the retry
// succeeds; transport failures rotate to the next proxy.
func (rc *ResilientClient) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	// Jitter seed: a stable hash of the query identity, so backoff
	// schedules are deterministic per query and uncorrelated across
	// queries.
	h := fnv.New64a()
	h.Write([]byte(rc.Client.ID))
	h.Write([]byte{0})
	h.Write([]byte(name))
	seed := h.Sum64()

	var resp *dnswire.Message
	_, err := resilience.DoFailover(rc.Policy, rc.tel, seed, rc.Sleep, len(rc.Forwards),
		func(attempt, endpoint int) error {
			r, qerr := rc.Client.Query(name, qtype, rc.Forwards[endpoint])
			if qerr != nil {
				if IsStaleKey(qerr) && rc.Refetch != nil {
					if id, pub, ferr := rc.Refetch(); ferr == nil {
						rc.Client.SetKeyConfig(id, pub)
					}
				}
				return qerr
			}
			resp = r
			return nil
		})
	if err != nil {
		if rc.Policy.Mode == resilience.FailOpen && rc.Fallback != nil {
			// The counterexample path: availability bought by re-coupling.
			return rc.Fallback(name, qtype)
		}
		return nil, err
	}
	return resp, nil
}
