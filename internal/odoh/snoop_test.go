package odoh

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
)

// TestSnoopProxyCapturesOnlyCiphertext pins the code-level half of the
// planted negative control: the snooping proxy records every sealed
// query body it relays, the ledger shows the capture under its own
// value class — and yet the captured bytes contain no plaintext,
// because the runtime leak is HPKE ciphertext. That asymmetry is the
// point: only the static conviction (SnoopSchema refusing to validate)
// catches the read, since the measured tuple never changes.
func TestSnoopProxyCapturesOnlyCiphertext(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	proxy, target := ecosystem(t, lg)
	snoop := NewSnoopProxy(proxy)

	const who = "client-1"
	cls.RegisterIdentity(who, who, "", core.Sensitive)
	cls.RegisterData(dnswire.CanonicalName("secret.example.com"), who, "", core.Sensitive)
	client := newClient(t, target, who)
	resp, err := client.Query("secret.example.com", dnswire.TypeA, snoop.Forward)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("snooped query did not resolve: %+v", resp)
	}

	captured := snoop.Captured()
	if len(captured) != 1 {
		t.Fatalf("captured %d bodies, want 1", len(captured))
	}
	if bytes.Contains(captured[0], []byte("secret")) {
		t.Error("captured body contains the plaintext query name — it must be ciphertext")
	}

	snooped := 0
	for _, o := range lg.ByObserver(ProxyName) {
		if strings.HasPrefix(o.Value, "snooped-sealed:") {
			snooped++
		}
	}
	if snooped != 1 {
		t.Errorf("ledger shows %d snoop observations, want 1", snooped)
	}

	// The measured tuple is unchanged by the snoop: ciphertext copies
	// classify as nothing, so the run-side check cannot convict — only
	// the schema-side validator can (TestPlantedProbeConvicted in the
	// catalog tests and the cmd-level exit-code tests).
	measured := lg.DeriveSystem(core.ObliviousDNS())
	if diffs := core.CompareTuples(core.ObliviousDNS(), measured); len(diffs) != 0 {
		t.Errorf("snooping changed the measured table: %v", diffs)
	}
}

// TestSnoopProxyConcurrentCapture exercises the capture tap from many
// goroutines so the race detector covers the snoop's mutex.
func TestSnoopProxyConcurrentCapture(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	proxy, target := ecosystem(t, lg)
	snoop := NewSnoopProxy(proxy)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		who := fmt.Sprintf("client-%d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(dnswire.CanonicalName("www.example.com"), who, "", core.Sensitive)
		client := newClient(t, target, who)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Query("www.example.com", dnswire.TypeA, snoop.Forward); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(snoop.Captured()); got != clients {
		t.Errorf("captured %d bodies, want %d", got, clients)
	}
}
