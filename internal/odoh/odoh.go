// Package odoh implements Oblivious DNS over HTTPS in the shape of
// RFC 9230, the second §3.2.2 system: clients HPKE-encrypt DNS queries
// to an Oblivious Target's published key config and send them through an
// Oblivious Proxy over HTTP. The proxy learns the client's identity but
// sees only ciphertext; the target decrypts and resolves but sees only
// the proxy.
//
// Message format (ObliviousDoHMessage):
//
//	[type 1][keyID len 2][keyID][msg len 2][msg]
//
// where type 1 is a query (msg = enc || ciphertext) and type 2 a
// response (msg = AES-GCM sealed under the key exported from the query's
// HPKE context with label "odoh response").
//
// Proxy and Target are plain types; ProxyHandler/TargetHandler adapt
// them to net/http so the examples run the protocol over real loopback
// TCP. The paper's table entity names: the proxy is the client's
// "Resolver", the target the "Oblivious Resolver".
package odoh

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"decoupling/internal/core"
	"decoupling/internal/dcrypto/hpke"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
)

// Message types.
const (
	MessageTypeQuery    byte = 1
	MessageTypeResponse byte = 2
)

// Default entity names matching the paper's §3.2.2 table.
const (
	ProxyName  = "Resolver"
	TargetName = "Oblivious Resolver"
)

const (
	queryInfo     = "decoupling odoh query"
	responseLabel = "odoh response"
	respKeyLen    = 16
)

// Errors returned by the protocol.
var (
	ErrMalformed  = errors.New("odoh: malformed oblivious message")
	ErrUnknownKey = errors.New("odoh: unknown key id")
	// ErrStaleKey reports a query sealed to a key config that WAS valid
	// but has been expired by rotation — distinct from ErrUnknownKey
	// (never published) so a client racing ExpireOldKeys can refetch the
	// config and retry instead of treating the failure as fatal.
	ErrStaleKey = errors.New("odoh: stale key id (expired by rotation)")
	ErrType     = errors.New("odoh: unexpected message type")
)

// IsStaleKey reports whether err is (or carries, after a trip through
// an HTTP error body) the stale-key condition.
func IsStaleKey(err error) bool {
	return err != nil && (errors.Is(err, ErrStaleKey) || strings.Contains(err.Error(), ErrStaleKey.Error()))
}

// Message is the ObliviousDoHMessage envelope.
type Message struct {
	Type  byte
	KeyID []byte
	Body  []byte
}

// Marshal encodes the envelope.
func (m *Message) Marshal() []byte {
	out := make([]byte, 0, 1+2+len(m.KeyID)+2+len(m.Body))
	out = append(out, m.Type)
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.KeyID)))
	out = append(out, m.KeyID...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.Body)))
	return append(out, m.Body...)
}

// UnmarshalMessage decodes an envelope.
func UnmarshalMessage(data []byte) (*Message, error) {
	if len(data) < 5 {
		return nil, ErrMalformed
	}
	m := &Message{Type: data[0]}
	rest := data[1:]
	n := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < n {
		return nil, ErrMalformed
	}
	m.KeyID = append([]byte(nil), rest[:n]...)
	rest = rest[n:]
	if len(rest) < 2 {
		return nil, ErrMalformed
	}
	n = int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) != n {
		return nil, ErrMalformed
	}
	m.Body = append([]byte(nil), rest...)
	return m, nil
}

// Target is the Oblivious Target: it holds the HPKE keys and resolves
// decrypted queries through an upstream authority. Targets publish key
// configs with a lifecycle: RotateKey mints a new current config while
// previous configs keep decrypting (clients refresh configs lazily);
// ExpireOldKeys ends the grace period.
type Target struct {
	Name     string
	lg       *ledger.Ledger
	tel      *telemetry.Telemetry
	wire     *wiretrace.Plane
	Upstream dns.Authority

	mu      sync.Mutex
	keys    map[string]*hpke.KeyPair // keyID -> key, all accepted
	expired map[string]bool          // keyIDs rotated out by ExpireOldKeys
	current string                   // keyID of the published config
	handled int
}

func keyIDOf(pub []byte) []byte {
	sum := sha256.Sum256(pub)
	return sum[:8]
}

// NewTarget creates a target resolving through upstream.
func NewTarget(name string, upstream dns.Authority, lg *ledger.Ledger) (*Target, error) {
	t := &Target{Name: name, lg: lg, Upstream: upstream,
		keys: map[string]*hpke.KeyPair{}, expired: map[string]bool{}}
	if _, _, err := t.RotateKey(); err != nil {
		return nil, err
	}
	return t, nil
}

// RotateKey generates and publishes a fresh key config. Queries sealed
// to previous configs continue to decrypt until ExpireOldKeys.
func (t *Target) RotateKey() (keyID, pub []byte, err error) {
	kp, err := hpke.GenerateKeyPair()
	if err != nil {
		return nil, nil, fmt.Errorf("odoh: target key: %w", err)
	}
	id := keyIDOf(kp.PublicKey())
	t.mu.Lock()
	t.keys[string(id)] = kp
	t.current = string(id)
	t.mu.Unlock()
	return id, kp.PublicKey(), nil
}

// Instrument attaches a telemetry sink: each handled query becomes a
// span (with the resolved name annotated post-decryption) and feeds the
// handled counter. Key ids never appear in attributes — they derive
// from fresh key material and would break trace determinism.
func (t *Target) Instrument(tel *telemetry.Telemetry) { t.tel = tel }

// InstrumentWire attaches a wire-trace plane: each handled query opens
// a span continuing the context handed off with the query bytes (or
// carried in the TraceHeader over HTTP), mirrors the target's ledger
// observations, and rotates the trace before the recursion upstream —
// the target is a decoupling boundary. Nil-safe.
func (t *Target) InstrumentWire(p *wiretrace.Plane) { t.wire = p }

// ExpireOldKeys drops every config except the current one. Expired ids
// are remembered so an in-flight query racing the rotation gets the
// typed ErrStaleKey (refetch and retry) rather than the fatal
// ErrUnknownKey.
func (t *Target) ExpireOldKeys() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.keys {
		if id != t.current {
			delete(t.keys, id)
			t.expired[id] = true
		}
	}
}

// KeyConfig returns (keyID, public key) of the current published
// config.
func (t *Target) KeyConfig() (keyID, pub []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kp := t.keys[t.current]
	return []byte(t.current), kp.PublicKey()
}

// Handled reports the number of successfully answered queries.
func (t *Target) Handled() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handled
}

// HandleQuery processes one oblivious query arriving from the named
// party (normally the proxy) and returns the encrypted response
// envelope.
func (t *Target) HandleQuery(from string, raw []byte) ([]byte, error) {
	sp := t.tel.Start("odoh.target.handle",
		telemetry.A("target", t.Name), telemetry.A("bytes", telemetry.Itoa(len(raw))))
	defer sp.End()
	hop := t.wire.Hop(t.Name, "odoh.target.handle", t.wire.TakeHandoff(raw), from, "")
	defer hop.End()
	m, err := UnmarshalMessage(raw)
	if err != nil {
		return nil, err
	}
	if m.Type != MessageTypeQuery {
		return nil, ErrType
	}
	t.mu.Lock()
	kp, ok := t.keys[string(m.KeyID)]
	stale := t.expired[string(m.KeyID)]
	t.mu.Unlock()
	if !ok {
		if stale {
			return nil, ErrStaleKey
		}
		return nil, ErrUnknownKey
	}
	if len(m.Body) < hpke.NEnc+16 {
		return nil, ErrMalformed
	}
	ctx, err := hpke.SetupRecipient(m.Body[:hpke.NEnc], kp, []byte(queryInfo))
	if err != nil {
		return nil, err
	}
	wire, err := ctx.Open(nil, m.Body[hpke.NEnc:])
	if err != nil {
		return nil, err
	}
	query, err := dnswire.Decode(wire)
	if err != nil || len(query.Questions) != 1 {
		return nil, ErrMalformed
	}
	name := dnswire.CanonicalName(query.Questions[0].Name)
	sp.Annotate(telemetry.A("name", name))
	t.tel.Count(telemetry.MetricOdohHandled, "Oblivious queries answered by the target.", 1,
		telemetry.A("target", t.Name))

	if t.lg != nil {
		h := ledger.ConnHandle(from, t.Name)
		t.lg.SawBatch(t.Name, []ledger.Entry{
			{Kind: core.Identity, Value: from, Handles: []string{h}},
			{Kind: core.Data, Value: name, Handles: []string{h, "recursion:" + name}},
		})
		hop.Observe(core.Identity, from)
		hop.Observe(core.Data, name)
	}

	var resp *dnswire.Message
	if t.Upstream != nil && t.Upstream.Serves(name) {
		t.wire.Handoff([]byte(name), hop.Forward())
		resp = t.Upstream.Handle(t.Name, query)
	} else {
		resp = query.Reply()
		resp.RCode = dnswire.RCodeServFail
	}
	respWire, err := resp.Encode()
	if err != nil {
		return nil, err
	}
	respKey := ctx.Export([]byte(responseLabel), respKeyLen)
	sealed, err := hpke.SealSymmetric(respKey, nil, respWire)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.handled++
	t.mu.Unlock()
	return (&Message{Type: MessageTypeResponse, KeyID: m.KeyID, Body: sealed}).Marshal(), nil
}

// Proxy is the Oblivious Proxy: the client's untrusting courier. It
// plays the "Resolver" role of the paper's table — the party that knows
// the client but not the query.
type Proxy struct {
	Name   string
	Target *Target
	lg     *ledger.Ledger
	tel    *telemetry.Telemetry
	wire   *wiretrace.Plane

	mu        sync.Mutex
	forwarded int
}

// NewProxy creates a proxy forwarding to target.
func NewProxy(name string, target *Target, lg *ledger.Ledger) *Proxy {
	return &Proxy{Name: name, Target: target, lg: lg}
}

// Instrument attaches a telemetry sink: each relayed query becomes a
// span nested under the client's query span and feeds the forwarded
// counter.
func (p *Proxy) Instrument(tel *telemetry.Telemetry) { p.tel = tel }

// InstrumentWire attaches a wire-trace plane; the proxy is the
// prototypical decoupling boundary, so its span rotates the trace ID
// before the target leg. Nil-safe.
func (p *Proxy) InstrumentWire(w *wiretrace.Plane) { p.wire = w }

// Forwarded reports the number of relayed queries.
func (p *Proxy) Forwarded() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forwarded
}

// Forward relays an opaque oblivious query from clientAddr to the
// target and returns the opaque response. The proxy's observations:
// the client's identity and two ciphertext blobs.
func (p *Proxy) Forward(clientAddr string, raw []byte) ([]byte, error) {
	sp := p.tel.Start("odoh.proxy.forward",
		telemetry.A("proxy", p.Name), telemetry.A("bytes", telemetry.Itoa(len(raw))))
	defer sp.End()
	hop := p.wire.Hop(p.Name, "odoh.proxy.forward", p.wire.TakeHandoff(raw), clientAddr, p.Target.Name)
	defer hop.End()
	p.tel.Count(telemetry.MetricOdohForwarded, "Oblivious queries relayed by the proxy.", 1,
		telemetry.A("proxy", p.Name))
	if p.lg != nil {
		// The raw observed peer endpoint is itself a join key (the party
		// on the other side of the socket holds the same string), in
		// addition to the per-leg session handles. Both observations come
		// from one relayed request, so they admit as one batch: a single
		// shard-lock acquisition even with thousands of concurrent
		// handler goroutines.
		clientLeg := ledger.ConnHandle(clientAddr, p.Name)
		targetLeg := ledger.ConnHandle(p.Name, p.Target.Name)
		p.lg.SawBatch(p.Name, []ledger.Entry{
			{Kind: core.Identity, Value: clientAddr, Handles: []string{clientAddr, clientLeg}},
			{Kind: core.Data, Value: "ciphertext:" + ledger.Hash(raw), Handles: []string{clientLeg, targetLeg}},
		})
		hop.Observe(core.Identity, clientAddr)
		hop.Observe(core.Data, "ciphertext:"+ledger.Hash(raw))
	}
	p.wire.Handoff(raw, hop.Forward())
	resp, err := p.Target.HandleQuery(p.Name, raw)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.forwarded++
	p.mu.Unlock()
	return resp, nil
}

// Client encrypts DNS queries for a target and sends them via a
// forwarding function (direct proxy call or HTTP).
type Client struct {
	ID        string
	targetKey []byte
	keyID     []byte
	tel       *telemetry.Telemetry
	wire      *wiretrace.Plane
}

// ClientVantage is the span-store vantage shared by all traced
// clients.
const ClientVantage = wiretrace.ClientVantage

// Instrument attaches a telemetry sink: each Query opens the root span
// of the client → proxy → target chain.
func (c *Client) Instrument(tel *telemetry.Telemetry) { c.tel = tel }

// InstrumentWire attaches a wire-trace plane: each Query opens the
// root span of the trace and hands its context off with the query
// bytes. Nil-safe.
func (c *Client) InstrumentWire(p *wiretrace.Plane) { c.wire = p }

// NewClient creates a client for the given target key config.
func NewClient(id string, keyID, targetPub []byte) *Client {
	return &Client{ID: id, targetKey: targetPub, keyID: keyID}
}

// SetKeyConfig swaps in a freshly fetched key config (after a rotation
// signalled by ErrStaleKey). Not safe concurrently with Query on the
// same client; refresh between attempts, as ResilientClient does.
func (c *Client) SetKeyConfig(keyID, targetPub []byte) {
	c.keyID = append([]byte(nil), keyID...)
	c.targetKey = append([]byte(nil), targetPub...)
}

// ForwardFunc relays an oblivious query and returns the raw response.
type ForwardFunc func(clientAddr string, raw []byte) ([]byte, error)

// Query obliviously resolves (name, qtype) via forward.
func (c *Client) Query(name string, qtype dnswire.Type, forward ForwardFunc) (*dnswire.Message, error) {
	sp := c.tel.Start("odoh.client.query",
		telemetry.A("client", c.ID), telemetry.A("name", name))
	defer sp.End()
	q := dnswire.NewQuery(1, name, qtype)
	wire, err := q.Encode()
	if err != nil {
		return nil, err
	}
	enc, ctx, err := hpke.SetupSender(c.targetKey, []byte(queryInfo))
	if err != nil {
		return nil, err
	}
	body := append(append([]byte(nil), enc...), ctx.Seal(nil, wire)...)
	msg := &Message{Type: MessageTypeQuery, KeyID: c.keyID, Body: body}

	raw := msg.Marshal()
	root := c.wire.Root(ClientVantage, "odoh.client.query", c.ID, "")
	defer root.End()
	c.wire.Handoff(raw, root.Context())
	rawResp, err := forward(c.ID, raw)
	if err != nil {
		return nil, err
	}
	respMsg, err := UnmarshalMessage(rawResp)
	if err != nil {
		return nil, err
	}
	if respMsg.Type != MessageTypeResponse {
		return nil, ErrType
	}
	respKey := ctx.Export([]byte(responseLabel), respKeyLen)
	respWire, err := hpke.OpenSymmetric(respKey, nil, respMsg.Body)
	if err != nil {
		return nil, err
	}
	return dnswire.Decode(respWire)
}

// --- HTTP adapters -------------------------------------------------

const contentType = "application/oblivious-dns-message"

// TraceHeader carries a hex-encoded wire-trace context across an HTTP
// hop, the header-borne equivalent of the frame codec's v2 trace
// extension: out-of-band of the oblivious message body, so traced and
// untraced requests carry identical payload bytes.
const TraceHeader = "X-Decoupling-Trace"

// TargetHandler serves the target at POST /dns-query.
func TargetHandler(t *Target) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		depositHeaderContext(t.wire, r, body)
		resp, err := t.HandleQuery(r.RemoteAddr, body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(resp)
	})
}

// ProxyHandler serves the proxy at POST /proxy. When httpTarget is
// non-empty the proxy relays over real HTTP to that base URL; otherwise
// it uses its direct target reference.
func ProxyHandler(p *Proxy, client *http.Client, httpTarget string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		depositHeaderContext(p.wire, r, body)
		var resp []byte
		if httpTarget == "" {
			resp, err = p.Forward(r.RemoteAddr, body)
		} else {
			resp, err = p.forwardHTTP(client, httpTarget, r.RemoteAddr, body)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(resp)
	})
}

func (p *Proxy) forwardHTTP(client *http.Client, baseURL, clientAddr string, raw []byte) ([]byte, error) {
	hop := p.wire.Hop(p.Name, "odoh.proxy.forward", p.wire.TakeHandoff(raw), clientAddr, p.Target.Name)
	defer hop.End()
	if p.lg != nil {
		clientLeg := ledger.ConnHandle(clientAddr, p.Name)
		targetLeg := ledger.ConnHandle(p.Name, p.Target.Name)
		p.lg.SawBatch(p.Name, []ledger.Entry{
			{Kind: core.Identity, Value: clientAddr, Handles: []string{clientAddr, clientLeg}},
			{Kind: core.Data, Value: "ciphertext:" + ledger.Hash(raw), Handles: []string{clientLeg, targetLeg}},
		})
		hop.Observe(core.Identity, clientAddr)
		hop.Observe(core.Data, "ciphertext:"+ledger.Hash(raw))
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/dns-query", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	setHeaderContext(req, hop.Forward())
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("odoh: target returned %s: %s", resp.Status, out)
	}
	p.mu.Lock()
	p.forwarded++
	p.mu.Unlock()
	return out, nil
}

// HTTPForward returns a ForwardFunc posting to a ProxyHandler at
// baseURL. When wire is non-nil, any context the client handed off
// with the query bytes crosses the hop in TraceHeader.
func HTTPForward(client *http.Client, baseURL string) ForwardFunc {
	return HTTPForwardWire(client, baseURL, nil)
}

// HTTPForwardWire is HTTPForward with wire-trace propagation: it
// claims the context deposited for the query bytes (by Client.Query)
// and sends it in TraceHeader; ProxyHandler re-deposits it on receipt.
func HTTPForwardWire(client *http.Client, baseURL string, wire *wiretrace.Plane) ForwardFunc {
	return func(clientAddr string, raw []byte) ([]byte, error) {
		req, err := http.NewRequest(http.MethodPost, baseURL+"/proxy", bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		setHeaderContext(req, wire.TakeHandoff(raw))
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("odoh: proxy returned %s: %s", resp.Status, out)
		}
		return out, nil
	}
}

// setHeaderContext attaches a non-zero context to an outbound request.
func setHeaderContext(req *http.Request, ctx wiretrace.Context) {
	if !ctx.IsZero() {
		req.Header.Set(TraceHeader, ctx.MarshalHeader())
	}
}

// depositHeaderContext re-deposits a TraceHeader context into the
// plane's handoff queue keyed by the request body, so the handler's
// TakeHandoff finds it exactly as it would on a direct call.
func depositHeaderContext(wire *wiretrace.Plane, r *http.Request, body []byte) {
	h := r.Header.Get(TraceHeader)
	if h == "" || !wire.Enabled() {
		return
	}
	if ctx, err := wiretrace.ParseHeader(h); err == nil {
		wire.Handoff(body, ctx)
	}
}
