package odoh

import "testing"

func FuzzUnmarshalMessage(f *testing.F) {
	m := &Message{Type: MessageTypeQuery, KeyID: []byte("12345678"), Body: []byte("body")}
	f.Add(m.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := UnmarshalMessage(data)
		if err != nil {
			return
		}
		back, err := UnmarshalMessage(msg.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if back.Type != msg.Type || string(back.KeyID) != string(msg.KeyID) || string(back.Body) != string(msg.Body) {
			t.Fatal("message changed across round trip")
		}
	})
}

// FuzzHandleQuery throws arbitrary bytes at a live target: every input
// must produce a clean error or a decryptable response, never a panic.
func FuzzHandleQuery(f *testing.F) {
	target, err := NewTarget("fuzz-target", nil, nil)
	if err != nil {
		f.Fatal(err)
	}
	keyID, _ := target.KeyConfig()
	valid := (&Message{Type: MessageTypeQuery, KeyID: keyID, Body: make([]byte, 64)}).Marshal()
	f.Add(valid)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = target.HandleQuery("fuzzer", data)
	})
}
