package odoh

import (
	"errors"
	"testing"

	"decoupling/internal/dnswire"
	"decoupling/internal/resilience"
)

// TestStaleKeyIsTyped: a query sealed to a rotated-out config gets the
// typed ErrStaleKey (refetchable), while a never-published key id stays
// the fatal ErrUnknownKey.
func TestStaleKeyIsTyped(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	client := newClient(t, target, "client-1")

	if _, _, err := target.RotateKey(); err != nil {
		t.Fatal(err)
	}
	// Grace period: the old config still decrypts.
	if _, err := client.Query("www.example.com", dnswire.TypeA, proxy.Forward); err != nil {
		t.Fatalf("query during rotation grace period: %v", err)
	}

	target.ExpireOldKeys()
	_, err := client.Query("www.example.com", dnswire.TypeA, proxy.Forward)
	if !IsStaleKey(err) {
		t.Fatalf("query with expired config: %v, want stale-key", err)
	}
	if errors.Is(err, ErrUnknownKey) {
		t.Error("stale key misreported as unknown")
	}
}

// TestResilientClientRefetchesAfterRotationRace is the regression test
// for the ExpireOldKeys race: a client whose key config is expired
// mid-flight must refetch the rotated config and succeed on the retry
// instead of failing the query.
func TestResilientClientRefetchesAfterRotationRace(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	client := newClient(t, target, "client-1")

	// Rotate + expire AFTER the client fetched its config: the first
	// attempt is sealed to a key the target no longer holds.
	if _, _, err := target.RotateKey(); err != nil {
		t.Fatal(err)
	}
	target.ExpireOldKeys()

	refetches := 0
	rc := &ResilientClient{
		Client:   client,
		Policy:   resilience.Default("odoh"),
		Forwards: []ForwardFunc{proxy.Forward},
		Refetch: func() (keyID, pub []byte, err error) {
			refetches++
			id, p := target.KeyConfig()
			return id, p, nil
		},
	}
	resp, err := rc.Query("www.example.com", dnswire.TypeA)
	if err != nil {
		t.Fatalf("query across a key rotation race: %v", err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if refetches != 1 {
		t.Errorf("refetches = %d, want exactly 1", refetches)
	}
	if target.Handled() != 1 {
		t.Errorf("target handled %d, want 1 (only the re-sealed retry)", target.Handled())
	}
}

// TestResilientClientWithoutRefetchFailsClosed: the same race without a
// Refetch hook exhausts its attempts and errors — it must not succeed by
// accident or fall back anywhere.
func TestResilientClientWithoutRefetchFailsClosed(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	client := newClient(t, target, "client-1")
	if _, _, err := target.RotateKey(); err != nil {
		t.Fatal(err)
	}
	target.ExpireOldKeys()

	rc := &ResilientClient{
		Client:   client,
		Policy:   resilience.Default("odoh"),
		Forwards: []ForwardFunc{proxy.Forward},
	}
	_, err := rc.Query("www.example.com", dnswire.TypeA)
	if !errors.Is(err, resilience.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

// TestResilientClientFailsOverAcrossProxies: dead proxies rotate out;
// the healthy one answers; no error escapes.
func TestResilientClientFailsOverAcrossProxies(t *testing.T) {
	proxy, target := ecosystem(t, nil)
	client := newClient(t, target, "client-1")

	deadCalls := 0
	dead := func(clientAddr string, raw []byte) ([]byte, error) {
		deadCalls++
		return nil, errors.New("proxy unreachable")
	}
	rc := &ResilientClient{
		Client:   client,
		Policy:   resilience.Default("odoh"),
		Forwards: []ForwardFunc{dead, dead, proxy.Forward},
	}
	resp, err := rc.Query("www.example.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v", resp.RCode)
	}
	if deadCalls != 2 {
		t.Errorf("dead proxies tried %d times, want 2 (one each, then failover)", deadCalls)
	}
}

// TestResilientClientFailClosedNeverUsesFallback: even with a Fallback
// wired, the default FailClosed policy must never consult it.
func TestResilientClientFailClosedNeverUsesFallback(t *testing.T) {
	_, target := ecosystem(t, nil)
	client := newClient(t, target, "client-1")

	fallbacks := 0
	rc := &ResilientClient{
		Client: client,
		Policy: resilience.Default("odoh"), // FailClosed
		Forwards: []ForwardFunc{func(string, []byte) ([]byte, error) {
			return nil, errors.New("down")
		}},
		Fallback: func(name string, qtype dnswire.Type) (*dnswire.Message, error) {
			fallbacks++
			return dnswire.NewQuery(1, name, qtype).Reply(), nil
		},
	}
	_, err := rc.Query("www.example.com", dnswire.TypeA)
	if !errors.Is(err, resilience.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if fallbacks != 0 {
		t.Errorf("fail-closed client used the fallback %d times", fallbacks)
	}
}
