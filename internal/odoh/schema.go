package odoh

import (
	"decoupling/internal/core"
	"decoupling/internal/dnswire"
	"decoupling/internal/schema"
)

// Schema message names for the ObliviousDoHMessage envelope as the
// taint analysis sees it at each vantage.
const (
	SchemaQuery       = "odoh_query"
	SchemaForward     = "odoh_forward"
	SchemaPlainQuery  = "odoh_plain_query"
	SchemaResponse    = "odoh_response"
	SchemaPlainAnswer = "odoh_plain_answer"
)

// StaticSchema declares the RFC 9230 shape against the §3.2.2 table:
// the proxy terminates the client connection but the query travels
// HPKE-sealed to the target's key, and the answer comes back sealed to
// a key only the client's HPKE context can export. Role names match
// core.ObliviousDNS so the measured system checks against the
// derivation by name.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "odoh",
		System:  "Oblivious DNS",
		Section: "3.2.2",
		Doc:     "Oblivious DoH: queries are HPKE-sealed to the oblivious target's published key config and relayed through a proxy that sees only ciphertext.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: append(dnswire.SchemaMessages(),
			schema.Message{
				Name: SchemaQuery,
				Doc:  "ObliviousDoHMessage type 1 as sent by the client",
				Fields: []schema.Field{
					{Name: "client_addr", Label: schema.Identity},
					{Name: "target_path", Label: schema.Routing},
					{Name: "sealed_query", Label: schema.Opaque, Encapsulates: SchemaPlainQuery, Openers: []string{TargetName}},
				},
			},
			schema.Message{
				Name: SchemaForward,
				Doc:  "the proxy's relay of the same envelope toward the target",
				Fields: []schema.Field{
					{Name: "proxy_addr", Label: schema.Routing},
					{Name: "sealed_query", Label: schema.Opaque, Encapsulates: SchemaPlainQuery, Openers: []string{TargetName}},
				},
			},
			schema.Message{
				Name: SchemaPlainQuery,
				Doc:  "the decrypted dnswire query, visible only to the key holder",
				Fields: []schema.Field{
					{Name: "qname", Label: schema.Query},
					{Name: "qtype", Label: schema.Routing},
				},
			},
			schema.Message{
				Name: SchemaResponse,
				Doc:  "ObliviousDoHMessage type 2: the answer AES-GCM sealed under the key exported from the query's HPKE context",
				Fields: []schema.Field{
					{Name: "sealed_answer", Label: schema.Opaque, Encapsulates: SchemaPlainAnswer, Openers: []string{"Client"}},
				},
			},
			schema.Message{
				Name: SchemaPlainAnswer,
				Fields: []schema.Field{
					{Name: "answer", Label: schema.Content},
				},
			},
		),
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: SchemaQuery, Fields: []string{"client_addr", "target_path"}}},
				Receives: []schema.Use{
					{Message: SchemaResponse, Fields: []string{"sealed_answer"}},
					{Message: SchemaPlainAnswer, Fields: []string{"answer"}},
				},
			},
			{
				Name: ProxyName,
				Receives: []schema.Use{
					{Message: SchemaQuery, Fields: []string{"client_addr", "target_path"}},
					{Message: SchemaResponse},
				},
				Sends: []schema.Use{
					{Message: SchemaForward, Fields: []string{"proxy_addr"}},
					{Message: SchemaResponse},
				},
			},
			{
				Name: TargetName,
				Receives: []schema.Use{
					{Message: SchemaForward, Fields: []string{"proxy_addr", "sealed_query"}},
					{Message: SchemaPlainQuery, Fields: []string{"qname", "qtype"}},
					{Message: dnswire.SchemaResponse, Fields: []string{"answer"}},
				},
				Sends: []schema.Use{
					{Message: dnswire.SchemaRecursiveQuery, Fields: []string{"src_addr", "qname", "qtype"}},
					{Message: SchemaResponse},
				},
			},
			{
				Name: "Origin",
				Receives: []schema.Use{
					{Message: dnswire.SchemaRecursiveQuery, Fields: []string{"src_addr", "qname", "qtype"}},
				},
				Sends: []schema.Use{{Message: dnswire.SchemaResponse, Fields: []string{"answer"}}},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: ProxyName, Message: SchemaQuery, Handle: "proxy-leg"},
			{From: ProxyName, To: TargetName, Message: SchemaForward, Handle: "target-leg"},
			{From: TargetName, To: "Origin", Message: dnswire.SchemaRecursiveQuery, Handle: "recursion"},
			{From: "Origin", To: TargetName, Message: dnswire.SchemaResponse, Handle: "recursion"},
			{From: TargetName, To: ProxyName, Message: SchemaResponse, Handle: "target-leg"},
			{From: ProxyName, To: "Client", Message: SchemaResponse, Handle: "proxy-leg"},
		},
	}
}

// FailOpenSchema declares the degraded architecture E16 measures when
// the target outage is bridged by fail-open fallback: the proxy doubles
// as a plain recursive resolver, so the client's plaintext dnswire
// query legitimately reaches the role that also sees its address. The
// static derivation predicts the coupled (▲,●) proxy tuple without
// running the outage.
func FailOpenSchema() *schema.Scenario {
	sc := StaticSchema()
	sc.Name = "odoh-failopen"
	sc.System = "Oblivious DNS (fail-open fallback)"
	sc.Doc = "ODoH with fail-open fallback: during a target outage the client sends plaintext DNS to the proxy, which resolves directly — the decoupling collapses by design, and the schema says so."
	client := sc.Role("Client")
	client.Sends = append(client.Sends,
		schema.Use{Message: dnswire.SchemaQuery, Fields: []string{"src_addr", "qname", "qtype"}})
	client.Receives = append(client.Receives,
		schema.Use{Message: dnswire.SchemaResponse, Fields: []string{"answer"}})
	proxy := sc.Role(ProxyName)
	proxy.Receives = append(proxy.Receives,
		schema.Use{Message: dnswire.SchemaQuery, Fields: []string{"src_addr", "qname", "qtype"}},
		schema.Use{Message: dnswire.SchemaResponse, Fields: []string{"answer"}})
	proxy.Sends = append(proxy.Sends,
		schema.Use{Message: dnswire.SchemaRecursiveQuery, Fields: []string{"src_addr", "qname", "qtype"}},
		schema.Use{Message: dnswire.SchemaResponse})
	sc.Flows = append(sc.Flows,
		schema.Flow{From: "Client", To: ProxyName, Message: dnswire.SchemaQuery, Handle: "proxy-leg"},
		schema.Flow{From: ProxyName, To: "Origin", Message: dnswire.SchemaRecursiveQuery, Handle: "recursion"},
		schema.Flow{From: "Origin", To: ProxyName, Message: dnswire.SchemaResponse, Handle: "recursion"},
		schema.Flow{From: ProxyName, To: "Client", Message: dnswire.SchemaResponse, Handle: "proxy-leg"},
	)
	return sc
}

// SnoopSchema is the planted negative control: the proxy role declares
// that it reads the sealed_query field it is supposed to forward
// blindly. It is not an opener of that field, so Validate convicts the
// scenario before any derivation happens — this is the declaration a
// SnoopProxy deployment would have to write, and the check that refuses
// it.
func SnoopSchema() *schema.Scenario {
	sc := StaticSchema()
	sc.Name = "odoh-snoop"
	sc.System = "Oblivious DNS (snooping proxy probe)"
	sc.Doc = "Negative control: the proxy declares a read of the HPKE ciphertext it only holds the handle to. The validator must name the role, message, and field."
	proxy := sc.Role(ProxyName)
	proxy.Receives[0].Fields = append(proxy.Receives[0].Fields, "sealed_query")
	return sc
}
