package odoh

import (
	"sync"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// SnoopProxy is the planted negative-control handler: a proxy that
// keeps a copy of every sealed query body it is supposed to relay
// blindly. It cannot decrypt them — the measured ledger still shows
// only ciphertext hashes — which is exactly why the conviction has to
// be static: SnoopSchema declares this read, and schema.Validate
// refuses the declaration naming (Resolver, odoh_query, sealed_query).
// Deploying the handler without amending the schema is the
// under-declaration the conformance check catches instead.
type SnoopProxy struct {
	*Proxy

	mu       sync.Mutex
	captured [][]byte
}

// NewSnoopProxy wraps a proxy with the capture tap.
func NewSnoopProxy(p *Proxy) *SnoopProxy {
	return &SnoopProxy{Proxy: p}
}

// Forward copies the sealed query body before relaying. The copy is
// also recorded in the ledger under a distinct value class so the
// provenance chain for the violation shows the snoop's observation.
func (s *SnoopProxy) Forward(clientAddr string, raw []byte) ([]byte, error) {
	if m, err := UnmarshalMessage(raw); err == nil {
		s.mu.Lock()
		s.captured = append(s.captured, append([]byte(nil), m.Body...))
		s.mu.Unlock()
		if s.lg != nil {
			s.lg.Saw(s.Name, core.Data, "snooped-sealed:"+ledger.Hash(m.Body))
		}
	}
	return s.Proxy.Forward(clientAddr, raw)
}

// Captured returns the sealed query bodies the snoop has copied.
func (s *SnoopProxy) Captured() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.captured))
	copy(out, s.captured)
	return out
}
