// Package hkdf implements the HMAC-based Extract-and-Expand Key
// Derivation Function (HKDF) from RFC 5869, instantiated with SHA-256.
//
// It is the key-schedule workhorse for the HPKE implementation in
// internal/dcrypto/hpke and is written against the standard library only
// (crypto/hmac, crypto/sha256).
package hkdf

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
)

// Size is the output size in bytes of the underlying hash (SHA-256).
const Size = sha256.Size

// MaxOutput is the maximum number of bytes Expand can produce
// (255 * HashLen per RFC 5869 §2.3).
const MaxOutput = 255 * Size

// Extract performs the HKDF-Extract step: PRK = HMAC-Hash(salt, ikm).
// A nil or empty salt is replaced by a string of HashLen zero bytes,
// exactly as RFC 5869 §2.2 specifies.
func Extract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, Size)
	}
	m := hmac.New(sha256.New, salt)
	m.Write(ikm)
	return m.Sum(nil)
}

// Expand performs the HKDF-Expand step, deriving length bytes of output
// keying material from the pseudorandom key prk and the context info.
// It panics if length exceeds MaxOutput, mirroring the RFC's hard limit;
// callers in this module always request fixed, small lengths.
func Expand(prk, info []byte, length int) []byte {
	if length < 0 || length > MaxOutput {
		panic(fmt.Sprintf("hkdf: requested output length %d out of range [0,%d]", length, MaxOutput))
	}
	var (
		out  = make([]byte, 0, length)
		prev []byte
		ctr  byte
	)
	for len(out) < length {
		ctr++
		m := hmac.New(sha256.New, prk)
		m.Write(prev)
		m.Write(info)
		m.Write([]byte{ctr})
		prev = m.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// Key is a convenience wrapper running Extract then Expand.
func Key(salt, ikm, info []byte, length int) []byte {
	return Expand(Extract(salt, ikm), info, length)
}
