package hkdf

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex fixture: %v", err)
	}
	return b
}

// TestRFC5869Case1 checks the first official SHA-256 test vector.
func TestRFC5869Case1(t *testing.T) {
	t.Parallel()
	ikm := mustHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt := mustHex(t, "000102030405060708090a0b0c")
	info := mustHex(t, "f0f1f2f3f4f5f6f7f8f9")
	wantPRK := mustHex(t, "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM := mustHex(t, "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := Extract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Errorf("Extract = %x, want %x", prk, wantPRK)
	}
	okm := Expand(prk, info, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("Expand = %x, want %x", okm, wantOKM)
	}
}

// TestRFC5869Case3 checks the zero-length salt/info vector, exercising
// the nil-salt default path.
func TestRFC5869Case3(t *testing.T) {
	t.Parallel()
	ikm := mustHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM := mustHex(t, "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")

	okm := Key(nil, ikm, nil, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("Key = %x, want %x", okm, wantOKM)
	}
}

func TestExpandLengths(t *testing.T) {
	t.Parallel()
	prk := Extract(nil, []byte("ikm"))
	for _, n := range []int{0, 1, 31, 32, 33, 64, 255, 1000, MaxOutput} {
		out := Expand(prk, []byte("info"), n)
		if len(out) != n {
			t.Errorf("Expand length %d: got %d bytes", n, len(out))
		}
	}
}

func TestExpandPrefixConsistency(t *testing.T) {
	t.Parallel()
	prk := Extract(nil, []byte("ikm"))
	long := Expand(prk, []byte("x"), 96)
	short := Expand(prk, []byte("x"), 17)
	if !bytes.Equal(long[:17], short) {
		t.Error("shorter expansion is not a prefix of longer expansion")
	}
}

func TestExpandPanicsOutOfRange(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Expand did not panic for out-of-range length")
		}
	}()
	Expand(Extract(nil, []byte("ikm")), nil, MaxOutput+1)
}

func TestDistinctInfoDistinctOutput(t *testing.T) {
	t.Parallel()
	prk := Extract(nil, []byte("ikm"))
	a := Expand(prk, []byte("a"), 32)
	b := Expand(prk, []byte("b"), 32)
	if bytes.Equal(a, b) {
		t.Error("different info produced identical output")
	}
}

func BenchmarkKey32(b *testing.B) {
	ikm := []byte("benchmark input keying material")
	for i := 0; i < b.N; i++ {
		Key(nil, ikm, []byte("info"), 32)
	}
}
