// Package blindrsa implements Chaum-style blind RSA signatures, the
// primitive behind the paper's §3.1.1 digital-cash analysis and the
// publicly verifiable token type of Privacy Pass (§3.2.1).
//
// The construction is the classic one (Chaum 1983), framed the way
// RSABSSA (RFC 9474) frames it:
//
//	Blind:     m = H(msg); blinded = m * r^e mod n, r random in Z_n*
//	BlindSign: s' = blinded^d mod n                  (signer)
//	Finalize:  s  = s' * r^-1 mod n                  (client)
//	Verify:    s^e mod n == H(msg)
//
// H is a full-domain hash built by expanding SHA-256 output with HKDF to
// the modulus size and reducing mod n. This is the FDH variant of RSABSSA
// rather than the PSS variant: deterministic, simple, and sufficient for
// the unlinkability property the paper's analysis depends on — the signer
// sees only blinded = m*r^e, which is uniformly distributed in Z_n* and
// therefore statistically independent of m.
//
// Unlinkability is the load-bearing property for decoupling: the Signer
// learns the client's identity (it authenticates them) but nothing about
// the message being signed, and the Verifier learns the message but
// cannot link it to any signing interaction.
package blindrsa

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"decoupling/internal/dcrypto/hkdf"
)

var (
	// ErrVerification is returned when a signature does not verify.
	ErrVerification = errors.New("blindrsa: signature verification failed")
	// ErrMessageRange is returned for malformed blinded values.
	ErrMessageRange = errors.New("blindrsa: value out of range for modulus")
)

// GenerateKey creates a signer key pair of the given modulus size in
// bits. 2048 is the default used across this module's tests; benchmarks
// may use smaller moduli where signing cost would dominate.
func GenerateKey(bits int) (*rsa.PrivateKey, error) {
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("blindrsa: generating key: %w", err)
	}
	return key, nil
}

// fdh maps msg to an integer in [0, n) via SHA-256 + HKDF expansion,
// giving a full-domain hash for the modulus.
func fdh(msg []byte, n *big.Int) *big.Int {
	digest := sha256.Sum256(msg)
	// Expand to modulus length + 16 bytes so the bias from reduction is
	// negligible (< 2^-128).
	expanded := hkdf.Key(nil, digest[:], []byte("blindrsa fdh"), (n.BitLen()+7)/8+16)
	return new(big.Int).Mod(new(big.Int).SetBytes(expanded), n)
}

// State carries the client's secrets between Blind and Finalize.
type State struct {
	rInv *big.Int // r^-1 mod n
	m    *big.Int // H(msg)
	n    *big.Int
}

// Blind hashes msg and blinds it for the signer. The returned blinded
// value reveals nothing about msg.
func Blind(pub *rsa.PublicKey, msg []byte) (blinded []byte, st *State, err error) {
	n := pub.N
	m := fdh(msg, n)
	var r, rInv *big.Int
	for {
		r, err = rand.Int(rand.Reader, n)
		if err != nil {
			return nil, nil, fmt.Errorf("blindrsa: sampling blind: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		rInv = new(big.Int).ModInverse(r, n)
		if rInv != nil {
			break
		}
	}
	e := big.NewInt(int64(pub.E))
	rE := new(big.Int).Exp(r, e, n)
	b := new(big.Int).Mul(m, rE)
	b.Mod(b, n)
	return b.FillBytes(make([]byte, (n.BitLen()+7)/8)), &State{rInv: rInv, m: m, n: n}, nil
}

// BlindSign computes the signer's operation on a blinded value. The
// signer cannot recover the underlying message from blinded.
func BlindSign(priv *rsa.PrivateKey, blinded []byte) ([]byte, error) {
	n := priv.N
	b := new(big.Int).SetBytes(blinded)
	if b.Cmp(n) >= 0 {
		return nil, ErrMessageRange
	}
	s := new(big.Int).Exp(b, priv.D, n)
	return s.FillBytes(make([]byte, (n.BitLen()+7)/8)), nil
}

// Finalize unblinds the signer's response, yielding a standard signature
// on the original message, and verifies it before returning.
func Finalize(pub *rsa.PublicKey, st *State, blindSig []byte) ([]byte, error) {
	n := pub.N
	sPrime := new(big.Int).SetBytes(blindSig)
	if sPrime.Cmp(n) >= 0 {
		return nil, ErrMessageRange
	}
	s := new(big.Int).Mul(sPrime, st.rInv)
	s.Mod(s, n)
	sig := s.FillBytes(make([]byte, (n.BitLen()+7)/8))
	// Check s^e == m before handing the signature out; a corrupt signer
	// must be detected by the client, not by a later verifier.
	check := new(big.Int).Exp(s, big.NewInt(int64(pub.E)), n)
	if check.Cmp(st.m) != 0 {
		return nil, ErrVerification
	}
	return sig, nil
}

// Verify checks an unblinded signature against msg.
func Verify(pub *rsa.PublicKey, msg, sig []byte) error {
	n := pub.N
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(n) >= 0 {
		return ErrMessageRange
	}
	check := new(big.Int).Exp(s, big.NewInt(int64(pub.E)), n)
	if check.Cmp(fdh(msg, n)) != 0 {
		return ErrVerification
	}
	return nil
}
