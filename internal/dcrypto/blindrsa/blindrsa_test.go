package blindrsa

import (
	"bytes"
	"crypto/rsa"
	"sync"
	"testing"
)

// testKey caches one RSA key across tests; key generation dominates
// otherwise.
var (
	testKeyOnce sync.Once
	testKeyVal  *rsa.PrivateKey
)

func testKey(t testing.TB) *rsa.PrivateKey {
	testKeyOnce.Do(func() {
		k, err := GenerateKey(1024)
		if err != nil {
			t.Fatalf("generating test key: %v", err)
		}
		testKeyVal = k
	})
	return testKeyVal
}

func issue(t testing.TB, key *rsa.PrivateKey, msg []byte) []byte {
	t.Helper()
	blinded, st, err := Blind(&key.PublicKey, msg)
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	blindSig, err := BlindSign(key, blinded)
	if err != nil {
		t.Fatalf("BlindSign: %v", err)
	}
	sig, err := Finalize(&key.PublicKey, st, blindSig)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return sig
}

func TestIssueAndVerify(t *testing.T) {
	t.Parallel()
	key := testKey(t)
	msg := []byte("one digital coin, serial 42")
	sig := issue(t, key, msg)
	if err := Verify(&key.PublicKey, msg, sig); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	t.Parallel()
	key := testKey(t)
	sig := issue(t, key, []byte("message A"))
	if err := Verify(&key.PublicKey, []byte("message B"), sig); err == nil {
		t.Error("signature verified against wrong message")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	t.Parallel()
	key := testKey(t)
	msg := []byte("tamper target")
	sig := issue(t, key, msg)
	sig[0] ^= 1
	if err := Verify(&key.PublicKey, msg, sig); err == nil {
		t.Error("tampered signature verified")
	}
}

// TestBlindingHidesMessage checks the unlinkability mechanism: two
// blindings of the same message are distinct (randomized), so the signer
// cannot even detect repeat messages, let alone read them.
func TestBlindingHidesMessage(t *testing.T) {
	t.Parallel()
	key := testKey(t)
	msg := []byte("the same message")
	b1, _, err := Blind(&key.PublicKey, msg)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Blind(&key.PublicKey, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Error("two blindings of the same message are identical; signer could link them")
	}
}

// TestFinalizeDetectsCorruptSigner ensures the client notices a signer
// returning garbage rather than accepting an invalid token.
func TestFinalizeDetectsCorruptSigner(t *testing.T) {
	t.Parallel()
	key := testKey(t)
	blinded, st, err := Blind(&key.PublicKey, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	blindSig, err := BlindSign(key, blinded)
	if err != nil {
		t.Fatal(err)
	}
	blindSig[3] ^= 0xFF
	if _, err := Finalize(&key.PublicKey, st, blindSig); err == nil {
		t.Error("Finalize accepted corrupted blind signature")
	}
}

func TestBlindSignRejectsOutOfRange(t *testing.T) {
	t.Parallel()
	key := testKey(t)
	tooBig := make([]byte, (key.N.BitLen()+7)/8+1)
	for i := range tooBig {
		tooBig[i] = 0xFF
	}
	if _, err := BlindSign(key, tooBig); err == nil {
		t.Error("BlindSign accepted out-of-range value")
	}
}

func TestCrossKeyVerificationFails(t *testing.T) {
	t.Parallel()
	key := testKey(t)
	other, err := GenerateKey(1024)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("issued under key 1")
	sig := issue(t, key, msg)
	if err := Verify(&other.PublicKey, msg, sig); err == nil {
		t.Error("signature verified under unrelated key")
	}
}

// TestSignaturesAreDeterministicPerMessage: after unblinding, the
// signature is the plain FDH-RSA signature, so two independent issuances
// of the same message yield the same final signature. This is what makes
// double-spend detection by serial possible in digitalcash.
func TestSignaturesAreDeterministicPerMessage(t *testing.T) {
	t.Parallel()
	key := testKey(t)
	msg := []byte("serial 7")
	s1 := issue(t, key, msg)
	s2 := issue(t, key, msg)
	if !bytes.Equal(s1, s2) {
		t.Error("unblinded signatures differ for identical message")
	}
}

func BenchmarkIssue(b *testing.B) {
	key := testKey(b)
	msg := []byte("benchmark token")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		issue(b, key, msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	key := testKey(b)
	msg := []byte("benchmark token")
	sig := issue(b, key, msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Verify(&key.PublicKey, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
