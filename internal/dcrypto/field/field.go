// Package field implements arithmetic in the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime), plus additive secret sharing over
// that field. It is the algebra underneath the Prio-style private
// aggregation system (internal/ppm, paper §3.2.5).
//
// The Mersenne choice makes modular reduction two adds and a mask, which
// keeps share generation and aggregation fast enough that the benchmarks
// measure protocol structure rather than big-integer overhead.
package field

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// P is the field modulus, 2^61 - 1.
const P uint64 = (1 << 61) - 1

// Elem is a field element, always kept reduced to [0, P).
type Elem uint64

// ErrShareCount is returned when recombining an empty share set.
var ErrShareCount = errors.New("field: no shares to recombine")

// Reduce maps any uint64 into the field.
func Reduce(x uint64) Elem {
	// Two-step Mersenne fold: x = hi*2^61 + lo ≡ hi + lo (mod 2^61-1).
	x = (x >> 61) + (x & P)
	if x >= P {
		x -= P
	}
	return Elem(x)
}

// Add returns a + b mod P.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b) // < 2^62, no overflow
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Neg returns -a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P - uint64(a))
}

// Sub returns a - b mod P.
func Sub(a, b Elem) Elem { return Add(a, Neg(b)) }

// Mul returns a * b mod P using 128-bit intermediate arithmetic and
// Mersenne folding.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// a,b < 2^61 so the product < 2^122: hi < 2^58.
	// product = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod 2^61-1)
	// with lo itself folded as lo = (lo >> 61)*2^61 + (lo & P).
	folded := (hi << 3) | (lo >> 61) // top 64-61 bits combined, < 2^61
	r := folded + (lo & P)
	return Reduce(r)
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a, or 0 for a == 0 (callers
// must treat inversion of zero as a protocol error).
func Inv(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Pow(a, P-2) // Fermat
}

// Random returns a uniformly random field element from crypto/rand.
func Random() (Elem, error) {
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("field: random: %w", err)
		}
		// Rejection sample from the top 61 bits to avoid modulo bias.
		v := binary.BigEndian.Uint64(buf[:]) >> 3
		if v < P {
			return Elem(v), nil
		}
	}
}

// Vector is a slice of field elements with elementwise helpers.
type Vector []Elem

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// AddInto accumulates other into v elementwise; the lengths must match.
func (v Vector) AddInto(other Vector) {
	if len(v) != len(other) {
		panic(fmt.Sprintf("field: vector length mismatch %d != %d", len(v), len(other)))
	}
	for i := range v {
		v[i] = Add(v[i], other[i])
	}
}

// Split produces n additive shares of v: n-1 uniformly random vectors and
// one correction vector, summing elementwise to v. Any proper subset of
// the shares is uniformly random and reveals nothing about v — this is
// the mechanism by which PPM's aggregators are kept at (△, ⊙).
func (v Vector) Split(n int) ([]Vector, error) {
	if n < 1 {
		return nil, fmt.Errorf("field: cannot split into %d shares", n)
	}
	shares := make([]Vector, n)
	last := make(Vector, len(v))
	copy(last, v)
	for i := 0; i < n-1; i++ {
		share := NewVector(len(v))
		for j := range share {
			r, err := Random()
			if err != nil {
				return nil, err
			}
			share[j] = r
			last[j] = Sub(last[j], r)
		}
		shares[i] = share
	}
	shares[n-1] = last
	return shares, nil
}

// Recombine sums a complete share set back into the original vector.
func Recombine(shares []Vector) (Vector, error) {
	if len(shares) == 0 {
		return nil, ErrShareCount
	}
	out := NewVector(len(shares[0]))
	for _, s := range shares {
		out.AddInto(s)
	}
	return out, nil
}

// Marshal encodes the vector as big-endian uint64s.
func (v Vector) Marshal() []byte {
	out := make([]byte, 8*len(v))
	for i, e := range v {
		binary.BigEndian.PutUint64(out[8*i:], uint64(e))
	}
	return out
}

// UnmarshalVector decodes a vector produced by Marshal.
func UnmarshalVector(data []byte) (Vector, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("field: vector encoding length %d not a multiple of 8", len(data))
	}
	v := NewVector(len(data) / 8)
	for i := range v {
		raw := binary.BigEndian.Uint64(data[8*i:])
		if raw >= P {
			return nil, fmt.Errorf("field: element %d out of range", i)
		}
		v[i] = Elem(raw)
	}
	return v, nil
}
