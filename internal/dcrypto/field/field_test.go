package field

import (
	"math/big"
	"testing"
	"testing/quick"
)

var bigP = new(big.Int).SetUint64(P)

func bigMod(x *big.Int) Elem {
	return Elem(new(big.Int).Mod(x, bigP).Uint64())
}

// TestMulMatchesBigInt cross-checks the Mersenne multiplication against
// math/big over random inputs (property-based).
func TestMulMatchesBigInt(t *testing.T) {
	t.Parallel()
	f := func(a, b uint64) bool {
		x, y := Reduce(a), Reduce(b)
		got := Mul(x, y)
		want := bigMod(new(big.Int).Mul(
			new(big.Int).SetUint64(uint64(x)),
			new(big.Int).SetUint64(uint64(y)),
		))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddSubInverse(t *testing.T) {
	t.Parallel()
	f := func(a, b uint64) bool {
		x, y := Reduce(a), Reduce(b)
		return Sub(Add(x, y), y) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMulInvIdentity(t *testing.T) {
	t.Parallel()
	f := func(a uint64) bool {
		x := Reduce(a)
		if x == 0 {
			return Inv(x) == 0
		}
		return Mul(x, Inv(x)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReduceEdgeCases(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   uint64
		want Elem
	}{
		{0, 0},
		{P - 1, Elem(P - 1)},
		{P, 0},
		{P + 1, 1},
		{^uint64(0), Elem((^uint64(0))>>61 + (^uint64(0))&P - P)},
	}
	for _, c := range cases {
		if got := Reduce(c.in); got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPow(t *testing.T) {
	t.Parallel()
	// 2^61 mod (2^61-1) == 1
	if got := Pow(2, 61); got != 1 {
		t.Errorf("2^61 = %d, want 1", got)
	}
	if got := Pow(3, 0); got != 1 {
		t.Errorf("x^0 = %d, want 1", got)
	}
	if got := Pow(0, 5); got != 0 {
		t.Errorf("0^5 = %d, want 0", got)
	}
}

func TestSplitRecombine(t *testing.T) {
	t.Parallel()
	v := Vector{1, 2, 3, Elem(P - 1), 0, 12345}
	for _, n := range []int{1, 2, 3, 7} {
		shares, err := v.Split(n)
		if err != nil {
			t.Fatalf("Split(%d): %v", n, err)
		}
		if len(shares) != n {
			t.Fatalf("Split(%d) produced %d shares", n, len(shares))
		}
		back, err := Recombine(shares)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			if back[i] != v[i] {
				t.Errorf("n=%d element %d: recombined %d, want %d", n, i, back[i], v[i])
			}
		}
	}
}

// TestSharesLookRandom: a single share of a constant vector should not be
// constant (overwhelming probability) — a smoke check of the hiding
// property.
func TestSharesLookRandom(t *testing.T) {
	t.Parallel()
	v := NewVector(64) // all zeros
	shares, err := v.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	allZero := true
	for _, e := range shares[0] {
		if e != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Error("first share of zero vector is all zeros; shares are not hiding")
	}
	// And the two shares must differ from each other elementwise in general.
	same := 0
	for i := range shares[0] {
		if shares[0][i] == shares[1][i] {
			same++
		}
	}
	if same == len(shares[0]) {
		t.Error("shares are identical")
	}
}

func TestSplitErrors(t *testing.T) {
	t.Parallel()
	v := Vector{1}
	if _, err := v.Split(0); err == nil {
		t.Error("Split(0) succeeded")
	}
	if _, err := Recombine(nil); err == nil {
		t.Error("Recombine(nil) succeeded")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	t.Parallel()
	v := Vector{0, 1, Elem(P - 1), 99999}
	got, err := UnmarshalVector(v.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("element %d: %d != %d", i, got[i], v[i])
		}
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	t.Parallel()
	if _, err := UnmarshalVector(make([]byte, 7)); err == nil {
		t.Error("accepted length not multiple of 8")
	}
	bad := make([]byte, 8)
	for i := range bad {
		bad[i] = 0xFF
	}
	if _, err := UnmarshalVector(bad); err == nil {
		t.Error("accepted out-of-range element")
	}
}

func TestRandomInRange(t *testing.T) {
	t.Parallel()
	for i := 0; i < 100; i++ {
		r, err := Random()
		if err != nil {
			t.Fatal(err)
		}
		if uint64(r) >= P {
			t.Fatalf("Random() = %d out of range", r)
		}
	}
}

func TestAddIntoPanicsOnLengthMismatch(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("AddInto did not panic on length mismatch")
		}
	}()
	NewVector(2).AddInto(NewVector(3))
}

func BenchmarkMul(b *testing.B) {
	x, y := Elem(123456789), Elem(987654321)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}

func BenchmarkSplit2x1024(b *testing.B) {
	v := NewVector(1024)
	for i := range v {
		v[i] = Elem(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := v.Split(2); err != nil {
			b.Fatal(err)
		}
	}
}
