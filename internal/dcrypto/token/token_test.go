package token

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestChallengeRoundTrip(t *testing.T) {
	t.Parallel()
	c, err := NewChallenge(2, "issuer.example", "origin.example")
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalChallenge(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.TokenType != 2 || got.Issuer != "issuer.example" || got.OriginInfo != "origin.example" {
		t.Errorf("challenge = %+v", got)
	}
	if got.Nonce != c.Nonce {
		t.Error("nonce not preserved")
	}
	if got.Digest() != c.Digest() {
		t.Error("digest mismatch after round trip")
	}
}

func TestChallengeNoncesFresh(t *testing.T) {
	t.Parallel()
	a, _ := NewChallenge(2, "i", "o")
	b, _ := NewChallenge(2, "i", "o")
	if a.Nonce == b.Nonce {
		t.Error("two challenges share a nonce")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	t.Parallel()
	c, _ := NewChallenge(2, "i", "o")
	tok, err := NewToken(c)
	if err != nil {
		t.Fatal(err)
	}
	tok.Signature = []byte("fake signature bytes")
	got, err := Unmarshal(tok.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.TokenType != tok.TokenType || got.Nonce != tok.Nonce ||
		got.ChallengeDigest != tok.ChallengeDigest ||
		!bytes.Equal(got.Signature, tok.Signature) {
		t.Errorf("token = %+v, want %+v", got, tok)
	}
	if got.ID() != tok.ID() {
		t.Error("ID changed across round trip")
	}
}

func TestTokenBindsChallenge(t *testing.T) {
	t.Parallel()
	c1, _ := NewChallenge(2, "i", "o1")
	c2, _ := NewChallenge(2, "i", "o2")
	tok, _ := NewToken(c1)
	if tok.ChallengeDigest == c2.Digest() {
		t.Error("token digest matches foreign challenge")
	}
	if tok.ChallengeDigest != c1.Digest() {
		t.Error("token digest does not match its challenge")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	t.Parallel()
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil token unmarshaled")
	}
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short token unmarshaled")
	}
	c, _ := NewChallenge(2, "i", "o")
	tok, _ := NewToken(c)
	tok.Signature = []byte("sig")
	trailing := append(tok.Marshal(), 0xFF)
	if _, err := Unmarshal(trailing); err == nil {
		t.Error("token with trailing bytes unmarshaled")
	}
	if _, err := UnmarshalChallenge([]byte{0}); err == nil {
		t.Error("short challenge unmarshaled")
	}
}

func TestChallengeUnmarshalFuzzSafety(t *testing.T) {
	t.Parallel()
	f := func(data []byte) bool {
		// Must never panic; errors are fine.
		_, _ = UnmarshalChallenge(data)
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSpendCache(t *testing.T) {
	t.Parallel()
	c, _ := NewChallenge(2, "i", "o")
	t1, _ := NewToken(c)
	t2, _ := NewToken(c)
	cache := NewSpendCache()
	if err := cache.Redeem(t1); err != nil {
		t.Fatal(err)
	}
	if err := cache.Redeem(t1); err != ErrSpent {
		t.Errorf("double redeem error = %v", err)
	}
	if err := cache.Redeem(t2); err != nil {
		t.Errorf("distinct token rejected: %v", err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache len = %d", cache.Len())
	}
}

func TestSignedMessageExcludesSignature(t *testing.T) {
	t.Parallel()
	c, _ := NewChallenge(2, "i", "o")
	tok, _ := NewToken(c)
	before := append([]byte(nil), tok.SignedMessage()...)
	tok.Signature = []byte("now signed")
	if !bytes.Equal(before, tok.SignedMessage()) {
		t.Error("SignedMessage changed when signature was attached")
	}
}
