package token

import "testing"

func FuzzUnmarshalToken(f *testing.F) {
	c, _ := NewChallenge(2, "issuer", "origin")
	tok, _ := NewToken(c)
	tok.Signature = []byte("seed signature")
	f.Add(tok.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tok, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Valid decodes must round-trip exactly.
		back, err := Unmarshal(tok.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if back.ID() != tok.ID() {
			t.Fatal("token id changed across round trip")
		}
	})
}

func FuzzUnmarshalChallenge(f *testing.F) {
	c, _ := NewChallenge(2, "issuer", "origin")
	f.Add(c.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := UnmarshalChallenge(data)
		if err != nil {
			return
		}
		back, err := UnmarshalChallenge(ch.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if back.Digest() != ch.Digest() {
			t.Fatal("challenge digest changed across round trip")
		}
	})
}
