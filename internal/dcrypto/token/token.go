// Package token defines the Privacy Pass token envelope: challenges,
// tokens, their wire encodings, and a double-spend cache. It follows
// the shape of the Privacy Pass architecture draft (the paper's [12]):
// an origin issues a TokenChallenge, the client obtains a Token bound to
// that challenge from an issuer, and redeems it at the origin.
//
// The cryptographic binding (blind RSA in this module) lives in the
// privacypass package; this package is deliberately signature-agnostic
// so the same envelope serves Privacy Pass and PGPP's oblivious
// authentication.
package token

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// NonceSize is the size of token nonces in bytes.
const NonceSize = 32

// Errors returned by envelope operations.
var (
	ErrTruncated = errors.New("token: truncated encoding")
	ErrSpent     = errors.New("token: already redeemed")
)

// Challenge is an origin's request for proof. TokenType identifies the
// signature scheme (2 = publicly verifiable / blind RSA, per the
// Privacy Pass registries); Issuer names the trusted issuer; OriginInfo
// binds the token to this origin.
type Challenge struct {
	TokenType  uint16
	Issuer     string
	OriginInfo string
	Nonce      [NonceSize]byte
}

// NewChallenge creates a challenge with a fresh nonce.
func NewChallenge(tokenType uint16, issuer, originInfo string) (*Challenge, error) {
	c := &Challenge{TokenType: tokenType, Issuer: issuer, OriginInfo: originInfo}
	if _, err := rand.Read(c.Nonce[:]); err != nil {
		return nil, fmt.Errorf("token: challenge nonce: %w", err)
	}
	return c, nil
}

// Marshal encodes the challenge.
func (c *Challenge) Marshal() []byte {
	var b bytes.Buffer
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], c.TokenType)
	b.Write(u16[:])
	writeLV(&b, []byte(c.Issuer))
	writeLV(&b, []byte(c.OriginInfo))
	b.Write(c.Nonce[:])
	return b.Bytes()
}

// UnmarshalChallenge decodes a challenge.
func UnmarshalChallenge(data []byte) (*Challenge, error) {
	if len(data) < 2 {
		return nil, ErrTruncated
	}
	c := &Challenge{TokenType: binary.BigEndian.Uint16(data)}
	rest := data[2:]
	issuer, rest, err := readLV(rest)
	if err != nil {
		return nil, err
	}
	origin, rest, err := readLV(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != NonceSize {
		return nil, ErrTruncated
	}
	c.Issuer = string(issuer)
	c.OriginInfo = string(origin)
	copy(c.Nonce[:], rest)
	return c, nil
}

// Digest returns the challenge digest tokens commit to.
func (c *Challenge) Digest() [32]byte { return sha256.Sum256(c.Marshal()) }

// Token is a redeemable proof: a fresh client nonce, the digest of the
// challenge it answers, and the issuer's signature over both.
type Token struct {
	TokenType       uint16
	Nonce           [NonceSize]byte
	ChallengeDigest [32]byte
	Signature       []byte
}

// NewToken creates an unsigned token for a challenge with a fresh nonce.
func NewToken(c *Challenge) (*Token, error) {
	t := &Token{TokenType: c.TokenType, ChallengeDigest: c.Digest()}
	if _, err := rand.Read(t.Nonce[:]); err != nil {
		return nil, fmt.Errorf("token: token nonce: %w", err)
	}
	return t, nil
}

// SignedMessage returns the byte string the issuer signs: everything
// except the signature itself.
func (t *Token) SignedMessage() []byte {
	var b bytes.Buffer
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], t.TokenType)
	b.Write(u16[:])
	b.Write(t.Nonce[:])
	b.Write(t.ChallengeDigest[:])
	return b.Bytes()
}

// Marshal encodes the complete token.
func (t *Token) Marshal() []byte {
	var b bytes.Buffer
	b.Write(t.SignedMessage())
	writeLV(&b, t.Signature)
	return b.Bytes()
}

// Unmarshal decodes a token.
func Unmarshal(data []byte) (*Token, error) {
	const fixed = 2 + NonceSize + 32
	if len(data) < fixed {
		return nil, ErrTruncated
	}
	t := &Token{TokenType: binary.BigEndian.Uint16(data)}
	copy(t.Nonce[:], data[2:])
	copy(t.ChallengeDigest[:], data[2+NonceSize:])
	sig, rest, err := readLV(data[fixed:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("token: %d trailing bytes", len(rest))
	}
	t.Signature = sig
	return t, nil
}

// ID returns a stable identifier for double-spend tracking.
func (t *Token) ID() [32]byte { return sha256.Sum256(t.SignedMessage()) }

// SpendCache tracks redeemed token IDs.
type SpendCache struct {
	mu   sync.Mutex
	seen map[[32]byte]bool
}

// NewSpendCache returns an empty cache.
func NewSpendCache() *SpendCache { return &SpendCache{seen: map[[32]byte]bool{}} }

// Redeem marks a token spent, returning ErrSpent if it already was.
func (s *SpendCache) Redeem(t *Token) error {
	id := t.ID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[id] {
		return ErrSpent
	}
	s.seen[id] = true
	return nil
}

// Len reports how many tokens have been redeemed.
func (s *SpendCache) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

func writeLV(b *bytes.Buffer, v []byte) {
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(v)))
	b.Write(u16[:])
	b.Write(v)
}

func readLV(data []byte) (v, rest []byte, err error) {
	if len(data) < 2 {
		return nil, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(data))
	if len(data) < 2+n {
		return nil, nil, ErrTruncated
	}
	return data[2 : 2+n], data[2+n:], nil
}
