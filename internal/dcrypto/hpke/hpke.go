// Package hpke implements Hybrid Public Key Encryption (RFC 9180) in
// base mode for the single ciphersuite used throughout this module:
//
//	DHKEM(X25519, HKDF-SHA256), HKDF-SHA256, AES-128-GCM
//
// It follows the RFC's labeled key schedule exactly (the "HPKE-v1"
// labels, suite ids, and nonce sequencing), so encapsulations produced
// here are wire-compatible in structure with deployed ODoH/OHTTP stacks
// even though this module never talks to them. Only the base (unauthenticated
// sender) mode is provided because that is the mode ODoH, OHTTP, and the
// mix-net onion layers require.
package hpke

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"decoupling/internal/dcrypto/hkdf"
)

// Ciphersuite constants (RFC 9180 §7).
const (
	KEMX25519HKDFSHA256 = 0x0020
	KDFHKDFSHA256       = 0x0001
	AEADAES128GCM       = 0x0001

	// NK is the AEAD key size, NN the nonce size, NSecret the KEM
	// shared-secret size, all in bytes for this suite.
	NK      = 16
	NN      = 12
	NSecret = 32
	// NEnc is the size of a serialized encapsulated key (X25519 point).
	NEnc = 32
	// NPK is the size of a serialized public key.
	NPK = 32
)

const modeBase = 0x00

var (
	// ErrOpen is returned when AEAD authentication fails.
	ErrOpen = errors.New("hpke: message authentication failed")
	// ErrKeySize is returned for malformed key material.
	ErrKeySize = errors.New("hpke: invalid key size")
)

// KeyPair holds an X25519 key pair for use as an HPKE recipient.
type KeyPair struct {
	priv *ecdh.PrivateKey
}

// GenerateKeyPair creates a fresh X25519 recipient key pair.
func GenerateKeyPair() (*KeyPair, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("hpke: generating key pair: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// KeyPairFromSeed derives a deterministic key pair from a 32-byte seed.
// It exists so tests and the deterministic simulator can create stable
// recipients; the derivation is DeriveKeyPair-like (labeled HKDF) but is
// not required to interoperate with other stacks.
func KeyPairFromSeed(seed []byte) (*KeyPair, error) {
	sk := hkdf.Key(nil, seed, []byte("decoupling hpke seed"), 32)
	priv, err := ecdh.X25519().NewPrivateKey(sk)
	if err != nil {
		return nil, fmt.Errorf("hpke: deriving key pair: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// PublicKey returns the serialized (32-byte) public key.
func (kp *KeyPair) PublicKey() []byte { return kp.priv.PublicKey().Bytes() }

func suiteID() []byte {
	id := make([]byte, 0, 10)
	id = append(id, "HPKE"...)
	id = binary.BigEndian.AppendUint16(id, KEMX25519HKDFSHA256)
	id = binary.BigEndian.AppendUint16(id, KDFHKDFSHA256)
	id = binary.BigEndian.AppendUint16(id, AEADAES128GCM)
	return id
}

func kemSuiteID() []byte {
	id := make([]byte, 0, 5)
	id = append(id, "KEM"...)
	id = binary.BigEndian.AppendUint16(id, KEMX25519HKDFSHA256)
	return id
}

func labeledExtract(suite, salt []byte, label string, ikm []byte) []byte {
	li := make([]byte, 0, 7+len(suite)+len(label)+len(ikm))
	li = append(li, "HPKE-v1"...)
	li = append(li, suite...)
	li = append(li, label...)
	li = append(li, ikm...)
	return hkdf.Extract(salt, li)
}

func labeledExpand(suite, prk []byte, label string, info []byte, length int) []byte {
	li := make([]byte, 0, 2+7+len(suite)+len(label)+len(info))
	li = binary.BigEndian.AppendUint16(li, uint16(length))
	li = append(li, "HPKE-v1"...)
	li = append(li, suite...)
	li = append(li, label...)
	li = append(li, info...)
	return hkdf.Expand(prk, li, length)
}

// extractAndExpand implements DHKEM's ExtractAndExpand (RFC 9180 §4.1).
func extractAndExpand(dh, kemContext []byte) []byte {
	suite := kemSuiteID()
	eaePRK := labeledExtract(suite, nil, "eae_prk", dh)
	return labeledExpand(suite, eaePRK, "shared_secret", kemContext, NSecret)
}

// encap performs DHKEM.Encap against the recipient public key pkR,
// returning the shared secret and the encapsulated key.
func encap(pkR []byte) (sharedSecret, enc []byte, err error) {
	remote, err := ecdh.X25519().NewPublicKey(pkR)
	if err != nil {
		return nil, nil, fmt.Errorf("hpke: recipient public key: %w", err)
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("hpke: ephemeral key: %w", err)
	}
	dh, err := eph.ECDH(remote)
	if err != nil {
		return nil, nil, fmt.Errorf("hpke: ecdh: %w", err)
	}
	enc = eph.PublicKey().Bytes()
	kemContext := append(append([]byte{}, enc...), pkR...)
	return extractAndExpand(dh, kemContext), enc, nil
}

// decap performs DHKEM.Decap with the recipient private key.
func decap(enc []byte, kp *KeyPair) ([]byte, error) {
	if len(enc) != NEnc {
		return nil, ErrKeySize
	}
	ephPub, err := ecdh.X25519().NewPublicKey(enc)
	if err != nil {
		return nil, fmt.Errorf("hpke: encapsulated key: %w", err)
	}
	dh, err := kp.priv.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("hpke: ecdh: %w", err)
	}
	kemContext := append(append([]byte{}, enc...), kp.PublicKey()...)
	return extractAndExpand(dh, kemContext), nil
}

// Context is an established HPKE encryption context. A sender context
// seals, a recipient context opens; both share the same key schedule.
// Contexts are not safe for concurrent use.
type Context struct {
	aead           cipher.AEAD
	baseNonce      [NN]byte
	seq            uint64
	exporterSecret []byte
}

func keySchedule(sharedSecret, info []byte) (*Context, error) {
	suite := suiteID()
	pskIDHash := labeledExtract(suite, nil, "psk_id_hash", nil)
	infoHash := labeledExtract(suite, nil, "info_hash", info)
	ksc := append([]byte{modeBase}, pskIDHash...)
	ksc = append(ksc, infoHash...)

	secret := labeledExtract(suite, sharedSecret, "secret", nil)
	key := labeledExpand(suite, secret, "key", ksc, NK)
	baseNonce := labeledExpand(suite, secret, "base_nonce", ksc, NN)
	exporter := labeledExpand(suite, secret, "exp", ksc, hkdf.Size)

	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("hpke: aes: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("hpke: gcm: %w", err)
	}
	ctx := &Context{aead: aead, exporterSecret: exporter}
	copy(ctx.baseNonce[:], baseNonce)
	return ctx, nil
}

// SetupSender establishes a sender context to the recipient public key
// pkR with application-supplied info, returning the encapsulated key to
// transmit alongside ciphertexts.
func SetupSender(pkR, info []byte) (enc []byte, ctx *Context, err error) {
	sharedSecret, enc, err := encap(pkR)
	if err != nil {
		return nil, nil, err
	}
	ctx, err = keySchedule(sharedSecret, info)
	if err != nil {
		return nil, nil, err
	}
	return enc, ctx, nil
}

// SetupRecipient establishes the matching recipient context from the
// received encapsulated key.
func SetupRecipient(enc []byte, kp *KeyPair, info []byte) (*Context, error) {
	sharedSecret, err := decap(enc, kp)
	if err != nil {
		return nil, err
	}
	return keySchedule(sharedSecret, info)
}

func (c *Context) nextNonce() []byte {
	nonce := make([]byte, NN)
	copy(nonce, c.baseNonce[:])
	var seqBytes [8]byte
	binary.BigEndian.PutUint64(seqBytes[:], c.seq)
	for i := 0; i < 8; i++ {
		nonce[NN-8+i] ^= seqBytes[i]
	}
	c.seq++
	return nonce
}

// Seal encrypts plaintext with associated data aad under the context's
// current sequence number.
func (c *Context) Seal(aad, plaintext []byte) []byte {
	return c.aead.Seal(nil, c.nextNonce(), plaintext, aad)
}

// Open decrypts and authenticates ciphertext with associated data aad.
func (c *Context) Open(aad, ciphertext []byte) ([]byte, error) {
	pt, err := c.aead.Open(nil, c.nextNonce(), ciphertext, aad)
	if err != nil {
		return nil, ErrOpen
	}
	return pt, nil
}

// Export derives length bytes of secret keying material bound to this
// context and exporterContext (RFC 9180 §5.3). ODoH uses this to key the
// response direction.
func (c *Context) Export(exporterContext []byte, length int) []byte {
	return labeledExpand(suiteID(), c.exporterSecret, "sec", exporterContext, length)
}

// Seal is the single-shot API: it encapsulates to pkR and encrypts one
// message, returning enc || ciphertext concatenated by the caller's
// framing of choice. It is used where a context round trip is not needed
// (e.g. mix-net onion layers).
func Seal(pkR, info, aad, plaintext []byte) (enc, ciphertext []byte, err error) {
	enc, ctx, err := SetupSender(pkR, info)
	if err != nil {
		return nil, nil, err
	}
	return enc, ctx.Seal(aad, plaintext), nil
}

// Open is the single-shot counterpart of Seal.
func Open(enc []byte, kp *KeyPair, info, aad, ciphertext []byte) ([]byte, error) {
	ctx, err := SetupRecipient(enc, kp, info)
	if err != nil {
		return nil, err
	}
	return ctx.Open(aad, ciphertext)
}

// SealSymmetric encrypts plaintext with AES-128-GCM under key, using a
// fresh random nonce prepended to the ciphertext. It is the response
// encryption primitive for the oblivious protocols: the response key is
// either carried inside the sealed query (ODNS) or derived from the
// query context via Export (ODoH/OHTTP).
func SealSymmetric(key, aad, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("hpke: symmetric key: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("hpke: nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, plaintext, aad), nil
}

// OpenSymmetric reverses SealSymmetric.
func OpenSymmetric(key, aad, sealed []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("hpke: symmetric key: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, ErrOpen
	}
	pt, err := gcm.Open(nil, sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():], aad)
	if err != nil {
		return nil, ErrOpen
	}
	return pt, nil
}
