package hpke

import (
	"bytes"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	t.Parallel()
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	enc, ct, err := Seal(kp.PublicKey(), []byte("info"), []byte("aad"), []byte("hello decoupling"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Open(enc, kp, []byte("info"), []byte("aad"), ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "hello decoupling" {
		t.Errorf("round trip = %q", pt)
	}
}

func TestOpenRejectsTamperedCiphertext(t *testing.T) {
	t.Parallel()
	kp, _ := GenerateKeyPair()
	enc, ct, err := Seal(kp.PublicKey(), nil, nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	ct[0] ^= 1
	if _, err := Open(enc, kp, nil, nil, ct); err == nil {
		t.Fatal("tampered ciphertext opened successfully")
	}
}

func TestOpenRejectsWrongAAD(t *testing.T) {
	t.Parallel()
	kp, _ := GenerateKeyPair()
	enc, ct, err := Seal(kp.PublicKey(), nil, []byte("right"), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(enc, kp, nil, []byte("wrong"), ct); err == nil {
		t.Fatal("ciphertext opened with wrong AAD")
	}
}

func TestOpenRejectsWrongInfo(t *testing.T) {
	t.Parallel()
	kp, _ := GenerateKeyPair()
	enc, ct, err := Seal(kp.PublicKey(), []byte("context-a"), nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(enc, kp, []byte("context-b"), nil, ct); err == nil {
		t.Fatal("ciphertext opened with wrong info")
	}
}

func TestOpenRejectsWrongRecipient(t *testing.T) {
	t.Parallel()
	kp1, _ := GenerateKeyPair()
	kp2, _ := GenerateKeyPair()
	enc, ct, err := Seal(kp1.PublicKey(), nil, nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(enc, kp2, nil, nil, ct); err == nil {
		t.Fatal("ciphertext opened by wrong recipient")
	}
}

// TestContextSequencing verifies that a multi-message context uses a
// fresh nonce per message and that out-of-order opens fail.
func TestContextSequencing(t *testing.T) {
	t.Parallel()
	kp, _ := GenerateKeyPair()
	enc, sender, err := SetupSender(kp.PublicKey(), []byte("seq"))
	if err != nil {
		t.Fatal(err)
	}
	recipient, err := SetupRecipient(enc, kp, []byte("seq"))
	if err != nil {
		t.Fatal(err)
	}

	msgs := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	var cts [][]byte
	for _, m := range msgs {
		cts = append(cts, sender.Seal(nil, m))
	}
	if bytes.Equal(cts[0], cts[1]) {
		t.Fatal("two seals of different messages share ciphertext prefix structure unexpectedly")
	}
	for i, ct := range cts {
		pt, err := recipient.Open(nil, ct)
		if err != nil {
			t.Fatalf("open message %d: %v", i, err)
		}
		if !bytes.Equal(pt, msgs[i]) {
			t.Errorf("message %d = %q, want %q", i, pt, msgs[i])
		}
	}
	// A replay of the first ciphertext must now fail (sequence advanced).
	if _, err := recipient.Open(nil, cts[0]); err == nil {
		t.Fatal("replayed ciphertext accepted")
	}
}

func TestExportConsistency(t *testing.T) {
	t.Parallel()
	kp, _ := GenerateKeyPair()
	enc, sender, err := SetupSender(kp.PublicKey(), nil)
	if err != nil {
		t.Fatal(err)
	}
	recipient, err := SetupRecipient(enc, kp, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := sender.Export([]byte("odoh response"), 32)
	b := recipient.Export([]byte("odoh response"), 32)
	if !bytes.Equal(a, b) {
		t.Error("sender and recipient exported different secrets")
	}
	c := recipient.Export([]byte("other label"), 32)
	if bytes.Equal(a, c) {
		t.Error("different exporter contexts produced identical secrets")
	}
}

func TestKeyPairFromSeedDeterministic(t *testing.T) {
	t.Parallel()
	seed := bytes.Repeat([]byte{7}, 32)
	kp1, err := KeyPairFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	kp2, err := KeyPairFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kp1.PublicKey(), kp2.PublicKey()) {
		t.Error("same seed produced different key pairs")
	}
	kp3, _ := KeyPairFromSeed(bytes.Repeat([]byte{8}, 32))
	if bytes.Equal(kp1.PublicKey(), kp3.PublicKey()) {
		t.Error("different seeds produced identical key pairs")
	}
}

func TestDecapRejectsShortEnc(t *testing.T) {
	t.Parallel()
	kp, _ := GenerateKeyPair()
	if _, err := SetupRecipient([]byte{1, 2, 3}, kp, nil); err == nil {
		t.Fatal("short encapsulated key accepted")
	}
}

// TestCiphertextHidesPlaintextSizeOnly documents the property traffic
// analysis (§4.3) exploits: ciphertext length = plaintext length + tag.
func TestCiphertextOverheadIsConstant(t *testing.T) {
	t.Parallel()
	kp, _ := GenerateKeyPair()
	for _, n := range []int{0, 1, 100, 4096} {
		_, ct, err := Seal(kp.PublicKey(), nil, nil, make([]byte, n))
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != n+16 {
			t.Errorf("plaintext %d bytes -> ciphertext %d, want %d", n, len(ct), n+16)
		}
	}
}

func BenchmarkSeal(b *testing.B) {
	kp, _ := GenerateKeyPair()
	msg := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Seal(kp.PublicKey(), nil, nil, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealOpen(b *testing.B) {
	kp, _ := GenerateKeyPair()
	msg := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, ct, err := Seal(kp.PublicKey(), nil, nil, msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Open(enc, kp, nil, nil, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContextSeal(b *testing.B) {
	kp, _ := GenerateKeyPair()
	_, sender, err := SetupSender(kp.PublicKey(), nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sender.Seal(nil, msg)
	}
}

func TestSymmetricRoundTrip(t *testing.T) {
	t.Parallel()
	key := make([]byte, 16)
	copy(key, "0123456789abcdef")
	ct, err := SealSymmetric(key, []byte("aad"), []byte("symmetric payload"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := OpenSymmetric(key, []byte("aad"), ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "symmetric payload" {
		t.Errorf("round trip = %q", pt)
	}
}

func TestSymmetricNoncesFresh(t *testing.T) {
	t.Parallel()
	key := make([]byte, 16)
	a, _ := SealSymmetric(key, nil, []byte("same"))
	b, _ := SealSymmetric(key, nil, []byte("same"))
	if bytes.Equal(a, b) {
		t.Error("two seals of the same plaintext are identical (nonce reuse)")
	}
}

func TestSymmetricRejections(t *testing.T) {
	t.Parallel()
	key := make([]byte, 16)
	ct, err := SealSymmetric(key, []byte("right"), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSymmetric(key, []byte("wrong"), ct); err == nil {
		t.Error("wrong AAD accepted")
	}
	other := make([]byte, 16)
	other[0] = 1
	if _, err := OpenSymmetric(other, []byte("right"), ct); err == nil {
		t.Error("wrong key accepted")
	}
	if _, err := OpenSymmetric(key, nil, []byte("short")); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	ct[len(ct)-1] ^= 1
	if _, err := OpenSymmetric(key, []byte("right"), ct); err == nil {
		t.Error("tampered ciphertext accepted")
	}
	if _, err := SealSymmetric([]byte("bad"), nil, nil); err == nil {
		t.Error("bad symmetric key size accepted for seal")
	}
	if _, err := OpenSymmetric([]byte("bad"), nil, make([]byte, 40)); err == nil {
		t.Error("bad symmetric key size accepted for open")
	}
}

func TestSetupSenderRejectsBadPublicKey(t *testing.T) {
	t.Parallel()
	if _, _, err := SetupSender([]byte("not a key"), nil); err == nil {
		t.Error("malformed recipient key accepted")
	}
	if _, _, err := Seal([]byte("not a key"), nil, nil, []byte("x")); err == nil {
		t.Error("Seal with malformed key succeeded")
	}
}

func TestKeyPairFromSeedRejectsNothing(t *testing.T) {
	t.Parallel()
	// Any seed works (clamped internally by the HKDF derivation); the
	// resulting keys must be valid recipients.
	kp, err := KeyPairFromSeed(nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, ct, err := Seal(kp.PublicKey(), nil, nil, []byte("to seeded key"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(enc, kp, nil, nil, ct); err != nil {
		t.Errorf("seeded key pair cannot decrypt: %v", err)
	}
}

func TestOpenRejectsGarbageEnc(t *testing.T) {
	t.Parallel()
	kp, _ := GenerateKeyPair()
	// 32 bytes that are a valid X25519 point format but random: Open
	// must fail at AEAD, not panic.
	garbageEnc := bytes.Repeat([]byte{0x42}, NEnc)
	if _, err := Open(garbageEnc, kp, nil, nil, make([]byte, 32)); err == nil {
		t.Error("garbage encapsulated key produced successful open")
	}
}
