package dnswire

import (
	"bytes"
	"testing"
)

// Native fuzz targets: run as seed corpus under `go test`, or
// explore with `go test -fuzz=FuzzDecode ./internal/dnswire`.

func FuzzDecode(f *testing.F) {
	// Seeds: a valid query, a valid response, known tricky shapes.
	q, _ := NewQuery(1, "www.example.com", TypeA).Encode()
	f.Add(q)
	r := NewQuery(2, "host.test", TypeTXT).Reply()
	r.Answers = append(r.Answers, TXT("host.test", 60, "seed"))
	rw, _ := r.Encode()
	f.Add(rw)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0}, 64)) // pointer storm
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode without panicking; the
		// re-encoded form must decode again to the same section counts
		// (full idempotence doesn't hold because compression may
		// normalize names).
		wire, err := m.Encode()
		if err != nil {
			return // e.g. names containing bytes our encoder rejects
		}
		m2, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("section counts changed: %d/%d -> %d/%d",
				len(m.Questions), len(m.Answers), len(m2.Questions), len(m2.Answers))
		}
	})
}

func FuzzTXT(f *testing.F) {
	f.Add([]byte{4, 't', 'e', 's', 't'})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := RR{Type: TypeTXT, Data: data}
		_, _ = rr.TXT() // must not panic
	})
}
