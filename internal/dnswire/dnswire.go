// Package dnswire implements the DNS message wire format (RFC 1035):
// header, questions, resource records, and domain-name compression. It
// is the encoding substrate for the toy DNS ecosystem in internal/dns
// and for the oblivious DNS systems (internal/odns, internal/odoh),
// whose whole point is to carry these messages where different parties
// can and cannot read them.
//
// Supported record types cover what the experiments need (A, AAAA,
// CNAME, TXT, NS); unknown types round-trip as opaque RDATA.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS RR type code.
type Type uint16

// Record types used in this module.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
)

// String names the common types.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN is used.
const ClassIN uint16 = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes used in this module.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeRefused  RCode = 5
)

// Errors returned by the decoder.
var (
	ErrTruncated   = errors.New("dnswire: message truncated")
	ErrBadName     = errors.New("dnswire: malformed domain name")
	ErrBadPointer  = errors.New("dnswire: compression pointer loop or forward reference")
	ErrNameTooLong = errors.New("dnswire: domain name exceeds 255 octets")
)

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  Type
	Class uint16
}

// RR is a resource record. Data holds RDATA in wire form (e.g. 4 bytes
// for A); the TXT/String helpers interpret it for the common types.
type RR struct {
	Name  string
	Type  Type
	Class uint16
	TTL   uint32
	Data  []byte
}

// TXT returns the concatenated character-strings of a TXT record.
func (r RR) TXT() (string, error) {
	if r.Type != TypeTXT {
		return "", fmt.Errorf("dnswire: TXT() on %s record", r.Type)
	}
	var b strings.Builder
	d := r.Data
	for len(d) > 0 {
		n := int(d[0])
		if len(d) < 1+n {
			return "", ErrTruncated
		}
		b.Write(d[1 : 1+n])
		d = d[1+n:]
	}
	return b.String(), nil
}

// TXTData encodes a string as TXT RDATA (split into 255-byte
// character-strings).
func TXTData(s string) []byte {
	var out []byte
	for len(s) > 0 {
		n := len(s)
		if n > 255 {
			n = 255
		}
		out = append(out, byte(n))
		out = append(out, s[:n]...)
		s = s[n:]
	}
	if out == nil {
		out = []byte{0}
	}
	return out
}

// Message is a complete DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
	Questions          []Question
	Answers            []RR
	Authorities        []RR
	Additionals        []RR
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// Reply builds a response skeleton echoing the query's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:                 m.ID,
		Response:           true,
		Opcode:             m.Opcode,
		RecursionDesired:   m.RecursionDesired,
		RecursionAvailable: true,
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// CanonicalName lowercases and ensures a single trailing dot, the
// normalized form used as zone/cache keys throughout this module.
func CanonicalName(name string) string {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	return name + "."
}

// appendName encodes a domain name, using compression pointers into
// previously written names where possible.
func appendName(buf []byte, name string, offsets map[string]int) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." {
		return append(buf, 0), nil
	}
	if len(name) > 255 {
		return nil, ErrNameTooLong
	}
	labels := strings.Split(strings.TrimSuffix(name, "."), ".")
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if off, ok := offsets[suffix]; ok && off < 0x4000 {
			return binary.BigEndian.AppendUint16(buf, 0xC000|uint16(off)), nil
		}
		if len(buf) < 0x4000 {
			offsets[suffix] = len(buf)
		}
		l := labels[i]
		if l == "" || len(l) > 63 {
			return nil, ErrBadName
		}
		buf = append(buf, byte(len(l)))
		buf = append(buf, l...)
	}
	return append(buf, 0), nil
}

// readName decodes a (possibly compressed) domain name starting at off,
// returning the name and the offset just past it in the original stream.
func readName(msg []byte, off int) (string, int, error) {
	var b strings.Builder
	jumped := false
	next := off
	seen := 0
	for {
		if next >= len(msg) {
			return "", 0, ErrTruncated
		}
		l := int(msg[next])
		switch {
		case l == 0:
			if !jumped {
				off = next + 1
			}
			name := b.String()
			if name == "" {
				name = "."
			}
			return name, off, nil
		case l&0xC0 == 0xC0:
			if next+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(msg[next:]) & 0x3FFF)
			if ptr >= next {
				return "", 0, ErrBadPointer
			}
			if !jumped {
				off = next + 2
				jumped = true
			}
			next = ptr
			seen++
			if seen > 63 {
				return "", 0, ErrBadPointer
			}
		case l > 63:
			return "", 0, ErrBadName
		default:
			if next+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			b.Write(msg[next+1 : next+1+l])
			b.WriteByte('.')
			next += 1 + l
			if b.Len() > 256 {
				return "", 0, ErrNameTooLong
			}
		}
	}
}

const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Encode serializes the message with name compression.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 12, 512)
	binary.BigEndian.PutUint16(buf[0:], m.ID)
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= flagAA
	}
	if m.Truncated {
		flags |= flagTC
	}
	if m.RecursionDesired {
		flags |= flagRD
	}
	if m.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.RCode) & 0xF
	binary.BigEndian.PutUint16(buf[2:], flags)
	binary.BigEndian.PutUint16(buf[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:], uint16(len(m.Authorities)))
	binary.BigEndian.PutUint16(buf[10:], uint16(len(m.Additionals)))

	offsets := map[string]int{}
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, offsets); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
	}
	for _, sec := range [][]RR{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range sec {
			if buf, err = appendName(buf, rr.Name, offsets); err != nil {
				return nil, err
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
			buf = binary.BigEndian.AppendUint16(buf, rr.Class)
			buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
			if len(rr.Data) > 0xFFFF {
				return nil, fmt.Errorf("dnswire: RDATA too long (%d)", len(rr.Data))
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(rr.Data)))
			buf = append(buf, rr.Data...)
		}
	}
	return buf, nil
}

func readRR(msg []byte, off int) (RR, int, error) {
	name, off, err := readName(msg, off)
	if err != nil {
		return RR{}, 0, err
	}
	if off+10 > len(msg) {
		return RR{}, 0, ErrTruncated
	}
	rr := RR{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(msg[off:])),
		Class: binary.BigEndian.Uint16(msg[off+2:]),
		TTL:   binary.BigEndian.Uint32(msg[off+4:]),
	}
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return RR{}, 0, ErrTruncated
	}
	rr.Data = append([]byte(nil), msg[off:off+rdlen]...)
	return rr, off + rdlen, nil
}

// Decode parses a wire-format DNS message.
func Decode(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrTruncated
	}
	m := &Message{ID: binary.BigEndian.Uint16(msg[0:])}
	flags := binary.BigEndian.Uint16(msg[2:])
	m.Response = flags&flagQR != 0
	m.Opcode = uint8(flags >> 11 & 0xF)
	m.Authoritative = flags&flagAA != 0
	m.Truncated = flags&flagTC != 0
	m.RecursionDesired = flags&flagRD != 0
	m.RecursionAvailable = flags&flagRA != 0
	m.RCode = RCode(flags & 0xF)

	counts := []int{
		int(binary.BigEndian.Uint16(msg[4:])),
		int(binary.BigEndian.Uint16(msg[6:])),
		int(binary.BigEndian.Uint16(msg[8:])),
		int(binary.BigEndian.Uint16(msg[10:])),
	}
	off := 12
	for i := 0; i < counts[0]; i++ {
		name, n, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(msg) {
			return nil, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  Type(binary.BigEndian.Uint16(msg[off:])),
			Class: binary.BigEndian.Uint16(msg[off+2:]),
		})
		off += 4
	}
	for sec := 1; sec <= 3; sec++ {
		for i := 0; i < counts[sec]; i++ {
			rr, n, err := readRR(msg, off)
			if err != nil {
				return nil, err
			}
			off = n
			switch sec {
			case 1:
				m.Answers = append(m.Answers, rr)
			case 2:
				m.Authorities = append(m.Authorities, rr)
			case 3:
				m.Additionals = append(m.Additionals, rr)
			}
		}
	}
	return m, nil
}

// A builds an A record; addr must be 4 bytes.
func A(name string, ttl uint32, addr [4]byte) RR {
	return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, Data: addr[:]}
}

// AAAA builds an AAAA record; addr must be 16 bytes.
func AAAA(name string, ttl uint32, addr [16]byte) RR {
	return RR{Name: name, Type: TypeAAAA, Class: ClassIN, TTL: ttl, Data: addr[:]}
}

// NS builds an NS record pointing at the given nameserver host.
func NS(name string, ttl uint32, host string) RR {
	data, err := appendName(nil, host, map[string]int{})
	if err != nil {
		panic(err)
	}
	return RR{Name: name, Type: TypeNS, Class: ClassIN, TTL: ttl, Data: data}
}

// TXT builds a TXT record.
func TXT(name string, ttl uint32, value string) RR {
	return RR{Name: name, Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: TXTData(value)}
}

// CNAME builds a CNAME record pointing at target (encoded uncompressed
// in RDATA for simplicity — decoders handle both forms).
func CNAME(name string, ttl uint32, target string) RR {
	data, err := appendName(nil, target, map[string]int{})
	if err != nil {
		// Target names in this module are program constants; a bad one
		// is a programming error.
		panic(err)
	}
	return RR{Name: name, Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: data}
}

// CNAMETarget decodes the target of a CNAME record.
func CNAMETarget(rr RR) (string, error) {
	if rr.Type != TypeCNAME {
		return "", fmt.Errorf("dnswire: CNAMETarget on %s record", rr.Type)
	}
	name, _, err := readName(rr.Data, 0)
	return name, err
}
