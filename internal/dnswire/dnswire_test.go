package dnswire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	t.Parallel()
	q := NewQuery(0x1234, "www.example.com", TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Errorf("header = %+v", got)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "www.example.com." || got.Questions[0].Type != TypeA {
		t.Errorf("question = %+v", got.Questions[0])
	}
}

func TestResponseRoundTrip(t *testing.T) {
	t.Parallel()
	q := NewQuery(7, "host.example.org", TypeA)
	r := q.Reply()
	r.Authoritative = true
	r.Answers = append(r.Answers, A("host.example.org", 300, [4]byte{192, 0, 2, 1}))
	r.Answers = append(r.Answers, TXT("host.example.org", 60, "hello world"))
	r.Authorities = append(r.Authorities, CNAME("alias.example.org", 30, "host.example.org"))

	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.Authoritative || got.RCode != RCodeNoError {
		t.Errorf("header = %+v", got)
	}
	if len(got.Answers) != 2 || len(got.Authorities) != 1 {
		t.Fatalf("sections: %d answers, %d authorities", len(got.Answers), len(got.Authorities))
	}
	if !bytes.Equal(got.Answers[0].Data, []byte{192, 0, 2, 1}) {
		t.Errorf("A rdata = %v", got.Answers[0].Data)
	}
	txt, err := got.Answers[1].TXT()
	if err != nil || txt != "hello world" {
		t.Errorf("TXT = %q, %v", txt, err)
	}
	target, err := CNAMETarget(got.Authorities[0])
	if err != nil || target != "host.example.org." {
		t.Errorf("CNAME target = %q, %v", target, err)
	}
}

func TestNameCompressionShrinksRepeatedNames(t *testing.T) {
	t.Parallel()
	r := &Message{ID: 1, Response: true}
	name := "very.long.subdomain.of.example.com"
	r.Questions = append(r.Questions, Question{Name: name, Type: TypeA, Class: ClassIN})
	for i := 0; i < 4; i++ {
		r.Answers = append(r.Answers, A(name, 300, [4]byte{1, 2, 3, byte(i)}))
	}
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Without compression each A record repeats the 36-byte name; with
	// pointers each answer's name is 2 bytes.
	uncompressedEstimate := 12 + (len(name) + 2 + 4) + 4*(len(name)+2+10+4)
	if len(wire) >= uncompressedEstimate {
		t.Errorf("wire %d bytes, compression ineffective (uncompressed ~%d)", len(wire), uncompressedEstimate)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got.Answers {
		if a.Name != CanonicalName(name) {
			t.Errorf("answer name = %q", a.Name)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"Example.COM":  "example.com.",
		"example.com.": "example.com.",
		"":             ".",
		".":            ".",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRootNameRoundTrip(t *testing.T) {
	t.Parallel()
	q := NewQuery(1, ".", TypeNS)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "." {
		t.Errorf("root name = %q", got.Questions[0].Name)
	}
}

func TestDecodeErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		wire []byte
	}{
		{"empty", nil},
		{"short header", make([]byte, 11)},
		{"question count lies", append(make([]byte, 4), []byte{0, 9, 0, 0, 0, 0, 0, 0}...)},
	}
	for _, c := range cases {
		if _, err := Decode(c.wire); err == nil {
			t.Errorf("%s: decoded successfully", c.name)
		}
	}
}

func TestDecodePointerLoopRejected(t *testing.T) {
	t.Parallel()
	// Header + question whose name is a pointer to itself.
	wire := make([]byte, 12)
	wire[5] = 1 // QDCOUNT=1
	// name at offset 12: pointer to offset 12 (self)
	wire = append(wire, 0xC0, 12, 0, 1, 0, 1)
	if _, err := Decode(wire); err == nil {
		t.Fatal("self-referential pointer accepted")
	}
}

func TestEncodeRejectsBadLabels(t *testing.T) {
	t.Parallel()
	long := strings.Repeat("a", 64)
	q := NewQuery(1, long+".example.com", TypeA)
	if _, err := q.Encode(); err == nil {
		t.Error("63+ byte label encoded")
	}
	q = NewQuery(1, strings.Repeat("abcdefgh.", 32)+"com", TypeA)
	if _, err := q.Encode(); err == nil {
		t.Error("255+ byte name encoded")
	}
}

func TestTXTDataRoundTripLong(t *testing.T) {
	t.Parallel()
	long := strings.Repeat("x", 700) // forces 3 character-strings
	rr := RR{Type: TypeTXT, Data: TXTData(long)}
	got, err := rr.TXT()
	if err != nil || got != long {
		t.Errorf("long TXT round trip failed: len=%d err=%v", len(got), err)
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(id uint16, resp, aa, tc, rd, ra bool, opcode, rcode uint8) bool {
		m := &Message{
			ID: id, Response: resp, Authoritative: aa, Truncated: tc,
			RecursionDesired: rd, RecursionAvailable: ra,
			Opcode: opcode & 0xF, RCode: RCode(rcode & 0xF),
			Questions: []Question{{Name: "x.test", Type: TypeA, Class: ClassIN}},
		}
		wire, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.ID == m.ID && got.Response == m.Response &&
			got.Authoritative == m.Authoritative && got.Truncated == m.Truncated &&
			got.RecursionDesired == m.RecursionDesired &&
			got.RecursionAvailable == m.RecursionAvailable &&
			got.Opcode == m.Opcode && got.RCode == m.RCode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Decode(Encode(m)) preserves names for arbitrary label
// shapes built from a safe alphabet.
func TestNameRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(raw []byte) bool {
		// Build a name of 1-4 labels, each 1-20 chars from [a-z0-9-].
		const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
		if len(raw) == 0 {
			return true
		}
		var labels []string
		n := int(raw[0])%4 + 1
		idx := 1
		for i := 0; i < n; i++ {
			l := 1
			if idx < len(raw) {
				l = int(raw[idx])%20 + 1
				idx++
			}
			var sb strings.Builder
			for j := 0; j < l; j++ {
				ch := alphabet[0]
				if idx < len(raw) {
					ch = alphabet[int(raw[idx])%len(alphabet)]
					idx++
				}
				sb.WriteByte(ch)
			}
			labels = append(labels, sb.String())
		}
		name := strings.Join(labels, ".")
		q := NewQuery(9, name, TypeA)
		wire, err := q.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.Questions[0].Name == CanonicalName(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	r := NewQuery(1, "www.example.com", TypeA).Reply()
	r.Answers = append(r.Answers, A("www.example.com", 300, [4]byte{1, 2, 3, 4}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := r.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAAAAAndNSBuilders(t *testing.T) {
	t.Parallel()
	var v6 [16]byte
	v6[15] = 1
	rr := AAAA("host.example", 300, v6)
	if rr.Type != TypeAAAA || len(rr.Data) != 16 || rr.Data[15] != 1 {
		t.Errorf("AAAA = %+v", rr)
	}
	ns := NS("example.com", 300, "ns1.example.com")
	if ns.Type != TypeNS {
		t.Errorf("NS type = %v", ns.Type)
	}
	name, _, err := readName(ns.Data, 0)
	if err != nil || name != "ns1.example.com." {
		t.Errorf("NS target = %q, %v", name, err)
	}
	// Round trip through a message.
	m := NewQuery(1, "example.com", TypeNS).Reply()
	m.Answers = append(m.Answers, ns, rr)
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil || len(got.Answers) != 2 {
		t.Fatalf("decode: %v", err)
	}
}
