package dnswire

import "decoupling/internal/schema"

// Schema message names shared by every DNS-shaped scenario (plain DNS,
// ODNS, ODoH): the declarations below describe this package's wire
// Message as the taint analysis sees it at each vantage.
const (
	// SchemaQuery is a plaintext DNS query as sent by the user: the
	// QNAME is the user's sensitive query, the source address the
	// user's identity.
	SchemaQuery = "dns_query"
	// SchemaRecursiveQuery is a plaintext query re-originated by an
	// infrastructure resolver: the same sensitive QNAME, but the source
	// address is the resolver's — routing metadata, not the user.
	SchemaRecursiveQuery = "dns_recursive_query"
	// SchemaResponse is the matching plaintext response.
	SchemaResponse = "dns_response"
)

// SchemaMessages declares the plaintext DNS wire messages. Scenarios
// that carry plain DNS (the baseline resolver path, the recursive leg
// behind an oblivious target, a fail-open fallback) splice these into
// their declarations so every vantage that parses a dnswire.Message
// accounts for the same fields.
func SchemaMessages() []schema.Message {
	return []schema.Message{
		{
			Name: SchemaQuery,
			Doc:  "plaintext dnswire.Message query",
			Fields: []schema.Field{
				{Name: "src_addr", Label: schema.Identity},
				{Name: "qname", Label: schema.Query},
				{Name: "qtype", Label: schema.Routing},
			},
		},
		{
			Name: SchemaRecursiveQuery,
			Doc:  "plaintext dnswire.Message query re-originated by a resolver",
			Fields: []schema.Field{
				{Name: "src_addr", Label: schema.Routing},
				{Name: "qname", Label: schema.Query},
				{Name: "qtype", Label: schema.Routing},
			},
		},
		{
			Name: SchemaResponse,
			Doc:  "plaintext dnswire.Message response",
			Fields: []schema.Field{
				{Name: "answer", Label: schema.Content},
			},
		},
	}
}
