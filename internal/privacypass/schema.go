package privacypass

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §3.2.1 token protocol. The decoupling is
// visible in the declarations alone: the issuance flow carries the
// client's account next to a blinded token (opaque — the issuer signs
// it without reading it), the redemption flow carries the request next
// to an unblinded one-time token that works as a pseudonym (routing),
// and the two flows share no linkage handle.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "privacypass",
		System:  "Privacy Pass",
		Section: "3.2.1",
		Doc:     "Privacy Pass: blind-signed tokens transfer trust from an identified issuance to an anonymous redemption with no shared join key.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "pp_token_request",
				Doc:  "authenticated issuance request",
				Fields: []schema.Field{
					{Name: "client_account", Label: schema.Identity},
					{Name: "blinded_token", Label: schema.Opaque},
				},
			},
			{
				Name: "pp_token_response",
				Fields: []schema.Field{
					{Name: "blind_sig", Label: schema.Opaque},
				},
			},
			{
				Name: "pp_redemption",
				Doc:  "anonymous request spending one token",
				Fields: []schema.Field{
					// The unblinded token is a one-shot pseudonym: the origin
					// verifies it and learns only "some issued client".
					{Name: "token", Label: schema.Routing},
					{Name: "resource", Label: schema.Query},
				},
			},
			{
				Name: "pp_response",
				Fields: []schema.Field{
					{Name: "body", Label: schema.Content},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{
					{Message: "pp_token_request", Fields: []string{"client_account"}},
					{Message: "pp_redemption", Fields: []string{"token", "resource"}},
				},
				Receives: []schema.Use{
					{Message: "pp_token_response"},
					{Message: "pp_response", Fields: []string{"body"}},
				},
			},
			{
				Name: IssuerName,
				Receives: []schema.Use{
					// The blinded token is processed (signed) but never read.
					{Message: "pp_token_request", Fields: []string{"client_account"}},
				},
				Sends: []schema.Use{{Message: "pp_token_response"}},
			},
			{
				Name: OriginName,
				Receives: []schema.Use{
					{Message: "pp_redemption", Fields: []string{"token", "resource"}},
				},
				Sends: []schema.Use{{Message: "pp_response", Fields: []string{"body"}}},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: IssuerName, Message: "pp_token_request", Handle: "issuance"},
			{From: IssuerName, To: "Client", Message: "pp_token_response", Handle: "issuance"},
			{From: "Client", To: OriginName, Message: "pp_redemption", Handle: "redemption"},
			{From: OriginName, To: "Client", Message: "pp_response", Handle: "redemption"},
		},
	}
}
