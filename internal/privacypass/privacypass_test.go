package privacypass

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/dcrypto/token"
	"decoupling/internal/ledger"
)

const testKeyBits = 1024

func setup(t testing.TB, lg *ledger.Ledger) (*Issuer, *Origin, *Client) {
	t.Helper()
	is, err := NewIssuer("issuer.example", testKeyBits, lg)
	if err != nil {
		t.Fatal(err)
	}
	is.Enroll("client-1")
	origin := NewOrigin("origin.example", "issuer.example", is.PublicKey(), lg)
	return is, origin, NewClient("client-1", is.PublicKey())
}

func TestIssueAndRedeem(t *testing.T) {
	is, origin, client := setup(t, nil)
	ch, err := origin.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	tok, err := client.ObtainTokenDirect(ch, is)
	if err != nil {
		t.Fatal(err)
	}
	if err := origin.Redeem("exit-7", tok, "/private/resource"); err != nil {
		t.Fatal(err)
	}
	if origin.Served() != 1 {
		t.Errorf("served = %d", origin.Served())
	}
}

func TestDoubleRedeemRejected(t *testing.T) {
	is, origin, client := setup(t, nil)
	ch, _ := origin.Challenge()
	tok, err := client.ObtainTokenDirect(ch, is)
	if err != nil {
		t.Fatal(err)
	}
	if err := origin.Redeem("exit-1", tok, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := origin.Redeem("exit-2", tok, "/b"); err != token.ErrSpent {
		t.Errorf("second redeem error = %v", err)
	}
}

func TestUnenrolledClientRejected(t *testing.T) {
	is, origin, _ := setup(t, nil)
	outsider := NewClient("stranger", is.PublicKey())
	ch, _ := origin.Challenge()
	if _, err := outsider.ObtainTokenDirect(ch, is); err != ErrNotAuthenticated {
		t.Errorf("unenrolled issuance error = %v", err)
	}
}

func TestRateLimit(t *testing.T) {
	is, origin, client := setup(t, nil)
	is.PerClientLimit = 2
	for i := 0; i < 2; i++ {
		ch, _ := origin.Challenge()
		if _, err := client.ObtainTokenDirect(ch, is); err != nil {
			t.Fatal(err)
		}
	}
	ch, _ := origin.Challenge()
	if _, err := client.ObtainTokenDirect(ch, is); err != ErrRateLimited {
		t.Errorf("over-limit issuance error = %v", err)
	}
	if is.Issued("client-1") != 2 {
		t.Errorf("issued = %d", is.Issued("client-1"))
	}
}

func TestForeignChallengeRejected(t *testing.T) {
	is, origin, client := setup(t, nil)
	other := NewOrigin("other.example", "issuer.example", is.PublicKey(), nil)
	foreignCh, _ := other.Challenge()
	tok, err := client.ObtainTokenDirect(foreignCh, is)
	if err != nil {
		t.Fatal(err)
	}
	if err := origin.Redeem("exit", tok, "/x"); err != ErrWrongChallenge {
		t.Errorf("foreign challenge error = %v", err)
	}
}

func TestTamperedTokenRejected(t *testing.T) {
	is, origin, client := setup(t, nil)
	ch, _ := origin.Challenge()
	tok, err := client.ObtainTokenDirect(ch, is)
	if err != nil {
		t.Fatal(err)
	}
	tok.Signature[0] ^= 1
	if err := origin.Redeem("exit", tok, "/x"); err != ErrBadToken {
		t.Errorf("tampered token error = %v", err)
	}
}

// TestDecouplingTable reproduces the paper's §3.2.1 table from an
// instrumented run with multiple clients.
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	is, err := NewIssuer("issuer.example", testKeyBits, lg)
	if err != nil {
		t.Fatal(err)
	}
	origin := NewOrigin("origin.example", "issuer.example", is.PublicKey(), lg)

	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("client-%d", i)
		exit := fmt.Sprintf("exit-%d", i%2)
		resource := fmt.Sprintf("/private/page-%d", i)
		cls.RegisterIdentity(id, id, "", core.Sensitive)
		cls.RegisterIdentity(exit, "", "", core.NonSensitive)
		cls.RegisterData(resource, id, "", core.Sensitive)
		is.Enroll(id)
		client := NewClient(id, is.PublicKey())
		ch, _ := origin.Challenge()
		tok, err := client.ObtainTokenDirect(ch, is)
		if err != nil {
			t.Fatal(err)
		}
		if err := origin.Redeem(exit, tok, resource); err != nil {
			t.Fatal(err)
		}
	}

	expected := core.PrivacyPass()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled || v.Degree != 0 {
		t.Errorf("measured verdict = %s, want decoupled with degree 0", v)
	}
}

// TestIssuerOriginCollusionCannotLink: the unlinkability claim under the
// strongest coalition.
func TestIssuerOriginCollusionCannotLink(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	is, err := NewIssuer("issuer.example", testKeyBits, lg)
	if err != nil {
		t.Fatal(err)
	}
	origin := NewOrigin("origin.example", "issuer.example", is.PublicKey(), lg)
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("client-%d", i)
		resource := fmt.Sprintf("/r/%d", i)
		cls.RegisterIdentity(id, id, "", core.Sensitive)
		cls.RegisterData(resource, id, "", core.Sensitive)
		is.Enroll(id)
		ch, _ := origin.Challenge()
		tok, err := NewClient(id, is.PublicKey()).ObtainTokenDirect(ch, is)
		if err != nil {
			t.Fatal(err)
		}
		if err := origin.Redeem("anon", tok, resource); err != nil {
			t.Fatal(err)
		}
	}
	res := adversary.LinkSubjects(lg.Observations(), []string{IssuerName, OriginName})
	if rate := adversary.LinkageRate(res); rate != 0 {
		t.Errorf("issuer+origin collusion linked %.0f%% of clients", rate*100)
	}
}

// TestHTTPFlow exercises the full challenge -> issue -> redeem loop over
// real loopback HTTP servers.
func TestHTTPFlow(t *testing.T) {
	is, origin, client := setup(t, nil)
	issuerSrv := httptest.NewServer(IssuerHandler(is))
	defer issuerSrv.Close()
	originSrv := httptest.NewServer(OriginHandler(origin))
	defer originSrv.Close()

	// 1. Unauthenticated request gets a challenge.
	resp, err := http.Get(originSrv.URL + "/private/doc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
	wwwAuth := resp.Header.Get("WWW-Authenticate")
	const prefix = "PrivateToken challenge="
	if !strings.HasPrefix(wwwAuth, prefix) {
		t.Fatalf("WWW-Authenticate = %q", wwwAuth)
	}
	chRaw, err := base64.StdEncoding.DecodeString(strings.TrimPrefix(wwwAuth, prefix))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := token.UnmarshalChallenge(chRaw)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Obtain a token from the issuer over HTTP.
	tok, err := client.ObtainToken(ch, HTTPIssue(issuerSrv.Client(), issuerSrv.URL))
	if err != nil {
		t.Fatal(err)
	}

	// 3. Redeem it.
	req, _ := http.NewRequest(http.MethodGet, originSrv.URL+"/private/doc", nil)
	req.Header.Set("Authorization", base64.StdEncoding.EncodeToString(tok.Marshal()))
	resp2, err := originSrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("redeem status = %d", resp2.StatusCode)
	}
}

func TestHTTPIssuerRejectsUnknownClient(t *testing.T) {
	is, origin, _ := setup(t, nil)
	issuerSrv := httptest.NewServer(IssuerHandler(is))
	defer issuerSrv.Close()
	ch, _ := origin.Challenge()
	outsider := NewClient("stranger", is.PublicKey())
	_, err := outsider.ObtainToken(ch, HTTPIssue(issuerSrv.Client(), issuerSrv.URL))
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Errorf("err = %v, want 401", err)
	}
}

func BenchmarkTokenRoundTrip(b *testing.B) {
	is, origin, client := setup(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := origin.Challenge()
		if err != nil {
			b.Fatal(err)
		}
		tok, err := client.ObtainTokenDirect(ch, is)
		if err != nil {
			b.Fatal(err)
		}
		if err := origin.Redeem("exit", tok, "/r"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIssuerHandlerErrorPaths(t *testing.T) {
	is, _, _ := setup(t, nil)
	srv := httptest.NewServer(IssuerHandler(is))
	defer srv.Close()

	// Wrong method.
	resp, err := http.Get(srv.URL + "/issue")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}

	// Bad base64 body from an enrolled client.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/issue", strings.NewReader("!!!not-base64!!!"))
	req.Header.Set("Authorization", "client-1")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-encoding status = %d", resp.StatusCode)
	}

	// Rate limit surfaces as 429.
	is.PerClientLimit = 1
	c := NewClient("client-1", is.PublicKey())
	o := NewOrigin("o", "issuer.example", is.PublicKey(), nil)
	ch, _ := o.Challenge()
	if _, err := c.ObtainToken(ch, HTTPIssue(srv.Client(), srv.URL)); err != nil {
		t.Fatal(err)
	}
	ch2, _ := o.Challenge()
	_, err = c.ObtainToken(ch2, HTTPIssue(srv.Client(), srv.URL))
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("over-limit err = %v, want 429", err)
	}
}

func TestOriginHandlerErrorPaths(t *testing.T) {
	is, origin, client := setup(t, nil)
	srv := httptest.NewServer(OriginHandler(origin))
	defer srv.Close()

	// Garbage token encoding.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/r", nil)
	req.Header.Set("Authorization", "!!!")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad encoding status = %d", resp.StatusCode)
	}

	// Structurally invalid token bytes.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/r", nil)
	req.Header.Set("Authorization", base64.StdEncoding.EncodeToString([]byte("short")))
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad token status = %d", resp.StatusCode)
	}

	// A spent token redeems 403.
	ch, _ := origin.Challenge()
	tok, err := client.ObtainTokenDirect(ch, is)
	if err != nil {
		t.Fatal(err)
	}
	if err := origin.Redeem("first", tok, "/r"); err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/r", nil)
	req.Header.Set("Authorization", base64.StdEncoding.EncodeToString(tok.Marshal()))
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("double-spend status = %d", resp.StatusCode)
	}
}
