// Package privacypass implements the Privacy Pass protocol of the
// paper's §3.2.1 (Figure 2): a client that has proved legitimacy to a
// trusted Issuer receives unlinkable tokens it can redeem at an Origin
// in place of privacy-unfriendly challenges (CAPTCHAs, login prompts,
// tracking cookies).
//
// Tokens here are the publicly verifiable type: blind RSA signatures
// over the token envelope in internal/dcrypto/token. The decoupling is
// exactly the paper's: the Issuer authenticates the client (▲) but
// signs a blinded message (⊙) and never learns the origin; the Origin
// sees the request (●) and a token that is cryptographically unlinkable
// to any issuance (△).
//
// Issuer and Origin are plain types with optional net/http adapters so
// the same code runs in-process for the experiments and over real
// loopback HTTP in examples/quickstart flows.
package privacypass

import (
	"crypto/rsa"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"decoupling/internal/dcrypto/blindrsa"
	"decoupling/internal/dcrypto/token"
	"decoupling/internal/ledger"
)

// TokenTypeBlindRSA is the token type code for publicly verifiable
// (blind RSA) tokens, mirroring the Privacy Pass registry value.
const TokenTypeBlindRSA uint16 = 2

// Entity names used in ledger observations, matching the paper table.
const (
	IssuerName = "Issuer"
	OriginName = "Origin"
)

// Errors returned by the protocol.
var (
	ErrNotAuthenticated = errors.New("privacypass: client not authenticated to issuer")
	ErrRateLimited      = errors.New("privacypass: issuance rate limit exceeded")
	ErrBadToken         = errors.New("privacypass: token verification failed")
	ErrWrongChallenge   = errors.New("privacypass: token bound to a different challenge")
)

// Issuer authenticates clients and blind-signs tokens. It learns who
// asks but not what the tokens are for.
type Issuer struct {
	Name string
	key  *rsa.PrivateKey
	lg   *ledger.Ledger

	// PerClientLimit caps tokens issued per authenticated client; 0
	// means unlimited. Rate limiting is the issuer's anti-abuse lever —
	// it needs client identity for this, which is why the issuer is ▲.
	PerClientLimit int

	mu       sync.Mutex
	accounts map[string]bool
	issued   map[string]int
	total    int
}

// NewIssuer creates an issuer with a fresh blind-signing key.
func NewIssuer(name string, bits int, lg *ledger.Ledger) (*Issuer, error) {
	key, err := blindrsa.GenerateKey(bits)
	if err != nil {
		return nil, err
	}
	return &Issuer{
		Name:     name,
		key:      key,
		lg:       lg,
		accounts: map[string]bool{},
		issued:   map[string]int{},
	}, nil
}

// PublicKey returns the token verification key origins trust.
func (is *Issuer) PublicKey() *rsa.PublicKey { return &is.key.PublicKey }

// Enroll registers a client as legitimate (the paper's "clients that are
// able to successfully prove that they are legitimate").
func (is *Issuer) Enroll(clientID string) {
	is.mu.Lock()
	defer is.mu.Unlock()
	is.accounts[clientID] = true
}

// Issue blind-signs one blinded token request for an authenticated
// client.
func (is *Issuer) Issue(clientID string, blinded []byte) ([]byte, error) {
	is.mu.Lock()
	if !is.accounts[clientID] {
		is.mu.Unlock()
		return nil, ErrNotAuthenticated
	}
	if is.PerClientLimit > 0 && is.issued[clientID] >= is.PerClientLimit {
		is.mu.Unlock()
		return nil, ErrRateLimited
	}
	is.issued[clientID]++
	is.total++
	n := is.total
	is.mu.Unlock()

	if is.lg != nil {
		h := fmt.Sprintf("issuance-%d", n)
		is.lg.SawIdentity(IssuerName, clientID, h)
		is.lg.SawData(IssuerName, "blinded:"+base64.StdEncoding.EncodeToString(blinded[:8]), h)
	}
	return blindrsa.BlindSign(is.key, blinded)
}

// Issued returns the number of tokens issued to a client.
func (is *Issuer) Issued(clientID string) int {
	is.mu.Lock()
	defer is.mu.Unlock()
	return is.issued[clientID]
}

// Origin challenges clients and accepts tokens in lieu of
// identification. It learns requests but only anonymous presenters.
type Origin struct {
	Name       string
	IssuerName string
	issuerKey  *rsa.PublicKey
	lg         *ledger.Ledger
	spent      *token.SpendCache

	mu         sync.Mutex
	challenges map[[32]byte]bool
	served     int
}

// NewOrigin creates an origin trusting the given issuer key.
func NewOrigin(name, issuerName string, issuerKey *rsa.PublicKey, lg *ledger.Ledger) *Origin {
	return &Origin{
		Name:       name,
		IssuerName: issuerName,
		issuerKey:  issuerKey,
		lg:         lg,
		spent:      token.NewSpendCache(),
		challenges: map[[32]byte]bool{},
	}
}

// Challenge mints a fresh token challenge for this origin.
func (o *Origin) Challenge() (*token.Challenge, error) {
	c, err := token.NewChallenge(TokenTypeBlindRSA, o.IssuerName, o.Name)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.challenges[c.Digest()] = true
	o.mu.Unlock()
	return c, nil
}

// Redeem validates a token presented by an anonymous client (identified
// to the origin only by presenterAddr, e.g. an exit or relay address)
// requesting resource. On success the resource is served.
func (o *Origin) Redeem(presenterAddr string, tok *token.Token, resource string) error {
	o.mu.Lock()
	known := o.challenges[tok.ChallengeDigest]
	o.mu.Unlock()
	if !known {
		return ErrWrongChallenge
	}
	if err := blindrsa.Verify(o.issuerKey, tok.SignedMessage(), tok.Signature); err != nil {
		return ErrBadToken
	}
	if err := o.spent.Redeem(tok); err != nil {
		return err
	}
	if o.lg != nil {
		h := "redemption-" + base64.StdEncoding.EncodeToString(tok.Nonce[:8])
		o.lg.SawIdentity(OriginName, presenterAddr, h)
		o.lg.SawData(OriginName, resource, h)
	}
	o.mu.Lock()
	o.served++
	o.mu.Unlock()
	return nil
}

// Served reports how many tokened requests the origin has accepted.
func (o *Origin) Served() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.served
}

// Client obtains tokens from an issuer and redeems them at origins.
type Client struct {
	ID        string
	issuerKey *rsa.PublicKey
}

// NewClient creates a client that trusts issuerKey for finalization.
func NewClient(id string, issuerKey *rsa.PublicKey) *Client {
	return &Client{ID: id, issuerKey: issuerKey}
}

// issueFunc abstracts the transport to the issuer (direct call or HTTP).
type issueFunc func(clientID string, blinded []byte) ([]byte, error)

// ObtainToken runs the blind issuance round trip for a challenge.
func (c *Client) ObtainToken(ch *token.Challenge, issue issueFunc) (*token.Token, error) {
	t, err := token.NewToken(ch)
	if err != nil {
		return nil, err
	}
	blinded, st, err := blindrsa.Blind(c.issuerKey, t.SignedMessage())
	if err != nil {
		return nil, err
	}
	blindSig, err := issue(c.ID, blinded)
	if err != nil {
		return nil, err
	}
	sig, err := blindrsa.Finalize(c.issuerKey, st, blindSig)
	if err != nil {
		return nil, err
	}
	t.Signature = sig
	return t, nil
}

// ObtainTokenDirect is ObtainToken over a direct issuer reference.
func (c *Client) ObtainTokenDirect(ch *token.Challenge, is *Issuer) (*token.Token, error) {
	return c.ObtainToken(ch, is.Issue)
}

// --- HTTP adapters -------------------------------------------------

// IssuerHandler exposes the issuer at POST /issue. The client identity
// comes from the Authorization header (the issuer's authentication
// step); the body is the base64 blinded token request.
func IssuerHandler(is *Issuer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		clientID := r.Header.Get("Authorization")
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		blinded, err := base64.StdEncoding.DecodeString(string(body))
		if err != nil {
			http.Error(w, "bad encoding", http.StatusBadRequest)
			return
		}
		sig, err := is.Issue(clientID, blinded)
		switch {
		case errors.Is(err, ErrNotAuthenticated):
			http.Error(w, err.Error(), http.StatusUnauthorized)
			return
		case errors.Is(err, ErrRateLimited):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, base64.StdEncoding.EncodeToString(sig))
	})
}

// HTTPIssue returns an issueFunc that talks to an IssuerHandler at
// baseURL using client.
func HTTPIssue(client *http.Client, baseURL string) issueFunc {
	return func(clientID string, blinded []byte) ([]byte, error) {
		req, err := http.NewRequest(http.MethodPost, baseURL+"/issue",
			strings.NewReader(base64.StdEncoding.EncodeToString(blinded)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Authorization", clientID)
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("privacypass: issuer returned %s: %s", resp.Status, body)
		}
		return base64.StdEncoding.DecodeString(string(body))
	}
}

// OriginHandler exposes the origin: GET /resource without a token
// returns 401 with a base64 challenge in WWW-Authenticate; repeating
// the request with an Authorization: PrivateToken header serves it.
func OriginHandler(o *Origin) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tokHeader := r.Header.Get("Authorization")
		if tokHeader == "" {
			ch, err := o.Challenge()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("WWW-Authenticate",
				"PrivateToken challenge="+base64.StdEncoding.EncodeToString(ch.Marshal()))
			http.Error(w, "token required", http.StatusUnauthorized)
			return
		}
		raw, err := base64.StdEncoding.DecodeString(tokHeader)
		if err != nil {
			http.Error(w, "bad token encoding", http.StatusBadRequest)
			return
		}
		tok, err := token.Unmarshal(raw)
		if err != nil {
			http.Error(w, "bad token", http.StatusBadRequest)
			return
		}
		if err := o.Redeem(r.RemoteAddr, tok, r.URL.Path); err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		fmt.Fprintf(w, "content of %s", r.URL.Path)
	})
}
