// Package schema is the static counterpart of the measurement ledger:
// a declarative message-schema layer from which each entity's knowledge
// tuple is derived with no network, no ledger, and no run.
//
// Every protocol message type declares its fields with one of five
// taint labels; every handler role declares which messages it sends and
// receives and which fields it reads (everything else is forwarded
// opaque); flows wire roles into the scenario topology. From those
// declarations alone the engine in derive.go propagates labels and
// produces each role's *static* knowledge tuple — an upper bound that
// the runtime-measured tuple must stay inside (`static ⊇ measured`,
// checked by check.go for every experiment). A handler that reads a
// field its schema declares opaque is convicted by the validator before
// anything runs (validate.go).
//
// The label lattice maps onto the paper's component notation:
//
//	identity → (Identity, Sensitive)        ▲   who the user is
//	routing  → (Identity, NonSensitive)     △   addresses, pseudonyms,
//	                                            infrastructure metadata
//	query    → (Data, Sensitive)            ●   what the user asks for
//	content  → (Data, Sensitive)            ●   what the user sends/reads
//	opaque   → nothing                          ciphertext and blinded
//	                                            values; conveys nothing
//
// query/content fields may additionally be marked Partial (the paper's
// ⊙/● — e.g. MPR's second relay learning the origin FQDN), and opaque
// fields may Encapsulate an inner message that only declared opener
// roles (key holders) can read into.
package schema

import (
	"fmt"

	"decoupling/internal/core"
)

// Label is the taint class of one declared message field.
type Label int

const (
	// Opaque marks ciphertext, blinded values, and signatures: bytes a
	// role may carry, sign, or forward but that convey nothing. Reading
	// an Opaque field is a schema violation unless the field
	// encapsulates an inner message and the reader is a declared opener.
	Opaque Label = iota
	// Routing marks addressing and infrastructure metadata: network
	// addresses of intermediaries, pseudonymous session ids, target
	// names. Maps to a non-sensitive identity component (△).
	Routing
	// Identity marks a sensitive user identity (▲): the user's own
	// network address, account name, or IMSI.
	Identity
	// Query marks sensitive user data of the "what they ask for" kind
	// (●): DNS names, URLs, resource paths.
	Query
	// Content marks sensitive user data of the "what they send or read"
	// kind (●): message bodies, location events, TLS payloads.
	Content
)

var labelNames = map[Label]string{
	Opaque:   "opaque",
	Routing:  "routing",
	Identity: "identity",
	Query:    "query",
	Content:  "content",
}

// String returns the declaration-syntax name of the label.
func (l Label) String() string {
	if s, ok := labelNames[l]; ok {
		return s
	}
	return fmt.Sprintf("Label(%d)", int(l))
}

// ParseLabel is the inverse of String.
func ParseLabel(s string) (Label, error) {
	for l, name := range labelNames {
		if name == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("schema: unknown label %q", s)
}

// Axis names one knowledge-tuple axis: the (kind, label) pair tuples
// are merged over (e.g. PGPP's human identity axis is {Identity, "H"}).
type Axis struct {
	Kind  core.Kind `json:"kind"`
	Label string    `json:"label,omitempty"`
}

// String renders "identity", "identity_H", "data", ...
func (a Axis) String() string {
	if a.Label == "" {
		return a.Kind.String()
	}
	return a.Kind.String() + "_" + a.Label
}

// Field is one declared field of a protocol message.
type Field struct {
	Name  string `json:"name"`
	Label Label  `json:"label"`
	// Axis assigns the field to a labeled tuple axis (e.g. "H"/"N" in
	// PGPP); empty is the default unlabeled axis.
	Axis string `json:"axis,omitempty"`
	// Partial downgrades a Query/Content field to the paper's ⊙/●:
	// some sensitive detail leaks without the full sensitive item.
	Partial bool `json:"partial,omitempty"`
	// Encapsulates names an inner message carried encrypted inside this
	// field (Opaque fields only). Only roles listed in Openers hold the
	// key; a declared read by anyone else is a static violation.
	Encapsulates string `json:"encapsulates,omitempty"`
	// Openers lists the roles holding the decryption key for an
	// encapsulating field.
	Openers []string `json:"openers,omitempty"`
}

// Component maps the field's label to the tuple component a reader
// learns; ok is false for Opaque fields (reading ciphertext — even
// legitimately, to open it — conveys nothing by itself).
func (f Field) Component() (core.Component, bool) {
	switch f.Label {
	case Identity:
		return core.Component{Kind: core.Identity, Label: f.Axis, Level: core.Sensitive}, true
	case Routing:
		return core.Component{Kind: core.Identity, Label: f.Axis, Level: core.NonSensitive}, true
	case Query, Content:
		lvl := core.Sensitive
		if f.Partial {
			lvl = core.Partial
		}
		return core.Component{Kind: core.Data, Label: f.Axis, Level: lvl}, true
	default:
		return core.Component{}, false
	}
}

// Message is one declared protocol message type.
type Message struct {
	Name   string  `json:"name"`
	Doc    string  `json:"doc,omitempty"`
	Fields []Field `json:"fields"`
}

// Field returns the named field, or nil.
func (m *Message) Field(name string) *Field {
	for i := range m.Fields {
		if m.Fields[i].Name == name {
			return &m.Fields[i]
		}
	}
	return nil
}

// Use declares one role's relationship to one message type: on a
// receive, Fields lists what the role reads in plaintext (all other
// fields are forwarded or held opaque); on a send, Fields lists what
// the role originates from plaintext it knows (fields it merely copies
// from an incoming message are not listed).
type Use struct {
	Message string   `json:"message"`
	Fields  []string `json:"fields,omitempty"`
}

// Role is one handler in the scenario: the user, a service, or an
// infrastructure actor.
type Role struct {
	Name string `json:"name"`
	User bool   `json:"user,omitempty"`
	// Knows is the modeled self-knowledge of a user role (the paper
	// never derives the user's own tuple). Non-user roles must leave it
	// empty: their knowledge is derived, never asserted.
	Knows core.Tuple `json:"knows,omitempty"`
	// Sends/Receives declare every message the role originates or
	// accepts. Flows are validated against them: each flow's sender
	// must declare a Sends use and its receiver a Receives use.
	Sends    []Use `json:"sends,omitempty"`
	Receives []Use `json:"receives,omitempty"`
	// Handles lists extra linkage-handle classes the role holds beyond
	// those of its incident flows (e.g. a session cookie only it sees).
	Handles []string `json:"handles,omitempty"`
}

func (r *Role) use(uses []Use, message string) *Use {
	for i := range uses {
		if uses[i].Message == message {
			return &uses[i]
		}
	}
	return nil
}

// Flow is one topology edge: From sends Message to To. Handle names
// the linkage-handle class both ends observe (the connection, the
// ciphertext bytes); empty means the boundary is blind — re-encrypted
// or anonymized such that the two ends share no join key.
type Flow struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Message string `json:"message"`
	Handle  string `json:"handle,omitempty"`
}

// Waiver documents one declared-but-unexercised knowledge axis: the
// static derivation licenses it, no current experiment measures it,
// and the gap is understood rather than a missing test.
type Waiver struct {
	Role   string `json:"role"`
	Axis   Axis   `json:"axis"`
	Reason string `json:"reason"`
}

// Scenario is one complete declared system: messages, roles, flows,
// and the tuple axes its table is published over.
type Scenario struct {
	Name string `json:"name"`
	// System is the matching core.System name (and Section the paper
	// section), for report headers and measured-system cross-checks.
	System  string `json:"system,omitempty"`
	Section string `json:"section,omitempty"`
	Doc     string `json:"doc,omitempty"`
	// Axes lists the published table's tuple axes in render order;
	// every derived tuple carries exactly these axes (plus any extra
	// axis the declarations license, appended sorted).
	Axes     []Axis    `json:"axes"`
	Messages []Message `json:"messages"`
	Roles    []Role    `json:"roles"`
	Flows    []Flow    `json:"flows"`
	// SharedSecrets mirrors core.SharedSecret: threshold structures
	// (PPM's input shares) that are opaque at each holder but yield a
	// component when every holder colludes.
	SharedSecrets []core.SharedSecret `json:"shared_secrets,omitempty"`
	// Waivers documents known static ⊋ measured gaps.
	Waivers []Waiver `json:"waivers,omitempty"`
}

// Message returns the named message, or nil.
func (s *Scenario) Message(name string) *Message {
	for i := range s.Messages {
		if s.Messages[i].Name == name {
			return &s.Messages[i]
		}
	}
	return nil
}

// Role returns the named role, or nil.
func (s *Scenario) Role(name string) *Role {
	for i := range s.Roles {
		if s.Roles[i].Name == name {
			return &s.Roles[i]
		}
	}
	return nil
}

// Waived returns the waiver covering (role, axis), or nil.
func (s *Scenario) Waived(role string, axis Axis) *Waiver {
	for i := range s.Waivers {
		if s.Waivers[i].Role == role && s.Waivers[i].Axis == axis {
			return &s.Waivers[i]
		}
	}
	return nil
}
