package schema

import (
	"errors"
	"fmt"
)

// OpaqueReadError is the static conviction: a role declared a read of a
// field the schema declares opaque. Either the field encapsulates
// nothing readable (ciphertext, blinded value) or the role is not among
// its declared key holders. This is a validation-time failure — the
// offending handler is named before any runtime ledger exists.
type OpaqueReadError struct {
	Role    string
	Message string
	Field   string
	Openers []string
}

func (e *OpaqueReadError) Error() string {
	if len(e.Openers) == 0 {
		return fmt.Sprintf("schema: role %q reads field %s.%s declared opaque (nothing inside is readable by anyone)",
			e.Role, e.Message, e.Field)
	}
	return fmt.Sprintf("schema: role %q reads field %s.%s declared opaque without holding the key (openers: %v)",
		e.Role, e.Message, e.Field, e.Openers)
}

// Validate checks the scenario's structural well-formedness and
// statically convicts opaque-field reads. All problems are reported,
// joined into one error; use errors.As with *OpaqueReadError to detect
// convictions.
func (s *Scenario) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("schema: "+format, args...))
	}

	if s.Name == "" {
		fail("scenario has no name")
	}
	if len(s.Axes) == 0 {
		fail("scenario %q declares no tuple axes", s.Name)
	}
	seenAxis := map[Axis]bool{}
	for _, a := range s.Axes {
		if seenAxis[a] {
			fail("scenario %q declares duplicate axis %s", s.Name, a)
		}
		seenAxis[a] = true
	}

	// Messages: unique names, unique fields, label consistency.
	msgs := map[string]*Message{}
	for i := range s.Messages {
		m := &s.Messages[i]
		if m.Name == "" {
			fail("scenario %q has an unnamed message", s.Name)
			continue
		}
		if msgs[m.Name] != nil {
			fail("duplicate message %q", m.Name)
			continue
		}
		msgs[m.Name] = m
		seen := map[string]bool{}
		for _, f := range m.Fields {
			if f.Name == "" {
				fail("message %q has an unnamed field", m.Name)
				continue
			}
			if seen[f.Name] {
				fail("message %q declares field %q twice", m.Name, f.Name)
			}
			seen[f.Name] = true
			if f.Partial && f.Label != Query && f.Label != Content {
				fail("field %s.%s: Partial is only meaningful on query/content labels, not %s", m.Name, f.Name, f.Label)
			}
			if f.Label == Identity && f.Partial {
				fail("field %s.%s: identity fields cannot be Partial", m.Name, f.Name)
			}
			if f.Encapsulates != "" && f.Label != Opaque {
				fail("field %s.%s: only opaque fields may encapsulate a message (label is %s)", m.Name, f.Name, f.Label)
			}
			if len(f.Openers) > 0 && f.Encapsulates == "" {
				fail("field %s.%s: Openers without Encapsulates", m.Name, f.Name)
			}
		}
	}
	// Encapsulation targets resolve (second pass: order-independent).
	for _, m := range s.Messages {
		for _, f := range m.Fields {
			if f.Encapsulates != "" && msgs[f.Encapsulates] == nil {
				fail("field %s.%s encapsulates undeclared message %q", m.Name, f.Name, f.Encapsulates)
			}
		}
	}

	// Roles: unique names, exactly the user roles carry modeled tuples.
	roles := map[string]*Role{}
	users := 0
	for i := range s.Roles {
		r := &s.Roles[i]
		if r.Name == "" {
			fail("scenario %q has an unnamed role", s.Name)
			continue
		}
		if roles[r.Name] != nil {
			fail("duplicate role %q", r.Name)
			continue
		}
		roles[r.Name] = r
		if r.User {
			users++
			if len(r.Knows) == 0 {
				fail("user role %q declares no modeled tuple", r.Name)
			}
		} else if len(r.Knows) > 0 {
			fail("role %q asserts a Knows tuple but is not the user; non-user knowledge is derived, never declared", r.Name)
		}
	}
	if users == 0 {
		fail("scenario %q has no user role", s.Name)
	}

	// Openers resolve to roles.
	for _, m := range s.Messages {
		for _, f := range m.Fields {
			for _, o := range f.Openers {
				if roles[o] == nil {
					fail("field %s.%s names unknown opener role %q", m.Name, f.Name, o)
				}
			}
		}
	}

	// Uses: message and field names resolve; reads of opaque fields are
	// convicted unless the reader is a declared opener.
	checkUse := func(role *Role, u Use, reads bool) {
		m := msgs[u.Message]
		if m == nil {
			fail("role %q uses undeclared message %q", role.Name, u.Message)
			return
		}
		seen := map[string]bool{}
		for _, fn := range u.Fields {
			f := m.Field(fn)
			if f == nil {
				fail("role %q reads unknown field %s.%s", role.Name, m.Name, fn)
				continue
			}
			if seen[fn] {
				fail("role %q lists field %s.%s twice", role.Name, m.Name, fn)
			}
			seen[fn] = true
			if reads && f.Label == Opaque && !isOpener(f, role.Name) {
				errs = append(errs, &OpaqueReadError{
					Role: role.Name, Message: m.Name, Field: fn,
					Openers: append([]string(nil), f.Openers...),
				})
			}
		}
	}
	for i := range s.Roles {
		r := &s.Roles[i]
		for _, u := range r.Sends {
			checkUse(r, u, false)
		}
		for _, u := range r.Receives {
			checkUse(r, u, true)
		}
	}

	// Flows: endpoints and messages resolve, and both ends declared
	// the use (dangling role refs are errors, not silent no-ops).
	for _, fl := range s.Flows {
		from, to := roles[fl.From], roles[fl.To]
		if from == nil {
			fail("flow %s→%s: unknown sender role %q", fl.From, fl.To, fl.From)
		}
		if to == nil {
			fail("flow %s→%s: unknown receiver role %q", fl.From, fl.To, fl.To)
		}
		if msgs[fl.Message] == nil {
			fail("flow %s→%s carries undeclared message %q", fl.From, fl.To, fl.Message)
			continue
		}
		if from != nil && from.use(from.Sends, fl.Message) == nil {
			fail("flow %s→%s: role %q does not declare sending %q", fl.From, fl.To, fl.From, fl.Message)
		}
		if to != nil && to.use(to.Receives, fl.Message) == nil {
			fail("flow %s→%s: role %q does not declare receiving %q", fl.From, fl.To, fl.To, fl.Message)
		}
	}

	// Shared secrets and waivers reference real roles.
	for _, sec := range s.SharedSecrets {
		for _, h := range sec.Holders {
			if roles[h] == nil {
				fail("shared secret %q names unknown holder %q", sec.Name, h)
			}
		}
	}
	for _, w := range s.Waivers {
		if roles[w.Role] == nil {
			fail("waiver names unknown role %q", w.Role)
		}
		if w.Reason == "" {
			fail("waiver for role %q axis %s has no reason", w.Role, w.Axis)
		}
	}

	return errors.Join(errs...)
}

func isOpener(f *Field, role string) bool {
	if f.Encapsulates == "" {
		return false
	}
	for _, o := range f.Openers {
		if o == role {
			return true
		}
	}
	return false
}
