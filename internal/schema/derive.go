package schema

import (
	"fmt"
	"sort"

	"decoupling/internal/core"
)

// FieldRef is one piece of static evidence: a declared field read (or
// write) that licenses a tuple component, with the path it arrived by.
type FieldRef struct {
	Message string `json:"message"`
	Field   string `json:"field"`
	// Via describes how the role saw the message: "A→B" for a direct
	// flow, with " ▸ open <field>" appended per encapsulation layer the
	// role's key opened.
	Via string `json:"via"`
}

func (r FieldRef) String() string {
	return fmt.Sprintf("%s.%s (%s)", r.Message, r.Field, r.Via)
}

// StaticEntity is one role's derived static knowledge.
type StaticEntity struct {
	Role string
	User bool
	// Tuple holds the scenario's declared axes in declaration order at
	// the maximum statically licensed level (plus any extra axes the
	// declarations reach, appended in sorted order).
	Tuple core.Tuple
	// Evidence maps each axis to the sorted field reads licensing its
	// level. User roles carry no evidence (their tuple is modeled).
	Evidence map[Axis][]FieldRef
	// MaxLevel is the licensed level per axis (NonSensitive for axes no
	// declaration touches).
	MaxLevel map[Axis]core.Level
	// Handles is the role's sorted linkage-handle classes: those of its
	// incident flows plus any declared extras.
	Handles []string
}

// Static is a full derivation: the scenario plus one StaticEntity per
// role, in role-declaration order.
type Static struct {
	Scenario *Scenario
	Entities []StaticEntity
}

// Entity returns the derivation for the named role, or nil.
func (st *Static) Entity(role string) *StaticEntity {
	for i := range st.Entities {
		if st.Entities[i].Role == role {
			return &st.Entities[i]
		}
	}
	return nil
}

// System converts the derivation to a core.System so the whole
// measured-side toolchain (Analyze, CompareTuples, the coalition
// machinery) applies verbatim to the static bound.
func (st *Static) System() *core.System {
	s := &core.System{
		Name:    st.Scenario.System,
		Section: st.Scenario.Section,
		Notes:   st.Scenario.Doc,
	}
	if s.Name == "" {
		s.Name = st.Scenario.Name
	}
	for _, e := range st.Entities {
		s.Entities = append(s.Entities, core.Entity{
			Name:  e.Role,
			User:  e.User,
			Knows: append(core.Tuple(nil), e.Tuple...),
			Links: append([]string(nil), e.Handles...),
		})
	}
	for _, sec := range st.Scenario.SharedSecrets {
		s.SharedSecrets = append(s.SharedSecrets, sec)
	}
	return s
}

// Derive validates the scenario and computes every role's static
// knowledge tuple by propagating field labels along the flows.
//
// The propagation is a pure union over a finite monotone lattice
// (per-axis max of levels), so it terminates on any topology, is
// independent of declaration order, and never narrows when flows or
// reads are added — the properties FuzzStaticDerive asserts.
func Derive(sc *Scenario) (*Static, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	st := &Static{Scenario: sc}
	for i := range sc.Roles {
		st.Entities = append(st.Entities, deriveRole(sc, &sc.Roles[i]))
	}
	return st, nil
}

func deriveRole(sc *Scenario, r *Role) StaticEntity {
	e := StaticEntity{
		Role:     r.Name,
		User:     r.User,
		Evidence: map[Axis][]FieldRef{},
		MaxLevel: map[Axis]core.Level{},
	}
	for _, a := range sc.Axes {
		e.MaxLevel[a] = core.NonSensitive
	}

	handles := map[string]bool{}
	for _, h := range r.Handles {
		handles[h] = true
	}
	for _, fl := range sc.Flows {
		if fl.From != r.Name && fl.To != r.Name {
			continue
		}
		if fl.Handle != "" {
			handles[fl.Handle] = true
		}
		if r.User {
			continue // user tuples are modeled, not derived
		}
		via := fl.From + "→" + fl.To
		if fl.To == r.Name {
			if u := r.use(r.Receives, fl.Message); u != nil {
				absorbUse(sc, r, &e, *u, via, map[string]bool{fl.Message: true})
			}
		}
		if fl.From == r.Name {
			// A sender knows what it originates: writes contribute at
			// the same level as reads. Fields it merely forwards are
			// not listed in the Sends use and contribute nothing.
			if u := r.use(r.Sends, fl.Message); u != nil {
				absorbUse(sc, r, &e, *u, via, map[string]bool{fl.Message: true})
			}
		}
	}
	e.Handles = sortedKeys(handles)

	if r.User {
		e.Tuple = append(core.Tuple(nil), r.Knows...)
		return e
	}

	// Assemble the tuple: declared axes in declaration order, then any
	// extra axes the declarations licensed, sorted.
	var extras []Axis
	for a := range e.MaxLevel {
		declared := false
		for _, da := range sc.Axes {
			if da == a {
				declared = true
				break
			}
		}
		if !declared {
			extras = append(extras, a)
		}
	}
	sort.Slice(extras, func(i, j int) bool {
		if extras[i].Kind != extras[j].Kind {
			return extras[i].Kind < extras[j].Kind
		}
		return extras[i].Label < extras[j].Label
	})
	for _, a := range append(append([]Axis(nil), sc.Axes...), extras...) {
		e.Tuple = append(e.Tuple, core.Component{Kind: a.Kind, Label: a.Label, Level: e.MaxLevel[a]})
	}
	for a := range e.Evidence {
		refs := e.Evidence[a]
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].Message != refs[j].Message {
				return refs[i].Message < refs[j].Message
			}
			if refs[i].Field != refs[j].Field {
				return refs[i].Field < refs[j].Field
			}
			return refs[i].Via < refs[j].Via
		})
		e.Evidence[a] = dedupeRefs(refs)
	}
	return e
}

// absorbUse folds one declared use of a message into the role's
// knowledge: every read field contributes its component, and reading
// an encapsulating field the role can open recurses into the role's
// declared use of the inner message. visited guards encapsulation
// cycles (a message reachable twice on one path contributes once).
func absorbUse(sc *Scenario, r *Role, e *StaticEntity, u Use, via string, visited map[string]bool) {
	m := sc.Message(u.Message)
	if m == nil {
		return
	}
	for _, fn := range u.Fields {
		f := m.Field(fn)
		if f == nil {
			continue
		}
		if c, ok := f.Component(); ok {
			axis := Axis{Kind: c.Kind, Label: c.Label}
			if lvl, seen := e.MaxLevel[axis]; !seen || c.Level > lvl {
				e.MaxLevel[axis] = c.Level
			}
			if c.Level > core.NonSensitive || f.Label == Routing {
				e.Evidence[axis] = append(e.Evidence[axis], FieldRef{Message: m.Name, Field: fn, Via: via})
			}
			continue
		}
		// Opaque field: if the role holds the key, it sees the inner
		// message and its declared reads of it apply.
		if f.Encapsulates != "" && isOpener(f, r.Name) && !visited[f.Encapsulates] {
			visited[f.Encapsulates] = true
			if inner := r.use(r.Receives, f.Encapsulates); inner != nil {
				absorbUse(sc, r, e, *inner, via+" ▸ open "+fn, visited)
			}
			visited[f.Encapsulates] = false
		}
	}
}

func dedupeRefs(refs []FieldRef) []FieldRef {
	out := refs[:0]
	for i, r := range refs {
		if i == 0 || refs[i-1] != r {
			out = append(out, r)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
