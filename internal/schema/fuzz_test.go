package schema_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/schema"
	"decoupling/internal/schema/catalog"
)

// seedCorpus feeds every declared catalog scenario (probes included —
// the fuzzer should explore the conviction path too) plus the unit-test
// relay topology into the fuzz target.
func seedCorpus(f *testing.F, add func([]byte)) {
	f.Helper()
	for _, id := range catalog.IDs() {
		sc, err := catalog.Get(id)
		if err != nil {
			f.Fatal(err)
		}
		data, err := schema.EncodeScenario(sc)
		if err != nil {
			f.Fatal(err)
		}
		add(data)
	}
	data, err := schema.EncodeScenario(relayScenario())
	if err != nil {
		f.Fatal(err)
	}
	add(data)
}

// FuzzSchemaDecl sweeps the parse-then-validate pipeline with arbitrary
// bytes: the decoder must never panic, validation must be stable across
// calls, and a scenario that validates must survive an encode/decode
// round trip with a byte-identical static report.
func FuzzSchemaDecl(f *testing.F) {
	seedCorpus(f, func(data []byte) { f.Add(data) })
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := schema.DecodeScenario(data)
		if err != nil {
			return
		}
		verr := sc.Validate()
		if verr2 := sc.Validate(); (verr == nil) != (verr2 == nil) ||
			(verr != nil && verr.Error() != verr2.Error()) {
			t.Fatalf("Validate is not stable: %v vs %v", verr, verr2)
		}
		if verr != nil {
			if _, derr := schema.Derive(sc); derr == nil {
				t.Fatal("Derive accepted a scenario Validate rejects")
			}
			return
		}
		st1, err := schema.Derive(sc)
		if err != nil {
			t.Fatalf("validated scenario failed to derive: %v", err)
		}
		st2, err := schema.Derive(sc)
		if err != nil {
			t.Fatal(err)
		}
		var r1, r2 bytes.Buffer
		if err := schema.WriteReport(&r1, st1); err != nil {
			t.Fatal(err)
		}
		if err := schema.WriteReport(&r2, st2); err != nil {
			t.Fatal(err)
		}
		if r1.String() != r2.String() {
			t.Fatal("Derive is not deterministic for a fixed scenario")
		}
		encoded, err := schema.EncodeScenario(sc)
		if err != nil {
			t.Fatalf("validated scenario failed to encode: %v", err)
		}
		back, err := schema.DecodeScenario(encoded)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		st3, err := schema.Derive(back)
		if err != nil {
			t.Fatalf("round-tripped scenario failed to derive: %v", err)
		}
		var r3 bytes.Buffer
		if err := schema.WriteReport(&r3, st3); err != nil {
			t.Fatal(err)
		}
		if r1.String() != r3.String() {
			t.Fatal("static report changed across an encode/decode round trip")
		}
	})
}

// entitySummary flattens one derivation into comparable per-role facts
// that do not depend on declaration order.
func entitySummary(st *schema.Static) map[string]string {
	out := map[string]string{}
	for _, e := range st.Entities {
		var evidence []string
		for axis, refs := range e.Evidence {
			for _, r := range refs {
				evidence = append(evidence, axis.String()+":"+r.String())
			}
		}
		// Evidence map iteration order is random; canonicalize.
		sortStrings(evidence)
		out[e.Role] = e.Tuple.Symbol() + " handles=" + strings.Join(e.Handles, ",") +
			" ev=" + strings.Join(evidence, ";")
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FuzzStaticDerive asserts the propagation's lattice properties on
// arbitrary valid scenarios: it terminates (every call returns),
// per-role results are independent of declaration order, adding a flow
// never narrows any role's knowledge, and the static coalition closure
// merges exactly the per-axis maximum of its members (no widening
// beyond reconstructed shared secrets).
func FuzzStaticDerive(f *testing.F) {
	seedCorpus(f, func(data []byte) { f.Add(data, uint64(7)) })
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		sc, err := schema.DecodeScenario(data)
		if err != nil || sc.Validate() != nil {
			return
		}
		base, err := schema.Derive(sc)
		if err != nil {
			t.Fatalf("validated scenario failed to derive: %v", err)
		}
		baseFacts := entitySummary(base)

		// Order independence: shuffle every declaration list with a
		// deterministic RNG and compare per-role facts.
		shuffled, err := schema.DecodeScenario(data)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		rng.Shuffle(len(shuffled.Roles), func(i, j int) {
			shuffled.Roles[i], shuffled.Roles[j] = shuffled.Roles[j], shuffled.Roles[i]
		})
		rng.Shuffle(len(shuffled.Messages), func(i, j int) {
			shuffled.Messages[i], shuffled.Messages[j] = shuffled.Messages[j], shuffled.Messages[i]
		})
		rng.Shuffle(len(shuffled.Flows), func(i, j int) {
			shuffled.Flows[i], shuffled.Flows[j] = shuffled.Flows[j], shuffled.Flows[i]
		})
		st2, err := schema.Derive(shuffled)
		if err != nil {
			t.Fatalf("shuffled scenario failed to derive: %v", err)
		}
		for role, facts := range entitySummary(st2) {
			if baseFacts[role] != facts {
				t.Fatalf("role %q derives differently after shuffling declarations:\n  base:     %s\n  shuffled: %s",
					role, baseFacts[role], facts)
			}
		}

		// Monotonicity: duplicating an existing flow must never lower any
		// role's licensed level on any axis.
		if len(sc.Flows) > 0 {
			wider, err := schema.DecodeScenario(data)
			if err != nil {
				t.Fatal(err)
			}
			wider.Flows = append(wider.Flows, wider.Flows[int(seed)%len(wider.Flows)])
			st3, err := schema.Derive(wider)
			if err != nil {
				t.Fatalf("widened scenario failed to derive: %v", err)
			}
			for _, e := range base.Entities {
				w := st3.Entity(e.Role)
				if w == nil {
					t.Fatalf("role %q vanished after adding a flow", e.Role)
				}
				for axis, lvl := range e.MaxLevel {
					if w.MaxLevel[axis] < lvl {
						t.Fatalf("role %q narrowed on %s after adding a flow: %v -> %v",
							e.Role, axis, lvl, w.MaxLevel[axis])
					}
				}
			}
		}

		// Coalition merge widens to exactly the per-axis max of member
		// tuples plus fully-held shared secrets — nothing more.
		closure, err := adversary.CloseStatic(base.System())
		if err != nil {
			return // e.g. multiple user roles; Analyze rejects, fine
		}
		for _, p := range closure.Partitions {
			var want core.Tuple
			for _, name := range p.Entities {
				want = want.Merge(base.Entity(name).Tuple)
			}
			for _, name := range p.Secrets {
				for _, sec := range sc.SharedSecrets {
					if sec.Name == name {
						want = want.Merge(core.Tuple{sec.Yields})
					}
				}
			}
			if p.Merged.Symbol() != want.Symbol() {
				t.Fatalf("partition %v merged %s, want per-axis max %s",
					p.Entities, p.Merged.Symbol(), want.Symbol())
			}
		}
	})
}
