package schema

import (
	"fmt"
	"strings"

	"decoupling/internal/core"
)

// Violation is one breach of the static ⊇ measured invariant: a
// runtime-measured tuple component the declared schema does not
// license. It names the offending entity and axis; callers holding the
// run's ledger attach the provenance evidence chain for the component.
type Violation struct {
	Entity string
	// Component is the measured component the schema does not license.
	Component core.Component
	// StaticLevel is the level the declarations license on that axis.
	StaticLevel core.Level
	// Licensed lists the static field reads on the axis (empty when no
	// declaration touches it — the usual case for a violation).
	Licensed []FieldRef
	// Evidence is the provenance chain for the measured component,
	// attached by callers with access to the run's ledger.
	Evidence []string
}

func (v Violation) String() string {
	return fmt.Sprintf("entity %q measured %s on axis %s but the schema licenses only %s",
		v.Entity, v.Component.Symbol(), Axis{Kind: v.Component.Kind, Label: v.Component.Label},
		core.Component{Kind: v.Component.Kind, Label: v.Component.Label, Level: v.StaticLevel}.Symbol())
}

// Gap is the opposite direction (static ⊋ measured): knowledge the
// declarations license but no observation in this run exercised —
// either a missing test or a documented waiver.
type Gap struct {
	Entity        string
	Axis          Axis
	StaticLevel   core.Level
	MeasuredLevel core.Level
	Waived        bool
	Reason        string
}

func (g Gap) String() string {
	state := "unexercised — worth a test"
	if g.Waived {
		state = "waived: " + g.Reason
	}
	return fmt.Sprintf("entity %q: schema licenses %s on axis %s, run measured %s (%s)",
		g.Entity,
		core.Component{Kind: g.Axis.Kind, Label: g.Axis.Label, Level: g.StaticLevel}.Symbol(),
		g.Axis,
		core.Component{Kind: g.Axis.Kind, Label: g.Axis.Label, Level: g.MeasuredLevel}.Symbol(),
		state)
}

// Conformance is the result of checking one measured system against
// one static derivation.
type Conformance struct {
	Scenario   string
	System     string
	Violations []Violation
	Gaps       []Gap
}

// OK reports whether static ⊇ measured held (gaps do not fail it).
func (c *Conformance) OK() bool { return len(c.Violations) == 0 }

// Summary renders a one-line verdict.
func (c *Conformance) Summary() string {
	if !c.OK() {
		return fmt.Sprintf("VIOLATED (%d measured component(s) unlicensed)", len(c.Violations))
	}
	unwaived := 0
	for _, g := range c.Gaps {
		if !g.Waived {
			unwaived++
		}
	}
	switch {
	case len(c.Gaps) == 0:
		return "static ⊇ measured (exact)"
	case unwaived == 0:
		return fmt.Sprintf("static ⊇ measured (%d waived gap(s))", len(c.Gaps))
	default:
		return fmt.Sprintf("static ⊇ measured (%d gap(s), %d unexercised)", len(c.Gaps), unwaived)
	}
}

// Check asserts static ⊇ measured: every measured non-user tuple
// component above NonSensitive must be licensed at ≥ its level by the
// static derivation, and every static license above the measured level
// is reported as a gap. Measured entities absent from the schema are
// violations on every sensitive component they hold.
func (st *Static) Check(measured *core.System) (*Conformance, error) {
	if measured == nil {
		return nil, fmt.Errorf("schema: no measured system to check against scenario %q", st.Scenario.Name)
	}
	c := &Conformance{Scenario: st.Scenario.Name, System: measured.Name}
	for _, me := range measured.Entities {
		if me.User {
			continue // the user's tuple is modeled on both sides
		}
		se := st.Entity(me.Name)
		measuredLevels := map[Axis]core.Level{}
		for _, comp := range me.Knows {
			axis := Axis{Kind: comp.Kind, Label: comp.Label}
			if comp.Level > measuredLevels[axis] {
				measuredLevels[axis] = comp.Level
			}
			if comp.Level == core.NonSensitive {
				continue // △/⊙ need no license
			}
			staticLevel := core.NonSensitive
			var licensed []FieldRef
			if se != nil {
				if lvl, ok := se.MaxLevel[axis]; ok {
					staticLevel = lvl
				}
				licensed = se.Evidence[axis]
			}
			if staticLevel < comp.Level {
				c.Violations = append(c.Violations, Violation{
					Entity:      me.Name,
					Component:   comp,
					StaticLevel: staticLevel,
					Licensed:    append([]FieldRef(nil), licensed...),
				})
			}
		}
		if se == nil || se.User {
			continue
		}
		for _, a := range axesOf(se) {
			lvl := se.MaxLevel[a]
			if lvl == core.NonSensitive {
				continue
			}
			if m := measuredLevels[a]; m < lvl {
				g := Gap{Entity: me.Name, Axis: a, StaticLevel: lvl, MeasuredLevel: m}
				if w := st.Scenario.Waived(me.Name, a); w != nil {
					g.Waived, g.Reason = true, w.Reason
				}
				c.Gaps = append(c.Gaps, g)
			}
		}
	}
	return c, nil
}

// axesOf returns the entity's axes in tuple (declaration) order.
func axesOf(se *StaticEntity) []Axis {
	out := make([]Axis, 0, len(se.Tuple))
	for _, comp := range se.Tuple {
		out = append(out, Axis{Kind: comp.Kind, Label: comp.Label})
	}
	return out
}

// CoversExpected asserts the schema licenses everything the paper's
// published table asserts: for every non-user entity of the expected
// model, each component above NonSensitive must be statically licensed
// at ≥ its level. This catches an under-declared schema with no run at
// all — the declarations must be at least as strong as the table they
// claim to predict.
func (st *Static) CoversExpected(expected *core.System) []Violation {
	var out []Violation
	for _, ee := range expected.Entities {
		if ee.User {
			continue
		}
		se := st.Entity(ee.Name)
		for _, comp := range ee.Knows {
			if comp.Level == core.NonSensitive {
				continue
			}
			axis := Axis{Kind: comp.Kind, Label: comp.Label}
			staticLevel := core.NonSensitive
			if se != nil {
				if lvl, ok := se.MaxLevel[axis]; ok {
					staticLevel = lvl
				}
			}
			if staticLevel < comp.Level {
				out = append(out, Violation{Entity: ee.Name, Component: comp, StaticLevel: staticLevel})
			}
		}
	}
	return out
}

// RenderViolation renders one violation with its provenance evidence
// chain, for hard-failure output.
func RenderViolation(v Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "static ⊇ measured VIOLATED: %s\n", v)
	if len(v.Licensed) > 0 {
		b.WriteString("  schema licenses on this axis:\n")
		for _, r := range v.Licensed {
			fmt.Fprintf(&b, "    %s\n", r)
		}
	} else {
		b.WriteString("  the schema licenses nothing above △/⊙ on this axis — the offending handler reads a field it never declared\n")
	}
	if len(v.Evidence) > 0 {
		b.WriteString("  measured provenance chain:\n")
		for _, line := range v.Evidence {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
