package schema

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Scenarios have a canonical JSON form (labels as their declaration
// names, unknown fields rejected) so declarations can be exchanged,
// diffed, and — crucially — fuzzed: FuzzSchemaDecl drives the decoder
// and validator with arbitrary bytes.

// MarshalJSON renders the label as its declaration name.
func (l Label) MarshalJSON() ([]byte, error) {
	name, ok := labelNames[l]
	if !ok {
		return nil, fmt.Errorf("schema: cannot marshal unknown label %d", int(l))
	}
	return json.Marshal(name)
}

// UnmarshalJSON parses a declaration-name label.
func (l *Label) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseLabel(s)
	if err != nil {
		return err
	}
	*l = parsed
	return nil
}

// EncodeScenario renders the scenario in canonical indented JSON.
func EncodeScenario(sc *Scenario) ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// DecodeScenario parses a JSON scenario declaration strictly: unknown
// fields are rejected, trailing garbage is an error. The result is NOT
// validated — callers run Validate (or Derive, which validates) next,
// which is exactly the parse-then-validate pipeline the fuzzer sweeps.
func DecodeScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("schema: decode scenario: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("schema: trailing data after scenario declaration")
	}
	return &sc, nil
}
