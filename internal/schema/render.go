package schema

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
)

// The renderers below follow internal/provenance's canonical-ordering
// contract: every line is derived from declaration content only —
// sorted handle classes, declaration-ordered roles and messages, sorted
// evidence — so the bytes are identical across runs, machines, and any
// -parallel setting by construction (there is no run-dependent input to
// begin with; the CI job cmp's the output across worker counts to pin
// that promise).

// WriteReport renders the static audit as a deterministic text report.
func WriteReport(w io.Writer, st *Static) error {
	bw := &errWriter{w: w}
	sc := st.Scenario
	title := sc.System
	if title == "" {
		title = sc.Name
	}
	bw.printf("Static audit: %s — %s", sc.Name, title)
	if sc.Section != "" {
		bw.printf(" (paper §%s)", sc.Section)
	}
	bw.printf("\n")
	bw.printf("derived from declared schemas alone: no network, no ledger, no run\n\n")
	if sc.Doc != "" {
		bw.printf("%s\n\n", sc.Doc)
	}

	bw.printf("messages:\n")
	for _, m := range sc.Messages {
		bw.printf("  %s:\n", m.Name)
		for _, f := range m.Fields {
			bw.printf("    %-16s %s", f.Name, fieldLabel(f))
			bw.printf("\n")
		}
	}
	bw.printf("\n")

	bw.printf("static knowledge tuples:\n")
	for _, e := range st.Entities {
		suffix := ""
		if e.User {
			suffix = "  user (modeled)"
		} else if len(e.Handles) > 0 {
			suffix = fmt.Sprintf("  handles=[%s]", strings.Join(e.Handles, " "))
		}
		bw.printf("  %-20s %s%s\n", e.Role, e.Tuple.Symbol(), suffix)
		if e.User {
			continue
		}
		for _, axis := range axesOf(&e) {
			for _, ref := range e.Evidence[axis] {
				sym := core.Component{Kind: axis.Kind, Label: axis.Label, Level: e.MaxLevel[axis]}.Symbol()
				bw.printf("    %s %s ← %s\n", sym, axis, ref)
			}
		}
	}
	bw.printf("\n")

	closure, err := adversary.CloseStatic(st.System())
	if err != nil {
		return err
	}
	bw.printf("static coalition closure:\n")
	for i, p := range closure.Partitions {
		status := "uncoupled"
		if p.Coupled {
			status = "COUPLED under full collusion"
		}
		bw.printf("  partition %d (%s): %s; handles=[%s]; merged=%s",
			i+1, status, strings.Join(p.Entities, "+"), strings.Join(p.Handles, " "), p.Merged.Symbol())
		if len(p.Secrets) > 0 {
			bw.printf("; reconstructs %s", strings.Join(p.Secrets, "+"))
		}
		bw.printf("\n")
	}
	bw.printf("  verdict: %s\n", closure.Verdict.String())

	if len(sc.Waivers) > 0 {
		bw.printf("\nwaivers (declared-but-unexercised knowledge):\n")
		for _, wv := range sc.Waivers {
			bw.printf("  %s on %s: %s\n", wv.Role, wv.Axis, wv.Reason)
		}
	}
	return bw.err
}

func fieldLabel(f Field) string {
	s := f.Label.String()
	if f.Partial {
		s += " (partial ⊙/●)"
	}
	if f.Axis != "" {
		s += " axis=" + f.Axis
	}
	if f.Encapsulates != "" {
		s += fmt.Sprintf(" → %s (openers: %s)", f.Encapsulates, strings.Join(f.Openers, ", "))
	}
	return s
}

// WriteJSONL emits the static audit as strict JSONL: one "static"
// header line, one "static_entity" line per role, one
// "static_partition" line per closure partition.
func WriteJSONL(w io.Writer, st *Static) error {
	enc := json.NewEncoder(w)
	sc := st.Scenario
	closure, err := adversary.CloseStatic(st.System())
	if err != nil {
		return err
	}
	header := map[string]any{
		"type":     "static",
		"scenario": sc.Name,
		"system":   sc.System,
		"section":  sc.Section,
		"verdict":  closure.Verdict.String(),
		"roles":    len(st.Entities),
		"messages": len(sc.Messages),
		"flows":    len(sc.Flows),
	}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, e := range st.Entities {
		line := map[string]any{
			"type":  "static_entity",
			"role":  e.Role,
			"tuple": e.Tuple.Symbol(),
		}
		if e.User {
			line["user"] = true
		}
		if len(e.Handles) > 0 {
			line["handles"] = e.Handles
		}
		var ev []map[string]any
		for _, axis := range axesOf(&e) {
			for _, ref := range e.Evidence[axis] {
				ev = append(ev, map[string]any{
					"axis": axis.String(), "message": ref.Message, "field": ref.Field, "via": ref.Via,
				})
			}
		}
		if len(ev) > 0 {
			line["evidence"] = ev
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for i, p := range closure.Partitions {
		line := map[string]any{
			"type":     "static_partition",
			"id":       i + 1,
			"entities": p.Entities,
			"handles":  p.Handles,
			"merged":   p.Merged.Symbol(),
			"coupled":  p.Coupled,
		}
		if len(p.Secrets) > 0 {
			line["secrets"] = p.Secrets
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// WriteDOT renders the declared topology as a Graphviz digraph: roles
// as nodes (the user double-circled, statically coupled roles filled),
// flows as edges labeled with message and handle class.
func WriteDOT(w io.Writer, st *Static) error {
	bw := &errWriter{w: w}
	bw.printf("digraph static {\n")
	bw.printf("  label=%q;\n", "static: "+st.Scenario.Name)
	bw.printf("  rankdir=LR;\n")
	for _, e := range st.Entities {
		attrs := []string{fmt.Sprintf("label=%q", e.Role+"\\n"+e.Tuple.Symbol())}
		if e.User {
			attrs = append(attrs, "shape=doublecircle")
		} else {
			attrs = append(attrs, "shape=box")
			if e.Tuple.Coupled() {
				attrs = append(attrs, `style=filled`, `fillcolor="#ffcccc"`)
			}
		}
		bw.printf("  %q [%s];\n", e.Role, strings.Join(attrs, ", "))
	}
	for _, fl := range st.Scenario.Flows {
		label := fl.Message
		if fl.Handle != "" {
			label += "\\n[" + fl.Handle + "]"
		}
		bw.printf("  %q -> %q [label=%q];\n", fl.From, fl.To, label)
	}
	bw.printf("}\n")
	return bw.err
}

// errWriter mirrors internal/provenance's sticky-error writer idiom.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
