package catalog

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/schema"
)

var update = flag.Bool("update", false, "rewrite golden static reports")

// TestGoldenStaticReports pins the full static report bytes for every
// non-probe scenario. The reports are derived from declarations alone,
// so any diff is an intentional schema change — refresh with:
// go test ./internal/schema/catalog -update
func TestGoldenStaticReports(t *testing.T) {
	for _, id := range IDs() {
		if IsProbe(id) {
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			sc, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			st, err := schema.Derive(sc)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := schema.WriteReport(&buf, st); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "static_"+id+".golden")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if buf.String() != string(want) {
				t.Errorf("static report diverged from %s (rerun with -update if intended):\n%s",
					path, firstDiffLine(string(want), buf.String()))
			}
		})
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, al[i], bl[i])
		}
	}
	return "line counts differ"
}

// TestStaticMatchesPublishedTables cross-checks every scenario that has
// a published core.Registry table: the declarations must license the
// whole table (CoversExpected), and the static coalition verdict —
// decoupled or not, degree, minimum coalition — must equal the verdict
// of the paper's own table, entity by entity.
func TestStaticMatchesPublishedTables(t *testing.T) {
	reg := core.Registry()
	matched := 0
	for _, id := range IDs() {
		if IsProbe(id) {
			continue
		}
		expected, ok := reg[id]
		if !ok {
			continue
		}
		matched++
		sc, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		st, err := schema.Derive(sc)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, v := range st.CoversExpected(expected) {
			t.Errorf("%s: schema does not license the published table: %s", id, v)
		}
		staticVerdict, err := core.Analyze(st.System())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		expectedVerdict, err := core.Analyze(expected)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if staticVerdict.String() != expectedVerdict.String() {
			t.Errorf("%s: static verdict %q != published verdict %q", id, staticVerdict, expectedVerdict)
		}
		// Exact tuple agreement, not just coverage: the declarations are
		// meant to predict the table, not over-approximate it.
		for _, ee := range expected.Entities {
			if ee.User {
				continue
			}
			se := st.Entity(ee.Name)
			if se == nil {
				t.Errorf("%s: schema has no role %q", id, ee.Name)
				continue
			}
			if se.Tuple.Symbol() != ee.Knows.Symbol() {
				t.Errorf("%s/%s: static %s != published %s", id, ee.Name, se.Tuple.Symbol(), ee.Knows.Symbol())
			}
		}
	}
	if matched != 9 {
		t.Errorf("cross-checked %d published tables, want 9", matched)
	}
}

// TestPlantedProbeConvicted pins the negative control end to end: the
// odoh-snoop scenario must be convicted at derivation time with the
// handler, message, and field named.
func TestPlantedProbeConvicted(t *testing.T) {
	if !IsProbe("odoh-snoop") {
		t.Fatal("odoh-snoop is not registered as a probe")
	}
	sc, err := Get("odoh-snoop")
	if err != nil {
		t.Fatal(err)
	}
	_, err = schema.Derive(sc)
	if err == nil {
		t.Fatal("planted probe derived cleanly")
	}
	var conv *schema.OpaqueReadError
	if !errors.As(err, &conv) {
		t.Fatalf("probe error is not a conviction: %v", err)
	}
	if conv.Role != "Resolver" || conv.Message != "odoh_query" || conv.Field != "sealed_query" {
		t.Errorf("conviction names (%s, %s, %s), want (Resolver, odoh_query, sealed_query)",
			conv.Role, conv.Message, conv.Field)
	}
}

func TestCatalogShape(t *testing.T) {
	ids := IDs()
	if len(ids) != 16 {
		t.Errorf("catalog has %d scenarios, want 16: %v", len(ids), ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs() not sorted: %v", ids)
		}
	}
	for _, id := range ids {
		sc, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != id {
			t.Errorf("scenario %q declares name %q", id, sc.Name)
		}
		// Every Get returns a fresh value: mutating one must not leak
		// into the next (the probe builders mutate their base).
		sc.Name = "mutated"
		sc2, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if sc2.Name != id {
			t.Errorf("Get(%q) returned a shared scenario", id)
		}
	}
	if _, err := Get("nope"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("Get(nope) = %v", err)
	}
}
