// Package catalog assembles every protocol package's declared scenario
// into one registry, keyed by the same short ids core.Registry and
// cmd/decouple use. It exists as a separate package (rather than a
// function in internal/schema) so the schema engine does not import the
// protocol packages that import it.
package catalog

import (
	"fmt"
	"sort"

	"decoupling/internal/digitalcash"
	"decoupling/internal/dns"
	"decoupling/internal/ech"
	"decoupling/internal/mixnet"
	"decoupling/internal/mpr"
	"decoupling/internal/odns"
	"decoupling/internal/odoh"
	"decoupling/internal/ohttp"
	"decoupling/internal/onion"
	"decoupling/internal/pgpp"
	"decoupling/internal/ppm"
	"decoupling/internal/privacypass"
	"decoupling/internal/schema"
	"decoupling/internal/tee"
	"decoupling/internal/vpn"
)

// Scenarios returns every declared scenario, keyed by id. Ids that
// exist in core.Registry() name the same system; the extras are the
// fail-open variant (E16's degraded architecture), the planted snoop
// probe, and systems the paper discusses without a §3 table (onion,
// ohttp, tee, plain dns).
func Scenarios() map[string]*schema.Scenario {
	return map[string]*schema.Scenario{
		"dns":           dns.StaticSchema(),
		"digitalcash":   digitalcash.StaticSchema(),
		"mixnet":        mixnet.StaticSchema(),
		"privacypass":   privacypass.StaticSchema(),
		"odns":          odns.StaticSchema(),
		"odoh":          odoh.StaticSchema(),
		"odoh-failopen": odoh.FailOpenSchema(),
		"odoh-snoop":    odoh.SnoopSchema(),
		"pgpp":          pgpp.StaticSchema(),
		"mpr":           mpr.StaticSchema(),
		"ppm":           ppm.StaticSchema(),
		"vpn":           vpn.StaticSchema(),
		"ech":           ech.StaticSchema(),
		"tee":           tee.StaticSchema(),
		"onion":         onion.StaticSchema(),
		"ohttp":         ohttp.StaticSchema(),
	}
}

// IsProbe reports whether id names a planted negative control: a
// scenario that MUST fail validation. Probes are convicted (nonzero
// exit) when audited directly and skipped — loudly — by "all" sweeps,
// which would otherwise never pass.
func IsProbe(id string) bool {
	return id == "odoh-snoop"
}

// IDs returns the sorted scenario ids.
func IDs() []string {
	m := Scenarios()
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the scenario for id, or an error naming the known ids.
func Get(id string) (*schema.Scenario, error) {
	sc, ok := Scenarios()[id]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown scenario %q (known: %v)", id, IDs())
	}
	return sc, nil
}
