package schema_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// relayScenario is the minimal decoupled topology: the user's identity
// stops at a relay, the payload travels sealed to a server that never
// sees who sent it.
func relayScenario() *schema.Scenario {
	return &schema.Scenario{
		Name: "relay",
		Axes: []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{Name: "outer", Fields: []schema.Field{
				{Name: "src", Label: schema.Identity},
				{Name: "sealed", Label: schema.Opaque, Encapsulates: "inner", Openers: []string{"Server"}},
			}},
			{Name: "carried", Fields: []schema.Field{
				{Name: "relay_addr", Label: schema.Routing},
				{Name: "sealed", Label: schema.Opaque, Encapsulates: "inner", Openers: []string{"Server"}},
			}},
			{Name: "inner", Fields: []schema.Field{
				{Name: "body", Label: schema.Content},
			}},
		},
		Roles: []schema.Role{
			{Name: "User", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: "outer", Fields: []string{"src"}}}},
			{Name: "Relay",
				Receives: []schema.Use{{Message: "outer", Fields: []string{"src"}}},
				Sends:    []schema.Use{{Message: "carried", Fields: []string{"relay_addr"}}}},
			{Name: "Server",
				Receives: []schema.Use{
					{Message: "carried", Fields: []string{"relay_addr", "sealed"}},
					{Message: "inner", Fields: []string{"body"}},
				}},
		},
		Flows: []schema.Flow{
			{From: "User", To: "Relay", Message: "outer", Handle: "client-conn"},
			{From: "Relay", To: "Server", Message: "carried", Handle: "relay-conn"},
		},
	}
}

func TestDeriveRelay(t *testing.T) {
	st, err := schema.Derive(relayScenario())
	if err != nil {
		t.Fatal(err)
	}
	relay := st.Entity("Relay")
	if got := relay.Tuple.Symbol(); got != "(▲, ⊙)" {
		t.Errorf("relay tuple = %s, want (▲, ⊙)", got)
	}
	if got := strings.Join(relay.Handles, " "); got != "client-conn relay-conn" {
		t.Errorf("relay handles = %q", got)
	}
	server := st.Entity("Server")
	if got := server.Tuple.Symbol(); got != "(△, ●)" {
		t.Errorf("server tuple = %s, want (△, ●)", got)
	}
	// The server's data evidence must show the encapsulation path: it
	// reached the body by opening the sealed field.
	refs := server.Evidence[schema.Axis{Kind: core.Data}]
	if len(refs) != 1 || refs[0].Message != "inner" || refs[0].Field != "body" ||
		!strings.Contains(refs[0].Via, "▸ open sealed") {
		t.Errorf("server data evidence = %v", refs)
	}
	user := st.Entity("User")
	if !user.User || user.Tuple.Symbol() != "(▲, ●)" {
		t.Errorf("user tuple = %s (user=%v)", user.Tuple.Symbol(), user.User)
	}
}

// TestOpaqueReadConviction pins the negative control at the unit level:
// a role declaring a read of a field declared opaque to it must be
// convicted by Validate with the role, message, and field named.
func TestOpaqueReadConviction(t *testing.T) {
	sc := relayScenario()
	relay := sc.Role("Relay")
	relay.Receives[0].Fields = append(relay.Receives[0].Fields, "sealed")
	err := sc.Validate()
	if err == nil {
		t.Fatal("snooping declaration validated")
	}
	var conv *schema.OpaqueReadError
	if !errors.As(err, &conv) {
		t.Fatalf("error is not an OpaqueReadError: %v", err)
	}
	if conv.Role != "Relay" || conv.Message != "outer" || conv.Field != "sealed" {
		t.Errorf("conviction names (%s, %s, %s)", conv.Role, conv.Message, conv.Field)
	}
	if len(conv.Openers) != 1 || conv.Openers[0] != "Server" {
		t.Errorf("conviction openers = %v", conv.Openers)
	}
	if _, err := schema.Derive(sc); err == nil {
		t.Error("Derive accepted a convicted scenario")
	}
}

func TestOpenerReadAllowed(t *testing.T) {
	// The server reads the sealed field it holds the key for: legal.
	if err := relayScenario().Validate(); err != nil {
		t.Fatalf("legal scenario convicted: %v", err)
	}
}

func TestValidateStructuralErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*schema.Scenario)
		want   string
	}{
		{"no axes", func(sc *schema.Scenario) { sc.Axes = nil }, "no tuple axes"},
		{"unknown flow role", func(sc *schema.Scenario) {
			sc.Flows[0].From = "Nobody"
		}, `unknown sender role "Nobody"`},
		{"undeclared receive", func(sc *schema.Scenario) {
			sc.Role("Relay").Receives = nil
		}, `does not declare receiving "outer"`},
		{"unknown field read", func(sc *schema.Scenario) {
			sc.Role("Relay").Receives[0].Fields = []string{"nope"}
		}, "unknown field outer.nope"},
		{"non-user knows", func(sc *schema.Scenario) {
			sc.Role("Relay").Knows = core.Tuple{core.SensID()}
		}, "is not the user"},
		{"openers without encapsulates", func(sc *schema.Scenario) {
			sc.Messages[0].Fields[0].Openers = []string{"Server"}
		}, "Openers without Encapsulates"},
		{"dangling encapsulation", func(sc *schema.Scenario) {
			sc.Messages[0].Fields[1].Encapsulates = "ghost"
		}, `undeclared message "ghost"`},
		{"waiver without reason", func(sc *schema.Scenario) {
			sc.Waivers = []schema.Waiver{{Role: "Relay", Axis: schema.Axis{Kind: core.Data}}}
		}, "no reason"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := relayScenario()
			tc.mutate(sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestCheckViolationAndGap drives both directions of the conformance
// check against hand-made measured systems.
func TestCheckViolationAndGap(t *testing.T) {
	st, err := schema.Derive(relayScenario())
	if err != nil {
		t.Fatal(err)
	}
	// A run where the relay somehow measured sensitive data: violation.
	over := &core.System{Name: "relay (overreaching run)", Entities: []core.Entity{
		{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
		{Name: "Relay", Knows: core.Tuple{core.SensID(), core.SensData()}},
		{Name: "Server", Knows: core.Tuple{core.NonSensID(), core.SensData()}},
	}}
	conf, err := st.Check(over)
	if err != nil {
		t.Fatal(err)
	}
	if conf.OK() || len(conf.Violations) != 1 {
		t.Fatalf("violations = %v", conf.Violations)
	}
	v := conf.Violations[0]
	if v.Entity != "Relay" || v.Component.Kind != core.Data || v.StaticLevel != core.NonSensitive {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(conf.Summary(), "VIOLATED") {
		t.Errorf("summary = %q", conf.Summary())
	}
	if got := schema.RenderViolation(v); !strings.Contains(got, "never declared") {
		t.Errorf("render = %q", got)
	}

	// A run that never exercised the server's data read: gap.
	under := &core.System{Name: "relay (reduced run)", Entities: []core.Entity{
		{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
		{Name: "Relay", Knows: core.Tuple{core.SensID(), core.NonSensData()}},
		{Name: "Server", Knows: core.Tuple{core.NonSensID(), core.NonSensData()}},
	}}
	conf, err = st.Check(under)
	if err != nil {
		t.Fatal(err)
	}
	if !conf.OK() || len(conf.Gaps) != 1 {
		t.Fatalf("conf = %+v", conf)
	}
	g := conf.Gaps[0]
	if g.Entity != "Server" || g.Waived || g.StaticLevel != core.Sensitive {
		t.Errorf("gap = %+v", g)
	}

	// A measured entity the schema never declared: every sensitive
	// component it holds is a violation.
	ghost := &core.System{Name: "relay (ghost entity)", Entities: []core.Entity{
		{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
		{Name: "Interloper", Knows: core.Tuple{core.SensID(), core.SensData()}},
	}}
	conf, err = st.Check(ghost)
	if err != nil {
		t.Fatal(err)
	}
	if len(conf.Violations) != 2 {
		t.Errorf("undeclared entity violations = %v", conf.Violations)
	}
	if _, err := st.Check(nil); err == nil {
		t.Error("Check(nil) did not error")
	}
}

func TestCoversExpected(t *testing.T) {
	st, err := schema.Derive(relayScenario())
	if err != nil {
		t.Fatal(err)
	}
	expected := &core.System{Name: "relay", Entities: []core.Entity{
		{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
		{Name: "Relay", Knows: core.Tuple{core.SensID(), core.NonSensData()}},
		{Name: "Server", Knows: core.Tuple{core.NonSensID(), core.SensData()}},
	}}
	if viols := st.CoversExpected(expected); len(viols) != 0 {
		t.Errorf("schema does not cover its own table: %v", viols)
	}
	// Strengthen the table beyond the declarations: must be caught with
	// no run at all.
	expected.Entities[1].Knows = core.Tuple{core.SensID(), core.SensData()}
	viols := st.CoversExpected(expected)
	if len(viols) != 1 || viols[0].Entity != "Relay" {
		t.Errorf("under-declaration not caught: %v", viols)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := relayScenario()
	sc.Waivers = []schema.Waiver{{Role: "Server", Axis: schema.Axis{Kind: core.Data}, Reason: "doc"}}
	data, err := schema.EncodeScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := schema.DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := schema.Derive(sc)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := schema.Derive(back)
	if err != nil {
		t.Fatalf("decoded scenario does not derive: %v", err)
	}
	var r1, r2 bytes.Buffer
	if err := schema.WriteReport(&r1, st1); err != nil {
		t.Fatal(err)
	}
	if err := schema.WriteReport(&r2, st2); err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Errorf("report changed across JSON round trip:\n--- orig ---\n%s\n--- back ---\n%s", r1.String(), r2.String())
	}
}

func TestDecodeScenarioStrict(t *testing.T) {
	if _, err := schema.DecodeScenario([]byte(`{"name":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := schema.DecodeScenario([]byte(`{"name":"x"} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := schema.DecodeScenario([]byte(`{"messages":[{"name":"m","fields":[{"name":"f","label":"nope"}]}]}`)); err == nil {
		t.Error("unknown label accepted")
	}
}

func TestLabelParseRoundTrip(t *testing.T) {
	for _, l := range []schema.Label{schema.Opaque, schema.Routing, schema.Identity, schema.Query, schema.Content} {
		got, err := schema.ParseLabel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLabel(%s) = %v, %v", l, got, err)
		}
	}
	if _, err := schema.ParseLabel("sensitive"); err == nil {
		t.Error("bad label parsed")
	}
}
