package workload

import (
	"testing"
)

func TestBrowsingDeterministicPerSeed(t *testing.T) {
	a, err := NewBrowsing(5, 50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBrowsing(5, 50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Next(3) != b.Next(3) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBrowsingIsHeavyTailed(t *testing.T) {
	b, err := NewBrowsing(7, 100, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const visits = 5000
	for i := 0; i < visits; i++ {
		counts[b.Next(0)]++
	}
	// The single most popular name should carry a large share; the
	// distinct set should be much smaller than the visit count.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < visits/10 {
		t.Errorf("top name has %d of %d visits; distribution not heavy-tailed", max, visits)
	}
	if len(counts) >= visits/2 {
		t.Errorf("%d distinct names for %d visits; no repetition", len(counts), visits)
	}
}

func TestBrowsingUserAffinity(t *testing.T) {
	b, err := NewBrowsing(7, 100, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// Two different users' heavy hitters differ (affinity rotation).
	top := func(user int) string {
		counts := map[string]int{}
		for i := 0; i < 2000; i++ {
			counts[b.Next(user)]++
		}
		best, bestN := "", 0
		for n, c := range counts {
			if c > bestN {
				best, bestN = n, c
			}
		}
		return best
	}
	if top(0) == top(5) {
		t.Error("different users share the same top site; affinity rotation broken")
	}
}

func TestBrowsingErrors(t *testing.T) {
	if _, err := NewBrowsing(1, 0, 1.2); err == nil {
		t.Error("zero names accepted")
	}
	if _, err := NewBrowsing(1, 10, 1.0); err == nil {
		t.Error("skew 1.0 accepted")
	}
}

func TestStreamAndDistinct(t *testing.T) {
	b, err := NewBrowsing(3, 30, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	stream := b.Stream(2, 50)
	if len(stream) != 50 {
		t.Fatalf("stream length = %d", len(stream))
	}
	d := Distinct(stream)
	if len(d) == 0 || len(d) > 50 {
		t.Errorf("distinct = %d", len(d))
	}
}

func TestTelemetryBoundsAndSkew(t *testing.T) {
	tl := NewTelemetry(9, 15)
	counts := map[uint64]int{}
	for i := 0; i < 3000; i++ {
		v := tl.Next()
		if v > 15 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[15] {
		t.Errorf("distribution not right-skewed: P(0)=%d P(15)=%d", counts[0], counts[15])
	}
}

func TestPairsStableAndInRange(t *testing.T) {
	p1 := Pairs(11, 20, 5)
	p2 := Pairs(11, 20, 5)
	if len(p1) != 20 {
		t.Fatalf("pairs = %d", len(p1))
	}
	for s, r := range p1 {
		if p2[s] != r {
			t.Error("pairs not deterministic")
		}
	}
}
