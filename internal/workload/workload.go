// Package workload generates the synthetic user behaviour the
// experiments drive their systems with: Zipf-popular web browsing
// (query/name streams), bounded telemetry values, and communication
// patterns. Centralizing it keeps experiment parameters honest — every
// experiment that needs "realistic browsing" uses the same
// distribution, seeded and deterministic.
//
// Real traces are the substitution documented in DESIGN.md: the paper's
// systems are evaluated against production traffic this module cannot
// ship, so experiments use seeded synthetic equivalents whose shape
// (heavy-tailed popularity, per-user affinity) matches what the
// respective system papers report.
package workload

import (
	"fmt"
	"math/rand"
)

// Browsing generates per-user streams of queried names: global
// popularity is Zipf-distributed and each user has an affinity offset,
// so users revisit their own heavy hitters (which is what makes
// per-resolver profiles identifying in the first place).
type Browsing struct {
	Names []string
	rng   *rand.Rand
	zipf  *rand.Zipf
}

// NewBrowsing creates a browsing workload over nameCount names with
// Zipf skew s (>1; ~1.2 is web-like). Deterministic per seed.
func NewBrowsing(seed int64, nameCount int, s float64) (*Browsing, error) {
	if nameCount <= 0 {
		return nil, fmt.Errorf("workload: nameCount %d", nameCount)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf skew %v must be > 1", s)
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, nameCount)
	for i := range names {
		names[i] = fmt.Sprintf("site%03d.test", i)
	}
	return &Browsing{
		Names: names,
		rng:   rng,
		zipf:  rand.NewZipf(rng, s, 1, uint64(nameCount-1)),
	}, nil
}

// Next returns the next name user visits: rank drawn from the Zipf
// popularity law, rotated by a per-user affinity offset so different
// users have different heavy hitters.
func (b *Browsing) Next(user int) string {
	rank := int(b.zipf.Uint64())
	return b.Names[(rank+user*7)%len(b.Names)]
}

// Stream returns n visits for user.
func (b *Browsing) Stream(user, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = b.Next(user)
	}
	return out
}

// Distinct returns the distinct-name set of a stream.
func Distinct(stream []string) map[string]bool {
	out := map[string]bool{}
	for _, s := range stream {
		out[s] = true
	}
	return out
}

// Telemetry generates bounded integer measurements (crash counts,
// latencies bucketed, etc.) with a right-skewed distribution, for the
// PPM experiments.
type Telemetry struct {
	rng *rand.Rand
	max uint64
}

// NewTelemetry creates a telemetry workload with values in [0, max].
func NewTelemetry(seed int64, max uint64) *Telemetry {
	return &Telemetry{rng: rand.New(rand.NewSource(seed)), max: max}
}

// Next draws one measurement: squaring a uniform variate concentrates
// mass near zero (most devices report few events).
func (t *Telemetry) Next() uint64 {
	f := t.rng.Float64()
	return uint64(f * f * float64(t.max+1) * 0.999)
}

// Pairs generates communication partners for mix-net style experiments:
// each of n senders gets one stable partner among m receivers, with
// heavy hitters.
func Pairs(seed int64, n, m int) map[string]string {
	rng := rand.New(rand.NewSource(seed))
	out := map[string]string{}
	for i := 0; i < n; i++ {
		out[fmt.Sprintf("sender%03d", i)] = fmt.Sprintf("recv%03d", rng.Intn(m))
	}
	return out
}
