package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// This file models when users show up and how long they stay — the
// temporal half of the workload, feeding the transport load generator.
// Request counts alone miss the property that stresses a decoupled
// deployment: arrivals are bursty (Poisson with a heavy head) and
// populations churn, so proxies see a constantly shifting set of
// concurrent clients rather than a fixed cohort.

// Arrivals generates a Poisson arrival process: exponential
// inter-arrival gaps around a mean rate. Deterministic per seed.
type Arrivals struct {
	rng  *rand.Rand
	mean float64 // mean gap in seconds
}

// NewArrivals creates an arrival process averaging ratePerSec events
// per second.
func NewArrivals(seed int64, ratePerSec float64) (*Arrivals, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %v must be > 0", ratePerSec)
	}
	return &Arrivals{rng: rand.New(rand.NewSource(seed)), mean: 1 / ratePerSec}, nil
}

// Next returns the gap until the next arrival: exponentially
// distributed, so arrivals cluster the way independent users do.
func (a *Arrivals) Next() time.Duration {
	gap := a.rng.ExpFloat64() * a.mean
	return time.Duration(gap * float64(time.Second))
}

// Offsets returns the first n arrival times relative to the start of
// the process (cumulative gaps, strictly ordered).
func (a *Arrivals) Offsets(n int) []time.Duration {
	out := make([]time.Duration, n)
	var at time.Duration
	for i := range out {
		at += a.Next()
		out[i] = at
	}
	return out
}

// Sessions generates session lengths and churn: how many requests a
// client issues before departing, log-normal-ish so most sessions are
// short and a heavy tail stays connected through many requests —
// matching the shape proxy operators report.
type Sessions struct {
	rng    *rand.Rand
	median float64
	sigma  float64
}

// NewSessions creates a session-length model with the given median
// request count; sigma controls tail heaviness (0.8 is web-like).
func NewSessions(seed int64, median int, sigma float64) (*Sessions, error) {
	if median < 1 {
		return nil, fmt.Errorf("workload: session median %d must be >= 1", median)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("workload: session sigma %v must be > 0", sigma)
	}
	return &Sessions{rng: rand.New(rand.NewSource(seed)), median: float64(median), sigma: sigma}, nil
}

// Next draws one session length (requests per client, >= 1).
func (s *Sessions) Next() int {
	n := int(math.Round(s.median * math.Exp(s.rng.NormFloat64()*s.sigma)))
	if n < 1 {
		return 1
	}
	return n
}

// Churned reports whether a client departs after a request, given the
// session length drawn for it; convenience for loops that track only a
// remaining-request counter.
func Churned(remaining int) bool { return remaining <= 0 }
