package workload

import (
	"math"
	"testing"
	"time"
)

func TestArrivalsExponentialShape(t *testing.T) {
	a, err := NewArrivals(1, 1000) // 1000/s -> 1ms mean gap
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	var sum time.Duration
	under := 0
	for i := 0; i < n; i++ {
		gap := a.Next()
		if gap < 0 {
			t.Fatalf("negative gap %v", gap)
		}
		sum += gap
		if gap < time.Millisecond {
			under++
		}
	}
	mean := sum / n
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Errorf("mean gap %v, want ~1ms", mean)
	}
	// Memoryless property: P(gap < mean) = 1 - 1/e ~ 0.632.
	frac := float64(under) / n
	if math.Abs(frac-0.632) > 0.02 {
		t.Errorf("P(gap < mean) = %.3f, want ~0.632 (exponential)", frac)
	}
}

func TestArrivalsDeterministicAndOrdered(t *testing.T) {
	a1, _ := NewArrivals(7, 50)
	a2, _ := NewArrivals(7, 50)
	o1, o2 := a1.Offsets(100), a2.Offsets(100)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("offset %d differs across same-seed processes: %v vs %v", i, o1[i], o2[i])
		}
		if i > 0 && o1[i] < o1[i-1] {
			t.Fatalf("offsets not ordered at %d: %v < %v", i, o1[i], o1[i-1])
		}
	}
}

func TestArrivalsRejectsBadRate(t *testing.T) {
	if _, err := NewArrivals(1, 0); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewArrivals(1, -3); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestSessionsShape(t *testing.T) {
	s, err := NewSessions(3, 8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	atOrBelowMedian, tail := 0, 0
	for i := 0; i < n; i++ {
		v := s.Next()
		if v < 1 {
			t.Fatalf("session length %d < 1", v)
		}
		if v <= 8 {
			atOrBelowMedian++
		}
		if v >= 40 { // ~2 sigma above the median in log space
			tail++
		}
	}
	if frac := float64(atOrBelowMedian) / n; math.Abs(frac-0.5) > 0.05 {
		t.Errorf("P(len <= median) = %.3f, want ~0.5", frac)
	}
	if tail == 0 {
		t.Error("no heavy-tail sessions in 50k draws; distribution lost its tail")
	}
}

func TestSessionsDeterministic(t *testing.T) {
	s1, _ := NewSessions(11, 5, 0.8)
	s2, _ := NewSessions(11, 5, 0.8)
	for i := 0; i < 1000; i++ {
		if a, b := s1.Next(), s2.Next(); a != b {
			t.Fatalf("draw %d differs across same-seed models: %d vs %d", i, a, b)
		}
	}
}

func TestSessionsRejectsBadParams(t *testing.T) {
	if _, err := NewSessions(1, 0, 0.8); err == nil {
		t.Error("median 0 accepted")
	}
	if _, err := NewSessions(1, 5, 0); err == nil {
		t.Error("sigma 0 accepted")
	}
}
