package ppm

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §3.2.5 two-aggregator measurement system.
// Each aggregator's upload carries the client's identity next to one
// secret share — individually uniform, so opaque. That the shares
// jointly reconstruct the input is not expressible as any single read:
// it is declared as a SharedSecret over both aggregators, which the
// static coalition closure (and core.Analyze) reconstructs exactly when
// both holders collude. The collector combines partial aggregates whose
// sum is non-sensitive by design, so it reads nothing labeled.
func StaticSchema() *schema.Scenario {
	agg1, agg2 := "Aggregator 1", "Aggregator 2"
	return &schema.Scenario{
		Name:    "ppm",
		System:  "Private Aggregate Statistics (2 aggregators)",
		Section: "3.2.5",
		Doc:     "PPM/Prio-style aggregate statistics: clients split inputs into additive shares across non-colluding aggregators; only the sum ever reassembles.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "ppm_upload",
				Doc:  "one client's report share to one aggregator",
				Fields: []schema.Field{
					{Name: "client_addr", Label: schema.Identity},
					{Name: "input_share", Label: schema.Opaque},
					{Name: "proof_share", Label: schema.Opaque},
				},
			},
			{
				Name: "ppm_verify",
				Doc:  "aggregator-to-aggregator validity exchange (reveals only a verdict)",
				Fields: []schema.Field{
					{Name: "report_id", Label: schema.Routing},
					{Name: "verify_word", Label: schema.Opaque},
				},
			},
			{
				Name: "ppm_aggregate_share",
				Doc:  "one aggregator's partial sum; only the combined total is meaningful, and it is non-sensitive by design",
				Fields: []schema.Field{
					{Name: "agg_name", Label: schema.Routing},
					{Name: "partial_sum", Label: schema.Opaque},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: "ppm_upload", Fields: []string{"client_addr"}}},
			},
			{
				Name: agg1,
				Receives: []schema.Use{
					// Shares and proofs are processed, never read: each is
					// uniform without the other aggregator's half.
					{Message: "ppm_upload", Fields: []string{"client_addr"}},
					{Message: "ppm_verify", Fields: []string{"report_id"}},
				},
				Sends: []schema.Use{
					{Message: "ppm_verify", Fields: []string{"report_id"}},
					{Message: "ppm_aggregate_share", Fields: []string{"agg_name"}},
				},
			},
			{
				Name: agg2,
				Receives: []schema.Use{
					{Message: "ppm_upload", Fields: []string{"client_addr"}},
					{Message: "ppm_verify", Fields: []string{"report_id"}},
				},
				Sends: []schema.Use{
					{Message: "ppm_verify", Fields: []string{"report_id"}},
					{Message: "ppm_aggregate_share", Fields: []string{"agg_name"}},
				},
			},
			{
				Name: "Collector",
				Receives: []schema.Use{
					{Message: "ppm_aggregate_share", Fields: []string{"agg_name"}},
				},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: agg1, Message: "ppm_upload", Handle: "upload"},
			{From: "Client", To: agg2, Message: "ppm_upload", Handle: "upload"},
			{From: agg1, To: agg2, Message: "ppm_verify", Handle: "upload"},
			{From: agg2, To: agg1, Message: "ppm_verify", Handle: "upload"},
			{From: agg1, To: "Collector", Message: "ppm_aggregate_share", Handle: "aggregate"},
			{From: agg2, To: "Collector", Message: "ppm_aggregate_share", Handle: "aggregate"},
		},
		SharedSecrets: []core.SharedSecret{{
			Name:    "input shares",
			Holders: []string{agg1, agg2},
			Yields:  core.SensData(),
		}},
	}
}
