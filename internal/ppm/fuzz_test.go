package ppm

import "testing"

func FuzzUnmarshalReportShare(f *testing.F) {
	shares, err := BuildReport(Task{ID: "fuzz", Type: TaskSum, Bits: 4}, 9, 2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(shares[0].Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := UnmarshalReportShare(data)
		if err != nil {
			return
		}
		back, err := UnmarshalReportShare(rs.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if back.TaskID != rs.TaskID || back.ReportID != rs.ReportID ||
			len(back.X) != len(rs.X) || len(back.Y) != len(rs.Y) {
			t.Fatal("share changed across round trip")
		}
	})
}
