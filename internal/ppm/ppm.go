// Package ppm implements Prio-style privacy-preserving measurement, the
// paper's §3.2.5 private aggregate statistics system and an instance of
// the IETF PPM effort it cites: clients split their input into additive
// secret shares over GF(2^61-1), one per aggregator; non-colluding
// aggregators verify and sum the shares; a collector recombines only the
// aggregate. No party but the client ever holds an individual input.
//
// Supported tasks:
//
//   - Sum: inputs are integers in [0, 2^Bits), encoded as bit vectors;
//     the aggregate is the sum over all clients.
//   - Histogram: inputs are bucket indices, encoded one-hot; the
//     aggregate is the per-bucket count vector.
//
// Report validity runs two linear checks that cost one field element of
// communication per aggregator each: a one-hotness/size check (the sum
// of the encoding's elements opens to exactly 1 for histograms — this
// check is sound, since it is a linear function of the shares) and a
// consistency check on the client's claimed elementwise squares (<r,
// y-x> must open to 0 for a public coin r). The consistency check
// catches corrupted or malformed encodings but, unlike a full Prio
// SNIP, not an adversarial client that crafts y = x; this substitution
// is recorded in DESIGN.md. Gross cheating is additionally bounded at
// decode time (an aggregate exceeding the client count fails).
//
// Uploads can travel through an Oblivious HTTP relay (internal/ohttp),
// the improvement the paper describes, hiding client identities even
// from the aggregators.
package ppm

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"decoupling/internal/dcrypto/field"
	"decoupling/internal/dcrypto/hkdf"
	"decoupling/internal/ledger"
)

// TaskType selects the aggregation.
type TaskType int

// Supported task types.
const (
	TaskSum TaskType = iota
	TaskHistogram
)

// Task describes one measurement.
type Task struct {
	ID   string
	Type TaskType
	// Bits is the input width for TaskSum (values in [0, 2^Bits)).
	Bits int
	// Buckets is the histogram size for TaskHistogram.
	Buckets int
}

// Dim returns the encoding vector length.
func (t Task) Dim() int {
	if t.Type == TaskSum {
		return t.Bits
	}
	return t.Buckets
}

// Errors returned by the protocol.
var (
	ErrInputRange   = errors.New("ppm: input out of range for task")
	ErrShareCount   = errors.New("ppm: wrong number of share bundles")
	ErrDuplicate    = errors.New("ppm: duplicate report id")
	ErrUnknownTask  = errors.New("ppm: unknown task")
	ErrNotVerified  = errors.New("ppm: aggregate requested before verification")
	ErrBogusDecode  = errors.New("ppm: aggregate fails sanity bounds (cheating client?)")
	ErrNoAggregates = errors.New("ppm: collector received no aggregate shares")
)

// ReportShare is the bundle one aggregator receives for one report.
type ReportShare struct {
	TaskID   string
	ReportID string
	X        field.Vector // share of the encoded input
	Y        field.Vector // share of the claimed elementwise squares
}

// Marshal encodes a share bundle for transport (e.g. inside OHTTP).
func (r *ReportShare) Marshal() []byte {
	out := make([]byte, 0, 4+len(r.TaskID)+len(r.ReportID)+8*len(r.X)+8*len(r.Y)+12)
	out = binary.BigEndian.AppendUint16(out, uint16(len(r.TaskID)))
	out = append(out, r.TaskID...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(r.ReportID)))
	out = append(out, r.ReportID...)
	xb := r.X.Marshal()
	out = binary.BigEndian.AppendUint32(out, uint32(len(xb)))
	out = append(out, xb...)
	return append(out, r.Y.Marshal()...)
}

// UnmarshalReportShare decodes a transported share bundle.
func UnmarshalReportShare(data []byte) (*ReportShare, error) {
	r := &ReportShare{}
	if len(data) < 2 {
		return nil, errors.New("ppm: truncated share")
	}
	n := int(binary.BigEndian.Uint16(data))
	data = data[2:]
	if len(data) < n+2 {
		return nil, errors.New("ppm: truncated share")
	}
	r.TaskID = string(data[:n])
	data = data[n:]
	n = int(binary.BigEndian.Uint16(data))
	data = data[2:]
	if len(data) < n+4 {
		return nil, errors.New("ppm: truncated share")
	}
	r.ReportID = string(data[:n])
	data = data[n:]
	n = int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) < n {
		return nil, errors.New("ppm: truncated share")
	}
	var err error
	if r.X, err = field.UnmarshalVector(data[:n]); err != nil {
		return nil, err
	}
	if r.Y, err = field.UnmarshalVector(data[n:]); err != nil {
		return nil, err
	}
	return r, nil
}

// Encode maps an input to its field-vector encoding for the task.
func Encode(task Task, input uint64) (field.Vector, error) {
	switch task.Type {
	case TaskSum:
		if task.Bits <= 0 || task.Bits > 61 || input >= 1<<uint(task.Bits) {
			return nil, ErrInputRange
		}
		v := field.NewVector(task.Bits)
		for i := 0; i < task.Bits; i++ {
			v[i] = field.Elem((input >> uint(i)) & 1)
		}
		return v, nil
	case TaskHistogram:
		if task.Buckets <= 0 || input >= uint64(task.Buckets) {
			return nil, ErrInputRange
		}
		v := field.NewVector(task.Buckets)
		v[input] = 1
		return v, nil
	default:
		return nil, ErrUnknownTask
	}
}

// BuildReport encodes input and splits it into n share bundles, one per
// aggregator, under a fresh random report id.
func BuildReport(task Task, input uint64, n int) ([]*ReportShare, error) {
	x, err := Encode(task, input)
	if err != nil {
		return nil, err
	}
	y := field.NewVector(len(x))
	for i, e := range x {
		y[i] = field.Mul(e, e)
	}
	var idBuf [8]byte
	if _, err := rand.Read(idBuf[:]); err != nil {
		return nil, fmt.Errorf("ppm: report id: %w", err)
	}
	id := hex.EncodeToString(idBuf[:])

	xs, err := x.Split(n)
	if err != nil {
		return nil, err
	}
	ys, err := y.Split(n)
	if err != nil {
		return nil, err
	}
	out := make([]*ReportShare, n)
	for i := 0; i < n; i++ {
		out[i] = &ReportShare{TaskID: task.ID, ReportID: id, X: xs[i], Y: ys[i]}
	}
	return out, nil
}

// publicCoin derives the public random verification vector for a report
// (both checks are linear, so a public coin bound to the report id is
// the standard Fiat-Shamir-style choice).
func publicCoin(task Task, reportID string) field.Vector {
	raw := hkdf.Key(nil, []byte(reportID), []byte("ppm verify coin "+task.ID), 8*task.Dim()+8*16)
	r := field.NewVector(task.Dim())
	off := 0
	for i := range r {
		for {
			if off+8 > len(raw) {
				// Rejection budget exhausted (probability ~2^-61 per
				// draw); fold the last draw deterministically.
				r[i] = field.Reduce(binary.BigEndian.Uint64(raw[len(raw)-8:]))
				break
			}
			v := binary.BigEndian.Uint64(raw[off:]) >> 3
			off += 8
			if v < field.P {
				r[i] = field.Elem(v)
				break
			}
		}
	}
	return r
}

// VerifyWord is an aggregator's opened linear-check contribution for
// one report.
type VerifyWord struct {
	ReportID string
	// Consistency is the share of <coin, Y-X>; the sum over aggregators
	// must open to 0.
	Consistency field.Elem
	// Size is the share of <1, X>; the sum must open to 1 for
	// histograms (sound one-hotness/size check).
	Size field.Elem
}

// Aggregator holds one share of every report and sums accepted shares.
type Aggregator struct {
	Name string
	Task Task
	lg   *ledger.Ledger

	mu       sync.Mutex
	pending  map[string]*ReportShare
	accepted int
	rejected int
	sum      field.Vector
}

// NewAggregator creates an aggregator for the task.
func NewAggregator(name string, task Task, lg *ledger.Ledger) *Aggregator {
	return &Aggregator{
		Name: name, Task: task, lg: lg,
		pending: map[string]*ReportShare{},
		sum:     field.NewVector(task.Dim()),
	}
}

// Upload accepts a share bundle from a party (a client address, or a
// relay). The aggregator observes the uploader's identity and a share
// whose bytes are uniformly random — the ⊙ of the paper's table.
func (a *Aggregator) Upload(from string, share *ReportShare) error {
	if share.TaskID != a.Task.ID {
		return ErrUnknownTask
	}
	if len(share.X) != a.Task.Dim() || len(share.Y) != a.Task.Dim() {
		return fmt.Errorf("ppm: share dimension %d, want %d", len(share.X), a.Task.Dim())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.pending[share.ReportID]; dup {
		return ErrDuplicate
	}
	a.pending[share.ReportID] = share
	if a.lg != nil {
		h := "upload-" + share.ReportID
		a.lg.SawIdentity(a.Name, from, h)
		a.lg.SawData(a.Name, "share:"+ledger.Hash(share.X.Marshal()), h)
	}
	return nil
}

// VerifyShare computes this aggregator's opened check words for one
// pending report.
func (a *Aggregator) VerifyShare(reportID string) (VerifyWord, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	share, ok := a.pending[reportID]
	if !ok {
		return VerifyWord{}, fmt.Errorf("ppm: no pending report %q", reportID)
	}
	coin := publicCoin(a.Task, reportID)
	var consistency, size field.Elem
	for i := range share.X {
		consistency = field.Add(consistency, field.Mul(coin[i], field.Sub(share.Y[i], share.X[i])))
		size = field.Add(size, share.X[i])
	}
	return VerifyWord{ReportID: reportID, Consistency: consistency, Size: size}, nil
}

// Commit finalizes a verified report: accept sums the X share into the
// aggregate; reject discards it.
func (a *Aggregator) Commit(reportID string, accept bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	share, ok := a.pending[reportID]
	if !ok {
		return
	}
	delete(a.pending, reportID)
	if !accept {
		a.rejected++
		return
	}
	a.sum.AddInto(share.X)
	a.accepted++
}

// Counts reports accepted and rejected report totals.
func (a *Aggregator) Counts() (accepted, rejected int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.accepted, a.rejected
}

// AggregateShare returns the sum of accepted shares — the only thing
// the collector ever receives from this aggregator.
func (a *Aggregator) AggregateShare() field.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := field.NewVector(len(a.sum))
	copy(out, a.sum)
	return out
}

// Collector recombines aggregate shares and decodes the result.
type Collector struct {
	Name string
	Task Task
	lg   *ledger.Ledger
}

// NewCollector creates a collector for the task.
func NewCollector(name string, task Task, lg *ledger.Ledger) *Collector {
	return &Collector{Name: name, Task: task, lg: lg}
}

// Collect recombines the aggregators' aggregate shares. reports is the
// number of accepted reports, used for the decode-time sanity bound.
// For TaskSum it returns a single total; for TaskHistogram the
// per-bucket counts.
func (c *Collector) Collect(shares []field.Vector, reports int) ([]uint64, error) {
	if len(shares) == 0 {
		return nil, ErrNoAggregates
	}
	agg, err := field.Recombine(shares)
	if err != nil {
		return nil, err
	}
	if c.lg != nil {
		for i := range shares {
			c.lg.SawIdentity(c.Name, fmt.Sprintf("aggregator-%d", i), "aggregate")
		}
		c.lg.SawData(c.Name, "aggregate:"+ledger.Hash(agg.Marshal()), "aggregate")
	}
	switch c.Task.Type {
	case TaskSum:
		var total uint64
		for i, e := range agg {
			if uint64(e) > uint64(reports) {
				return nil, ErrBogusDecode
			}
			total += uint64(e) << uint(i)
		}
		return []uint64{total}, nil
	case TaskHistogram:
		out := make([]uint64, len(agg))
		var sum uint64
		for i, e := range agg {
			if uint64(e) > uint64(reports) {
				return nil, ErrBogusDecode
			}
			out[i] = uint64(e)
			sum += uint64(e)
		}
		if sum != uint64(reports) {
			return nil, ErrBogusDecode
		}
		return out, nil
	default:
		return nil, ErrUnknownTask
	}
}

// System wires clients, n aggregators, and a collector for one task —
// the convenience used by experiments and examples.
type System struct {
	Task        Task
	Aggregators []*Aggregator
	Collector   *Collector

	mu       sync.Mutex
	pending  []string
	accepted int
}

// NewSystem builds a complete PPM deployment with n aggregators.
// Aggregator entity names follow the paper's table ("Aggregator" when
// n == 1, else "Aggregator i").
func NewSystem(task Task, n int, lg *ledger.Ledger) *System {
	s := &System{Task: task, Collector: NewCollector("Collector", task, lg)}
	for i := 1; i <= n; i++ {
		name := "Aggregator"
		if n > 1 {
			name = fmt.Sprintf("Aggregator %d", i)
		}
		s.Aggregators = append(s.Aggregators, NewAggregator(name, task, lg))
	}
	return s
}

// Upload builds and distributes a report for input on behalf of
// clientID; each aggregator sees the uploader identity as clientID (the
// paper-table direct path — see UploadVia for the OHTTP variant).
func (s *System) Upload(clientID string, input uint64) (string, error) {
	shares, err := BuildReport(s.Task, input, len(s.Aggregators))
	if err != nil {
		return "", err
	}
	for i, a := range s.Aggregators {
		if err := a.Upload(clientID, shares[i]); err != nil {
			return "", err
		}
	}
	s.mu.Lock()
	s.pending = append(s.pending, shares[0].ReportID)
	s.mu.Unlock()
	return shares[0].ReportID, nil
}

// UploadVia distributes a report where each aggregator's share arrives
// from the named relay instead of the client (the §3.2.5 OHTTP
// improvement: aggregators drop from ▲ to △).
func (s *System) UploadVia(relayName, clientID string, input uint64) (string, error) {
	shares, err := BuildReport(s.Task, input, len(s.Aggregators))
	if err != nil {
		return "", err
	}
	for i, a := range s.Aggregators {
		if err := a.Upload(relayName, shares[i]); err != nil {
			return "", err
		}
	}
	s.mu.Lock()
	s.pending = append(s.pending, shares[0].ReportID)
	s.mu.Unlock()
	return shares[0].ReportID, nil
}

// VerifyAll runs the linear checks for every pending report and commits
// accept/reject at every aggregator. It returns (accepted, rejected).
func (s *System) VerifyAll() (int, int) {
	s.mu.Lock()
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()

	accepted, rejected := 0, 0
	for _, id := range pending {
		var consistency, size field.Elem
		ok := true
		for _, a := range s.Aggregators {
			w, err := a.VerifyShare(id)
			if err != nil {
				ok = false
				break
			}
			consistency = field.Add(consistency, w.Consistency)
			size = field.Add(size, w.Size)
		}
		if ok && consistency != 0 {
			ok = false
		}
		if ok && s.Task.Type == TaskHistogram && size != 1 {
			ok = false
		}
		for _, a := range s.Aggregators {
			a.Commit(id, ok)
		}
		if ok {
			accepted++
		} else {
			rejected++
		}
	}
	s.mu.Lock()
	s.accepted += accepted
	s.mu.Unlock()
	return accepted, rejected
}

// Aggregate runs collection over all accepted reports.
func (s *System) Aggregate() ([]uint64, error) {
	s.mu.Lock()
	if len(s.pending) > 0 {
		s.mu.Unlock()
		return nil, ErrNotVerified
	}
	n := s.accepted
	s.mu.Unlock()
	shares := make([]field.Vector, len(s.Aggregators))
	for i, a := range s.Aggregators {
		shares[i] = a.AggregateShare()
	}
	return s.Collector.Collect(shares, n)
}
