package ppm

import (
	"fmt"
	"testing"
	"testing/quick"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/dcrypto/field"
	"decoupling/internal/ledger"
)

var sumTask = Task{ID: "sum8", Type: TaskSum, Bits: 8}
var histTask = Task{ID: "hist8", Type: TaskHistogram, Buckets: 8}

func TestSumAggregation(t *testing.T) {
	s := NewSystem(sumTask, 2, nil)
	inputs := []uint64{0, 1, 5, 200, 255, 42}
	var want uint64
	for i, v := range inputs {
		if _, err := s.Upload(fmt.Sprintf("client-%d", i), v); err != nil {
			t.Fatal(err)
		}
		want += v
	}
	acc, rej := s.VerifyAll()
	if acc != len(inputs) || rej != 0 {
		t.Fatalf("verify: accepted=%d rejected=%d", acc, rej)
	}
	got, err := s.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want {
		t.Errorf("sum = %d, want %d", got[0], want)
	}
}

func TestHistogramAggregation(t *testing.T) {
	s := NewSystem(histTask, 3, nil)
	buckets := []uint64{0, 1, 1, 3, 7, 7, 7}
	for i, b := range buckets {
		if _, err := s.Upload(fmt.Sprintf("client-%d", i), b); err != nil {
			t.Fatal(err)
		}
	}
	s.VerifyAll()
	got, err := s.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 0, 1, 0, 0, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAggregationAcrossAggregatorCounts(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		s := NewSystem(sumTask, n, nil)
		for i := 0; i < 10; i++ {
			if _, err := s.Upload(fmt.Sprintf("c%d", i), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		s.VerifyAll()
		got, err := s.Aggregate()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got[0] != 45 {
			t.Errorf("n=%d: sum = %d, want 45", n, got[0])
		}
	}
}

func TestInputRangeRejected(t *testing.T) {
	s := NewSystem(sumTask, 2, nil)
	if _, err := s.Upload("c", 256); err != ErrInputRange {
		t.Errorf("err = %v", err)
	}
	h := NewSystem(histTask, 2, nil)
	if _, err := h.Upload("c", 8); err != ErrInputRange {
		t.Errorf("err = %v", err)
	}
}

func TestAggregateBeforeVerifyRejected(t *testing.T) {
	s := NewSystem(sumTask, 2, nil)
	if _, err := s.Upload("c", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Aggregate(); err != ErrNotVerified {
		t.Errorf("err = %v", err)
	}
}

// TestCorruptedShareRejected: flip one element of one aggregator's X
// share — the consistency check must catch it.
func TestCorruptedShareRejected(t *testing.T) {
	aggs := []*Aggregator{NewAggregator("A1", sumTask, nil), NewAggregator("A2", sumTask, nil)}
	shares, err := BuildReport(sumTask, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	shares[1].X[0] = field.Add(shares[1].X[0], 1) // corruption in flight
	for i, a := range aggs {
		if err := a.Upload("c", shares[i]); err != nil {
			t.Fatal(err)
		}
	}
	var consistency field.Elem
	for _, a := range aggs {
		w, err := a.VerifyShare(shares[0].ReportID)
		if err != nil {
			t.Fatal(err)
		}
		consistency = field.Add(consistency, w.Consistency)
	}
	if consistency == 0 {
		t.Error("corrupted share passed the consistency check")
	}
}

// TestNonOneHotHistogramRejected: a histogram report claiming two
// buckets fails the sound size check.
func TestNonOneHotHistogramRejected(t *testing.T) {
	s := NewSystem(histTask, 2, nil)
	// Build a malicious two-hot encoding by hand.
	x := field.NewVector(histTask.Buckets)
	x[2], x[5] = 1, 1
	y := field.NewVector(len(x))
	for i, e := range x {
		y[i] = field.Mul(e, e)
	}
	xs, _ := x.Split(2)
	ys, _ := y.Split(2)
	for i, a := range s.Aggregators {
		if err := a.Upload("cheater", &ReportShare{TaskID: histTask.ID, ReportID: "evil-report", X: xs[i], Y: ys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	s.pending = append(s.pending, "evil-report")
	acc, rej := s.VerifyAll()
	if acc != 0 || rej != 1 {
		t.Errorf("two-hot report: accepted=%d rejected=%d", acc, rej)
	}
}

func TestDuplicateReportRejected(t *testing.T) {
	a := NewAggregator("A", sumTask, nil)
	shares, err := BuildReport(sumTask, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Upload("c", shares[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Upload("c", shares[0]); err != ErrDuplicate {
		t.Errorf("err = %v", err)
	}
}

func TestWrongTaskRejected(t *testing.T) {
	a := NewAggregator("A", sumTask, nil)
	shares, err := BuildReport(histTask, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Upload("c", shares[0]); err != ErrUnknownTask {
		t.Errorf("err = %v", err)
	}
}

func TestReportShareMarshalRoundTrip(t *testing.T) {
	shares, err := BuildReport(sumTask, 99, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReportShare(shares[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.TaskID != shares[0].TaskID || got.ReportID != shares[0].ReportID {
		t.Errorf("ids = %q/%q", got.TaskID, got.ReportID)
	}
	for i := range got.X {
		if got.X[i] != shares[0].X[i] || got.Y[i] != shares[0].Y[i] {
			t.Fatalf("element %d mismatch", i)
		}
	}
}

func TestUnmarshalReportShareFuzzSafety(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = UnmarshalReportShare(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSharesHideInput: any single aggregator's view of two different
// inputs is identically distributed; smoke-test by checking a share of
// input 0 is not all zeros.
func TestSharesHideInput(t *testing.T) {
	shares, err := BuildReport(sumTask, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	allZero := true
	for _, e := range shares[0].X {
		if e != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("share of zero input is all zeros; shares do not hide the input")
	}
}

// Property: sum aggregation is exact for random input sets.
func TestSumExactProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		s := NewSystem(sumTask, 2, nil)
		var want uint64
		for i, v := range raw {
			if _, err := s.Upload(fmt.Sprintf("c%d", i), uint64(v)); err != nil {
				return false
			}
			want += uint64(v)
		}
		s.VerifyAll()
		got, err := s.Aggregate()
		return err == nil && got[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDecouplingTable reproduces the paper's §3.2.5 table (direct
// uploads, so the aggregator sees client identities: ▲).
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	s := NewSystem(sumTask, 2, lg)
	for i := 0; i < 8; i++ {
		who := fmt.Sprintf("client-%d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		// The sensitive datum is the client's individual value; it never
		// appears as a value anywhere, so no RegisterData is needed —
		// shares are unregistered (non-sensitive) strings.
		if _, err := s.Upload(who, uint64(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	s.VerifyAll()
	if _, err := s.Aggregate(); err != nil {
		t.Fatal(err)
	}

	expected := core.PPM(2)
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("measured system not decoupled: %s", v)
	}
}

// TestNoEntityObservesInputs: the load-bearing negative — no observation
// by any aggregator or the collector ever contains a client's input
// value in the clear.
func TestNoEntityObservesInputs(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	s := NewSystem(sumTask, 3, lg)
	secret := uint64(123)
	cls.RegisterData(fmt.Sprint(secret), "alice", "", core.Sensitive)
	if _, err := s.Upload("alice", secret); err != nil {
		t.Fatal(err)
	}
	s.VerifyAll()
	if _, err := s.Aggregate(); err != nil {
		t.Fatal(err)
	}
	for _, o := range lg.Observations() {
		if o.Kind == core.Data && o.Level > core.NonSensitive {
			t.Errorf("entity %s observed sensitive data: %+v", o.Observer, o)
		}
	}
}

// TestOHTTPVariantHidesIdentity: with uploads via a relay the
// aggregators drop to △ — the paper's OHTTP improvement, measured.
func TestOHTTPVariantHidesIdentity(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	s := NewSystem(sumTask, 2, lg)
	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("client-%d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		if _, err := s.UploadVia("ohttp-relay", who, 1); err != nil {
			t.Fatal(err)
		}
	}
	s.VerifyAll()
	for _, a := range s.Aggregators {
		tuple := lg.DeriveTuple(a.Name, core.Tuple{core.NonSensID(), core.NonSensData()})
		if !tuple.Equal(core.Tuple{core.NonSensID(), core.NonSensData()}) {
			t.Errorf("%s tuple = %s, want (△, ⊙) via relay", a.Name, tuple.Symbol())
		}
	}
}

// TestCollusionRequiresAllAggregators mirrors the SharedSecret model:
// the ledger-level linkage engine cannot see share recombination (that
// is algebra, not record joining), so this is checked at the structural
// level in core; here we confirm aggregate correctness is unaffected by
// which aggregator subsets exist.
func TestPartialAggregateSharesAreGarbage(t *testing.T) {
	s := NewSystem(sumTask, 3, nil)
	for i := 0; i < 5; i++ {
		if _, err := s.Upload(fmt.Sprintf("c%d", i), 10); err != nil {
			t.Fatal(err)
		}
	}
	s.VerifyAll()
	// Recombining only 2 of 3 aggregate shares yields nonsense (with
	// overwhelming probability, fails the decode bound).
	shares := []field.Vector{s.Aggregators[0].AggregateShare(), s.Aggregators[1].AggregateShare()}
	if _, err := s.Collector.Collect(shares, 5); err == nil {
		t.Error("partial share set decoded successfully; shares do not hide the aggregate")
	}
	// All three decode exactly.
	shares = append(shares, s.Aggregators[2].AggregateShare())
	got, err := s.Collector.Collect(shares, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 50 {
		t.Errorf("sum = %d, want 50", got[0])
	}
}

func TestLinkageEngineOnLedger(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	s := NewSystem(sumTask, 2, lg)
	cls.RegisterIdentity("alice", "alice", "", core.Sensitive)
	if _, err := s.Upload("alice", 7); err != nil {
		t.Fatal(err)
	}
	s.VerifyAll()
	// Even full collusion of aggregators + collector cannot link alice
	// to any sensitive data record, because no such record exists —
	// the data never leaves the client in recognizable form.
	res := adversary.LinkSubjects(lg.Observations(), []string{"Aggregator 1", "Aggregator 2", "Collector"})
	if adversary.LinkageRate(res) != 0 {
		t.Error("ledger linkage found sensitive data records that should not exist")
	}
}

func BenchmarkUploadVerifyAggregate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSystem(sumTask, 2, nil)
		for j := 0; j < 16; j++ {
			if _, err := s.Upload(fmt.Sprintf("c%d", j), uint64(j)); err != nil {
				b.Fatal(err)
			}
		}
		s.VerifyAll()
		if _, err := s.Aggregate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildReport(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildReport(histTask, 3, 2); err != nil {
			b.Fatal(err)
		}
	}
}
