package onion

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/simnet"
)

func buildPath(t testing.TB, net simnet.Transport, hops int, lg *ledger.Ledger) ([]RelayInfo, []*Relay, *Origin) {
	t.Helper()
	var infos []RelayInfo
	var relays []*Relay
	for i := 1; i <= hops; i++ {
		name := fmt.Sprintf("Relay %d", i)
		r, err := NewRelay(net, name, simnet.Addr(fmt.Sprintf("relay%d", i)), lg)
		if err != nil {
			t.Fatal(err)
		}
		relays = append(relays, r)
		infos = append(infos, r.Info())
	}
	origin := NewOrigin(net, "Origin", "origin", 256, lg)
	return infos, relays, origin
}

func TestRequestResponseThreeHops(t *testing.T) {
	net := simnet.New(1)
	infos, _, origin := buildPath(t, net, 3, nil)
	client := NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	if err := circ.Request("origin", []byte("GET /page")); err != nil {
		t.Fatal(err)
	}
	net.Run()

	if got := origin.Requests(); len(got) != 1 || got[0] != "GET /page" {
		t.Fatalf("origin requests = %v", got)
	}
	resps := client.Responses()
	if len(resps) != 1 {
		t.Fatalf("responses = %d", len(resps))
	}
	if !strings.HasPrefix(string(resps[0].Body), "response to: GET /page") {
		t.Errorf("response body = %q", resps[0].Body[:40])
	}
}

func TestSingleHopWorks(t *testing.T) {
	net := simnet.New(1)
	infos, _, origin := buildPath(t, net, 1, nil)
	client := NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	if err := circ.Request("origin", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(origin.Requests()) != 1 || len(client.Responses()) != 1 {
		t.Fatalf("requests=%d responses=%d", len(origin.Requests()), len(client.Responses()))
	}
}

func TestMultiCellResponse(t *testing.T) {
	net := simnet.New(1)
	var infos []RelayInfo
	for i := 1; i <= 2; i++ {
		r, err := NewRelay(net, fmt.Sprintf("Relay %d", i), simnet.Addr(fmt.Sprintf("relay%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, r.Info())
	}
	// Response larger than one cell: 1200 bytes over MaxData=497.
	NewOrigin(net, "Origin", "origin", 1200, nil)
	client := NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	if err := circ.Request("origin", []byte("big")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	total := 0
	for _, r := range client.Responses() {
		total += len(r.Body)
	}
	if total != 1200 {
		t.Errorf("reassembled %d bytes, want 1200", total)
	}
}

func TestAllCellsAreFixedSize(t *testing.T) {
	net := simnet.New(1)
	infos, _, _ := buildPath(t, net, 3, nil)
	client := NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	preCells := len(net.Capture())
	circ.Request("origin", []byte("short"))
	circ.Request("origin", []byte(strings.Repeat("long request ", 30)))
	circ.SendChaff()
	net.Run()
	for _, rec := range net.Capture()[preCells:] {
		// Cell traffic between client and relays must be uniform; only
		// exit<->origin plaintext legs differ.
		if strings.HasPrefix(string(rec.Src), "relay") && rec.Dst == "origin" {
			continue
		}
		if rec.Src == "origin" {
			continue
		}
		if rec.Size != 1+CellSize {
			t.Errorf("non-uniform cell %s->%s size %d", rec.Src, rec.Dst, rec.Size)
		}
	}
}

func TestChaffAbsorbedAtExit(t *testing.T) {
	net := simnet.New(1)
	infos, _, origin := buildPath(t, net, 2, nil)
	client := NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	for i := 0; i < 5; i++ {
		if err := circ.SendChaff(); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	if len(origin.Requests()) != 0 {
		t.Errorf("chaff reached the origin: %v", origin.Requests())
	}
	if len(client.Responses()) != 0 {
		t.Errorf("chaff produced responses")
	}
}

func TestRequestTooLong(t *testing.T) {
	net := simnet.New(1)
	infos, _, _ := buildPath(t, net, 1, nil)
	client := NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	if err := circ.Request("origin", make([]byte, MaxData)); err != ErrTooLong {
		t.Errorf("oversized request error = %v", err)
	}
}

func TestUnknownCircuitCellsDropped(t *testing.T) {
	net := simnet.New(1)
	infos, relays, _ := buildPath(t, net, 1, nil)
	_ = infos
	bogus := make([]byte, 1+CellSize)
	bogus[0] = wireCell
	net.Send("attacker", relays[0].Addr, bogus)
	net.Run()
	if relays[0].Dropped() != 1 {
		t.Errorf("dropped = %d", relays[0].Dropped())
	}
}

// TestLatencyGrowsLinearlyWithHops is the §4.2 cost half of "degrees of
// decoupling": each extra hop adds ~2 link latencies to the round trip.
func TestLatencyGrowsLinearlyWithHops(t *testing.T) {
	rtt := func(hops int) time.Duration {
		net := simnet.New(1) // default 10ms links
		infos, _, _ := buildPath(t, net, hops, nil)
		client := NewClient(net, "alice")
		circ, err := client.BuildCircuit(infos)
		if err != nil {
			t.Fatal(err)
		}
		net.Run()
		start := net.Now()
		circ.Request("origin", []byte("r"))
		net.Run()
		resps := client.Responses()
		if len(resps) != 1 {
			t.Fatalf("hops=%d responses=%d", hops, len(resps))
		}
		return resps[0].Time - start
	}
	r1, r3, r5 := rtt(1), rtt(3), rtt(5)
	if r3 != r1+2*2*10*time.Millisecond {
		t.Errorf("rtt(3) = %v, want rtt(1)+40ms = %v", r3, r1+40*time.Millisecond)
	}
	if r5 != r3+2*2*10*time.Millisecond {
		t.Errorf("rtt(5) = %v, want rtt(3)+40ms = %v", r5, r3+40*time.Millisecond)
	}
}

// TestDecouplingStructure: entry knows the client (▲,⊙); exit sees the
// request (△,●); partial coalitions without the middle relay cannot
// link, the full path can.
func TestDecouplingStructure(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	net := simnet.New(3)
	infos, _, _ := buildPath(t, net, 3, lg)

	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("client%d", i)
		req := fmt.Sprintf("GET /secret/%d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(req, who, "", core.Sensitive)
		client := NewClient(net, simnet.Addr(who))
		circ, err := client.BuildCircuit(infos)
		if err != nil {
			t.Fatal(err)
		}
		net.Run()
		if err := circ.Request("origin", []byte(req)); err != nil {
			t.Fatal(err)
		}
		net.Run()
	}
	obs := lg.Observations()

	entry := lg.DeriveTuple("Relay 1", core.Tuple{core.NonSensID(), core.NonSensData()})
	if !entry.Equal(core.Tuple{core.SensID(), core.NonSensData()}) {
		t.Errorf("entry relay tuple = %s, want (▲, ⊙)", entry.Symbol())
	}
	exitTuple := lg.DeriveTuple("Relay 3", core.Tuple{core.NonSensID(), core.NonSensData()})
	if !exitTuple.Equal(core.Tuple{core.NonSensID(), core.SensData()}) {
		t.Errorf("exit relay tuple = %s, want (△, ●)", exitTuple.Symbol())
	}

	res := adversary.LinkSubjects(obs, []string{"Relay 1", "Relay 3"})
	if rate := adversary.LinkageRate(res); rate != 0 {
		t.Errorf("entry+exit linked %.0f%% without the middle relay", rate*100)
	}
	res = adversary.LinkSubjects(obs, []string{"Relay 1", "Relay 2", "Relay 3"})
	if rate := adversary.LinkageRate(res); rate != 1 {
		t.Errorf("full path collusion linked %.0f%%, want 100%%", rate*100)
	}
}

func TestBuildCircuitEmptyRelays(t *testing.T) {
	net := simnet.New(1)
	client := NewClient(net, "alice")
	if _, err := client.BuildCircuit(nil); err == nil {
		t.Error("empty circuit accepted")
	}
}

func BenchmarkRequestResponse3Hop(b *testing.B) {
	net := simnet.New(1)
	infos, _, _ := buildPath(b, net, 3, nil)
	client := NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		b.Fatal(err)
	}
	net.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := circ.Request("origin", []byte("GET /bench")); err != nil {
			b.Fatal(err)
		}
		net.Run()
	}
}

func TestScheduleChaff(t *testing.T) {
	net := simnet.New(1)
	infos, _, origin := buildPath(t, net, 2, nil)
	client := NewClient(net, "alice")
	circ, err := client.BuildCircuit(infos)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	pre := net.Delivered()
	circ.ScheduleChaff(10*time.Millisecond, 5)
	net.Run()
	// 5 chaff cells, 2 hops each = 10 deliveries; none reach the origin.
	if got := net.Delivered() - pre; got != 10 {
		t.Errorf("chaff deliveries = %d, want 10", got)
	}
	if len(origin.Requests()) != 0 {
		t.Errorf("chaff leaked to origin: %v", origin.Requests())
	}
	// Zero count is a no-op.
	circ.ScheduleChaff(time.Millisecond, 0)
	net.Run()
}
