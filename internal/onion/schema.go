package onion

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the three-hop low-latency circuit (§3.1.2 via
// §4.2's degrees-of-decoupling discussion). Per-hop cells carry the
// previous hop's address and a layered body; each relay's key opens
// exactly one layer, which exposes the next hop — except at the exit,
// where the innermost layer is the plaintext request and the origin
// address. The derivation makes the Tor trade explicit: the exit relay
// is (△, ●), and the chained circuit handles mean full collusion
// re-couples the path.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "onion",
		System:  "Onion routing (3 relays)",
		Section: "3.1.2",
		Doc:     "Tor-style onion routing: fixed-size cells shed one encryption layer per relay; the entry knows the client, the exit knows the request, nobody knows both.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "onion_cell1",
				Doc:  "cell on the client→entry leg",
				Fields: []schema.Field{
					{Name: "client_addr", Label: schema.Identity},
					{Name: "circuit_id", Label: schema.Routing},
					{Name: "body", Label: schema.Opaque, Encapsulates: "onion_layer1", Openers: []string{"Relay 1"}},
				},
			},
			{
				Name: "onion_layer1",
				Fields: []schema.Field{
					{Name: "next_hop", Label: schema.Routing},
					{Name: "inner", Label: schema.Opaque, Encapsulates: "onion_layer2", Openers: []string{"Relay 2"}},
				},
			},
			{
				Name: "onion_cell2",
				Fields: []schema.Field{
					{Name: "relay_addr", Label: schema.Routing},
					{Name: "circuit_id", Label: schema.Routing},
					{Name: "body", Label: schema.Opaque, Encapsulates: "onion_layer2", Openers: []string{"Relay 2"}},
				},
			},
			{
				Name: "onion_layer2",
				Fields: []schema.Field{
					{Name: "next_hop", Label: schema.Routing},
					{Name: "inner", Label: schema.Opaque, Encapsulates: "onion_exit", Openers: []string{"Relay 3"}},
				},
			},
			{
				Name: "onion_cell3",
				Fields: []schema.Field{
					{Name: "relay_addr", Label: schema.Routing},
					{Name: "circuit_id", Label: schema.Routing},
					{Name: "body", Label: schema.Opaque, Encapsulates: "onion_exit", Openers: []string{"Relay 3"}},
				},
			},
			{
				Name: "onion_exit",
				Doc:  "the innermost layer: the plaintext stream the exit relays to the origin",
				Fields: []schema.Field{
					{Name: "origin_addr", Label: schema.Routing},
					{Name: "request", Label: schema.Query},
				},
			},
			{
				Name: "origin_stream",
				Doc:  "the exit's plaintext connection to the origin",
				Fields: []schema.Field{
					{Name: "exit_addr", Label: schema.Routing},
					{Name: "request", Label: schema.Query},
				},
			},
			{
				Name: "origin_reply",
				Fields: []schema.Field{
					{Name: "body", Label: schema.Content},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: "onion_cell1", Fields: []string{"client_addr", "circuit_id"}}},
			},
			{
				Name: "Relay 1",
				Receives: []schema.Use{
					{Message: "onion_cell1", Fields: []string{"client_addr", "circuit_id", "body"}},
					{Message: "onion_layer1", Fields: []string{"next_hop"}},
				},
				Sends: []schema.Use{{Message: "onion_cell2", Fields: []string{"relay_addr", "circuit_id"}}},
			},
			{
				Name: "Relay 2",
				Receives: []schema.Use{
					{Message: "onion_cell2", Fields: []string{"relay_addr", "circuit_id", "body"}},
					{Message: "onion_layer2", Fields: []string{"next_hop"}},
				},
				Sends: []schema.Use{{Message: "onion_cell3", Fields: []string{"relay_addr", "circuit_id"}}},
			},
			{
				Name: "Relay 3",
				Receives: []schema.Use{
					{Message: "onion_cell3", Fields: []string{"relay_addr", "circuit_id", "body"}},
					{Message: "onion_exit", Fields: []string{"origin_addr", "request"}},
					{Message: "origin_reply", Fields: []string{"body"}},
				},
				Sends: []schema.Use{{Message: "origin_stream", Fields: []string{"exit_addr", "request"}}},
			},
			{
				Name: "Origin",
				Receives: []schema.Use{
					{Message: "origin_stream", Fields: []string{"exit_addr", "request"}},
				},
				Sends: []schema.Use{{Message: "origin_reply", Fields: []string{"body"}}},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: "Relay 1", Message: "onion_cell1", Handle: "hop1"},
			{From: "Relay 1", To: "Relay 2", Message: "onion_cell2", Handle: "hop2"},
			{From: "Relay 2", To: "Relay 3", Message: "onion_cell3", Handle: "hop3"},
			{From: "Relay 3", To: "Origin", Message: "origin_stream", Handle: "origin-conn"},
			{From: "Origin", To: "Relay 3", Message: "origin_reply", Handle: "origin-conn"},
		},
	}
}
