// Package onion implements real-time onion routing in the style of
// Tor (the paper's §3.1.2): clients build circuits through a set of
// relays, and request/response traffic flows as fixed-size cells with
// one encryption layer per hop in each direction.
//
// Where the mixnet package models Chaum's store-and-shuffle design,
// this package models the low-latency variant the paper discusses under
// "degrees of decoupling" (§4.2: more hops, more cost) and "deployment
// considerations" (§4.3: fixed 512-byte cells and optional chaff against
// traffic analysis). Circuit setup uses HPKE to place a symmetric key at
// each relay; data cells use per-hop AES-CTR layers so cell size is
// invariant across hops, as in Tor.
package onion

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"decoupling/internal/dcrypto/hpke"
	"decoupling/internal/ledger"
	"decoupling/internal/resilience"
	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
)

// Cell geometry. Every cell on the wire is exactly CellSize bytes:
// a 4-byte circuit id, an 8-byte sequence number, and the body.
const (
	CellSize     = 512
	cellHeader   = 12
	CellBodySize = CellSize - cellHeader
	// MaxData is the application payload a single cell can carry (the
	// body minus the 1-byte command and 2-byte length framing).
	MaxData = CellBodySize - 3
)

// Cell commands (encrypted, visible only after all layers are removed).
const (
	cmdData  byte = 0
	cmdChaff byte = 1
)

// Directions for keystream derivation.
const (
	dirForward  byte = 0
	dirBackward byte = 1
)

var (
	// ErrTooLong is returned when a payload exceeds MaxData.
	ErrTooLong = errors.New("onion: payload exceeds cell capacity")
	// ErrNoCircuit is returned for cells on unknown circuit ids.
	ErrNoCircuit = errors.New("onion: unknown circuit")
)

const setupInfo = "decoupling onion setup"

// RelayInfo is a relay's directory entry.
type RelayInfo struct {
	Name   string
	Addr   simnet.Addr
	PubKey []byte
}

// keystream XORs one onion layer in place over body.
func applyLayer(key []byte, dir byte, seq uint64, body []byte) {
	block, err := aes.NewCipher(key)
	if err != nil {
		// Keys are always 16 bytes by construction.
		panic(fmt.Sprintf("onion: bad layer key: %v", err))
	}
	var iv [16]byte
	iv[0] = dir
	binary.BigEndian.PutUint64(iv[1:9], seq)
	cipher.NewCTR(block, iv[:]).XORKeyStream(body, body)
}

type circuitEntry struct {
	key      []byte
	cidOut   uint32
	next     simnet.Addr
	prev     simnet.Addr
	exit     bool
	backSeq  uint64
	cidIn    uint32
	originAd simnet.Addr // unused on non-exit relays
}

// Relay is an onion router. The same type serves as middle and exit
// node depending on the circuit's setup layer.
type Relay struct {
	Name string
	Addr simnet.Addr
	kp   *hpke.KeyPair
	lg   *ledger.Ledger
	tel  *telemetry.Telemetry

	circuits map[uint32]*circuitEntry
	// byOut maps outbound circuit ids back to entries for the return
	// path.
	byOut   map[uint32]*circuitEntry
	dropped int
}

// NewRelay creates a relay and registers it on the network.
func NewRelay(net simnet.Transport, name string, addr simnet.Addr, lg *ledger.Ledger) (*Relay, error) {
	kp, err := hpke.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("onion: relay key: %w", err)
	}
	r := &Relay{
		Name: name, Addr: addr, kp: kp, lg: lg,
		circuits: map[uint32]*circuitEntry{},
		byOut:    map[uint32]*circuitEntry{},
	}
	net.Register(addr, r.handle)
	return r, nil
}

// Info returns the relay's directory entry.
func (r *Relay) Info() RelayInfo {
	return RelayInfo{Name: r.Name, Addr: r.Addr, PubKey: r.kp.PublicKey()}
}

// Instrument attaches a telemetry sink: setup, cell-relay, and exit
// handling each open a span. Handlers run inside the simulator's
// delivery span, so a circuit's hops appear as a nested chain. Circuit
// ids never appear in attributes — they come from crypto/rand and would
// break trace determinism.
func (r *Relay) Instrument(tel *telemetry.Telemetry) { r.tel = tel }

// Dropped reports cells discarded for malformed framing or unknown
// circuits.
func (r *Relay) Dropped() int { return r.dropped }

// Message kinds on the wire, prefixed to every simnet payload.
const (
	wireSetup byte = 0
	wireCell  byte = 1
	wireExitQ byte = 2 // exit -> origin plaintext request
	wireExitR byte = 3 // origin -> exit plaintext response
)

func (r *Relay) handle(net simnet.Transport, msg simnet.Message) {
	if len(msg.Payload) == 0 {
		r.dropped++
		return
	}
	switch msg.Payload[0] {
	case wireSetup:
		r.handleSetup(net, msg)
	case wireCell:
		r.handleCell(net, msg)
	case wireExitR:
		r.handleOriginResponse(net, msg)
	default:
		r.dropped++
	}
}

// Setup layer plaintext:
//
//	[key 16][cidIn 4][cidOut 4][exit 1][addrlen 2][next addr][inner setup bytes]
func (r *Relay) handleSetup(net simnet.Transport, msg simnet.Message) {
	sp := r.tel.Start("onion.relay.setup", telemetry.A("relay", r.Name))
	defer sp.End()
	wire := msg.Payload[1:]
	if len(wire) < hpke.NEnc+16 {
		r.dropped++
		return
	}
	plain, err := hpke.Open(wire[:hpke.NEnc], r.kp, []byte(setupInfo), nil, wire[hpke.NEnc:])
	if err != nil {
		r.dropped++
		return
	}
	if len(plain) < 16+4+4+1+2 {
		r.dropped++
		return
	}
	key := plain[:16]
	cidIn := binary.BigEndian.Uint32(plain[16:20])
	cidOut := binary.BigEndian.Uint32(plain[20:24])
	isExit := plain[24] == 1
	n := int(binary.BigEndian.Uint16(plain[25:27]))
	if len(plain) < 27+n {
		r.dropped++
		return
	}
	next := simnet.Addr(plain[27 : 27+n])
	inner := plain[27+n:]

	entry := &circuitEntry{
		key: append([]byte(nil), key...), cidIn: cidIn, cidOut: cidOut,
		next: next, prev: msg.Src, exit: isExit,
	}
	r.circuits[cidIn] = entry
	if !isExit {
		r.byOut[cidOut] = entry
	}
	if r.lg != nil {
		// Circuit ids are the linkage handles: adjacent hops share one.
		r.lg.SawIdentity(r.Name, string(msg.Src), cidHandle(cidIn), cidHandle(cidOut))
	}
	if !isExit && len(inner) > 0 {
		out := append([]byte{wireSetup}, inner...)
		if err := net.Send(r.Addr, next, out); err != nil {
			r.dropped++
		}
	}
}

func cidHandle(cid uint32) string {
	return fmt.Sprintf("circ:%08x", cid)
}

func (r *Relay) handleCell(net simnet.Transport, msg simnet.Message) {
	sp := r.tel.Start("onion.relay.cell", telemetry.A("relay", r.Name))
	defer sp.End()
	r.tel.Count(telemetry.MetricOnionCells, "Onion cells processed per relay.", 1,
		telemetry.A("relay", r.Name))
	if len(msg.Payload) != 1+CellSize {
		r.dropped++
		return
	}
	cell := append([]byte(nil), msg.Payload[1:]...)
	cid := binary.BigEndian.Uint32(cell[0:4])
	seq := binary.BigEndian.Uint64(cell[4:12])
	body := cell[cellHeader:]

	if entry, ok := r.circuits[cid]; ok && msg.Src == entry.prev {
		// Forward direction: strip one layer.
		applyLayer(entry.key, dirForward, seq, body)
		if entry.exit {
			r.deliverExit(net, entry, body)
			return
		}
		binary.BigEndian.PutUint32(cell[0:4], entry.cidOut)
		if err := net.Send(r.Addr, entry.next, append([]byte{wireCell}, cell...)); err != nil {
			r.dropped++
		}
		return
	}
	if entry, ok := r.byOut[cid]; ok && msg.Src == entry.next {
		// Backward direction: add our layer and pass toward the client.
		applyLayer(entry.key, dirBackward, seq, body)
		binary.BigEndian.PutUint32(cell[0:4], entry.cidIn)
		if err := net.Send(r.Addr, entry.prev, append([]byte{wireCell}, cell...)); err != nil {
			r.dropped++
		}
		return
	}
	r.dropped++
}

// deliverExit handles a fully unwrapped forward cell at the exit: parse
// the framing and forward the plaintext request to the origin.
func (r *Relay) deliverExit(net simnet.Transport, entry *circuitEntry, body []byte) {
	sp := r.tel.Start("onion.relay.exit", telemetry.A("relay", r.Name))
	defer sp.End()
	cmd := body[0]
	if cmd == cmdChaff {
		return // chaff is absorbed here
	}
	n := int(binary.BigEndian.Uint16(body[1:3]))
	if n > MaxData {
		r.dropped++
		return
	}
	req := body[3 : 3+n]
	// Request framing: [addrlen 2][origin addr][payload]
	if len(req) < 2 {
		r.dropped++
		return
	}
	an := int(binary.BigEndian.Uint16(req[0:2]))
	if len(req) < 2+an {
		r.dropped++
		return
	}
	origin := simnet.Addr(req[2 : 2+an])
	payload := req[2+an:]
	entry.originAd = origin
	if r.lg != nil {
		// The exit sees the request plaintext and the origin name.
		r.lg.SawData(r.Name, string(payload), cidHandle(entry.cidIn))
		r.lg.SawData(r.Name, "origin:"+string(origin), cidHandle(entry.cidIn))
	}
	// Tag with our circuit id so the response can find its way back.
	out := make([]byte, 0, 1+4+len(payload))
	out = append(out, wireExitQ)
	out = binary.BigEndian.AppendUint32(out, entry.cidIn)
	out = append(out, payload...)
	if err := net.Send(r.Addr, origin, out); err != nil {
		r.dropped++
	}
}

// handleOriginResponse wraps an origin's plaintext reply into backward
// cells with this exit's layer applied.
func (r *Relay) handleOriginResponse(net simnet.Transport, msg simnet.Message) {
	if len(msg.Payload) < 5 {
		r.dropped++
		return
	}
	cid := binary.BigEndian.Uint32(msg.Payload[1:5])
	entry, ok := r.circuits[cid]
	if !ok || !entry.exit {
		r.dropped++
		return
	}
	data := msg.Payload[5:]
	for off := 0; off == 0 || off < len(data); off += MaxData {
		chunk := data[off:min(off+MaxData, len(data))]
		cell := make([]byte, CellSize)
		binary.BigEndian.PutUint32(cell[0:4], entry.cidIn)
		entry.backSeq++
		binary.BigEndian.PutUint64(cell[4:12], entry.backSeq)
		body := cell[cellHeader:]
		body[0] = cmdData
		binary.BigEndian.PutUint16(body[1:3], uint16(len(chunk)))
		copy(body[3:], chunk)
		applyLayer(entry.key, dirBackward, entry.backSeq, body)
		if err := net.Send(r.Addr, entry.prev, append([]byte{wireCell}, cell...)); err != nil {
			r.dropped++
		}
	}
}

// Origin is a terminal plaintext server on the simulated network: it
// answers every request with a fixed-size body, observing the exit's
// address and the request content.
type Origin struct {
	Name         string
	Addr         simnet.Addr
	ResponseSize int
	lg           *ledger.Ledger
	requests     []string
	dropped      int
}

// NewOrigin creates an origin node.
func NewOrigin(net simnet.Transport, name string, addr simnet.Addr, responseSize int, lg *ledger.Ledger) *Origin {
	o := &Origin{Name: name, Addr: addr, ResponseSize: responseSize, lg: lg}
	net.Register(addr, o.handle)
	return o
}

func (o *Origin) handle(net simnet.Transport, msg simnet.Message) {
	if len(msg.Payload) < 5 || msg.Payload[0] != wireExitQ {
		return
	}
	cid := msg.Payload[1:5]
	req := string(msg.Payload[5:])
	if o.lg != nil {
		o.lg.SawIdentity(o.Name, string(msg.Src), "origin-conn:"+string(cid))
		o.lg.SawData(o.Name, req, "origin-conn:"+string(cid))
	}
	o.requests = append(o.requests, req)
	resp := make([]byte, 0, 1+4+o.ResponseSize)
	resp = append(resp, wireExitR)
	resp = append(resp, cid...)
	body := make([]byte, o.ResponseSize)
	copy(body, "response to: "+req)
	resp = append(resp, body...)
	if err := net.Send(o.Addr, msg.Src, resp); err != nil {
		// The exit died between request and response; surfacing the
		// drop keeps retry logic and the simnet loss counters agreed.
		o.dropped++
	}
}

// Requests returns the plaintext requests the origin has served.
func (o *Origin) Requests() []string { return append([]string(nil), o.requests...) }

// Dropped reports responses the origin could not send back (the exit
// was down or unregistered).
func (o *Origin) Dropped() int { return o.dropped }

// Response is a reassembled backward payload delivered to the client.
type Response struct {
	Body []byte
	Time time.Duration
}

// Circuit is a client's established path through the relays.
type Circuit struct {
	client *Client
	keys   [][]byte
	cids   []uint32
	entry  simnet.Addr
	seq    uint64
}

// Client is an onion-routing client node; it owns circuits and collects
// responses.
type Client struct {
	Addr simnet.Addr
	net  simnet.Transport

	// mu guards the circuit table and response log: on the real
	// transport, retry attempts build circuits from timer goroutines
	// while the client's dispatcher delivers backward cells (the
	// simulator serializes both, so it never contends).
	mu        sync.Mutex
	circuits  map[uint32]*Circuit
	responses []Response
	dropped   int
}

// NewClient creates a client node on the network.
func NewClient(net simnet.Transport, addr simnet.Addr) *Client {
	c := &Client{Addr: addr, net: net, circuits: map[uint32]*Circuit{}}
	net.Register(addr, c.handle)
	return c
}

// BuildCircuit lays a circuit through the given relays (first hop
// first; the last relay acts as exit). Setup is a single onion-wrapped
// pass, standing in for Tor's telescoping handshake: key placement and
// per-hop knowledge are identical, only round trips are elided.
func (c *Client) BuildCircuit(relays []RelayInfo) (*Circuit, error) {
	if len(relays) == 0 {
		return nil, errors.New("onion: circuit needs at least one relay")
	}
	circ := &Circuit{client: c, entry: relays[0].Addr}
	for range relays {
		key := make([]byte, 16)
		if _, err := rand.Read(key); err != nil {
			return nil, fmt.Errorf("onion: layer key: %w", err)
		}
		var cidBuf [4]byte
		if _, err := rand.Read(cidBuf[:]); err != nil {
			return nil, fmt.Errorf("onion: circuit id: %w", err)
		}
		circ.keys = append(circ.keys, key)
		circ.cids = append(circ.cids, binary.BigEndian.Uint32(cidBuf[:]))
	}

	// Build the setup onion inside-out.
	var inner []byte
	for i := len(relays) - 1; i >= 0; i-- {
		var cidOut uint32
		var next simnet.Addr
		isExit := byte(0)
		if i == len(relays)-1 {
			isExit = 1
		} else {
			cidOut = circ.cids[i+1]
			next = relays[i+1].Addr
		}
		plain := make([]byte, 0, 27+len(next)+len(inner))
		plain = append(plain, circ.keys[i]...)
		plain = binary.BigEndian.AppendUint32(plain, circ.cids[i])
		plain = binary.BigEndian.AppendUint32(plain, cidOut)
		plain = append(plain, isExit)
		plain = binary.BigEndian.AppendUint16(plain, uint16(len(next)))
		plain = append(plain, next...)
		plain = append(plain, inner...)
		enc, ct, err := hpke.Seal(relays[i].PubKey, []byte(setupInfo), nil, plain)
		if err != nil {
			return nil, err
		}
		inner = append(enc, ct...)
	}
	c.mu.Lock()
	c.circuits[circ.cids[0]] = circ
	c.mu.Unlock()
	if err := c.net.Send(c.Addr, circ.entry, append([]byte{wireSetup}, inner...)); err != nil {
		return nil, err
	}
	return circ, nil
}

// BuildCircuitResilient builds a circuit of `hops` relays drawn from
// pool, failing over to a different entry relay when a send into the
// network fails fast (entry inside a crash window). The rotation start
// is drawn from the network RNG, so runs are deterministic per seed.
// Degradation policy: fail-closed — if every candidate entry is down
// the build errors (wrapping resilience.ErrExhausted); the client never
// contacts the origin directly. Mid-route crashes are invisible at
// build time (the setup onion is fire-and-forget); callers needing
// end-to-end confirmation arm a resilience.Watchdog on the first
// request.
func (c *Client) BuildCircuitResilient(pool []RelayInfo, hops int, tel *telemetry.Telemetry) (*Circuit, error) {
	if hops <= 0 || hops > len(pool) {
		return nil, fmt.Errorf("onion: cannot pick %d distinct relays from a pool of %d", hops, len(pool))
	}
	p := resilience.Default("onion")
	p.MaxAttempts = len(pool)
	start := c.net.Rand(len(pool))
	var circ *Circuit
	_, err := resilience.DoFailover(p, tel, uint64(start), nil, len(pool),
		func(attempt, endpoint int) error {
			// Entry rotates with the endpoint; the rest of the route is
			// filled from pool order, skipping the entry.
			entry := pool[(start+endpoint)%len(pool)]
			route := make([]RelayInfo, 0, hops)
			route = append(route, entry)
			for _, r := range pool {
				if len(route) == hops {
					break
				}
				if r.Addr != entry.Addr {
					route = append(route, r)
				}
			}
			built, berr := c.BuildCircuit(route)
			if berr != nil {
				return berr
			}
			circ = built
			return nil
		})
	if err != nil {
		return nil, err
	}
	return circ, nil
}

// Request sends payload to origin through the circuit as a single
// forward cell (the request must fit one cell; responses may span
// several).
func (circ *Circuit) Request(origin simnet.Addr, payload []byte) error {
	framed := make([]byte, 0, 2+len(origin)+len(payload))
	framed = binary.BigEndian.AppendUint16(framed, uint16(len(origin)))
	framed = append(framed, origin...)
	framed = append(framed, payload...)
	return circ.sendCell(cmdData, framed)
}

// SendChaff injects one dummy cell, absorbed at the exit. On the wire
// it is indistinguishable from a data cell.
func (circ *Circuit) SendChaff() error {
	return circ.sendCell(cmdChaff, nil)
}

func (circ *Circuit) sendCell(cmd byte, data []byte) error {
	if len(data) > MaxData {
		return ErrTooLong
	}
	cell := make([]byte, CellSize)
	circ.seq++
	binary.BigEndian.PutUint32(cell[0:4], circ.cids[0])
	binary.BigEndian.PutUint64(cell[4:12], circ.seq)
	body := cell[cellHeader:]
	body[0] = cmd
	binary.BigEndian.PutUint16(body[1:3], uint16(len(data)))
	copy(body[3:], data)
	// Apply layers outermost-last so the entry relay strips first:
	// innermost (exit) layer applied first.
	for i := len(circ.keys) - 1; i >= 0; i-- {
		applyLayer(circ.keys[i], dirForward, circ.seq, body)
	}
	return circ.client.net.Send(circ.client.Addr, circ.entry, append([]byte{wireCell}, cell...))
}

// handle processes backward cells arriving at the client.
func (c *Client) handle(net simnet.Transport, msg simnet.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(msg.Payload) != 1+CellSize || msg.Payload[0] != wireCell {
		c.dropped++
		return
	}
	cell := msg.Payload[1:]
	cid := binary.BigEndian.Uint32(cell[0:4])
	seq := binary.BigEndian.Uint64(cell[4:12])
	circ, ok := c.circuits[cid]
	if !ok {
		c.dropped++
		return
	}
	body := append([]byte(nil), cell[cellHeader:]...)
	// Remove every hop's backward layer, entry-first.
	for _, key := range circ.keys {
		applyLayer(key, dirBackward, seq, body)
	}
	if body[0] != cmdData {
		c.dropped++
		return
	}
	n := int(binary.BigEndian.Uint16(body[1:3]))
	if n > MaxData {
		c.dropped++
		return
	}
	c.responses = append(c.responses, Response{
		Body: append([]byte(nil), body[3:3+n]...),
		Time: net.Now(),
	})
}

// Responses returns payloads received so far.
func (c *Client) Responses() []Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Response(nil), c.responses...)
}

// Dropped reports discarded inbound cells.
func (c *Client) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// ScheduleChaff arms a periodic dummy-cell generator on the circuit:
// one chaff cell every interval, count times (count <= 0 disables).
// On the wire the chaff is indistinguishable from data cells, raising
// the cost of volume-counting adversaries at a measured bandwidth
// price (§4.3).
func (circ *Circuit) ScheduleChaff(interval time.Duration, count int) {
	if count <= 0 {
		return
	}
	var tick func(remaining int)
	tick = func(remaining int) {
		if remaining <= 0 {
			return
		}
		// Errors on chaff are ignorable by design: dummies are best
		// effort and must never disturb the data path.
		_ = circ.SendChaff()
		circ.client.net.After(interval, func() { tick(remaining - 1) })
	}
	circ.client.net.After(interval, func() { tick(count) })
}
