package vpn

import (
	"fmt"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

func stack(t testing.TB, lg *ledger.Ledger) (vpnAddr, originAddr string, cleanup func()) {
	t.Helper()
	srv := NewServer(lg)
	vpnAddr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	origin := NewOrigin(lg)
	originAddr, err = origin.Start()
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return vpnAddr, originAddr, func() { srv.Close(); origin.Close() }
}

func TestFetchThroughVPN(t *testing.T) {
	vpnAddr, originAddr, cleanup := stack(t, nil)
	defer cleanup()
	body, err := Fetch(vpnAddr, "http://"+originAddr+"/doc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if body != "origin content for /doc" {
		t.Errorf("body = %q", body)
	}
}

func TestNonProxyRequestRejected(t *testing.T) {
	lg := ledger.New(ledger.NewClassifier(), nil)
	srv := NewServer(lg)
	vpnAddr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// A relative-URI fetch of the proxy itself must 400.
	if _, err := Fetch(vpnAddr, "http://"+vpnAddr+"/not-a-proxy-request", nil); err == nil {
		// The URL is absolute but points at the VPN itself; it will try
		// to proxy to itself and loop once, producing a 400 inside.
		t.Log("self-referential fetch did not error; acceptable but unusual")
	}
}

func TestUnreachableOrigin(t *testing.T) {
	vpnAddr, _, cleanup := stack(t, nil)
	defer cleanup()
	if _, err := Fetch(vpnAddr, "http://127.0.0.1:1/nothing", nil); err == nil {
		t.Error("fetch of unreachable origin succeeded")
	}
}

// TestDecouplingTable reproduces the §3.3 cautionary-tale table: the
// VPN server measures as (▲, ●) and the verdict is NOT decoupled.
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	vpnAddr, originAddr, cleanup := stack(t, lg)
	defer cleanup()

	for i := 0; i < 5; i++ {
		who := fmt.Sprintf("user-%d", i)
		url := fmt.Sprintf("http://%s/secret/%d", originAddr, i)
		cls.RegisterData(url, who, "", core.Sensitive)
		_, conn, err := FetchConn(vpnAddr, url, func(localAddr string) {
			cls.RegisterIdentity(localAddr, who, "", core.Sensitive)
		})
		if conn != nil {
			defer conn.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	expected := core.VPN()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decoupled {
		t.Error("measured VPN reported as decoupled; it must not be")
	}
	if v.Degree != 1 {
		t.Errorf("degree = %d, want 1 (single locus of observation)", v.Degree)
	}
}

// TestVPNAloneLinksEveryone: no collusion needed — the operator's own
// session records couple identity and data.
func TestVPNAloneLinksEveryone(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	vpnAddr, originAddr, cleanup := stack(t, lg)
	defer cleanup()
	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("user-%d", i)
		url := fmt.Sprintf("http://%s/secret/%d", originAddr, i)
		cls.RegisterData(url, who, "", core.Sensitive)
		_, conn, err := FetchConn(vpnAddr, url, func(localAddr string) {
			cls.RegisterIdentity(localAddr, who, "", core.Sensitive)
		})
		if conn != nil {
			defer conn.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	res := adversary.LinkSubjects(lg.Observations(), []string{ServerName})
	if rate := adversary.LinkageRate(res); rate != 1 {
		t.Errorf("VPN server alone linked %.0f%%, want 100%%", rate*100)
	}
}

func BenchmarkFetchThroughVPN(b *testing.B) {
	vpnAddr, originAddr, cleanup := stack(b, nil)
	defer cleanup()
	url := "http://" + originAddr + "/bench"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fetch(vpnAddr, url, nil); err != nil {
			b.Fatal(err)
		}
	}
}
