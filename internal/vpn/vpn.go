// Package vpn implements the paper's §3.3 cautionary tale: a
// centralized VPN / forward-proxy service. The client's traffic is
// encrypted to the VPN server (protecting it from the local network),
// but the VPN terminates that encryption and forwards requests itself —
// a single trusted intermediary that sees all user activity bundled
// with user identity: (▲, ●).
//
// The implementation is a real loopback HTTP forward proxy: clients
// send absolute-URI requests through it and the proxy dials origins on
// their behalf, observing exactly what a commercial VPN operator's logs
// would hold. It exists so that the experiments can measure the
// coupled tuple and the degree-1 verdict against a live system rather
// than assert them.
package vpn

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"

	"decoupling/internal/ledger"
)

// Entity names matching the paper's table.
const (
	ServerName = "VPN Server"
	OriginName = "Origin"
)

// ErrBadGateway is returned when the proxy cannot reach the origin.
var ErrBadGateway = errors.New("vpn: origin unreachable")

// Server is the centralized proxy.
type Server struct {
	Name string
	lg   *ledger.Ledger

	ln        net.Listener
	srv       *http.Server
	transport *http.Transport
	mu        sync.Mutex
	proxied   int
}

// NewServer creates a VPN server. Its outbound dials bind the loopback
// alias 127.0.0.2, giving the operator a source address distinct from
// every client's 127.0.0.1 — as distinct organizations have — and
// making address-string collisions between entities impossible.
func NewServer(lg *ledger.Ledger) *Server {
	dialer := &net.Dialer{LocalAddr: &net.TCPAddr{IP: net.IPv4(127, 0, 0, 2)}}
	return &Server{
		Name: ServerName, lg: lg,
		transport: &http.Transport{DialContext: dialer.DialContext},
	}
}

// Start serves on a fresh loopback port.
func (s *Server) Start() (addr string, err error) {
	s.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	s.srv = &http.Server{Handler: http.HandlerFunc(s.proxy)}
	go s.srv.Serve(s.ln)
	return s.ln.Addr().String(), nil
}

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Proxied reports forwarded request count.
func (s *Server) Proxied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proxied
}

// proxy handles a forward-proxy request (absolute URI). This is where
// the coupling happens: one handler, one log line, both who and what.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request) {
	if !r.URL.IsAbs() {
		http.Error(w, "vpn: absolute-URI proxy request required", http.StatusBadRequest)
		return
	}
	if s.lg != nil {
		// One session record holds the client address AND the full
		// request — the single locus of observation.
		h := r.RemoteAddr
		s.lg.SawIdentity(s.Name, r.RemoteAddr, h)
		s.lg.SawData(s.Name, r.URL.String(), h, "origin-conn:"+r.URL.Host)
	}
	outReq, err := http.NewRequest(r.Method, r.URL.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	outReq.Header = r.Header.Clone()
	resp, err := s.transport.RoundTrip(outReq)
	if err != nil {
		http.Error(w, ErrBadGateway.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	s.mu.Lock()
	s.proxied++
	s.mu.Unlock()
}

// Origin is a plain HTTP origin server with observation.
type Origin struct {
	Name string
	lg   *ledger.Ledger
	srv  *http.Server
	ln   net.Listener
}

// NewOrigin creates an origin.
func NewOrigin(lg *ledger.Ledger) *Origin {
	return &Origin{Name: OriginName, lg: lg}
}

// Start serves on a fresh loopback port.
func (o *Origin) Start() (addr string, err error) {
	o.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	o.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o.lg != nil {
			h := "origin-conn:" + o.ln.Addr().String()
			o.lg.SawIdentity(o.Name, r.RemoteAddr, h)
			o.lg.SawData(o.Name, "http://"+o.ln.Addr().String()+r.URL.Path, h)
		}
		fmt.Fprintf(w, "origin content for %s", r.URL.Path)
	})}
	go o.srv.Serve(o.ln)
	return o.ln.Addr().String(), nil
}

// Close shuts the origin down.
func (o *Origin) Close() error { return o.srv.Close() }

// Fetch performs one GET of originURL through the VPN at vpnAddr.
// onDial receives the client's local address before the request is
// sent (classification ground truth hook).
func Fetch(vpnAddr, originURL string, onDial func(localAddr string)) (string, error) {
	body, conn, err := FetchConn(vpnAddr, originURL, onDial)
	if conn != nil {
		conn.Close()
	}
	return body, err
}

// FetchConn is Fetch but returns the client connection still open.
// Measurement runs hold these connections until the run ends so the
// OS cannot recycle a client's ephemeral port into a server-side dial,
// which would contaminate address-based classification ground truth.
// The caller owns the returned connection (non-nil even on some error
// paths) and must close it.
func FetchConn(vpnAddr, originURL string, onDial func(localAddr string)) (string, net.Conn, error) {
	proxyURL, err := url.Parse("http://" + vpnAddr)
	if err != nil {
		return "", nil, err
	}
	conn, err := net.Dial("tcp", proxyURL.Host)
	if err != nil {
		return "", nil, err
	}
	if onDial != nil {
		onDial(conn.LocalAddr().String())
	}
	req, err := http.NewRequest(http.MethodGet, originURL, nil)
	if err != nil {
		return "", conn, err
	}
	// Absolute-URI request line (WriteProxy) marks it a proxy request.
	if err := req.WriteProxy(conn); err != nil {
		return "", conn, err
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), req)
	if err != nil {
		return "", conn, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", conn, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", conn, fmt.Errorf("vpn: fetch returned %s", resp.Status)
	}
	return string(body), conn, nil
}
