package vpn

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §3.3 cautionary tale. There is nothing
// subtle to derive: the tunnel terminates at one server that reads both
// the client's address and the plaintext request, so the static tuple
// is coupled (▲, ●) straight from the declarations — the schema layer's
// way of saying a centralized VPN is a rendezvous, not a decoupling.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "vpn",
		System:  "Centralized VPN",
		Section: "3.3",
		Doc:     "Centralized VPN: a single trusted intermediary terminates the tunnel and originates every request — one locus observes identity and data together.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "vpn_request",
				Doc:  "tunneled request, decrypted at the server",
				Fields: []schema.Field{
					{Name: "client_addr", Label: schema.Identity},
					{Name: "url", Label: schema.Query},
				},
			},
			{
				Name: "vpn_fetch",
				Doc:  "the server's re-originated request to the origin",
				Fields: []schema.Field{
					{Name: "server_addr", Label: schema.Routing},
					{Name: "url", Label: schema.Query},
				},
			},
			{
				Name: "vpn_fetch_response",
				Fields: []schema.Field{
					{Name: "body", Label: schema.Content},
				},
			},
			{
				Name: "vpn_response",
				Fields: []schema.Field{
					{Name: "body", Label: schema.Content},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: "vpn_request", Fields: []string{"client_addr", "url"}}},
				Receives: []schema.Use{
					{Message: "vpn_response", Fields: []string{"body"}},
				},
			},
			{
				Name: ServerName,
				Receives: []schema.Use{
					{Message: "vpn_request", Fields: []string{"client_addr", "url"}},
					{Message: "vpn_fetch_response", Fields: []string{"body"}},
				},
				Sends: []schema.Use{
					{Message: "vpn_fetch", Fields: []string{"server_addr", "url"}},
					{Message: "vpn_response", Fields: []string{"body"}},
				},
			},
			{
				Name: OriginName,
				Receives: []schema.Use{
					{Message: "vpn_fetch", Fields: []string{"server_addr", "url"}},
				},
				Sends: []schema.Use{{Message: "vpn_fetch_response", Fields: []string{"body"}}},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: ServerName, Message: "vpn_request", Handle: "client-conn"},
			{From: ServerName, To: OriginName, Message: "vpn_fetch", Handle: "origin-conn"},
			{From: OriginName, To: ServerName, Message: "vpn_fetch_response", Handle: "origin-conn"},
			{From: ServerName, To: "Client", Message: "vpn_response", Handle: "client-conn"},
		},
	}
}
