// Package odns implements Oblivious DNS (the original ODNS design the
// paper cites in §3.2.2): clients encrypt their query and pack the
// ciphertext into a QNAME under a dedicated pseudo-TLD (".odns"); the
// client's ordinary recursive resolver, none the wiser, recurses the
// strange name to the authoritative server for .odns — the oblivious
// resolver — which decrypts, resolves the real query, and returns the
// answer encrypted under a key carried inside the query.
//
// The decoupling: the recursive resolver sees who is asking (▲) but only
// ciphertext labels (⊙); the oblivious resolver sees the real query (●)
// but only the recursive resolver's identity (△).
//
// The oblivious resolver plugs into internal/dns as an Authority, so an
// unmodified dns.Resolver carries ODNS traffic exactly as the design
// intends.
package odns

import (
	"crypto/rand"
	"encoding/base32"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"

	"decoupling/internal/core"
	"decoupling/internal/dcrypto/hpke"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
	"decoupling/internal/resilience"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
)

// TLD is the pseudo-TLD the oblivious resolver is authoritative for.
const TLD = "odns."

// ObliviousResolverName is the ledger entity name.
const ObliviousResolverName = "Oblivious Resolver"

const queryInfo = "decoupling odns query"

var (
	// ErrBadEncapsulation is returned for undecodable ODNS names.
	ErrBadEncapsulation = errors.New("odns: malformed encapsulated query")
	// ErrBadResponse is returned when a response fails to decrypt.
	ErrBadResponse = errors.New("odns: response decryption failed")
	// ErrOuterFailed is wrapped when the recursive leg returns a
	// non-success RCode (a transient upstream failure, retryable).
	ErrOuterFailed = errors.New("odns: outer query failed")
)

// b32 is unpadded base32 in lowercase-safe hex alphabet (DNS labels are
// case-insensitive, so the standard alphabet's mixed case is unsafe).
var b32 = base32.HexEncoding.WithPadding(base32.NoPadding)

// encapsulate packs raw bytes into DNS labels under the .odns TLD.
func encapsulate(raw []byte) (string, error) {
	s := strings.ToLower(b32.EncodeToString(raw))
	var labels []string
	for len(s) > 0 {
		n := len(s)
		if n > 60 {
			n = 60
		}
		labels = append(labels, s[:n])
		s = s[n:]
	}
	name := strings.Join(labels, ".") + "." + TLD
	if len(name) > 250 {
		return "", fmt.Errorf("odns: encapsulated name %d bytes exceeds DNS limit", len(name))
	}
	return name, nil
}

// decapsulate reverses encapsulate.
func decapsulate(name string) ([]byte, error) {
	name = dnswire.CanonicalName(name)
	if !dns.InZone(name, TLD) {
		return nil, ErrBadEncapsulation
	}
	joined := strings.ReplaceAll(strings.TrimSuffix(name, "."+TLD), ".", "")
	raw, err := b32.DecodeString(strings.ToUpper(joined))
	if err != nil {
		return nil, ErrBadEncapsulation
	}
	return raw, nil
}

// queryPlaintext is the decrypted content of an ODNS query:
//
//	[respKey 16][qtype 2][qname...]
const respKeySize = 16

// ObliviousResolver decrypts ODNS queries and resolves them through its
// own recursive machinery. It implements dns.Authority for the .odns
// zone.
type ObliviousResolver struct {
	kp   *hpke.KeyPair
	lg   *ledger.Ledger
	wire *wiretrace.Plane
	// Upstream answers the decrypted inner queries.
	Upstream dns.Authority

	// Counters are atomic: Handle may serve concurrent clients.
	handled atomic.Int64
	dropped atomic.Int64
}

// NewObliviousResolver creates the .odns authority.
func NewObliviousResolver(upstream dns.Authority, lg *ledger.Ledger) (*ObliviousResolver, error) {
	kp, err := hpke.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("odns: resolver key: %w", err)
	}
	return &ObliviousResolver{kp: kp, lg: lg, Upstream: upstream}, nil
}

// InstrumentWire attaches a wire-trace plane: each handled query opens
// a span continuing the context handed off with the outer (obfuscated)
// name, mirrors the ledger observations, and rotates the trace before
// the inner resolution — the oblivious resolver is the decoupling
// boundary of the ODNS design. Nil-safe.
func (o *ObliviousResolver) InstrumentWire(p *wiretrace.Plane) { o.wire = p }

// PublicKey returns the key clients encrypt queries to.
func (o *ObliviousResolver) PublicKey() []byte { return o.kp.PublicKey() }

// Serves implements dns.Authority: everything under .odns.
func (o *ObliviousResolver) Serves(name string) bool {
	return dns.InZone(dnswire.CanonicalName(name), TLD)
}

// Handle implements dns.Authority: decrypt, resolve, encrypt the answer
// into a TXT record on the queried (opaque) name.
func (o *ObliviousResolver) Handle(from string, q *dnswire.Message) *dnswire.Message {
	r := q.Reply()
	r.Authoritative = true
	if len(q.Questions) != 1 {
		r.RCode = dnswire.RCodeFormErr
		return r
	}
	qname := q.Questions[0].Name
	hop := o.wire.Hop(ObliviousResolverName, "odns.oblivious.handle",
		o.wire.TakeHandoff([]byte(dnswire.CanonicalName(qname))), from, "")
	defer hop.End()
	raw, err := decapsulate(qname)
	if err != nil || len(raw) < hpke.NEnc+16 {
		o.dropped.Add(1)
		r.RCode = dnswire.RCodeFormErr
		return r
	}
	plain, err := hpke.Open(raw[:hpke.NEnc], o.kp, []byte(queryInfo), nil, raw[hpke.NEnc:])
	if err != nil || len(plain) < respKeySize+2 {
		o.dropped.Add(1)
		r.RCode = dnswire.RCodeServFail
		return r
	}
	respKey := plain[:respKeySize]
	qtype := dnswire.Type(binary.BigEndian.Uint16(plain[respKeySize:]))
	innerName := string(plain[respKeySize+2:])

	if o.lg != nil {
		// Join keys: the proxy leg, the outer (obfuscated) name bytes the
		// recursive resolver also saw, and the inner name bytes the
		// origin's authoritative server will see.
		h := ledger.ConnHandle(from, ObliviousResolverName)
		outerH := ledger.Hash([]byte(dnswire.CanonicalName(qname)))
		innerH := ledger.Hash([]byte(dnswire.CanonicalName(innerName)))
		o.lg.SawIdentity(ObliviousResolverName, from, h, outerH)
		o.lg.SawData(ObliviousResolverName, dnswire.CanonicalName(innerName), h, outerH, innerH)
		hop.Observe(core.Identity, from)
		hop.Observe(core.Data, dnswire.CanonicalName(innerName))
	}

	// Resolve the real query.
	inner := dnswire.NewQuery(q.ID, innerName, qtype)
	var upstream *dnswire.Message
	if o.Upstream != nil && o.Upstream.Serves(innerName) {
		o.wire.Handoff([]byte(dnswire.CanonicalName(innerName)), hop.Forward())
		upstream = o.Upstream.Handle(ObliviousResolverName, inner)
	} else {
		upstream = inner.Reply()
		upstream.RCode = dnswire.RCodeServFail
	}

	// Encrypt the serialized answer under the client's response key.
	wire, err := upstream.Encode()
	if err != nil {
		r.RCode = dnswire.RCodeServFail
		return r
	}
	sealed, err := hpke.SealSymmetric(respKey, nil, wire)
	if err != nil {
		r.RCode = dnswire.RCodeServFail
		return r
	}
	r.Answers = []dnswire.RR{{
		Name: dnswire.CanonicalName(qname), Type: dnswire.TypeTXT,
		Class: dnswire.ClassIN, TTL: 0,
		Data: dnswire.TXTData(b32.EncodeToString(sealed)),
	}}
	o.handled.Add(1)
	return r
}

// Stats reports handled and dropped query counts.
func (o *ObliviousResolver) Stats() (handled, dropped int) {
	return int(o.handled.Load()), int(o.dropped.Load())
}

// Client builds ODNS queries and decrypts answers. It talks to a plain
// recursive resolver, which is where the architectural trick lives.
type Client struct {
	ID        string // client identity as the recursive resolver sees it
	targetKey []byte
	recursive *dns.Resolver
	wire      *wiretrace.Plane
}

// InstrumentWire attaches a wire-trace plane: each Query opens the
// root span of the trace and hands its context off with the outer
// query name. Nil-safe.
func (c *Client) InstrumentWire(p *wiretrace.Plane) { c.wire = p }

// NewClient creates an ODNS client using the given recursive resolver
// and oblivious-resolver public key.
func NewClient(id string, targetKey []byte, recursive *dns.Resolver) *Client {
	return &Client{ID: id, targetKey: targetKey, recursive: recursive}
}

// Query resolves (name, qtype) obliviously, returning the inner answer
// message.
func (c *Client) Query(name string, qtype dnswire.Type) (*dnswire.Message, error) {
	respKey := make([]byte, respKeySize)
	if _, err := rand.Read(respKey); err != nil {
		return nil, fmt.Errorf("odns: response key: %w", err)
	}
	plain := make([]byte, 0, respKeySize+2+len(name))
	plain = append(plain, respKey...)
	plain = binary.BigEndian.AppendUint16(plain, uint16(qtype))
	plain = append(plain, name...)

	enc, ct, err := hpke.Seal(c.targetKey, []byte(queryInfo), nil, plain)
	if err != nil {
		return nil, err
	}
	qname, err := encapsulate(append(enc, ct...))
	if err != nil {
		return nil, err
	}

	root := c.wire.Root(wiretrace.ClientVantage, "odns.client.query", c.ID, "")
	defer root.End()
	c.wire.Handoff([]byte(dnswire.CanonicalName(qname)), root.Context())
	outer := c.recursive.Resolve(c.ID, dnswire.NewQuery(1, qname, dnswire.TypeTXT))
	if outer.RCode != dnswire.RCodeNoError || len(outer.Answers) != 1 {
		return nil, fmt.Errorf("odns: outer query failed: rcode=%v answers=%d: %w",
			outer.RCode, len(outer.Answers), ErrOuterFailed)
	}
	txt, err := outer.Answers[0].TXT()
	if err != nil {
		return nil, err
	}
	sealed, err := b32.DecodeString(txt)
	if err != nil {
		return nil, ErrBadEncapsulation
	}
	innerWire, err := hpke.OpenSymmetric(respKey, nil, sealed)
	if err != nil {
		return nil, ErrBadResponse
	}
	return dnswire.Decode(innerWire)
}

// QueryResilient retries Query under the policy with a fresh response
// key per attempt. The degradation policy is fail-closed by
// construction: the ONLY path out of this client runs through the
// recursive resolver carrying ciphertext labels — there is no direct
// leg to fall back to, so exhaustion is an error, never a plaintext
// query.
func (c *Client) QueryResilient(name string, qtype dnswire.Type, p resilience.Policy, tel *telemetry.Telemetry, sleep resilience.Sleeper) (*dnswire.Message, error) {
	h := fnv.New64a()
	h.Write([]byte(c.ID))
	h.Write([]byte{0})
	h.Write([]byte(name))
	var resp *dnswire.Message
	err := resilience.Do(p, tel, h.Sum64(), sleep, func(int) error {
		r, qerr := c.Query(name, qtype)
		if qerr != nil {
			return qerr
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}
