package odns

import (
	"decoupling/internal/core"
	"decoupling/internal/dnswire"
	"decoupling/internal/schema"
)

// StaticSchema declares the ODNS wire protocol against the §3.2.2
// table: the recursive resolver routes on the .odns suffix and the
// client's address but the QNAME travels encrypted to the oblivious
// resolver, which decrypts it yet sees only the resolver's address.
// Role names match core.ObliviousDNS so the measured system checks
// against the derivation by name.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "odns",
		System:  "Oblivious DNS",
		Section: "3.2.2",
		Doc:     "Oblivious DNS: the query name is encrypted under the oblivious resolver's key and smuggled through the recursive resolver as an opaque label.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: append(dnswire.SchemaMessages(),
			schema.Message{
				Name: "odns_query",
				Doc:  "client query with the QNAME sealed under the .odns label",
				Fields: []schema.Field{
					{Name: "client_addr", Label: schema.Identity},
					{Name: "odns_tld", Label: schema.Routing},
					{Name: "sealed_qname", Label: schema.Opaque, Encapsulates: "odns_inner_query", Openers: []string{"Oblivious Resolver"}},
				},
			},
			schema.Message{
				Name: "odns_forward",
				Doc:  "the recursive resolver's re-origination toward the oblivious resolver",
				Fields: []schema.Field{
					{Name: "resolver_addr", Label: schema.Routing},
					{Name: "odns_tld", Label: schema.Routing},
					{Name: "sealed_qname", Label: schema.Opaque, Encapsulates: "odns_inner_query", Openers: []string{"Oblivious Resolver"}},
				},
			},
			schema.Message{
				Name: "odns_inner_query",
				Doc:  "the decrypted query, visible only to key holders",
				Fields: []schema.Field{
					{Name: "qname", Label: schema.Query},
				},
			},
			schema.Message{
				Name: "odns_response",
				Doc:  "the answer sealed back to the client",
				Fields: []schema.Field{
					{Name: "sealed_answer", Label: schema.Opaque, Encapsulates: "odns_inner_answer", Openers: []string{"Client"}},
				},
			},
			schema.Message{
				Name: "odns_inner_answer",
				Fields: []schema.Field{
					{Name: "answer", Label: schema.Content},
				},
			},
		),
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: "odns_query", Fields: []string{"client_addr", "odns_tld"}}},
				Receives: []schema.Use{
					{Message: "odns_response", Fields: []string{"sealed_answer"}},
					{Message: "odns_inner_answer", Fields: []string{"answer"}},
				},
			},
			{
				Name: "Resolver",
				Receives: []schema.Use{
					{Message: "odns_query", Fields: []string{"client_addr", "odns_tld"}},
					{Message: "odns_response"},
				},
				Sends: []schema.Use{
					{Message: "odns_forward", Fields: []string{"resolver_addr", "odns_tld"}},
					{Message: "odns_response"},
				},
			},
			{
				Name: "Oblivious Resolver",
				Receives: []schema.Use{
					{Message: "odns_forward", Fields: []string{"resolver_addr", "odns_tld", "sealed_qname"}},
					{Message: "odns_inner_query", Fields: []string{"qname"}},
					{Message: dnswire.SchemaResponse, Fields: []string{"answer"}},
				},
				Sends: []schema.Use{
					{Message: dnswire.SchemaRecursiveQuery, Fields: []string{"src_addr", "qname", "qtype"}},
					{Message: "odns_response"},
				},
			},
			{
				Name: "Origin",
				Receives: []schema.Use{
					{Message: dnswire.SchemaRecursiveQuery, Fields: []string{"src_addr", "qname", "qtype"}},
				},
				Sends: []schema.Use{{Message: dnswire.SchemaResponse, Fields: []string{"answer"}}},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: "Resolver", Message: "odns_query", Handle: "proxy-leg"},
			{From: "Resolver", To: "Oblivious Resolver", Message: "odns_forward", Handle: "target-leg"},
			{From: "Oblivious Resolver", To: "Origin", Message: dnswire.SchemaRecursiveQuery, Handle: "recursion"},
			{From: "Origin", To: "Oblivious Resolver", Message: dnswire.SchemaResponse, Handle: "recursion"},
			{From: "Oblivious Resolver", To: "Resolver", Message: "odns_response", Handle: "target-leg"},
			{From: "Resolver", To: "Client", Message: "odns_response", Handle: "proxy-leg"},
		},
	}
}
